// Parameterized end-to-end sweeps: chain lengths, loss rates, grids, random
// geometric graphs with mobility. Invariants checked:
//   * OLSR converges to loop-free shortest-path tables on connected graphs;
//   * DYMO discovers routes and delivers under loss;
//   * kernel tables never contain a routing loop.
#include <gtest/gtest.h>

#include <queue>

#include "testbed/world.hpp"

namespace mk {
namespace {

/// Follows next hops from src toward dst; true if dst is reached without
/// revisiting a node (loop-freedom + reachability).
bool path_reaches(testbed::SimWorld& world, std::size_t src, net::Addr dst,
                  std::size_t max_hops = 64) {
  net::Addr cur = world.addr(src);
  std::set<net::Addr> seen;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    if (cur == dst) return true;
    if (!seen.insert(cur).second) return false;  // loop!
    auto route =
        world.node(net::index_for_addr(cur)).kernel_table().lookup(dst);
    if (!route) return false;
    cur = route->next_hop;
  }
  return false;
}

// ------------------------------------------------------------- OLSR on chains

class OlsrChainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OlsrChainSweep, ConvergesAndIsLoopFree) {
  std::size_t n = GetParam();
  testbed::SimWorld world(n);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(120)).has_value())
      << "chain of " << n << " did not converge";
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(path_reaches(world, i, world.addr(j)))
          << i << " -> " << j << " (n=" << n << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, OlsrChainSweep,
                         ::testing::Values(2, 3, 5, 8, 12));

// ---------------------------------------------------------------- OLSR grids

class OlsrGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OlsrGridSweep, GridConvergesShortestPath) {
  std::size_t side = GetParam();
  testbed::SimWorld world(side * side);
  world.grid(side);
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(180)).has_value());

  // Manhattan distance is the shortest-path metric on a grid.
  auto corner = world.node(0).kernel_table().lookup(
      world.addr(side * side - 1));
  ASSERT_TRUE(corner.has_value());
  EXPECT_EQ(corner->metric, 2 * (side - 1));
}

INSTANTIATE_TEST_SUITE_P(GridSides, OlsrGridSweep, ::testing::Values(2, 3));

// ------------------------------------------------------------ DYMO under loss

class DymoLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(DymoLossSweep, DiscoverySurvivesLoss) {
  double loss = GetParam() / 100.0;
  testbed::SimWorld world(4);
  world.linear();
  world.medium().set_loss_probability(loss);
  world.deploy_all("dymo");
  world.run_for(sec(8));

  // Retries (exponential backoff) must eventually get a route through.
  bool delivered = false;
  for (int attempt = 0; attempt < 8 && !delivered; ++attempt) {
    world.node(0).forwarding().send(world.addr(3), 64);
    world.run_for(sec(6));
    delivered = !world.node(3).deliveries().empty();
  }
  EXPECT_TRUE(delivered) << "no delivery at loss " << loss;
}

INSTANTIATE_TEST_SUITE_P(LossPercent, DymoLossSweep,
                         ::testing::Values(0, 10, 25));

// --------------------------------------------- random geometric connectivity

class GeoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeoSweep, OlsrRoutesMatchConnectivity) {
  testbed::SimWorld world(12, GetParam());
  Rng rng(GetParam());
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < 12; ++i) nodes.push_back(&world.node(i));
  net::topo::random_geometric(world.medium(), nodes, 800, 800, 350, rng);
  world.deploy_all("olsr");
  world.run_for(sec(60));

  // Compute ground-truth reachability from the medium adjacency.
  auto reachable_from = [&](std::size_t start) {
    std::set<net::Addr> seen{world.addr(start)};
    std::queue<net::Addr> q;
    q.push(world.addr(start));
    while (!q.empty()) {
      net::Addr u = q.front();
      q.pop();
      for (net::Addr v : world.medium().neighbors_of(u)) {
        if (seen.insert(v).second) q.push(v);
      }
    }
    return seen;
  };

  auto reach = reachable_from(0);
  for (std::size_t j = 1; j < 12; ++j) {
    bool connected = reach.count(world.addr(j)) > 0;
    if (connected) {
      EXPECT_TRUE(path_reaches(world, 0, world.addr(j)))
          << "connected node " << j << " unroutable (seed " << GetParam()
          << ")";
    } else {
      EXPECT_FALSE(world.has_route(0, world.addr(j)))
          << "route to disconnected node " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoSweep, ::testing::Values(3, 17, 29, 71));

// -------------------------------------------------------------- mobility churn

class MobilitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MobilitySweep, DymoKeepsDeliveringUnderChurn) {
  testbed::SimWorld world(8, GetParam());
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < 8; ++i) nodes.push_back(&world.node(i));
  net::RandomWaypoint::Params params;
  params.width = 600;
  params.height = 600;
  params.min_speed = 1;
  params.max_speed = 8;
  params.range = 280;
  net::RandomWaypoint rwp(world.medium(), nodes, params, GetParam());

  world.deploy_all("dymo");
  world.run_for(sec(5));

  std::size_t sent = 0;
  for (int step = 0; step < 60; ++step) {
    rwp.step(sec(1));
    world.run_for(sec(1));
    if (step % 5 == 0) {
      world.node(0).forwarding().send(world.addr(7), 64);
      ++sent;
    }
  }
  world.run_for(sec(5));

  // Under churn some packets die with broken links; requiring ~25% delivery
  // checks liveness without over-constraining the stochastic topology.
  EXPECT_GE(world.node(7).deliveries().size(), sent / 4)
      << "delivered " << world.node(7).deliveries().size() << "/" << sent;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobilitySweep, ::testing::Values(5, 23));

// ------------------------------------------------- co-deployment chain sweep

class CoexistSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoexistSweep, BothProtocolsHealthyAtEveryScale) {
  std::size_t n = GetParam();
  testbed::SimWorld world(n);
  world.linear();
  for (std::size_t i = 0; i < n; ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  ASSERT_TRUE(world.run_until_routed(sec(120)).has_value());
  world.node(0).forwarding().send(world.addr(n - 1), 64);
  world.run_for(sec(2));
  EXPECT_EQ(world.node(n - 1).deliveries().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoexistSweep, ::testing::Values(3, 5, 7));

}  // namespace
}  // namespace mk
