// End-to-end DYMO integration: NetLink-triggered discovery, path
// accumulation, buffered-packet re-injection, lifetimes and RERR handling.
#include <gtest/gtest.h>

#include "protocols/dymo/dymo_cf.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

testbed::SimWorld& warm_dymo(testbed::SimWorld& world) {
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));  // let neighbour detection settle
  return world;
}

TEST(DymoIntegration, NoRouteTriggersDiscoveryAndDelivery) {
  testbed::SimWorld world(5);
  warm_dymo(world);

  // Sending with no route buffers the packet and triggers a discovery.
  EXPECT_TRUE(world.node(0).forwarding().send(world.addr(4), 512));
  world.run_for(sec(3));

  EXPECT_TRUE(world.has_route(0, world.addr(4)));
  ASSERT_EQ(world.node(4).deliveries().size(), 1u)
      << "buffered packet was not re-injected after discovery";
  EXPECT_EQ(world.node(4).deliveries()[0].hdr.src, world.addr(0));
}

TEST(DymoIntegration, PathAccumulationInstallsIntermediateRoutes) {
  testbed::SimWorld world(5);
  warm_dymo(world);

  world.node(0).forwarding().send(world.addr(4), 128);
  world.run_for(sec(3));

  // Path accumulation: the destination learned routes to the intermediates.
  EXPECT_TRUE(world.has_route(4, world.addr(1)));
  EXPECT_TRUE(world.has_route(4, world.addr(2)));
  EXPECT_TRUE(world.has_route(4, world.addr(3)));
  // And the originator learned the forward route's intermediates via RREP.
  EXPECT_TRUE(world.has_route(0, world.addr(3)));
}

TEST(DymoIntegration, RoutesExpireWithoutUse) {
  testbed::SimWorld world(3);
  warm_dymo(world);

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(0, world.addr(2)));

  // Route lifetime is 5s; without data-plane use it must vanish.
  world.run_for(sec(8));
  EXPECT_FALSE(world.has_route(0, world.addr(2)));
}

TEST(DymoIntegration, DataPlaneUseExtendsLifetime) {
  testbed::SimWorld world(3);
  warm_dymo(world);

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(0, world.addr(2)));

  // Keep using the route for 10s: it must survive the 5s lifetime.
  for (int i = 0; i < 10; ++i) {
    world.node(0).forwarding().send(world.addr(2), 64);
    world.run_for(sec(1));
  }
  EXPECT_TRUE(world.has_route(0, world.addr(2)));
  EXPECT_GE(world.node(2).deliveries().size(), 10u);
}

TEST(DymoIntegration, LinkBreakTriggersRerrAndRediscovery) {
  testbed::SimWorld world(5);
  warm_dymo(world);

  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(0, world.addr(4)));

  // Break the last link, then keep sending: the send failure at node 3 must
  // invalidate and eventually nothing is delivered.
  world.medium().set_link(world.addr(3), world.addr(4), false);
  world.run_for(sec(7));
  world.node(2).clear_deliveries();

  std::size_t before = world.node(4).deliveries().size();
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_EQ(world.node(4).deliveries().size(), before);

  // Repair the link: a fresh send rediscovers and delivers.
  world.medium().set_link(world.addr(3), world.addr(4), true);
  world.run_for(sec(2));
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_GT(world.node(4).deliveries().size(), before);
}

TEST(DymoIntegration, DiscoveryGivesUpForUnreachableTarget) {
  testbed::SimWorld world(3);
  warm_dymo(world);

  net::Addr ghost = net::addr_for_index(99);
  world.node(0).forwarding().send(ghost, 64);
  world.run_for(sec(15));  // 3 tries with exponential backoff, then give up

  auto* st = proto::dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->pending_count(), 0u);
  EXPECT_FALSE(world.has_route(0, ghost));
}

}  // namespace
}  // namespace mk
