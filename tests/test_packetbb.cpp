// PacketBB codec: construction helpers, round-trips (including randomized
// property sweeps via TEST_P), and robustness against malformed input.
#include <gtest/gtest.h>

#include "packetbb/packetbb.hpp"
#include "util/rng.hpp"

namespace mk::pbb {
namespace {

Packet sample_packet() {
  Packet p;
  p.version = 0;
  p.seqnum = 7;
  p.tlvs.push_back(Tlv::u8(1, 0xAA));

  Message m;
  m.type = 2;
  m.originator = 0x0A000001;
  m.has_hops = true;
  m.hop_limit = 255;
  m.hop_count = 3;
  m.seqnum = 99;
  m.tlvs.push_back(Tlv::u16(2, 0xBEEF));
  AddressBlock block;
  block.add_with_u8(0x0A000002, 1, 1);
  block.add_with_u32(0x0A000003, 2, 0xDEADBEEF);
  m.addr_blocks.push_back(block);
  p.messages.push_back(std::move(m));
  return p;
}

TEST(PacketBB, RoundTripSample) {
  Packet p = sample_packet();
  auto bytes = serialize(p);
  auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed.value(), p);
}

TEST(PacketBB, EmptyPacketRoundTrips) {
  Packet p;
  auto parsed = parse(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value(), p);
}

TEST(PacketBB, TlvValueAccessors) {
  EXPECT_EQ(Tlv::u8(1, 0x42).as_u8(), 0x42);
  EXPECT_EQ(Tlv::u16(1, 0x1234).as_u16(), 0x1234);
  EXPECT_EQ(Tlv::u32(1, 0x89ABCDEF).as_u32(), 0x89ABCDEFu);
  EXPECT_THROW(Tlv::empty(1).as_u8(), std::logic_error);
}

TEST(PacketBB, AddressTlvCoversRange) {
  AddressTlv t{1, 2, 4, {0}};
  EXPECT_FALSE(t.covers(1));
  EXPECT_TRUE(t.covers(2));
  EXPECT_TRUE(t.covers(4));
  EXPECT_FALSE(t.covers(5));
}

TEST(PacketBB, MessageSetTlvReplaces) {
  Message m;
  m.set_tlv(Tlv::u8(5, 1));
  m.set_tlv(Tlv::u8(5, 2));
  ASSERT_EQ(m.tlvs.size(), 1u);
  EXPECT_EQ(m.find_tlv(5)->as_u8(), 2);
  EXPECT_EQ(m.find_tlv(6), nullptr);
}

TEST(PacketBB, TruncatedInputIsRejectedNotCrashed) {
  auto bytes = serialize(sample_packet());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto parsed = parse(std::span(bytes.data(), len));
    EXPECT_FALSE(parsed.has_value()) << "accepted truncation at " << len;
  }
}

TEST(PacketBB, TrailingGarbageIsRejected) {
  auto bytes = serialize(sample_packet());
  bytes.push_back(0xFF);
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(PacketBB, AddressTlvIndexOutOfRangeRejected) {
  Packet p;
  Message m;
  m.type = 1;
  AddressBlock block;
  block.addrs.push_back(1);
  block.tlvs.push_back(AddressTlv{1, 0, 5, {0}});  // index_stop beyond addrs
  m.addr_blocks.push_back(block);
  p.messages.push_back(m);
  auto bytes = serialize(p);
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(PacketBB, AddrToString) {
  EXPECT_EQ(addr_to_string(0x0A000001), "10.0.0.1");
  EXPECT_EQ(addr_to_string(0xFFFFFFFF), "255.255.255.255");
}

// ---------------------------------------------------------- property sweeps

class PacketBBFuzz : public ::testing::TestWithParam<std::uint64_t> {};

Packet random_packet(Rng& rng) {
  Packet p;
  if (rng.bernoulli(0.5)) p.seqnum = static_cast<std::uint16_t>(rng.next_u64());
  auto rand_tlv = [&rng] {
    Tlv t;
    t.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t i = 0; i < len; ++i) {
      t.value.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    return t;
  };
  auto ntlvs = rng.uniform_int(0, 3);
  for (int i = 0; i < ntlvs; ++i) p.tlvs.push_back(rand_tlv());

  auto nmsgs = rng.uniform_int(0, 4);
  for (int i = 0; i < nmsgs; ++i) {
    Message m;
    m.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (rng.bernoulli(0.7)) m.originator = static_cast<Addr>(rng.next_u64());
    if (rng.bernoulli(0.7)) {
      m.has_hops = true;
      m.hop_limit = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      m.hop_count = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.7)) m.seqnum = static_cast<std::uint16_t>(rng.next_u64());
    auto mtlvs = rng.uniform_int(0, 3);
    for (int j = 0; j < mtlvs; ++j) m.tlvs.push_back(rand_tlv());
    auto nblocks = rng.uniform_int(0, 2);
    for (int j = 0; j < nblocks; ++j) {
      AddressBlock b;
      auto naddrs = rng.uniform_int(0, 6);
      for (int k = 0; k < naddrs; ++k) {
        b.addrs.push_back(static_cast<Addr>(rng.next_u64()));
      }
      if (naddrs > 0) {
        auto natlvs = rng.uniform_int(0, 2);
        for (int k = 0; k < natlvs; ++k) {
          AddressTlv t;
          t.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
          t.index_start =
              static_cast<std::uint8_t>(rng.uniform_int(0, naddrs - 1));
          t.index_stop = static_cast<std::uint8_t>(
              rng.uniform_int(t.index_start, naddrs - 1));
          t.value = {static_cast<std::uint8_t>(rng.next_u64())};
          b.tlvs.push_back(t);
        }
      }
      m.addr_blocks.push_back(std::move(b));
    }
    p.messages.push_back(std::move(m));
  }
  return p;
}

TEST_P(PacketBBFuzz, RandomPacketsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Packet p = random_packet(rng);
    auto bytes = serialize(p);
    auto parsed = parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << parsed.error();
    EXPECT_EQ(parsed.value(), p);
  }
}

TEST_P(PacketBBFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 120)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    auto parsed = parse(junk);  // must not crash; result may be either
    (void)parsed;
  }
}

TEST_P(PacketBBFuzz, BitFlippedPacketsNeverCrashTheParser) {
  Rng rng(GetParam() * 17 + 3);
  Packet p = random_packet(rng);
  auto bytes = serialize(p);
  if (bytes.empty()) return;
  for (int i = 0; i < 100; ++i) {
    auto copy = bytes;
    auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(copy.size()) - 1));
    copy[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    auto parsed = parse(copy);
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketBBFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mk::pbb
