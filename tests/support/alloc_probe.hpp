// Allocation-accounting probe for the `alloc`-labelled budget tests.
//
// Built on mk::memtrack's counting operator new/delete (linked in via
// mk_util). This file must NOT define allocation operators of its own: the
// interposer already counts every global new, and a second definition would
// collide at link time.
//
// Budgets are only meaningful when that interposer actually sees the
// traffic. Under ASan/TSan/MSan the sanitizer runtime owns allocation (and
// adds bookkeeping allocations of its own), so available() reports false and
// the budget tests GTEST_SKIP. The plain-Release CI job is the one that
// enforces budgets; the sanitizer jobs run the same `alloc` label for its
// backend-parity and pool-poison assertions only (see
// .github/workflows/sanitizers.yml).
#pragma once

#include <cstdint>

namespace mk::test {

/// Window over the process-wide allocation counters: allocs()/bytes() are
/// the *total* (churn, not live) deltas since construction.
class AllocScope {
 public:
  AllocScope();

  std::uint64_t allocs() const;
  std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

struct AllocProbe {
  /// True when the counting interposer is live (compile-time sanitizer
  /// checks plus a runtime probe allocation that must move the counter).
  static bool available();

  /// Opens a counting window.
  static AllocScope scoped() { return AllocScope{}; }
};

}  // namespace mk::test
