#include "support/alloc_probe.hpp"

#include "util/memtrack.hpp"

namespace mk::test {

AllocScope::AllocScope() {
  memtrack::Stats s = memtrack::snapshot();
  start_allocs_ = s.total_allocs;
  start_bytes_ = s.total_bytes;
}

std::uint64_t AllocScope::allocs() const {
  return memtrack::snapshot().total_allocs - start_allocs_;
}

std::uint64_t AllocScope::bytes() const {
  return memtrack::snapshot().total_bytes - start_bytes_;
}

namespace {

constexpr bool compiled_with_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

}  // namespace

bool AllocProbe::available() {
  if (compiled_with_sanitizer()) return false;
  // Runtime probe: an allocation the optimizer cannot elide must move the
  // total_allocs counter, or the interposer is not the one being linked.
  static const bool live = [] {
    std::uint64_t before = memtrack::snapshot().total_allocs;
    auto* volatile p = new std::uint64_t(0xA110C);
    delete p;
    return memtrack::snapshot().total_allocs > before;
  }();
  return live;
}

}  // namespace mk::test
