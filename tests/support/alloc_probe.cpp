#include "support/alloc_probe.hpp"

#include "util/memtrack.hpp"

namespace mk::test {

AllocScope::AllocScope() {
  memtrack::Stats s = memtrack::snapshot();
  start_allocs_ = s.total_allocs;
  start_bytes_ = s.total_bytes;
}

std::uint64_t AllocScope::allocs() const {
  return memtrack::snapshot().total_allocs - start_allocs_;
}

std::uint64_t AllocScope::bytes() const {
  return memtrack::snapshot().total_bytes - start_bytes_;
}

bool AllocProbe::available() { return memtrack::interposer_live(); }

}  // namespace mk::test
