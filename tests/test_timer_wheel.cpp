// Hierarchical timing wheel (ISSUE 6): ordering, cascade boundaries,
// cancel-in-flight, zero-delay arms, overflow horizon, and randomized
// heap-vs-wheel parity at both the wheel and the SimScheduler level.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"
#include "util/scheduler.hpp"
#include "util/timer_wheel.hpp"

namespace mk {
namespace {

constexpr std::int64_t kTick = std::int64_t{1} << TimerWheel::kTickShift;
// Spans, in microseconds, of each wheel level's window.
constexpr std::int64_t kL0Span = kTick * TimerWheel::kSlots;
constexpr std::int64_t kL1Span = kL0Span * TimerWheel::kSlots;
constexpr std::int64_t kL2Span = kL1Span * TimerWheel::kSlots;
constexpr std::int64_t kL3Span = kL2Span * TimerWheel::kSlots;

/// Drains the wheel, returning the popped keys in fire order.
std::vector<TimerWheel::Key> drain(TimerWheel& wheel) {
  std::vector<TimerWheel::Key> out;
  TimerWheel::Key key;
  std::function<void()> fn;
  while (wheel.pop(key, fn)) {
    out.push_back(key);
    if (fn) fn();
  }
  return out;
}

TEST(TimerWheel, PopsInTimeThenSeqOrder) {
  TimerWheel wheel;
  wheel.insert(300, 1, [] {});
  wheel.insert(100, 2, [] {});
  wheel.insert(100, 3, [] {});
  wheel.insert(200, 4, [] {});
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], (TimerWheel::Key{100, 2}));
  EXPECT_EQ(keys[1], (TimerWheel::Key{100, 3}));
  EXPECT_EQ(keys[2], (TimerWheel::Key{200, 4}));
  EXPECT_EQ(keys[3], (TimerWheel::Key{300, 1}));
}

TEST(TimerWheel, ZeroDelayArmFiresImmediately) {
  TimerWheel wheel;
  // Simulate "schedule at now" after the wheel has advanced: pop an entry to
  // move the cursor, then arm at the already-reached time.
  wheel.insert(5 * kTick, 1, [] {});
  TimerWheel::Key key;
  std::function<void()> fn;
  ASSERT_TRUE(wheel.pop(key, fn));
  wheel.insert(5 * kTick, 2, [] {});  // same-tick re-arm
  wheel.insert(0, 3, [] {});          // behind the cursor entirely
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), 2u);
  // The stale deadline still fires first: per-slot ordering is by (us, seq).
  EXPECT_EQ(keys[0], (TimerWheel::Key{0, 3}));
  EXPECT_EQ(keys[1], (TimerWheel::Key{5 * kTick, 2}));
}

TEST(TimerWheel, CascadeAcrossEveryLevelBoundary) {
  // One entry per level, each just past the previous level's horizon, plus
  // one just *inside* each boundary — exercises slot placement and the
  // cascade path at all three level crossings.
  TimerWheel wheel;
  std::vector<std::int64_t> times = {
      kL0Span - kTick, kL0Span,          // level 0/1 edge
      kL1Span - kTick, kL1Span,          // level 1/2 edge
      kL2Span - kTick, kL2Span,          // level 2/3 edge
      kL3Span - kTick,                   // deep level 3
  };
  std::uint64_t seq = 1;
  for (std::int64_t t : times) wheel.insert(t, seq++, [] {});
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(keys[i].us, times[i]) << "position " << i;
  }
}

TEST(TimerWheel, FarFutureOverflowsAndStillFiresInOrder)
{
  TimerWheel wheel;
  const std::int64_t never = sec(1'000'000'000).count();  // fault-plan sentinel
  wheel.insert(never, 1, [] {});
  wheel.insert(kTick, 2, [] {});
  wheel.insert(never - 1, 3, [] {});
  EXPECT_EQ(wheel.size(), 3u);
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].seq, 2u);
  EXPECT_EQ(keys[1].seq, 3u);
  EXPECT_EQ(keys[2].seq, 1u);
}

TEST(TimerWheel, CancelRemovesPendingEntries) {
  TimerWheel wheel;
  wheel.insert(100, 1, [] {});
  wheel.insert(kL1Span + 5, 2, [] {});                       // level 2
  wheel.insert(sec(1'000'000'000).count(), 3, [] {});        // overflow
  EXPECT_TRUE(wheel.cancel(2));
  EXPECT_TRUE(wheel.cancel(3));
  EXPECT_FALSE(wheel.cancel(3));  // second cancel is a no-op
  EXPECT_FALSE(wheel.cancel(99));
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].seq, 1u);
}

TEST(TimerWheel, CancelInFlightFromACallback) {
  // A firing callback cancels a peer armed for the same tick and a later one:
  // neither must fire, and the wheel must stay consistent.
  TimerWheel wheel;
  std::vector<std::uint64_t> fired;
  wheel.insert(100, 1, [&] {
    wheel.cancel(2);
    wheel.cancel(3);
  });
  wheel.insert(100, 2, [&] { fired.push_back(2); });
  wheel.insert(5000, 3, [&] { fired.push_back(3); });
  wheel.insert(5000, 4, [&] { fired.push_back(4); });
  auto keys = drain(wheel);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[1].seq, 4u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{4}));
}

TEST(TimerWheel, RandomizedParityAgainstSortedReference) {
  Rng rng(1234);
  TimerWheel wheel;
  std::vector<TimerWheel::Key> pending;  // armed, not yet popped or canceled
  std::vector<TimerWheel::Key> expect;   // everything that should fire
  std::uint64_t seq = 1;
  std::int64_t base = 0;
  // Interleave pops with bursts of arms/cancels across all horizons.
  std::vector<TimerWheel::Key> got;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 20; ++i) {
      std::int64_t horizon = 0;
      switch (rng.next_u64() % 4) {
        case 0: horizon = kL0Span; break;
        case 1: horizon = kL1Span; break;
        case 2: horizon = kL2Span; break;
        default: horizon = 4 * kL3Span; break;  // forces overflow sometimes
      }
      std::int64_t at =
          base + static_cast<std::int64_t>(rng.next_u64() % horizon);
      wheel.insert(at, seq, [] {});
      pending.push_back({at, seq});
      ++seq;
    }
    if (!pending.empty() && rng.next_u64() % 2 == 0) {
      std::size_t victim = rng.next_u64() % pending.size();
      ASSERT_TRUE(wheel.cancel(pending[victim].seq));
      pending.erase(pending.begin() + victim);
    }
    for (int i = 0; i < 15; ++i) {
      TimerWheel::Key key;
      std::function<void()> fn;
      if (!wheel.pop(key, fn)) break;
      got.push_back(key);
      expect.push_back(key);
      base = std::max(base, key.us);
      auto it = std::find_if(pending.begin(), pending.end(),
                             [&](const auto& p) { return p.seq == key.seq; });
      ASSERT_NE(it, pending.end()) << "popped an entry not pending";
      pending.erase(it);
    }
  }
  for (auto& k : drain(wheel)) got.push_back(k);
  expect.insert(expect.end(), pending.begin(), pending.end());
  std::sort(expect.begin(), expect.end());
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
      << "wheel fire order diverged from the sorted reference";
}

// ---------------------------------------------------------------- scheduler

TEST(SimSchedulerBackend, WheelAndHeapRunIdenticalSchedules) {
  auto run = [](SimBackend backend) {
    SimScheduler sched(backend);
    Rng rng(77);
    std::vector<std::pair<std::int64_t, TimerId>> fired;
    sched.set_fire_hook([&](TimerId id, TimePoint at) {
      fired.emplace_back(at.us, id);
    });
    std::vector<TimerId> ids;
    for (int i = 0; i < 500; ++i) {
      auto at = TimePoint{static_cast<std::int64_t>(rng.next_u64() % 5'000'000)};
      ids.push_back(sched.schedule_at(at, [] {}));
    }
    for (int i = 0; i < 100; ++i) {
      sched.cancel(ids[rng.next_u64() % ids.size()]);
    }
    sched.run_all();
    return fired;
  };
  auto wheel = run(SimBackend::kWheel);
  auto heap = run(SimBackend::kHeap);
  ASSERT_EQ(wheel.size(), heap.size());
  EXPECT_EQ(wheel, heap) << "backends disagreed on fire order or timer ids";
}

TEST(SimSchedulerBackend, WheelHandlesSelfReschedulingChains) {
  SimScheduler sched;  // wheel is the default
  EXPECT_EQ(sched.backend(), SimBackend::kWheel);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 64) sched.schedule_after(msec(1), chain);
  };
  sched.schedule_after(msec(1), chain);
  sched.run_all();
  EXPECT_EQ(depth, 64);
  EXPECT_EQ(sched.now().us, 64 * 1000);
}

}  // namespace
}  // namespace mk
