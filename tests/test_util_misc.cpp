// BlockingQueue, ThreadPool, ByteWriter/Reader, Summary/Samples, memtrack,
// Result, Rng.
#include <gtest/gtest.h>

#include <thread>

#include "util/bytebuffer.hpp"
#include "util/memtrack.hpp"
#include "util/queue.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"

namespace mk {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
    q.close();
  });
  int sum = 0;
  while (auto v = q.pop()) sum += *v;
  producer.join();
  EXPECT_EQ(sum, 499500);
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ++count; });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ByteBuffer, RoundTripsAllWidths) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xCDEF);
  w.put_u32(0x12345678);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_string("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xCDEF);
  EXPECT_EQ(r.get_u32(), 0x12345678u);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, BigEndianOnTheWire) {
  ByteWriter w;
  w.put_u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(ByteBuffer, UnderflowThrows) {
  std::vector<std::uint8_t> bytes{1, 2};
  ByteReader r(bytes);
  EXPECT_THROW(r.get_u32(), BufferUnderflow);
}

TEST(ByteBuffer, PatchU16) {
  ByteWriter w;
  std::size_t slot = w.reserve_u16();
  w.put_u32(42);
  w.patch_u16(slot, static_cast<std::uint16_t>(w.size()));
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u16(), 6);
}

TEST(ByteBuffer, SliceIsBoundedView) {
  ByteWriter w;
  w.put_u32(7);
  w.put_u32(9);
  ByteReader r(w.data());
  ByteReader sub = r.slice(4);
  EXPECT_EQ(sub.get_u32(), 7u);
  EXPECT_THROW(sub.get_u8(), BufferUnderflow);
  EXPECT_EQ(r.get_u32(), 9u);
}

TEST(Stats, SummaryWelford) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, SamplesQuantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.p99(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, SamplesAddAfterQuantileResorts) {
  // Regression: add() must invalidate the quantile sort cache — a stale
  // cache made later quantiles ignore (or misplace) newly added samples.
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_EQ(s.max(), 5.0);  // sorts {1, 5} and caches
  s.add(9.0);
  s.add(0.5);
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.median(), 5.0, 4.0);
}

TEST(Memtrack, ScopeSeesAllocations) {
  memtrack::Scope scope;
  auto* p = new std::vector<int>(10000);
  EXPECT_GE(scope.live_bytes_delta(), 10000u * sizeof(int));
  delete p;
  EXPECT_LT(scope.live_bytes_delta(), 10000u * sizeof(int));
}

TEST(ResultT, OkAndFail) {
  Result<int> ok = Result<int>::ok(42);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Result<int>::fail("nope");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(RngT, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngT, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace mk
