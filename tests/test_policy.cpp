// Policy engine: rule evaluation, sustain/cooldown semantics, context
// snapshots, and the default adaptive rule set driving real protocol
// switches and variant application.
#include <gtest/gtest.h>

#include "policy/policy_engine.hpp"
#include "protocols/olsr/power_aware.hpp"
#include "testbed/world.hpp"

namespace mk::policy {
namespace {

TEST(PolicyEngine, SnapshotReflectsNodeState) {
  testbed::SimWorld world(3);
  world.full_mesh();
  world.kit(0).deploy("olsr");
  world.node(0).set_battery(0.6);

  Engine engine(world.kit(0));
  auto view = engine.snapshot();
  EXPECT_EQ(view.neighbor_count, 2u);
  EXPECT_DOUBLE_EQ(view.battery, 0.6);
  EXPECT_TRUE(view.deployed("olsr"));
  EXPECT_TRUE(view.deployed("mpr"));
  EXPECT_FALSE(view.deployed("dymo"));
  EXPECT_FALSE(view.power_aware);
}

TEST(PolicyEngine, RuleFiresWhenConditionHolds) {
  testbed::SimWorld world(1);
  Engine engine(world.kit(0));
  int fired = 0;
  engine.add_rule(Rule{"always",
                       [](const ContextView&) { return true; },
                       [&fired](core::Manetkit&) { ++fired; },
                       /*cooldown=*/sec(0), /*sustain=*/1});
  EXPECT_EQ(engine.evaluate(), std::vector<std::string>{"always"});
  EXPECT_EQ(fired, 1);
}

TEST(PolicyEngine, CooldownSuppressesRefiring) {
  testbed::SimWorld world(1);
  Engine engine(world.kit(0));
  int fired = 0;
  engine.add_rule(Rule{"cool",
                       [](const ContextView&) { return true; },
                       [&fired](core::Manetkit&) { ++fired; },
                       /*cooldown=*/sec(10), /*sustain=*/1});
  engine.evaluate();
  engine.evaluate();  // within cooldown: suppressed
  EXPECT_EQ(fired, 1);
  world.run_for(sec(11));
  engine.evaluate();
  EXPECT_EQ(fired, 2);
}

TEST(PolicyEngine, SustainDebouncesFlappingCondition) {
  testbed::SimWorld world(1);
  Engine engine(world.kit(0));
  int fired = 0;
  bool flag = false;
  engine.add_rule(Rule{"sustained",
                       [&flag](const ContextView&) { return flag; },
                       [&fired](core::Manetkit&) { ++fired; },
                       /*cooldown=*/sec(0), /*sustain=*/3});
  flag = true;
  engine.evaluate();
  engine.evaluate();
  EXPECT_EQ(fired, 0);  // held only twice
  flag = false;
  engine.evaluate();    // resets the hold counter
  flag = true;
  engine.evaluate();
  engine.evaluate();
  EXPECT_EQ(fired, 0);
  engine.evaluate();    // third consecutive hold
  EXPECT_EQ(fired, 1);
}

TEST(PolicyEngine, ThrowingConditionIsIsolated) {
  testbed::SimWorld world(1);
  Engine engine(world.kit(0));
  int fired = 0;
  engine.add_rule(Rule{"bad",
                       [](const ContextView&) -> bool {
                         throw std::runtime_error("boom");
                       },
                       [](core::Manetkit&) {}, sec(0), 1});
  engine.add_rule(Rule{"good",
                       [](const ContextView&) { return true; },
                       [&fired](core::Manetkit&) { ++fired; }, sec(0), 1});
  EXPECT_EQ(engine.evaluate(), std::vector<std::string>{"good"});
  EXPECT_EQ(fired, 1);
}

TEST(PolicyEngine, PowerStatusSignalReachesRules) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.system().ensure_power_status(msec(500));
  world.node(0).set_battery(0.33);

  Engine engine(kit);
  world.run_for(sec(2));
  auto view = engine.snapshot();
  EXPECT_NEAR(view.signal("battery", -1), 0.33, 1e-9);
}

TEST(DefaultRules, DenseNetworkSwitchesToReactive) {
  testbed::SimWorld world(8);
  world.full_mesh();  // 7 neighbours each: dense
  world.deploy_all("olsr");
  world.run_for(sec(10));

  Engine engine(world.kit(0));
  for (auto& r : default_adaptive_rules(/*reactive_threshold=*/6)) {
    engine.add_rule(std::move(r));
  }
  engine.start(sec(2));
  world.run_for(sec(10));

  EXPECT_FALSE(world.kit(0).is_deployed("olsr"));
  EXPECT_TRUE(world.kit(0).is_deployed("dymo"));
  EXPECT_GE(engine.firings().at("dense-network-switch-to-reactive"), 1u);
}

TEST(DefaultRules, LowBatteryAppliesPowerAwareAndRecovers) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(10));

  Engine engine(world.kit(1));
  for (auto& r : default_adaptive_rules(/*reactive_threshold=*/50,
                                        /*low_battery=*/0.3)) {
    engine.add_rule(std::move(r));
  }
  engine.start(sec(1));

  world.node(1).set_battery(0.15);
  world.run_for(sec(5));
  EXPECT_TRUE(proto::is_power_aware(world.kit(1)));

  world.node(1).set_battery(0.9);
  world.run_for(sec(40));  // past the cooldown
  EXPECT_FALSE(proto::is_power_aware(world.kit(1)));
}

TEST(DefaultRules, SparseNetworkReturnsToProactive) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  Engine engine(world.kit(1));
  for (auto& r : default_adaptive_rules(/*reactive_threshold=*/6)) {
    engine.add_rule(std::move(r));
  }
  engine.start(sec(2));
  world.run_for(sec(15));  // sustain=2 needs two evaluations

  EXPECT_TRUE(world.kit(1).is_deployed("olsr"));
  EXPECT_FALSE(world.kit(1).is_deployed("dymo"));
}

// ---------------------------------------- replication rules (ISSUE 10)

TEST(ReplicationRules, SnapshotCarriesReplicationContext) {
  testbed::SimWorld world(2);
  world.linear();
  world.enable_replication();
  world.deploy_all("olsr");

  Engine engine(world.kit(0));
  auto view = engine.snapshot();
  EXPECT_EQ(view.replication, core::ReplicationStrategy::kCheckpoint);
  EXPECT_EQ(view.replicas_held, 0u);  // nothing spread yet
  EXPECT_FALSE(view.replicated());

  world.run_for(sec(10));  // checkpoints spread both ways
  view = engine.snapshot();
  EXPECT_GT(view.replicas_held, 0u);
  EXPECT_TRUE(view.replicated());
  EXPECT_GE(view.own_replica_age_us, 0);
}

TEST(ReplicationRules, DegradedUnitEscalatesToHotStandbyAndRelaxesBack) {
  testbed::SimWorld world(1);
  world.enable_replication();
  supervision::SupervisorOptions opts;
  opts.initial_backoff = sec(30);  // keep the quarantine visibly open
  world.enable_supervision(opts);
  auto& kit = world.kit(0);
  kit.deploy("olsr");

  Engine engine(kit);
  for (Rule& r : make_replication_adaptive_rules(/*cooldown=*/sec(0))) {
    engine.add_rule(std::move(r));
  }

  ASSERT_EQ(kit.replication()->strategy(),
            core::ReplicationStrategy::kCheckpoint);

  // A quarantined unit makes the health signal non-empty: escalate. The MPR
  // CF provides NHOOD_CHANGE, one of OLSR's required events, so emitting it
  // there delivers into the misbehaving OLSR unit through the guard.
  world.supervisor(0)->set_misbehaviour("olsr", supervision::Misbehaviour::kThrow);
  for (int i = 0; i < 4; ++i) {
    kit.protocol("mpr")->emit(ev::Event(ev::etype("NHOOD_CHANGE")));
    world.run_for(msec(100));
  }
  ASSERT_EQ(world.supervisor(0)->health("olsr"),
            supervision::UnitHealth::kQuarantined);
  engine.evaluate();
  EXPECT_EQ(kit.replication()->strategy(),
            core::ReplicationStrategy::kHotStandby);

  // Forgiven and clean for three consecutive evaluations: relax.
  world.supervisor(0)->set_misbehaviour("olsr", supervision::Misbehaviour::kNone);
  world.supervisor(0)->forgive("olsr");
  engine.evaluate();
  engine.evaluate();
  engine.evaluate();
  EXPECT_EQ(kit.replication()->strategy(),
            core::ReplicationStrategy::kCheckpoint);
}

}  // namespace
}  // namespace mk::policy
