// Enforced allocation budgets for the steady-state hot paths (the
// allocation-free steady state work), plus the conformance assertions the
// memory discipline rests on:
//
//  * AllocBudget.*      — hard allocs-per-operation budgets measured through
//                         the mk::memtrack interposer (tests/support/
//                         alloc_probe). Skipped under sanitizers, where the
//                         sanitizer runtime owns allocation; the
//                         plain-Release CI job enforces them.
//  * MemBackendParity.* — the MemBackend::kHeap oracle: pooled and plain-
//                         heap runs of the same seeded scenario must produce
//                         bit-identical ordered journal digests (the third
//                         instance of the wheel/heap and grid/reference
//                         oracle pattern). Runs everywhere, sanitizers
//                         included.
//  * PoolPoison.*       — randomized acquire/release churn against the
//                         message pool and event arena: live handles must
//                         never observe recycled (0xA5-poisoned) state, and
//                         outstanding counts must return to zero.
//  * MemPoolObservability.* — mem.pool.* gauges expose hit/miss/outstanding.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "core/event_arena.hpp"
#include "events/event.hpp"
#include "fault/plan.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "packetbb/message_pool.hpp"
#include "packetbb/packetbb.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "support/alloc_probe.hpp"
#include "testbed/world.hpp"
#include "util/mem.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

using test::AllocProbe;

pbb::Packet make_packet(std::size_t advertised) {
  std::set<net::Addr> sel;
  for (std::size_t i = 0; i < advertised; ++i) {
    sel.insert(net::addr_for_index(static_cast<std::uint32_t>(i + 1)));
  }
  pbb::Packet pkt;
  pkt.messages.push_back(proto::tc::build(net::addr_for_index(0), 17, 3, sel));
  return pkt;
}

// ----------------------------------------------------------- alloc budgets

#define REQUIRE_PROBE()                                                   \
  if (!AllocProbe::available())                                           \
  GTEST_SKIP() << "allocation interposer not live (sanitizer build); the " \
                  "plain-Release CI job enforces this budget"

TEST(AllocBudget, SerializeIntoWarmBufferIsAllocationFree) {
  REQUIRE_PROBE();
  pbb::Packet pkt = make_packet(16);
  std::vector<std::uint8_t> buf;
  pbb::serialize_into(pkt, buf);  // warm-up: sizes the recycled buffer

  auto scope = AllocProbe::scoped();
  for (int i = 0; i < 200; ++i) pbb::serialize_into(pkt, buf);
  EXPECT_EQ(scope.allocs(), 0u) << "serialize_into must reuse the buffer";
}

TEST(AllocBudget, ParseIntoWarmScratchIsAllocationFree) {
  REQUIRE_PROBE();
  pbb::Packet pkt = make_packet(16);
  std::vector<std::uint8_t> bytes = pbb::serialize(pkt);
  pbb::Packet scratch;
  ASSERT_TRUE(pbb::parse_into(bytes, scratch));  // warm-up: grows the slots

  auto scope = AllocProbe::scoped();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pbb::parse_into(bytes, scratch));
  }
  EXPECT_EQ(scope.allocs(), 0u)
      << "a steady stream of same-shaped packets must slot-fill the scratch";
}

TEST(AllocBudget, CowEventCloneCostsAtMostOneAllocation) {
  REQUIRE_PROBE();
  mem::BackendGuard backend(mem::MemBackend::kPool);
  ev::Event original(ev::etype("AB_COW"));
  original.set_msg(make_packet(16).messages[0]);

  // Warm-up: one clone cycle populates the message pool and the control
  // block free lists with slots of the right shape.
  {
    ev::Event copy = original;
    copy.mutable_msg().hop_count = 1;
  }

  auto scope = AllocProbe::scoped();
  constexpr int kIters = 100;
  for (int i = 0; i < kIters; ++i) {
    ev::Event copy = original;                 // shares the message
    copy.mutable_msg().hop_count = 2;          // COW: one pooled acquire
  }
  EXPECT_LE(scope.allocs(), static_cast<std::uint64_t>(kIters))
      << "COW clone must cost at most one allocation per copy (zero when "
         "the pool is warm)";
}

TEST(AllocBudget, TimerArmCancelIsAllocationFreeWhenWarm) {
  REQUIRE_PROBE();
  SimScheduler sched;  // hierarchical wheel backend: pooled timer nodes
  int fired = 0;
  auto id = sched.schedule_after(sec(1), [&fired] { ++fired; });  // warm-up
  ASSERT_TRUE(sched.cancel(id));

  auto scope = AllocProbe::scoped();
  for (int i = 0; i < 200; ++i) {
    auto t = sched.schedule_after(sec(1), [&fired] { ++fired; });
    ASSERT_TRUE(sched.cancel(t));
  }
  EXPECT_EQ(scope.allocs(), 0u)
      << "wheel arm/cancel must recycle timer nodes (SBO-sized callbacks)";
  EXPECT_EQ(fired, 0);
}

// The headline budget: one traced sim-second of a converged 5-node OLSR
// world (the BM_OlsrWorldSecond/1 workload) must stay within 50 heap
// allocations per sim-second under the pooled backend. The pre-pool seed
// measured ~385 allocs/op on this exact scenario.
TEST(AllocBudget, TracedOlsrWorldSecondStaysUnderBudget) {
  REQUIRE_PROBE();
  constexpr std::uint64_t kBudgetPerSecond = 50;
  mem::BackendGuard backend(mem::MemBackend::kPool);
  testbed::SimWorld world(5, /*seed=*/42);
  world.linear();
  world.enable_tracing();
  world.deploy_all("olsr");
  world.run_for(sec(10));  // converge before measuring the steady state

  constexpr int kSeconds = 5;
  auto scope = AllocProbe::scoped();
  for (int i = 0; i < kSeconds; ++i) world.run_for(sec(1));
  std::uint64_t per_second = scope.allocs() / kSeconds;
  EXPECT_LE(per_second, kBudgetPerSecond)
      << "steady-state OLSR world-second regressed: " << per_second
      << " allocs/sim-second (budget " << kBudgetPerSecond << ")";
}

// ------------------------------------------------------ pooled/heap oracle

struct RunSignature {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
};

/// OLSR+DYMO co-deployment on a lossy linear topology, fully traced.
RunSignature run_coexist(mem::MemBackend backend) {
  mem::BackendGuard guard(backend);
  testbed::SimWorld world(4, /*seed=*/7);
  auto& journal = world.enable_tracing();
  world.linear();
  world.medium().set_loss_probability(0.05);
  for (std::size_t i = 0; i < world.size(); ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  world.run_for(sec(20));
  return {journal.ordered_digest(), journal.canonical_digest(),
          journal.total()};
}

/// A chaos cell: OLSR under a loss burst plus a mid-run node crash.
RunSignature run_chaos_cell(mem::MemBackend backend) {
  mem::BackendGuard guard(backend);
  testbed::SimWorld world(5, /*seed=*/99);
  auto& journal = world.enable_tracing();
  world.linear();
  world.deploy_all("olsr");
  fault::FaultPlan plan;
  plan.loss_burst(sec(5), 0.3, sec(5));
  plan.crash(sec(12), world.addr(4));
  world.apply_fault_plan(plan);
  world.run_for(sec(20));
  return {journal.ordered_digest(), journal.canonical_digest(),
          journal.total()};
}

TEST(MemBackendParity, CoexistenceDigestsMatchPooledVsHeap) {
  RunSignature pooled = run_coexist(mem::MemBackend::kPool);
  RunSignature heap = run_coexist(mem::MemBackend::kHeap);
  EXPECT_EQ(pooled.total, heap.total);
  EXPECT_EQ(pooled.ordered, heap.ordered)
      << "pooled allocation changed observable behaviour (OLSR+DYMO)";
  EXPECT_EQ(pooled.canonical, heap.canonical);
  EXPECT_GT(pooled.total, 0u);
}

TEST(MemBackendParity, ChaosCellDigestsMatchPooledVsHeap) {
  RunSignature pooled = run_chaos_cell(mem::MemBackend::kPool);
  RunSignature heap = run_chaos_cell(mem::MemBackend::kHeap);
  EXPECT_EQ(pooled.total, heap.total);
  EXPECT_EQ(pooled.ordered, heap.ordered)
      << "pooled allocation changed observable behaviour (chaos cell)";
  EXPECT_EQ(pooled.canonical, heap.canonical);
  EXPECT_GT(pooled.total, 0u);
}

// ----------------------------------------------------------- pool poisoning

/// Randomized acquire/stamp/verify/release churn. Every live handle carries
/// a token written at acquire; if recycling ever handed the same slot to two
/// live handles, or poisoned a live slot, the token check fails (freed slots
/// are filled with mem::kPoisonByte, so corruption shows up as 0xA5 bytes,
/// not as a plausible stale value).
TEST(PoolPoison, RandomizedRecyclingNeverExposesPoisonedState) {
  mem::BackendGuard backend(mem::MemBackend::kPool);
  std::int64_t msgs_before = pbb::message_pool_outstanding();
  std::int64_t events_before = core::event_arena_outstanding();

  std::mt19937 rng(0xA5A5);
  ev::EventTypeId fuzz_type = ev::etype("AB_FUZZ");

  struct LiveMsg {
    std::shared_ptr<pbb::Message> m;
    std::uint32_t token;
  };
  struct LiveEvent {
    std::shared_ptr<ev::Event> e;
    std::uint32_t token;
  };
  std::vector<LiveMsg> msgs;
  std::vector<LiveEvent> events;
  std::uint32_t next_token = 1;

  auto stamp_msg = [](pbb::Message& m, std::uint32_t token) {
    m.type = static_cast<std::uint8_t>(token & 0x7F);
    m.originator = static_cast<pbb::Addr>(token);
    m.seqnum = static_cast<std::uint16_t>(token & 0xFFFF);
    m.tlvs.clear();
    m.tlvs.push_back(pbb::Tlv::u32(1, token));
    m.addr_blocks.clear();
  };
  auto verify_msg = [](const LiveMsg& lm) {
    ASSERT_EQ(lm.m->type, static_cast<std::uint8_t>(lm.token & 0x7F));
    ASSERT_TRUE(lm.m->originator.has_value());
    ASSERT_EQ(*lm.m->originator, static_cast<pbb::Addr>(lm.token));
    ASSERT_TRUE(lm.m->seqnum.has_value());
    ASSERT_EQ(*lm.m->seqnum, static_cast<std::uint16_t>(lm.token & 0xFFFF));
    ASSERT_EQ(lm.m->tlvs.size(), 1u);
    ASSERT_EQ(lm.m->tlvs[0].as_u32(), lm.token);
  };
  auto verify_event = [fuzz_type](const LiveEvent& le) {
    ASSERT_EQ(le.e->type(), fuzz_type);
    ASSERT_EQ(le.e->get_int("tok", -1),
              static_cast<std::int64_t>(le.token));
  };

  for (int step = 0; step < 20'000; ++step) {
    switch (rng() % 5) {
      case 0: {  // acquire + stamp a message
        LiveMsg lm{pbb::acquire_message(), next_token++};
        stamp_msg(*lm.m, lm.token);
        msgs.push_back(std::move(lm));
        break;
      }
      case 1: {  // release a random message
        if (msgs.empty()) break;
        std::size_t i = rng() % msgs.size();
        verify_msg(msgs[i]);
        std::swap(msgs[i], msgs.back());
        msgs.pop_back();
        break;
      }
      case 2: {  // acquire + stamp an event
        LiveEvent le{core::acquire_event(fuzz_type), next_token++};
        le.e->set_int("tok", static_cast<std::int64_t>(le.token));
        events.push_back(std::move(le));
        break;
      }
      case 3: {  // release a random event
        if (events.empty()) break;
        std::size_t i = rng() % events.size();
        verify_event(events[i]);
        std::swap(events[i], events.back());
        events.pop_back();
        break;
      }
      default: {  // periodic sweep over everything still live
        if (step % 512 != 4) break;
        for (const LiveMsg& lm : msgs) verify_msg(lm);
        for (const LiveEvent& le : events) verify_event(le);
        break;
      }
    }
  }
  for (const LiveMsg& lm : msgs) verify_msg(lm);
  for (const LiveEvent& le : events) verify_event(le);

  msgs.clear();
  events.clear();
  EXPECT_EQ(pbb::message_pool_outstanding(), msgs_before)
      << "message handles leaked (outstanding must return to its baseline)";
  EXPECT_EQ(core::event_arena_outstanding(), events_before)
      << "event handles leaked (outstanding must return to its baseline)";
  pbb::message_pool_trim();
  core::event_arena_trim();
}

// ----------------------------------------------------------- observability

TEST(MemPoolObservability, PublishPoolGaugesExposesHitMissOutstanding) {
  mem::BackendGuard backend(mem::MemBackend::kPool);
  auto handle = pbb::acquire_message();  // forces pool registration
  obs::MetricsRegistry registry;
  registry.publish_pool_gauges();

  bool saw_outstanding = false;
  for (const auto& [name, value] : registry.gauges()) {
    if (name == "mem.pool.pbb.message.outstanding") {
      saw_outstanding = true;
      EXPECT_GE(value, 1) << "the live handle above must be visible";
    }
    EXPECT_EQ(name.rfind("mem.pool.", 0), 0u) << "unexpected gauge " << name;
  }
  EXPECT_TRUE(saw_outstanding);
}

}  // namespace
}  // namespace mk
