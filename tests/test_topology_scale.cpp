// Scale conformance for the spatial-hash topology core (perf_opt ISSUE 7).
//
// The grid backend (SpatialGrid + RangeLinkTracker) must be *bit-identical*
// to the exhaustive O(n²) reference oracle: same link sets at every mobility
// step and same ordered journal digests — the flip ordering rule
// (sort by (min addr, max addr) before applying) is what pins the journal
// stream down. On top of conformance, the smoke test bounds the medium's
// pair-eval counter so the grid path can never silently regress to an
// all-pairs scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/spatial_index.hpp"
#include "net/topology.hpp"
#include "testbed/world.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

using net::topo::TopologyBackend;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

/// Neighbour sets of every node, in address order (flat copy for equality).
std::vector<std::vector<net::Addr>> link_sets(testbed::SimWorld& world) {
  std::vector<std::vector<net::Addr>> out;
  out.reserve(world.size());
  for (std::size_t i = 0; i < world.size(); ++i) {
    auto span = world.medium().neighbors_of(world.addr(i));
    out.emplace_back(span.begin(), span.end());
  }
  return out;
}

// ------------------------------------------------------------- SpatialGrid

TEST(SpatialGrid, GatherCoversNineCellNeighbourhood) {
  net::SpatialGrid grid(100.0);
  grid.insert(0, {50, 50});     // centre cell
  grid.insert(1, {150, 50});    // east cell
  grid.insert(2, {50, 150});    // north cell
  grid.insert(3, {350, 350});   // far away
  std::vector<std::uint32_t> out;
  grid.gather({60, 60}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(SpatialGrid, MoveRelocatesAcrossCells) {
  net::SpatialGrid grid(100.0);
  grid.insert(7, {10, 10});
  grid.move(7, {10, 10}, {510, 510});
  std::vector<std::uint32_t> out;
  grid.gather({20, 20}, out);
  EXPECT_TRUE(out.empty());
  grid.gather({520, 520}, out);
  EXPECT_EQ(out, std::vector<std::uint32_t>{7});
}

TEST(SpatialGrid, NegativeCoordinatesHashDistinctCells) {
  net::SpatialGrid grid(100.0);
  grid.insert(0, {-50, -50});
  grid.insert(1, {50, 50});
  std::vector<std::uint32_t> out;
  grid.gather({-60, -60}, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}))
      << "adjacent cells across the origin must be probed";
}

// -------------------------------------------------- stateless apply parity

TEST(TopologyScale, StatelessGridApplyMatchesReference) {
  const std::size_t n = 64;
  SimScheduler sg, sr;
  net::SimMedium mg(sg), mr(sr);
  obs::Journal jg, jr;
  mg.set_journal(&jg);
  mr.set_journal(&jr);
  std::vector<std::unique_ptr<net::SimNode>> ng, nr;
  std::vector<net::SimNode*> pg, pr;
  for (std::uint32_t i = 0; i < n; ++i) {
    ng.push_back(std::make_unique<net::SimNode>(i, mg, sg));
    nr.push_back(std::make_unique<net::SimNode>(i, mr, sr));
    pg.push_back(ng.back().get());
    pr.push_back(nr.back().get());
  }
  Rng rng_g(chaos_seed()), rng_r(chaos_seed());
  // Several rounds of fresh placements: each apply must tear down the stale
  // links of the previous round identically on both backends.
  for (int round = 0; round < 5; ++round) {
    net::topo::random_geometric(mg, pg, 900, 900, 250, rng_g,
                                TopologyBackend::kGrid);
    net::topo::random_geometric(mr, pr, 900, 900, 250, rng_r,
                                TopologyBackend::kReference);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto a = mg.neighbors_of(net::addr_for_index(i));
      auto b = mr.neighbors_of(net::addr_for_index(i));
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "round " << round << " node " << i;
    }
    ASSERT_EQ(jg.ordered_digest(), jr.ordered_digest()) << "round " << round;
  }
  EXPECT_LT(mg.stats().pair_evals, mr.stats().pair_evals)
      << "grid backend must test fewer pairs than the all-pairs oracle";
}

// ------------------------------------------- randomized mobility parity

/// The ISSUE 7 acceptance scenario: 500 nodes under RandomWaypoint for 60
/// sim-seconds; grid and reference backends must produce identical link sets
/// at every step and identical ordered journal digests throughout.
TEST(TopologyScale, GridMatchesReferenceUnder500NodeRandomWaypoint) {
  const std::size_t n = 500;
  const std::uint64_t seed = chaos_seed();
  net::RandomWaypoint::Params p;
  p.width = 4000;
  p.height = 4000;
  p.range = 250;
  testbed::SimWorld grid_world(n, /*seed=*/seed);
  testbed::SimWorld ref_world(n, /*seed=*/seed);
  obs::Journal& jg = grid_world.enable_tracing();
  obs::Journal& jr = ref_world.enable_tracing();
  grid_world.enable_mobility(p, seed ^ 0x5ca1e, TopologyBackend::kGrid);
  ref_world.enable_mobility(p, seed ^ 0x5ca1e, TopologyBackend::kReference);
  ASSERT_EQ(jg.ordered_digest(), jr.ordered_digest()) << "initial placement";

  for (int step = 0; step < 60; ++step) {
    grid_world.step_mobility(sec(1));
    ref_world.step_mobility(sec(1));
    ASSERT_EQ(link_sets(grid_world), link_sets(ref_world))
        << "link sets diverged at step " << step << " (seed " << seed << ")";
    ASSERT_EQ(jg.ordered_digest(), jr.ordered_digest())
        << "journal diverged at step " << step << " (seed " << seed << ")";
  }
  EXPECT_GT(grid_world.medium().stats().link_flips, 0u)
      << "60s of mobility must actually churn links";
  EXPECT_LT(grid_world.medium().stats().pair_evals,
            ref_world.medium().stats().pair_evals / 4)
      << "incremental grid stepping must test far fewer pairs";
}

/// Hysteresis slack is the documented approximation knob: with slack > 0 a
/// node that drifts less than the slack keeps its last-evaluated links. The
/// maintained link set must still track mobility (bounded staleness), and
/// pair tests must drop further.
TEST(TopologyScale, SlackReducesPairTests) {
  const std::size_t n = 200;
  net::RandomWaypoint::Params exact;
  exact.width = exact.height = 2500;
  exact.range = 250;
  net::RandomWaypoint::Params lazy = exact;
  lazy.slack = 5.0;  // metres of tolerated drift per endpoint
  testbed::SimWorld we(n, 42), wl(n, 42);
  we.enable_mobility(exact, 7, TopologyBackend::kGrid);
  wl.enable_mobility(lazy, 7, TopologyBackend::kGrid);
  for (int step = 0; step < 100; ++step) {
    we.step_mobility(msec(100));  // ~0.1-1m of travel per step
    wl.step_mobility(msec(100));
  }
  EXPECT_LT(wl.medium().stats().pair_evals, we.medium().stats().pair_evals)
      << "slack must skip sub-threshold re-evaluations";
  EXPECT_GT(wl.medium().stats().link_flips, 0u);
}

/// Sparse movement takes the tracker's incremental path (dirty count below
/// the bulk-sync threshold): a handful of movers — including a teleport far
/// beyond grid adjacency, whose old links only the teardown scan can find —
/// must leave the medium exactly where the exhaustive oracle says.
TEST(TopologyScale, SparseMovesStayExactOnIncrementalPath) {
  const std::size_t n = 100;
  SimScheduler sched;
  net::SimMedium medium(sched);
  std::vector<std::unique_ptr<net::SimNode>> owned;
  std::vector<net::SimNode*> nodes;
  Rng rng(chaos_seed());
  for (std::uint32_t i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<net::SimNode>(i, medium, sched));
    owned.back()->set_position({rng.uniform(0.0, 2000.0),
                                rng.uniform(0.0, 2000.0)});
    nodes.push_back(owned.back().get());
  }
  net::topo::RangeLinkTracker tracker(medium, nodes, 250.0);
  for (int round = 0; round < 20; ++round) {
    // 3 jitterers (incremental: 3*3 < 100) and, every 4th round, a teleport.
    for (int m = 0; m < 3; ++m) {
      auto slot = static_cast<std::size_t>(rng.uniform(0.0, double(n)));
      if (slot >= n) slot = n - 1;
      net::Position p = nodes[slot]->position();
      nodes[slot]->set_position({p.x + rng.uniform(-40.0, 40.0),
                                 p.y + rng.uniform(-40.0, 40.0)});
      tracker.note_moved(slot);
    }
    if (round % 4 == 0) {
      std::size_t slot = round % n;
      nodes[slot]->set_position({rng.uniform(0.0, 2000.0),
                                 rng.uniform(0.0, 2000.0)});
      tracker.note_moved(slot);
    }
    tracker.update();
    std::uint64_t flips_before = medium.stats().link_flips;
    net::topo::apply_range_links(medium, nodes, 250.0,
                                 TopologyBackend::kReference);
    ASSERT_EQ(medium.stats().link_flips, flips_before)
        << "oracle corrected the incremental tracker at round " << round
        << " (seed " << chaos_seed() << ")";
  }
}

// --------------------------------------------------- tier-1 scale smoke

/// Fast guard: a 100-node mobile world must stay O(n·k) — the pair-eval
/// counter is bounded far below what any quadratic recompute would burn, and
/// a final reference oracle pass over the same medium must find nothing to
/// fix (zero flips), proving the incremental links were exact.
TEST(TopologyScale, HundredNodeSmokeStaysSubQuadratic) {
  const std::size_t n = 100;
  const int steps = 20;
  net::RandomWaypoint::Params p;
  p.width = 4000;
  p.height = 4000;
  p.range = 250;
  testbed::SimWorld world(n, 42);
  world.enable_mobility(p, 7, TopologyBackend::kGrid);

  std::uint64_t evals_before = world.medium().stats().pair_evals;
  for (int s = 0; s < steps; ++s) world.step_mobility(msec(100));
  std::uint64_t evals = world.medium().stats().pair_evals - evals_before;

  const std::uint64_t quadratic = static_cast<std::uint64_t>(steps) * n *
                                  (n - 1) / 2;
  EXPECT_LT(evals, static_cast<std::uint64_t>(steps) * n * 10)
      << "grid stepping must stay O(n·k), got " << evals << " pair tests vs "
      << quadratic << " for the all-pairs scan";

  // Oracle cross-check on the same medium: an exact incremental state means
  // the exhaustive pass has zero corrections to apply.
  std::vector<net::SimNode*> ptrs;
  for (std::size_t i = 0; i < n; ++i) ptrs.push_back(&world.node(i));
  std::uint64_t flips_before = world.medium().stats().link_flips;
  net::topo::apply_range_links(world.medium(), ptrs, p.range,
                               TopologyBackend::kReference);
  EXPECT_EQ(world.medium().stats().link_flips, flips_before)
      << "reference oracle found links the incremental grid got wrong";
}

}  // namespace
}  // namespace mk
