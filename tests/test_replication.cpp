// Replicated S elements (ISSUE 10): peer checkpointing so nodes survive
// crashes, not just component faults.
//
//  * CrashReconvergence.* — the headline claim: on a 50-node grid, a crashed
//    relay that rehydrates its S element from 1-hop peer replicas reconverges
//    strictly faster than the same crash under strategy none (cold start).
//    Both runs share one crash model (everything stops, codec state wiped,
//    kernel table cleared); only the rehydrate arm differs.
//  * StaleEpoch.* — RFC-1982 epoch discipline: a cold-started origin
//    republishing from epoch 1 is rejected by peers holding fresher replicas
//    until the staleness bound expires, after which any epoch is accepted
//    (the origin's counter legitimately reset).
//  * Determinism.* — every strategy (none / checkpoint / hot-standby) is
//    digest-identical across same-seed reruns, and checkpoint runs are
//    digest-identical across MemBackend::kPool vs kHeap.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "fault/plan.hpp"
#include "protocols/dymo/dymo_cf.hpp"
#include "replication/replication.hpp"
#include "supervision/supervisor.hpp"
#include "testbed/world.hpp"
#include "util/mem.hpp"

namespace mk {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

struct ChaosSig {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
  std::size_t violations = 0;
  bool operator==(const ChaosSig&) const = default;
};

ChaosSig finish(testbed::SimWorld& world) {
  world.checker()->check_all(world.now().us);
  return ChaosSig{world.journal()->ordered_digest(),
                  world.journal()->canonical_digest(),
                  world.journal()->total(),
                  world.checker()->violations().size()};
}

// ------------------------------------------------- 50-node crash/reconverge

struct CrashRun {
  ChaosSig sig;
  /// Sim time from restart until the crashed relay again holds a kernel
  /// route to every other node; -1 when it never did within the deadline.
  std::int64_t reconverge_us = -1;
  std::uint64_t rehydrates = 0;
  std::uint64_t replicas_on_neighbour = 0;
};

/// The acceptance scenario: a 50-node 10x5 grid running OLSR, replication CF
/// everywhere with the given strategy. Once the mid-grid relay knows a route
/// to all 49 peers (and a checkpoint cycle has spread its S element), the
/// relay suffers a full crash (state wiped), stays dark 2s, restarts, and we
/// clock how long it takes to be fully routed again.
CrashRun run_crash_reconverge(std::uint64_t seed,
                              core::ReplicationStrategy strategy,
                              std::size_t nodes = 50) {
  testbed::SimWorld world(nodes, seed);
  world.enable_invariants();
  repl::ReplicationParams params;
  params.initial = strategy;
  world.enable_replication(params);
  world.grid(10);
  world.deploy_all("olsr");

  const std::size_t c = nodes / 2;  // mid-grid relay
  auto routed_from_relay = [&] {
    for (std::size_t i = 0; i < nodes; ++i) {
      if (i != c && !world.has_route(c, world.addr(i))) return false;
    }
    return true;
  };

  bool converged = false;
  for (int i = 0; i < 1200 && !converged; ++i) {
    world.run_for(msec(100));
    converged = routed_from_relay();
  }
  EXPECT_TRUE(converged) << "initial OLSR convergence timed out";
  // One full publish cycle (checkpoint_interval 2s + beacon grace) so the
  // relay's S element is replicated before the crash.
  world.run_for(sec(5));

  // Quiescent-sweep discipline: at 50 nodes, proactive convergence passes
  // through transient micro-loops (two adjacent nodes briefly pointing at
  // each other while TC floods propagate) that the continuous checker
  // rightly logs. The invariant this scenario must guarantee is that every
  // *quiescent* point is loop-free, so we sweep-and-clear at the two that
  // matter: pre-crash and post-reconvergence. The small-world tests below
  // keep the stricter continuous accounting.
  world.checker()->clear_violations();
  world.checker()->check_all(world.now().us);
  EXPECT_EQ(world.checker()->violations().size(), 0u)
      << "pre-crash quiescent sweep must be clean";
  world.checker()->clear_violations();

  CrashRun out;
  out.replicas_on_neighbour =
      world.kit(c - 1).metrics().counter_value("repl.checkpoints_stored");

  world.crash_node(c);
  world.run_for(sec(2));
  world.restart_node(c);
  const std::int64_t restart_us = world.now().us;
  for (int i = 0; i < 1200; ++i) {
    world.run_for(msec(50));
    if (routed_from_relay()) {
      out.reconverge_us = world.now().us - restart_us;
      break;
    }
  }
  out.rehydrates = world.kit(c).metrics().counter_value("repl.rehydrates");
  world.run_for(sec(2));  // settle before the final quiescent sweep
  world.checker()->clear_violations();
  out.sig = finish(world);
  return out;
}

TEST(CrashReconvergence, CheckpointStrictlyFasterThanColdStart) {
  CrashRun cold =
      run_crash_reconverge(chaos_seed(), core::ReplicationStrategy::kNone);
  CrashRun warm = run_crash_reconverge(chaos_seed(),
                                       core::ReplicationStrategy::kCheckpoint);

  ASSERT_GE(cold.reconverge_us, 0) << "cold-start relay never reconverged";
  ASSERT_GE(warm.reconverge_us, 0) << "rehydrated relay never reconverged";
  EXPECT_EQ(cold.rehydrates, 0u);
  EXPECT_GE(warm.rehydrates, 1u)
      << "the relay must have applied at least one peer replica";
  EXPECT_GT(warm.replicas_on_neighbour, 0u)
      << "the relay's neighbour never stored a checkpoint pre-crash";
  EXPECT_LT(warm.reconverge_us, cold.reconverge_us)
      << "rehydrating from peers must beat cold start";
  EXPECT_EQ(cold.sig.violations, 0u);
  EXPECT_EQ(warm.sig.violations, 0u);
  EXPECT_GT(cold.sig.total, 0u);
  EXPECT_GT(warm.sig.total, 0u);
  // Recorded in BENCH_hotpaths.json / docs/REPLICATION.md.
  std::cout << "[reconverge] none=" << cold.reconverge_us
            << "us checkpoint=" << warm.reconverge_us
            << "us rehydrates=" << warm.rehydrates << "\n";
}

// --------------------------------------------------- stale-epoch rejection

TEST(StaleEpoch, ColdStartedOriginRejectedUntilBoundExpires) {
  testbed::SimWorld world(3, chaos_seed());
  world.enable_invariants();
  repl::ReplicationParams params;
  params.checkpoint_interval = msec(500);
  params.staleness_bound = sec(8);
  world.enable_replication(params);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(10));  // converge + several checkpoint rounds
  ASSERT_GT(world.kit(0).metrics().counter_value("repl.checkpoints_stored"),
            0u);

  // Crash the middle node, then isolate it so its restart solicit finds no
  // peers: it must cold-start and its epoch counters reset to 1.
  world.crash_node(1);
  world.run_for(sec(1));
  world.medium().set_link(world.addr(0), world.addr(1), false);
  world.medium().set_link(world.addr(1), world.addr(2), false);
  world.restart_node(1);
  world.run_for(sec(1));
  EXPECT_EQ(world.kit(1).metrics().counter_value("repl.rehydrates"), 0u)
      << "isolated restart must cold-start, not rehydrate";

  // Relink: node 1 republishes from epoch 1 while its peers still hold
  // fresher replicas — RFC-1982 comparison calls that stale, so they reject.
  world.medium().set_link(world.addr(0), world.addr(1), true);
  world.medium().set_link(world.addr(1), world.addr(2), true);
  world.run_for(sec(3));
  const std::uint64_t rejects =
      world.kit(0).metrics().counter_value("repl.rejects") +
      world.kit(2).metrics().counter_value("repl.rejects");
  EXPECT_GT(rejects, 0u) << "peers must reject the epoch-reset republish";

  // Past the staleness bound the held replicas are too old to trust over a
  // live origin, so any epoch is accepted and replication heals.
  const std::uint64_t stored_before =
      world.kit(0).metrics().counter_value("repl.checkpoints_stored");
  world.run_for(sec(12));
  EXPECT_GT(world.kit(0).metrics().counter_value("repl.checkpoints_stored"),
            stored_before)
      << "replication never healed after the staleness bound";
  ChaosSig sig = finish(world);
  EXPECT_EQ(sig.violations, 0u);
}

// ------------------------------------------------------------- determinism

/// Small crash/restart scenario used for the digest matrix: 8-node grid,
/// fixed sim-time script (no condition-dependent control flow).
ChaosSig run_small_crash(std::uint64_t seed, core::ReplicationStrategy strategy,
                         mem::MemBackend backend) {
  mem::BackendGuard mem_guard(backend);
  testbed::SimWorld world(8, seed);
  world.enable_invariants();
  repl::ReplicationParams params;
  params.initial = strategy;
  params.checkpoint_interval = sec(1);
  params.standby_interval = msec(250);
  world.enable_replication(params);
  world.grid(4);
  world.deploy_all("olsr");
  world.run_for(sec(25));

  world.crash_node(3);
  world.run_for(sec(2));
  world.restart_node(3);
  world.run_for(sec(15));

  // Exercise runtime strategy switching inside the deterministic script too.
  world.replication(0)->set_strategy(core::ReplicationStrategy::kHotStandby);
  world.run_for(sec(5));
  return finish(world);
}

TEST(Determinism, SameSeedDigestIdenticalPerStrategy) {
  const core::ReplicationStrategy strategies[] = {
      core::ReplicationStrategy::kNone,
      core::ReplicationStrategy::kCheckpoint,
      core::ReplicationStrategy::kHotStandby,
  };
  for (core::ReplicationStrategy s : strategies) {
    ChaosSig a = run_small_crash(chaos_seed(), s, mem::MemBackend::kPool);
    ChaosSig b = run_small_crash(chaos_seed(), s, mem::MemBackend::kPool);
    EXPECT_EQ(a, b) << "strategy " << core::to_string(s)
                    << " diverged across same-seed reruns";
    EXPECT_EQ(a.violations, 0u) << core::to_string(s);
    EXPECT_GT(a.total, 0u) << core::to_string(s);
  }
}

TEST(Determinism, PooledAndHeapBackendsDigestIdentical) {
  ChaosSig pooled = run_small_crash(chaos_seed(),
                                    core::ReplicationStrategy::kCheckpoint,
                                    mem::MemBackend::kPool);
  ChaosSig heap = run_small_crash(chaos_seed(),
                                  core::ReplicationStrategy::kCheckpoint,
                                  mem::MemBackend::kHeap);
  EXPECT_EQ(pooled, heap)
      << "pooled allocation changed observable replication behaviour";
  EXPECT_GT(pooled.total, 0u);
}

// ------------------------------------------------------- hot-standby deltas

TEST(HotStandby, PublishesDeltasAndPeersApplyThem) {
  testbed::SimWorld world(3, chaos_seed());
  world.enable_invariants();
  repl::ReplicationParams params;
  params.initial = core::ReplicationStrategy::kHotStandby;
  params.standby_interval = msec(200);
  params.full_every = 4;
  world.enable_replication(params);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(20));

  // A converging OLSR S element changes often enough that the hot-standby
  // cadence must have produced both anchors and deltas, and peers must have
  // patched deltas onto stored bases.
  EXPECT_GT(world.kit(1).metrics().counter_value("repl.deltas_published"), 0u);
  EXPECT_GT(world.kit(1).metrics().counter_value("repl.checkpoints_published"),
            0u);
  const std::uint64_t applied =
      world.kit(0).metrics().counter_value("repl.deltas_applied") +
      world.kit(2).metrics().counter_value("repl.deltas_applied");
  EXPECT_GT(applied, 0u) << "no peer ever applied a delta patch";
  ChaosSig sig = finish(world);
  EXPECT_EQ(sig.violations, 0u);
}

// --------------------- supervision x replication (the full recovery ladder)

/// Breaker re-trip within probation -> stateless restart -> rehydrate from
/// the 1-hop peer replica. The unit's S element is deliberately dropped by
/// the suspect restart, yet a recognisable seeded route comes back — from
/// the neighbour, not from local memory.
TEST(RecoveryLadder, SuspectRestartRehydratesFromPeerReplica) {
  testbed::SimWorld world(2, chaos_seed());
  repl::ReplicationParams rparams;
  rparams.checkpoint_interval = msec(500);
  world.enable_replication(rparams);
  supervision::SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.max_restarts = 3;
  opts.fault_window = sec(5);
  opts.initial_backoff = msec(100);
  world.enable_supervision(opts);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(1));

  // A long-lived route seeded into node 0's S element, then replicated.
  auto* st = proto::dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st, nullptr);
  st->update_route(99, 1, 98, 1, TimePoint{0}, sec(600));
  world.run_for(sec(3));
  ASSERT_GT(world.kit(1).metrics().counter_value("repl.checkpoints_stored"),
            0u)
      << "the peer never stored a replica of node 0's state";

  // Deterministic deliveries into dymo (see test_supervision.cpp for why a
  // poker beats real discovery traffic here).
  world.kit(0).register_protocol("poker", 15, [](core::Manetkit& k) {
    auto cf = std::make_unique<core::ManetProtocolCf>(
        k.kernel(), "poker", k.scheduler(), k.self(), &k.system().sys_state());
    cf->declare_events({}, {"RERR_IN"});
    return cf;
  });
  world.kit(0).deploy("poker");
  supervision::Supervisor& sup = *world.supervisor(0);

  // Trip #1: in-place restart, state carried.
  sup.set_misbehaviour("dymo", supervision::Misbehaviour::kThrow);
  world.kit(0).protocol("poker")->emit(ev::Event(ev::etype("RERR_IN")));
  ASSERT_EQ(sup.health("dymo"), supervision::UnitHealth::kQuarantined);
  sup.set_misbehaviour("dymo", supervision::Misbehaviour::kNone);
  world.run_for(msec(300));
  ASSERT_EQ(sup.health("dymo"), supervision::UnitHealth::kHealthy);

  // Trip #2 inside probation: restart goes stateless, then asks the peers.
  sup.set_misbehaviour("dymo", supervision::Misbehaviour::kThrow);
  world.kit(0).protocol("poker")->emit(ev::Event(ev::etype("RERR_IN")));
  ASSERT_EQ(sup.health("dymo"), supervision::UnitHealth::kQuarantined);
  sup.set_misbehaviour("dymo", supervision::Misbehaviour::kNone);
  world.run_for(sec(1));  // backoff + solicit/offer round trip

  EXPECT_EQ(sup.health("dymo"), supervision::UnitHealth::kHealthy);
  EXPECT_EQ(world.kit(0).metrics().counter_value("sup.stateless_restarts"),
            1u);
  EXPECT_GE(world.kit(0).metrics().counter_value("sup.rehydrate_requests"),
            1u);
  EXPECT_GE(world.kit(0).metrics().counter_value("repl.rehydrates"), 1u)
      << "the peer's offer never made it back into the fresh S element";
  auto* st_after = proto::dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st_after, nullptr);
  EXPECT_TRUE(st_after->route_to(99).has_value())
      << "seeded route must come back from the peer replica, not local RAM";
}

}  // namespace
}  // namespace mk
