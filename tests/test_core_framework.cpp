// Framework Manager: declarative <required, provided> binding derivation —
// fan-out to consumers, interposer chains ordered by layer, exclusive
// delivery, loop avoidance, rebinding on tuple change — plus concurrency
// models and the context concentrator.
#include <gtest/gtest.h>

#include "core/framework_manager.hpp"
#include "core/manet_protocol.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "util/scheduler.hpp"

namespace mk::core {
namespace {

/// Records events; optionally re-emits them under a (possibly different)
/// type — enough to model producers, consumers and interposers.
class RelayHandler final : public EventHandler {
 public:
  RelayHandler(const std::vector<std::string>& in, std::string out,
               std::string tag, std::vector<std::string>* log)
      : EventHandler("test.RelayHandler", in),
        out_(std::move(out)),
        tag_(std::move(tag)),
        log_(log) {
    set_instance_name("Relay:" + tag_);
  }

  void handle(const ev::Event& event, ProtocolContext& ctx) override {
    log_->push_back(tag_ + ":" + event.type_name());
    if (!out_.empty()) {
      ev::Event e = event;
      ev::Event renamed(ev::etype(out_));
      renamed.set_msg(e.shared_msg());
      for (const auto& [k, v] : e.attrs()) {
        // carry attributes forward
        if (const auto* i = std::get_if<std::int64_t>(&v)) renamed.set_int(k, *i);
      }
      ctx.emit(std::move(renamed));
    }
  }

 private:
  std::string out_;
  std::string tag_;
  std::vector<std::string>* log_;
};

struct Fixture {
  SimScheduler sched;
  net::SimMedium medium{sched};
  net::SimNode node{0, medium, sched};
  oc::Kernel kernel;
  FrameworkManager manager{kernel};
  std::vector<std::string> log;
  std::vector<std::unique_ptr<ManetProtocolCf>> owned;

  /// Creates a unit with the given tuple; handlers log "<tag>:<event>" and
  /// re-emit `emit_as` (if nonempty) for each required event.
  ManetProtocolCf* unit(const std::string& tag, int layer,
                        std::vector<std::string> required,
                        std::vector<std::string> provided,
                        std::string emit_as = "",
                        std::vector<std::string> exclusive = {}) {
    auto cf = std::make_unique<ManetProtocolCf>(kernel, tag, sched, 1, nullptr);
    if (!required.empty()) {
      cf->add_handler(
          std::make_unique<RelayHandler>(required, emit_as, tag, &log));
    }
    ManetProtocolCf* raw = cf.get();
    owned.push_back(std::move(cf));
    manager.register_unit(raw, layer);
    raw->declare_events(required, provided, exclusive);
    return raw;
  }
};

TEST(FrameworkManager, FanOutToAllConsumers) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_X"});
  f.unit("c1", 10, {"EVT_X"}, {});
  f.unit("c2", 10, {"EVT_X"}, {});
  p->emit(ev::Event(ev::etype("EVT_X")));
  EXPECT_EQ(f.log, (std::vector<std::string>{"c1:EVT_X", "c2:EVT_X"}));
}

TEST(FrameworkManager, ExclusiveConsumerSuppressesOthers) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_EX"});
  f.unit("normal", 10, {"EVT_EX"}, {});
  f.unit("greedy", 10, {"EVT_EX"}, {}, "", /*exclusive=*/{"EVT_EX"});
  p->emit(ev::Event(ev::etype("EVT_EX")));
  EXPECT_EQ(f.log, (std::vector<std::string>{"greedy:EVT_EX"}));
}

TEST(FrameworkManager, InterposerChainOrderedByLayerDescending) {
  Fixture f;
  auto* top = f.unit("top", 30, {}, {"EVT_I"});
  f.unit("mid", 20, {"EVT_I"}, {"EVT_I"}, "EVT_I");   // interposer
  f.unit("low", 10, {"EVT_I"}, {"EVT_I"}, "EVT_I");   // interposer
  f.unit("sink", 0, {"EVT_I"}, {});
  top->emit(ev::Event(ev::etype("EVT_I")));
  EXPECT_EQ(f.log, (std::vector<std::string>{"mid:EVT_I", "low:EVT_I",
                                             "sink:EVT_I"}));
}

TEST(FrameworkManager, LateInsertedInterposerSlotsByLayer) {
  Fixture f;
  auto* top = f.unit("top", 30, {}, {"EVT_J"});
  f.unit("low", 10, {"EVT_J"}, {"EVT_J"}, "EVT_J");
  f.unit("sink", 0, {"EVT_J"}, {});
  // Registered last but layered between top and low (the fish-eye pattern).
  f.unit("mid", 20, {"EVT_J"}, {"EVT_J"}, "EVT_J");
  top->emit(ev::Event(ev::etype("EVT_J")));
  EXPECT_EQ(f.log, (std::vector<std::string>{"mid:EVT_J", "low:EVT_J",
                                             "sink:EVT_J"}));
}

TEST(FrameworkManager, ProviderAndRequirerOfSameTypeDoesNotLoop) {
  Fixture f;
  // Unit both provides and requires EVT_L; its own emission must not be
  // delivered back to itself (loop avoidance).
  auto* u = f.unit("loopy", 20, {"EVT_L"}, {"EVT_L"}, "");
  u->emit(ev::Event(ev::etype("EVT_L")));
  EXPECT_TRUE(f.log.empty());
}

TEST(FrameworkManager, RebindOnTupleChange) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_R"});
  auto* c = f.unit("consumer", 10, {}, {});
  p->emit(ev::Event(ev::etype("EVT_R")));
  EXPECT_TRUE(f.log.empty());  // consumer not interested yet

  // Declarative reconfiguration: consumer starts requiring EVT_R. The
  // handler must also exist.
  c->add_handler(std::make_unique<RelayHandler>(
      std::vector<std::string>{"EVT_R"}, "", "consumer", &f.log));
  c->declare_events({"EVT_R"}, {});
  p->emit(ev::Event(ev::etype("EVT_R")));
  EXPECT_EQ(f.log, (std::vector<std::string>{"consumer:EVT_R"}));
}

TEST(FrameworkManager, DeregisterStopsDelivery) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_D"});
  auto* c = f.unit("consumer", 10, {"EVT_D"}, {});
  f.manager.deregister_unit(c);
  p->emit(ev::Event(ev::etype("EVT_D")));
  EXPECT_TRUE(f.log.empty());
  EXPECT_FALSE(f.manager.is_registered(c));
}

TEST(FrameworkManager, UnitRuleRejectsRegistration) {
  Fixture f;
  f.manager.add_unit_rule([](const std::vector<CfsUnit*>& units,
                             std::string& err) {
    std::size_t n = 0;
    for (auto* u : units) {
      if (u->category() == "reactive") ++n;
    }
    if (n > 1) {
      err = "one reactive only";
      return false;
    }
    return true;
  });
  auto make = [&](const std::string& name) {
    auto cf = std::make_unique<ManetProtocolCf>(f.kernel, name, f.sched, 1,
                                                nullptr);
    cf->set_category("reactive");
    ManetProtocolCf* raw = cf.get();
    f.owned.push_back(std::move(cf));
    return raw;
  };
  f.manager.register_unit(make("r1"), 20);
  EXPECT_THROW(f.manager.register_unit(make("r2"), 20), std::logic_error);
}

TEST(FrameworkManager, ContextConcentratorSeesRoutedEvents) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_CTX"});
  int seen = 0;
  f.manager.subscribe("EVT_CTX", [&](const ev::Event&) { ++seen; });
  p->emit(ev::Event(ev::etype("EVT_CTX")));
  p->emit(ev::Event(ev::etype("EVT_CTX")));
  EXPECT_EQ(seen, 2);
}

TEST(FrameworkManager, EventsRoutedCounterAdvances) {
  Fixture f;
  auto* p = f.unit("producer", 20, {}, {"EVT_N"});
  auto before = f.manager.events_routed();
  p->emit(ev::Event(ev::etype("EVT_N")));
  EXPECT_EQ(f.manager.events_routed(), before + 1);
}

TEST(Concurrency, ThreadedModelsDeliverEverything) {
  for (auto model : {ConcurrencyModel::kThreadPerMessage,
                     ConcurrencyModel::kThreadPerNMessages}) {
    Fixture f;
    std::atomic<int> count{0};

    class CountHandler final : public EventHandler {
     public:
      CountHandler(std::atomic<int>& c)
          : EventHandler("test.CountHandler", {"EVT_T"}), c_(c) {}
      void handle(const ev::Event&, ProtocolContext&) override { ++c_; }
      std::atomic<int>& c_;
    };

    auto cf = std::make_unique<ManetProtocolCf>(f.kernel, "counter", f.sched,
                                                1, nullptr);
    cf->add_handler(std::make_unique<CountHandler>(count));
    f.manager.register_unit(cf.get(), 10);
    cf->declare_events({"EVT_T"}, {});
    auto* producer = f.unit("producer", 20, {}, {"EVT_T"});

    f.manager.set_concurrency(model, 2, 4);
    for (int i = 0; i < 500; ++i) {
      producer->emit(ev::Event(ev::etype("EVT_T")));
    }
    f.manager.drain();
    EXPECT_EQ(count.load(), 500) << "model " << static_cast<int>(model);
    f.manager.deregister_unit(cf.get());
  }
}

TEST(Concurrency, DedicatedThreadModelDeliversEverything) {
  Fixture f;
  std::atomic<int> count{0};

  class CountHandler final : public EventHandler {
   public:
    CountHandler(std::atomic<int>& c)
        : EventHandler("test.CountHandler", {"EVT_Q"}), c_(c) {}
    void handle(const ev::Event&, ProtocolContext&) override { ++c_; }
    std::atomic<int>& c_;
  };

  auto cf = std::make_unique<ManetProtocolCf>(f.kernel, "counter", f.sched, 1,
                                              nullptr);
  cf->add_handler(std::make_unique<CountHandler>(count));
  f.manager.register_unit(cf.get(), 10);
  cf->declare_events({"EVT_Q"}, {});
  cf->enable_dedicated_thread();

  auto* producer = f.unit("producer", 20, {}, {"EVT_Q"});
  for (int i = 0; i < 500; ++i) {
    producer->emit(ev::Event(ev::etype("EVT_Q")));
  }
  f.manager.drain();
  EXPECT_EQ(count.load(), 500);
  cf->disable_dedicated_thread();
  f.manager.deregister_unit(cf.get());
}

}  // namespace
}  // namespace mk::core
