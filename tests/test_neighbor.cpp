// Neighbour Detection CF: HELLO-based link sensing (asym -> sym), 2-hop
// gathering, expiry -> NHOOD_CHANGE, pluggable link-layer feedback, and
// piggybacking.
#include <gtest/gtest.h>

#include "core/attrs.hpp"
#include "protocols/hello_codec.hpp"
#include "protocols/neighbor/neighbor_cf.hpp"
#include "protocols/neighbor/neighbor_state.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

TEST(NeighborTable, SymmetryAndTwoHop) {
  NeighborTable t;
  t.note_heard(10, TimePoint{0});
  EXPECT_FALSE(t.is_sym_neighbor(10));
  EXPECT_TRUE(t.set_symmetric(10, true));
  EXPECT_FALSE(t.set_symmetric(10, true));  // no change
  EXPECT_TRUE(t.is_sym_neighbor(10));

  t.set_two_hop(10, {20, 30});
  EXPECT_EQ(t.two_hop_via(10), (std::set<net::Addr>{20, 30}));
  EXPECT_EQ(t.strict_two_hop(1), (std::set<net::Addr>{20, 30}));

  // A 2-hop node that is also a direct sym neighbour is not strict 2-hop.
  t.note_heard(20, TimePoint{0});
  t.set_symmetric(20, true);
  EXPECT_EQ(t.strict_two_hop(1), (std::set<net::Addr>{30}));
}

TEST(NeighborTable, ExpiryReportsLostSymNeighbors) {
  NeighborTable t;
  t.note_heard(10, TimePoint{0});
  t.set_symmetric(10, true);
  t.note_heard(11, TimePoint{0});  // asym — lost silently
  auto lost = t.expire(TimePoint{sec(10).count()}, sec(3));
  EXPECT_EQ(lost, std::vector<net::Addr>{10});
  EXPECT_TRUE(t.heard_neighbors().empty());
}

TEST(NeighborTable, PiggybackProvidersAndObservers) {
  NeighborTable t;
  t.add_piggyback_provider(
      [] { return pbb::Tlv::u8(9, 0x55); });
  t.add_piggyback_provider([]() -> std::optional<pbb::Tlv> {
    return std::nullopt;  // provider may decline
  });
  auto tlvs = t.collect_piggyback();
  ASSERT_EQ(tlvs.size(), 1u);
  EXPECT_EQ(tlvs[0].as_u8(), 0x55);

  net::Addr from = 0;
  t.add_piggyback_observer([&](net::Addr f, const pbb::Tlv&) { from = f; });
  t.dispatch_piggyback(42, tlvs[0]);
  EXPECT_EQ(from, 42u);
}

TEST(HelloCodec, RoundTrip) {
  std::vector<hello::Link> links{{10, wire::LinkCode::kSym},
                                 {11, wire::LinkCode::kAsym},
                                 {12, wire::LinkCode::kMpr}};
  auto msg = hello::build(1, 5, links, wire::kWillHigh,
                          {pbb::Tlv{wire::kTlvPiggyback, {1, 2}}});
  EXPECT_EQ(msg.hop_limit, 1);  // never forwarded
  EXPECT_EQ(hello::willingness(msg), wire::kWillHigh);
  auto parsed = hello::links(msg);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[2].code, wire::LinkCode::kMpr);
  EXPECT_EQ(hello::code_for(msg, 11), wire::LinkCode::kAsym);
  EXPECT_FALSE(hello::code_for(msg, 99).has_value());
  EXPECT_EQ(hello::piggyback(msg).size(), 1u);
}

TEST(NeighborCf, TwoNodesBecomeSymmetric) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("neighbor");
  world.run_for(sec(6));  // hello(A) -> hello(B lists A) -> hello(A lists B)

  auto* s0 = neighbor_state(*world.kit(0).protocol("neighbor"));
  auto* s1 = neighbor_state(*world.kit(1).protocol("neighbor"));
  EXPECT_TRUE(s0->is_sym_neighbor(world.addr(1)));
  EXPECT_TRUE(s1->is_sym_neighbor(world.addr(0)));
}

TEST(NeighborCf, AsymmetricLinkStaysAsym) {
  testbed::SimWorld world(2);
  // Only 0 -> 1 can be heard.
  world.medium().set_link(world.addr(0), world.addr(1), true,
                          /*symmetric=*/false);
  world.deploy_all("neighbor");
  world.run_for(sec(10));

  auto* s1 = neighbor_state(*world.kit(1).protocol("neighbor"));
  // Node 1 hears node 0 but is never heard back: link stays asymmetric.
  EXPECT_FALSE(s1->is_sym_neighbor(world.addr(0)));
  EXPECT_EQ(s1->heard_neighbors().size(), 1u);
}

TEST(NeighborCf, TwoHopInformationPropagates) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("neighbor");
  world.run_for(sec(10));

  auto* s0 = neighbor_state(*world.kit(0).protocol("neighbor"));
  EXPECT_EQ(s0->strict_two_hop(world.addr(0)),
            (std::set<net::Addr>{world.addr(2)}));
}

TEST(NeighborCf, LinkBreakEmitsNhoodChangeDown) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("neighbor");
  world.run_for(sec(6));

  std::vector<std::pair<net::Addr, bool>> changes;
  world.kit(0).manager().subscribe(
      ev::types::NHOOD_CHANGE, [&](const ev::Event& e) {
        changes.emplace_back(
            static_cast<net::Addr>(e.get_int(core::attrs::kNeighbor)),
            e.get_int(core::attrs::kUp) != 0);
      });

  world.medium().set_link(world.addr(0), world.addr(1), false);
  world.run_for(sec(10));  // hold time passes, expiry sweep fires

  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.back().first, world.addr(1));
  EXPECT_FALSE(changes.back().second);
}

TEST(NeighborCf, LinkLayerFeedbackVariantReactsInstantly) {
  testbed::SimWorld world(2);
  world.deploy_all("neighbor");
  auto* cf = world.kit(0).protocol("neighbor");
  enable_link_layer_feedback(world.kit(0), *cf);

  // No HELLO exchange needed: the driver callback updates the table.
  world.medium().set_link(world.addr(0), world.addr(1), true);
  auto* s0 = neighbor_state(*cf);
  EXPECT_TRUE(s0->is_sym_neighbor(world.addr(1)));

  world.medium().set_link(world.addr(0), world.addr(1), false);
  EXPECT_FALSE(s0->is_sym_neighbor(world.addr(1)));
}

}  // namespace
}  // namespace mk::proto
