// Zone-hybrid ("zrp") protocol: proactive intra-zone routing, reactive
// inter-zone discovery with bordercast termination, and reduced query
// flooding versus plain DYMO.
#include <gtest/gtest.h>

#include "protocols/zrp/zrp_cf.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

TEST(Zrp, IntraZoneRoutesAreProactive) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("zrp");
  world.run_for(sec(8));  // HELLO rounds + zone refresh

  // 1-hop and 2-hop destinations routed without any discovery traffic.
  EXPECT_TRUE(world.has_route(0, world.addr(1)));
  EXPECT_TRUE(world.has_route(0, world.addr(2)));

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(1));
  EXPECT_EQ(world.node(2).deliveries().size(), 1u);
  // No pending discovery was ever needed.
  auto* st = dymo_state(*world.kit(0).protocol("zrp"));
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->pending_count(), 0u);
}

TEST(Zrp, InterZoneDiscoveryStillWorks) {
  testbed::SimWorld world(6);
  world.linear();
  world.deploy_all("zrp");
  world.run_for(sec(8));

  // Node 5 is 5 hops away: outside the zone, needs IERP.
  EXPECT_FALSE(world.has_route(0, world.addr(5)));
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(4));
  EXPECT_TRUE(world.has_route(0, world.addr(5)));
  EXPECT_EQ(world.node(5).deliveries().size(), 1u);
}

TEST(Zrp, BordercastTerminationCutsQueryFlood) {
  // Compare RREQ rebroadcast volume: plain DYMO floods the query to the far
  // end; ZRP terminates it ~one zone radius early.
  auto discovery_control_bytes = [](const std::string& proto) {
    testbed::SimWorld world(7);
    world.linear();
    world.deploy_all(proto);
    world.run_for(sec(10));
    world.medium().reset_stats();
    std::uint64_t before = 0;
    {
      // quiet baseline over the same duration as the discovery phase
      world.run_for(sec(5));
      before = world.medium().stats().control_bytes;
      world.medium().reset_stats();
    }
    world.node(0).forwarding().send(world.addr(6), 64);
    world.run_for(sec(5));
    std::uint64_t total = world.medium().stats().control_bytes;
    return total > before ? total - before : 0;
  };

  std::uint64_t dymo_bytes = discovery_control_bytes("dymo");
  std::uint64_t zrp_bytes = discovery_control_bytes("zrp");
  EXPECT_LT(zrp_bytes, dymo_bytes)
      << "zone termination should reduce query traffic (zrp=" << zrp_bytes
      << " dymo=" << dymo_bytes << ")";
}

TEST(Zrp, ZoneRoutesWithdrawnWhenNodeLeavesZone) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("zrp");
  world.run_for(sec(8));
  ASSERT_TRUE(world.has_route(0, world.addr(2)));

  // Break the chain: node 2 leaves node 0's zone.
  world.medium().set_link(world.addr(1), world.addr(2), false);
  world.run_for(sec(12));  // hold time + refresh
  EXPECT_FALSE(world.has_route(0, world.addr(2)));
}

TEST(Zrp, CountsAsReactiveForIntegrityRules) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.deploy("zrp");
  EXPECT_THROW(kit.deploy("dymo"), std::logic_error);  // one reactive max
  EXPECT_NO_THROW(kit.deploy("olsr"));                 // hybrid + proactive ok
}

TEST(Zrp, ProxyReplyInstallsUsableRoute) {
  // 0-1-2-3-4: node 2's zone contains 4 (2 hops), so node 0's query for 4
  // terminates at node 2 with a proxy RREP; the resulting route must
  // actually deliver data.
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("zrp");
  world.run_for(sec(8));

  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(4));
  EXPECT_TRUE(world.has_route(0, world.addr(4)));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);
}

}  // namespace
}  // namespace mk::proto
