// Further core behaviours: PacketBB message aggregation in the System CF,
// per-message processing-time profiling (the Table 1 instrument), event FIFO
// ordering across same-interest protocols, and OLSR's triggered TCs.
#include <gtest/gtest.h>

#include "core/attrs.hpp"
#include "core/manetkit.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "testbed/world.hpp"

namespace mk::core {
namespace {

pbb::Message tiny_msg(std::uint8_t type, std::uint16_t seq) {
  pbb::Message m;
  m.type = type;
  m.originator = 1;
  m.seqnum = seq;
  return m;
}

TEST(Aggregation, DisabledByDefaultOnePacketPerMessage) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& sys = world.kit(0).system();
  sys.register_message(60, "AGG");

  for (int i = 0; i < 3; ++i) {
    ev::Event e(ev::etype("AGG_OUT"));
    e.set_msg(tiny_msg(60, static_cast<std::uint16_t>(i)));
    sys.deliver(e);
  }
  world.run_for(msec(100));
  EXPECT_EQ(sys.packets_sent(), 3u);
  EXPECT_EQ(sys.messages_sent(), 3u);
}

TEST(Aggregation, WindowCoalescesMessagesIntoOnePacket) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& sys0 = world.kit(0).system();
  auto& sys1 = world.kit(1).system();
  sys0.register_message(60, "AGG");
  sys1.register_message(60, "AGG");
  sys0.set_aggregation_window(msec(50));

  int received = 0;
  world.kit(1).manager().subscribe("AGG_IN",
                                   [&](const ev::Event&) { ++received; });

  for (int i = 0; i < 5; ++i) {
    ev::Event e(ev::etype("AGG_OUT"));
    e.set_msg(tiny_msg(60, static_cast<std::uint16_t>(i)));
    sys0.deliver(e);
  }
  world.run_for(msec(200));

  EXPECT_EQ(sys0.packets_sent(), 1u);
  EXPECT_EQ(sys0.messages_sent(), 5u);
  EXPECT_EQ(received, 5) << "all aggregated messages must demux individually";
}

TEST(Aggregation, UnicastAndBroadcastKeptApart) {
  testbed::SimWorld world(3);
  world.full_mesh();
  auto& sys = world.kit(0).system();
  sys.register_message(60, "AGG");
  sys.set_aggregation_window(msec(50));

  ev::Event bcast(ev::etype("AGG_OUT"));
  bcast.set_msg(tiny_msg(60, 1));
  sys.deliver(bcast);
  ev::Event ucast(ev::etype("AGG_OUT"));
  ucast.set_msg(tiny_msg(60, 2));
  ucast.set_int(attrs::kUnicastTo, world.addr(1));
  sys.deliver(ucast);

  world.run_for(msec(200));
  EXPECT_EQ(sys.packets_sent(), 2u);  // different link destinations
}

TEST(Aggregation, DisablingFlushesPending) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& sys = world.kit(0).system();
  sys.register_message(60, "AGG");
  sys.set_aggregation_window(sec(10));  // long window

  ev::Event e(ev::etype("AGG_OUT"));
  e.set_msg(tiny_msg(60, 1));
  sys.deliver(e);
  EXPECT_EQ(sys.packets_sent(), 0u);

  sys.set_aggregation_window(Duration{0});  // disable -> immediate flush
  EXPECT_EQ(sys.packets_sent(), 1u);
}

TEST(Aggregation, OlsrStillConvergesWithAggregation) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");
  for (std::size_t i = 0; i < 4; ++i) {
    world.kit(i).system().set_aggregation_window(msec(20));
  }
  EXPECT_TRUE(world.run_until_routed(sec(90)).has_value());
}

TEST(Profiling, RecordsPerMessageProcessingTimes) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  world.kit(1).system().enable_profiling(true);
  world.run_for(sec(30));

  const auto& times = world.kit(1).system().processing_times();
  ASSERT_TRUE(times.count("HELLO") > 0);
  EXPECT_GT(times.at("HELLO").count(), 0u);
  EXPECT_GT(times.at("HELLO").mean(), 0.0);
}

TEST(FifoOrdering, SameInterestProtocolsSeeSameOrder) {
  // The paper (§4.4): protocols sharing an interest in a set of events all
  // process them in the same FIFO order.
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);

  struct OrderHandler final : EventHandler {
    explicit OrderHandler(std::vector<std::int64_t>* log)
        : EventHandler("test.OrderHandler", {"SEQD"}), log_(log) {}
    void handle(const ev::Event& e, ProtocolContext&) override {
      log_->push_back(e.get_int("i"));
    }
    std::vector<std::int64_t>* log_;
  };

  std::vector<std::int64_t> log_a, log_b;
  for (auto [name, log] : {std::pair<const char*, std::vector<std::int64_t>*>{
                               "pa", &log_a},
                           {"pb", &log_b}}) {
    auto* captured = log;
    kit.register_protocol(name, 20, [captured](Manetkit& k) {
      auto cf = std::make_unique<ManetProtocolCf>(
          k.kernel(), "p", k.scheduler(), k.self(), &k.system().sys_state());
      cf->add_handler(std::make_unique<OrderHandler>(captured));
      cf->declare_events({"SEQD"}, {});
      return cf;
    });
    kit.deploy(name);
  }

  for (int i = 0; i < 100; ++i) {
    ev::Event e(ev::etype("SEQD"));
    e.set_int("i", i);
    kit.system().emit(std::move(e));
  }
  kit.manager().drain();
  ASSERT_EQ(log_a.size(), 100u);
  EXPECT_EQ(log_a, log_b);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(log_a[static_cast<std::size_t>(i)], i);
}

TEST(TriggeredTc, MprChangePublishesTopologyEarly) {
  // With the TC interval cranked very high, topology can only spread via
  // *triggered* TCs (sent on MPR_CHANGE). Routes beyond 2 hops still form.
  proto::OlsrParams params;
  params.tc_interval = sec(600);
  params.topology_hold = sec(1800);

  testbed::SimWorld world(4);
  world.linear();
  for (std::size_t i = 0; i < 4; ++i) {
    proto::register_olsr(world.kit(i), params);
    world.kit(i).deploy("olsr");
  }
  auto converged = world.run_until_routed(sec(60));
  EXPECT_TRUE(converged.has_value())
      << "triggered TCs must propagate topology without periodic TCs";
}

}  // namespace
}  // namespace mk::core
