// OLSR unit tests: state tables (ANSN freshness, topology expiry), TC codec,
// route calculation (shortest path, stale-route cleanup), energy-cost
// routing.
#include <gtest/gtest.h>

#include "protocols/olsr/olsr_cf.hpp"
#include "protocols/wire.hpp"
#include "protocols/olsr/olsr_state.hpp"
#include "protocols/olsr/route_calculator.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

TEST(OlsrState, AnsnFreshnessRule) {
  OlsrState st;
  EXPECT_TRUE(st.update_topology(10, 5, {20}, TimePoint{0}, sec(15)));
  EXPECT_FALSE(st.update_topology(10, 4, {21}, TimePoint{0}, sec(15)));
  EXPECT_TRUE(st.update_topology(10, 5, {22}, TimePoint{0}, sec(15)));
  EXPECT_TRUE(st.update_topology(10, 6, {23}, TimePoint{0}, sec(15)));
  auto edges = st.topology_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].second, 23u);
}

TEST(OlsrState, AnsnWraparound) {
  OlsrState st;
  EXPECT_TRUE(st.update_topology(10, 65535, {20}, TimePoint{0}, sec(15)));
  EXPECT_TRUE(st.update_topology(10, 0, {21}, TimePoint{0}, sec(15)));  // newer
}

TEST(OlsrState, TopologyExpiry) {
  OlsrState st;
  st.update_topology(10, 1, {20}, TimePoint{0}, sec(15));
  EXPECT_FALSE(st.expire_topology(TimePoint{sec(10).count()}));
  EXPECT_TRUE(st.expire_topology(TimePoint{sec(20).count()}));
  EXPECT_EQ(st.topology_size(), 0u);
}

TEST(OlsrState, EnergyMapDefaultsToFull) {
  OlsrState st;
  EXPECT_DOUBLE_EQ(st.energy_of(99), 1.0);
  st.set_energy(99, 0.25);
  EXPECT_DOUBLE_EQ(st.energy_of(99), 0.25);
}

TEST(TcCodec, RoundTrip) {
  auto msg = tc::build(7, 12, 34, {100, 101});
  EXPECT_EQ(msg.type, wire::kMsgTc);
  EXPECT_EQ(*msg.originator, 7u);
  EXPECT_EQ(*msg.seqnum, 12);
  EXPECT_EQ(msg.find_tlv(wire::kTlvAnsn)->as_u16(), 34);
  ASSERT_EQ(msg.addr_blocks.size(), 1u);
  EXPECT_EQ(msg.addr_blocks[0].addrs.size(), 2u);

  // And survives the wire.
  pbb::Packet pkt;
  pkt.messages.push_back(msg);
  auto parsed = pbb::parse(pbb::serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value().messages[0], msg);
}

TEST(RouteCalc, InstallsShortestPathsAndCleansStale) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // Shortest path property: metric equals chain distance.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      auto route = world.node(i).kernel_table().lookup(world.addr(j));
      ASSERT_TRUE(route.has_value());
      EXPECT_EQ(route->metric, static_cast<std::uint32_t>(
                                   i > j ? i - j : j - i));
    }
  }
}

TEST(RouteCalc, ShorterPathPreferredWhenAdded) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  auto before = world.node(0).kernel_table().lookup(world.addr(3));
  EXPECT_EQ(before->metric, 3u);

  // A shortcut 0 <-> 3 appears; OLSR must converge to the 1-hop route.
  world.medium().set_link(world.addr(0), world.addr(3), true);
  world.run_for(sec(20));
  auto after = world.node(0).kernel_table().lookup(world.addr(3));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->metric, 1u);
  EXPECT_EQ(after->next_hop, world.addr(3));
}

TEST(EnergyRouteCalc, AvoidsDrainedRelay) {
  // Diamond: 0-1-3 and 0-2-3. Node 1 nearly drained -> route via 2.
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[2], a[3], true);

  world.deploy_all("olsr");
  world.run_for(sec(20));

  auto* olsr = world.kit(0).protocol("olsr");
  auto* st = olsr_state(*olsr);
  st->set_energy(a[1], 0.05);
  st->set_energy(a[2], 1.0);

  // Swap in the energy calculator directly (unit-level check of the
  // component; the full variant is exercised in test_variants).
  auto* mpr = world.kit(0).protocol("mpr");
  {
    auto lock = olsr->quiesce();
    oc::ComponentId rc = olsr->find_id("RouteCalculator");
    olsr->replace(rc, std::make_unique<EnergyRouteCalculator>(mpr));
  }
  olsr_recompute_routes(*olsr);

  auto route = world.node(0).kernel_table().lookup(a[3]);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, a[2]) << "route should avoid the drained relay";
}

TEST(OlsrCf, EmptySelectorSetSendsNoTc) {
  // Two isolated nodes: no 2-hop topology, nobody selects MPRs, so no TC
  // traffic should ever appear.
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("olsr");
  world.run_for(sec(30));
  auto* s0 = olsr_state(*world.kit(0).protocol("olsr"));
  EXPECT_EQ(s0->topology_size(), 0u);
}

TEST(OlsrCf, TcFromNonSymNeighborIgnored) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("olsr");
  // Inject a TC as if from an unknown (non-symmetric) sender.
  auto* olsr = world.kit(0).protocol("olsr");
  ev::Event e(ev::etype("TC_IN"));
  e.from = net::addr_for_index(77);
  e.set_msg(tc::build(net::addr_for_index(77), 1, 1, {net::addr_for_index(78)}));
  olsr->deliver(e);
  EXPECT_EQ(olsr_state(*olsr)->topology_size(), 0u);
}

}  // namespace
}  // namespace mk::proto
