// MANETKit facade + System CF: dynamic deployment (serial & simultaneous),
// deployment-level integrity, protocol switching with S-element carry-over,
// System CF message registry / demux / NetLink / context sensors, and
// ManetProtocol CF structural rules.
#include <gtest/gtest.h>

#include "core/attrs.hpp"
#include "core/manetkit.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "protocols/install.hpp"
#include "testbed/world.hpp"

namespace mk::core {
namespace {

class SpyHandler final : public EventHandler {
 public:
  SpyHandler(std::vector<std::string>* log, std::vector<std::string> types)
      : EventHandler("test.SpyHandler", types), log_(log) {
    set_instance_name("Spy");
  }
  void handle(const ev::Event& event, ProtocolContext&) override {
    log_->push_back(event.type_name());
  }

 private:
  std::vector<std::string>* log_;
};

struct KitFixture {
  SimScheduler sched;
  net::SimMedium medium{sched};
  net::SimNode node{0, medium, sched};
  Manetkit kit{node};
};

TEST(Manetkit, DeployIsIdempotentAndSharesInstance) {
  testbed::SimWorld world(2);
  auto& kit = world.kit(0);
  auto* mpr1 = kit.deploy("mpr");
  auto* mpr2 = kit.deploy("mpr");
  EXPECT_EQ(mpr1, mpr2);
  EXPECT_TRUE(kit.is_deployed("mpr"));
}

TEST(Manetkit, OlsrDeploymentPullsInMpr) {
  testbed::SimWorld world(2);
  auto& kit = world.kit(0);
  kit.deploy("olsr");
  EXPECT_TRUE(kit.is_deployed("mpr"));
  EXPECT_TRUE(kit.is_deployed("olsr"));
}

TEST(Manetkit, UnknownProtocolThrows) {
  testbed::SimWorld world(1);
  EXPECT_THROW(world.kit(0).deploy("bogus"), std::logic_error);
}

TEST(Manetkit, SingleReactiveProtocolRuleEnforced) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.deploy("dymo");
  EXPECT_THROW(kit.deploy("aodv"), std::logic_error);
  // DYMO must still be intact.
  EXPECT_TRUE(kit.is_deployed("dymo"));
  EXPECT_FALSE(kit.is_deployed("aodv"));
}

TEST(Manetkit, ProactiveAndReactiveCoexist) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.deploy("olsr");
  kit.deploy("dymo");
  EXPECT_TRUE(kit.is_deployed("olsr"));
  EXPECT_TRUE(kit.is_deployed("dymo"));
}

TEST(Manetkit, UndeployRemovesAndStops) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  auto* dymo = kit.deploy("dymo");
  EXPECT_TRUE(dymo->running());
  kit.undeploy("dymo");
  EXPECT_FALSE(kit.is_deployed("dymo"));
  EXPECT_THROW(kit.undeploy("dymo"), std::logic_error);
}

TEST(Manetkit, SerialRedeploymentAfterUndeploy) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.deploy("dymo");
  kit.undeploy("dymo");
  kit.deploy("aodv");  // reactive slot is free again
  EXPECT_TRUE(kit.is_deployed("aodv"));
}

TEST(Manetkit, SwitchProtocolWithoutState) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.deploy("olsr");
  auto* dymo = kit.switch_protocol("olsr", "dymo", /*carry_state=*/false);
  EXPECT_FALSE(kit.is_deployed("olsr"));
  EXPECT_TRUE(kit.is_deployed("dymo"));
  EXPECT_TRUE(dymo->running());
}

TEST(ManetProtocol, StateTransferCarriesSElement) {
  KitFixture f;
  auto cf = std::make_unique<ManetProtocolCf>(f.kit.kernel(), "p1", f.sched, 1,
                                              nullptr);
  auto state = std::make_unique<oc::Component>("test.State");
  state->set_instance_name("State");
  cf->set_state(std::move(state));

  auto taken = cf->take_state();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(cf->state_component(), nullptr);

  auto cf2 = std::make_unique<ManetProtocolCf>(f.kit.kernel(), "p2", f.sched,
                                               1, nullptr);
  cf2->set_state(std::move(taken));
  EXPECT_NE(cf2->state_component(), nullptr);
  EXPECT_EQ(cf2->state_component()->type_name(), "test.State");
}

TEST(ManetProtocol, IntegrityRejectsSecondState) {
  KitFixture f;
  ManetProtocolCf cf(f.kit.kernel(), "p", f.sched, 1, nullptr);
  auto s1 = std::make_unique<oc::Component>("test.S1");
  s1->set_instance_name("State");
  cf.insert(std::move(s1));
  auto s2 = std::make_unique<oc::Component>("test.S2");
  s2->set_instance_name("State");
  EXPECT_THROW(cf.insert(std::move(s2)), std::logic_error);
  // set_state replaces instead.
  auto s3 = std::make_unique<oc::Component>("test.S3");
  cf.set_state(std::move(s3));
  EXPECT_EQ(cf.state_component()->type_name(), "test.S3");
}

TEST(ManetProtocol, HandlerReplaceUpdatesRegistry) {
  KitFixture f;
  ManetProtocolCf cf(f.kit.kernel(), "p", f.sched, 1, nullptr);
  std::vector<std::string> log1, log2;
  cf.add_handler(std::make_unique<SpyHandler>(&log1,
                                              std::vector<std::string>{"E1"}));
  cf.deliver(ev::Event(ev::etype("E1")));
  EXPECT_EQ(log1.size(), 1u);

  cf.replace_handler("Spy", std::make_unique<SpyHandler>(
                                &log2, std::vector<std::string>{"E1"}));
  cf.deliver(ev::Event(ev::etype("E1")));
  EXPECT_EQ(log1.size(), 1u);
  EXPECT_EQ(log2.size(), 1u);
}

TEST(ManetProtocol, RemoveHandlerStopsDelivery) {
  KitFixture f;
  ManetProtocolCf cf(f.kit.kernel(), "p", f.sched, 1, nullptr);
  std::vector<std::string> log;
  cf.add_handler(std::make_unique<SpyHandler>(&log,
                                              std::vector<std::string>{"E2"}));
  EXPECT_TRUE(cf.remove_handler("Spy"));
  EXPECT_FALSE(cf.remove_handler("Spy"));
  cf.deliver(ev::Event(ev::etype("E2")));
  EXPECT_TRUE(log.empty());
}

TEST(ManetProtocol, EmitHookReceivesWhenUnmanaged) {
  KitFixture f;
  ManetProtocolCf cf(f.kit.kernel(), "p", f.sched, 1, nullptr);
  std::vector<std::string> emitted;
  cf.set_emit_hook([&](const ev::Event& e) { emitted.push_back(e.type_name()); });
  cf.emit(ev::Event(ev::etype("E3")));
  EXPECT_EQ(emitted, std::vector<std::string>{"E3"});
}

// ------------------------------------------------------------------ System CF

TEST(SystemCf, DemuxRaisesInEventsForRegisteredTypes) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& kit0 = world.kit(0);
  auto& kit1 = world.kit(1);

  kit0.system().register_message(42, "CUSTOM");
  kit1.system().register_message(42, "CUSTOM");

  // A spy protocol on node 1 requiring CUSTOM_IN.
  std::vector<std::string> log;
  kit1.register_protocol("spy", 20, [&log](Manetkit& k) {
    auto cf = std::make_unique<ManetProtocolCf>(
        k.kernel(), "spy", k.scheduler(), k.self(), &k.system().sys_state());
    cf->add_handler(std::make_unique<SpyHandler>(
        &log, std::vector<std::string>{"CUSTOM_IN"}));
    cf->declare_events({"CUSTOM_IN"}, {});
    return cf;
  });
  kit1.deploy("spy");

  // Node 0 transmits a CUSTOM message via its System CF.
  pbb::Message m;
  m.type = 42;
  m.originator = kit0.self();
  m.seqnum = 1;
  ev::Event out(ev::etype("CUSTOM_OUT"));
  out.set_msg(m);
  kit0.system().deliver(out);

  world.run_for(msec(100));
  EXPECT_EQ(log, std::vector<std::string>{"CUSTOM_IN"});
}

TEST(SystemCf, ConflictingMessageRegistrationThrows) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.system().register_message(50, "ALPHA");
  kit.system().register_message(50, "ALPHA");  // idempotent: fine
  EXPECT_THROW(kit.system().register_message(50, "BETA"), std::logic_error);
}

TEST(SystemCf, MalformedPacketsCountedNotCrashing) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.kit(1).system().register_message(42, "CUSTOM");
  auto before = world.kit(1).system().parse_errors();
  world.node(0).send_control({0xDE, 0xAD});
  world.run_for(msec(100));
  EXPECT_EQ(world.kit(1).system().parse_errors(), before + 1);
}

TEST(SystemCf, SysStateExposesKernelAndDevices) {
  testbed::SimWorld world(1);
  auto& sys = world.kit(0).system();
  EXPECT_EQ(sys.sys_state().local_addr(), world.addr(0));
  EXPECT_EQ(sys.sys_state().list_devices(),
            std::vector<std::string>{"wlan0"});
  sys.sys_state().kernel_table().set_route(
      net::RouteEntry{99, 98, "wlan0", 1, {}});
  EXPECT_TRUE(world.node(0).kernel_table().lookup(99).has_value());
}

TEST(SystemCf, PowerStatusSensorEmitsContextEvents) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  kit.system().ensure_power_status(msec(500));
  world.node(0).set_battery(0.42);

  std::vector<double> seen;
  kit.manager().subscribe(ev::types::POWER_STATUS, [&](const ev::Event& e) {
    seen.push_back(e.get_double(attrs::kBattery));
  });
  world.run_for(sec(2));
  ASSERT_GE(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen.back(), 0.42);
}

TEST(SystemCf, NetlinkBuffersAndReinjects) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& kit = world.kit(0);
  kit.system().ensure_netlink();

  int no_route_events = 0;
  kit.manager().subscribe(ev::types::NO_ROUTE,
                          [&](const ev::Event&) { ++no_route_events; });

  // No route: NetLink buffers the packet and raises NO_ROUTE.
  EXPECT_TRUE(world.node(0).forwarding().send(world.addr(1), 64));
  EXPECT_EQ(no_route_events, 1);
  EXPECT_EQ(kit.system().netlink()->buffered_count(), 1u);

  // Install the route and signal ROUTE_FOUND: buffered packet re-injected.
  world.node(0).kernel_table().set_route(
      net::RouteEntry{world.addr(1), world.addr(1), "wlan0", 1, {}});
  ev::Event found(ev::types::ROUTE_FOUND);
  found.set_int(attrs::kDest, world.addr(1));
  kit.system().deliver(found);
  world.run_for(msec(100));
  EXPECT_EQ(world.node(1).deliveries().size(), 1u);
  EXPECT_EQ(kit.system().netlink()->buffered_count(), 0u);
}

TEST(SystemCf, NetlinkBufferBoundedPerDest) {
  testbed::SimWorld world(2);
  auto& kit = world.kit(0);
  kit.system().ensure_netlink();
  for (int i = 0; i < 10; ++i) {
    world.node(0).forwarding().send(world.addr(1), 64);
  }
  EXPECT_EQ(kit.system().netlink()->buffered_count(),
            NetLinkComponent::kMaxBufferedPerDest);
  EXPECT_GT(kit.system().netlink()->buffer_drops(), 0u);
}

TEST(SystemCf, NetlinkBufferTimesOut) {
  testbed::SimWorld world(2);
  auto& kit = world.kit(0);
  kit.system().ensure_netlink();
  world.node(0).forwarding().send(world.addr(1), 64);
  EXPECT_EQ(kit.system().netlink()->buffered_count(), 1u);
  world.run_for(sec(15));  // > kBufferTimeout
  EXPECT_EQ(kit.system().netlink()->buffered_count(), 0u);
}

}  // namespace
}  // namespace mk::core
