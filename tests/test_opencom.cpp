// OpenCom component model: interfaces/receptacles, kernel bind/unbind,
// component frameworks with integrity rules, replace with rebinding,
// nesting, and the architecture meta-model.
#include <gtest/gtest.h>

#include "opencom/cf.hpp"
#include "opencom/component.hpp"
#include "opencom/kernel.hpp"

namespace mk::oc {
namespace {

struct IGreeter : Interface {
  virtual std::string greet() const = 0;
};

class Greeter : public Component, public IGreeter {
 public:
  explicit Greeter(std::string word = "hello")
      : Component("test.Greeter"), word_(std::move(word)) {
    provide("IGreeter", static_cast<IGreeter*>(this));
  }
  std::string greet() const override { return word_; }

 private:
  std::string word_;
};

class Caller : public Component {
 public:
  Caller() : Component("test.Caller") {
    declare_receptacle("greeter", "IGreeter");
  }
  std::string call() const {
    auto* g = plugged_as<IGreeter>("greeter");
    return g == nullptr ? "(unbound)" : g->greet();
  }
};

TEST(Component, InterfaceMetaModel) {
  Greeter g;
  EXPECT_EQ(g.interfaces(), std::vector<std::string>{"IGreeter"});
  EXPECT_NE(g.interface("IGreeter"), nullptr);
  EXPECT_EQ(g.interface("IBogus"), nullptr);
  EXPECT_NE(g.interface_as<IGreeter>("IGreeter"), nullptr);
}

TEST(Component, ReceptacleIntrospection) {
  Caller c;
  auto receptacles = c.receptacles();
  ASSERT_EQ(receptacles.size(), 1u);
  EXPECT_EQ(receptacles[0].name, "greeter");
  EXPECT_EQ(receptacles[0].iface_type, "IGreeter");
  EXPECT_FALSE(receptacles[0].connected);
}

TEST(Kernel, FactoryInstantiate) {
  Kernel kernel;
  kernel.register_factory("test.Greeter",
                          [] { return std::make_unique<Greeter>(); });
  EXPECT_TRUE(kernel.has_factory("test.Greeter"));
  auto comp = kernel.instantiate("test.Greeter");
  EXPECT_EQ(comp->type_name(), "test.Greeter");
  EXPECT_EQ(kernel.components_created(), 1u);
  EXPECT_THROW(kernel.instantiate("nope"), std::logic_error);
}

TEST(Kernel, BindConnectsReceptacleToInterface) {
  Kernel kernel;
  Greeter g("hi");
  Caller c;
  kernel.bind(c, "greeter", g, "IGreeter");
  EXPECT_EQ(c.call(), "hi");
  EXPECT_EQ(c.plugged_provider("greeter"), &g);
  kernel.unbind(c, "greeter");
  EXPECT_EQ(c.call(), "(unbound)");
}

TEST(Kernel, BindRejectsTypeMismatch) {
  Kernel kernel;
  Greeter g;
  Caller c;
  EXPECT_THROW(kernel.bind(c, "nope", g, "IGreeter"), std::logic_error);
  EXPECT_THROW(kernel.bind(c, "greeter", g, "IBogus"), std::logic_error);
}

TEST(Cf, InsertRemoveMembers) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  ComponentId id = cf.insert(std::make_unique<Greeter>());
  EXPECT_EQ(cf.member_count(), 1u);
  EXPECT_NE(cf.member(id), nullptr);
  cf.remove(id);
  EXPECT_EQ(cf.member_count(), 0u);
  EXPECT_THROW(cf.remove(id), std::logic_error);
}

TEST(Cf, IntegrityRuleBlocksIllegalInsert) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  cf.add_integrity_rule([](const CfView& view, std::string& err) {
    if (view.count_type("test.Greeter") > 1) {
      err = "only one greeter";
      return false;
    }
    return true;
  });
  cf.insert(std::make_unique<Greeter>());
  EXPECT_THROW(cf.insert(std::make_unique<Greeter>()), std::logic_error);
  EXPECT_EQ(cf.member_count(), 1u);  // rejected insert did not apply
}

TEST(Cf, IntegrityRuleBlocksIllegalRemove) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  cf.add_integrity_rule([](const CfView& view, std::string& err) {
    if (view.count_type("test.Greeter") < 1) {
      err = "greeter is mandatory";
      return false;
    }
    return true;
  });
  ComponentId id = cf.insert(std::make_unique<Greeter>());
  EXPECT_THROW(cf.remove(id), std::logic_error);
  EXPECT_EQ(cf.member_count(), 1u);
}

TEST(Cf, ConnectTracksBindings) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  ComponentId g = cf.insert(std::make_unique<Greeter>("yo"));
  ComponentId c = cf.insert(std::make_unique<Caller>());
  BindingId b = cf.connect(c, "greeter", g, "IGreeter");

  auto bindings = cf.bindings();
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].user, c);
  EXPECT_EQ(bindings[0].provider, g);

  EXPECT_EQ(dynamic_cast<Caller*>(cf.member(c))->call(), "yo");
  cf.disconnect(b);
  EXPECT_EQ(dynamic_cast<Caller*>(cf.member(c))->call(), "(unbound)");
}

TEST(Cf, RemoveDisconnectsInvolvedBindings) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  ComponentId g = cf.insert(std::make_unique<Greeter>());
  ComponentId c = cf.insert(std::make_unique<Caller>());
  cf.connect(c, "greeter", g, "IGreeter");
  cf.remove(g);
  EXPECT_TRUE(cf.bindings().empty());
  EXPECT_EQ(dynamic_cast<Caller*>(cf.member(c))->call(), "(unbound)");
}

TEST(Cf, ReplaceReestablishesBindings) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  ComponentId g = cf.insert(std::make_unique<Greeter>("old"));
  ComponentId c = cf.insert(std::make_unique<Caller>());
  cf.connect(c, "greeter", g, "IGreeter");

  ComponentId g2 = cf.replace(g, std::make_unique<Greeter>("new"));
  EXPECT_EQ(cf.member(g), nullptr);
  EXPECT_NE(cf.member(g2), nullptr);
  // The caller's receptacle was rewired to the replacement automatically.
  EXPECT_EQ(dynamic_cast<Caller*>(cf.member(c))->call(), "new");
  ASSERT_EQ(cf.bindings().size(), 1u);
  EXPECT_EQ(cf.bindings()[0].provider, g2);
}

TEST(Cf, ExtractReturnsOwnershipForStateTransfer) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  ComponentId g = cf.insert(std::make_unique<Greeter>("kept"));
  auto extracted = cf.extract(g);
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(cf.member_count(), 0u);
  EXPECT_EQ(dynamic_cast<Greeter*>(extracted.get())->greet(), "kept");
}

TEST(Cf, NestsAsComponents) {
  Kernel kernel;
  ComponentFramework outer(kernel, "test.Outer");
  auto inner = std::make_unique<ComponentFramework>(kernel, "test.Inner");
  inner->insert(std::make_unique<Greeter>());
  ComponentId inner_id = outer.insert(std::move(inner));
  auto* nested = dynamic_cast<ComponentFramework*>(outer.member(inner_id));
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->member_count(), 1u);
}

TEST(Cf, FindByInstanceNameAndInterface) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  auto g = std::make_unique<Greeter>();
  g->set_instance_name("TheGreeter");
  cf.insert(std::move(g));
  EXPECT_NE(cf.find("TheGreeter"), nullptr);
  EXPECT_EQ(cf.find("Missing"), nullptr);
  EXPECT_NE(cf.find_providing("IGreeter"), nullptr);
  EXPECT_EQ(cf.find_providing("IBogus"), nullptr);
}

TEST(Cf, QuiesceIsReentrant) {
  Kernel kernel;
  ComponentFramework cf(kernel, "test.CF");
  auto lock1 = cf.quiesce();
  auto lock2 = cf.quiesce();  // recursive: no deadlock
  SUCCEED();
}

}  // namespace
}  // namespace mk::oc
