// Simultaneous deployment, protocol switching with state carry-over, and
// memory sharing — the coexistence claims of §4.1/§6.2.
#include <gtest/gtest.h>

#include "protocols/dymo/dymo_cf.hpp"
#include "protocols/dymo/opt_flood.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "testbed/world.hpp"
#include "util/memtrack.hpp"

namespace mk {
namespace {

TEST(Coexistence, OlsrAndDymoRunSimultaneously) {
  testbed::SimWorld world(5);
  world.linear();
  world.enable_invariants();
  for (std::size_t i = 0; i < 5; ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // OLSR keeps the table proactively full; data flows without discovery.
  world.node(0).forwarding().send(world.addr(4), 128);
  world.run_for(sec(1));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);

  // Continuous route/loop checks stayed silent through co-deployment, and a
  // full end-of-scenario sweep agrees.
  EXPECT_TRUE(world.checker()->violations().empty());
  EXPECT_EQ(world.checker()->check_all(world.now().us), 0u);
}

TEST(Coexistence, DymoTakesOverAfterOlsrUndeploys) {
  testbed::SimWorld world(4);
  world.linear();
  world.enable_invariants();
  for (std::size_t i = 0; i < 4; ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  world.run_for(sec(30));

  for (std::size_t i = 0; i < 4; ++i) {
    world.kit(i).undeploy("olsr");
    world.kit(i).undeploy("mpr");
  }
  // OLSR's routes age out of relevance as topology changes; force a fresh
  // path need by breaking and re-adding a link so stale routes fail.
  world.medium().set_link(world.addr(1), world.addr(2), false);
  world.run_for(sec(10));
  world.medium().set_link(world.addr(1), world.addr(2), true);
  world.run_for(sec(6));

  world.node(0).forwarding().send(world.addr(3), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(3).deliveries().size(), 1u);

  // The link break/restore churn never produced a loop or a stale install
  // beyond the detection grace window.
  EXPECT_TRUE(world.checker()->violations().empty());
  EXPECT_EQ(world.checker()->check_all(world.now().us), 0u);
}

TEST(Coexistence, SharedMprReducesFootprint) {
  // Footprint(olsr + optimised-flooding dymo) < footprint(olsr) +
  // footprint(standalone dymo): the MPR CF and System CF are shared.
  auto measure = [](auto deploy_fn) {
    testbed::SimWorld world(2);
    world.full_mesh();
    memtrack::Scope scope;
    deploy_fn(world.kit(0));
    return scope.live_bytes_delta();
  };

  std::uint64_t together = measure([](core::Manetkit& kit) {
    kit.deploy("olsr");
    kit.deploy("dymo");
    proto::apply_dymo_optimized_flooding(kit);
  });
  std::uint64_t olsr_only = measure([](core::Manetkit& kit) {
    kit.deploy("olsr");
  });
  std::uint64_t dymo_only = measure([](core::Manetkit& kit) {
    kit.deploy("dymo");
  });

  EXPECT_LT(together, olsr_only + dymo_only)
      << "co-deployment must be leaner than two separate stacks";
}

TEST(Switching, OlsrToDymoKeepsDataPlaneAlive) {
  testbed::SimWorld world(5);
  world.linear();
  world.enable_invariants();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  for (std::size_t i = 0; i < 5; ++i) {
    world.kit(i).switch_protocol("olsr", "dymo", /*carry_state=*/false);
    world.kit(i).undeploy("mpr");
  }
  // Kernel routes from OLSR survive the switch ("make before break"): data
  // still flows immediately...
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(1));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);

  // ...and DYMO handles new needs after those routes age away.
  world.run_for(sec(10));
  world.node(4).forwarding().send(world.addr(0), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(0).deliveries().size(), 1u);

  // Protocol switching kept the table loop-free and neighbour-valid.
  EXPECT_TRUE(world.checker()->violations().empty());
  EXPECT_EQ(world.checker()->check_all(world.now().us), 0u);
}

TEST(Switching, DymoToAodvSeriallyReusesReactiveSlot) {
  testbed::SimWorld world(3);
  world.linear();
  world.enable_invariants();
  world.deploy_all("dymo");
  world.run_for(sec(5));
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));
  EXPECT_EQ(world.node(2).deliveries().size(), 1u);

  for (std::size_t i = 0; i < 3; ++i) {
    world.kit(i).switch_protocol("dymo", "aodv", /*carry_state=*/false);
  }
  world.run_for(sec(10));  // old DYMO kernel routes age out via... they stay;
                           // break a link so they fail over to AODV discovery
  world.medium().set_link(world.addr(0), world.addr(1), false);
  world.run_for(sec(2));
  world.medium().set_link(world.addr(0), world.addr(1), true);
  world.run_for(sec(6));

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(2).deliveries().size(), 2u);

  EXPECT_TRUE(world.checker()->violations().empty());
  EXPECT_EQ(world.checker()->check_all(world.now().us), 0u);
}

TEST(Switching, StateCarryOverMovesSElement) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto& kit = world.kit(0);
  auto* dymo = kit.deploy("dymo");

  // Seed some state, then switch dymo -> dymo2 (re-registered under another
  // name to demonstrate carry-over between compatible instances).
  proto::dymo_state(*dymo)->update_route(99, 1, 98, 1, TimePoint{0}, sec(60));
  kit.register_protocol(
      "dymo2", 20,
      [](core::Manetkit& k) { return proto::build_dymo_cf(k); }, "reactive");

  auto* fresh = kit.switch_protocol("dymo", "dymo2", /*carry_state=*/true);
  auto* st = proto::dymo_state(*fresh);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->route_to(99).has_value())
      << "carried S element must retain the route table";
}

}  // namespace
}  // namespace mk
