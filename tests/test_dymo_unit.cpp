// DYMO unit tests: route-table acceptance rules (seqnum freshness, hop-count
// improvement), lifetimes, pending-RREQ backoff, RM codec with path
// accumulation, multipath state.
#include <gtest/gtest.h>

#include "protocols/dymo/dymo_cf.hpp"
#include "protocols/dymo/dymo_state.hpp"

namespace mk::proto {
namespace {

TEST(DymoState, FreshnessRules) {
  DymoState st;
  TimePoint t{0};
  EXPECT_TRUE(st.update_route(10, 5, 20, 3, t, sec(5)));
  // Older seq rejected.
  EXPECT_FALSE(st.update_route(10, 4, 21, 1, t, sec(5)));
  // Same seq, more hops rejected.
  EXPECT_FALSE(st.update_route(10, 5, 21, 4, t, sec(5)));
  // Same seq, fewer hops accepted.
  EXPECT_TRUE(st.update_route(10, 5, 22, 2, t, sec(5)));
  // Newer seq always accepted.
  EXPECT_TRUE(st.update_route(10, 6, 23, 9, t, sec(5)));
  EXPECT_EQ(st.route_to(10)->active()->next_hop, 23u);
}

TEST(DymoState, SeqnumWraparound) {
  DymoState st;
  TimePoint t{0};
  EXPECT_TRUE(st.update_route(10, 65535, 20, 1, t, sec(5)));
  EXPECT_TRUE(st.update_route(10, 0, 21, 1, t, sec(5)));  // 0 is newer
}

TEST(DymoState, SameInfoRefreshesLifetime) {
  DymoState st;
  st.update_route(10, 5, 20, 3, TimePoint{0}, sec(5));
  // Same route repeated later: not an "update", but lifetime extends.
  EXPECT_FALSE(st.update_route(10, 5, 20, 3, TimePoint{sec(4).count()},
                               sec(5)));
  EXPECT_TRUE(st.expire(TimePoint{sec(6).count()}).empty());
  auto expired = st.expire(TimePoint{sec(10).count()});
  EXPECT_EQ(expired, std::vector<net::Addr>{10});
}

TEST(DymoState, InvalidRouteReacceptsSameSeq) {
  DymoState st;
  TimePoint t{0};
  st.update_route(10, 5, 20, 3, t, sec(5));
  st.invalidate(10);
  // Same seq re-learned after invalidation: accepted.
  EXPECT_TRUE(st.update_route(10, 5, 21, 3, t, sec(5)));
}

TEST(DymoState, InvalidateViaReportsDestSeqPairs) {
  DymoState st;
  TimePoint t{0};
  st.update_route(10, 5, 99, 2, t, sec(5));
  st.update_route(11, 7, 99, 3, t, sec(5));
  st.update_route(12, 9, 50, 1, t, sec(5));
  auto down = st.invalidate_via(99);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_FALSE(st.route_to(10)->valid);
  EXPECT_TRUE(st.route_to(12)->valid);
  // Second invalidation via the same hop is empty (already invalid).
  EXPECT_TRUE(st.invalidate_via(99).empty());
}

TEST(DymoState, PendingBackoffDoublesAndGivesUp) {
  DymoState st;
  st.start_pending(10, TimePoint{0}, sec(1));
  EXPECT_TRUE(st.has_pending(10));

  std::vector<net::Addr> gave_up;
  // t=0.5s: not due yet.
  EXPECT_TRUE(st.due_retries(TimePoint{msec(500).count()}, gave_up).empty());
  // t=1s: first retry; backoff doubles to 2s.
  EXPECT_EQ(st.due_retries(TimePoint{sec(1).count()}, gave_up).size(), 1u);
  // t=2s: next retry due at 1+2=3s.
  EXPECT_TRUE(st.due_retries(TimePoint{sec(2).count()}, gave_up).empty());
  // t=3s: second retry (tries=3 == kMaxTries now).
  EXPECT_EQ(st.due_retries(TimePoint{sec(3).count()}, gave_up).size(), 1u);
  // t=7s (3+4): exhausted -> gives up.
  EXPECT_TRUE(st.due_retries(TimePoint{sec(7).count()}, gave_up).empty());
  EXPECT_EQ(gave_up, std::vector<net::Addr>{10});
  EXPECT_FALSE(st.has_pending(10));
}

TEST(RmCodec, RreqRoundTripWithAccumulation) {
  auto msg = rm::build_rreq(/*self=*/1, /*seq=*/9, /*target=*/5, 10);
  EXPECT_EQ(rm::kind(msg), rm::Kind::kRreq);
  EXPECT_EQ(rm::target(msg), 5u);

  // Two relays append themselves.
  msg.hop_count = 1;
  rm::append_self(msg, 2, 100);
  msg.hop_count = 2;
  rm::append_self(msg, 3, 200);

  pbb::Packet pkt;
  pkt.messages.push_back(msg);
  auto parsed = pbb::parse(pbb::serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  const auto& m = parsed.value().messages[0];
  ASSERT_EQ(m.addr_blocks.size(), 2u);
  const auto& path = m.addr_blocks[1];
  ASSERT_EQ(path.addrs.size(), 2u);
  EXPECT_EQ(path.addrs[0], 2u);
  EXPECT_EQ(path.tlv_for(0, wire::kAtlvSeqnum)->as_u32(), 100u);
  EXPECT_EQ(path.tlv_for(0, wire::kAtlvHops)->as_u8(), 1);
  EXPECT_EQ(path.tlv_for(1, wire::kAtlvHops)->as_u8(), 2);
}

TEST(RmCodec, RrepTargetsRreqOriginator) {
  auto msg = rm::build_rrep(/*self=*/5, /*seq=*/11, /*rreq_origin=*/1, 10);
  EXPECT_EQ(rm::kind(msg), rm::Kind::kRrep);
  EXPECT_EQ(rm::target(msg), 1u);
  EXPECT_EQ(*msg.originator, 5u);
}

TEST(RmCodec, RerrCarriesSeqPerAddress) {
  auto msg = rm::build_rerr(7, 3, {{10, 5}, {11, 8}}, 3);
  EXPECT_EQ(msg.type, wire::kMsgDymoRerr);
  ASSERT_EQ(msg.addr_blocks.size(), 1u);
  EXPECT_EQ(msg.addr_blocks[0].tlv_for(0, wire::kAtlvSeqnum)->as_u32(), 5u);
  EXPECT_EQ(msg.addr_blocks[0].tlv_for(1, wire::kAtlvSeqnum)->as_u32(), 8u);
}

TEST(MultipathState, DisjointPathsOnly) {
  MultipathDymoState st;
  st.update_route(10, 5, 20, 2, TimePoint{0}, sec(5));
  EXPECT_FALSE(st.add_alternate_path(10, 20, 3));  // same next hop
  EXPECT_TRUE(st.add_alternate_path(10, 21, 3));
  EXPECT_TRUE(st.add_alternate_path(10, 22, 4));
  EXPECT_FALSE(st.add_alternate_path(10, 23, 4));  // kMaxPaths reached
  EXPECT_EQ(st.path_count(10), 3u);
}

TEST(MultipathState, FailOverPromotesNextPath) {
  MultipathDymoState st;
  st.update_route(10, 5, 20, 2, TimePoint{0}, sec(5));
  st.add_alternate_path(10, 21, 3);

  auto alt = st.fail_over(10);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->next_hop, 21u);
  EXPECT_TRUE(st.route_to(10)->valid);

  EXPECT_FALSE(st.fail_over(10).has_value());  // no more alternates
  EXPECT_FALSE(st.route_to(10)->valid);
}

TEST(MultipathState, StateTransferFromBase) {
  DymoState base;
  base.update_route(10, 5, 20, 2, TimePoint{0}, sec(5));
  base.update_route(11, 6, 21, 1, TimePoint{0}, sec(5));
  MultipathDymoState mp(base);
  EXPECT_EQ(mp.route_count(), 2u);
  EXPECT_EQ(mp.route_to(10)->active()->next_hop, 20u);
  EXPECT_TRUE(mp.add_alternate_path(10, 30, 4));
}

TEST(DymoState, NoAlternateOnInvalidRoute) {
  MultipathDymoState st;
  st.update_route(10, 5, 20, 2, TimePoint{0}, sec(5));
  st.invalidate(10);
  EXPECT_FALSE(st.add_alternate_path(10, 21, 3));
}

}  // namespace
}  // namespace mk::proto
