// Tier-1 conformance for the scenario-matrix harness (ctest label:
// scenario). A small slice of the shoot-out matrix — 2 protocols x 2
// mobility models x 1 load — must be (a) reproducible: running the same
// CellSpec twice yields identical ordered journal digests and identical
// metrics; (b) clean: zero routing-invariant violations; (c) sane: PDR in
// (0,1], latency positive exactly when packets arrived. On top of the
// matrix slice, the clock-drift cells pin end-to-end latency to exact
// sim-time values: the DeliverySink clock is the scheduler, so a drifted
// transmitter scales latency by precisely its drift factor — wall-clock
// leakage or double-stamping would break the equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "testbed/scenario/scenario.hpp"
#include "testbed/traffic.hpp"
#include "testbed/world.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

using testbed::scenario::CellResult;
using testbed::scenario::CellSpec;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

/// The tier-1 slice: reactive protocols (route acquisition is part of what
/// the harness must measure) under both mobility models, CBR load, no
/// faults. Small field/short window keep the whole slice under a few
/// seconds of wall clock.
std::vector<CellSpec> tier1_cells() {
  CellSpec base;
  base.nodes = 30;
  base.width = base.height = 800;
  base.flows = 6;
  base.warmup = sec(3);
  base.duration = sec(8);
  base.seed = chaos_seed();
  return testbed::scenario::expand_matrix(
      base, {"dymo", "aodv"}, {"random_waypoint", "gauss_markov"},
      {false}, {{"none", ""}}, {base.seed});
}

TEST(ScenarioMatrix, CellsAreDigestStableAndSane) {
  for (const CellSpec& spec : tier1_cells()) {
    const std::string key = testbed::scenario::cell_key(spec);
    const CellResult a = testbed::scenario::run_cell(spec);
    const CellResult b = testbed::scenario::run_cell(spec);

    // (a) reproducibility: bit-identical record streams and metrics.
    EXPECT_EQ(a.digest.ordered, b.digest.ordered) << key;
    EXPECT_EQ(a.digest.canonical, b.digest.canonical) << key;
    EXPECT_EQ(a.digest.records, b.digest.records) << key;
    EXPECT_EQ(a.sent, b.sent) << key;
    EXPECT_EQ(a.received, b.received) << key;
    EXPECT_DOUBLE_EQ(a.latency_p99_ms, b.latency_p99_ms) << key;
    EXPECT_DOUBLE_EQ(a.convergence_ms, b.convergence_ms) << key;

    // (b) clean runs: the continuous invariant checker saw nothing.
    EXPECT_EQ(a.invariant_violations, 0u) << key;

    // (c) sanity: traffic flowed and the metrics are in range.
    EXPECT_GT(a.sent, 0u) << key;
    EXPECT_GT(a.pdr, 0.0) << key;
    EXPECT_LE(a.pdr, 1.0) << key;
    EXPECT_GT(a.digest.records, 0u) << key;
    ASSERT_EQ(a.flows.size(), spec.flows) << key;
    for (const testbed::FlowStats& f : a.flows) {
      if (f.received > 0) {
        EXPECT_GT(f.latency_p50_ms, 0.0) << key << " flow " << f.src;
        EXPECT_GE(f.latency_max_ms, f.latency_p50_ms)
            << key << " flow " << f.src;
      } else {
        EXPECT_EQ(f.latency_p50_ms, 0.0) << key << " flow " << f.src;
      }
      EXPECT_LE(f.received, f.sent)
          << key << " flow " << f.src << ": more deliveries than sends";
    }
  }
}

TEST(ScenarioMatrix, DistinctSeedsChangeTheJournal) {
  CellSpec spec = tier1_cells().front();
  const CellResult a = testbed::scenario::run_cell(spec);
  spec.seed = spec.seed + 1;
  const CellResult b = testbed::scenario::run_cell(spec);
  EXPECT_NE(a.digest.ordered, b.digest.ordered)
      << "the cell seed must actually drive the run";
}

TEST(ScenarioMatrix, ExpandMatrixCoversTheCrossProduct) {
  CellSpec base;
  const auto cells = testbed::scenario::expand_matrix(
      base, {"olsr", "dymo"}, {"random_waypoint", "gauss_markov"},
      {false, true}, {{"none", ""}, {"stress", "at 1s loss 0.5 for 1s"}},
      {1, 2, 3});
  EXPECT_EQ(cells.size(), 2u * 2 * 2 * 2 * 3);
  std::vector<std::string> keys;
  for (const auto& c : cells) keys.push_back(testbed::scenario::cell_key(c));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end())
      << "cell keys must be unique across the matrix";
}

// ----------------------------------------------------- clock-drift latency

/// One-hop latency for a 256-byte data payload: base 500us + 1us/byte over
/// the 310-byte wire frame (34B header + 256B payload + 20B trailer).
constexpr double kOneHopMs = 0.810;

/// Runs a 2-node OLSR chain, sends CBR packets from node 0 under `plan`,
/// and returns every delivered packet's end-to-end latency in ms.
std::vector<double> drift_latencies(const std::string& plan_text) {
  testbed::SimWorld world(2, chaos_seed());
  world.linear();
  world.deploy_all("olsr");
  auto converged = world.run_until_routed(sec(30));
  EXPECT_TRUE(converged.has_value());
  if (!plan_text.empty()) {
    world.apply_fault_plan(fault::FaultPlan::parse(plan_text));
  }
  testbed::DeliverySink sink(world.node(1));
  testbed::CbrFlow flow(world.node(0), world.addr(1), msec(250),
                        /*payload=*/256);
  flow.start();
  world.run_for(sec(5));
  flow.stop();
  world.run_for(msec(100));
  EXPECT_GT(sink.received(), 0u);
  return sink.latencies_ms().values();
}

TEST(ScenarioMatrix, LatencyIsSimTimeWithoutDrift) {
  for (double ms : drift_latencies("")) {
    EXPECT_DOUBLE_EQ(ms, kOneHopMs)
        << "undrifted one-hop latency must be exactly base + per-byte delay";
  }
}

TEST(ScenarioMatrix, ClockDriftScalesLatencyExactly) {
  // The drifted node's oscillator runs slow: every frame it transmits takes
  // factor x the nominal propagation delay. Latency is pure sim-time, so the
  // delivered latencies are exact multiples — no wall-clock jitter, no
  // re-stamping at intermediate layers.
  for (double ms : drift_latencies("at 0s drift 0 2.0 for 60s")) {
    EXPECT_DOUBLE_EQ(ms, 2.0 * kOneHopMs);
  }
  for (double ms : drift_latencies("at 0s drift 0 1.5 for 60s")) {
    EXPECT_DOUBLE_EQ(ms, 1.5 * kOneHopMs);
  }
  // Drift on the *receiver* leaves the sender's frames untouched.
  for (double ms : drift_latencies("at 0s drift 1 2.0 for 60s")) {
    EXPECT_DOUBLE_EQ(ms, kOneHopMs);
  }
}

}  // namespace
}  // namespace mk
