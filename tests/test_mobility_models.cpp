// Determinism and conformance for the Gauss–Markov mobility model and the
// on-off traffic generator (scenario-matrix ISSUE).
//
// Gauss–Markov shares RandomWaypoint's incremental RangeLinkTracker path, so
// it inherits the same acceptance bar: the grid backend must be bit-identical
// to the O(n²) reference oracle (link sets and ordered journal digests at
// every step), one seed must reproduce one trajectory exactly, and different
// seeds must actually diverge. OnOffFlow gets the same treatment through its
// flip schedule: the (time, state) transition list is the determinism
// witness.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "testbed/traffic.hpp"
#include "testbed/world.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

using net::topo::TopologyBackend;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

std::vector<std::vector<net::Addr>> link_sets(testbed::SimWorld& world) {
  std::vector<std::vector<net::Addr>> out;
  out.reserve(world.size());
  for (std::size_t i = 0; i < world.size(); ++i) {
    auto span = world.medium().neighbors_of(world.addr(i));
    out.emplace_back(span.begin(), span.end());
  }
  return out;
}

// ------------------------------------------------------------ Gauss–Markov

TEST(GaussMarkov, GridMatchesReferenceUnderMobility) {
  const std::size_t n = 150;
  const std::uint64_t seed = chaos_seed();
  net::GaussMarkov::Params p;
  p.width = 2000;
  p.height = 2000;
  p.range = 250;
  testbed::SimWorld grid_world(n, seed);
  testbed::SimWorld ref_world(n, seed);
  obs::Journal& jg = grid_world.enable_tracing();
  obs::Journal& jr = ref_world.enable_tracing();
  grid_world.enable_mobility(p, seed ^ 0x9a055, TopologyBackend::kGrid);
  ref_world.enable_mobility(p, seed ^ 0x9a055, TopologyBackend::kReference);
  ASSERT_EQ(jg.ordered_digest(), jr.ordered_digest()) << "initial placement";

  for (int step = 0; step < 30; ++step) {
    grid_world.step_mobility(sec(1));
    ref_world.step_mobility(sec(1));
    ASSERT_EQ(link_sets(grid_world), link_sets(ref_world))
        << "link sets diverged at step " << step << " (seed " << seed << ")";
    ASSERT_EQ(jg.ordered_digest(), jr.ordered_digest())
        << "journal diverged at step " << step << " (seed " << seed << ")";
  }
  EXPECT_GT(grid_world.medium().stats().link_flips, 0u)
      << "30s of Gauss-Markov motion must churn links";
  EXPECT_LT(grid_world.medium().stats().pair_evals,
            ref_world.medium().stats().pair_evals / 4)
      << "incremental grid stepping must test far fewer pairs";
}

TEST(GaussMarkov, SameSeedReproducesDigest) {
  const std::uint64_t seed = chaos_seed();
  net::GaussMarkov::Params p;
  auto run = [&](TopologyBackend backend) {
    testbed::SimWorld world(60, seed);
    obs::Journal& journal = world.enable_tracing();
    world.enable_mobility(p, seed ^ 0x60d, backend);
    for (int step = 0; step < 50; ++step) world.step_mobility(msec(200));
    return journal.digests();
  };
  const auto a = run(TopologyBackend::kGrid);
  const auto b = run(TopologyBackend::kGrid);
  EXPECT_EQ(a.ordered, b.ordered);
  EXPECT_EQ(a.records, b.records);
  // The reference backend replays the same trajectory: identical stream.
  const auto c = run(TopologyBackend::kReference);
  EXPECT_EQ(a.ordered, c.ordered);
}

TEST(GaussMarkov, DifferentSeedsDiverge) {
  net::GaussMarkov::Params p;
  auto run = [&](std::uint64_t mobility_seed) {
    testbed::SimWorld world(60, 42);
    obs::Journal& journal = world.enable_tracing();
    world.enable_mobility(p, mobility_seed);
    for (int step = 0; step < 50; ++step) world.step_mobility(msec(200));
    return journal.ordered_digest();
  };
  EXPECT_NE(run(chaos_seed()), run(chaos_seed() + 1))
      << "different mobility seeds must produce different link histories";
}

TEST(GaussMarkov, StaysInsideFieldBounds) {
  const std::size_t n = 40;
  net::GaussMarkov::Params p;
  p.width = 400;   // small field + fast nodes: reflections every few steps
  p.height = 300;
  p.mean_speed = 20;
  p.speed_sigma = 8;
  p.range = 120;
  testbed::SimWorld world(n, chaos_seed());
  world.enable_mobility(p, chaos_seed() ^ 0xb0b);
  for (int step = 0; step < 200; ++step) {
    world.step_mobility(msec(500));
    for (std::size_t i = 0; i < n; ++i) {
      const net::Position pos = world.node(i).position();
      ASSERT_GE(pos.x, 0.0) << "node " << i << " step " << step;
      ASSERT_LE(pos.x, p.width) << "node " << i << " step " << step;
      ASSERT_GE(pos.y, 0.0) << "node " << i << " step " << step;
      ASSERT_LE(pos.y, p.height) << "node " << i << " step " << step;
    }
  }
}

// ---------------------------------------------------------------- OnOffFlow

std::vector<std::pair<std::int64_t, bool>> flip_log(
    const testbed::OnOffFlow& flow) {
  std::vector<std::pair<std::int64_t, bool>> out;
  out.reserve(flow.flips().size());
  for (const auto& f : flow.flips()) out.emplace_back(f.at.us, f.on);
  return out;
}

struct OnOffRun {
  std::vector<std::pair<std::int64_t, bool>> flips;
  std::uint64_t sent = 0;
};

OnOffRun run_onoff(std::uint64_t flow_seed, bool deterministic) {
  testbed::SimWorld world(2, 42);
  world.linear();
  testbed::OnOffFlow::Params p;
  p.interval = msec(100);
  p.mean_on = sec(1);
  p.mean_off = msec(500);
  p.deterministic = deterministic;
  testbed::OnOffFlow flow(world.node(0), world.addr(1), p, flow_seed);
  flow.start();
  world.run_for(sec(20));
  flow.stop();
  return {flip_log(flow), flow.sent()};
}

TEST(OnOffFlow, SameSeedSameSchedule) {
  const auto a = run_onoff(chaos_seed(), /*deterministic=*/false);
  const auto b = run_onoff(chaos_seed(), /*deterministic=*/false);
  ASSERT_GT(a.flips.size(), 4u) << "20s must see several on/off transitions";
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_GT(a.sent, 0u);
}

TEST(OnOffFlow, DifferentSeedsDiverge) {
  const auto a = run_onoff(chaos_seed(), /*deterministic=*/false);
  const auto b = run_onoff(chaos_seed() + 1, /*deterministic=*/false);
  EXPECT_NE(a.flips, b.flips)
      << "exponential period draws must depend on the flow seed";
}

TEST(OnOffFlow, DeterministicModeFlipsAtExactMeans) {
  const auto a = run_onoff(chaos_seed(), /*deterministic=*/true);
  // start() flips ON at t=0; then OFF after exactly 1s, ON 500ms later, ...
  ASSERT_GE(a.flips.size(), 5u);
  EXPECT_EQ(a.flips[0], (std::pair<std::int64_t, bool>{0, true}));
  EXPECT_EQ(a.flips[1], (std::pair<std::int64_t, bool>{1000000, false}));
  EXPECT_EQ(a.flips[2], (std::pair<std::int64_t, bool>{1500000, true}));
  EXPECT_EQ(a.flips[3], (std::pair<std::int64_t, bool>{2500000, false}));
  EXPECT_EQ(a.flips[4], (std::pair<std::int64_t, bool>{3000000, true}));
  // Deterministic mode ignores the seed entirely.
  const auto b = run_onoff(chaos_seed() + 17, /*deterministic=*/true);
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_EQ(a.sent, b.sent);
}

TEST(OnOffFlow, OffPeriodsActuallyGateSending) {
  // A plain CBR flow over the same window sends every interval; the on-off
  // flow must send strictly less (it spends OFF windows silent) but still
  // more than nothing.
  testbed::SimWorld world(2, 42);
  world.linear();
  testbed::CbrFlow cbr(world.node(0), world.addr(1), msec(100));
  cbr.start();
  world.run_for(sec(20));
  cbr.stop();

  const auto onoff = run_onoff(chaos_seed(), /*deterministic=*/true);
  EXPECT_GT(onoff.sent, 0u);
  EXPECT_LT(onoff.sent, cbr.sent())
      << "on-off gating must suppress sends during OFF periods";
}

}  // namespace
}  // namespace mk
