// Property-based fuzzing of the PacketBB parser (ISSUE 3): seeded random
// packets must round-trip exactly, and no byte flip, truncation or garbage
// input may crash (or, under the sanitizer jobs, leak). The parser fronts
// every protocol in the framework, so this is the single most
// attacker-exposed code path in the repo.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "packetbb/packetbb.hpp"
#include "util/rng.hpp"

namespace mk {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

pbb::Tlv random_tlv(Rng& rng) {
  return pbb::Tlv{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                  random_bytes(rng, 16)};
}

pbb::Packet random_packet(Rng& rng) {
  pbb::Packet p;
  p.version = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  if (rng.bernoulli(0.5)) {
    p.seqnum = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
  }
  for (int i = rng.uniform_int(0, 3); i > 0; --i) {
    p.tlvs.push_back(random_tlv(rng));
  }
  for (int m = rng.uniform_int(0, 3); m > 0; --m) {
    pbb::Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (rng.bernoulli(0.5)) {
      msg.originator = static_cast<pbb::Addr>(rng.next_u64());
    }
    if (rng.bernoulli(0.5)) {
      msg.has_hops = true;
      msg.hop_limit = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      msg.hop_count = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.5)) {
      msg.seqnum = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    }
    for (int i = rng.uniform_int(0, 3); i > 0; --i) {
      msg.tlvs.push_back(random_tlv(rng));
    }
    for (int b = rng.uniform_int(0, 2); b > 0; --b) {
      pbb::AddressBlock block;
      for (int a = rng.uniform_int(0, 4); a > 0; --a) {
        block.addrs.push_back(static_cast<pbb::Addr>(rng.next_u64()));
      }
      if (!block.addrs.empty()) {
        for (int t = rng.uniform_int(0, 2); t > 0; --t) {
          auto hi = static_cast<std::uint8_t>(
              rng.uniform_int(0, static_cast<int>(block.addrs.size()) - 1));
          auto lo = static_cast<std::uint8_t>(rng.uniform_int(0, hi));
          block.tlvs.push_back(pbb::AddressTlv{
              static_cast<std::uint8_t>(rng.uniform_int(0, 255)), lo, hi,
              random_bytes(rng, 8)});
        }
      }
      msg.addr_blocks.push_back(std::move(block));
    }
    p.messages.push_back(std::move(msg));
  }
  return p;
}

TEST(PacketbbFuzz, UntouchedPacketsRoundTripExactly) {
  Rng rng(0xf00d);
  for (int iter = 0; iter < 200; ++iter) {
    pbb::Packet p = random_packet(rng);
    auto bytes = pbb::serialize(p);
    EXPECT_EQ(bytes.size(), pbb::serialized_size(p));

    auto parsed = pbb::parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << "iter " << iter << ": "
                                    << parsed.error();
    EXPECT_EQ(parsed.value(), p) << "iter " << iter;
    EXPECT_EQ(pbb::serialize(parsed.value()), bytes) << "iter " << iter;
  }
}

TEST(PacketbbFuzz, EverySingleByteFlipIsHandled) {
  Rng rng(0xbeef);
  for (int iter = 0; iter < 40; ++iter) {
    auto bytes = pbb::serialize(random_packet(rng));
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      auto mutated = bytes;
      mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      auto parsed = pbb::parse(mutated);  // must return, never crash
      if (parsed.has_value()) {
        // Whatever the parser accepted must re-encode and re-parse stably
        // (the canonical-form fixpoint property).
        auto reencoded = pbb::serialize(parsed.value());
        auto reparsed = pbb::parse(reencoded);
        ASSERT_TRUE(reparsed.has_value());
        EXPECT_EQ(reparsed.value(), parsed.value());
      }
    }
  }
}

TEST(PacketbbFuzz, MultiByteCorruptionNeverCrashes) {
  Rng rng(0xcafe);
  for (int iter = 0; iter < 500; ++iter) {
    auto bytes = pbb::serialize(random_packet(rng));
    if (bytes.empty()) continue;
    for (int flips = rng.uniform_int(1, 8); flips > 0; --flips) {
      auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(bytes.size()) - 1));
      bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)pbb::parse(bytes);
  }
}

TEST(PacketbbFuzz, EveryTruncationIsHandled) {
  Rng rng(0xd00d);
  for (int iter = 0; iter < 40; ++iter) {
    auto bytes = pbb::serialize(random_packet(rng));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      (void)pbb::parse(std::span<const std::uint8_t>(bytes.data(), len));
    }
  }
}

TEST(PacketbbFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0x5eed);
  for (int iter = 0; iter < 400; ++iter) {
    auto garbage = random_bytes(rng, 256);
    (void)pbb::parse(garbage);
  }
}

}  // namespace
}  // namespace mk
