// Scale / soak: a 25-node mobile network running co-deployed protocols with
// policy engines, traffic and periodic reconfiguration for minutes of
// simulated time. Nothing here asserts exact routes — the point is that the
// whole system stays sane (no asserts, no leaks of pending state, traffic
// keeps flowing, reconfiguration keeps working) under sustained churn.
#include <gtest/gtest.h>

#include "policy/policy_engine.hpp"
#include "protocols/dymo/multipath.hpp"
#include "protocols/olsr/fisheye.hpp"
#include "protocols/olsr/power_aware.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

TEST(Soak, LargeMobileOlsrNetworkStaysFunctional) {
  constexpr std::size_t kNodes = 25;
  testbed::SimWorld world(kNodes, /*seed=*/5);
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) nodes.push_back(&world.node(i));

  net::RandomWaypoint::Params mob;
  mob.width = 1200;
  mob.height = 1200;
  mob.min_speed = 0.5;
  mob.max_speed = 4.0;  // pedestrian: topology changes but not chaotically
  mob.range = 420;
  net::RandomWaypoint rwp(world.medium(), nodes, mob, /*seed=*/5);

  world.deploy_all("olsr");

  std::size_t sent = 0;
  Rng rng(17);
  for (int minute = 0; minute < 3; ++minute) {
    for (int s = 0; s < 60; s += 5) {
      rwp.step(sec(5));
      world.run_for(sec(5));
      auto a = static_cast<std::size_t>(rng.uniform_int(0, kNodes - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, kNodes - 1));
      if (a != b) {
        world.node(a).forwarding().send(world.addr(b), 256);
        ++sent;
      }
    }
  }
  world.run_for(sec(10));

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    delivered += world.node(i).deliveries().size();
  }
  // Proactive routing over a slowly-moving dense-ish field: most sends land.
  EXPECT_GT(delivered, sent / 2)
      << "delivered " << delivered << "/" << sent;

  // Every node still has a healthy stack (routes to *some* peers).
  std::size_t with_routes = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (world.node(i).kernel_table().size() > 0) ++with_routes;
  }
  EXPECT_GT(with_routes, kNodes / 2);
}

TEST(Soak, ReconfigurationChurnUnderTraffic) {
  // Co-deployed OLSR+DYMO with variants being applied/removed continuously
  // while traffic flows: the integrity machinery must keep every mutation
  // consistent.
  testbed::SimWorld world(6, /*seed=*/9);
  world.linear();
  for (std::size_t i = 0; i < 6; ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    auto i = static_cast<std::size_t>(rng.uniform_int(0, 5));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        proto::apply_fisheye(world.kit(i));
        break;
      case 1:
        proto::remove_fisheye(world.kit(i));
        break;
      case 2:
        proto::apply_power_aware(world.kit(i));
        break;
      case 3:
        proto::remove_power_aware(world.kit(i));
        break;
      case 4:
        proto::apply_multipath_dymo(world.kit(i));
        break;
      case 5:
        proto::remove_multipath_dymo(world.kit(i));
        break;
    }
    world.node(0).forwarding().send(world.addr(5), 128);
    world.run_for(sec(2));
  }
  world.run_for(sec(5));

  // Traffic kept flowing throughout the churn.
  EXPECT_GT(world.node(5).deliveries().size(), 20u);
  // And the stacks are still reconfigurable afterwards.
  for (std::size_t i = 0; i < 6; ++i) {
    proto::remove_fisheye(world.kit(i));
    proto::remove_power_aware(world.kit(i));
    proto::remove_multipath_dymo(world.kit(i));
    EXPECT_TRUE(world.kit(i).is_deployed("olsr"));
    EXPECT_TRUE(world.kit(i).is_deployed("dymo"));
  }
}

TEST(Soak, PolicyFleetRemainsStableLongTerm) {
  // Every node runs the default adaptive policy for 5 simulated minutes on
  // an oscillating topology; protocol switching must settle, not thrash.
  constexpr std::size_t kNodes = 8;
  testbed::SimWorld world(kNodes, /*seed=*/3);
  auto addrs = world.addrs();
  world.deploy_all("olsr");

  std::vector<std::unique_ptr<policy::Engine>> engines;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto e = std::make_unique<policy::Engine>(world.kit(i));
    for (auto& r : policy::default_adaptive_rules(6)) e->add_rule(std::move(r));
    e->start(sec(2));
    engines.push_back(std::move(e));
  }

  for (int phase = 0; phase < 5; ++phase) {
    world.medium().clear_links();
    if (phase % 2 == 0) {
      net::topo::linear(world.medium(), addrs);  // sparse
    } else {
      net::topo::full_mesh(world.medium(), addrs);  // dense
    }
    world.run_for(sec(60));
  }

  // Cooldowns bound the number of switches: far fewer firings than
  // evaluations (no thrashing).
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::uint64_t total_firings = 0;
    for (const auto& [_, n] : engines[i]->firings()) total_firings += n;
    EXPECT_LE(total_firings, 10u) << "node " << i << " thrashing";
    // Exactly one routing protocol family deployed at the end.
    bool olsr = world.kit(i).is_deployed("olsr");
    bool dymo = world.kit(i).is_deployed("dymo");
    EXPECT_TRUE(olsr || dymo);
  }
}

}  // namespace
}  // namespace mk
