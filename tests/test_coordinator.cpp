// Coordinated distributed reconfiguration: command flooding, epoch duplicate
// suppression, unknown-action tolerance, and a real network-wide protocol
// switch initiated from one node.
#include <gtest/gtest.h>

#include <atomic>

#include "policy/coordinator.hpp"
#include "testbed/world.hpp"

namespace mk::policy {
namespace {

TEST(Coordinator, DeployIsIdempotent) {
  testbed::SimWorld world(1);
  auto* a = deploy_coordinator(world.kit(0));
  auto* b = deploy_coordinator(world.kit(0));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(world.kit(0).is_deployed("reconfig"));
}

TEST(Coordinator, InitiateRunsLocallyAndFloodsChain) {
  testbed::SimWorld world(5);
  world.linear();
  std::atomic<int> ran{0};
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 5; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping", [&ran](core::Manetkit&) { ++ran; });
    coords.push_back(c);
  }

  initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_EQ(ran.load(), 5) << "every node must execute exactly once";
  for (auto* c : coords) {
    EXPECT_EQ(commands_executed(*c), 1u);
  }
}

TEST(Coordinator, DuplicateFloodsExecuteOnce) {
  // Diamond topology: node 3 hears the command via two paths.
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[2], a[3], true);

  std::vector<int> ran(4, 0);
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 4; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping",
                    [&ran, i](core::Manetkit&) { ++ran[i]; });
    coords.push_back(c);
  }
  initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 1}));
}

TEST(Coordinator, SuccessiveEpochsAllExecute) {
  testbed::SimWorld world(2);
  world.full_mesh();
  std::atomic<int> ran{0};
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 2; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping", [&ran](core::Manetkit&) { ++ran; });
    coords.push_back(c);
  }
  auto e1 = initiate(*coords[0], "ping");
  world.run_for(sec(1));
  auto e2 = initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_NE(e1, e2);
  EXPECT_EQ(ran.load(), 4);
}

TEST(Coordinator, UnknownActionIsToleratedByReceivers) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto* c0 = deploy_coordinator(world.kit(0));
  auto* c1 = deploy_coordinator(world.kit(1));
  register_action(*c0, "only-here", [](core::Manetkit&) {});
  // node 1 never registered the action: must log-and-ignore, not crash.
  initiate(*c0, "only-here");
  world.run_for(sec(1));
  EXPECT_EQ(commands_executed(*c1), 0u);

  EXPECT_THROW(initiate(*c1, "only-here"), std::logic_error);
}

TEST(Coordinator, NetworkWideProtocolSwitch) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 5; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "go-reactive", [](core::Manetkit& kit) {
      if (kit.is_deployed("olsr")) {
        kit.switch_protocol("olsr", "dymo", /*carry_state=*/false);
      }
      if (kit.is_deployed("mpr")) kit.undeploy("mpr");
    });
    coords.push_back(c);
  }

  // One node decides; the whole network follows.
  initiate(*coords[2], "go-reactive");
  world.run_for(sec(2));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(world.kit(i).is_deployed("dymo")) << "node " << i;
    EXPECT_FALSE(world.kit(i).is_deployed("olsr")) << "node " << i;
  }

  // The switched network still routes (reactively, once old routes lapse).
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(4).deliveries().size(), 1u);
}

}  // namespace
}  // namespace mk::policy
