// Coordinated distributed reconfiguration: command flooding, epoch duplicate
// suppression — including RFC 1982 serial comparison across the uint16
// wraparound (ISSUE 5) — unknown-action tolerance, and a real network-wide
// protocol switch initiated from one node.
#include <gtest/gtest.h>

#include <atomic>

#include "policy/coordinator.hpp"
#include "testbed/world.hpp"

namespace mk::policy {
namespace {

TEST(Coordinator, DeployIsIdempotent) {
  testbed::SimWorld world(1);
  auto* a = deploy_coordinator(world.kit(0));
  auto* b = deploy_coordinator(world.kit(0));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(world.kit(0).is_deployed("reconfig"));
}

TEST(Coordinator, InitiateRunsLocallyAndFloodsChain) {
  testbed::SimWorld world(5);
  world.linear();
  std::atomic<int> ran{0};
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 5; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping", [&ran](core::Manetkit&) { ++ran; });
    coords.push_back(c);
  }

  initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_EQ(ran.load(), 5) << "every node must execute exactly once";
  for (auto* c : coords) {
    EXPECT_EQ(commands_executed(*c), 1u);
  }
}

TEST(Coordinator, DuplicateFloodsExecuteOnce) {
  // Diamond topology: node 3 hears the command via two paths.
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[2], a[3], true);

  std::vector<int> ran(4, 0);
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 4; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping",
                    [&ran, i](core::Manetkit&) { ++ran[i]; });
    coords.push_back(c);
  }
  initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 1}));
}

TEST(Coordinator, SuccessiveEpochsAllExecute) {
  testbed::SimWorld world(2);
  world.full_mesh();
  std::atomic<int> ran{0};
  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 2; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "ping", [&ran](core::Manetkit&) { ++ran; });
    coords.push_back(c);
  }
  auto e1 = initiate(*coords[0], "ping");
  world.run_for(sec(1));
  auto e2 = initiate(*coords[0], "ping");
  world.run_for(sec(1));
  EXPECT_NE(e1, e2);
  EXPECT_EQ(ran.load(), 4);
}

TEST(Coordinator, UnknownActionIsToleratedByReceivers) {
  testbed::SimWorld world(2);
  world.full_mesh();
  auto* c0 = deploy_coordinator(world.kit(0));
  auto* c1 = deploy_coordinator(world.kit(1));
  register_action(*c0, "only-here", [](core::Manetkit&) {});
  // node 1 never registered the action: must log-and-ignore, not crash.
  initiate(*c0, "only-here");
  world.run_for(sec(1));
  EXPECT_EQ(commands_executed(*c1), 0u);

  EXPECT_THROW(initiate(*c1, "only-here"), std::logic_error);
}

TEST(Coordinator, NetworkWideProtocolSwitch) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  std::vector<core::ManetProtocolCf*> coords;
  for (std::size_t i = 0; i < 5; ++i) {
    auto* c = deploy_coordinator(world.kit(i));
    register_action(*c, "go-reactive", [](core::Manetkit& kit) {
      if (kit.is_deployed("olsr")) {
        kit.switch_protocol("olsr", "dymo", /*carry_state=*/false);
      }
      if (kit.is_deployed("mpr")) kit.undeploy("mpr");
    });
    coords.push_back(c);
  }

  // One node decides; the whole network follows.
  initiate(*coords[2], "go-reactive");
  world.run_for(sec(2));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(world.kit(i).is_deployed("dymo")) << "node " << i;
    EXPECT_FALSE(world.kit(i).is_deployed("olsr")) << "node " << i;
  }

  // The switched network still routes (reactively, once old routes lapse).
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(4).deliveries().size(), 1u);
}

// ------------------------------------------------- epoch serial arithmetic

TEST(Coordinator, EpochNewerComparesSerially) {
  // Plain ordering within half the number space...
  EXPECT_TRUE(epoch_newer(2, 1));
  EXPECT_FALSE(epoch_newer(1, 2));
  EXPECT_FALSE(epoch_newer(7, 7));
  EXPECT_TRUE(epoch_newer(0x7fff, 0));
  // ...the exact half-distance is incomparable: neither side is newer (the
  // RFC 1982 undefined case — we deliberately fail closed and suppress)...
  EXPECT_FALSE(epoch_newer(0x8000, 0));
  EXPECT_FALSE(epoch_newer(0, 0x8000));
  // ...and the wraparound reads as forward progress, not ancient history.
  EXPECT_TRUE(epoch_newer(0, 0xffff));
  EXPECT_TRUE(epoch_newer(5, 0xfffe));
  EXPECT_FALSE(epoch_newer(0xffff, 0));
  EXPECT_FALSE(epoch_newer(0xfffe, 5));
}

// --------------------------------------------- bounded per-origin epoch map

TEST(Coordinator, OriginEpochMapFiltersAndRefreshes) {
  OriginEpochMap m(/*max_origins=*/4);
  EXPECT_FALSE(m.seen(10, 1));  // fresh origin
  EXPECT_TRUE(m.seen(10, 1));   // duplicate epoch
  EXPECT_TRUE(m.seen(10, 0));   // stale epoch
  EXPECT_FALSE(m.seen(10, 2));  // serially newer
  EXPECT_EQ(m.size(), 1u);
}

TEST(Coordinator, OriginEpochMapEvictsLeastRecentlySeen) {
  OriginEpochMap m(/*max_origins=*/3);
  EXPECT_FALSE(m.seen(1, 5));
  EXPECT_FALSE(m.seen(2, 5));
  EXPECT_FALSE(m.seen(3, 5));
  // Refresh 1's last-seen stamp with a duplicate sighting: 2 is now the
  // least recently heard from.
  EXPECT_TRUE(m.seen(1, 5));
  EXPECT_FALSE(m.seen(4, 5));  // over capacity: evicts origin 2
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.tracks(1));
  EXPECT_FALSE(m.tracks(2));
  EXPECT_TRUE(m.tracks(3));
  EXPECT_TRUE(m.tracks(4));
  // The evicted origin re-admits its old epoch once (bounded memory), but
  // is filtered again from then on.
  EXPECT_FALSE(m.seen(2, 5));
  EXPECT_TRUE(m.seen(2, 5));
}

TEST(Coordinator, OriginEpochMapBoundedUnderThousandOriginChurn) {
  OriginEpochMap m;  // default cap: 1024 origins
  // Wave 1: a thousand distinct origins, two sightings each.
  for (net::Addr origin = 1; origin <= 1000; ++origin) {
    EXPECT_FALSE(m.seen(origin, 1));
    EXPECT_TRUE(m.seen(origin, 1));
  }
  EXPECT_EQ(m.size(), 1000u);
  // Wave 2: a thousand *new* origins churn through. The map must stay at
  // its cap, shedding the longest-silent wave-1 origins.
  for (net::Addr origin = 2001; origin <= 3000; ++origin) {
    EXPECT_FALSE(m.seen(origin, 1));
  }
  EXPECT_EQ(m.size(), OriginEpochMap::kDefaultMaxOrigins);
  // Every wave-2 origin survived (they are the most recently seen)...
  for (net::Addr origin = 2001; origin <= 3000; ++origin) {
    EXPECT_TRUE(m.seen(origin, 1)) << "origin " << origin;
  }
  // ...and stale epochs from surviving wave-1 origins are still filtered.
  std::size_t survivors = 0;
  for (net::Addr origin = 1; origin <= 1000; ++origin) {
    if (m.tracks(origin) && m.seen(origin, 0)) ++survivors;
  }
  EXPECT_EQ(survivors, OriginEpochMap::kDefaultMaxOrigins - 1000);
  EXPECT_EQ(m.size(), OriginEpochMap::kDefaultMaxOrigins);
}

/// Builds a RECONFIG command as a peer would flood it (message type 40,
/// action-name TLV 11, epoch in the message seqnum). has_hops is off so the
/// receiver executes without relaying.
ev::Event make_command(net::Addr origin, std::uint16_t epoch,
                       const std::string& action) {
  pbb::Message m;
  m.type = 40;
  m.originator = origin;
  m.seqnum = epoch;
  pbb::Tlv name_tlv;
  name_tlv.type = 11;
  name_tlv.value.assign(action.begin(), action.end());
  m.tlvs.push_back(std::move(name_tlv));
  ev::Event e(ev::etype("RECONFIG_IN"));
  e.set_msg(std::move(m));
  return e;
}

/// Harness: a local event source providing RECONFIG_IN, so tests can feed
/// the coordinator crafted epochs without a live network.
core::ManetProtocolCf* deploy_command_source(core::Manetkit& kit) {
  kit.register_protocol("cmdsrc", 5, [](core::Manetkit& k) {
    auto cf = std::make_unique<core::ManetProtocolCf>(
        k.kernel(), "cmdsrc", k.scheduler(), k.self(), &k.system().sys_state());
    cf->declare_events({}, {"RECONFIG_IN"});
    return cf;
  });
  return kit.deploy("cmdsrc");
}

TEST(Coordinator, EpochWrapAroundKeepsSuppressingStaleFloods) {
  testbed::SimWorld world(1);
  auto* coord = deploy_coordinator(world.kit(0));
  register_action(*coord, "ping", [](core::Manetkit&) {});
  auto* src = deploy_command_source(world.kit(0));
  const net::Addr peer = net::addr_for_index(1);

  // Approach the wrap, cross it, and then replay the pre-wrap epochs. Before
  // the RFC 1982 fix, every post-wrap epoch looked "new" only because the
  // duplicate FIFO still held the exact pair — and a rolled-out 65535 would
  // re-execute.
  src->emit(make_command(peer, 65534, "ping"));
  src->emit(make_command(peer, 65535, "ping"));
  EXPECT_EQ(commands_executed(*coord), 2u);

  src->emit(make_command(peer, 0, "ping"));  // serially newer: wraps
  EXPECT_EQ(commands_executed(*coord), 3u);

  src->emit(make_command(peer, 65535, "ping"));  // stale replay
  src->emit(make_command(peer, 65534, "ping"));  // staler replay
  EXPECT_EQ(commands_executed(*coord), 3u);

  src->emit(make_command(peer, 1, "ping"));  // progress resumes
  EXPECT_EQ(commands_executed(*coord), 4u);
  src->emit(make_command(peer, 0, "ping"));  // replay of the wrap epoch
  EXPECT_EQ(commands_executed(*coord), 4u);
}

TEST(Coordinator, StaleEpochStaysRejectedAfterManyCampaigns) {
  testbed::SimWorld world(1);
  auto* coord = deploy_coordinator(world.kit(0));
  register_action(*coord, "ping", [](core::Manetkit&) {});
  auto* src = deploy_command_source(world.kit(0));
  const net::Addr peer = net::addr_for_index(1);

  // 300 campaigns overflow the old 256-entry duplicate FIFO; epoch 5 would
  // then have re-executed. Per-origin latest-epoch tracking has no window to
  // roll out of.
  for (std::uint16_t e = 1; e <= 300; ++e) {
    src->emit(make_command(peer, e, "ping"));
  }
  EXPECT_EQ(commands_executed(*coord), 300u);
  src->emit(make_command(peer, 5, "ping"));
  EXPECT_EQ(commands_executed(*coord), 300u);

  // Epochs are tracked per origin: another peer's epoch 5 is fresh.
  src->emit(make_command(net::addr_for_index(2), 5, "ping"));
  EXPECT_EQ(commands_executed(*coord), 301u);
}

}  // namespace
}  // namespace mk::policy
