// Link-quality context sensing and the gossip-flooding DYMO variant.
#include <gtest/gtest.h>

#include "core/attrs.hpp"
#include "protocols/dymo/gossip.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

TEST(LinkQuality, HealthyLinkConvergesToOne) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("olsr");  // steady HELLO traffic
  world.kit(0).system().ensure_link_quality(sec(2));
  world.run_for(sec(20));
  EXPECT_GT(world.kit(0).system().link_quality(world.addr(1)), 0.9);
}

TEST(LinkQuality, DecaysAfterSilence) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("olsr");
  world.kit(0).system().ensure_link_quality(sec(2));
  world.run_for(sec(20));
  ASSERT_GT(world.kit(0).system().link_quality(world.addr(1)), 0.9);

  // The neighbour's radio dies, but the (stale) adjacency remains, so the
  // sensor keeps scoring the silent link down.
  world.node(1).device().set_up(false);
  world.run_for(sec(12));
  EXPECT_LT(world.kit(0).system().link_quality(world.addr(1)), 0.35);
}

TEST(LinkQuality, EventsReachTheConcentrator) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("olsr");
  world.kit(0).system().ensure_link_quality(sec(1));

  std::map<net::Addr, double> latest;
  world.kit(0).manager().subscribe(ev::types::LINK_QUALITY,
                                   [&](const ev::Event& e) {
                                     latest[static_cast<net::Addr>(e.get_int(
                                         core::attrs::kNeighbor))] =
                                         e.get_double(core::attrs::kQuality);
                                   });
  world.run_for(sec(10));
  ASSERT_TRUE(latest.count(world.addr(1)) > 0);
  EXPECT_GT(latest[world.addr(1)], 0.5);
}

TEST(Gossip, ApplyAndRemoveAreCleanAndIdempotent) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("dymo");
  auto& kit = world.kit(0);
  EXPECT_FALSE(proto::is_dymo_gossip_flooding(kit));
  proto::apply_dymo_gossip_flooding(kit);
  proto::apply_dymo_gossip_flooding(kit);  // idempotent
  EXPECT_TRUE(proto::is_dymo_gossip_flooding(kit));
  proto::remove_dymo_gossip_flooding(kit);
  EXPECT_FALSE(proto::is_dymo_gossip_flooding(kit));
}

TEST(Gossip, SureHopsKeepProbabilityOneNetsWorking) {
  // p = 1.0 degenerates to blind flooding: everything must still work.
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("dymo");
  for (std::size_t i = 0; i < 5; ++i) {
    proto::apply_dymo_gossip_flooding(world.kit(i),
                                      proto::GossipParams{1.0, 1, 7});
  }
  world.run_for(sec(5));
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);
}

TEST(Gossip, CutsRelayTrafficInDenseNetworksButStillDelivers) {
  auto run = [](bool gossip) {
    testbed::SimWorld world(16, /*seed=*/31);
    Rng rng(31);
    std::vector<net::SimNode*> nodes;
    for (std::size_t i = 0; i < 16; ++i) nodes.push_back(&world.node(i));
    net::topo::random_geometric(world.medium(), nodes, 600, 600, 280, rng);
    world.deploy_all("dymo");
    if (gossip) {
      for (std::size_t i = 0; i < 16; ++i) {
        proto::apply_dymo_gossip_flooding(world.kit(i),
                                          proto::GossipParams{0.6, 1, 5});
      }
    }
    world.run_for(sec(10));
    world.medium().reset_stats();
    std::size_t delivered = 0;
    for (int k = 0; k < 6; ++k) {
      auto a = static_cast<std::size_t>(rng.uniform_int(0, 15));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, 15));
      if (a == b) continue;
      std::size_t before = world.node(b).deliveries().size();
      world.node(a).forwarding().send(world.addr(b), 64);
      world.run_for(sec(4));
      delivered += world.node(b).deliveries().size() - before;
    }
    return std::make_pair(world.medium().stats().control_bytes, delivered);
  };

  auto [blind_bytes, blind_delivered] = run(false);
  auto [gossip_bytes, gossip_delivered] = run(true);

  EXPECT_LT(gossip_bytes, blind_bytes)
      << "p=0.6 gossip must shed rebroadcast traffic";
  // Dense network: gossip keeps discoveries succeeding (allow one miss).
  EXPECT_GE(gossip_delivered + 1, blind_delivered);
}

}  // namespace
}  // namespace mk
