// Greedy geographic routing: position beaconing over HELLO piggyback, the
// greedy next-hop property, on-demand route installation, mobility tracking,
// and clean local-minimum behaviour.
#include <gtest/gtest.h>

#include "protocols/gpsr/gpsr_cf.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

void place_line(testbed::SimWorld& world, double spacing, double range) {
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < world.size(); ++i) {
    world.node(i).set_position({spacing * static_cast<double>(i), 0.0});
    nodes.push_back(&world.node(i));
  }
  net::topo::apply_range_links(world.medium(), nodes, range);
}

TEST(GpsrUnit, GreedyPicksStrictlyCloserNeighbor) {
  GpsrState st;
  st.note_position(10, {100, 0}, TimePoint{0});
  st.note_position(11, {50, 0}, TimePoint{0});
  st.note_position(12, {0, 80}, TimePoint{0});

  net::Addr hop = greedy_next_hop(st, {0, 0}, {200, 0}, {10, 11, 12});
  EXPECT_EQ(hop, 10u);  // closest to dest among the candidates

  // Local minimum: nobody is closer than self.
  hop = greedy_next_hop(st, {300, 0}, {400, 0}, {11, 12});
  EXPECT_EQ(hop, net::kNoAddr);
}

TEST(GpsrUnit, UnknownPositionsAreSkipped) {
  GpsrState st;
  st.note_position(10, {100, 0}, TimePoint{0});
  // 11 has no known position: ignored even though it might be closer.
  net::Addr hop = greedy_next_hop(st, {0, 0}, {200, 0}, {10, 11});
  EXPECT_EQ(hop, 10u);
}

TEST(GpsrUnit, PositionsExpire) {
  GpsrState st;
  st.note_position(10, {1, 1}, TimePoint{0});
  st.expire(TimePoint{sec(10).count()}, sec(6));
  EXPECT_FALSE(st.position_of(10).has_value());
  EXPECT_EQ(st.known_positions(), 0u);
}

TEST(GpsrIntegration, PositionsPropagateViaHelloBeacons) {
  testbed::SimWorld world(3);
  place_line(world, 100, 150);
  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(6));

  auto* st1 = gpsr_state(*world.kit(1).protocol("gpsr"));
  ASSERT_NE(st1, nullptr);
  auto p0 = st1->position_of(world.addr(0));
  ASSERT_TRUE(p0.has_value());
  EXPECT_NEAR(p0->x, 0.0, 0.1);
  auto p2 = st1->position_of(world.addr(2));
  ASSERT_TRUE(p2.has_value());
  EXPECT_NEAR(p2->x, 200.0, 0.1);
}

TEST(GpsrIntegration, GreedyDeliversAlongALine) {
  testbed::SimWorld world(6);
  place_line(world, 100, 150);
  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(6));

  world.node(0).forwarding().send(world.addr(5), 256);
  world.run_for(sec(4));
  ASSERT_EQ(world.node(5).deliveries().size(), 1u);
  // Greedy on a line follows the line: node 0's next hop is node 1.
  auto route = world.node(0).kernel_table().lookup(world.addr(5));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, world.addr(1));
}

TEST(GpsrIntegration, GreedyDeliversOnGrid) {
  testbed::SimWorld world(9);
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < 9; ++i) {
    world.node(i).set_position({100.0 * static_cast<double>(i % 3),
                                100.0 * static_cast<double>(i / 3)});
    nodes.push_back(&world.node(i));
  }
  net::topo::apply_range_links(world.medium(), nodes, 150);
  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(6));

  world.node(0).forwarding().send(world.addr(8), 128);  // corner to corner
  world.run_for(sec(4));
  EXPECT_EQ(world.node(8).deliveries().size(), 1u);
}

TEST(GpsrIntegration, RoutesFollowMobility) {
  testbed::SimWorld world(4);
  place_line(world, 100, 150);
  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(6));

  // Keep the flow alive so routes stay active.
  world.node(0).forwarding().send(world.addr(3), 64);
  world.run_for(sec(2));
  ASSERT_EQ(world.node(3).deliveries().size(), 1u);

  // Node 1 wanders away; node 2 slides into its place (equidistant from the
  // endpoints, within range of both); links follow range.
  world.node(1).set_position({100, 500});
  world.node(2).set_position({150, 0});
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < 4; ++i) nodes.push_back(&world.node(i));
  net::topo::apply_range_links(world.medium(), nodes, 150);
  world.run_for(sec(8));  // beacons + maintenance re-greedy

  world.node(0).forwarding().send(world.addr(3), 64);
  world.run_for(sec(4));
  EXPECT_EQ(world.node(3).deliveries().size(), 2u);
  auto route = world.node(0).kernel_table().lookup(world.addr(3));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, world.addr(2)) << "greedy must re-route via the "
                                               "node that moved into range";
}

TEST(GpsrIntegration, LocalMinimumFailsCleanly) {
  // A void: 0 at origin, 1 *behind* it, destination 2 far right and out of
  // range. Greedy finds no neighbour closer to 2 than 0 itself.
  testbed::SimWorld world(3);
  world.node(0).set_position({0, 0});
  world.node(1).set_position({-100, 0});
  world.node(2).set_position({500, 0});
  std::vector<net::SimNode*> nodes{&world.node(0), &world.node(1),
                                   &world.node(2)};
  net::topo::apply_range_links(world.medium(), nodes, 150);
  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(6));

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(15));  // NetLink buffer times out
  EXPECT_TRUE(world.node(2).deliveries().empty());
  EXPECT_FALSE(world.has_route(0, world.addr(2)));
  EXPECT_EQ(world.kit(0).system().netlink()->buffered_count(), 0u);
}

TEST(GpsrIntegration, ReactiveSlotRuleApplies) {
  testbed::SimWorld world(2);
  world.register_gpsr_oracle();
  world.kit(0).deploy("gpsr");
  EXPECT_THROW(world.kit(0).deploy("dymo"), std::logic_error);
  EXPECT_NO_THROW(world.kit(0).deploy("olsr"));  // geographic + proactive ok
}

}  // namespace
}  // namespace mk::proto
