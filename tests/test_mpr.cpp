// MPR CF: state tables, the greedy MPR-selection algorithm (with a
// randomized coverage-invariant property sweep), the energy-aware variant,
// hysteresis, willingness from POWER_STATUS, and flood relay behaviour.
#include <gtest/gtest.h>

#include "protocols/mpr/mpr_calculator.hpp"
#include "protocols/mpr/mpr_cf.hpp"
#include "protocols/mpr/mpr_state.hpp"
#include "protocols/olsr/olsr_state.hpp"
#include "testbed/world.hpp"
#include "util/rng.hpp"

namespace mk::proto {
namespace {

constexpr net::Addr kSelf = 1;

std::unique_ptr<MprState> make_state(
    const std::vector<std::pair<net::Addr, std::set<net::Addr>>>& nbrs) {
  auto st = std::make_unique<MprState>();
  for (const auto& [addr, two_hop] : nbrs) {
    st->note_heard(addr, TimePoint{0});
    st->set_symmetric(addr, true);
    st->set_two_hop(addr, two_hop);
  }
  return st;
}

TEST(MprState, SelectorLifecycle) {
  MprState st;
  st.note_selector(10, TimePoint{0});
  EXPECT_TRUE(st.is_mpr_selector(10));
  st.expire_selectors(TimePoint{sec(10).count()}, sec(6));
  EXPECT_FALSE(st.is_mpr_selector(10));

  st.note_selector(11, TimePoint{0});
  st.drop_selector(11);
  EXPECT_FALSE(st.is_mpr_selector(11));
}

TEST(MprState, DuplicateSet) {
  MprState st;
  EXPECT_FALSE(st.check_duplicate(10, 1, TimePoint{0}));
  EXPECT_TRUE(st.check_duplicate(10, 1, TimePoint{0}));
  EXPECT_FALSE(st.check_duplicate(10, 2, TimePoint{0}));
  EXPECT_FALSE(st.check_duplicate(11, 1, TimePoint{0}));
  st.expire_duplicates(TimePoint{sec(60).count()}, sec(30));
  EXPECT_FALSE(st.check_duplicate(10, 1, TimePoint{sec(60).count()}));
}

TEST(MprCalculator, EmptyNeighborhoodYieldsEmptySet) {
  MprState st;
  MprCalculator calc;
  EXPECT_TRUE(calc.compute(st, kSelf).empty());
}

TEST(MprCalculator, SoleCoverNeighborIsAlwaysChosen) {
  auto stp = make_state({{10, {100}}, {11, {}}});
  MprCalculator calc;
  EXPECT_EQ(calc.compute(*stp, kSelf), (std::set<net::Addr>{10}));
}

TEST(MprCalculator, GreedyPrefersBroaderCoverage) {
  // 10 covers {100,101,102}; 11 covers {100}; 12 covers {101}.
  auto stp = make_state({{10, {100, 101, 102}}, {11, {100}}, {12, {101}}});
  MprCalculator calc;
  EXPECT_EQ(calc.compute(*stp, kSelf), (std::set<net::Addr>{10}));
}

TEST(MprCalculator, WillNeverExcluded) {
  auto stp = make_state({{10, {100}}, {11, {100}}});
  stp->set_willingness_of(10, wire::kWillNever);
  MprCalculator calc;
  EXPECT_EQ(calc.compute(*stp, kSelf), (std::set<net::Addr>{11}));
}

TEST(MprCalculator, WillAlwaysIncluded) {
  auto stp = make_state({{10, {}}, {11, {100}}});
  stp->set_willingness_of(10, wire::kWillAlways);
  MprCalculator calc;
  auto mprs = calc.compute(*stp, kSelf);
  EXPECT_TRUE(mprs.count(10) > 0);
  EXPECT_TRUE(mprs.count(11) > 0);
}

TEST(EnergyMprCalculatorT, PrefersHighWillingnessRelay) {
  // Both cover the same 2-hop node; energy calculator must pick the one
  // with higher (battery-derived) willingness.
  auto stp = make_state({{10, {100}}, {11, {100}}});
  stp->set_willingness_of(10, wire::kWillLow);
  stp->set_willingness_of(11, wire::kWillHigh);
  EnergyMprCalculator calc;
  EXPECT_EQ(calc.compute(*stp, kSelf), (std::set<net::Addr>{11}));
}

// Property: the MPR set must cover every strict 2-hop neighbour reachable
// through a willing neighbour, and never contain non-neighbours.
class MprCoverageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MprCoverageProperty, GreedySetCoversAllTwoHop) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    auto n_nbrs = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<std::pair<net::Addr, std::set<net::Addr>>> nbrs;
    for (std::size_t i = 0; i < n_nbrs; ++i) {
      std::set<net::Addr> two_hop;
      auto n2 = rng.uniform_int(0, 6);
      for (int j = 0; j < n2; ++j) {
        two_hop.insert(static_cast<net::Addr>(100 + rng.uniform_int(0, 20)));
      }
      nbrs.emplace_back(static_cast<net::Addr>(10 + i), std::move(two_hop));
    }
    auto stp = make_state(nbrs);
    MprCalculator calc;
    auto mprs = calc.compute(*stp, kSelf);

    // Every MPR is a symmetric neighbour.
    for (net::Addr m : mprs) {
      EXPECT_TRUE(stp->is_sym_neighbor(m));
    }
    // Coverage invariant.
    std::set<net::Addr> covered;
    for (net::Addr m : mprs) {
      for (net::Addr t : stp->two_hop_via(m)) covered.insert(t);
    }
    for (net::Addr t : stp->strict_two_hop(kSelf)) {
      EXPECT_TRUE(covered.count(t) > 0)
          << "2-hop node " << t << " uncovered (seed " << GetParam() << ")";
    }
  }
}

TEST_P(MprCoverageProperty, EnergyVariantAlsoCovers) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 10; ++iter) {
    auto n_nbrs = static_cast<std::size_t>(rng.uniform_int(1, 10));
    std::vector<std::pair<net::Addr, std::set<net::Addr>>> nbrs;
    for (std::size_t i = 0; i < n_nbrs; ++i) {
      std::set<net::Addr> two_hop;
      auto n2 = rng.uniform_int(0, 5);
      for (int j = 0; j < n2; ++j) {
        two_hop.insert(static_cast<net::Addr>(100 + rng.uniform_int(0, 15)));
      }
      nbrs.emplace_back(static_cast<net::Addr>(10 + i), std::move(two_hop));
    }
    auto stp = make_state(nbrs);
    for (const auto& [a, _] : nbrs) {
      stp->set_willingness_of(
          a, static_cast<std::uint8_t>(rng.uniform_int(1, 7)));
    }
    EnergyMprCalculator calc;
    auto mprs = calc.compute(*stp, kSelf);
    std::set<net::Addr> covered;
    for (net::Addr m : mprs) {
      for (net::Addr t : stp->two_hop_via(m)) covered.insert(t);
    }
    for (net::Addr t : stp->strict_two_hop(kSelf)) {
      EXPECT_TRUE(covered.count(t) > 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MprCoverageProperty,
                         ::testing::Values(1, 7, 42, 99, 1234));

TEST(Hysteresis, LinkMustProveItself) {
  Hysteresis h(0.5, 0.8, 0.3);
  EXPECT_TRUE(h.pending(10));
  h.on_hello(10);  // q = 0.5
  EXPECT_TRUE(h.pending(10));
  h.on_hello(10);  // q = 0.75
  EXPECT_TRUE(h.pending(10));
  h.on_hello(10);  // q = 0.875 > 0.8
  EXPECT_FALSE(h.pending(10));

  // Misses decay quality until the link is pending again.
  for (int i = 0; i < 4; ++i) h.on_interval(10);
  EXPECT_TRUE(h.pending(10));
}

TEST(MprCf, WillingnessFollowsBattery) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("mpr");
  world.node(0).set_battery(0.05);  // nearly dead
  world.run_for(sec(6));
  auto* st = mpr_state(*world.kit(0).protocol("mpr"));
  EXPECT_EQ(st->own_willingness(), wire::kWillNever);

  world.node(0).set_battery(0.95);
  world.run_for(sec(6));
  EXPECT_EQ(st->own_willingness(), wire::kWillHigh);
}

TEST(MprCf, ChainSelectsMiddleAsMprAndRelaysTc) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");  // olsr drives TC generation over mpr
  world.run_for(sec(30));

  // Node 2 must have heard node 0's TC (relayed by node 1 as its MPR).
  auto* olsr2 = world.kit(2).protocol("olsr");
  auto* s2 = olsr2->state_component()->interface_as<IOlsrState>("IOlsrState");
  ASSERT_NE(s2, nullptr);
  bool has_edge_from_0 = false;
  for (auto [origin, dest] : s2->topology_edges()) {
    if (origin == world.addr(0) || dest == world.addr(0)) has_edge_from_0 = true;
  }
  EXPECT_TRUE(has_edge_from_0);
}

TEST(MprCf, AddFloodTypeWidensTuple) {
  testbed::SimWorld world(1);
  auto& kit = world.kit(0);
  auto* mpr = kit.deploy("mpr");
  auto before = mpr->tuple().required.size();
  mpr_add_flood_type(kit, *mpr, "XFLOOD", 77);
  EXPECT_GT(mpr->tuple().required.size(), before);
  EXPECT_TRUE(mpr->tuple().provides(ev::etype("XFLOOD_OUT")));
  // Idempotent.
  mpr_add_flood_type(kit, *mpr, "XFLOOD", 77);
}

TEST(MprCf, DuplicateFloodsNotRelayedTwice) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(40));
  // The middle node relays each unique TC at most once: total TC traffic is
  // bounded (roughly one TC per origin per interval, each relayed once).
  auto tc_events = world.kit(1).protocol("mpr")->events_delivered();
  EXPECT_GT(tc_events, 0u);
}

}  // namespace
}  // namespace mk::proto
