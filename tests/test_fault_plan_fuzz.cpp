// Property-based fuzzing of the FaultPlan text parser (ISSUE 5): seeded
// random plans must round-trip exactly through to_text(), and no garbage
// line, truncation, token mutation or out-of-range number may throw, crash
// or invoke UB — try_parse() always comes back with a value or a
// line-numbered error. Plans are operator-authored chaos input, so the
// parser gets the same hardening bar as the wire-facing PacketBB parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace mk {
namespace {

using fault::FaultPlan;
using fault::Misbehave;

net::Addr n(std::uint32_t i) { return net::addr_for_index(i); }

/// Durations in whole-unit steps so duration_text() round-trips exactly.
Duration random_duration(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return usec(rng.uniform_int(1, 999));
    case 1: return msec(rng.uniform_int(1, 999));
    default: return sec(rng.uniform_int(1, 120));
  }
}

/// Probabilities on a 1/100 grid: ostream "<<" prints them back exactly.
double random_prob(Rng& rng) { return rng.uniform_int(0, 100) / 100.0; }

std::string random_component(Rng& rng) {
  static const char* kNames[] = {"olsr", "mpr", "dymo", "neighbor",
                                 "zone.irp", "my-unit_2"};
  return kNames[rng.uniform_int(0, 5)];
}

Misbehave random_mode(Rng& rng) {
  return static_cast<Misbehave>(rng.uniform_int(0, 3));
}

FaultPlan random_plan(Rng& rng) {
  FaultPlan plan;
  const int actions = rng.uniform_int(1, 12);
  for (int i = 0; i < actions; ++i) {
    Duration at = random_duration(rng);
    switch (rng.uniform_int(0, 8)) {
      case 0:
        if (rng.bernoulli(0.5)) {
          plan.loss_burst(at, random_prob(rng), random_duration(rng));
        } else {
          plan.loss_burst(at, random_prob(rng), random_duration(rng),
                          n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))),
                          n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))));
        }
        break;
      case 1:
        // Default spacing only: to_text() does not render dup spacing.
        plan.duplicate(at, random_prob(rng), random_duration(rng));
        break;
      case 2:
        plan.reorder(at, random_duration(rng), random_duration(rng));
        break;
      case 3:
        plan.partition(at, {n(0), n(1)}, {n(2), n(3), n(4)});
        break;
      case 4:
        plan.heal(at);
        break;
      case 5:
        plan.crash(at, n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))));
        break;
      case 6:
        plan.restart(at, n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))));
        break;
      case 7:
        // Single division: the sum 1.0 + k/100.0 can land 1 ulp away from
        // what parsing the rendered "1.xx" produces.
        plan.clock_drift(at,
                         n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))),
                         (100 + rng.uniform_int(1, 99)) / 100.0,
                         random_duration(rng));
        break;
      default:
        plan.misbehave(at, n(static_cast<std::uint32_t>(rng.uniform_int(0, 9))),
                       random_component(rng), random_mode(rng),
                       rng.bernoulli(0.5) ? random_duration(rng) : Duration{0});
        break;
    }
  }
  return plan;
}

TEST(FaultPlanFuzz, RandomPlansRoundTripExactly) {
  Rng rng(0xf0a1);
  for (int iter = 0; iter < 300; ++iter) {
    FaultPlan plan = random_plan(rng);
    std::string text = plan.to_text();
    auto reparsed = FaultPlan::try_parse(text);
    ASSERT_TRUE(reparsed.has_value())
        << "iter " << iter << ": " << reparsed.error() << "\n" << text;
    EXPECT_EQ(reparsed.value().actions(), plan.actions()) << "iter " << iter;
  }
}

TEST(FaultPlanFuzz, EveryTruncationIsHandled) {
  Rng rng(0xf0a2);
  for (int iter = 0; iter < 20; ++iter) {
    std::string text = random_plan(rng).to_text();
    for (std::size_t len = 0; len < text.size(); ++len) {
      auto result = FaultPlan::try_parse(std::string_view(text.data(), len));
      if (!result.has_value()) {
        EXPECT_FALSE(result.error().empty());
      }
    }
  }
}

TEST(FaultPlanFuzz, SingleCharacterMutationsNeverThrow) {
  Rng rng(0xf0a3);
  for (int iter = 0; iter < 20; ++iter) {
    std::string text = random_plan(rng).to_text();
    for (std::size_t pos = 0; pos < text.size(); ++pos) {
      std::string mutated = text;
      mutated[pos] = static_cast<char>(rng.uniform_int(1, 126));
      auto result = FaultPlan::try_parse(mutated);  // must return, never throw
      if (result.has_value()) {
        // Whatever was accepted must re-render and re-parse stably.
        auto again = FaultPlan::try_parse(result.value().to_text());
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(again.value().actions(), result.value().actions());
      }
    }
  }
}

TEST(FaultPlanFuzz, RandomGarbageNeverThrows) {
  Rng rng(0xf0a4);
  for (int iter = 0; iter < 500; ++iter) {
    std::string garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 200)), '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    (void)FaultPlan::try_parse(garbage);
  }
}

TEST(FaultPlanFuzz, RandomTokenSoupNeverThrows) {
  Rng rng(0xf0a5);
  static const char* kTokens[] = {
      "at",    "5s",    "loss",      "0.5",   "for",      "2s",    "dup",
      "link",  "1",     "2",         "|",     "reorder",  "300us", "partition",
      "heal",  "crash", "restart",   "drift", "1.05",     "-3",    "1e300",
      "nan",   "inf",   "misbehave", "olsr",  "throw",    "stall", "corrupt",
      "none",  "9999999999999999999999",      "0xff",     "",      "#x"};
  constexpr int kTokenCount = sizeof(kTokens) / sizeof(kTokens[0]);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line;
    for (int t = rng.uniform_int(1, 9); t > 0; --t) {
      line += kTokens[rng.uniform_int(0, kTokenCount - 1)];
      line += ' ';
    }
    (void)FaultPlan::try_parse(line);
  }
}

TEST(FaultPlanFuzz, OutOfRangeNumbersAreRejectedNotWrapped) {
  const char* bad[] = {
      "at -5s loss 0.5 for 2s\n",                  // negative duration
      "at 5s loss 1.5 for 2s\n",                   // probability > 1
      "at 5s loss -0.1 for 2s\n",                  // probability < 0
      "at 5s loss 0.5 for 9999999999999s\n",       // overflows microseconds
      "at 99999999999999999999s heal\n",           // overflows from_chars
      "at 5s crash 254\n",                         // node index off the plan
      "at 5s crash 4294967295\n",                  // uint32 max node
      "at 5s drift 1 0.001 for 2s\n",              // drift below sane floor
      "at 5s drift 1 500 for 2s\n",                // drift above sane ceiling
      "at 5s drift 1 nan for 2s\n",                // non-finite factor
      "at 5s misbehave 1 olsr sulk\n",             // unknown misbehave mode
      "at 5s misbehave 254 olsr throw\n",          // node off the plan
      "at 5s misbehave 1 olsr throw for -2s\n",    // negative window
      "at 5s misbehave 1 bad!name throw\n",        // invalid component chars
  };
  for (const char* text : bad) {
    auto result = FaultPlan::try_parse(text);
    EXPECT_FALSE(result.has_value()) << "accepted: " << text;
    if (!result.has_value()) {
      EXPECT_NE(result.error().find("line 1"), std::string::npos)
          << "error must name the line: " << result.error();
    }
  }
}

TEST(FaultPlanFuzz, TruncatedActionLinesAreRejected) {
  const char* bad[] = {
      "at\n", "at 5s\n", "at 5s loss\n", "at 5s loss 0.5\n",
      "at 5s loss 0.5 for\n", "at 5s loss 0.5 link 1 for 2s\n",
      "at 5s partition 0 1\n", "at 5s partition 0 1 |\n", "at 5s crash\n",
      "at 5s drift 1 1.05\n", "at 5s misbehave\n", "at 5s misbehave 1\n",
      "at 5s misbehave 1 olsr\n", "at 5s misbehave 1 olsr throw for\n",
      "at 5s misbehave 1 olsr throw extra tokens here\n",
  };
  for (const char* text : bad) {
    auto result = FaultPlan::try_parse(text);
    EXPECT_FALSE(result.has_value()) << "accepted: " << text;
  }
}

TEST(FaultPlanFuzz, ParseWrapperThrowsWithSameMessage) {
  const char* text = "at 5s loss 1.5 for 2s\n";
  auto result = FaultPlan::try_parse(text);
  ASSERT_FALSE(result.has_value());
  try {
    (void)FaultPlan::parse(text);
    FAIL() << "parse() must throw where try_parse() errors";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(result.error(), e.what());
  }
}

TEST(FaultPlanFuzz, MisbehaveGrammarParsesAllModes) {
  FaultPlan plan = FaultPlan::parse(
      "at 5s misbehave 1 olsr throw\n"
      "at 6s misbehave 2 mpr stall for 3s\n"
      "at 7s misbehave 3 dymo corrupt for 500ms\n"
      "at 8s misbehave 1 olsr none\n");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.actions()[0].mode, Misbehave::kThrow);
  EXPECT_EQ(plan.actions()[0].component, "olsr");
  EXPECT_EQ(plan.actions()[0].duration, Duration{0});
  EXPECT_EQ(plan.actions()[1].mode, Misbehave::kStall);
  EXPECT_EQ(plan.actions()[1].from, n(2));
  EXPECT_EQ(plan.actions()[1].duration, sec(3));
  EXPECT_EQ(plan.actions()[2].mode, Misbehave::kCorrupt);
  EXPECT_EQ(plan.actions()[2].duration, msec(500));
  EXPECT_EQ(plan.actions()[3].mode, Misbehave::kNone);
}

}  // namespace
}  // namespace mk
