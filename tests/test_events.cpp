// Event type registry (interning), Event attribute map, EventTuple.
#include <gtest/gtest.h>

#include "events/event.hpp"

namespace mk::ev {
namespace {

TEST(EventRegistry, InternIsIdempotent) {
  EventTypeId a = etype("TEST_EVENT_A");
  EXPECT_EQ(etype("TEST_EVENT_A"), a);
  EXPECT_NE(etype("TEST_EVENT_B"), a);
}

TEST(EventRegistry, LookupWithoutIntern) {
  etype("TEST_EVENT_C");
  EXPECT_NE(EventTypeRegistry::instance().lookup("TEST_EVENT_C"),
            kInvalidEventType);
  EXPECT_EQ(EventTypeRegistry::instance().lookup("NEVER_INTERNED_XYZ"),
            kInvalidEventType);
}

TEST(EventRegistry, NameRoundTrip) {
  EventTypeId id = etype("TEST_EVENT_NAMED");
  EXPECT_EQ(EventTypeRegistry::instance().name(id), "TEST_EVENT_NAMED");
  EXPECT_EQ(EventTypeRegistry::instance().name(999999), "?");
}

TEST(Event, TypeFromName) {
  Event e("TEST_EVENT_D");
  EXPECT_EQ(e.type(), etype("TEST_EVENT_D"));
  EXPECT_EQ(e.type_name(), "TEST_EVENT_D");
}

TEST(Event, AttributeMapTypedAccess) {
  Event e(etype("TEST_EVENT_E"));
  e.set_int("n", 42);
  e.set_double("x", 2.5);
  e.set_string("s", "hi");
  EXPECT_EQ(e.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(e.get_double("x"), 2.5);
  EXPECT_EQ(e.get_string("s"), "hi");
  EXPECT_TRUE(e.has_attr("n"));
  EXPECT_FALSE(e.has_attr("missing"));
  EXPECT_EQ(e.get_int("missing", -1), -1);
  // double accessor coerces ints
  EXPECT_DOUBLE_EQ(e.get_double("n"), 42.0);
  // wrong-type access falls back
  EXPECT_EQ(e.get_int("s", -1), -1);
}

TEST(Event, CopyIsIndependent) {
  Event a(etype("TEST_EVENT_F"));
  a.set_int("v", 1);
  Event b = a;
  b.set_int("v", 2);
  EXPECT_EQ(a.get_int("v"), 1);
  EXPECT_EQ(b.get_int("v"), 2);
}

TEST(EventTuple, MembershipQueries) {
  EventTuple t;
  t.required = EventTuple::ids({"A1", "B1"});
  t.provided = EventTuple::ids({"C1"});
  EXPECT_TRUE(t.requires_type(etype("A1")));
  EXPECT_FALSE(t.requires_type(etype("C1")));
  EXPECT_TRUE(t.provides(etype("C1")));
  EXPECT_FALSE(t.provides(etype("A1")));
}

}  // namespace
}  // namespace mk::ev
