// Protocol variants created by dynamic reconfiguration (§5): fish-eye OLSR,
// power-aware OLSR, multipath DYMO, optimised-flooding DYMO — applied and
// removed on *running* deployments.
#include <gtest/gtest.h>

#include "protocols/dymo/multipath.hpp"
#include "protocols/dymo/opt_flood.hpp"
#include "protocols/mpr/mpr_cf.hpp"
#include "protocols/olsr/fisheye.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "protocols/olsr/power_aware.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

TEST(Fisheye, InterposesOnTcPathAndScopesTtl) {
  testbed::SimWorld world(6);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // Observe TC_OUT events reaching node 2's System CF after fish-eye.
  proto::apply_fisheye(world.kit(2), FisheyeParams{{2, 2, 2}});  // all scoped
  std::vector<int> ttls;
  world.kit(2).manager().subscribe("TC_OUT", [&](const ev::Event& e) {
    if (e.has_msg() && e.msg()->originator == world.addr(2)) {
      ttls.push_back(e.msg()->hop_limit);
    }
  });
  world.run_for(sec(30));

  ASSERT_FALSE(ttls.empty());
  // The subscriber sees both the pre- and post-fisheye hop of each TC; the
  // minimum observed TTL per emission must be the scoped value.
  EXPECT_EQ(*std::min_element(ttls.begin(), ttls.end()), 2);
}

TEST(Fisheye, RemoveRestoresFullTtl) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(20));

  proto::apply_fisheye(world.kit(1));
  EXPECT_TRUE(world.kit(1).is_deployed("olsr-fisheye"));
  proto::remove_fisheye(world.kit(1));
  EXPECT_FALSE(world.kit(1).is_deployed("olsr-fisheye"));

  // Routing still works after insert+remove.
  world.run_for(sec(20));
  EXPECT_TRUE(world.has_route(0, world.addr(2)));
}

TEST(Fisheye, NetworkStillConvergesUnderFisheye) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  for (std::size_t i = 0; i < 4; ++i) proto::apply_fisheye(world.kit(i));
  world.run_for(sec(40));  // several TC cycles under scoped TTLs
  EXPECT_TRUE(world.fully_routed()) << "fisheye must not break a 4-node net "
                                       "(255-TTL slot reaches everyone)";
}

TEST(PowerAware, ApplyReplacesComponentsAndIsReversible) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(10));

  auto& kit = world.kit(0);
  EXPECT_FALSE(proto::is_power_aware(kit));
  proto::apply_power_aware(kit);
  EXPECT_TRUE(proto::is_power_aware(kit));
  proto::apply_power_aware(kit);  // idempotent

  auto* mpr = kit.protocol("mpr");
  EXPECT_EQ(mpr->find("MprCalculator")->type_name(),
            "mpr.EnergyMprCalculator");
  EXPECT_EQ(mpr->control().find("HelloHandler")->type_name(),
            "mpr.PowerAwareHelloHandler");
  auto* olsr = kit.protocol("olsr");
  EXPECT_NE(olsr->control().find("ResidualPower"), nullptr);

  proto::remove_power_aware(kit);
  EXPECT_FALSE(proto::is_power_aware(kit));
  EXPECT_EQ(mpr->find("MprCalculator")->type_name(), "mpr.MprCalculator");
  EXPECT_EQ(olsr->control().find("ResidualPower"), nullptr);
}

TEST(PowerAware, ResidualPowerDisseminatesViaFlooding) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(20));
  for (std::size_t i = 0; i < 4; ++i) proto::apply_power_aware(world.kit(i));

  world.node(2).set_battery(0.2);
  world.run_for(sec(30));

  // Node 0 (two hops away) learned node 2's residual energy.
  auto* st0 = olsr_state(*world.kit(0).protocol("olsr"));
  EXPECT_NEAR(st0->energy_of(world.addr(2)), 0.2, 0.06);
}

TEST(PowerAware, RoutesSteerAroundDrainedRelay) {
  // Diamond topology: 0-1-3, 0-2-3; drain node 1.
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[2], a[3], true);

  world.deploy_all("olsr");
  world.run_for(sec(20));
  for (std::size_t i = 0; i < 4; ++i) proto::apply_power_aware(world.kit(i));

  world.node(1).set_battery(0.05);
  world.node(2).set_battery(1.0);
  world.run_for(sec(40));

  auto route = world.node(0).kernel_table().lookup(a[3]);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, a[2]);
}

TEST(MultipathDymo, TwoDisjointPathsFromOneDiscovery) {
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[2], a[3], true);

  world.deploy_all("dymo");
  world.run_for(sec(5));
  for (std::size_t i = 0; i < 4; ++i) {
    proto::apply_multipath_dymo(world.kit(i));
  }
  EXPECT_TRUE(proto::is_multipath_dymo(world.kit(0)));

  world.node(0).forwarding().send(a[3], 64);
  world.run_for(sec(5));

  auto* st = dynamic_cast<MultipathDymoState*>(
      world.kit(0).protocol("dymo")->state_component());
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->path_count(a[3]), 2u);
}

TEST(MultipathDymo, FailoverWithoutRediscovery) {
  testbed::SimWorld world(4);
  auto a = world.addrs();
  world.medium().set_link(a[0], a[1], true);
  world.medium().set_link(a[1], a[3], true);
  world.medium().set_link(a[0], a[2], true);
  world.medium().set_link(a[2], a[3], true);

  world.deploy_all("dymo");
  world.run_for(sec(5));
  for (std::size_t i = 0; i < 4; ++i) {
    proto::apply_multipath_dymo(world.kit(i));
  }
  world.node(0).forwarding().send(a[3], 64);
  world.run_for(sec(5));

  auto* st = dynamic_cast<MultipathDymoState*>(
      world.kit(0).protocol("dymo")->state_component());
  ASSERT_EQ(st->path_count(a[3]), 2u);
  net::Addr active = st->route_to(a[3])->active()->next_hop;

  // Count RREQ floods before/after the break: failover must not re-flood.
  world.medium().reset_stats();
  world.medium().set_link(a[0], active, false);
  world.node(0).forwarding().send(a[3], 64);  // triggers send failure + failover
  world.run_for(sec(1));
  world.node(0).forwarding().send(a[3], 64);  // travels the alternate
  world.run_for(sec(2));

  auto after = st->route_to(a[3]);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->valid);
  EXPECT_NE(after->active()->next_hop, active);
  EXPECT_GE(world.node(3).deliveries().size(), 1u);
}

TEST(MultipathDymo, RemoveRestoresSinglePathBehaviour) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));
  proto::apply_multipath_dymo(world.kit(0));
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));

  proto::remove_multipath_dymo(world.kit(0));
  EXPECT_FALSE(proto::is_multipath_dymo(world.kit(0)));
  // Route carried back through the S-component swap.
  auto* st = dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->route_to(world.addr(2)).has_value());
}

TEST(OptFlooding, SharesMprWithOlsrAndStillDiscovers) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  world.deploy_all("dymo");
  world.run_for(sec(10));

  for (std::size_t i = 0; i < 5; ++i) {
    auto& kit = world.kit(i);
    auto* mpr_before = kit.protocol("mpr");
    proto::apply_dymo_optimized_flooding(kit);
    EXPECT_EQ(kit.protocol("mpr"), mpr_before) << "must share OLSR's MPR CF";
    EXPECT_FALSE(kit.is_deployed("neighbor"));
  }
  world.run_for(sec(10));  // MPR selection settles for the RM flood

  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(4).deliveries().size(), 1u);
}

TEST(OptFlooding, RemoveRedeploysNeighborCf) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));
  proto::apply_dymo_optimized_flooding(world.kit(0));
  EXPECT_TRUE(proto::is_dymo_optimized_flooding(world.kit(0)));
  EXPECT_TRUE(world.kit(0).is_deployed("mpr"));

  proto::remove_dymo_optimized_flooding(world.kit(0));
  EXPECT_FALSE(proto::is_dymo_optimized_flooding(world.kit(0)));
  EXPECT_TRUE(world.kit(0).is_deployed("neighbor"));
  EXPECT_FALSE(world.kit(0).is_deployed("mpr"));  // no OLSR to share with
}

}  // namespace
}  // namespace mk::proto
