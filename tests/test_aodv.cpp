// AODV: state acceptance rules, end-to-end discovery, intermediate reply,
// RERR handling, and the HELLO piggybacking of routing-table entries.
#include <gtest/gtest.h>

#include "protocols/aodv/aodv_cf.hpp"
#include "protocols/aodv/aodv_state.hpp"
#include "testbed/world.hpp"

namespace mk::proto {
namespace {

TEST(AodvState, AcceptanceRules) {
  AodvState st;
  TimePoint t{0};
  EXPECT_TRUE(st.update_route(10, 5, true, 20, 3, t, sec(3)));
  EXPECT_FALSE(st.update_route(10, 4, true, 21, 1, t, sec(3)));
  EXPECT_FALSE(st.update_route(10, 5, true, 21, 4, t, sec(3)));
  EXPECT_TRUE(st.update_route(10, 5, true, 22, 2, t, sec(3)));
  EXPECT_TRUE(st.update_route(10, 6, true, 23, 9, t, sec(3)));
}

TEST(AodvState, InvalidationBumpsDestSeq) {
  AodvState st;
  st.update_route(10, 5, true, 20, 2, TimePoint{0}, sec(3));
  auto seq = st.invalidate(10);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, 6);  // RFC 3561 §6.11
  EXPECT_FALSE(st.route_to(10)->valid);
}

TEST(AodvState, PrecursorsSurviveUpdates) {
  AodvState st;
  st.update_route(10, 5, true, 20, 2, TimePoint{0}, sec(3));
  st.add_precursor(10, 77);
  st.update_route(10, 6, true, 21, 2, TimePoint{0}, sec(3));
  EXPECT_TRUE(st.route_to(10)->precursors.count(77) > 0);
}

TEST(AodvState, RreqCache) {
  AodvState st;
  EXPECT_FALSE(st.check_rreq_seen(1, 100, TimePoint{0}));
  EXPECT_TRUE(st.check_rreq_seen(1, 100, TimePoint{0}));
  st.expire_rreq_cache(TimePoint{sec(10).count()}, sec(6));
  EXPECT_FALSE(st.check_rreq_seen(1, 100, TimePoint{sec(10).count()}));
}

TEST(AodvIntegration, DiscoveryAcrossChain) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  EXPECT_TRUE(world.node(0).forwarding().send(world.addr(4), 256));
  world.run_for(sec(3));

  EXPECT_TRUE(world.has_route(0, world.addr(4)));
  ASSERT_EQ(world.node(4).deliveries().size(), 1u);
  EXPECT_EQ(world.node(4).deliveries()[0].hdr.src, world.addr(0));
}

TEST(AodvIntegration, ReverseRoutesFormDuringDiscovery) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  world.node(0).forwarding().send(world.addr(3), 64);
  world.run_for(sec(3));

  // Every node on the path formed a reverse route to the originator.
  EXPECT_TRUE(world.has_route(1, world.addr(0)));
  EXPECT_TRUE(world.has_route(2, world.addr(0)));
  EXPECT_TRUE(world.has_route(3, world.addr(0)));
}

TEST(AodvIntegration, IntermediateNodeAnswersFromCache) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  // First: 1 discovers 4, so 1 holds a fresh route to 4.
  world.node(1).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(1, world.addr(4)));

  // Now 0 discovers 4: node 1 may reply from cache; either way the route
  // must come up quickly and deliver.
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  EXPECT_TRUE(world.has_route(0, world.addr(4)));
  EXPECT_GE(world.node(4).deliveries().size(), 1u);
}

TEST(AodvIntegration, LinkBreakPurgesRoutesViaRerr) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(0, world.addr(4)));

  world.medium().set_link(world.addr(2), world.addr(3), false);
  // Keep traffic flowing so the break is noticed via send failure.
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(8));

  auto* st0 = aodv_state(*world.kit(0).protocol("aodv"));
  auto route = st0->route_to(world.addr(4));
  EXPECT_TRUE(!route.has_value() || !route->valid);
}

TEST(AodvIntegration, PiggybackSpreadsRoutesWithoutDiscovery) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  // 2 discovers 0 (so node 2 and node 1 hold routes toward 0).
  world.node(2).forwarding().send(world.addr(0), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.has_route(2, world.addr(0)));

  // With route piggybacking on HELLOs, nodes keep refreshing each other's
  // tables; after a few HELLO periods node 1's advert reaches node 2 even
  // after lifetimes would have lapsed.
  world.node(2).forwarding().send(world.addr(0), 64);
  world.run_for(sec(4));
  EXPECT_GE(world.node(0).deliveries().size(), 1u);
}

TEST(AodvIntegration, UnreachableTargetGivesUp) {
  testbed::SimWorld world(2);
  world.full_mesh();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  world.node(0).forwarding().send(net::addr_for_index(66), 64);
  world.run_for(sec(12));
  auto* st = aodv_state(*world.kit(0).protocol("aodv"));
  EXPECT_FALSE(st->has_pending(net::addr_for_index(66)));
}

}  // namespace
}  // namespace mk::proto
