// Invariant checker (ISSUE 3): forged violations are flagged — a two-node
// next-hop loop, a route via a non-neighbour past the grace window — and the
// checker stays silent across healthy converged scenarios.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "net/kernel_table.hpp"
#include "obs/invariants.hpp"
#include "obs/journal.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

using obs::InvariantChecker;
using obs::Journal;
using obs::Record;
using obs::RecordKind;
using obs::RouteView;

/// Synthetic world: per-node route maps + a symmetric link set, exposed
/// through the checker's provider callbacks.
struct FakeWorld {
  std::map<std::uint32_t, std::map<std::uint32_t, RouteView>> tables;
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> links;

  void route(std::uint32_t node, std::uint32_t dest, std::uint32_t hop) {
    tables[node][dest] = RouteView{dest, hop, 1};
  }
  void link(std::uint32_t a, std::uint32_t b, bool both = true) {
    links[{a, b}] = true;
    if (both) links[{b, a}] = true;
  }

  InvariantChecker checker(std::vector<std::uint32_t> nodes) {
    return InvariantChecker(
        std::move(nodes),
        [this](std::uint32_t n, std::uint32_t d) -> std::optional<RouteView> {
          auto t = tables.find(n);
          if (t == tables.end()) return std::nullopt;
          auto r = t->second.find(d);
          if (r == t->second.end()) return std::nullopt;
          return r->second;
        },
        [this](std::uint32_t n) {
          std::vector<RouteView> out;
          for (const auto& [_, r] : tables[n]) out.push_back(r);
          return out;
        },
        [this](std::uint32_t a, std::uint32_t b) {
          return links.count({a, b}) > 0;
        });
  }
};

TEST(InvariantChecker, FlagsTwoNodeNextHopLoop) {
  FakeWorld w;
  w.link(1, 2);
  w.link(2, 3);
  // Destination 3, but 1 and 2 point at each other: classic count-to-infinity
  // shape that loop-freedom must catch.
  w.route(1, 3, 2);
  w.route(2, 3, 1);

  auto checker = w.checker({1, 2, 3});
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  EXPECT_GT(checker.check_all(), 0u);

  bool saw_loop = false;
  for (const auto& v : checker.violations()) {
    if (v.kind == InvariantChecker::Violation::Kind::kLoop) saw_loop = true;
    EXPECT_FALSE(v.describe().empty());
  }
  EXPECT_TRUE(saw_loop);
}

TEST(InvariantChecker, SilentOnConsistentChain) {
  FakeWorld w;
  w.link(1, 2);
  w.link(2, 3);
  w.route(1, 3, 2);  // 1 -> 2 -> 3, loop-free, next hops are neighbours
  w.route(2, 3, 3);
  w.route(2, 1, 1);
  w.route(3, 1, 2);
  w.route(1, 2, 2);
  w.route(3, 2, 2);

  auto checker = w.checker({1, 2, 3});
  EXPECT_EQ(checker.check_all(), 0u);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_GT(checker.checks_run(), 0u);
}

TEST(InvariantChecker, FlagsRouteViaNonNeighbor) {
  FakeWorld w;
  w.link(1, 2);
  w.route(1, 3, 9);  // next hop 9 was never a neighbour

  auto checker = w.checker({1, 2, 3});
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  EXPECT_GT(checker.check_all(), 0u);
  ASSERT_FALSE(checker.violations().empty());
  bool saw_invalid = false;
  for (const auto& v : checker.violations()) {
    saw_invalid |=
        v.kind == InvariantChecker::Violation::Kind::kInvalidNextHop;
  }
  EXPECT_TRUE(saw_invalid);
}

TEST(InvariantChecker, FlagsAsymmetricLink) {
  FakeWorld w;
  w.link(1, 2, /*both=*/false);  // 1 hears 2 replies never arrive

  auto checker = w.checker({1, 2});
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  checker.set_check_symmetry(true);
  EXPECT_GT(checker.check_all(), 0u);
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].kind,
            InvariantChecker::Violation::Kind::kAsymmetricLink);

  checker.clear_violations();
  checker.set_check_symmetry(false);
  w.tables.clear();
  EXPECT_EQ(checker.check_all(), 0u);
}

TEST(InvariantChecker, GraceWindowCoversRecentLinkDrop) {
  FakeWorld w;
  w.link(1, 2);
  auto checker = w.checker({1, 2});
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  checker.set_check_symmetry(false);
  checker.set_link_grace(sec(1));

  Journal journal;
  checker.attach(journal);

  // The link was up, then drops at t=10s; the route install lands 100ms
  // later — inside the grace window, so the protocol is allowed the lag.
  journal.append({RecordKind::kLinkUp, 1, 0, /*peer=*/2, 0, 0});
  w.links.clear();
  journal.append({RecordKind::kLinkDown, 1, 10'000'000, 2, 0, 0});
  journal.append(
      {RecordKind::kRouteAdd, 1, 10'100'000, /*dest=*/2, /*hop=*/2, 1});
  EXPECT_TRUE(checker.violations().empty());

  // Same install well past the grace window: flagged.
  journal.append({RecordKind::kRouteAdd, 1, 12'000'000, 2, 2, 1});
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].kind,
            InvariantChecker::Violation::Kind::kInvalidNextHop);
}

TEST(InvariantChecker, DiagnosticDumpListsViolationsAndTail) {
  FakeWorld w;
  w.route(1, 3, 9);
  auto checker = w.checker({1, 2, 3});
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});

  Journal journal;
  checker.attach(journal);
  journal.append({RecordKind::kRouteAdd, 1, 5, 3, 9, 1});
  ASSERT_FALSE(checker.violations().empty());

  std::ostringstream os;
  checker.diagnostic_dump(os);
  EXPECT_NE(os.str().find("violation"), std::string::npos);
  EXPECT_NE(os.str().find("route_add"), std::string::npos);
}

// ---------------------------------------------------------------- sim world

TEST(InvariantWorld, ContinuousCheckCatchesForgedLoop) {
  testbed::SimWorld world(3);
  world.linear();
  auto& checker = world.enable_invariants();
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  // Wire the kernel tables into the journal (lazily creates the kits).
  world.kit(0);
  world.kit(1);

  // Forge the loop live: the second install's kRouteAdd record triggers the
  // continuous check — no explicit check_all() sweep.
  net::RouteEntry e;
  e.dest = world.addr(2);
  e.next_hop = world.addr(1);
  e.installed_at = world.now();
  world.node(0).kernel_table().set_route(e);
  EXPECT_TRUE(checker.violations().empty());

  e.next_hop = world.addr(0);
  world.node(1).kernel_table().set_route(e);
  ASSERT_FALSE(checker.violations().empty());
  bool saw_loop = false;
  for (const auto& v : checker.violations()) {
    saw_loop |= v.kind == InvariantChecker::Violation::Kind::kLoop;
  }
  EXPECT_TRUE(saw_loop);
}

TEST(InvariantWorld, StaleNeighborRouteFlaggedAfterGrace) {
  testbed::SimWorld world(2);
  world.linear();
  auto& checker = world.enable_invariants();
  checker.set_violation_hook([](const InvariantChecker::Violation&) {});
  checker.set_link_grace(msec(200));
  world.kit(0);

  // Valid while the link is up.
  net::RouteEntry e;
  e.dest = world.addr(1);
  e.next_hop = world.addr(1);
  e.installed_at = world.now();
  world.node(0).kernel_table().set_route(e);
  EXPECT_TRUE(checker.violations().empty());

  // Cut the link, let the grace window lapse, then reinstall (metric bumped
  // so the table journals an effective change): stale-neighbour route.
  world.medium().set_link(world.addr(0), world.addr(1), /*up=*/false);
  world.run_for(sec(1));
  e.metric = 2;
  e.installed_at = world.now();
  world.node(0).kernel_table().set_route(e);
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].kind,
            InvariantChecker::Violation::Kind::kInvalidNextHop);
}

TEST(InvariantWorld, SilentOnHealthyConvergedOlsr) {
  testbed::SimWorld world(4);
  world.linear();
  world.enable_invariants();
  world.deploy_all("olsr");

  auto elapsed = world.run_until_routed(sec(60));
  ASSERT_TRUE(elapsed.has_value());
  world.run_for(sec(10));

  auto* checker = world.checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_TRUE(checker->violations().empty());
  EXPECT_EQ(checker->check_all(world.now().us), 0u);
  EXPECT_GT(checker->checks_run(), 0u);
}

}  // namespace
}  // namespace mk
