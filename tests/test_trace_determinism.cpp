// Golden-determinism tests (ISSUE 3): the same seed and topology must
// produce bit-identical trace digests across runs, and the single-threaded
// and pool-executor concurrency models must agree on the canonical
// (order-insensitive) digest. Plus the journal mechanics the digests rest
// on: ring wrap-around, dump/load, divergence search.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "core/framework_manager.hpp"
#include "core/manet_protocol.hpp"
#include "obs/journal.hpp"
#include "testbed/world.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

using obs::Journal;
using obs::Record;
using obs::RecordKind;

Record rec(RecordKind kind, std::uint32_t node, std::int64_t t,
           std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0) {
  return Record{kind, node, t, a, b, c};
}

// ------------------------------------------------------------------ journal

TEST(Journal, RingKeepsTailAndCountsOverwrites) {
  Journal journal(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.append(rec(RecordKind::kTimerFire, 0, static_cast<std::int64_t>(i),
                       /*timer id=*/i));
  }
  EXPECT_EQ(journal.total(), 10u);
  EXPECT_EQ(journal.retained(), 4u);
  EXPECT_EQ(journal.overwritten(), 6u);

  auto tail = journal.snapshot();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().a, 6u);  // oldest retained
  EXPECT_EQ(tail.back().a, 9u);   // newest
}

TEST(Journal, DigestsCoverOverwrittenRecords) {
  Journal small(/*capacity=*/2);
  Journal big(/*capacity=*/64);
  for (int i = 0; i < 20; ++i) {
    auto r = rec(RecordKind::kRouteAdd, 1, i, i, i + 1, 1);
    small.append(r);
    big.append(r);
  }
  // Identical streams digest identically regardless of how much the ring
  // retains — the digests are running accumulators, not snapshot hashes.
  EXPECT_EQ(small.ordered_digest(), big.ordered_digest());
  EXPECT_EQ(small.canonical_digest(), big.canonical_digest());
}

TEST(Journal, CanonicalDigestIsOrderInsensitiveOrderedIsNot) {
  auto r1 = rec(RecordKind::kFrameTx, 1, 10, 2, 64, 0xabcdef);
  auto r2 = rec(RecordKind::kFrameRx, 2, 11, 1, 64, 0xabcdef);
  auto r3 = rec(RecordKind::kRouteAdd, 2, 12, 1, 1, 1);

  Journal in_order;
  for (const auto& r : {r1, r2, r3}) in_order.append(r);
  Journal shuffled;
  for (const auto& r : {r3, r1, r2}) shuffled.append(r);

  EXPECT_EQ(in_order.canonical_digest(), shuffled.canonical_digest());
  EXPECT_NE(in_order.ordered_digest(), shuffled.ordered_digest());
}

TEST(Journal, DumpLoadRoundTripAndDivergenceSearch) {
  Journal journal;
  journal.append(rec(RecordKind::kEventDispatch, 3, 100, 0x1111, 2, 0x2222));
  journal.append(rec(RecordKind::kFrameDrop, 1, 200, 2, 48,
                     static_cast<std::uint64_t>(obs::DropReason::kLoss)));
  journal.append(rec(RecordKind::kLinkDown, 1, 300, 2));

  std::stringstream ss;
  journal.dump(ss);
  auto loaded = Journal::load(ss);
  auto original = journal.snapshot();
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(obs::first_divergence(original, loaded), std::nullopt);

  // A post-mortem diff pinpoints the first differing record.
  loaded[1].b = 49;
  auto div = obs::first_divergence(original, loaded);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(*div, 1u);
}

TEST(Journal, ObserverSeesEveryAppend) {
  Journal journal;
  std::size_t seen = 0;
  journal.add_observer([&seen](const Record&) { ++seen; });
  for (int i = 0; i < 5; ++i) journal.append(rec(RecordKind::kTimerFire, 0, i));
  EXPECT_EQ(seen, 5u);
}

// ------------------------------------------------------------- golden runs

struct RunSignature {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
};

/// One full traced scenario: 4 OLSR nodes on a lossy linear topology.
RunSignature run_traced_scenario(std::uint64_t seed) {
  testbed::SimWorld world(4, seed);
  auto& journal = world.enable_tracing();
  world.linear();
  world.medium().set_loss_probability(0.05);
  world.deploy_all("olsr");
  world.run_for(sec(20));
  return {journal.ordered_digest(), journal.canonical_digest(),
          journal.total()};
}

TEST(TraceDeterminism, SameSeedSameDigest) {
  RunSignature a = run_traced_scenario(7);
  RunSignature b = run_traced_scenario(7);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.ordered, b.ordered) << "seed-identical runs diverged";
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_GT(a.total, 0u);
}

TEST(TraceDeterminism, DifferentSeedDifferentDigest) {
  RunSignature a = run_traced_scenario(7);
  RunSignature b = run_traced_scenario(8);
  // Loss draws differ, so the frame streams (and digests) must part ways.
  EXPECT_NE(a.ordered, b.ordered);
}

// --------------------------------------------------------- executor parity

/// Emit/drain harness: a producer fans PINGs to a responder that re-emits
/// each as a PONG to two sinks. Under the pool executor the PONG emissions
/// originate on worker threads, so record *order* is nondeterministic but
/// the record *set* must match the single-threaded run exactly.
RunSignature run_ping_pong(core::ConcurrencyModel model) {
  constexpr int kPings = 300;

  class Responder final : public core::EventHandler {
   public:
    Responder() : core::EventHandler("td.Responder", {"TD_PING"}) {}
    void handle(const ev::Event&, core::ProtocolContext& ctx) override {
      ctx.emit(ev::Event(ev::etype("TD_PONG")));
    }
  };
  class Sink final : public core::EventHandler {
   public:
    explicit Sink(std::atomic<int>& got)
        : core::EventHandler("td.Sink", {"TD_PONG"}), got_(got) {}
    void handle(const ev::Event&, core::ProtocolContext&) override { ++got_; }
    std::atomic<int>& got_;
  };

  SimScheduler sched;
  oc::Kernel kernel;
  Journal journal;
  core::FrameworkManager manager(kernel);
  manager.set_journal(&journal, /*node=*/1, &sched);
  std::atomic<int> got{0};

  std::vector<std::unique_ptr<core::ManetProtocolCf>> owned;
  auto make = [&](const std::string& name, int layer,
                  std::unique_ptr<core::EventHandler> handler,
                  std::vector<std::string> required,
                  std::vector<std::string> provided) {
    auto cf = std::make_unique<core::ManetProtocolCf>(kernel, name, sched, 1,
                                                      nullptr);
    if (handler != nullptr) cf->add_handler(std::move(handler));
    core::ManetProtocolCf* raw = cf.get();
    owned.push_back(std::move(cf));
    manager.register_unit(raw, layer);
    raw->declare_events(required, provided, {});
    return raw;
  };

  auto* producer = make("td_producer", 30, nullptr, {}, {"TD_PING"});
  make("td_responder", 20, std::make_unique<Responder>(), {"TD_PING"},
       {"TD_PONG"});
  make("td_sink_a", 10, std::make_unique<Sink>(got), {"TD_PONG"}, {});
  make("td_sink_b", 10, std::make_unique<Sink>(got), {"TD_PONG"}, {});

  manager.set_concurrency(model, /*threads=*/4, /*batch=*/8);
  for (int i = 0; i < kPings; ++i) {
    producer->emit(ev::Event(ev::etype("TD_PING")));
  }
  // drain() waits for in-flight dispatches; PONGs enqueued by those
  // dispatches may need another pass.
  for (int spin = 0; spin < 10'000 && got.load() < 2 * kPings; ++spin) {
    manager.drain();
  }
  EXPECT_EQ(got.load(), 2 * kPings);

  RunSignature sig{journal.ordered_digest(), journal.canonical_digest(),
                   journal.total()};
  manager.set_concurrency(core::ConcurrencyModel::kSingleThreaded);
  for (auto& cf : owned) manager.deregister_unit(cf.get());
  return sig;
}

TEST(TraceDeterminism, SingleThreadedPingPongIsReproducible) {
  RunSignature a = run_ping_pong(core::ConcurrencyModel::kSingleThreaded);
  RunSignature b = run_ping_pong(core::ConcurrencyModel::kSingleThreaded);
  EXPECT_EQ(a.ordered, b.ordered);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.total, b.total);
}

TEST(TraceDeterminism, PoolExecutorMatchesCanonicalDigest) {
  RunSignature single = run_ping_pong(core::ConcurrencyModel::kSingleThreaded);
  RunSignature pooled = run_ping_pong(core::ConcurrencyModel::kThreadPerNMessages);
  EXPECT_EQ(single.total, pooled.total);
  EXPECT_EQ(single.canonical, pooled.canonical)
      << "executor choice changed the observable record set";
}

}  // namespace
}  // namespace mk
