// Failure injection: corrupted packets in live runs, node crashes and
// revivals, network partitions and healing, heavy loss, and determinism of
// whole-scenario runs.
#include <gtest/gtest.h>

#include "protocols/dymo/dymo_cf.hpp"
#include "testbed/world.hpp"
#include "util/rng.hpp"

namespace mk {
namespace {

TEST(FailureInjection, CorruptedControlPacketsDontDerailOlsr) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");

  // A misbehaving node squirts random garbage into the channel every 500ms.
  Rng rng(99);
  PeriodicTimer jammer(world.scheduler(), msec(500), [&] {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(1, 64)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    world.node(1).send_control(std::move(junk));
  });
  jammer.start();

  ASSERT_TRUE(world.run_until_routed(sec(90)).has_value())
      << "OLSR must converge despite garbage frames";
  jammer.stop();
  EXPECT_GT(world.kit(0).system().parse_errors(), 0u);
}

TEST(FailureInjection, BitFlippedRealPacketsAreSurvivable) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  // Capture a genuine RM packet, flip bits, replay it many times.
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));

  Rng rng(7);
  proto::DymoParams params;
  auto msg = proto::rm::build_rreq(world.addr(0), 42, world.addr(2),
                                   params.rreq_hop_limit);
  pbb::Packet pkt;
  pkt.messages.push_back(msg);
  auto bytes = pbb::serialize(pkt);
  for (int i = 0; i < 200; ++i) {
    auto copy = bytes;
    auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(copy.size()) - 1));
    copy[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    world.node(0).send_control(std::move(copy));
    world.run_for(msec(50));
  }
  // Network still functional afterwards.
  world.node(2).clear_deliveries();
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(2).deliveries().size(), 1u);
}

TEST(FailureInjection, NodeCrashAndReviveOlsr) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // "Crash" node 2: device down (radios off, daemon silent).
  world.node(2).device().set_up(false);
  world.run_for(sec(25));
  EXPECT_FALSE(world.has_route(0, world.addr(4)));
  EXPECT_FALSE(world.has_route(0, world.addr(2)));

  // Revive: routes re-form.
  world.node(2).device().set_up(true);
  bool healed = false;
  for (int i = 0; i < 60 && !healed; ++i) {
    world.run_for(sec(1));
    healed = world.has_route(0, world.addr(4));
  }
  EXPECT_TRUE(healed);
}

TEST(FailureInjection, PartitionAndHealDymo) {
  testbed::SimWorld world(6);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(4));
  ASSERT_EQ(world.node(5).deliveries().size(), 1u);

  // Partition the network in the middle.
  world.medium().set_link(world.addr(2), world.addr(3), false);
  world.run_for(sec(10));

  // Discovery across the partition must fail cleanly (no crash, gives up).
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(15));
  EXPECT_EQ(world.node(5).deliveries().size(), 1u);
  auto* st = proto::dymo_state(*world.kit(0).protocol("dymo"));
  EXPECT_EQ(st->pending_count(), 0u);

  // Heal: traffic flows again.
  world.medium().set_link(world.addr(2), world.addr(3), true);
  world.run_for(sec(6));
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(6));
  EXPECT_EQ(world.node(5).deliveries().size(), 2u);
}

TEST(FailureInjection, OlsrConvergesUnderHeavyLoss) {
  testbed::SimWorld world(4);
  world.linear();
  world.medium().set_loss_probability(0.3);
  world.deploy_all("olsr");
  EXPECT_TRUE(world.run_until_routed(sec(180)).has_value())
      << "30% loss slows but must not prevent convergence";
}

TEST(FailureInjection, AsymmetricLinkNeverUsedForRouting) {
  // 0 <-> 1 symmetric; 1 -> 2 only one-way (2 hears 1, 1 never hears 2).
  testbed::SimWorld world(3);
  world.medium().set_link(world.addr(0), world.addr(1), true);
  world.medium().set_link(world.addr(1), world.addr(2), true,
                          /*symmetric=*/false);
  world.deploy_all("olsr");
  world.run_for(sec(40));

  // No route may ever cross the asymmetric edge.
  EXPECT_FALSE(world.has_route(0, world.addr(2)));
  EXPECT_FALSE(world.has_route(1, world.addr(2)));
}

TEST(Determinism, IdenticalSeedsGiveIdenticalOutcomes) {
  auto run = [] {
    testbed::SimWorld world(5, /*seed=*/1234);
    world.linear();
    world.deploy_all("dymo");
    world.run_for(sec(5));
    world.node(0).forwarding().send(world.addr(4), 64);
    world.run_for(sec(10));
    std::vector<std::uint64_t> digest;
    digest.push_back(world.medium().stats().control_frames);
    digest.push_back(world.medium().stats().control_bytes);
    digest.push_back(world.node(4).deliveries().size());
    for (std::size_t i = 0; i < 5; ++i) {
      digest.push_back(world.node(i).kernel_table().size());
    }
    return digest;
  };
  EXPECT_EQ(run(), run()) << "simulation must be deterministic per seed";
}

TEST(FailureInjection, UndeployUnderTrafficIsClean) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  // Packets in flight while node 1 tears its stack down and rebuilds it.
  world.node(0).forwarding().send(world.addr(2), 64);
  world.kit(1).undeploy("dymo");
  world.run_for(sec(2));
  world.kit(1).deploy("dymo");
  world.run_for(sec(8));

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(6));
  EXPECT_GE(world.node(2).deliveries().size(), 1u);
}

}  // namespace
}  // namespace mk
