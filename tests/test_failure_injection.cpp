// Failure injection: corrupted packets in live runs, node crashes and
// revivals, network partitions and healing, heavy loss, determinism of
// whole-scenario runs — and the chaos conformance suite (fault plans driving
// reconfiguration under churn, each scenario replayed for digest equality).
#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/plan.hpp"
#include "protocols/dymo/dymo_cf.hpp"
#include "testbed/world.hpp"
#include "util/rng.hpp"

namespace mk {
namespace {

TEST(FailureInjection, CorruptedControlPacketsDontDerailOlsr) {
  testbed::SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");

  // A misbehaving node squirts random garbage into the channel every 500ms.
  Rng rng(99);
  PeriodicTimer jammer(world.scheduler(), msec(500), [&] {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(1, 64)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    world.node(1).send_control(std::move(junk));
  });
  jammer.start();

  ASSERT_TRUE(world.run_until_routed(sec(90)).has_value())
      << "OLSR must converge despite garbage frames";
  jammer.stop();
  EXPECT_GT(world.kit(0).system().parse_errors(), 0u);
}

TEST(FailureInjection, BitFlippedRealPacketsAreSurvivable) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  // Capture a genuine RM packet, flip bits, replay it many times.
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));

  Rng rng(7);
  proto::DymoParams params;
  auto msg = proto::rm::build_rreq(world.addr(0), 42, world.addr(2),
                                   params.rreq_hop_limit);
  pbb::Packet pkt;
  pkt.messages.push_back(msg);
  auto bytes = pbb::serialize(pkt);
  for (int i = 0; i < 200; ++i) {
    auto copy = bytes;
    auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(copy.size()) - 1));
    copy[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    world.node(0).send_control(std::move(copy));
    world.run_for(msec(50));
  }
  // Network still functional afterwards.
  world.node(2).clear_deliveries();
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(2).deliveries().size(), 1u);
}

TEST(FailureInjection, NodeCrashAndReviveOlsr) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // "Crash" node 2: device down (radios off, daemon silent).
  world.node(2).device().set_up(false);
  world.run_for(sec(25));
  EXPECT_FALSE(world.has_route(0, world.addr(4)));
  EXPECT_FALSE(world.has_route(0, world.addr(2)));

  // Revive: routes re-form.
  world.node(2).device().set_up(true);
  bool healed = false;
  for (int i = 0; i < 60 && !healed; ++i) {
    world.run_for(sec(1));
    healed = world.has_route(0, world.addr(4));
  }
  EXPECT_TRUE(healed);
}

TEST(FailureInjection, PartitionAndHealDymo) {
  testbed::SimWorld world(6);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(4));
  ASSERT_EQ(world.node(5).deliveries().size(), 1u);

  // Partition the network in the middle.
  world.medium().set_link(world.addr(2), world.addr(3), false);
  world.run_for(sec(10));

  // Discovery across the partition must fail cleanly (no crash, gives up).
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(15));
  EXPECT_EQ(world.node(5).deliveries().size(), 1u);
  auto* st = proto::dymo_state(*world.kit(0).protocol("dymo"));
  EXPECT_EQ(st->pending_count(), 0u);

  // Heal: traffic flows again.
  world.medium().set_link(world.addr(2), world.addr(3), true);
  world.run_for(sec(6));
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(6));
  EXPECT_EQ(world.node(5).deliveries().size(), 2u);
}

TEST(FailureInjection, OlsrConvergesUnderHeavyLoss) {
  testbed::SimWorld world(4);
  world.linear();
  world.medium().set_loss_probability(0.3);
  world.deploy_all("olsr");
  EXPECT_TRUE(world.run_until_routed(sec(180)).has_value())
      << "30% loss slows but must not prevent convergence";
}

TEST(FailureInjection, AsymmetricLinkNeverUsedForRouting) {
  // 0 <-> 1 symmetric; 1 -> 2 only one-way (2 hears 1, 1 never hears 2).
  testbed::SimWorld world(3);
  world.medium().set_link(world.addr(0), world.addr(1), true);
  world.medium().set_link(world.addr(1), world.addr(2), true,
                          /*symmetric=*/false);
  world.deploy_all("olsr");
  world.run_for(sec(40));

  // No route may ever cross the asymmetric edge.
  EXPECT_FALSE(world.has_route(0, world.addr(2)));
  EXPECT_FALSE(world.has_route(1, world.addr(2)));
}

TEST(Determinism, IdenticalSeedsGiveIdenticalOutcomes) {
  auto run = [] {
    testbed::SimWorld world(5, /*seed=*/1234);
    world.linear();
    world.deploy_all("dymo");
    world.run_for(sec(5));
    world.node(0).forwarding().send(world.addr(4), 64);
    world.run_for(sec(10));
    std::vector<std::uint64_t> digest;
    digest.push_back(world.medium().stats().control_frames);
    digest.push_back(world.medium().stats().control_bytes);
    digest.push_back(world.node(4).deliveries().size());
    for (std::size_t i = 0; i < 5; ++i) {
      digest.push_back(world.node(i).kernel_table().size());
    }
    return digest;
  };
  EXPECT_EQ(run(), run()) << "simulation must be deterministic per seed";
}

TEST(FailureInjection, UndeployUnderTrafficIsClean) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));

  // Packets in flight while node 1 tears its stack down and rebuilds it.
  world.node(0).forwarding().send(world.addr(2), 64);
  world.kit(1).undeploy("dymo");
  world.run_for(sec(2));
  world.kit(1).deploy("dymo");
  world.run_for(sec(8));

  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(6));
  EXPECT_GE(world.node(2).deliveries().size(), 1u);
}

// ======================= chaos conformance suite ============================
// Each scenario is a pure function of its seed: it builds a fresh world with
// continuous invariant checking on, arms a deterministic fault plan, drives a
// reconfiguration through that churn, and returns the journal digests plus
// the violation count. Every TEST runs its scenario twice and demands
// bit-identical ordered digests — the replay guarantee the fault subsystem
// promises — and zero invariant violations throughout. The seed comes from
// MK_CHAOS_SEED (CI runs a fixed seed matrix), defaulting to 1234.

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

struct ChaosSig {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
  std::size_t violations = 0;
  bool operator==(const ChaosSig&) const = default;
};

/// End-of-scenario harvest: a full invariant sweep on top of the continuous
/// checks, then the digest triple.
ChaosSig finish(testbed::SimWorld& world) {
  world.checker()->check_all(world.now().us);
  return ChaosSig{world.journal()->ordered_digest(),
                  world.journal()->canonical_digest(),
                  world.journal()->total(),
                  world.checker()->violations().size()};
}

/// Scenario: OLSR -> DYMO on every node while the network is split in two,
/// heal, push data across the healed cut, then swap back to OLSR and fully
/// reconverge.
ChaosSig run_swap_under_partition(std::uint64_t seed) {
  testbed::SimWorld world(6, seed);
  world.enable_invariants();
  world.linear();
  world.deploy_all("olsr");
  EXPECT_TRUE(world.run_until_routed(sec(90)).has_value());

  fault::FaultPlan plan;
  plan.partition(sec(1), {world.addr(0), world.addr(1), world.addr(2)},
                 {world.addr(3), world.addr(4), world.addr(5)});
  plan.heal(sec(8));
  world.apply_fault_plan(plan, seed ^ 0x5eed);
  world.run_for(sec(2));  // the partition is now live

  core::Manetkit::ReplaceOptions opts;
  opts.carry_state = false;  // OLSR and DYMO S elements are not compatible
  for (std::size_t i = 0; i < world.size(); ++i) {
    auto rep = world.kit(i).replace_protocol("olsr", "dymo", opts);
    EXPECT_TRUE(rep.committed);
    world.kit(i).undeploy("mpr");
  }
  world.run_for(sec(8));  // heal fires 8s after arm

  // Traffic across the healed cut proves DYMO took over end to end.
  world.node(0).forwarding().send(world.addr(5), 64);
  world.run_for(sec(10));
  EXPECT_GE(world.node(5).deliveries().size(), 1u);

  // ...and back again: DYMO -> OLSR, full proactive reconvergence.
  for (std::size_t i = 0; i < world.size(); ++i) {
    auto rep = world.kit(i).replace_protocol("dymo", "olsr", opts);
    EXPECT_TRUE(rep.committed);
  }
  EXPECT_TRUE(world.run_until_routed(sec(180)).has_value());
  return finish(world);
}

TEST(ChaosConformance, SwapUnderPartitionReplaysIdentically) {
  ChaosSig a = run_swap_under_partition(chaos_seed());
  ChaosSig b = run_swap_under_partition(chaos_seed());
  EXPECT_EQ(a, b) << "same-seed chaos rerun diverged";
  EXPECT_EQ(a.violations, 0u);
  EXPECT_GT(a.total, 0u);
}

/// Scenario: a relay node crashes, its protocol image is swapped (DYMO ->
/// DYMO, state carried) while it is dark, then it restarts — the transferred
/// S element must survive the crash window and the path must heal.
ChaosSig run_crash_mid_swap(std::uint64_t seed) {
  testbed::SimWorld world(5, seed);
  world.enable_invariants();
  world.linear();
  world.deploy_all("dymo");
  world.run_for(sec(5));
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);

  // A second DYMO image for the relay to swap to mid-crash.
  world.kit(2).register_protocol(
      "dymo2", 20, [](core::Manetkit& k) { return proto::build_dymo_cf(k); },
      "reactive");

  fault::FaultPlan plan;
  plan.crash(msec(100), world.addr(2));
  plan.restart(sec(5), world.addr(2));
  world.apply_fault_plan(plan, seed + 17);
  world.run_for(sec(1));  // crash has fired; node 2 is dark

  // Swap the crashed relay's protocol, carrying its S element through. A
  // recognisable long-lived route seeded into the state must survive the
  // transfer verbatim (learned routes have already aged out by now).
  auto* st_before = proto::dymo_state(*world.kit(2).protocol("dymo"));
  EXPECT_NE(st_before, nullptr);
  st_before->update_route(99, 1, 98, 1, TimePoint{0}, sec(600));
  std::size_t routes_before = st_before->route_count();

  auto rep = world.kit(2).replace_protocol("dymo", "dymo2");
  EXPECT_TRUE(rep.committed);
  auto* st_after = proto::dymo_state(*rep.instance);
  EXPECT_NE(st_after, nullptr);
  if (st_after != nullptr) {
    EXPECT_EQ(st_after->route_count(), routes_before);
    EXPECT_TRUE(st_after->route_to(99).has_value());
  }

  world.run_for(sec(5));  // restart fires 5s after arm
  world.node(4).clear_deliveries();
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(10));
  EXPECT_GE(world.node(4).deliveries().size(), 1u)
      << "path through the revived relay must heal";
  return finish(world);
}

TEST(ChaosConformance, CrashMidSwapTransfersStateAndReplaysIdentically) {
  ChaosSig a = run_crash_mid_swap(chaos_seed());
  ChaosSig b = run_crash_mid_swap(chaos_seed());
  EXPECT_EQ(a, b) << "same-seed chaos rerun diverged";
  EXPECT_EQ(a.violations, 0u);
  EXPECT_GT(a.total, 0u);
}

/// Scenario: OLSR and ZRP co-deployed, then a loss burst (plus duplication
/// and reordering) rakes the medium; both planes must come back and the
/// whole run must stay invariant-clean.
ChaosSig run_loss_burst_zrp_coexist(std::uint64_t seed) {
  testbed::SimWorld world(5, seed);
  world.enable_invariants();
  world.linear();
  world.deploy_all("olsr");  // proactive plane
  world.deploy_all("zrp");   // hybrid plane (fills the one reactive slot)
  world.run_for(sec(10));

  fault::FaultPlan plan = fault::FaultPlan::parse(
      "at 1s loss 0.35 for 3s\n"
      "at 2s dup 0.15 for 2s\n"
      "at 2s reorder 500us for 2s\n");
  world.apply_fault_plan(plan, seed * 31 + 7);
  world.run_for(sec(6));  // the burst opens, rages, and expires
  EXPECT_FALSE(world.injector()->any_window_active());
  EXPECT_GT(world.medium().stats().dropped_fault, 0u);

  EXPECT_TRUE(world.run_until_routed(sec(120)).has_value())
      << "coexisting planes must reconverge after the burst";
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(5));
  EXPECT_GE(world.node(4).deliveries().size(), 1u);
  return finish(world);
}

TEST(ChaosConformance, LossBurstDuringZrpCoexistReplaysIdentically) {
  ChaosSig a = run_loss_burst_zrp_coexist(chaos_seed());
  ChaosSig b = run_loss_burst_zrp_coexist(chaos_seed());
  EXPECT_EQ(a, b) << "same-seed chaos rerun diverged";
  EXPECT_EQ(a.violations, 0u);
  EXPECT_GT(a.total, 0u);
}

// -------------------------------------------- executor parity under chaos

/// Replace-cycle harness for executor parity: one node churns through
/// committed swaps, transient-failure retries and permanent-failure
/// rollbacks with the pool executor live. All reconfiguration records are
/// appended from the calling thread under the manager's quiescence
/// discipline (drain() precedes every swap), so even the pool executor must
/// reproduce the *ordered* digest. (No sim time passes here on purpose:
/// timer-driven dispatches under the pool interleave with sim-time advance,
/// which is why full world scenarios pin the single-threaded model — see
/// docs/FAULT_INJECTION.md.)
ChaosSig run_replace_chaos(core::ConcurrencyModel model) {
  testbed::SimWorld world(1, /*seed=*/7);
  auto& journal = world.enable_tracing();
  auto& kit = world.kit(0);
  kit.deploy("dymo");

  // Fails exactly once, on its very first bind (the rollback path reuses
  // this builder, so it must be reliable from then on).
  int flaky_attempts = 0;
  kit.register_protocol(
      "dymo2", 20,
      [&flaky_attempts](core::Manetkit& k) {
        if (flaky_attempts++ == 0) {
          throw std::runtime_error("transient bind failure");
        }
        return proto::build_dymo_cf(k);
      },
      "reactive");
  kit.register_protocol(
      "doomed", 20,
      [](core::Manetkit&) -> std::unique_ptr<core::ManetProtocolCf> {
        throw std::runtime_error("permanent bind failure");
      },
      "reactive");

  kit.manager().set_concurrency(model, /*threads=*/4, /*batch=*/8);
  core::Manetkit::ReplaceOptions opts;
  opts.max_attempts = 3;
  std::string current = "dymo";
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::string next = cycle % 2 == 0 ? "dymo2" : "dymo";
    auto good = kit.replace_protocol(current, next, opts);
    EXPECT_TRUE(good.committed);
    current = next;
    auto bad = kit.replace_protocol(current, "doomed", opts);
    EXPECT_FALSE(bad.committed);  // rolled back onto `current`
    EXPECT_TRUE(kit.is_deployed(current));
  }
  kit.manager().set_concurrency(core::ConcurrencyModel::kSingleThreaded);
  return ChaosSig{journal.ordered_digest(), journal.canonical_digest(),
                  journal.total(), 0};
}

TEST(ChaosConformance, ReplaceChaosOrderedDigestMatchesAcrossExecutors) {
  ChaosSig single = run_replace_chaos(core::ConcurrencyModel::kSingleThreaded);
  ChaosSig single2 = run_replace_chaos(core::ConcurrencyModel::kSingleThreaded);
  ChaosSig pooled =
      run_replace_chaos(core::ConcurrencyModel::kThreadPerNMessages);
  EXPECT_EQ(single, single2) << "replace chaos is not reproducible";
  EXPECT_EQ(single.ordered, pooled.ordered)
      << "quiesced reconfiguration must journal identically under the pool";
  EXPECT_EQ(single.canonical, pooled.canonical);
  EXPECT_GT(single.total, 0u);
}

}  // namespace
}  // namespace mk
