// Fault subsystem units: plan builder/parser round-trips, injector action
// semantics (loss bursts, duplication, reordering, partition/heal,
// crash/restart, bounded drift), journaled drop accounting, determinism of
// (plan, seed) replays, and the hardened replace path — retry-with-backoff
// on transient bind failure, rollback-to-prior-graph on permanent failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "protocols/dymo/dymo_cf.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

using fault::FaultKind;
using fault::FaultPlan;

net::Addr n(std::uint32_t i) { return net::addr_for_index(i); }

std::size_t count_drops(const obs::Journal& journal, obs::DropReason reason) {
  std::size_t count = 0;
  for (const auto& r : journal.snapshot()) {
    if (r.kind == obs::RecordKind::kFrameDrop &&
        r.c == static_cast<std::uint64_t>(reason)) {
      ++count;
    }
  }
  return count;
}

std::size_t count_kind(const obs::Journal& journal, obs::RecordKind kind) {
  std::size_t count = 0;
  for (const auto& r : journal.snapshot()) {
    if (r.kind == kind) ++count;
  }
  return count;
}

// ------------------------------------------------------------------- plan

TEST(FaultPlan, BuilderRecordsActionsInOrder) {
  FaultPlan plan;
  plan.loss_burst(sec(5), 0.5, sec(2))
      .partition(sec(8), {n(0), n(1)}, {n(2)})
      .heal(sec(12))
      .crash(sec(9), n(2))
      .restart(sec(11), n(2))
      .clock_drift(sec(2), n(3), 1.05, sec(10));
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.actions()[0].kind, FaultKind::kLossBurst);
  EXPECT_EQ(plan.actions()[1].group_b, std::vector<net::Addr>{n(2)});
  EXPECT_EQ(plan.actions()[3].from, n(2));
  EXPECT_DOUBLE_EQ(plan.actions()[5].p, 1.05);
}

TEST(FaultPlan, ParsesEveryActionKindAndRoundTrips) {
  const char* text =
      "# chaos schedule\n"
      "at 5s loss 0.5 for 2s\n"
      "at 5s loss 0.8 link 1 2 for 500ms\n"
      "at 3s dup 0.25 for 4s\n"
      "at 4s reorder 300us for 2s\n"
      "\n"
      "at 8s partition 0 1 2 | 3 4\n"
      "at 12s heal\n"
      "at 9s crash 2\n"
      "at 11s restart 2\n"
      "at 2s drift 3 1.05 for 10s\n";
  FaultPlan plan = FaultPlan::parse(text);
  ASSERT_EQ(plan.size(), 9u);
  EXPECT_EQ(plan.actions()[0].at, sec(5));
  EXPECT_EQ(plan.actions()[1].from, n(1));
  EXPECT_EQ(plan.actions()[1].to, n(2));
  EXPECT_EQ(plan.actions()[1].duration, msec(500));
  EXPECT_EQ(plan.actions()[3].jitter, usec(300));
  EXPECT_EQ(plan.actions()[4].group_a.size(), 3u);
  EXPECT_EQ(plan.actions()[4].group_b.size(), 2u);

  // to_text() -> parse() is the identity on the action list.
  FaultPlan again = FaultPlan::parse(plan.to_text());
  EXPECT_EQ(again.actions(), plan.actions());
}

TEST(FaultPlan, ParseRejectsMalformedLinesWithLineNumbers) {
  EXPECT_THROW(FaultPlan::parse("loss 0.5 for 2s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 5s loss for 2s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 5 loss 0.5 for 2s"),
               std::invalid_argument);  // missing unit
  EXPECT_THROW(FaultPlan::parse("at 5s partition 0 1"),
               std::invalid_argument);  // no second side
  EXPECT_THROW(FaultPlan::parse("at 5s explode 3"), std::invalid_argument);
  try {
    FaultPlan::parse("at 1s heal\nat 2s bogus 1\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// --------------------------------------------------------------- injector

TEST(FaultInjector, LossBurstDropsAreJournaledWithFaultReason) {
  testbed::SimWorld world(3, /*seed=*/5);
  auto& journal = world.enable_tracing();
  world.linear();
  world.deploy_all("olsr");
  world.run_for(sec(3));

  FaultPlan plan;
  plan.loss_burst(sec(1), 1.0, sec(4));  // every delivery in the window dies
  world.apply_fault_plan(plan, /*seed=*/11);
  world.run_for(sec(6));

  auto stats = world.medium().stats();
  EXPECT_GT(stats.dropped_fault, 0u);
  EXPECT_EQ(stats.dropped_fault,
            count_drops(journal, obs::DropReason::kFaultLoss));
  // The action firing itself is journaled too.
  EXPECT_EQ(count_kind(journal, obs::RecordKind::kFault), 1u);
  EXPECT_EQ(world.injector()->actions_fired(), 1u);
}

TEST(FaultInjector, LinkScopedLossBurstOnlyHitsThatLink) {
  testbed::SimWorld world(3, /*seed=*/5);
  world.enable_tracing();
  world.linear();
  world.deploy_all("olsr");

  FaultPlan plan;
  plan.loss_burst(sec(1), 1.0, sec(30), n(1), n(2));  // only 1 -> 2 dies
  world.apply_fault_plan(plan);
  world.run_for(sec(20));

  // 0 <-> 1 stays perfect, so 0 and 1 route to each other; 2 never hears 1.
  EXPECT_TRUE(world.has_route(0, world.addr(1)));
  EXPECT_FALSE(world.has_route(2, world.addr(1)));
  EXPECT_GT(world.medium().stats().dropped_fault, 0u);
}

TEST(FaultInjector, DuplicationDeliversExtraCopies) {
  testbed::SimWorld world(2, /*seed=*/5);
  auto& journal = world.enable_tracing();
  world.full_mesh();

  FaultPlan plan;
  plan.duplicate(Duration{}, 1.0, sec(10));  // every frame doubled
  world.apply_fault_plan(plan);
  world.run_for(msec(1));  // let the t=0 action fire and open its window

  world.node(0).send_control(std::vector<std::uint8_t>{1, 2, 3});
  world.run_for(sec(1));

  // One tx, two rx records (original + duplicate).
  std::size_t tx = count_kind(journal, obs::RecordKind::kFrameTx);
  std::size_t rx = count_kind(journal, obs::RecordKind::kFrameRx);
  EXPECT_EQ(tx, 1u);
  EXPECT_EQ(rx, 2u);
}

TEST(FaultInjector, ReorderWindowShufflesArrivalsDeterministically) {
  auto arrival_order = [](bool reorder) {
    testbed::SimWorld world(2, /*seed=*/5);
    auto& journal = world.enable_tracing();
    world.full_mesh();
    if (reorder) {
      FaultPlan plan;
      plan.reorder(Duration{}, msec(5), sec(10));
      world.apply_fault_plan(plan, /*seed=*/3);
    }
    world.run_for(msec(1));  // identical in both runs; opens the window
    // A salvo of distinct frames launched back-to-back: without jitter they
    // arrive in launch order; with jitter some pair swaps.
    for (std::uint8_t i = 0; i < 8; ++i) {
      world.node(0).send_control(std::vector<std::uint8_t>{i});
    }
    world.run_for(sec(1));
    std::vector<std::uint64_t> order;
    for (const auto& r : journal.snapshot()) {
      if (r.kind == obs::RecordKind::kFrameRx) order.push_back(r.c);
    }
    return order;
  };

  auto plain = arrival_order(false);
  auto shuffled = arrival_order(true);
  ASSERT_EQ(plain.size(), 8u);
  ASSERT_EQ(shuffled.size(), 8u);
  EXPECT_TRUE(std::is_permutation(plain.begin(), plain.end(),
                                  shuffled.begin()));
  EXPECT_NE(plain, shuffled) << "5ms max jitter on back-to-back frames must "
                                "reorder at least one pair";
  // Same plan, same seed: the shuffle itself replays identically.
  EXPECT_EQ(shuffled, arrival_order(true));
}

TEST(FaultInjector, PartitionCutsAndHealRestoresExactly) {
  testbed::SimWorld world(5, /*seed=*/5);
  world.enable_tracing();
  world.linear();
  // An extra long-range chord crossing the cut: must come back after heal.
  world.medium().set_link(world.addr(1), world.addr(3), true);

  FaultPlan plan;
  plan.partition(sec(1), {n(0), n(1), n(2)}, {n(3), n(4)});
  plan.heal(sec(2));
  world.apply_fault_plan(plan);

  world.run_for(msec(1500));
  EXPECT_FALSE(world.medium().has_link(world.addr(2), world.addr(3)));
  EXPECT_FALSE(world.medium().has_link(world.addr(1), world.addr(3)));
  EXPECT_TRUE(world.medium().has_link(world.addr(1), world.addr(2)));

  world.run_for(sec(1));
  EXPECT_TRUE(world.medium().has_link(world.addr(2), world.addr(3)));
  EXPECT_TRUE(world.medium().has_link(world.addr(3), world.addr(2)));
  EXPECT_TRUE(world.medium().has_link(world.addr(1), world.addr(3)));
}

TEST(FaultInjector, CrashedNodeDropsAreJournaledAsNodeDown) {
  testbed::SimWorld world(2, /*seed=*/5);
  auto& journal = world.enable_tracing();
  world.full_mesh();

  FaultPlan plan;
  plan.crash(msec(1), n(1));
  plan.restart(sec(2), n(1));
  world.apply_fault_plan(plan);
  world.run_for(sec(1));

  EXPECT_FALSE(world.node(1).device().is_up());
  world.node(0).send_control(std::vector<std::uint8_t>{42});
  world.run_for(msec(100));
  EXPECT_EQ(count_drops(journal, obs::DropReason::kNodeDown), 1u)
      << "a frame to a crashed node must leave a drop record, not vanish";

  world.run_for(sec(2));
  EXPECT_TRUE(world.node(1).device().is_up());
}

TEST(FaultInjector, InFlightFramesDroppedByLateLinkCutAreJournaled) {
  testbed::SimWorld world(2, /*seed=*/5);
  auto& journal = world.enable_tracing();
  world.full_mesh();

  // Launch a broadcast, cut the link while it is "on the air".
  world.node(0).send_control(std::vector<std::uint8_t>{7});
  world.medium().set_link(world.addr(0), world.addr(1), false);
  world.run_for(sec(1));

  EXPECT_EQ(count_kind(journal, obs::RecordKind::kFrameRx), 0u);
  EXPECT_EQ(count_drops(journal, obs::DropReason::kLinkLost), 1u);
  EXPECT_EQ(world.medium().stats().dropped_link_lost, 1u);
}

TEST(FaultInjector, ClockDriftIsBoundedAndExpires) {
  testbed::SimWorld world(2, /*seed=*/5);
  world.full_mesh();

  FaultPlan plan;
  plan.clock_drift(Duration{}, n(0), 50.0, sec(1));  // absurd: clamped to 2.0
  world.apply_fault_plan(plan);
  world.run_for(msec(10));
  EXPECT_DOUBLE_EQ(world.medium().clock_drift(world.addr(0)), 2.0);

  world.run_for(sec(2));  // window over: drift cleared
  EXPECT_DOUBLE_EQ(world.medium().clock_drift(world.addr(0)), 1.0);
}

TEST(FaultInjector, SamePlanAndSeedsReplayBitIdentically) {
  auto run = [](std::uint64_t fault_seed) {
    testbed::SimWorld world(4, /*seed=*/77);
    auto& journal = world.enable_tracing();
    world.linear();
    world.deploy_all("olsr");
    FaultPlan plan = FaultPlan::parse(
        "at 2s loss 0.3 for 3s\n"
        "at 4s dup 0.2 for 2s\n"
        "at 6s reorder 2ms for 2s\n"
        "at 3s crash 1\n"
        "at 5s restart 1\n");
    world.apply_fault_plan(plan, fault_seed);
    world.run_for(sec(12));
    return std::pair{journal.ordered_digest(), journal.total()};
  };
  auto a = run(9);
  auto b = run(9);
  EXPECT_EQ(a, b) << "same (world seed, plan, fault seed) must replay "
                     "bit-identically";
  auto c = run(10);
  EXPECT_NE(a.first, c.first)
      << "a different fault seed must hit different frames";
}

// ------------------------------------------------- retry / rollback path

/// Registers a protocol whose builder throws `failures` times before
/// delegating to the real DYMO builder.
void register_flaky(core::Manetkit& kit, const std::string& name,
                    int failures, int* attempts) {
  kit.register_protocol(
      name, 20,
      [failures, attempts](core::Manetkit& k) {
        if ((*attempts)++ < failures) {
          throw std::runtime_error("transient bind failure");
        }
        return proto::build_dymo_cf(k);
      },
      "reactive");
}

TEST(ReplaceProtocol, TransientBindFailureRetriesWithBackoff) {
  testbed::SimWorld world(2, /*seed=*/5);
  auto& journal = world.enable_tracing();
  world.full_mesh();
  auto& kit = world.kit(0);
  kit.deploy("dymo");

  int attempts = 0;
  register_flaky(kit, "flaky", /*failures=*/2, &attempts);

  core::Manetkit::ReplaceOptions opts;
  opts.max_attempts = 4;
  opts.initial_backoff = msec(10);
  auto report = kit.replace_protocol("dymo", "flaky", opts);

  EXPECT_TRUE(report.committed);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_TRUE(kit.is_deployed("flaky"));
  EXPECT_FALSE(kit.is_deployed("dymo"));

  // Backoff is observable through the metrics registry: two retries at
  // 10ms + 20ms (exponential), and the journal carries the kRetry phases.
  EXPECT_EQ(kit.metrics().counter_value("fm.replace_retries"), 2u);
  EXPECT_EQ(kit.metrics().counter_value("fm.replace_backoff_us"), 30'000u);
  EXPECT_EQ(kit.metrics().counter_value("fm.replace_commits"), 1u);
  EXPECT_EQ(kit.metrics().counter_value("fm.replace_rollbacks"), 0u);

  std::size_t retries = 0;
  for (const auto& r : journal.snapshot()) {
    if (r.kind == obs::RecordKind::kReconfig &&
        (r.a & 0xff) ==
            static_cast<std::uint64_t>(obs::ReconfigPhase::kRetry)) {
      ++retries;
      EXPECT_GE(r.a >> 8, 10'000u);  // the recorded backoff for this retry
    }
  }
  EXPECT_EQ(retries, 2u);
}

TEST(ReplaceProtocol, PermanentFailureRollsBackBindingGraphAndState) {
  testbed::SimWorld world(2, /*seed=*/5);
  world.enable_invariants();
  world.full_mesh();
  auto& kit = world.kit(0);
  auto* dymo = kit.deploy("dymo");

  // Seed recognisable protocol state, snapshot the binding graph.
  proto::dymo_state(*dymo)->update_route(99, 1, 98, 1, TimePoint{0}, sec(60));
  std::vector<std::pair<std::string, int>> before;
  for (auto* u : kit.manager().units()) {
    before.emplace_back(u->unit_name(), kit.layer_of(u->unit_name()));
  }

  int attempts = 0;
  register_flaky(kit, "doomed", /*failures=*/1'000'000, &attempts);

  core::Manetkit::ReplaceOptions opts;
  opts.max_attempts = 3;
  auto report = kit.replace_protocol("dymo", "doomed", opts);

  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_FALSE(report.error.empty());
  EXPECT_FALSE(kit.is_deployed("doomed"));
  ASSERT_TRUE(kit.is_deployed("dymo"));
  EXPECT_TRUE(kit.protocol("dymo")->running());
  EXPECT_EQ(kit.metrics().counter_value("fm.replace_rollbacks"), 1u);

  // The prior binding graph is restored unit-for-unit...
  std::vector<std::pair<std::string, int>> after;
  for (auto* u : kit.manager().units()) {
    after.emplace_back(u->unit_name(), kit.layer_of(u->unit_name()));
  }
  EXPECT_EQ(before, after);
  // ...the carried S element went back in...
  auto* st = proto::dymo_state(*kit.protocol("dymo"));
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->route_to(99).has_value());
  // ...and the whole failed excursion upset no routing invariant.
  world.run_for(sec(2));
  EXPECT_TRUE(world.checker()->violations().empty());
  EXPECT_EQ(world.checker()->check_all(world.now().us), 0u);
}

TEST(ReplaceProtocol, SwitchProtocolThrowsButRollsBackOnFailure) {
  testbed::SimWorld world(1, /*seed=*/5);
  auto& kit = world.kit(0);
  kit.deploy("dymo");
  EXPECT_THROW(kit.switch_protocol("dymo", "no_such_builder", false),
               std::logic_error);
  EXPECT_TRUE(kit.is_deployed("dymo"))
      << "a failed switch must leave the prior protocol live";
  EXPECT_TRUE(kit.protocol("dymo")->running());
}

}  // namespace
}  // namespace mk
