// Monolithic comparators: they must implement the same protocol semantics as
// the MANETKit versions (convergence, discovery, RERR) — otherwise Tables 1
// and 2 would compare apples to oranges.
#include <gtest/gtest.h>

#include "testbed/world.hpp"

namespace mk::baseline {
namespace {

TEST(Olsrd, LinearChainConverges) {
  testbed::SimWorld world(5);
  world.linear();
  for (std::size_t i = 0; i < 5; ++i) world.olsrd(i);
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  EXPECT_EQ(world.node(0).kernel_table().lookup(world.addr(4))->metric, 4u);
}

TEST(Olsrd, MiddleNodeBecomesMpr) {
  testbed::SimWorld world(3);
  world.linear();
  for (std::size_t i = 0; i < 3; ++i) world.olsrd(i);
  world.run_for(sec(30));
  EXPECT_TRUE(world.olsrd(0).mprs().count(world.addr(1)) > 0);
  EXPECT_TRUE(world.olsrd(1).mpr_selectors().count(world.addr(0)) > 0);
}

TEST(Olsrd, LinkBreakLosesRoutes) {
  testbed::SimWorld world(4);
  world.linear();
  for (std::size_t i = 0; i < 4; ++i) world.olsrd(i);
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  world.medium().set_link(world.addr(1), world.addr(2), false);
  world.run_for(sec(25));
  EXPECT_FALSE(world.has_route(0, world.addr(3)));
}

TEST(Olsrd, DataDeliveryEndToEnd) {
  testbed::SimWorld world(5);
  world.linear();
  for (std::size_t i = 0; i < 5; ++i) world.olsrd(i);
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  world.node(0).forwarding().send(world.addr(4), 512);
  world.run_for(sec(1));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);
}

TEST(Dymoum, DiscoveryAndBufferedDelivery) {
  testbed::SimWorld world(5);
  world.linear();
  for (std::size_t i = 0; i < 5; ++i) world.dymoum(i);
  world.run_for(sec(1));

  EXPECT_TRUE(world.node(0).forwarding().send(world.addr(4), 512));
  world.run_for(sec(3));
  EXPECT_TRUE(world.dymoum(0).has_route(world.addr(4)));
  EXPECT_EQ(world.node(4).deliveries().size(), 1u);
}

TEST(Dymoum, PathAccumulationLearnsIntermediates) {
  testbed::SimWorld world(5);
  world.linear();
  for (std::size_t i = 0; i < 5; ++i) world.dymoum(i);
  world.run_for(sec(1));
  world.node(0).forwarding().send(world.addr(4), 64);
  world.run_for(sec(3));
  EXPECT_TRUE(world.dymoum(4).has_route(world.addr(2)));
  EXPECT_TRUE(world.dymoum(0).has_route(world.addr(3)));
}

TEST(Dymoum, RoutesExpire) {
  testbed::SimWorld world(3);
  world.linear();
  for (std::size_t i = 0; i < 3; ++i) world.dymoum(i);
  world.run_for(sec(1));
  world.node(0).forwarding().send(world.addr(2), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.dymoum(0).has_route(world.addr(2)));
  world.run_for(sec(8));
  EXPECT_FALSE(world.dymoum(0).has_route(world.addr(2)));
}

TEST(Dymoum, GivesUpOnUnreachable) {
  testbed::SimWorld world(2);
  world.full_mesh();
  for (std::size_t i = 0; i < 2; ++i) world.dymoum(i);
  world.run_for(sec(1));
  world.node(0).forwarding().send(net::addr_for_index(77), 64);
  world.run_for(sec(20));
  EXPECT_EQ(world.dymoum(0).buffered_count(), 0u);
}

TEST(Dymoum, LinkBreakInvalidatesViaRerr) {
  testbed::SimWorld world(4);
  world.linear();
  for (std::size_t i = 0; i < 4; ++i) world.dymoum(i);
  world.run_for(sec(1));
  world.node(0).forwarding().send(world.addr(3), 64);
  world.run_for(sec(3));
  ASSERT_TRUE(world.dymoum(0).has_route(world.addr(3)));

  world.medium().set_link(world.addr(2), world.addr(3), false);
  world.node(0).forwarding().send(world.addr(3), 64);  // node 2 hits failure
  world.run_for(sec(2));
  EXPECT_FALSE(world.dymoum(0).has_route(world.addr(3)));
}

// Cross-checks framework vs monolith semantics on identical scenarios.
TEST(Parity, OlsrAndOlsrdComputeSameRoutes) {
  testbed::SimWorld mk_world(5), mono_world(5);
  mk_world.linear();
  mono_world.linear();
  mk_world.deploy_all("olsr");
  for (std::size_t i = 0; i < 5; ++i) mono_world.olsrd(i);
  ASSERT_TRUE(mk_world.run_until_routed(sec(60)).has_value());
  ASSERT_TRUE(mono_world.run_until_routed(sec(60)).has_value());

  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      auto a = mk_world.node(i).kernel_table().lookup(mk_world.addr(j));
      auto b = mono_world.node(i).kernel_table().lookup(mono_world.addr(j));
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a->next_hop, b->next_hop) << "node " << i << " -> " << j;
      EXPECT_EQ(a->metric, b->metric);
    }
  }
}

TEST(Parity, DymoAndDymoumDiscoverEquivalentRoutes) {
  testbed::SimWorld mk_world(5), mono_world(5);
  mk_world.linear();
  mono_world.linear();
  mk_world.deploy_all("dymo");
  for (std::size_t i = 0; i < 5; ++i) mono_world.dymoum(i);
  mk_world.run_for(sec(5));
  mono_world.run_for(sec(5));

  mk_world.node(0).forwarding().send(mk_world.addr(4), 64);
  mono_world.node(0).forwarding().send(mono_world.addr(4), 64);
  mk_world.run_for(sec(3));
  mono_world.run_for(sec(3));

  auto a = mk_world.node(0).kernel_table().lookup(mk_world.addr(4));
  auto b = mono_world.node(0).kernel_table().lookup(mono_world.addr(4));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->next_hop, b->next_hop);
  EXPECT_EQ(a->metric, b->metric);
}

}  // namespace
}  // namespace mk::baseline
