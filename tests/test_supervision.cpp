// Supervision layer (ISSUE 5): dispatch-boundary fault isolation, the
// deterministic charged-cost watchdog, circuit-breaker quarantine with
// Framework-Manager route-around, the self-healing recovery ladder
// (restart-with-S-element -> fallback -> escalation through the policy
// ContextView), misbehaviour injection from fault plans, and the chaos
// conformance bar: a quarantine-under-partition scenario replayed for
// ordered-digest equality with zero invariant violations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "fault/plan.hpp"
#include "support/alloc_probe.hpp"
#include "util/log.hpp"
#include "policy/policy_engine.hpp"
#include "protocols/dymo/dymo_cf.hpp"
#include "protocols/mpr/mpr_cf.hpp"
#include "supervision/supervisor.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

using supervision::Misbehaviour;
using supervision::Supervisor;
using supervision::SupervisorOptions;
using supervision::UnitHealth;

/// Shared across victim re-instantiations (the builder captures a pointer),
/// so delivery counts survive supervised restarts.
struct VictimLog {
  int delivered = 0;
  std::vector<std::uint16_t> seqnums;
};

class VictimHandler final : public core::EventHandler {
 public:
  VictimHandler(VictimLog* log, Duration charge)
      : core::EventHandler("test.VictimHandler", {"EVT_V"}),
        log_(log),
        charge_(charge) {
    set_instance_name("Victim");
  }

  void handle(const ev::Event& event, core::ProtocolContext&) override {
    ++log_->delivered;
    if (event.has_msg() && event.msg()->seqnum.has_value()) {
      log_->seqnums.push_back(*event.msg()->seqnum);
    }
    if (charge_.count() > 0) Supervisor::charge(charge_);
  }

 private:
  VictimLog* log_;
  Duration charge_;
};

std::unique_ptr<core::ManetProtocolCf> make_simple_cf(
    core::Manetkit& k, const std::string& name,
    std::vector<std::string> required, std::vector<std::string> provided,
    VictimLog* log = nullptr, Duration charge = Duration{0}) {
  auto cf = std::make_unique<core::ManetProtocolCf>(
      k.kernel(), name, k.scheduler(), k.self(), &k.system().sys_state());
  if (log != nullptr) {
    cf->add_handler(std::make_unique<VictimHandler>(log, charge));
  }
  cf->declare_events(required, provided);
  return cf;
}

void register_victim(core::Manetkit& kit, VictimLog* log,
                     Duration charge = Duration{0}) {
  kit.register_protocol("victim", 10, [log, charge](core::Manetkit& k) {
    return make_simple_cf(k, "victim", {"EVT_V"}, {}, log, charge);
  });
}

void register_producer(core::Manetkit& kit) {
  kit.register_protocol("producer", 20, [](core::Manetkit& k) {
    return make_simple_cf(k, "producer", {}, {"EVT_V"});
  });
}

void emit_v(core::Manetkit& kit, int n = 1) {
  for (int i = 0; i < n; ++i) {
    kit.protocol("producer")->emit(ev::Event(ev::etype("EVT_V")));
  }
}

std::size_t count_kind(const obs::Journal& journal, obs::RecordKind kind) {
  std::size_t count = 0;
  for (const auto& r : journal.snapshot()) {
    if (r.kind == kind) ++count;
  }
  return count;
}

// ------------------------------------------------------------- isolation

TEST(Supervision, HealthyDispatchIsTransparent) {
  testbed::SimWorld world(1);
  world.enable_supervision();
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");

  emit_v(world.kit(0), 3);
  EXPECT_EQ(log.delivered, 3);
  EXPECT_EQ(world.supervisor(0)->faults("victim"), 0u);
  EXPECT_EQ(world.supervisor(0)->health("victim"), UnitHealth::kHealthy);
  EXPECT_GE(world.kit(0).metrics().counter_value("sup.guarded_dispatches"), 3u);
}

TEST(Supervision, QuarantineAfterThresholdFaultsThenRecovery) {
  testbed::SimWorld world(1);
  world.enable_tracing();
  SupervisorOptions opts;
  opts.fault_threshold = 3;
  opts.initial_backoff = msec(200);
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(world.kit(0), 2);
  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy) << "below threshold";
  emit_v(world.kit(0));
  EXPECT_EQ(sup.health("victim"), UnitHealth::kQuarantined);
  EXPECT_EQ(sup.faults("victim"), 3u);
  EXPECT_EQ(log.delivered, 0) << "throw mode never reaches the handler";

  // Routed around: emissions towards the quarantined unit vanish.
  emit_v(world.kit(0), 5);
  EXPECT_EQ(sup.faults("victim"), 3u);
  EXPECT_EQ(log.delivered, 0);

  // Root cause fixed; the recovery ladder re-instantiates the unit.
  sup.set_misbehaviour("victim", Misbehaviour::kNone);
  world.run_for(msec(500));
  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy);
  emit_v(world.kit(0));
  EXPECT_EQ(log.delivered, 1) << "recovered unit must receive events again";

  const obs::Journal& journal = *world.journal();
  EXPECT_GE(count_kind(journal, obs::RecordKind::kComponentFault), 3u);
  EXPECT_GE(count_kind(journal, obs::RecordKind::kQuarantine), 3u)
      << "expect at least enter + restart + recover records";
}

TEST(Supervision, SlidingWindowForgetsOldFaults) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 3;
  opts.fault_window = msec(500);
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  for (int i = 0; i < 5; ++i) {
    emit_v(world.kit(0));
    world.run_for(sec(1));  // each fault ages out before the next lands
  }
  EXPECT_EQ(sup.faults("victim"), 5u) << "lifetime count keeps growing";
  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy)
      << "never 3 faults inside one 500ms window";
}

// -------------------------------------------------------------- watchdog

TEST(Supervision, WatchdogFlagsChargedDeadlineOverrun) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.deadline = msec(100);
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log, /*charge=*/msec(250));
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");

  emit_v(world.kit(0));
  EXPECT_EQ(log.delivered, 1) << "deadline overruns still deliver";
  EXPECT_EQ(world.supervisor(0)->faults("victim"), 1u);
  EXPECT_EQ(world.supervisor(0)->health("victim"), UnitHealth::kQuarantined);
  EXPECT_EQ(world.kit(0).metrics().counter_value("sup.deadline_faults"), 1u);
}

TEST(Supervision, ChargeUnderDeadlineIsNotAFault) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.deadline = msec(100);
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log, /*charge=*/msec(99));
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");

  emit_v(world.kit(0), 10);
  EXPECT_EQ(log.delivered, 10);
  EXPECT_EQ(world.supervisor(0)->faults("victim"), 0u)
      << "charge does not accumulate across dispatches";
}

// --------------------------------------------------- misbehaviour modes

TEST(Supervision, StallMisbehaviourDeliversButTripsWatchdog) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 3;
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("victim", Misbehaviour::kStall);
  emit_v(world.kit(0));
  EXPECT_EQ(log.delivered, 1) << "stall delivers, unlike throw";
  EXPECT_EQ(sup.faults("victim"), 1u);
  EXPECT_EQ(world.kit(0).metrics().counter_value("sup.deadline_faults"), 1u);
}

TEST(Supervision, CorruptMisbehaviourMutatesDeterministically) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 100;  // observe the mutation, not the breaker
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");
  world.supervisor(0)->set_misbehaviour("victim", Misbehaviour::kCorrupt);

  for (int i = 0; i < 2; ++i) {
    ev::Event e(ev::etype("EVT_V"));
    pbb::Message m;
    m.seqnum = 100;
    e.set_msg(std::move(m));
    world.kit(0).protocol("producer")->emit(std::move(e));
  }
  ASSERT_EQ(log.seqnums.size(), 2u);
  // Salted per injection: both copies damaged, differently, reproducibly.
  EXPECT_EQ(log.seqnums[0], 100u ^ static_cast<std::uint16_t>(1u * 0x9e37u));
  EXPECT_EQ(log.seqnums[1], 100u ^ static_cast<std::uint16_t>(2u * 0x9e37u));
  EXPECT_EQ(world.supervisor(0)->faults("victim"), 2u)
      << "corrupt injections are flagged as output-integrity faults";
}

// ------------------------------------------------------- recovery ladder

TEST(Supervision, SElementSurvivesSupervisedRestart) {
  testbed::SimWorld world(2);
  world.linear();
  world.deploy_all("dymo");
  SupervisorOptions opts;
  opts.fault_threshold = 2;
  opts.fault_window = sec(5);
  opts.initial_backoff = sec(2);
  world.enable_supervision(opts);
  world.run_for(sec(2));

  // A recognisable long-lived route seeded into node 0's S element.
  auto* st = proto::dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st, nullptr);
  st->update_route(99, 1, 98, 1, TimePoint{0}, sec(600));
  const std::size_t routes_before = st->route_count();

  // The plan text drives the whole chain: parser -> injector -> supervisor.
  // Let the 50ms action arm BEFORE any traffic: reactive discovery completes
  // in sim-zero time, so a send racing the arm would cache a route and leave
  // the misbehaving unit with nothing to deliver.
  world.apply_fault_plan(
      fault::FaultPlan::parse("at 50ms misbehave 0 dymo throw for 1500ms\n"));
  world.run_for(msec(100));

  // Deterministic deliveries into the misbehaving unit: a poker CF provides
  // RERR_IN, one of DYMO's required events. In throw mode the guard faults
  // at the dispatch boundary, before any handler would parse the payload —
  // this sidesteps DYMO's own route-request retry backoff, which is too slow
  // to land two faults inside the misbehave window.
  world.kit(0).register_protocol("poker", 15, [](core::Manetkit& k) {
    return make_simple_cf(k, "poker", {}, {"RERR_IN"});
  });
  world.kit(0).deploy("poker");
  for (int i = 0; i < 3; ++i) {
    world.kit(0).protocol("poker")->emit(ev::Event(ev::etype("RERR_IN")));
    world.run_for(msec(100));
  }
  // Meanwhile real discovery traffic aimed at the quarantined unit vanishes
  // instead of crashing the node.
  for (int i = 0; i < 4; ++i) {
    world.node(1).forwarding().send(world.addr(0), 32);
    world.run_for(msec(300));
  }
  Supervisor& sup = *world.supervisor(0);
  EXPECT_GE(sup.faults("dymo"), 2u);
  EXPECT_EQ(sup.health("dymo"), UnitHealth::kQuarantined);

  // Misbehave window closed at 1.65s; recovery (backoff 2s) lands after it.
  world.run_for(sec(3));
  EXPECT_EQ(sup.health("dymo"), UnitHealth::kHealthy);
  EXPECT_GE(world.kit(0).metrics().counter_value("sup.restart_attempts"), 1u);
  EXPECT_GE(world.kit(0).metrics().counter_value("sup.recoveries"), 1u);
  auto* st_after = proto::dymo_state(*world.kit(0).protocol("dymo"));
  ASSERT_NE(st_after, nullptr);
  // The restarted CF is a fresh instance, but the S element is transplanted
  // wholesale (PR 3 state carry): the very same component, routes intact.
  EXPECT_EQ(st_after, st);
  EXPECT_GE(st_after->route_count(), routes_before);  // re-discovery may add
  EXPECT_TRUE(st_after->route_to(99).has_value())
      << "seeded long-lived route survived the supervised restart";
}

TEST(Supervision, FallbackUndeploysExhaustedUnitWhenRoutingCoDeployed) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.max_restarts = 1;
  opts.initial_backoff = msec(100);
  world.enable_supervision(opts);
  auto& kit = world.kit(0);

  VictimLog log;
  int builds = 0;
  kit.register_protocol(
      "flaky", 10,
      [&](core::Manetkit& k) {
        // Build #2 is the supervised restart attempt: fail it so the ladder
        // exhausts. Build #3 is the rollback, which must succeed.
        if (++builds == 2) throw std::runtime_error("still broken");
        return make_simple_cf(k, "flaky", {"EVT_V"}, {}, &log);
      },
      "reactive");
  register_producer(kit);
  kit.deploy("flaky");
  kit.deploy("producer");
  kit.deploy("olsr");  // the healthy routing fallback
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("flaky", Misbehaviour::kThrow);
  emit_v(kit);
  EXPECT_EQ(sup.health("flaky"), UnitHealth::kQuarantined);
  world.run_for(msec(300));  // restart fails, ladder exhausts

  EXPECT_EQ(sup.health("flaky"), UnitHealth::kFailed);
  EXPECT_FALSE(kit.is_deployed("flaky"))
      << "fallback undeploys the failed unit";
  EXPECT_TRUE(kit.is_deployed("olsr"));
  EXPECT_EQ(kit.metrics().counter_value("sup.fallbacks"), 1u);
  EXPECT_EQ(kit.metrics().counter_value("sup.escalations"), 0u);
}

TEST(Supervision, EscalationSurfacesHealthToPolicyEngine) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.max_restarts = 1;
  opts.initial_backoff = msec(100);
  world.enable_supervision(opts);
  auto& kit = world.kit(0);

  VictimLog log;
  int builds = 0;
  kit.register_protocol(
      "flaky", 10,
      [&](core::Manetkit& k) {
        if (++builds == 2) throw std::runtime_error("still broken");
        return make_simple_cf(k, "flaky", {"EVT_V"}, {}, &log);
      },
      "reactive");
  register_producer(kit);
  kit.deploy("flaky");
  kit.deploy("producer");
  // No co-deployed routing protocol: nothing to fall back to.
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("flaky", Misbehaviour::kThrow);
  emit_v(kit);
  world.run_for(msec(300));

  EXPECT_EQ(sup.health("flaky"), UnitHealth::kFailed);
  EXPECT_TRUE(kit.is_deployed("flaky"))
      << "escalation keeps the unit deployed (routed around)";
  EXPECT_EQ(kit.metrics().counter_value("sup.escalations"), 1u);

  // The failure reaches the policy plane through the ContextView...
  policy::Engine engine(kit);
  policy::ContextView view = engine.snapshot();
  EXPECT_TRUE(view.failed("flaky"));
  EXPECT_TRUE(view.degraded("flaky"));

  // ...where an escalation rule swaps in a replacement protocol.
  sup.set_misbehaviour("flaky", Misbehaviour::kNone);
  engine.add_rule(policy::make_health_escalation_rule("flaky", "dymo"));
  auto fired = engine.evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(kit.is_deployed("flaky"));
  EXPECT_TRUE(kit.is_deployed("dymo"));
}

// -------------------------------------------------------- timer-fire path

TEST(Supervision, TimerExceptionIsTrappedAndJournaled) {
  testbed::SimWorld world(1);
  world.enable_tracing();
  world.enable_supervision();
  world.scheduler().schedule_after(
      msec(10), [] { throw std::runtime_error("timer boom"); });
  EXPECT_NO_THROW(world.run_for(msec(50)));

  bool found = false;
  for (const auto& r : world.journal()->snapshot()) {
    if (r.kind == obs::RecordKind::kComponentFault &&
        r.b == static_cast<std::uint64_t>(obs::ComponentFaultReason::kTimer)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "trapped timer fault must be journaled";
}

// -------------------------------------------------- threaded dispatch path

TEST(Supervision, PoolExecutorFaultsAreCountedExactly) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1000;  // count, never trip
  world.enable_supervision(opts);
  VictimLog log;
  register_victim(world.kit(0), &log);
  register_producer(world.kit(0));
  world.kit(0).deploy("victim");
  world.kit(0).deploy("producer");
  world.kit(0).manager().set_concurrency(
      core::ConcurrencyModel::kThreadPerNMessages, /*threads=*/4, /*batch=*/4);

  world.supervisor(0)->set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(world.kit(0), 50);
  world.kit(0).manager().drain();
  EXPECT_EQ(world.supervisor(0)->faults("victim"), 50u);
  EXPECT_EQ(log.delivered, 0);
  world.kit(0).manager().set_concurrency(
      core::ConcurrencyModel::kSingleThreaded);
}

// ------------------------------------------------------ chaos conformance

std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

struct ChaosSig {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
  std::size_t violations = 0;
  bool operator==(const ChaosSig&) const = default;
};

ChaosSig finish(testbed::SimWorld& world) {
  world.checker()->check_all(world.now().us);
  return ChaosSig{world.journal()->ordered_digest(),
                  world.journal()->canonical_digest(),
                  world.journal()->total(),
                  world.checker()->violations().size()};
}

/// Scenario (the ISSUE 5 acceptance bar): the network is partitioned and,
/// inside the cut, node 1's MPR CF — an OLSR sub-component — starts throwing
/// on every dispatch. The breaker must trip and route around it while the
/// node's OLSR unit keeps routing; after the misbehave window the ladder
/// restarts the CF (S element carried) and the healed network reconverges.
ChaosSig run_quarantine_under_partition(std::uint64_t seed) {
  testbed::SimWorld world(5, seed);
  world.enable_invariants();
  SupervisorOptions opts;
  opts.fault_threshold = 2;
  opts.fault_window = sec(10);
  opts.initial_backoff = sec(5);  // recovery lands after the window closes
  world.enable_supervision(opts);
  world.linear();
  world.deploy_all("olsr");
  EXPECT_TRUE(world.run_until_routed(sec(90)).has_value());

  // Node 3 sits in the interior of the larger partition group: its own links
  // stay up, so the restarted CF's carried-but-aged topology cannot park
  // routes on the severed boundary link (those would be flagged as stale by
  // the invariant checker — correctly — at the boundary node itself).
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "at 1s partition 0 1 | 2 3 4\n"
      "at 2s misbehave 3 mpr throw for 4s\n"
      "at 10s heal\n");
  TimePoint armed = world.now();
  std::size_t route_dels_before =
      count_kind(*world.journal(), obs::RecordKind::kRouteDel);
  world.apply_fault_plan(plan, seed ^ 0xbadf00d);

  supervision::Supervisor& sup = *world.supervisor(3);
  bool quarantined = false;
  for (int i = 0; i < 80 && !quarantined; ++i) {
    world.run_for(msec(100));
    quarantined = sup.health("mpr") == UnitHealth::kQuarantined;
  }
  EXPECT_TRUE(quarantined) << "misbehaving MPR CF must trip the breaker";
  EXPECT_GE(sup.faults("mpr"), 2u);
  // The node keeps routing while its sub-component is quarantined.
  EXPECT_TRUE(world.has_route(3, world.addr(4)));

  // Mid-cut (the partition holds from +1s to +10s): the soft-state layer
  // must have expired the cross-cut link/topology entries by now, torn the
  // severed routes out of the kernel tables (journaled kRouteDel), and left
  // the network observably not fully routed — no stale-route limbo.
  if (world.now() < armed + sec(9)) {
    world.run_until(armed + sec(9));
  }
  EXPECT_GT(count_kind(*world.journal(), obs::RecordKind::kRouteDel),
            route_dels_before)
      << "partition must journal route deletions before the heal";
  EXPECT_FALSE(world.fully_routed())
      << "severed routes must lapse mid-partition, not linger until heal";

  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    world.run_for(msec(100));
    recovered = sup.health("mpr") == UnitHealth::kHealthy;
  }
  EXPECT_TRUE(recovered) << "ladder must restart the CF post-window";
  EXPECT_NE(proto::mpr_state(*world.kit(3).protocol("mpr")), nullptr);

  EXPECT_TRUE(world.run_until_routed(sec(180)).has_value())
      << "healed network must fully reconverge with the recovered CF";
  EXPECT_GE(count_kind(*world.journal(), obs::RecordKind::kQuarantine), 2u);
  return finish(world);
}

TEST(ChaosConformance, QuarantineUnderPartitionReplaysIdentically) {
  ChaosSig a = run_quarantine_under_partition(chaos_seed());
  ChaosSig b = run_quarantine_under_partition(chaos_seed());
  EXPECT_EQ(a, b) << "same-seed supervised chaos rerun diverged";
  EXPECT_EQ(a.violations, 0u);
  EXPECT_GT(a.total, 0u);
}

// --------------------------- variant-aware recovery (ISSUE 10 satellite)

TEST(Supervision, ProbationRetripRestartsStatelessIntoVariant) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.max_restarts = 3;
  opts.fault_window = sec(5);  // doubles as the probation length
  opts.initial_backoff = msec(100);
  world.enable_supervision(opts);
  auto& kit = world.kit(0);

  VictimLog log;
  register_victim(kit, &log);
  register_producer(kit);
  kit.register_protocol("victim-lite", 10, [&log](core::Manetkit& k) {
    return make_simple_cf(k, "victim-lite", {"EVT_V"}, {}, &log);
  });
  kit.deploy("victim");
  kit.deploy("producer");
  Supervisor& sup = *world.supervisor(0);
  sup.set_recovery_variant("victim", "victim-lite");
  EXPECT_EQ(sup.recovery_variant("victim"), "victim-lite");

  // Trip #1: the ordinary rung — in-place restart, S element carried.
  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(kit);
  EXPECT_EQ(sup.health("victim"), UnitHealth::kQuarantined);
  sup.set_misbehaviour("victim", Misbehaviour::kNone);
  world.run_for(msec(300));
  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy);
  EXPECT_TRUE(kit.is_deployed("victim"));
  EXPECT_EQ(kit.metrics().counter_value("sup.variant_restarts"), 0u);

  // Trip #2 lands inside probation: the carried S element is now suspect,
  // so the next rung drops it and restarts into the cheaper variant.
  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(kit);
  EXPECT_EQ(sup.health("victim"), UnitHealth::kQuarantined);
  sup.set_misbehaviour("victim", Misbehaviour::kNone);
  world.run_for(msec(600));

  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy);
  EXPECT_FALSE(kit.is_deployed("victim"))
      << "the variant restart must land on victim-lite, not victim";
  EXPECT_TRUE(kit.is_deployed("victim-lite"));
  EXPECT_EQ(kit.metrics().counter_value("sup.variant_restarts"), 1u);
  EXPECT_EQ(kit.metrics().counter_value("sup.stateless_restarts"), 0u)
      << "a variant restart is counted as such, not as plain stateless";
  // No replication CF is deployed here, so no rehydrate was requested.
  EXPECT_EQ(kit.metrics().counter_value("sup.rehydrate_requests"), 0u);

  // The variant processes traffic where the original kept faulting.
  int before = log.delivered;
  emit_v(kit);
  EXPECT_EQ(log.delivered, before + 1);
}

TEST(Supervision, ProbationRetripWithoutVariantRestartsStateless) {
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 1;
  opts.max_restarts = 3;
  opts.fault_window = sec(5);
  opts.initial_backoff = msec(100);
  world.enable_supervision(opts);
  auto& kit = world.kit(0);

  VictimLog log;
  register_victim(kit, &log);
  register_producer(kit);
  kit.deploy("victim");
  kit.deploy("producer");
  Supervisor& sup = *world.supervisor(0);

  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(kit);
  sup.set_misbehaviour("victim", Misbehaviour::kNone);
  world.run_for(msec(300));
  ASSERT_EQ(sup.health("victim"), UnitHealth::kHealthy);

  sup.set_misbehaviour("victim", Misbehaviour::kThrow);
  emit_v(kit);
  sup.set_misbehaviour("victim", Misbehaviour::kNone);
  world.run_for(msec(600));

  EXPECT_EQ(sup.health("victim"), UnitHealth::kHealthy);
  EXPECT_TRUE(kit.is_deployed("victim"));
  EXPECT_EQ(kit.metrics().counter_value("sup.stateless_restarts"), 1u);
  EXPECT_EQ(kit.metrics().counter_value("sup.variant_restarts"), 0u);
}

// ----------------------- per-dispatch allocation budget (ISSUE 10 satellite)

class HogHandler final : public core::EventHandler {
 public:
  HogHandler() : core::EventHandler("test.HogHandler", {"EVT_V"}) {
    set_instance_name("Hog");
  }
  void handle(const ev::Event&, core::ProtocolContext&) override {
    // ~256 KiB of churn inside one dispatch — far past any sane budget.
    std::vector<std::unique_ptr<std::uint8_t[]>> keep;
    for (int i = 0; i < 64; ++i) {
      keep.push_back(std::make_unique<std::uint8_t[]>(4096));
    }
  }
};

TEST(Supervision, AllocBudgetOverrunIsAComponentFault) {
  if (!mk::test::AllocProbe::available()) {
    GTEST_SKIP() << "allocation interposer not live (sanitizer build)";
  }
  testbed::SimWorld world(1);
  SupervisorOptions opts;
  opts.fault_threshold = 2;
  opts.alloc_budget = 64 * 1024;
  world.enable_supervision(opts);
  auto& kit = world.kit(0);

  kit.register_protocol("hog", 10, [](core::Manetkit& k) {
    auto cf = std::make_unique<core::ManetProtocolCf>(
        k.kernel(), "hog", k.scheduler(), k.self(), &k.system().sys_state());
    cf->add_handler(std::make_unique<HogHandler>());
    cf->declare_events({"EVT_V"}, {});
    return cf;
  });
  register_producer(kit);
  kit.deploy("hog");
  kit.deploy("producer");
  Supervisor& sup = *world.supervisor(0);

  emit_v(kit);
  EXPECT_EQ(sup.faults("hog"), 1u)
      << "heap churn past the budget must be charged as a component fault";
  EXPECT_EQ(kit.metrics().counter_value("sup.alloc_budget_faults"), 1u);
  EXPECT_EQ(sup.health("hog"), UnitHealth::kHealthy);  // threshold is 2

  // The overrunning unit climbs the same breaker as a throwing one.
  emit_v(kit);
  EXPECT_EQ(sup.faults("hog"), 2u);
  EXPECT_EQ(sup.health("hog"), UnitHealth::kQuarantined);
}

}  // namespace
}  // namespace mk
