// The unified soft-state expiry layer (ISSUE 6): per-entry deadlines on the
// scheduler replace the protocols' periodic sweep loops, so partition-severed
// state lapses at its exact RFC holding time — journaled as kSoftExpire and
// followed by kRouteDel — instead of lingering until a heal. Also the
// heap-vs-wheel conformance bar: both scheduler backends must produce
// bit-identical ordered trace digests for the same seed.
#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/journal.hpp"
#include "protocols/neighbor/neighbor_cf.hpp"
#include "testbed/world.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

std::size_t count_kind(const obs::Journal& journal, obs::RecordKind kind) {
  std::size_t count = 0;
  for (const auto& r : journal.snapshot()) {
    if (r.kind == kind) ++count;
  }
  return count;
}

// ------------------------------------------------------- per-entry deadlines

TEST(SoftState, SilentNeighborLapsesAtItsHoldTimeWithoutSweeps) {
  testbed::SimWorld world(2);
  world.enable_tracing();
  world.full_mesh();
  world.kit(0).deploy("neighbor");
  world.kit(1).deploy("neighbor");
  world.run_for(sec(5));

  auto* ns = proto::neighbor_state(*world.kit(0).protocol("neighbor"));
  ASSERT_NE(ns, nullptr);
  ASSERT_TRUE(ns->is_sym_neighbor(world.addr(1)));

  // Total radio silence (no link-layer feedback, frames simply vanish): the
  // only thing that can remove the neighbour entry is soft-state expiry.
  world.medium().set_loss_probability(1.0);

  // The last HELLO landed no earlier than 2s before the silence (2s HELLO
  // interval), so 3s in the entry is still within its 6s holding time...
  world.run_for(sec(3));
  EXPECT_FALSE(ns->heard_neighbors().empty())
      << "entry expired before its holding time";

  // ...and 11s in, every possible deadline has lapsed: the entry must be
  // gone, with the expiry journaled.
  world.run_for(sec(8));
  EXPECT_TRUE(ns->heard_neighbors().empty())
      << "entry outlived its holding time";
  EXPECT_GT(count_kind(*world.journal(), obs::RecordKind::kSoftExpire), 0u);
}

// ------------------------------------------------------ heap/wheel parity

struct RunSignature {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;

  bool operator==(const RunSignature& o) const {
    return ordered == o.ordered && canonical == o.canonical &&
           total == o.total;
  }
};

/// OLSR + DYMO co-deployed on a lossy linear world: proactive TC flooding,
/// reactive discovery, HELLO piggybacking and the full soft-state layer all
/// arm timers, making this the densest multi-protocol timer workload the
/// testbed has.
RunSignature run_coexistence(std::uint64_t seed, SimBackend backend) {
  testbed::SimWorld world(5, seed, backend);
  auto& journal = world.enable_tracing();
  world.linear();
  world.medium().set_loss_probability(0.05);
  for (std::size_t i = 0; i < world.size(); ++i) {
    world.kit(i).deploy("olsr");
    world.kit(i).deploy("dymo");
  }
  world.run_for(sec(25));
  world.node(0).forwarding().send(world.addr(4), 128);
  world.run_for(sec(5));
  return {journal.ordered_digest(), journal.canonical_digest(),
          journal.total()};
}

TEST(SoftState, HeapAndWheelBackendsProduceIdenticalOrderedDigests) {
  RunSignature wheel = run_coexistence(21, SimBackend::kWheel);
  RunSignature heap = run_coexistence(21, SimBackend::kHeap);
  EXPECT_EQ(wheel.ordered, heap.ordered)
      << "scheduler backend changed observable timer order";
  EXPECT_EQ(wheel.canonical, heap.canonical);
  EXPECT_EQ(wheel.total, heap.total);
  EXPECT_GT(wheel.total, 0u);

  // And each backend is reproducible against itself.
  EXPECT_TRUE(wheel == run_coexistence(21, SimBackend::kWheel));
  EXPECT_TRUE(heap == run_coexistence(21, SimBackend::kHeap));
}

// -------------------------------------------------- partition expiry (chaos)

/// Seed from MK_CHAOS_SEED (CI runs a fixed seed matrix), defaulting to 1234.
std::uint64_t chaos_seed() {
  const char* env = std::getenv("MK_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1234;
  return std::strtoull(env, nullptr, 10);
}

struct ChaosSig {
  std::uint64_t ordered = 0;
  std::uint64_t canonical = 0;
  std::uint64_t total = 0;
  std::size_t violations = 0;

  bool operator==(const ChaosSig& o) const {
    return ordered == o.ordered && canonical == o.canonical &&
           total == o.total && violations == o.violations;
  }
};

/// The ISSUE 6 acceptance scenario: a converged OLSR network is cut for 9
/// seconds. Mid-cut, the soft-state layer must expire the severed links and
/// topology tuples (kSoftExpire), recompute, and delete the dead kernel
/// routes (kRouteDel) — fully_routed() must observably turn false before the
/// heal. After the heal the network reconverges with zero invariant
/// violations.
ChaosSig run_partition_expiry(std::uint64_t seed) {
  testbed::SimWorld world(5, seed);
  world.enable_invariants();
  world.linear();
  world.deploy_all("olsr");
  EXPECT_TRUE(world.run_until_routed(sec(90)).has_value());

  TimePoint armed = world.now();
  std::size_t dels_before =
      count_kind(*world.journal(), obs::RecordKind::kRouteDel);
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "at 1s partition 0 1 | 2 3 4\n"
      "at 10s heal\n");
  world.apply_fault_plan(plan, seed ^ 0x50f7);

  // 8 seconds into the cut: HELLO hold (6s) and the stale-TC horizon have
  // both passed on every node.
  world.run_until(armed + sec(9));
  EXPECT_GT(count_kind(*world.journal(), obs::RecordKind::kSoftExpire), 0u)
      << "partition produced no journaled soft-state expiries";
  EXPECT_GT(count_kind(*world.journal(), obs::RecordKind::kRouteDel),
            dels_before)
      << "severed routes were never deleted mid-partition";
  EXPECT_FALSE(world.fully_routed())
      << "stale cross-cut routes lingered through the partition";

  world.run_for(sec(2));  // past the heal
  EXPECT_TRUE(world.run_until_routed(sec(120)).has_value())
      << "healed network failed to reconverge";
  return {world.journal()->ordered_digest(),
          world.journal()->canonical_digest(), world.journal()->total(),
          world.checker()->violations().size()};
}

TEST(SoftStateChaos, PartitionExpiryReplaysIdentically) {
  ChaosSig a = run_partition_expiry(chaos_seed());
  ChaosSig b = run_partition_expiry(chaos_seed());
  EXPECT_TRUE(a == b) << "same-seed partition-expiry rerun diverged";
  EXPECT_EQ(a.violations, 0u);
  EXPECT_GT(a.total, 0u);
}

}  // namespace
}  // namespace mk
