// Second parameterized sweep battery: AODV across chain lengths, the
// zone-hybrid across target distances, GPSR across random corridors, and a
// cross-protocol invariant — every deployed stack keeps the kernel table
// loop-free at all times.
#include <gtest/gtest.h>

#include "protocols/zrp/zrp_cf.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

bool follows_to(testbed::SimWorld& world, std::size_t src, net::Addr dst) {
  net::Addr cur = world.addr(src);
  std::set<net::Addr> seen;
  while (cur != dst) {
    if (!seen.insert(cur).second) return false;
    auto route =
        world.node(net::index_for_addr(cur)).kernel_table().lookup(dst);
    if (!route) return false;
    cur = route->next_hop;
  }
  return true;
}

class AodvChainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AodvChainSweep, DiscoversAcrossAnyChainLength) {
  std::size_t n = GetParam();
  testbed::SimWorld world(n);
  world.linear();
  world.deploy_all("aodv");
  world.run_for(sec(5));

  world.node(0).forwarding().send(world.addr(n - 1), 64);
  // Check promptly: AODV's active-route timeout is 3s, so kernel entries at
  // idle intermediates lapse soon after the packet passes.
  world.run_for(sec(2));
  EXPECT_EQ(world.node(n - 1).deliveries().size(), 1u) << "chain " << n;
  EXPECT_TRUE(follows_to(world, 0, world.addr(n - 1)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, AodvChainSweep,
                         ::testing::Values(2, 4, 6, 9));

class ZrpDistanceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZrpDistanceSweep, DeliversAtEveryDistance) {
  std::size_t target = GetParam();
  testbed::SimWorld world(10);
  world.linear();
  world.deploy_all("zrp");
  world.run_for(sec(8));

  world.node(0).forwarding().send(world.addr(target), 64);
  world.run_for(sec(3));  // within the reactive route lifetime
  EXPECT_EQ(world.node(target).deliveries().size(), 1u)
      << "distance " << target;
  EXPECT_TRUE(follows_to(world, 0, world.addr(target)));
}

INSTANTIATE_TEST_SUITE_P(Distances, ZrpDistanceSweep,
                         ::testing::Values(1, 2, 3, 6, 9));

class GpsrCorridorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpsrCorridorSweep, GreedyDeliversThroughRandomCorridors) {
  constexpr std::size_t kNodes = 12;
  testbed::SimWorld world(kNodes, GetParam());
  Rng rng(GetParam());
  std::vector<net::SimNode*> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) nodes.push_back(&world.node(i));

  world.node(0).set_position({0, 200});
  world.node(kNodes - 1).set_position({900, 200});
  for (std::size_t i = 1; i + 1 < kNodes; ++i) {
    double x = 900.0 * static_cast<double>(i) / static_cast<double>(kNodes - 1);
    world.node(i).set_position(
        {x + rng.uniform(-30, 30), 200 + rng.uniform(-90, 90)});
  }
  net::topo::apply_range_links(world.medium(), nodes, 260);

  world.register_gpsr_oracle();
  world.deploy_all("gpsr");
  world.run_for(sec(8));

  world.node(0).forwarding().send(world.addr(kNodes - 1), 128);
  world.run_for(sec(5));
  EXPECT_EQ(world.node(kNodes - 1).deliveries().size(), 1u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpsrCorridorSweep,
                         ::testing::Values(11, 42, 77, 123));

// Cross-protocol invariant: whatever the stack, the kernel table never
// contains a cycle at any sampled instant.
class LoopFreedomSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(LoopFreedomSweep, KernelTablesStayAcyclicUnderChurn) {
  const std::string proto = GetParam();
  testbed::SimWorld world(6);
  world.linear();
  if (proto == "gpsr") {
    for (std::size_t i = 0; i < 6; ++i) {
      world.node(i).set_position({120.0 * static_cast<double>(i), 0});
    }
    world.register_gpsr_oracle();
  }
  world.deploy_all(proto);
  world.run_for(sec(8));

  Rng rng(3);
  for (int round = 0; round < 12; ++round) {
    // Random churn + traffic.
    auto a = static_cast<std::size_t>(rng.uniform_int(0, 4));
    world.medium().set_link(world.addr(a), world.addr(a + 1),
                            rng.bernoulli(0.7));
    world.node(0).forwarding().send(world.addr(5), 64);
    world.run_for(sec(2));

    // Invariant: following next hops never cycles.
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        if (i == j) continue;
        net::Addr cur = world.addr(i);
        std::set<net::Addr> seen;
        for (int hop = 0; hop < 12 && cur != world.addr(j); ++hop) {
          ASSERT_TRUE(seen.insert(cur).second)
              << proto << ": routing loop toward " << j << " at round "
              << round;
          auto route =
              world.node(net::index_for_addr(cur)).kernel_table().lookup(
                  world.addr(j));
          if (!route) break;
          cur = route->next_hop;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LoopFreedomSweep,
                         ::testing::Values("olsr", "dymo", "aodv", "zrp",
                                           "gpsr"));

}  // namespace
}  // namespace mk
