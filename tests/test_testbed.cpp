// Testbed harness itself: the LoC counter feeding Table 3, traffic
// generation/delivery statistics, and SimWorld conveniences.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "testbed/loc_counter.hpp"
#include "testbed/traffic.hpp"
#include "testbed/world.hpp"

namespace mk::testbed {
namespace {

class LocCounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/loc_sample.cpp";
    std::ofstream out(path_);
    out << "// a comment line\n"
        << "\n"
        << "#include <x>\n"          // 1
        << "int main() {\n"          // 2
        << "  /* block\n"
        << "     comment */\n"
        << "  int a = 1;  // tail\n" // 3
        << "  /* inline */ int b;\n" // (comment-leading line: skipped)
        << "  return a;\n"           // 4
        << "}\n";                    // 5
  }
  std::string path_;
};

TEST_F(LocCounterTest, SkipsBlanksAndComments) {
  // 5 code lines; the '/* inline */ int b;' line opens with a comment and is
  // conservatively not counted (documented behaviour of the counter).
  EXPECT_EQ(count_loc(path_), 5u);
}

TEST_F(LocCounterTest, UnreadableFileCountsZero) {
  EXPECT_EQ(count_loc("/nonexistent/file.cpp"), 0u);
}

TEST(LocCounter, ManifestFilesAllExistAndAreNonTrivial) {
  std::string root = find_repo_root(".");
  auto entries = manifest();
  count_manifest(entries, root);
  for (const auto& e : entries) {
    EXPECT_GT(e.loc, 0u) << "component '" << e.name
                         << "' counted zero lines — manifest path stale?";
  }
}

TEST(LocCounter, EveryProtocolShowsMajorityReuse) {
  std::string root = find_repo_root(".");
  auto entries = manifest();
  count_manifest(entries, root);
  for (const char* proto : {"OLSR", "DYMO", "AODV"}) {
    ReuseSummary s = summarize(entries, proto);
    EXPECT_GT(s.reused_fraction(), 0.5) << proto;
    EXPECT_GE(s.reused_components, 2 * s.specific_components) << proto;
  }
}

TEST(Traffic, CbrFlowDeliversAtConfiguredRate) {
  SimWorld world(2);
  world.full_mesh();
  world.node(0).kernel_table().set_route(
      net::RouteEntry{world.addr(1), world.addr(1), "wlan0", 1, {}});

  CbrFlow flow(world.node(0), world.addr(1), msec(100), 256);
  DeliverySink sink(world.node(1));
  flow.start();
  world.run_for(sec(2));
  flow.stop();
  world.run_for(sec(1));

  EXPECT_EQ(flow.sent(), 20u);
  EXPECT_EQ(sink.received(), 20u);
  EXPECT_GT(sink.latencies_ms().mean(), 0.0);
  EXPECT_LT(sink.latencies_ms().max(), 10.0);  // one hop, light load
}

TEST(Traffic, SinkMeasuresMultiHopLatencyMonotonicity) {
  SimWorld world(4);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  DeliverySink near_sink(world.node(1));
  DeliverySink far_sink(world.node(3));
  for (int i = 0; i < 10; ++i) {
    world.node(0).forwarding().send(world.addr(1), 128);
    world.node(0).forwarding().send(world.addr(3), 128);
    world.run_for(msec(200));
  }
  ASSERT_EQ(near_sink.received(), 10u);
  ASSERT_EQ(far_sink.received(), 10u);
  EXPECT_GT(far_sink.latencies_ms().mean(), near_sink.latencies_ms().mean());
}

TEST(World, AddrsMatchNodeAddresses) {
  SimWorld world(3);
  auto addrs = world.addrs();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(addrs[i], world.node(i).addr());
    EXPECT_EQ(addrs[i], world.addr(i));
  }
}

TEST(World, RunUntilRoutedTimesOutCleanly) {
  SimWorld world(3);  // no links, no protocols: can never converge
  auto result = world.run_until_routed(sec(2));
  EXPECT_FALSE(result.has_value());
}

TEST(World, KitsAreLazyAndSticky) {
  SimWorld world(2);
  EXPECT_FALSE(world.has_kit(0));
  auto& kit = world.kit(0);
  EXPECT_TRUE(world.has_kit(0));
  EXPECT_EQ(&world.kit(0), &kit);
  EXPECT_FALSE(world.has_kit(1));
}

}  // namespace
}  // namespace mk::testbed
