// Simulated network substrate: medium adjacency/loss/delay, device
// attachment, kernel route table, forwarding engine with hooks, topology
// builders and random-waypoint mobility.
#include <gtest/gtest.h>

#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"

namespace mk::net {
namespace {

struct TwoNodes {
  SimScheduler sched;
  SimMedium medium{sched};
  SimNode a{0, medium, sched};
  SimNode b{1, medium, sched};
};

TEST(Medium, BroadcastReachesOnlyNeighbors) {
  SimScheduler sched;
  SimMedium medium(sched);
  SimNode a(0, medium, sched), b(1, medium, sched), c(2, medium, sched);
  medium.set_link(a.addr(), b.addr(), true);

  int b_got = 0, c_got = 0;
  b.set_control_handler([&](const Frame&) { ++b_got; });
  c.set_control_handler([&](const Frame&) { ++c_got; });

  a.send_control({1, 2, 3});
  sched.run_all();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
}

TEST(Medium, UnicastToNonNeighborFailsWithFeedback) {
  TwoNodes t;
  // no link
  EXPECT_FALSE(t.a.send_control({1}, t.b.addr()));
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  EXPECT_TRUE(t.a.send_control({1}, t.b.addr()));
  EXPECT_EQ(t.medium.stats().failed_unicasts, 1u);
}

TEST(Medium, AsymmetricLinksAreDirected) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true, /*symmetric=*/false);
  EXPECT_TRUE(t.medium.has_link(t.a.addr(), t.b.addr()));
  EXPECT_FALSE(t.medium.has_link(t.b.addr(), t.a.addr()));
}

TEST(Medium, LossDropsFrames) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.medium.set_loss_probability(1.0);
  int got = 0;
  t.b.set_control_handler([&](const Frame&) { ++got; });
  for (int i = 0; i < 10; ++i) t.a.send_control({1});
  t.sched.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(t.medium.stats().dropped_loss, 10u);
}

TEST(Medium, DeliveryIsDelayed) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.medium.set_base_delay(msec(5));
  TimePoint arrival{};
  t.b.set_control_handler([&](const Frame&) { arrival = t.sched.now(); });
  t.a.send_control({1});
  t.sched.run_all();
  EXPECT_GE(arrival.us, 5000);
}

TEST(Medium, TopologyChangeMidFlightDropsFrame) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.medium.set_base_delay(msec(5));
  int got = 0;
  t.b.set_control_handler([&](const Frame&) { ++got; });
  t.a.send_control({1});
  t.medium.set_link(t.a.addr(), t.b.addr(), false);  // breaks before delivery
  t.sched.run_all();
  EXPECT_EQ(got, 0);
}

TEST(Medium, LinkObserverSeesChanges) {
  TwoNodes t;
  std::vector<std::tuple<Addr, Addr, bool>> events;
  t.medium.add_link_observer([&](Addr x, Addr y, bool up) {
    events.emplace_back(x, y, up);
  });
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.medium.set_link(t.a.addr(), t.b.addr(), true);  // no-op: no event
  t.medium.set_link(t.a.addr(), t.b.addr(), false);
  EXPECT_EQ(events.size(), 4u);  // 2 symmetric ups + 2 downs
}

TEST(Medium, DownDeviceReceivesNothing) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  int got = 0;
  t.b.set_control_handler([&](const Frame&) { ++got; });
  t.b.device().set_up(false);
  t.a.send_control({1});
  t.sched.run_all();
  EXPECT_EQ(got, 0);
}

TEST(KernelTable, SetLookupRemove) {
  KernelRouteTable table;
  table.set_route(RouteEntry{10, 20, "wlan0", 2, {}});
  ASSERT_TRUE(table.lookup(10).has_value());
  EXPECT_EQ(table.lookup(10)->next_hop, 20u);
  EXPECT_FALSE(table.lookup(11).has_value());
  EXPECT_TRUE(table.remove_route(10));
  EXPECT_FALSE(table.remove_route(10));
}

TEST(KernelTable, DestsViaAndGeneration) {
  KernelRouteTable table;
  auto gen0 = table.generation();
  table.set_route(RouteEntry{10, 99, "wlan0", 1, {}});
  table.set_route(RouteEntry{11, 99, "wlan0", 2, {}});
  table.set_route(RouteEntry{12, 50, "wlan0", 1, {}});
  EXPECT_EQ(table.dests_via(99).size(), 2u);
  EXPECT_GT(table.generation(), gen0);
}

TEST(Forwarding, DeliversLocallyAcrossTwoHops) {
  SimScheduler sched;
  SimMedium medium(sched);
  SimNode a(0, medium, sched), b(1, medium, sched), c(2, medium, sched);
  topo::linear(medium, std::vector<Addr>{a.addr(), b.addr(), c.addr()});

  a.kernel_table().set_route(RouteEntry{c.addr(), b.addr(), "wlan0", 2, {}});
  b.kernel_table().set_route(RouteEntry{c.addr(), c.addr(), "wlan0", 1, {}});

  EXPECT_TRUE(a.forwarding().send(c.addr(), 100));
  sched.run_all();
  ASSERT_EQ(c.deliveries().size(), 1u);
  EXPECT_EQ(c.deliveries()[0].hdr.src, a.addr());
  EXPECT_EQ(b.forwarding().stats().forwarded, 1u);
}

TEST(Forwarding, NoRouteHookBuffersPacket) {
  TwoNodes t;
  bool hook_called = false;
  ForwardingEngine::Hooks hooks;
  hooks.on_no_route = [&](const DataHeader&) {
    hook_called = true;
    return true;  // consumed
  };
  t.a.forwarding().set_hooks(std::move(hooks));
  EXPECT_TRUE(t.a.forwarding().send(t.b.addr(), 10));
  EXPECT_TRUE(hook_called);
  EXPECT_EQ(t.a.forwarding().stats().buffered, 1u);
}

TEST(Forwarding, NoRouteWithoutHookDrops) {
  TwoNodes t;
  EXPECT_FALSE(t.a.forwarding().send(t.b.addr(), 10));
  EXPECT_EQ(t.a.forwarding().stats().dropped_no_route, 1u);
}

TEST(Forwarding, SendFailureHookFiresOnBrokenLink) {
  TwoNodes t;
  t.a.kernel_table().set_route(RouteEntry{t.b.addr(), t.b.addr(), "wlan0", 1, {}});
  Addr broken = kNoAddr;
  ForwardingEngine::Hooks hooks;
  hooks.on_send_failure = [&](const DataHeader&, Addr hop) { broken = hop; };
  t.a.forwarding().set_hooks(std::move(hooks));
  EXPECT_FALSE(t.a.forwarding().send(t.b.addr(), 10));  // no link
  EXPECT_EQ(broken, t.b.addr());
}

TEST(Forwarding, TtlExpiryDrops) {
  SimScheduler sched;
  SimMedium medium(sched);
  SimNode a(0, medium, sched), b(1, medium, sched), c(2, medium, sched);
  topo::linear(medium, std::vector<Addr>{a.addr(), b.addr(), c.addr()});
  a.kernel_table().set_route(RouteEntry{c.addr(), b.addr(), "wlan0", 2, {}});
  b.kernel_table().set_route(RouteEntry{c.addr(), c.addr(), "wlan0", 1, {}});

  EXPECT_TRUE(a.forwarding().send(c.addr(), 10, /*ttl=*/1));
  sched.run_all();
  EXPECT_TRUE(c.deliveries().empty());
  EXPECT_EQ(b.forwarding().stats().dropped_ttl, 1u);
}

TEST(Forwarding, RouteUsedHookFires) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.a.kernel_table().set_route(RouteEntry{t.b.addr(), t.b.addr(), "wlan0", 1, {}});
  Addr used = kNoAddr;
  ForwardingEngine::Hooks hooks;
  hooks.on_route_used = [&](Addr d) { used = d; };
  t.a.forwarding().set_hooks(std::move(hooks));
  t.a.forwarding().send(t.b.addr(), 10);
  EXPECT_EQ(used, t.b.addr());
}

TEST(Topology, BuildersProduceExpectedDegrees) {
  SimScheduler sched;
  SimMedium medium(sched);
  std::vector<Addr> addrs;
  for (std::uint32_t i = 0; i < 9; ++i) addrs.push_back(addr_for_index(i));

  topo::linear(medium, addrs);
  EXPECT_EQ(medium.neighbors_of(addrs[0]).size(), 1u);
  EXPECT_EQ(medium.neighbors_of(addrs[4]).size(), 2u);

  medium.clear_links();
  topo::ring(medium, addrs);
  for (Addr a : addrs) EXPECT_EQ(medium.neighbors_of(a).size(), 2u);

  medium.clear_links();
  topo::grid(medium, addrs, 3);
  EXPECT_EQ(medium.neighbors_of(addrs[4]).size(), 4u);  // center of 3x3
  EXPECT_EQ(medium.neighbors_of(addrs[0]).size(), 2u);  // corner

  medium.clear_links();
  topo::full_mesh(medium, addrs);
  for (Addr a : addrs) EXPECT_EQ(medium.neighbors_of(a).size(), 8u);
}

TEST(Topology, RangeLinksFollowPositions) {
  SimScheduler sched;
  SimMedium medium(sched);
  SimNode a(0, medium, sched), b(1, medium, sched);
  a.set_position({0, 0});
  b.set_position({100, 0});
  std::vector<SimNode*> nodes{&a, &b};
  topo::apply_range_links(medium, nodes, 150.0);
  EXPECT_TRUE(medium.has_link(a.addr(), b.addr()));
  b.set_position({200, 0});
  topo::apply_range_links(medium, nodes, 150.0);
  EXPECT_FALSE(medium.has_link(a.addr(), b.addr()));
}

TEST(Mobility, RandomWaypointMovesNodesAndKeepsBounds) {
  SimScheduler sched;
  SimMedium medium(sched);
  std::vector<std::unique_ptr<SimNode>> nodes;
  std::vector<SimNode*> ptrs;
  for (std::uint32_t i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<SimNode>(i, medium, sched));
    ptrs.push_back(nodes.back().get());
  }
  RandomWaypoint::Params params;
  params.width = 500;
  params.height = 500;
  params.min_speed = 5;
  params.max_speed = 20;
  params.pause = 0.5;
  RandomWaypoint rwp(medium, ptrs, params, /*seed=*/11);

  auto p0 = ptrs[0]->position();
  bool moved = false;
  for (int i = 0; i < 100; ++i) {
    rwp.step(sec(1));
    for (auto* n : ptrs) {
      EXPECT_GE(n->position().x, 0.0);
      EXPECT_LE(n->position().x, 500.0);
      EXPECT_GE(n->position().y, 0.0);
      EXPECT_LE(n->position().y, 500.0);
    }
    auto p = ptrs[0]->position();
    if (p.x != p0.x || p.y != p0.y) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Node, BatteryDrainsPerTransmission) {
  TwoNodes t;
  t.medium.set_link(t.a.addr(), t.b.addr(), true);
  t.a.set_tx_cost(0.1);
  for (int i = 0; i < 3; ++i) t.a.send_control({1});
  EXPECT_NEAR(t.a.battery(), 0.7, 1e-9);
}

}  // namespace
}  // namespace mk::net
