// SimScheduler / RealTimeScheduler / PeriodicTimer / OneShotTimer.
#include <gtest/gtest.h>

#include <atomic>

#include "util/scheduler.hpp"
#include "util/timer.hpp"

namespace mk {
namespace {

TEST(SimScheduler, RunsEventsInTimeOrder) {
  SimScheduler sched;
  std::vector<int> order;
  sched.schedule_at(TimePoint{300}, [&] { order.push_back(3); });
  sched.schedule_at(TimePoint{100}, [&] { order.push_back(1); });
  sched.schedule_at(TimePoint{200}, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now().us, 300);
}

TEST(SimScheduler, EqualTimesRunFifo) {
  SimScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(TimePoint{100}, [&, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimScheduler, CancelPreventsExecution) {
  SimScheduler sched;
  bool ran = false;
  TimerId id = sched.schedule_after(msec(10), [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run_all();
  EXPECT_FALSE(ran);
}

TEST(SimScheduler, RunUntilAdvancesClockEvenWithoutEvents) {
  SimScheduler sched;
  sched.run_until(TimePoint{5000});
  EXPECT_EQ(sched.now().us, 5000);
}

TEST(SimScheduler, RunUntilDoesNotRunLaterEvents) {
  SimScheduler sched;
  bool ran = false;
  sched.schedule_at(TimePoint{1000}, [&] { ran = true; });
  sched.run_until(TimePoint{999});
  EXPECT_FALSE(ran);
  sched.run_until(TimePoint{1000});
  EXPECT_TRUE(ran);
}

TEST(SimScheduler, PastSchedulingClampsToNow) {
  SimScheduler sched;
  sched.run_until(TimePoint{100});
  bool ran = false;
  sched.schedule_at(TimePoint{50}, [&] { ran = true; });
  sched.run_until(TimePoint{100});
  EXPECT_TRUE(ran);
}

TEST(SimScheduler, EventsCanScheduleMoreEvents) {
  SimScheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sched.schedule_after(msec(1), chain);
  };
  sched.schedule_after(msec(1), chain);
  sched.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now().us, 5000);
}

TEST(SimScheduler, RunAllGuardsAgainstRunaway) {
  SimScheduler sched;
  std::function<void()> forever = [&] { sched.schedule_after(usec(1), forever); };
  sched.schedule_after(usec(1), forever);
  EXPECT_EQ(sched.run_all(1000), 1000u);
}

TEST(RealTimeScheduler, FiresCallbacks) {
  RealTimeScheduler sched;
  std::atomic<int> count{0};
  sched.schedule_after(msec(1), [&] { ++count; });
  sched.schedule_after(msec(2), [&] { ++count; });
  for (int i = 0; i < 200 && count.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(RealTimeScheduler, CancelWorks) {
  RealTimeScheduler sched;
  std::atomic<bool> ran{false};
  TimerId id = sched.schedule_after(msec(50), [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(ran.load());
}

TEST(PeriodicTimer, FiresRepeatedly) {
  SimScheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, msec(100), [&] { ++fires; });
  timer.start();
  sched.run_until(TimePoint{1000 * 1000});
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, StopHaltsFiring) {
  SimScheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, msec(100), [&] { ++fires; });
  timer.start();
  sched.run_for(msec(250));
  timer.stop();
  sched.run_for(msec(500));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, JitterStaysWithinBound) {
  SimScheduler sched;
  std::vector<std::int64_t> at;
  PeriodicTimer timer(sched, msec(100), [&] { at.push_back(sched.now().us); },
                      /*jitter=*/0.5, /*seed=*/3);
  timer.start();
  sched.run_for(sec(2));
  ASSERT_GE(at.size(), 10u);
  std::int64_t prev = 0;
  for (std::int64_t t : at) {
    std::int64_t gap = t - prev;
    EXPECT_GE(gap, 50000);   // >= interval * (1 - jitter)
    EXPECT_LE(gap, 100000);  // <= interval
    prev = t;
  }
}

TEST(PeriodicTimer, CallbackMayStopTimer) {
  SimScheduler sched;
  int fires = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(sched, msec(10), [&] {
    if (++fires == 3) self->stop();
  });
  self = &timer;
  timer.start();
  sched.run_for(sec(1));
  EXPECT_EQ(fires, 3);
}

TEST(OneShotTimer, ReschedulingCancelsPrevious) {
  SimScheduler sched;
  int which = 0;
  OneShotTimer timer(sched);
  timer.schedule(msec(10), [&] { which = 1; });
  timer.schedule(msec(20), [&] { which = 2; });
  sched.run_for(msec(100));
  EXPECT_EQ(which, 2);
}

TEST(OneShotTimer, DestructorCancels) {
  SimScheduler sched;
  bool ran = false;
  {
    OneShotTimer timer(sched);
    timer.schedule(msec(10), [&] { ran = true; });
  }
  sched.run_for(msec(100));
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace mk
