// Regression tests for the zero-copy hot path: copy-on-write event messages,
// shared frame payload buffers, and single-allocation PacketBB serialization.
#include <gtest/gtest.h>

#include "core/manetkit.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "packetbb/packetbb.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"

namespace mk {
namespace {

pbb::Message sample_msg(std::uint8_t type = 42) {
  pbb::Message m;
  m.type = type;
  m.originator = 7;
  m.seqnum = 99;
  m.has_hops = true;
  m.hop_limit = 16;
  m.hop_count = 2;
  m.tlvs.push_back(pbb::Tlv::u16(5, 1234));
  pbb::AddressBlock block;
  block.add_with_u32(11, 9, 777);
  m.addr_blocks.push_back(std::move(block));
  return m;
}

// ---------------------------------------------------------------------------
// Event COW semantics
// ---------------------------------------------------------------------------

TEST(CowEvent, CopiesShareOneMessageAllocation) {
  ev::Event a(ev::etype("ZC"));
  a.set_msg(sample_msg());
  ev::Event b = a;
  ev::Event c = a;
  EXPECT_EQ(a.msg(), b.msg());
  EXPECT_EQ(a.msg(), c.msg());
  EXPECT_EQ(a.shared_msg().use_count(), 3);
}

TEST(CowEvent, MutatingOneCopyDoesNotLeakIntoSiblings) {
  ev::Event a(ev::etype("ZC"));
  a.set_msg(sample_msg());
  ev::Event b = a;

  pbb::Message& owned = b.mutable_msg();
  owned.hop_limit -= 1;
  owned.hop_count += 1;

  EXPECT_NE(a.msg(), b.msg()) << "mutable_msg must clone while shared";
  EXPECT_EQ(a.msg()->hop_limit, 16);
  EXPECT_EQ(a.msg()->hop_count, 2);
  EXPECT_EQ(b.msg()->hop_limit, 15);
  EXPECT_EQ(b.msg()->hop_count, 3);
}

TEST(CowEvent, MutableMsgOnUniqueOwnerDoesNotClone) {
  ev::Event e(ev::etype("ZC"));
  e.set_msg(sample_msg());
  const pbb::Message* before = e.msg();
  e.mutable_msg().hop_count += 1;
  EXPECT_EQ(e.msg(), before) << "sole owner must mutate in place";
}

TEST(CowEvent, SetMsgReturnsMutableRefToOwnedCopy) {
  ev::Event in(ev::etype("ZC"));
  in.set_msg(sample_msg());

  // The relay idiom: forward a received message with decremented TTL.
  ev::Event out(ev::etype("ZC"));
  pbb::Message& fwd = out.set_msg(*in.msg());
  fwd.hop_limit -= 1;

  EXPECT_EQ(in.msg()->hop_limit, 16);
  EXPECT_EQ(out.msg()->hop_limit, 15);
}

TEST(CowEvent, SharedMsgHandoffIsZeroCopy) {
  ev::Event in(ev::etype("ZC"));
  in.set_msg(sample_msg());
  ev::Event out(ev::etype("ZC_OUT"));
  out.set_msg(in.shared_msg());
  EXPECT_EQ(in.msg(), out.msg());
}

// Fan-out through the Framework Manager: a handler that copies + mutates its
// own event must not corrupt what sibling protocols observe.
TEST(CowEvent, FanOutSiblingsAreIsolatedFromHandlerMutation) {
  SimScheduler sched;
  net::SimMedium medium(sched);
  net::SimNode node(0, medium, sched);
  core::Manetkit kit(node);

  class MutatingHandler final : public core::EventHandler {
   public:
    MutatingHandler()
        : core::EventHandler("test.MutatingHandler", {"ZC"}) {}
    void handle(const ev::Event& event, core::ProtocolContext&) override {
      ev::Event local = event;  // shares the message...
      local.mutable_msg().hop_limit = 0;  // ...until mutated
    }
  };
  class ObservingHandler final : public core::EventHandler {
   public:
    explicit ObservingHandler(std::vector<std::uint8_t>* seen)
        : core::EventHandler("test.ObservingHandler", {"ZC"}), seen_(seen) {}
    void handle(const ev::Event& event, core::ProtocolContext&) override {
      seen_->push_back(event.msg()->hop_limit);
    }
   private:
    std::vector<std::uint8_t>* seen_;
  };

  std::vector<std::uint8_t> seen;
  kit.register_protocol("mutator", 20, [](core::Manetkit& k) {
    auto cf = std::make_unique<core::ManetProtocolCf>(
        k.kernel(), "mutator", k.scheduler(), k.self(),
        &k.system().sys_state());
    cf->add_handler(std::make_unique<MutatingHandler>());
    cf->declare_events({"ZC"}, {});
    return cf;
  });
  kit.register_protocol("observer", 20, [&seen](core::Manetkit& k) {
    auto cf = std::make_unique<core::ManetProtocolCf>(
        k.kernel(), "observer", k.scheduler(), k.self(),
        &k.system().sys_state());
    cf->add_handler(std::make_unique<ObservingHandler>(&seen));
    cf->declare_events({"ZC"}, {});
    return cf;
  });
  kit.deploy("mutator");
  kit.deploy("observer");

  ev::Event e(ev::etype("ZC"));
  e.set_msg(sample_msg());
  kit.system().emit(e);
  kit.system().emit(e);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 16) << "mutator's private copy leaked into a sibling";
  EXPECT_EQ(seen[1], 16);
  EXPECT_EQ(e.msg()->hop_limit, 16) << "emitter's event must stay intact";
}

// ---------------------------------------------------------------------------
// Shared frame payloads
// ---------------------------------------------------------------------------

TEST(SharedPayload, BroadcastDeliversTheSameBufferToEveryNeighbor) {
  SimScheduler sched;
  net::SimMedium medium(sched);
  net::SimNode sender(0, medium, sched);

  constexpr std::uint32_t kNeighbors = 4;
  std::vector<std::unique_ptr<net::SimNode>> receivers;
  std::vector<net::PayloadPtr> delivered;
  for (std::uint32_t i = 1; i <= kNeighbors; ++i) {
    receivers.push_back(std::make_unique<net::SimNode>(i, medium, sched));
    receivers.back()->set_control_handler([&delivered](const net::Frame& f) {
      delivered.push_back(f.payload);
    });
    medium.set_link(sender.addr(), receivers.back()->addr(), true);
  }

  auto payload = net::make_payload(net::PayloadBuffer{1, 2, 3, 4, 5});
  ASSERT_TRUE(sender.send_control(payload));
  sched.run_all();

  ASSERT_EQ(delivered.size(), kNeighbors);
  for (const auto& p : delivered) {
    EXPECT_EQ(p.get(), payload.get())
        << "broadcast fan-out must share one payload allocation";
  }
}

TEST(SharedPayload, PayloadViewIsEmptyWhenUnset) {
  net::Frame f;
  EXPECT_EQ(f.payload_size(), 0u);
  EXPECT_TRUE(f.payload_view().empty());
}

// ---------------------------------------------------------------------------
// Single-allocation PacketBB serialization
// ---------------------------------------------------------------------------

pbb::Packet random_packet(Rng& rng) {
  pbb::Packet pkt;
  pkt.version = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  if (rng.bernoulli(0.5)) {
    pkt.seqnum = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  }
  auto random_tlv = [&rng] {
    pbb::Tlv t;
    t.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    t.value.resize(static_cast<std::size_t>(rng.uniform_int(0, 24)));
    for (auto& b : t.value) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    return t;
  };
  for (std::int64_t i = rng.uniform_int(0, 3); i > 0; --i) {
    pkt.tlvs.push_back(random_tlv());
  }
  for (std::int64_t m = rng.uniform_int(0, 4); m > 0; --m) {
    pbb::Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (rng.bernoulli(0.7)) {
      msg.originator = static_cast<pbb::Addr>(rng.next_u64());
    }
    if (rng.bernoulli(0.7)) {
      msg.has_hops = true;
      msg.hop_limit = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      msg.hop_count = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.7)) {
      msg.seqnum = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    }
    for (std::int64_t i = rng.uniform_int(0, 3); i > 0; --i) {
      msg.tlvs.push_back(random_tlv());
    }
    for (std::int64_t b = rng.uniform_int(0, 2); b > 0; --b) {
      pbb::AddressBlock block;
      auto naddrs = static_cast<std::size_t>(rng.uniform_int(1, 8));
      for (std::size_t i = 0; i < naddrs; ++i) {
        block.addrs.push_back(static_cast<pbb::Addr>(rng.next_u64()));
      }
      for (std::int64_t i = rng.uniform_int(0, 2); i > 0; --i) {
        pbb::AddressTlv at;
        at.type = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        at.index_start =
            static_cast<std::uint8_t>(rng.uniform_int(0, naddrs - 1));
        at.index_stop = static_cast<std::uint8_t>(
            rng.uniform_int(at.index_start, naddrs - 1));
        at.value.resize(static_cast<std::size_t>(rng.uniform_int(0, 12)));
        for (auto& byte : at.value) {
          byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        block.tlvs.push_back(std::move(at));
      }
      msg.addr_blocks.push_back(std::move(block));
    }
    pkt.messages.push_back(std::move(msg));
  }
  return pkt;
}

TEST(PacketBBZeroCopy, RandomizedSerializeParseIdentity) {
  Rng rng(20260806);
  for (int round = 0; round < 200; ++round) {
    pbb::Packet pkt = random_packet(rng);
    auto bytes = pbb::serialize(pkt);
    ASSERT_EQ(bytes.size(), pbb::serialized_size(pkt))
        << "sizing pass disagrees with emission (round " << round << ")";
    auto parsed = pbb::parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << parsed.error() << " (round " << round << ")";
    EXPECT_EQ(parsed.value(), pkt) << "round-trip mismatch (round " << round << ")";
  }
}

TEST(PacketBBZeroCopy, SerializeIntoRecyclesTheBuffer) {
  Rng rng(7);
  pbb::Packet big = random_packet(rng);
  while (big.messages.empty()) big = random_packet(rng);

  std::vector<std::uint8_t> buf;
  pbb::serialize_into(big, buf);
  EXPECT_EQ(buf, pbb::serialize(big));

  const std::size_t warm_capacity = buf.capacity();
  const void* warm_data = buf.data();
  pbb::serialize_into(big, buf);  // same packet: capacity must be reused
  EXPECT_EQ(buf.capacity(), warm_capacity);
  EXPECT_EQ(static_cast<const void*>(buf.data()), warm_data);
  EXPECT_EQ(buf, pbb::serialize(big));
}

TEST(PacketBBZeroCopy, SerializeReservesExactly) {
  pbb::Packet pkt;
  pkt.seqnum = 5;
  pkt.messages.push_back(sample_msg());
  auto bytes = pbb::serialize(pkt);
  EXPECT_EQ(bytes.size(), pbb::serialized_size(pkt));
  EXPECT_EQ(bytes.capacity(), pbb::serialized_size(pkt))
      << "serialize must allocate the exact wire size once";
}

}  // namespace
}  // namespace mk
