// End-to-end OLSR integration: HELLO sensing -> MPR selection -> TC
// diffusion -> route calculation -> kernel routes -> data delivery,
// on the paper's 5-node linear emulated topology.
#include <gtest/gtest.h>

#include "protocols/mpr/mpr_cf.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "testbed/world.hpp"

namespace mk {
namespace {

TEST(OlsrIntegration, LinearFiveNodeConvergesToFullRoutes) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");

  auto converged = world.run_until_routed(sec(60));
  ASSERT_TRUE(converged.has_value()) << "OLSR did not converge in 60s";

  // Every node routes to every other; chain ends route via their neighbour.
  EXPECT_EQ(world.node(0).kernel_table().lookup(world.addr(4))->next_hop,
            world.addr(1));
  EXPECT_EQ(world.node(4).kernel_table().lookup(world.addr(0))->next_hop,
            world.addr(3));
  // Metric across the chain is 4 hops.
  EXPECT_EQ(world.node(0).kernel_table().lookup(world.addr(4))->metric, 4u);
}

TEST(OlsrIntegration, DataFlowsEndToEndAcrossChain) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  world.node(0).forwarding().send(world.addr(4), 512);
  world.run_for(sec(1));
  ASSERT_EQ(world.node(4).deliveries().size(), 1u);
  EXPECT_EQ(world.node(4).deliveries()[0].hdr.src, world.addr(0));
}

TEST(OlsrIntegration, MiddleNodeBecomesMprInChain) {
  testbed::SimWorld world(3);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());
  world.run_for(sec(10));  // one more HELLO round propagates MPR selection

  // Node 1 is the only way 0 reaches 2: both ends must select it as MPR.
  auto* mpr0 = proto::mpr_state(*world.kit(0).protocol("mpr"));
  ASSERT_NE(mpr0, nullptr);
  EXPECT_TRUE(mpr0->is_mpr(world.addr(1)));
  auto* mpr1 = proto::mpr_state(*world.kit(1).protocol("mpr"));
  EXPECT_TRUE(mpr1->is_mpr_selector(world.addr(0)));
  EXPECT_TRUE(mpr1->is_mpr_selector(world.addr(2)));
}

TEST(OlsrIntegration, NewNodeJoiningLearnsFullTable) {
  testbed::SimWorld world(5);
  // Start with only the first 4 nodes linked.
  auto addrs = world.addrs();
  for (std::size_t i = 0; i + 2 < addrs.size(); ++i) {
    world.medium().set_link(addrs[i], addrs[i + 1], true);
  }
  world.deploy_all("olsr");
  world.run_for(sec(30));

  // Node 4 arrives at the end of the chain.
  world.medium().set_link(addrs[3], addrs[4], true);
  bool ok = false;
  for (int i = 0; i < 600; ++i) {
    world.run_for(msec(100));
    if (world.node(4).kernel_table().lookup(addrs[0]).has_value() &&
        world.node(4).kernel_table().lookup(addrs[1]).has_value() &&
        world.node(4).kernel_table().lookup(addrs[2]).has_value() &&
        world.node(4).kernel_table().lookup(addrs[3]).has_value()) {
      ok = true;
      break;
    }
  }
  EXPECT_TRUE(ok) << "joining node never computed a full routing table";
}

TEST(OlsrIntegration, LinkBreakInvalidatesRoutes) {
  testbed::SimWorld world(5);
  world.linear();
  world.deploy_all("olsr");
  ASSERT_TRUE(world.run_until_routed(sec(60)).has_value());

  // Cut the chain in the middle; ends should eventually lose routes across
  // the break (neighbour hold time is 6s, topology hold 15s).
  world.medium().set_link(world.addr(2), world.addr(3), false);
  world.run_for(sec(25));
  EXPECT_FALSE(world.has_route(0, world.addr(4)));
  EXPECT_FALSE(world.has_route(4, world.addr(0)));
  // Connectivity within each fragment survives.
  EXPECT_TRUE(world.has_route(0, world.addr(2)));
  EXPECT_TRUE(world.has_route(4, world.addr(3)));
}

}  // namespace
}  // namespace mk
