// Arms a FaultPlan onto a live simulation: every action is scheduled at its
// exact sim time through the (deterministic) scheduler, topology-level
// actions (partition/heal, crash/restart, drift) mutate the medium or fire
// node-control callbacks, and traffic-level actions (loss bursts,
// duplication, reordering) are realised through the medium's per-delivery
// fault filter.
//
// Determinism contract: the injector draws from its own seeded Rng — never
// from the medium's — so (plan, seed) fully determines which frames are
// hit, and arming a plan does not perturb the channel's own loss sequence.
// Every action that fires appends a kFault journal record, and every frame
// a fault kills is journaled as kFrameDrop / kFaultLoss; reruns with the
// same world seed and plan seed therefore produce bit-identical ordered
// digests, and first_divergence() on two dumps pinpoints any drift.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "net/medium.hpp"
#include "obs/journal.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"

namespace mk::fault {

class FaultInjector {
 public:
  /// Crash/restart are delegated to the harness (the injector does not know
  /// what "a node" is beyond its address): crash must silence the node's
  /// radio, restart must re-enable it. misbehave must route the component
  /// fault to the node's supervision layer (mode kNone clears an active
  /// misbehaviour — the injector schedules that itself for windowed actions).
  struct NodeControl {
    std::function<void(net::Addr)> crash;
    std::function<void(net::Addr)> restart;
    std::function<void(net::Addr, const std::string&, Misbehave)> misbehave;
  };

  FaultInjector(net::SimMedium& medium, Scheduler& sched, NodeControl nodes,
                std::uint64_t seed = 1);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every action of `plan` (times relative to now) and installs
  /// the per-delivery fault filter. May be called again to layer a further
  /// plan onto the same run.
  void arm(const FaultPlan& plan);

  /// Journal for kFault action records (usually the world's shared journal).
  /// Null disables action journaling.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

  /// Actions that have fired so far (monotonic).
  std::uint64_t actions_fired() const { return actions_fired_; }

  /// True while any loss/dup/reorder window is open (bench assertions).
  bool any_window_active() const;

  /// The per-delivery filter (installed on the medium by arm(); exposed for
  /// tests that drive the medium directly).
  net::FaultVerdict filter(const net::Frame& frame, net::Addr to);

 private:
  struct Window {
    FaultKind kind{};
    TimePoint until{};
    double p = 0.0;
    Duration jitter{};           // reorder max jitter / dup spacing
    net::Addr from = net::kNoAddr;  // loss scope (kNoAddr = any)
    net::Addr to = net::kNoAddr;
  };

  void fire(const FaultAction& action);
  void open_window(const FaultAction& action);
  void expire_windows();
  void journal_action(const FaultAction& action, std::uint64_t b,
                      std::uint64_t c);

  net::SimMedium& medium_;
  Scheduler& sched_;
  NodeControl nodes_;
  Rng rng_;
  obs::Journal* journal_ = nullptr;
  std::vector<Window> windows_;
  /// Links cut by partitions, in cut order; heal pops the most recent set.
  std::vector<std::vector<std::pair<net::Addr, net::Addr>>> cuts_;
  std::uint64_t actions_fired_ = 0;
  bool filter_installed_ = false;
};

}  // namespace mk::fault
