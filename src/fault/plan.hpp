// Deterministic fault schedules (the chaos-testing layer's "what happens
// when"). A FaultPlan is an ordered list of actions pinned to exact sim
// times: link loss bursts, frame duplication and reordering windows,
// network partitions and heals, node crashes and restarts, and bounded
// clock drift. Plans are pure data — building or parsing one touches no
// simulator state; fault/injector.hpp arms a plan onto a scheduler/medium.
//
// Two authoring surfaces:
//  * a programmatic builder (chained calls, one per action), and
//  * a tiny line-oriented text format, one action per line:
//
//      # comment / blank lines ignored
//      at 5s loss 0.5 for 2s              # whole-medium loss burst
//      at 5s loss 0.8 link 1 2 for 500ms  # directed-link loss burst
//      at 3s dup 0.25 for 4s              # duplication window
//      at 4s reorder 300us for 2s         # reorder jitter window
//      at 8s partition 0 1 2 | 3 4        # cut every link between the sides
//      at 12s heal                        # restore the last partition's cuts
//      at 9s crash 2                      # node 2 radio off
//      at 11s restart 2                   # node 2 radio back on
//      at 2s drift 3 1.05 for 10s         # node 3 oscillator 5% fast
//      at 5s misbehave 1 olsr throw       # component fault, until cleared
//      at 5s misbehave 1 mpr stall for 3s # windowed component fault
//
// Times are durations with a unit suffix (us/ms/s), relative to the arm
// time. Nodes are testbed indices (net::addr_for_index).
//
// The parser is hardened against untrusted input: try_parse() returns a
// Result and never throws or invokes UB — truncated lines, out-of-range
// numbers (negative durations, probabilities outside [0,1], node indices
// beyond the address plan, values that would overflow the microsecond
// arithmetic) and unknown verbs all come back as errors naming the offending
// line. parse() is the throwing convenience wrapper; to_text() round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace mk::fault {

enum class FaultKind : std::uint8_t {
  kLossBurst = 1,  // p, window, optional directed link scope
  kDuplicate = 2,  // p, window
  kReorder = 3,    // max jitter, window
  kPartition = 4,  // cut all links between group_a and group_b
  kHeal = 5,       // restore the most recent un-healed partition
  kCrash = 6,      // node radio off
  kRestart = 7,    // node radio on
  kDrift = 8,      // clock drift factor, window
  kMisbehave = 9,  // inject a component-level fault (supervision, ISSUE 5)
};

/// Component misbehaviour modes for kMisbehave (mirrors
/// supervision::Misbehaviour; fault/ stays independent of supervision/, the
/// testbed maps between them when arming a plan).
enum class Misbehave : std::uint8_t {
  kNone = 0,   // clear an active misbehaviour
  kThrow = 1,  // dispatches into the component throw
  kStall = 2,  // dispatches charge past the watchdog deadline
  kCorrupt = 3,  // the component is fed bit-flipped copies of its events
};

std::string_view kind_name(FaultKind kind);
std::string_view misbehave_name(Misbehave mode);

struct FaultAction {
  FaultKind kind{};
  Duration at{};        // fire time, relative to injector arm
  Duration duration{};  // window length (windowed kinds only)
  double p = 0.0;       // probability (loss/dup) or drift factor
  net::Addr from = net::kNoAddr;  // link scope (loss) or target node
  net::Addr to = net::kNoAddr;    // link scope (loss)
  Duration jitter{};    // reorder max jitter; duplicate spacing
  std::vector<net::Addr> group_a;  // partition sides
  std::vector<net::Addr> group_b;
  std::string component;  // misbehave: target CFS unit name
  Misbehave mode = Misbehave::kNone;  // misbehave: injected fault mode

  bool operator==(const FaultAction&) const = default;
};

class FaultPlan {
 public:
  // -- builder ------------------------------------------------------------------
  /// Whole-medium (from/to = kNoAddr) or directed-link loss burst: every
  /// delivery in [at, at+window) is dropped with probability `p`.
  FaultPlan& loss_burst(Duration at, double p, Duration window,
                        net::Addr from = net::kNoAddr,
                        net::Addr to = net::kNoAddr);

  /// Each delivery in the window is duplicated with probability `p`
  /// (one extra copy, `spacing` behind the original).
  FaultPlan& duplicate(Duration at, double p, Duration window,
                       Duration spacing = usec(200));

  /// Deliveries in the window pick up uniform extra delay in
  /// [0, max_jitter], shuffling arrival order between in-flight frames.
  FaultPlan& reorder(Duration at, Duration max_jitter, Duration window);

  /// Cuts every (currently up) link between the two sides. Heal restores
  /// exactly the links that were cut.
  FaultPlan& partition(Duration at, std::vector<net::Addr> side_a,
                       std::vector<net::Addr> side_b);
  FaultPlan& heal(Duration at);

  /// Radio off / on (device-level crash, the testbed's crash model).
  FaultPlan& crash(Duration at, net::Addr node);
  FaultPlan& restart(Duration at, net::Addr node);

  /// Scales the node's transmit timing by `factor` for the window
  /// (clamped by the medium to [0.5, 2.0]).
  FaultPlan& clock_drift(Duration at, net::Addr node, double factor,
                         Duration window);

  /// Injects a component-level fault: the named CFS unit on `node` starts
  /// misbehaving in `mode` at `at`; a non-zero `window` schedules the
  /// matching clear (zero = until cleared by another action or by hand).
  /// Drives the supervision layer deterministically (ISSUE 5).
  FaultPlan& misbehave(Duration at, net::Addr node, std::string component,
                       Misbehave mode, Duration window = Duration{0});

  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  std::size_t size() const { return actions_.size(); }

  // -- text format --------------------------------------------------------------
  /// Parses the line format documented at the top of this file without ever
  /// throwing: malformed or out-of-range input returns an Error naming the
  /// offending line.
  static Result<FaultPlan> try_parse(std::string_view text);

  /// Throwing wrapper over try_parse: raises std::invalid_argument with the
  /// same message on any error.
  static FaultPlan parse(std::string_view text);

  /// Renders the plan back into the text format (parse(to_text()) == *this).
  std::string to_text() const;

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace mk::fault
