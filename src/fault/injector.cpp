#include "fault/injector.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::fault {

FaultInjector::FaultInjector(net::SimMedium& medium, Scheduler& sched,
                             NodeControl nodes, std::uint64_t seed)
    : medium_(medium), sched_(sched), nodes_(std::move(nodes)), rng_(seed) {}

FaultInjector::~FaultInjector() {
  // The filter closure captures `this`; never leave it dangling on the
  // medium. (Scheduled action lambdas are inert after the run ends — the
  // harness drops the scheduler queue without firing them.)
  if (filter_installed_) medium_.set_fault_filter(nullptr);
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultAction& action : plan.actions()) {
    sched_.schedule_after(action.at, [this, action] { fire(action); });
  }
  if (!filter_installed_) {
    medium_.set_fault_filter([this](const net::Frame& frame, net::Addr to) {
      return filter(frame, to);
    });
    filter_installed_ = true;
  }
}

void FaultInjector::journal_action(const FaultAction& action, std::uint64_t b,
                                   std::uint64_t c) {
  if (journal_ == nullptr) return;
  journal_->append({obs::RecordKind::kFault,
                    action.from == net::kNoAddr ? 0u : action.from,
                    sched_.now().us,
                    static_cast<std::uint64_t>(action.kind), b, c});
}

void FaultInjector::fire(const FaultAction& action) {
  ++actions_fired_;
  const auto dur_us = static_cast<std::uint64_t>(action.duration.count());
  switch (action.kind) {
    case FaultKind::kLossBurst:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
      journal_action(action,
                     action.kind == FaultKind::kReorder
                         ? static_cast<std::uint64_t>(action.jitter.count())
                         : static_cast<std::uint64_t>(action.p * 1e6),
                     dur_us);
      open_window(action);
      break;
    case FaultKind::kDrift: {
      journal_action(action, static_cast<std::uint64_t>(action.p * 1e6),
                     dur_us);
      const net::Addr node = action.from;
      medium_.set_clock_drift(node, action.p);
      sched_.schedule_after(action.duration,
                            [this, node] { medium_.clear_clock_drift(node); });
      break;
    }
    case FaultKind::kPartition: {
      // Cut each *currently up* directed edge between the sides; remember
      // exactly what was cut so heal restores no more and no less. The
      // set_link calls themselves journal kLinkDown per edge.
      std::vector<std::pair<net::Addr, net::Addr>> cut;
      auto sever = [&](net::Addr x, net::Addr y) {
        if (medium_.has_link(x, y)) {
          cut.emplace_back(x, y);
          medium_.set_link(x, y, false, /*symmetric=*/false);
        }
      };
      for (net::Addr a : action.group_a) {
        for (net::Addr b : action.group_b) {
          sever(a, b);
          sever(b, a);
        }
      }
      journal_action(action, cut.size(), 0);
      cuts_.push_back(std::move(cut));
      break;
    }
    case FaultKind::kHeal: {
      std::size_t restored = 0;
      if (!cuts_.empty()) {
        for (const auto& [x, y] : cuts_.back()) {
          medium_.set_link(x, y, true, /*symmetric=*/false);
          ++restored;
        }
        cuts_.pop_back();
      } else {
        MK_WARN("fault", "heal with no open partition (no-op)");
      }
      journal_action(action, restored, 0);
      break;
    }
    case FaultKind::kCrash:
      journal_action(action, 0, 0);
      MK_ENSURE(nodes_.crash != nullptr, "fault plan crashes a node but no "
                                         "crash control was provided");
      nodes_.crash(action.from);
      break;
    case FaultKind::kRestart:
      journal_action(action, 0, 0);
      MK_ENSURE(nodes_.restart != nullptr, "fault plan restarts a node but no "
                                           "restart control was provided");
      nodes_.restart(action.from);
      break;
    case FaultKind::kMisbehave: {
      journal_action(action, static_cast<std::uint64_t>(action.mode), dur_us);
      MK_ENSURE(nodes_.misbehave != nullptr,
                "fault plan misbehaves a component but no misbehave control "
                "was provided (enable supervision first)");
      nodes_.misbehave(action.from, action.component, action.mode);
      // A windowed misbehaviour clears itself; zero duration = until cleared
      // by a later action.
      if (action.duration.count() > 0 && action.mode != Misbehave::kNone) {
        const net::Addr node = action.from;
        const std::string component = action.component;
        sched_.schedule_after(action.duration, [this, node, component] {
          nodes_.misbehave(node, component, Misbehave::kNone);
        });
      }
      break;
    }
  }
}

void FaultInjector::open_window(const FaultAction& action) {
  Window w;
  w.kind = action.kind;
  w.until = sched_.now() + action.duration;
  w.p = action.p;
  w.jitter = action.jitter;
  w.from = action.from;
  w.to = action.to;
  windows_.push_back(w);
}

void FaultInjector::expire_windows() {
  const TimePoint now = sched_.now();
  std::erase_if(windows_, [now](const Window& w) { return w.until <= now; });
}

bool FaultInjector::any_window_active() const {
  const TimePoint now = sched_.now();
  return std::any_of(windows_.begin(), windows_.end(),
                     [now](const Window& w) { return w.until > now; });
}

net::FaultVerdict FaultInjector::filter(const net::Frame& frame,
                                        net::Addr to) {
  net::FaultVerdict verdict;
  if (windows_.empty()) return verdict;
  expire_windows();
  // Windows are consulted in open order and each draws from the injector's
  // Rng in delivery order — the draw sequence, and therefore the exact set
  // of frames hit, is a pure function of (plan, seed, world seed).
  for (const Window& w : windows_) {
    switch (w.kind) {
      case FaultKind::kLossBurst: {
        const bool in_scope =
            w.from == net::kNoAddr || (frame.tx == w.from && to == w.to);
        if (in_scope && rng_.bernoulli(w.p)) {
          verdict.drop = true;
          return verdict;  // dead frames draw nothing further
        }
        break;
      }
      case FaultKind::kDuplicate:
        if (rng_.bernoulli(w.p)) {
          verdict.duplicates += 1;
          verdict.dup_spacing = w.jitter;
        }
        break;
      case FaultKind::kReorder:
        verdict.extra_delay = verdict.extra_delay +
                              usec(rng_.uniform_int(0, w.jitter.count()));
        break;
      default:
        break;  // topology-level kinds never open windows
    }
  }
  return verdict;
}

}  // namespace mk::fault
