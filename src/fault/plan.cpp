#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mk::fault {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kLossBurst, "loss"}, {FaultKind::kDuplicate, "dup"},
    {FaultKind::kReorder, "reorder"}, {FaultKind::kPartition, "partition"},
    {FaultKind::kHeal, "heal"},       {FaultKind::kCrash, "crash"},
    {FaultKind::kRestart, "restart"}, {FaultKind::kDrift, "drift"},
};

[[noreturn]] void bad_line(std::size_t line_no, const std::string& line,
                           const std::string& why) {
  throw std::invalid_argument("fault plan line " + std::to_string(line_no) +
                              ": " + why + ": \"" + line + "\"");
}

/// "250us" / "40ms" / "5s" -> Duration. Unit suffix is mandatory so plans
/// never silently change meaning when someone assumes the wrong base unit.
Duration parse_duration(const std::string& tok, std::size_t line_no,
                        const std::string& line) {
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(tok, &pos);
  } catch (const std::exception&) {
    bad_line(line_no, line, "bad duration \"" + tok + "\"");
  }
  std::string unit = tok.substr(pos);
  if (unit == "us") return usec(value);
  if (unit == "ms") return msec(value);
  if (unit == "s") return sec(static_cast<std::int64_t>(value));
  bad_line(line_no, line, "bad duration unit \"" + tok + "\" (use us/ms/s)");
}

double parse_prob(const std::string& tok, std::size_t line_no,
                  const std::string& line) {
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    bad_line(line_no, line, "bad number \"" + tok + "\"");
  }
}

net::Addr parse_node(const std::string& tok, std::size_t line_no,
                     const std::string& line) {
  try {
    unsigned long idx = std::stoul(tok);
    return net::addr_for_index(static_cast<std::uint32_t>(idx));
  } catch (const std::exception&) {
    bad_line(line_no, line, "bad node index \"" + tok + "\"");
  }
}

/// Renders a Duration with the coarsest exact unit, so to_text() output
/// stays human-shaped ("2s", not "2000000us").
std::string duration_text(Duration d) {
  std::int64_t us = d.count();
  if (us % 1'000'000 == 0) return std::to_string(us / 1'000'000) + "s";
  if (us % 1'000 == 0) return std::to_string(us / 1'000) + "ms";
  return std::to_string(us) + "us";
}

std::string prob_text(double p) {
  std::ostringstream out;
  out << p;
  return out.str();
}

std::string node_text(net::Addr a) {
  return std::to_string(net::index_for_addr(a));
}

}  // namespace

std::string_view kind_name(FaultKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

FaultPlan& FaultPlan::loss_burst(Duration at, double p, Duration window,
                                 net::Addr from, net::Addr to) {
  FaultAction a;
  a.kind = FaultKind::kLossBurst;
  a.at = at;
  a.p = p;
  a.duration = window;
  a.from = from;
  a.to = to;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::duplicate(Duration at, double p, Duration window,
                                Duration spacing) {
  FaultAction a;
  a.kind = FaultKind::kDuplicate;
  a.at = at;
  a.p = p;
  a.duration = window;
  a.jitter = spacing;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::reorder(Duration at, Duration max_jitter,
                              Duration window) {
  FaultAction a;
  a.kind = FaultKind::kReorder;
  a.at = at;
  a.duration = window;
  a.jitter = max_jitter;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::partition(Duration at, std::vector<net::Addr> side_a,
                                std::vector<net::Addr> side_b) {
  FaultAction a;
  a.kind = FaultKind::kPartition;
  a.at = at;
  a.group_a = std::move(side_a);
  a.group_b = std::move(side_b);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::heal(Duration at) {
  FaultAction a;
  a.kind = FaultKind::kHeal;
  a.at = at;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::crash(Duration at, net::Addr node) {
  FaultAction a;
  a.kind = FaultKind::kCrash;
  a.at = at;
  a.from = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::restart(Duration at, net::Addr node) {
  FaultAction a;
  a.kind = FaultKind::kRestart;
  a.at = at;
  a.from = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::clock_drift(Duration at, net::Addr node, double factor,
                                  Duration window) {
  FaultAction a;
  a.kind = FaultKind::kDrift;
  a.at = at;
  a.from = node;
  a.p = factor;
  a.duration = window;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments, then tokenize.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::vector<std::string> tok;
    for (std::string t; fields >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    if (tok.size() < 3 || tok[0] != "at") {
      bad_line(line_no, line, "expected \"at <time> <action> ...\"");
    }
    Duration at = parse_duration(tok[1], line_no, line);
    const std::string& verb = tok[2];

    auto expect_for = [&](std::size_t i) -> Duration {
      if (i + 1 >= tok.size() || tok[i] != "for") {
        bad_line(line_no, line, "expected \"for <duration>\"");
      }
      return parse_duration(tok[i + 1], line_no, line);
    };

    if (verb == "loss") {
      if (tok.size() == 6) {  // at T loss P for D
        plan.loss_burst(at, parse_prob(tok[3], line_no, line), expect_for(4));
      } else if (tok.size() == 9 && tok[4] == "link") {
        // at T loss P link A B for D
        plan.loss_burst(at, parse_prob(tok[3], line_no, line), expect_for(7),
                        parse_node(tok[5], line_no, line),
                        parse_node(tok[6], line_no, line));
      } else {
        bad_line(line_no, line,
                 "expected \"loss <p> [link <a> <b>] for <duration>\"");
      }
    } else if (verb == "dup") {
      if (tok.size() != 6) {
        bad_line(line_no, line, "expected \"dup <p> for <duration>\"");
      }
      plan.duplicate(at, parse_prob(tok[3], line_no, line), expect_for(4));
    } else if (verb == "reorder") {
      if (tok.size() != 6) {
        bad_line(line_no, line, "expected \"reorder <jitter> for <duration>\"");
      }
      plan.reorder(at, parse_duration(tok[3], line_no, line), expect_for(4));
    } else if (verb == "partition") {
      std::vector<net::Addr> side_a, side_b;
      bool after_bar = false;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        if (tok[i] == "|") {
          if (after_bar) bad_line(line_no, line, "multiple \"|\"");
          after_bar = true;
          continue;
        }
        (after_bar ? side_b : side_a)
            .push_back(parse_node(tok[i], line_no, line));
      }
      if (!after_bar || side_a.empty() || side_b.empty()) {
        bad_line(line_no, line,
                 "expected \"partition <a...> | <b...>\" with both sides");
      }
      plan.partition(at, std::move(side_a), std::move(side_b));
    } else if (verb == "heal") {
      if (tok.size() != 3) bad_line(line_no, line, "expected \"heal\"");
      plan.heal(at);
    } else if (verb == "crash" || verb == "restart") {
      if (tok.size() != 4) {
        bad_line(line_no, line, "expected \"" + verb + " <node>\"");
      }
      net::Addr node = parse_node(tok[3], line_no, line);
      if (verb == "crash") {
        plan.crash(at, node);
      } else {
        plan.restart(at, node);
      }
    } else if (verb == "drift") {
      if (tok.size() != 7) {
        bad_line(line_no, line,
                 "expected \"drift <node> <factor> for <duration>\"");
      }
      plan.clock_drift(at, parse_node(tok[3], line_no, line),
                       parse_prob(tok[4], line_no, line), expect_for(5));
    } else {
      bad_line(line_no, line, "unknown action \"" + verb + "\"");
    }
  }
  return plan;
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  for (const FaultAction& a : actions_) {
    out << "at " << duration_text(a.at) << ' ' << kind_name(a.kind);
    switch (a.kind) {
      case FaultKind::kLossBurst:
        out << ' ' << prob_text(a.p);
        if (a.from != net::kNoAddr) {
          out << " link " << node_text(a.from) << ' ' << node_text(a.to);
        }
        out << " for " << duration_text(a.duration);
        break;
      case FaultKind::kDuplicate:
        out << ' ' << prob_text(a.p) << " for " << duration_text(a.duration);
        break;
      case FaultKind::kReorder:
        out << ' ' << duration_text(a.jitter) << " for "
            << duration_text(a.duration);
        break;
      case FaultKind::kPartition: {
        for (net::Addr n : a.group_a) out << ' ' << node_text(n);
        out << " |";
        for (net::Addr n : a.group_b) out << ' ' << node_text(n);
        break;
      }
      case FaultKind::kHeal:
        break;
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        out << ' ' << node_text(a.from);
        break;
      case FaultKind::kDrift:
        out << ' ' << node_text(a.from) << ' ' << prob_text(a.p) << " for "
            << duration_text(a.duration);
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace mk::fault
