#include "fault/plan.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mk::fault {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kLossBurst, "loss"}, {FaultKind::kDuplicate, "dup"},
    {FaultKind::kReorder, "reorder"}, {FaultKind::kPartition, "partition"},
    {FaultKind::kHeal, "heal"},       {FaultKind::kCrash, "crash"},
    {FaultKind::kRestart, "restart"}, {FaultKind::kDrift, "drift"},
    {FaultKind::kMisbehave, "misbehave"},
};

struct MisbehaveName {
  Misbehave mode;
  std::string_view name;
};

constexpr MisbehaveName kMisbehaveNames[] = {
    {Misbehave::kNone, "none"},
    {Misbehave::kThrow, "throw"},
    {Misbehave::kStall, "stall"},
    {Misbehave::kCorrupt, "corrupt"},
};

// Highest node index the 10.0.0.(index+1) address plan can express without
// spilling out of the final octet.
constexpr std::uint32_t kMaxNodeIndex = 253;

/// Parse context for one line; helpers fill `error` and return false instead
/// of throwing, so arbitrarily hostile input can at worst be rejected.
struct LineCtx {
  std::size_t no = 0;
  const std::string* text = nullptr;
  std::string error;

  bool fail(const std::string& why) {
    error = "fault plan line " + std::to_string(no) + ": " + why + ": \"" +
            *text + "\"";
    return false;
  }
};

/// "250us" / "40ms" / "5s" -> Duration. Unit suffix is mandatory so plans
/// never silently change meaning when someone assumes the wrong base unit.
/// Rejects negatives and magnitudes that would overflow the microsecond
/// arithmetic.
bool parse_duration(const std::string& tok, LineCtx& ctx, Duration& out) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr == tok.data()) {
    return ctx.fail("bad duration \"" + tok + "\"");
  }
  if (value < 0) return ctx.fail("negative duration \"" + tok + "\"");
  std::string_view unit(ptr, static_cast<std::size_t>(tok.data() + tok.size() - ptr));
  std::int64_t scale = 0;
  if (unit == "us") {
    scale = 1;
  } else if (unit == "ms") {
    scale = 1'000;
  } else if (unit == "s") {
    scale = 1'000'000;
  } else {
    return ctx.fail("bad duration unit \"" + tok + "\" (use us/ms/s)");
  }
  if (value > std::numeric_limits<std::int64_t>::max() / scale) {
    return ctx.fail("duration out of range \"" + tok + "\"");
  }
  out = Duration{value * scale};
  return true;
}

/// Finite double in [lo, hi]; the whole token must be numeric (no "0.5x").
bool parse_number(const std::string& tok, LineCtx& ctx, double lo, double hi,
                  const char* what, double& out) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    return ctx.fail(std::string("bad ") + what + " \"" + tok + "\"");
  }
  if (!std::isfinite(value) || value < lo || value > hi) {
    return ctx.fail(std::string(what) + " out of range \"" + tok + "\" (want [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "])");
  }
  out = value;
  return true;
}

bool parse_node(const std::string& tok, LineCtx& ctx, net::Addr& out) {
  std::uint32_t idx = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), idx);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    return ctx.fail("bad node index \"" + tok + "\"");
  }
  if (idx > kMaxNodeIndex) {
    return ctx.fail("node index out of range \"" + tok + "\" (max " +
                    std::to_string(kMaxNodeIndex) + ")");
  }
  out = net::addr_for_index(idx);
  return true;
}

/// CFS unit names: bounded length, identifier-ish characters only, so a
/// hostile plan cannot smuggle control bytes into journals or logs.
bool parse_component(const std::string& tok, LineCtx& ctx, std::string& out) {
  if (tok.empty() || tok.size() > 64) {
    return ctx.fail("bad component name \"" + tok + "\"");
  }
  for (char c : tok) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return ctx.fail("bad component name \"" + tok + "\"");
  }
  out = tok;
  return true;
}

bool parse_misbehave_mode(const std::string& tok, LineCtx& ctx,
                          Misbehave& out) {
  for (const auto& [mode, name] : kMisbehaveNames) {
    if (name == tok) {
      out = mode;
      return true;
    }
  }
  return ctx.fail("bad misbehave mode \"" + tok +
                  "\" (use throw/stall/corrupt/none)");
}

/// Renders a Duration with the coarsest exact unit, so to_text() output
/// stays human-shaped ("2s", not "2000000us").
std::string duration_text(Duration d) {
  std::int64_t us = d.count();
  if (us % 1'000'000 == 0) return std::to_string(us / 1'000'000) + "s";
  if (us % 1'000 == 0) return std::to_string(us / 1'000) + "ms";
  return std::to_string(us) + "us";
}

std::string prob_text(double p) {
  std::ostringstream out;
  out << p;
  return out.str();
}

std::string node_text(net::Addr a) {
  return std::to_string(net::index_for_addr(a));
}

}  // namespace

std::string_view kind_name(FaultKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::string_view misbehave_name(Misbehave mode) {
  for (const auto& [m, name] : kMisbehaveNames) {
    if (m == mode) return name;
  }
  return "?";
}

FaultPlan& FaultPlan::loss_burst(Duration at, double p, Duration window,
                                 net::Addr from, net::Addr to) {
  FaultAction a;
  a.kind = FaultKind::kLossBurst;
  a.at = at;
  a.p = p;
  a.duration = window;
  a.from = from;
  a.to = to;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::duplicate(Duration at, double p, Duration window,
                                Duration spacing) {
  FaultAction a;
  a.kind = FaultKind::kDuplicate;
  a.at = at;
  a.p = p;
  a.duration = window;
  a.jitter = spacing;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::reorder(Duration at, Duration max_jitter,
                              Duration window) {
  FaultAction a;
  a.kind = FaultKind::kReorder;
  a.at = at;
  a.duration = window;
  a.jitter = max_jitter;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::partition(Duration at, std::vector<net::Addr> side_a,
                                std::vector<net::Addr> side_b) {
  FaultAction a;
  a.kind = FaultKind::kPartition;
  a.at = at;
  a.group_a = std::move(side_a);
  a.group_b = std::move(side_b);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::heal(Duration at) {
  FaultAction a;
  a.kind = FaultKind::kHeal;
  a.at = at;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::crash(Duration at, net::Addr node) {
  FaultAction a;
  a.kind = FaultKind::kCrash;
  a.at = at;
  a.from = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::restart(Duration at, net::Addr node) {
  FaultAction a;
  a.kind = FaultKind::kRestart;
  a.at = at;
  a.from = node;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::clock_drift(Duration at, net::Addr node, double factor,
                                  Duration window) {
  FaultAction a;
  a.kind = FaultKind::kDrift;
  a.at = at;
  a.from = node;
  a.p = factor;
  a.duration = window;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::misbehave(Duration at, net::Addr node,
                                std::string component, Misbehave mode,
                                Duration window) {
  FaultAction a;
  a.kind = FaultKind::kMisbehave;
  a.at = at;
  a.from = node;
  a.component = std::move(component);
  a.mode = mode;
  a.duration = window;
  actions_.push_back(std::move(a));
  return *this;
}

Result<FaultPlan> FaultPlan::try_parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments, then tokenize.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::vector<std::string> tok;
    for (std::string t; fields >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    LineCtx ctx;
    ctx.no = line_no;
    ctx.text = &line;

    if (tok.size() < 3 || tok[0] != "at") {
      ctx.fail("expected \"at <time> <action> ...\"");
      return Result<FaultPlan>::fail(ctx.error);
    }
    Duration at{};
    if (!parse_duration(tok[1], ctx, at)) {
      return Result<FaultPlan>::fail(ctx.error);
    }
    const std::string& verb = tok[2];

    // "for <duration>" at token position i; fills `window`.
    auto expect_for = [&](std::size_t i, Duration& window) {
      if (i + 1 >= tok.size() || tok[i] != "for") {
        return ctx.fail("expected \"for <duration>\"");
      }
      return parse_duration(tok[i + 1], ctx, window);
    };

    bool ok = true;
    if (verb == "loss") {
      double p = 0.0;
      Duration window{};
      if (tok.size() == 6) {  // at T loss P for D
        ok = parse_number(tok[3], ctx, 0.0, 1.0, "probability", p) &&
             expect_for(4, window);
        if (ok) plan.loss_burst(at, p, window);
      } else if (tok.size() == 9 && tok[4] == "link") {
        // at T loss P link A B for D
        net::Addr from = net::kNoAddr;
        net::Addr to = net::kNoAddr;
        ok = parse_number(tok[3], ctx, 0.0, 1.0, "probability", p) &&
             parse_node(tok[5], ctx, from) && parse_node(tok[6], ctx, to) &&
             expect_for(7, window);
        if (ok) plan.loss_burst(at, p, window, from, to);
      } else {
        ok = ctx.fail("expected \"loss <p> [link <a> <b>] for <duration>\"");
      }
    } else if (verb == "dup") {
      double p = 0.0;
      Duration window{};
      ok = tok.size() == 6
               ? parse_number(tok[3], ctx, 0.0, 1.0, "probability", p) &&
                     expect_for(4, window)
               : ctx.fail("expected \"dup <p> for <duration>\"");
      if (ok) plan.duplicate(at, p, window);
    } else if (verb == "reorder") {
      Duration jitter{};
      Duration window{};
      ok = tok.size() == 6
               ? parse_duration(tok[3], ctx, jitter) && expect_for(4, window)
               : ctx.fail("expected \"reorder <jitter> for <duration>\"");
      if (ok) plan.reorder(at, jitter, window);
    } else if (verb == "partition") {
      std::vector<net::Addr> side_a, side_b;
      bool after_bar = false;
      for (std::size_t i = 3; ok && i < tok.size(); ++i) {
        if (tok[i] == "|") {
          if (after_bar) ok = ctx.fail("multiple \"|\"");
          after_bar = true;
          continue;
        }
        net::Addr n = net::kNoAddr;
        ok = parse_node(tok[i], ctx, n);
        if (ok) (after_bar ? side_b : side_a).push_back(n);
      }
      if (ok && (!after_bar || side_a.empty() || side_b.empty())) {
        ok = ctx.fail("expected \"partition <a...> | <b...>\" with both sides");
      }
      if (ok) plan.partition(at, std::move(side_a), std::move(side_b));
    } else if (verb == "heal") {
      ok = tok.size() == 3 || ctx.fail("expected \"heal\"");
      if (ok) plan.heal(at);
    } else if (verb == "crash" || verb == "restart") {
      net::Addr node = net::kNoAddr;
      ok = tok.size() == 4 ? parse_node(tok[3], ctx, node)
                           : ctx.fail("expected \"" + verb + " <node>\"");
      if (ok) {
        if (verb == "crash") {
          plan.crash(at, node);
        } else {
          plan.restart(at, node);
        }
      }
    } else if (verb == "drift") {
      net::Addr node = net::kNoAddr;
      double factor = 0.0;
      Duration window{};
      // The medium clamps applied drift to [0.5, 2.0]; the plan accepts a
      // wider-but-sane band so intent stays visible in round-trips.
      ok = tok.size() == 7
               ? parse_node(tok[3], ctx, node) &&
                     parse_number(tok[4], ctx, 0.01, 100.0, "drift factor",
                                  factor) &&
                     expect_for(5, window)
               : ctx.fail("expected \"drift <node> <factor> for <duration>\"");
      if (ok) plan.clock_drift(at, node, factor, window);
    } else if (verb == "misbehave") {
      // at T misbehave N COMPONENT MODE [for D]
      net::Addr node = net::kNoAddr;
      std::string component;
      Misbehave mode = Misbehave::kNone;
      Duration window{};
      if (tok.size() == 6 || tok.size() == 8) {
        ok = parse_node(tok[3], ctx, node) &&
             parse_component(tok[4], ctx, component) &&
             parse_misbehave_mode(tok[5], ctx, mode);
        if (ok && tok.size() == 8) ok = expect_for(6, window);
      } else {
        ok = ctx.fail(
            "expected \"misbehave <node> <component> "
            "throw|stall|corrupt [for <duration>]\"");
      }
      if (ok) plan.misbehave(at, node, std::move(component), mode, window);
    } else {
      ok = ctx.fail("unknown action \"" + verb + "\"");
    }
    if (!ok) return Result<FaultPlan>::fail(ctx.error);
  }
  return Result<FaultPlan>::ok(std::move(plan));
}

FaultPlan FaultPlan::parse(std::string_view text) {
  auto result = try_parse(text);
  if (!result.has_value()) throw std::invalid_argument(result.error());
  return std::move(result.value());
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  for (const FaultAction& a : actions_) {
    out << "at " << duration_text(a.at) << ' ' << kind_name(a.kind);
    switch (a.kind) {
      case FaultKind::kLossBurst:
        out << ' ' << prob_text(a.p);
        if (a.from != net::kNoAddr) {
          out << " link " << node_text(a.from) << ' ' << node_text(a.to);
        }
        out << " for " << duration_text(a.duration);
        break;
      case FaultKind::kDuplicate:
        out << ' ' << prob_text(a.p) << " for " << duration_text(a.duration);
        break;
      case FaultKind::kReorder:
        out << ' ' << duration_text(a.jitter) << " for "
            << duration_text(a.duration);
        break;
      case FaultKind::kPartition: {
        for (net::Addr n : a.group_a) out << ' ' << node_text(n);
        out << " |";
        for (net::Addr n : a.group_b) out << ' ' << node_text(n);
        break;
      }
      case FaultKind::kHeal:
        break;
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        out << ' ' << node_text(a.from);
        break;
      case FaultKind::kDrift:
        out << ' ' << node_text(a.from) << ' ' << prob_text(a.p) << " for "
            << duration_text(a.duration);
        break;
      case FaultKind::kMisbehave:
        out << ' ' << node_text(a.from) << ' ' << a.component << ' '
            << misbehave_name(a.mode);
        if (a.duration.count() != 0) {
          out << " for " << duration_text(a.duration);
        }
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace mk::fault
