// MANETKit event ontology (§4.2).
//
// Communication between CFS units is carried out using events drawn from an
// extensible polymorphic ontology: event types are interned strings (dense
// ids), and an Event optionally carries a PacketBB message — the paper bases
// its event structure on the PacketBB format — plus a small attribute map for
// context values (battery level, link quality, ...).
//
// Events are designed to be *cheap to fan out*: the carried PacketBB message
// is held as a shared immutable pointer, so copying an Event to N co-deployed
// protocols shares one message allocation instead of deep-copying the nested
// TLV/address-block structure N times. A component that wants to modify the
// carried message goes through mutable_msg(), which clones lazily
// (copy-on-write) only when the message is actually shared. The attribute map
// is a small sorted flat vector — events carry at most a handful of context
// attributes, where a node-based std::map costs one allocation per entry.
//
// Each CFS unit declares an EventTuple <required-events, provided-events>;
// the Framework Manager derives bindings from these (see core/).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "packetbb/packetbb.hpp"
#include "util/time.hpp"

namespace mk::ev {

using EventTypeId = std::uint32_t;
inline constexpr EventTypeId kInvalidEventType = 0;

/// Global interning registry: name <-> dense id. Thread-safe. Ids are stable
/// for the process lifetime so they can be compared across nodes in one
/// simulation. Reads (lookup/name) take a shared lock so concurrent
/// dispatchers never serialize on the registry; intern writes are rare
/// (deployment time only).
class EventTypeRegistry {
 public:
  static EventTypeRegistry& instance();

  /// Returns the id for `name`, interning it on first use.
  EventTypeId intern(std::string_view name);

  /// Id for an already-interned name, or kInvalidEventType.
  EventTypeId lookup(std::string_view name) const;

  /// Name for an id ("?" if unknown).
  std::string name(EventTypeId id) const;

  /// FNV-1a hash of the name behind `id`: a canonical identifier that is
  /// independent of interning order, so trace digests built from it compare
  /// across runs (and processes) that interned types in different orders.
  /// Cached at intern time — the lookup is a shared-lock indexed load.
  std::uint64_t stable_hash(EventTypeId id) const;

  std::size_t size() const;

 private:
  EventTypeRegistry() = default;
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, EventTypeId>> by_name_;  // sorted by name
  std::vector<std::string> by_id_{"<invalid>"};
  std::vector<std::uint64_t> by_id_hash_{0};
};

/// Convenience: intern at call site.
EventTypeId etype(std::string_view name);

/// The well-known event names used by the built-in CFs and protocols.
/// (Protocols are free to define further types; these are just the shared
/// vocabulary from the paper's case studies.)
namespace types {
// Neighbour detection / MPR
inline const std::string HELLO_IN = "HELLO_IN";
inline const std::string HELLO_OUT = "HELLO_OUT";
inline const std::string NHOOD_CHANGE = "NHOOD_CHANGE";
inline const std::string MPR_CHANGE = "MPR_CHANGE";
// OLSR
inline const std::string TC_IN = "TC_IN";
inline const std::string TC_OUT = "TC_OUT";
// DYMO
inline const std::string RM_IN = "RM_IN";      // routing message (RREQ/RREP)
inline const std::string RM_OUT = "RM_OUT";
inline const std::string RERR_IN = "RERR_IN";
inline const std::string RERR_OUT = "RERR_OUT";
// AODV
inline const std::string AODV_IN = "AODV_IN";
inline const std::string AODV_OUT = "AODV_OUT";
// NetLink (kernel packet-filter) events
inline const std::string NO_ROUTE = "NO_ROUTE";
inline const std::string ROUTE_UPDATE = "ROUTE_UPDATE";
inline const std::string SEND_ROUTE_ERR = "SEND_ROUTE_ERR";
inline const std::string ROUTE_FOUND = "ROUTE_FOUND";
// Context events
inline const std::string POWER_STATUS = "POWER_STATUS";
inline const std::string LINK_QUALITY = "LINK_QUALITY";
}  // namespace types

using AttrValue = std::variant<std::int64_t, double, std::string>;

/// Shared immutable PacketBB message. Always created via
/// std::make_shared<pbb::Message> (Event::set_msg does this); the const in
/// the type expresses the sharing contract, not storage constness — COW
/// mutation through Event::mutable_msg() is well-defined.
using MsgPtr = std::shared_ptr<const pbb::Message>;

/// Small sorted flat map for event attributes. Events carry a handful of
/// context values at most, so a contiguous vector with binary search beats a
/// node-based map on both lookup and copy (one allocation total instead of
/// one per entry).
class AttrMap {
 public:
  using Entry = std::pair<std::string, AttrValue>;
  using const_iterator = std::vector<Entry>::const_iterator;

  void set(std::string key, AttrValue value);
  const AttrValue* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  /// Drops all entries but keeps the flat vector's capacity (arena reuse).
  void clear() { entries_.clear(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  std::vector<Entry> entries_;  // sorted by key
};

/// A unit of communication between CFS units.
class Event {
 public:
  Event() = default;
  explicit Event(EventTypeId type) : type_(type) {}
  explicit Event(std::string_view type_name) : type_(etype(type_name)) {}

  EventTypeId type() const { return type_; }
  std::string type_name() const;

  /// Previous hop the carried message arrived from (for *_IN events).
  pbb::Addr from = 0;
  /// Local address the event was raised at (useful in simulation harnesses).
  pbb::Addr local = 0;
  /// Time the event was raised.
  TimePoint raised_at{};

  // -- carried PacketBB message (shared immutable, copy-on-write) -------------
  bool has_msg() const { return msg_ != nullptr; }
  /// Read-only view of the carried message (nullptr when absent).
  const pbb::Message* msg() const { return msg_.get(); }
  /// The shared handle itself, for zero-copy hand-off to another event.
  const MsgPtr& shared_msg() const { return msg_; }
  /// Attaches an owned copy of `m`; returns a mutable reference to it so a
  /// builder can keep editing without triggering a COW clone.
  pbb::Message& set_msg(pbb::Message m);
  /// Attaches an already-shared message without copying.
  void set_msg(MsgPtr m) { msg_ = std::move(m); }
  /// Attaches a recycled pool message (pbb::acquire_message) and returns a
  /// mutable reference for in-place building. The message arrives STALE WARM:
  /// its nested vectors still hold the previous tenant's size and capacity,
  /// so the caller must overwrite every field (the *_into builder
  /// discipline) before the event is emitted.
  pbb::Message& acquire_msg();
  void clear_msg() { msg_.reset(); }
  /// Copy-on-write access: clones the message only if it is shared with
  /// other events (or creates an empty one if absent).
  pbb::Message& mutable_msg();

  // -- attribute map ----------------------------------------------------------
  void set_int(std::string key, std::int64_t v) {
    attrs_.set(std::move(key), v);
  }
  void set_double(std::string key, double v) { attrs_.set(std::move(key), v); }
  void set_string(std::string key, std::string v) {
    attrs_.set(std::move(key), std::move(v));
  }

  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  double get_double(std::string_view key, double fallback = 0.0) const;
  std::string get_string(std::string_view key, std::string fallback = "") const;
  bool has_attr(std::string_view key) const { return attrs_.contains(key); }

  const AttrMap& attrs() const { return attrs_; }

  /// Returns the event to a default-constructed state (new type `type`),
  /// releasing the carried message but keeping the attr vector's capacity.
  /// Used by core::EventArena when recycling pooled events.
  void reset(EventTypeId type = kInvalidEventType) {
    type_ = type;
    from = 0;
    local = 0;
    raised_at = TimePoint{};
    msg_.reset();
    attrs_.clear();
  }

 private:
  EventTypeId type_ = kInvalidEventType;
  MsgPtr msg_;
  AttrMap attrs_;
};

/// The declarative composition contract of a CFS unit (§4.2): the set of
/// event types it wants to receive, the set it can generate, and the subset
/// of required events it wants *exclusively* (other requirers are then
/// skipped — footnote 2 of the paper).
struct EventTuple {
  std::set<EventTypeId> required;
  std::set<EventTypeId> provided;
  std::set<EventTypeId> exclusive;

  bool requires_type(EventTypeId t) const { return required.count(t) > 0; }
  bool provides(EventTypeId t) const { return provided.count(t) > 0; }

  static std::set<EventTypeId> ids(const std::vector<std::string>& names);
};

}  // namespace mk::ev
