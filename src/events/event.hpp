// MANETKit event ontology (§4.2).
//
// Communication between CFS units is carried out using events drawn from an
// extensible polymorphic ontology: event types are interned strings (dense
// ids), and an Event optionally carries a PacketBB message — the paper bases
// its event structure on the PacketBB format — plus a small attribute map for
// context values (battery level, link quality, ...).
//
// Each CFS unit declares an EventTuple <required-events, provided-events>;
// the Framework Manager derives bindings from these (see core/).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "packetbb/packetbb.hpp"
#include "util/time.hpp"

namespace mk::ev {

using EventTypeId = std::uint32_t;
inline constexpr EventTypeId kInvalidEventType = 0;

/// Global interning registry: name <-> dense id. Thread-safe. Ids are stable
/// for the process lifetime so they can be compared across nodes in one
/// simulation.
class EventTypeRegistry {
 public:
  static EventTypeRegistry& instance();

  /// Returns the id for `name`, interning it on first use.
  EventTypeId intern(std::string_view name);

  /// Id for an already-interned name, or kInvalidEventType.
  EventTypeId lookup(std::string_view name) const;

  /// Name for an id ("?" if unknown).
  std::string name(EventTypeId id) const;

  std::size_t size() const;

 private:
  EventTypeRegistry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, EventTypeId, std::less<>> by_name_;
  std::vector<std::string> by_id_{"<invalid>"};
};

/// Convenience: intern at call site.
EventTypeId etype(std::string_view name);

/// The well-known event names used by the built-in CFs and protocols.
/// (Protocols are free to define further types; these are just the shared
/// vocabulary from the paper's case studies.)
namespace types {
// Neighbour detection / MPR
inline const std::string HELLO_IN = "HELLO_IN";
inline const std::string HELLO_OUT = "HELLO_OUT";
inline const std::string NHOOD_CHANGE = "NHOOD_CHANGE";
inline const std::string MPR_CHANGE = "MPR_CHANGE";
// OLSR
inline const std::string TC_IN = "TC_IN";
inline const std::string TC_OUT = "TC_OUT";
// DYMO
inline const std::string RM_IN = "RM_IN";      // routing message (RREQ/RREP)
inline const std::string RM_OUT = "RM_OUT";
inline const std::string RERR_IN = "RERR_IN";
inline const std::string RERR_OUT = "RERR_OUT";
// AODV
inline const std::string AODV_IN = "AODV_IN";
inline const std::string AODV_OUT = "AODV_OUT";
// NetLink (kernel packet-filter) events
inline const std::string NO_ROUTE = "NO_ROUTE";
inline const std::string ROUTE_UPDATE = "ROUTE_UPDATE";
inline const std::string SEND_ROUTE_ERR = "SEND_ROUTE_ERR";
inline const std::string ROUTE_FOUND = "ROUTE_FOUND";
// Context events
inline const std::string POWER_STATUS = "POWER_STATUS";
inline const std::string LINK_QUALITY = "LINK_QUALITY";
}  // namespace types

using AttrValue = std::variant<std::int64_t, double, std::string>;

/// A unit of communication between CFS units.
class Event {
 public:
  Event() = default;
  explicit Event(EventTypeId type) : type_(type) {}
  explicit Event(std::string_view type_name) : type_(etype(type_name)) {}

  EventTypeId type() const { return type_; }
  std::string type_name() const;

  /// Previous hop the carried message arrived from (for *_IN events).
  pbb::Addr from = 0;
  /// Local address the event was raised at (useful in simulation harnesses).
  pbb::Addr local = 0;
  /// Time the event was raised.
  TimePoint raised_at{};

  /// The PacketBB message carried by the event, if any.
  std::optional<pbb::Message> msg;

  // -- attribute map ----------------------------------------------------------
  void set_int(std::string key, std::int64_t v) { attrs_[std::move(key)] = v; }
  void set_double(std::string key, double v) { attrs_[std::move(key)] = v; }
  void set_string(std::string key, std::string v) {
    attrs_[std::move(key)] = std::move(v);
  }

  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  double get_double(std::string_view key, double fallback = 0.0) const;
  std::string get_string(std::string_view key, std::string fallback = "") const;
  bool has_attr(std::string_view key) const;

  const std::map<std::string, AttrValue, std::less<>>& attrs() const {
    return attrs_;
  }

 private:
  EventTypeId type_ = kInvalidEventType;
  std::map<std::string, AttrValue, std::less<>> attrs_;
};

/// The declarative composition contract of a CFS unit (§4.2): the set of
/// event types it wants to receive, the set it can generate, and the subset
/// of required events it wants *exclusively* (other requirers are then
/// skipped — footnote 2 of the paper).
struct EventTuple {
  std::set<EventTypeId> required;
  std::set<EventTypeId> provided;
  std::set<EventTypeId> exclusive;

  bool requires_type(EventTypeId t) const { return required.count(t) > 0; }
  bool provides(EventTypeId t) const { return provided.count(t) > 0; }

  static std::set<EventTypeId> ids(const std::vector<std::string>& names);
};

}  // namespace mk::ev
