#include "events/event.hpp"

#include <algorithm>
#include <mutex>

#include "obs/journal.hpp"
#include "packetbb/message_pool.hpp"
#include "util/assert.hpp"

namespace mk::ev {

namespace {

/// Sorted-vector lookup shared by the registry's name index.
template <typename Vec>
auto name_lower_bound(Vec& v, std::string_view name) {
  return std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
}

}  // namespace

EventTypeRegistry& EventTypeRegistry::instance() {
  static EventTypeRegistry registry;
  return registry;
}

EventTypeId EventTypeRegistry::intern(std::string_view name) {
  MK_ASSERT(!name.empty());
  {
    // Fast path: already interned — shared lock only.
    std::shared_lock lock(mutex_);
    auto it = name_lower_bound(by_name_, name);
    if (it != by_name_.end() && it->first == name) return it->second;
  }
  std::unique_lock lock(mutex_);
  // Re-check: another thread may have interned between the two locks.
  auto it = name_lower_bound(by_name_, name);
  if (it != by_name_.end() && it->first == name) return it->second;
  auto id = static_cast<EventTypeId>(by_id_.size());
  by_id_.emplace_back(name);
  by_id_hash_.push_back(obs::fnv1a_str(name));
  by_name_.emplace(it, std::string{name}, id);
  return id;
}

EventTypeId EventTypeRegistry::lookup(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = name_lower_bound(by_name_, name);
  return (it != by_name_.end() && it->first == name) ? it->second
                                                     : kInvalidEventType;
}

std::string EventTypeRegistry::name(EventTypeId id) const {
  std::shared_lock lock(mutex_);
  if (id >= by_id_.size()) return "?";
  return by_id_[id];
}

std::uint64_t EventTypeRegistry::stable_hash(EventTypeId id) const {
  std::shared_lock lock(mutex_);
  return id < by_id_hash_.size() ? by_id_hash_[id] : 0;
}

std::size_t EventTypeRegistry::size() const {
  std::shared_lock lock(mutex_);
  return by_id_.size() - 1;
}

EventTypeId etype(std::string_view name) {
  return EventTypeRegistry::instance().intern(name);
}

void AttrMap::set(std::string key, AttrValue value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.emplace(it, std::move(key), std::move(value));
  }
}

const AttrValue* AttrMap::find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.first < k; });
  return (it != entries_.end() && it->first == key) ? &it->second : nullptr;
}

std::string Event::type_name() const {
  return EventTypeRegistry::instance().name(type_);
}

pbb::Message& Event::set_msg(pbb::Message m) {
  // Pool-backed: the shell and control block are recycled; the moved-in
  // message donates its nested buffers to the slot.
  auto owned = pbb::acquire_message();
  *owned = std::move(m);
  pbb::Message& ref = *owned;
  msg_ = std::move(owned);
  return ref;
}

pbb::Message& Event::acquire_msg() {
  auto owned = pbb::acquire_message();
  pbb::Message& ref = *owned;
  msg_ = std::move(owned);
  return ref;
}

pbb::Message& Event::mutable_msg() {
  if (msg_ == nullptr) {
    // Contract: absent message -> an *empty* one, so clear the recycled
    // slot's stale-warm vectors (shell fields are reset by the pool).
    auto fresh = pbb::acquire_message();
    fresh->tlvs.clear();
    fresh->addr_blocks.clear();
    msg_ = std::move(fresh);
  } else if (msg_.use_count() > 1) {
    // COW clone via copy-assign into a recycled slot: when the slot's nested
    // vectors are warm from a previous tenant, the clone allocates nothing.
    auto clone = pbb::acquire_message();
    *clone = *msg_;
    msg_ = std::move(clone);
  }
  // Safe: every message reachable here was allocated non-const via
  // acquire_message above or in set_msg, and is uniquely owned.
  return const_cast<pbb::Message&>(*msg_);
}

std::int64_t Event::get_int(std::string_view key, std::int64_t fallback) const {
  const AttrValue* v = attrs_.find(key);
  if (v == nullptr) return fallback;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  return fallback;
}

double Event::get_double(std::string_view key, double fallback) const {
  const AttrValue* v = attrs_.find(key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

std::string Event::get_string(std::string_view key, std::string fallback) const {
  const AttrValue* v = attrs_.find(key);
  if (v == nullptr) return fallback;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return fallback;
}

std::set<EventTypeId> EventTuple::ids(const std::vector<std::string>& names) {
  std::set<EventTypeId> out;
  for (const auto& n : names) out.insert(etype(n));
  return out;
}

}  // namespace mk::ev
