#include "events/event.hpp"

#include "util/assert.hpp"

namespace mk::ev {

EventTypeRegistry& EventTypeRegistry::instance() {
  static EventTypeRegistry registry;
  return registry;
}

EventTypeId EventTypeRegistry::intern(std::string_view name) {
  MK_ASSERT(!name.empty());
  std::scoped_lock lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  auto id = static_cast<EventTypeId>(by_id_.size());
  by_id_.emplace_back(name);
  by_name_.emplace(std::string{name}, id);
  return id;
}

EventTypeId EventTypeRegistry::lookup(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidEventType : it->second;
}

std::string EventTypeRegistry::name(EventTypeId id) const {
  std::scoped_lock lock(mutex_);
  if (id >= by_id_.size()) return "?";
  return by_id_[id];
}

std::size_t EventTypeRegistry::size() const {
  std::scoped_lock lock(mutex_);
  return by_id_.size() - 1;
}

EventTypeId etype(std::string_view name) {
  return EventTypeRegistry::instance().intern(name);
}

std::string Event::type_name() const {
  return EventTypeRegistry::instance().name(type_);
}

std::int64_t Event::get_int(std::string_view key, std::int64_t fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  if (const auto* v = std::get_if<std::int64_t>(&it->second)) return *v;
  return fallback;
}

double Event::get_double(std::string_view key, double fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  if (const auto* v = std::get_if<double>(&it->second)) return *v;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

std::string Event::get_string(std::string_view key, std::string fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
  return fallback;
}

bool Event::has_attr(std::string_view key) const {
  return attrs_.find(key) != attrs_.end();
}

std::set<EventTypeId> EventTuple::ids(const std::vector<std::string>& names) {
  std::set<EventTypeId> out;
  for (const auto& n : names) out.insert(etype(n));
  return out;
}

}  // namespace mk::ev
