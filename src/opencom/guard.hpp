// Guarded invocation: the OpenCom-level fault barrier under MANETKit's
// supervision layer (ISSUE 5).
//
// OpenCom components are in-process plug-ins — a receptacle call into a
// misbehaving component would otherwise unwind straight through the caller
// (here: the Framework Manager's dispatch loop, which must keep routing for
// every *other* unit). `guarded_invoke` turns an arbitrary invocation into a
// fault domain: any exception is captured into an InvokeFault descriptor and
// swallowed; the caller decides what the fault *means* (count it, trip a
// breaker, restart the component) — policy stays above the mechanism.
#pragma once

#include <exception>
#include <string>
#include <utility>

namespace mk::oc {

/// What escaped a guarded invocation. `what` is the exception message (or a
/// fixed marker for non-std exceptions) — diagnostic only; supervision keys
/// its decisions off the *fact* of the fault, never the text.
struct InvokeFault {
  std::string what;
};

/// Runs `fn` inside a fault barrier. Returns true when `fn` completed
/// normally; on any exception fills `fault` and returns false. Never
/// propagates (OOM while copying the message aborts, which is acceptable:
/// there is no meaningful recovery from allocation failure mid-unwind).
template <typename Fn>
bool guarded_invoke(Fn&& fn, InvokeFault& fault) noexcept {
  try {
    std::forward<Fn>(fn)();
    return true;
  } catch (const std::exception& e) {
    fault.what = e.what();
  } catch (...) {
    fault.what = "(non-std exception)";
  }
  return false;
}

/// Renders a captured exception_ptr's message (the timer-fire trap hands the
/// world one of these; see util::SimScheduler::set_fault_trap).
std::string describe_exception(std::exception_ptr ep) noexcept;

}  // namespace mk::oc
