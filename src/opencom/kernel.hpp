// OpenCom runtime kernel: component factories (dynamic "loading"),
// instantiation, and the binding primitive that connects a receptacle of one
// component to an interface of another.
//
// The kernel is deliberately small — per the paper, all richer behaviour
// (integrity rules, nesting, reconfiguration) lives in ComponentFrameworks,
// which use these primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "opencom/component.hpp"

namespace mk::oc {

class Kernel {
 public:
  using Factory = std::function<std::unique_ptr<Component>()>;

  /// Registers (loads) a component type. Overwrites any previous factory of
  /// the same name — analogous to loading a newer version of a component.
  void register_factory(std::string type_name, Factory factory);

  bool has_factory(std::string_view type_name) const;

  std::vector<std::string> factory_names() const;

  /// Instantiates a registered component type. Throws std::logic_error for
  /// unknown types.
  std::unique_ptr<Component> instantiate(std::string_view type_name);

  /// Connects `user`'s receptacle to `provider`'s interface. The interface
  /// type declared by the receptacle must equal the interface name.
  /// Throws std::logic_error on missing receptacle/interface or type clash.
  void bind(Component& user, std::string_view receptacle, Component& provider,
            std::string_view iface_name);

  /// Disconnects a receptacle (no-op if it was not connected).
  void unbind(Component& user, std::string_view receptacle);

  std::uint64_t components_created() const { return created_; }

 private:
  std::map<std::string, Factory, std::less<>> factories_;
  std::uint64_t created_ = 0;
};

}  // namespace mk::oc
