// Component Frameworks (CFs): composite components that own plug-in
// components, police integrity rules over their composition, and expose the
// paper's *architecture meta-model* — a generic API through which the
// interconnections of the composed set can be inspected and reconfigured.
//
// CFs are themselves Components, so they nest (MANETKit CF ⊃ ManetProtocol
// CFs ⊃ ManetControl CF, ...). Reconfiguration safety is provided by the CF
// lock: event-processing threads and reconfiguration threads both take it, so
// a reconfigurer sees the CF quiescent (the paper's critical-section
// mechanism, with OpenCom quiescence folded into the same lock).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "opencom/component.hpp"
#include "opencom/kernel.hpp"

namespace mk::oc {

using ComponentId = std::uint64_t;
using BindingId = std::uint64_t;
inline constexpr ComponentId kNoComponent = 0;

/// Snapshot of one internal binding for the architecture meta-model.
struct BindingInfo {
  BindingId id = 0;
  ComponentId user = kNoComponent;
  std::string receptacle;
  ComponentId provider = kNoComponent;
  std::string iface;
};

class ComponentFramework;

/// Read-only view of a (possibly hypothetical) composition, handed to
/// integrity rules for validation *before* a mutation is committed.
class CfView {
 public:
  explicit CfView(std::vector<const Component*> members)
      : members_(std::move(members)) {}

  const std::vector<const Component*>& members() const { return members_; }

  std::size_t count_type(std::string_view type_name) const;
  std::size_t count_providing(std::string_view iface_name) const;

 private:
  std::vector<const Component*> members_;
};

/// Returns true if the composition is legal; on failure fill `err`.
using IntegrityRule =
    std::function<bool(const CfView&, std::string& err)>;

class ComponentFramework : public Component {
 public:
  ComponentFramework(Kernel& kernel, std::string type_name);
  ~ComponentFramework() override;

  Kernel& kernel() { return kernel_; }

  // -- integrity ------------------------------------------------------------

  /// Registers a rule checked on every insert/remove/replace.
  void add_integrity_rule(IntegrityRule rule);

  // -- composition (architecture meta-model: mutation) -----------------------

  /// Inserts a plug-in, taking ownership. Throws std::logic_error if an
  /// integrity rule rejects the resulting composition.
  ComponentId insert(std::unique_ptr<Component> comp);

  /// Instantiates `type_name` via the kernel and inserts it.
  ComponentId insert_type(std::string_view type_name);

  /// Removes and destroys a plug-in; its bindings (both directions) are
  /// disconnected first. Throws if integrity rules reject the removal.
  void remove(ComponentId id);

  /// Removes a plug-in but returns it instead of destroying it (used for
  /// state transfer — carrying an S component to a new protocol instance).
  std::unique_ptr<Component> extract(ComponentId id);

  /// Replaces `old_id` with `replacement`: disconnects the old component,
  /// inserts the new one and re-establishes every binding the old component
  /// participated in whose receptacle/interface names the replacement also
  /// supports. Returns the new component's id.
  ComponentId replace(ComponentId old_id, std::unique_ptr<Component> replacement);

  /// Connects member `user`'s receptacle to member `provider`'s interface.
  BindingId connect(ComponentId user, std::string_view receptacle,
                    ComponentId provider, std::string_view iface);

  void disconnect(BindingId id);

  // -- architecture meta-model: introspection --------------------------------

  std::vector<ComponentId> members() const;
  Component* member(ComponentId id) const;

  /// Finds the first member with the given instance name (nullptr if none).
  Component* find(std::string_view instance_name) const;
  ComponentId find_id(std::string_view instance_name) const;

  /// Finds the first member providing interface `iface_name`.
  Component* find_providing(std::string_view iface_name) const;

  std::vector<BindingInfo> bindings() const;

  std::size_t member_count() const { return members_.size(); }

  // -- quiescence -------------------------------------------------------------

  /// Acquires the CF lock. Event dispatch into this CF and reconfiguration
  /// both hold it, so holding the guard means the CF is quiescent.
  std::unique_lock<std::recursive_mutex> quiesce() const {
    return std::unique_lock{lock_};
  }

  std::recursive_mutex& cf_lock() const { return lock_; }

 private:
  void check_integrity(const std::vector<const Component*>& members) const;
  std::vector<const Component*> current_members() const;
  void disconnect_all_involving(ComponentId id);

  Kernel& kernel_;
  std::uint64_t next_id_ = 1;
  std::map<ComponentId, std::unique_ptr<Component>> members_;
  std::map<BindingId, BindingInfo> bindings_;
  std::vector<IntegrityRule> rules_;
  mutable std::recursive_mutex lock_;
};

/// Paper-fidelity alias: each CF *exports* an architecture meta-model; in this
/// implementation the CF's own API *is* that meta-model.
using ArchitectureMetaModel = ComponentFramework;

}  // namespace mk::oc
