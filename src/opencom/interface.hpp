// OpenCom-style interfaces.
//
// A component exposes named interfaces (points at which it can be invoked)
// and declares named receptacles (points at which it requires an interface of
// another component). Interfaces are plain abstract classes rooted at
// oc::Interface; the name string is the interface *type* used for matching
// receptacles to interfaces at bind time (the paper's interface meta-model).
#pragma once

namespace mk::oc {

class Interface {
 public:
  virtual ~Interface() = default;
};

}  // namespace mk::oc
