#include "opencom/cf.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace mk::oc {

std::size_t CfView::count_type(std::string_view type_name) const {
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(),
                    [&](const Component* c) { return c->type_name() == type_name; }));
}

std::size_t CfView::count_providing(std::string_view iface_name) const {
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(), [&](const Component* c) {
        return c->interface(iface_name) != nullptr;
      }));
}

ComponentFramework::ComponentFramework(Kernel& kernel, std::string type_name)
    : Component(std::move(type_name)), kernel_(kernel) {}

ComponentFramework::~ComponentFramework() = default;

void ComponentFramework::add_integrity_rule(IntegrityRule rule) {
  MK_ASSERT(rule != nullptr);
  std::scoped_lock lock(lock_);
  rules_.push_back(std::move(rule));
}

std::vector<const Component*> ComponentFramework::current_members() const {
  std::vector<const Component*> out;
  out.reserve(members_.size());
  for (const auto& [_, comp] : members_) out.push_back(comp.get());
  return out;
}

void ComponentFramework::check_integrity(
    const std::vector<const Component*>& members) const {
  CfView view{members};
  for (const auto& rule : rules_) {
    std::string err;
    if (!rule(view, err)) {
      throw std::logic_error("integrity rule violated in " + instance_name() +
                             ": " + (err.empty() ? "(no detail)" : err));
    }
  }
}

ComponentId ComponentFramework::insert(std::unique_ptr<Component> comp) {
  MK_ASSERT(comp != nullptr);
  std::scoped_lock lock(lock_);
  auto hypothetical = current_members();
  hypothetical.push_back(comp.get());
  check_integrity(hypothetical);
  ComponentId id = next_id_++;
  members_.emplace(id, std::move(comp));
  return id;
}

ComponentId ComponentFramework::insert_type(std::string_view type_name) {
  return insert(kernel_.instantiate(type_name));
}

void ComponentFramework::remove(ComponentId id) { extract(id); }

std::unique_ptr<Component> ComponentFramework::extract(ComponentId id) {
  std::scoped_lock lock(lock_);
  auto it = members_.find(id);
  if (it == members_.end()) {
    throw std::logic_error("no such member component");
  }
  auto hypothetical = current_members();
  hypothetical.erase(std::remove(hypothetical.begin(), hypothetical.end(),
                                 it->second.get()),
                     hypothetical.end());
  check_integrity(hypothetical);
  disconnect_all_involving(id);
  auto comp = std::move(it->second);
  members_.erase(it);
  return comp;
}

ComponentId ComponentFramework::replace(ComponentId old_id,
                                        std::unique_ptr<Component> replacement) {
  MK_ASSERT(replacement != nullptr);
  std::scoped_lock lock(lock_);
  auto it = members_.find(old_id);
  if (it == members_.end()) {
    throw std::logic_error("no such member component");
  }

  // Validate the hypothetical composition with the replacement swapped in.
  auto hypothetical = current_members();
  std::replace(hypothetical.begin(), hypothetical.end(),
               static_cast<const Component*>(it->second.get()),
               static_cast<const Component*>(replacement.get()));
  check_integrity(hypothetical);

  // Remember the old component's bindings, then take it out.
  std::vector<BindingInfo> old_bindings;
  for (const auto& [bid, info] : bindings_) {
    if (info.user == old_id || info.provider == old_id) {
      old_bindings.push_back(info);
    }
  }
  disconnect_all_involving(old_id);
  members_.erase(it);

  ComponentId new_id = next_id_++;
  Component* new_comp = replacement.get();
  members_.emplace(new_id, std::move(replacement));

  // Re-establish every binding the replacement can satisfy.
  for (const auto& b : old_bindings) {
    if (b.user == old_id && new_comp->has_receptacle(b.receptacle)) {
      if (member(b.provider) != nullptr) {
        connect(new_id, b.receptacle, b.provider, b.iface);
      }
    } else if (b.provider == old_id &&
               new_comp->interface(b.iface) != nullptr) {
      if (member(b.user) != nullptr) {
        connect(b.user, b.receptacle, new_id, b.iface);
      }
    }
  }
  return new_id;
}

BindingId ComponentFramework::connect(ComponentId user,
                                      std::string_view receptacle,
                                      ComponentId provider,
                                      std::string_view iface) {
  std::scoped_lock lock(lock_);
  Component* u = member(user);
  Component* p = member(provider);
  if (u == nullptr || p == nullptr) {
    throw std::logic_error("connect: unknown member component");
  }
  kernel_.bind(*u, receptacle, *p, iface);
  BindingId id = next_id_++;
  bindings_.emplace(id, BindingInfo{id, user, std::string{receptacle}, provider,
                                    std::string{iface}});
  return id;
}

void ComponentFramework::disconnect(BindingId id) {
  std::scoped_lock lock(lock_);
  auto it = bindings_.find(id);
  if (it == bindings_.end()) {
    throw std::logic_error("disconnect: unknown binding");
  }
  Component* u = member(it->second.user);
  if (u != nullptr) {
    kernel_.unbind(*u, it->second.receptacle);
  }
  bindings_.erase(it);
}

void ComponentFramework::disconnect_all_involving(ComponentId id) {
  std::vector<BindingId> doomed;
  for (const auto& [bid, info] : bindings_) {
    if (info.user == id || info.provider == id) doomed.push_back(bid);
  }
  for (BindingId bid : doomed) disconnect(bid);
}

std::vector<ComponentId> ComponentFramework::members() const {
  std::scoped_lock lock(lock_);
  std::vector<ComponentId> out;
  out.reserve(members_.size());
  for (const auto& [id, _] : members_) out.push_back(id);
  return out;
}

Component* ComponentFramework::member(ComponentId id) const {
  std::scoped_lock lock(lock_);
  auto it = members_.find(id);
  return it == members_.end() ? nullptr : it->second.get();
}

Component* ComponentFramework::find(std::string_view instance_name) const {
  std::scoped_lock lock(lock_);
  for (const auto& [_, comp] : members_) {
    if (comp->instance_name() == instance_name) return comp.get();
  }
  return nullptr;
}

ComponentId ComponentFramework::find_id(std::string_view instance_name) const {
  std::scoped_lock lock(lock_);
  for (const auto& [id, comp] : members_) {
    if (comp->instance_name() == instance_name) return id;
  }
  return kNoComponent;
}

Component* ComponentFramework::find_providing(std::string_view iface_name) const {
  std::scoped_lock lock(lock_);
  for (const auto& [_, comp] : members_) {
    if (comp->interface(iface_name) != nullptr) return comp.get();
  }
  return nullptr;
}

std::vector<BindingInfo> ComponentFramework::bindings() const {
  std::scoped_lock lock(lock_);
  std::vector<BindingInfo> out;
  out.reserve(bindings_.size());
  for (const auto& [_, info] : bindings_) out.push_back(info);
  return out;
}

}  // namespace mk::oc
