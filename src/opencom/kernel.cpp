#include "opencom/kernel.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace mk::oc {

void Kernel::register_factory(std::string type_name, Factory factory) {
  MK_ASSERT(factory != nullptr);
  factories_[std::move(type_name)] = std::move(factory);
}

bool Kernel::has_factory(std::string_view type_name) const {
  return factories_.find(type_name) != factories_.end();
}

std::vector<std::string> Kernel::factory_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

std::unique_ptr<Component> Kernel::instantiate(std::string_view type_name) {
  auto it = factories_.find(type_name);
  if (it == factories_.end()) {
    throw std::logic_error("unknown component type: " + std::string{type_name});
  }
  ++created_;
  auto comp = it->second();
  MK_ASSERT(comp != nullptr, "factory returned null");
  return comp;
}

void Kernel::bind(Component& user, std::string_view receptacle,
                  Component& provider, std::string_view iface_name) {
  auto rit = user.receptacles_.find(receptacle);
  if (rit == user.receptacles_.end()) {
    throw std::logic_error(user.instance_name() + " has no receptacle " +
                           std::string{receptacle});
  }
  Interface* iface = provider.interface(iface_name);
  if (iface == nullptr) {
    throw std::logic_error(provider.instance_name() +
                           " does not provide interface " +
                           std::string{iface_name});
  }
  if (rit->second.iface_type != iface_name) {
    throw std::logic_error("receptacle " + std::string{receptacle} +
                           " requires " + rit->second.iface_type + ", not " +
                           std::string{iface_name});
  }
  rit->second.target = iface;
  rit->second.provider = &provider;
}

void Kernel::unbind(Component& user, std::string_view receptacle) {
  auto rit = user.receptacles_.find(receptacle);
  if (rit == user.receptacles_.end()) {
    throw std::logic_error(user.instance_name() + " has no receptacle " +
                           std::string{receptacle});
  }
  rit->second.target = nullptr;
  rit->second.provider = nullptr;
}

}  // namespace mk::oc
