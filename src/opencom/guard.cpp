#include "opencom/guard.hpp"

namespace mk::oc {

std::string describe_exception(std::exception_ptr ep) noexcept {
  if (!ep) return "(no exception)";
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "(non-std exception)";
  }
}

}  // namespace mk::oc
