#include "opencom/component.hpp"

#include "util/assert.hpp"

namespace mk::oc {

Component::Component(std::string type_name)
    : type_name_(std::move(type_name)), instance_name_(type_name_) {}

std::vector<std::string> Component::interfaces() const {
  std::vector<std::string> names;
  names.reserve(provided_.size());
  for (const auto& [name, _] : provided_) names.push_back(name);
  return names;
}

Interface* Component::interface(std::string_view name) const {
  auto it = provided_.find(name);
  return it == provided_.end() ? nullptr : it->second;
}

std::vector<ReceptacleInfo> Component::receptacles() const {
  std::vector<ReceptacleInfo> out;
  out.reserve(receptacles_.size());
  for (const auto& [name, r] : receptacles_) {
    out.push_back(ReceptacleInfo{name, r.iface_type, r.target != nullptr,
                                 r.provider});
  }
  return out;
}

bool Component::has_receptacle(std::string_view name) const {
  return receptacles_.find(name) != receptacles_.end();
}

Interface* Component::plugged(std::string_view receptacle) const {
  auto it = receptacles_.find(receptacle);
  return it == receptacles_.end() ? nullptr : it->second.target;
}

Component* Component::plugged_provider(std::string_view receptacle) const {
  auto it = receptacles_.find(receptacle);
  return it == receptacles_.end() ? nullptr : it->second.provider;
}

void Component::provide(std::string name, Interface* iface) {
  MK_ASSERT(iface != nullptr, "null interface: " + name);
  auto [_, inserted] = provided_.emplace(std::move(name), iface);
  MK_ASSERT(inserted, "duplicate interface");
}

void Component::declare_receptacle(std::string name, std::string iface_type) {
  auto [_, inserted] =
      receptacles_.emplace(std::move(name), Receptacle{std::move(iface_type)});
  MK_ASSERT(inserted, "duplicate receptacle");
}

}  // namespace mk::oc
