// OpenCom-style component base class.
//
// Subclasses call provide() in their constructor to expose interfaces, and
// declare_receptacle() to declare required interfaces. The Kernel (or a
// ComponentFramework acting through it) connects receptacles to interfaces.
//
// The reflective *interface meta-model* of the paper is the introspection
// API here: interfaces(), receptacles(), interface(name).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "opencom/interface.hpp"

namespace mk::oc {

class Component;

/// Introspection record for one receptacle (required interface).
struct ReceptacleInfo {
  std::string name;
  std::string iface_type;
  bool connected = false;
  const Component* provider = nullptr;  // component currently plugged in
};

class Component {
 public:
  explicit Component(std::string type_name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// The component *type* (factory name), e.g. "olsr.TcHandler".
  const std::string& type_name() const { return type_name_; }

  /// Optional per-instance name (defaults to the type name).
  const std::string& instance_name() const { return instance_name_; }
  void set_instance_name(std::string name) { instance_name_ = std::move(name); }

  // -- interface meta-model --------------------------------------------------

  /// Names of all provided interfaces.
  std::vector<std::string> interfaces() const;

  /// Looks up a provided interface; nullptr if not provided.
  Interface* interface(std::string_view name) const;

  /// Typed lookup; nullptr if absent or of the wrong dynamic type.
  template <typename T>
  T* interface_as(std::string_view name) const {
    return dynamic_cast<T*>(interface(name));
  }

  /// All declared receptacles with their current connection state.
  std::vector<ReceptacleInfo> receptacles() const;

  bool has_receptacle(std::string_view name) const;

  /// The interface currently plugged into a receptacle (nullptr if none).
  Interface* plugged(std::string_view receptacle) const;

  /// Typed access to the plugged interface.
  template <typename T>
  T* plugged_as(std::string_view receptacle) const {
    return dynamic_cast<T*>(plugged(receptacle));
  }

  /// Component providing the interface plugged into a receptacle.
  Component* plugged_provider(std::string_view receptacle) const;

 protected:
  /// Exposes an interface under `name`. The pointer must stay valid for the
  /// component's lifetime (usually `this` or an owned member).
  void provide(std::string name, Interface* iface);

  /// Declares a receptacle requiring an interface of type `iface_type`.
  void declare_receptacle(std::string name, std::string iface_type);

 private:
  friend class Kernel;

  struct Receptacle {
    std::string iface_type;
    Interface* target = nullptr;
    Component* provider = nullptr;
  };

  std::string type_name_;
  std::string instance_name_;
  std::map<std::string, Interface*, std::less<>> provided_;
  std::map<std::string, Receptacle, std::less<>> receptacles_;
};

}  // namespace mk::oc
