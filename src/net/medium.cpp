#include "net/medium.hpp"

#include <algorithm>

#include "net/device.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::net {

SimMedium::SimMedium(Scheduler& sched, std::uint64_t seed)
    : sched_(sched), rng_(seed) {}

void SimMedium::attach(NetworkDevice& device) {
  MK_ASSERT(device.medium_ == nullptr, "device already attached");
  auto [_, inserted] = devices_.emplace(device.addr(), &device);
  MK_ASSERT(inserted, "duplicate device address");
  device.medium_ = this;
}

void SimMedium::detach(Addr addr) {
  auto it = devices_.find(addr);
  if (it == devices_.end()) return;
  it->second->medium_ = nullptr;
  devices_.erase(it);
}

void SimMedium::set_link(Addr a, Addr b, bool up, bool symmetric) {
  MK_ASSERT(a != b);
  auto apply = [&](Addr from, Addr to) {
    std::vector<Addr>& nbrs = adjacency_[from];
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    bool was = it != nbrs.end() && *it == to;
    if (up && !was) {
      nbrs.insert(it, to);
    } else if (!up && was) {
      nbrs.erase(it);
    }
    if (was != up) {
      link_flips_.inc();
      if (journal_ != nullptr) {
        journal_->append({up ? obs::RecordKind::kLinkUp
                             : obs::RecordKind::kLinkDown,
                          from, sched_.now().us, to, 0, 0});
      }
      for (const auto& obs : link_observers_) obs(from, to, up);
    }
  };
  apply(a, b);
  if (symmetric) apply(b, a);
}

bool SimMedium::has_link(Addr from, Addr to) const {
  auto it = adjacency_.find(from);
  if (it == adjacency_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), to);
}

void SimMedium::clear_links() {
  // Emit down-notifications so observers stay consistent.
  auto old = adjacency_;
  adjacency_.clear();
  for (const auto& [from, tos] : old) {
    for (Addr to : tos) {
      link_flips_.inc();
      if (journal_ != nullptr) {
        journal_->append(
            {obs::RecordKind::kLinkDown, from, sched_.now().us, to, 0, 0});
      }
      for (const auto& obs : link_observers_) obs(from, to, false);
    }
  }
}

std::span<const Addr> SimMedium::neighbors_of(Addr a) const {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return {};
  return it->second;
}

void SimMedium::set_clock_drift(Addr node, double factor) {
  // Bounded drift: a real oscillator is parts-per-million off, not orders of
  // magnitude — clamp so no plan can freeze or teleport a node's traffic.
  if (factor < 0.5) factor = 0.5;
  if (factor > 2.0) factor = 2.0;
  if (factor == 1.0) {
    drift_.erase(node);
  } else {
    drift_[node] = factor;
  }
}

double SimMedium::clock_drift(Addr node) const {
  auto it = drift_.find(node);
  return it == drift_.end() ? 1.0 : it->second;
}

bool SimMedium::transmit(const Frame& frame) {
  if (frame.kind == FrameKind::kControl) {
    control_frames_.inc();
    control_bytes_.inc(frame.wire_size());
  } else {
    data_frames_.inc();
    data_bytes_.inc(frame.wire_size());
  }
  journal_frame(obs::RecordKind::kFrameTx, frame.tx, frame.rx, frame);

  if (frame.rx == kBroadcast) {
    if (fault_filter_ == nullptr) {
      // Fast path: fan out over the adjacency set in place.
      for (Addr to : neighbors_of(frame.tx)) {
        deliver_later(frame, to);
      }
    } else {
      // A fault filter runs arbitrary user code per delivery; snapshot the
      // neighbour set so a filter (or anything it triggers) mutating the
      // topology cannot invalidate the iterator mid-fan-out. The snapshot
      // reuses a member scratch buffer (moved out for reentrancy safety), so
      // an armed-but-idle fault plan stays allocation-free steady-state.
      std::vector<Addr> targets = std::move(bcast_scratch_);
      auto live = neighbors_of(frame.tx);
      targets.assign(live.begin(), live.end());
      for (Addr to : targets) {
        deliver_later(frame, to);
      }
      bcast_scratch_ = std::move(targets);
    }
    return true;
  }
  if (!has_link(frame.tx, frame.rx)) {
    failed_unicasts_.inc();
    journal_frame(obs::RecordKind::kFrameDrop, frame.tx, frame.rx, frame,
                  obs::DropReason::kNoLink);
    return false;
  }
  deliver_later(frame, frame.rx);
  return true;
}

void SimMedium::deliver_later(const Frame& frame, Addr to) {
  Duration jitter{};
  std::uint32_t duplicates = 0;
  Duration dup_spacing{};
  if (fault_filter_ != nullptr) {
    FaultVerdict verdict = fault_filter_(frame, to);
    if (verdict.drop) {
      dropped_fault_.inc();
      journal_frame(obs::RecordKind::kFrameDrop, to, frame.tx, frame,
                    obs::DropReason::kFaultLoss);
      return;
    }
    jitter = verdict.extra_delay;
    duplicates = verdict.duplicates;
    dup_spacing = verdict.dup_spacing;
  }
  if (loss_prob_ > 0.0 && rng_.bernoulli(loss_prob_)) {
    dropped_loss_.inc();
    journal_frame(obs::RecordKind::kFrameDrop, to, frame.tx, frame,
                  obs::DropReason::kLoss);
    return;
  }
  Duration delay =
      base_delay_ + Duration{per_byte_delay_.count() *
                             static_cast<std::int64_t>(frame.wire_size())};
  auto drift = drift_.find(frame.tx);
  if (drift != drift_.end()) {
    delay = Duration{static_cast<std::int64_t>(
        static_cast<double>(delay.count()) * drift->second)};
  }
  delay = delay + jitter;
  schedule_delivery(frame, to, delay);
  for (std::uint32_t i = 1; i <= duplicates; ++i) {
    schedule_delivery(frame, to,
                      delay + Duration{dup_spacing.count() *
                                       static_cast<std::int64_t>(i)});
  }
}

void SimMedium::schedule_delivery(const Frame& frame, Addr to, Duration delay) {
  // Park the frame in a recycled slot and capture only [this, slot]: the
  // two fit std::function's small-buffer slot, so scheduling a delivery
  // performs no heap allocation (a by-value Frame capture would).
  std::uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(delivery_mu_);
    if (free_delivery_slots_.empty()) {
      slot = static_cast<std::uint32_t>(delivery_slots_.size());
      delivery_slots_.emplace_back();
    } else {
      slot = free_delivery_slots_.back();
      free_delivery_slots_.pop_back();
    }
    PendingDelivery& p = delivery_slots_[slot];
    p.frame = frame;  // shares the payload buffer; no byte copy
    p.to = to;
  }
  sched_.schedule_after(delay, [this, slot] { fire_delivery(slot); });
}

void SimMedium::fire_delivery(std::uint32_t slot) {
  Frame frame;
  Addr to;
  {
    // Move the frame out and free the slot *before* processing: receive()
    // may transmit, and a reentrant schedule_delivery must not find this
    // slot still occupied.
    std::lock_guard<std::mutex> lock(delivery_mu_);
    PendingDelivery& p = delivery_slots_[slot];
    frame = std::move(p.frame);
    to = p.to;
    p.frame = Frame{};
    free_delivery_slots_.push_back(slot);
  }
  // Re-check adjacency at delivery time: the topology may have changed
  // while the frame was "on the air". Both late-drop paths are journaled —
  // faults that cut links or down nodes mid-flight must leave a drop
  // record, not silently elide the frame (keeps first_divergence useful).
  if (frame.rx == kBroadcast && !has_link(frame.tx, to)) {
    dropped_link_lost_.inc();
    journal_frame(obs::RecordKind::kFrameDrop, to, frame.tx, frame,
                  obs::DropReason::kLinkLost);
    return;
  }
  auto it = devices_.find(to);
  if (it == devices_.end() || !it->second->is_up()) {
    dropped_node_down_.inc();
    journal_frame(obs::RecordKind::kFrameDrop, to, frame.tx, frame,
                  obs::DropReason::kNodeDown);
    return;
  }
  journal_frame(obs::RecordKind::kFrameRx, to, frame.tx, frame);
  it->second->receive(frame);
}

void SimMedium::journal_frame(obs::RecordKind kind, Addr at, std::uint64_t peer,
                              const Frame& frame,
                              obs::DropReason reason) const {
  if (journal_ == nullptr) return;
  // c carries the payload hash (tx/rx) so digests witness the exact bytes on
  // the air, or the drop reason for kFrameDrop.
  std::uint64_t c = kind == obs::RecordKind::kFrameDrop
                        ? static_cast<std::uint64_t>(reason)
                        : payload_hash(frame);
  journal_->append(
      {kind, at, sched_.now().us, peer, frame.wire_size(), c});
}

std::uint64_t SimMedium::payload_hash(const Frame& frame) const {
  if (frame.payload == nullptr) return obs::kFnvOffset;
  if (frame.payload != hashed_payload_) {
    hashed_payload_ = frame.payload;
    hashed_payload_fnv_ = obs::fnv1a_bytes(frame.payload_view());
  }
  return hashed_payload_fnv_;
}

MediumStats SimMedium::stats() const {
  MediumStats out;
  out.control_frames = control_frames_.value();
  out.control_bytes = control_bytes_.value();
  out.data_frames = data_frames_.value();
  out.data_bytes = data_bytes_.value();
  out.dropped_loss = dropped_loss_.value();
  out.dropped_fault = dropped_fault_.value();
  out.dropped_link_lost = dropped_link_lost_.value();
  out.dropped_node_down = dropped_node_down_.value();
  out.failed_unicasts = failed_unicasts_.value();
  out.link_flips = link_flips_.value();
  out.pair_evals = pair_evals_.value();
  return out;
}

}  // namespace mk::net
