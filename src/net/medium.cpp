#include "net/medium.hpp"

#include "net/device.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::net {

SimMedium::SimMedium(Scheduler& sched, std::uint64_t seed)
    : sched_(sched), rng_(seed) {}

void SimMedium::attach(NetworkDevice& device) {
  MK_ASSERT(device.medium_ == nullptr, "device already attached");
  auto [_, inserted] = devices_.emplace(device.addr(), &device);
  MK_ASSERT(inserted, "duplicate device address");
  device.medium_ = this;
}

void SimMedium::detach(Addr addr) {
  auto it = devices_.find(addr);
  if (it == devices_.end()) return;
  it->second->medium_ = nullptr;
  devices_.erase(it);
}

void SimMedium::set_link(Addr a, Addr b, bool up, bool symmetric) {
  MK_ASSERT(a != b);
  auto apply = [&](Addr from, Addr to) {
    bool was = adjacency_[from].count(to) > 0;
    if (up) {
      adjacency_[from].insert(to);
    } else {
      adjacency_[from].erase(to);
    }
    if (was != up) {
      for (const auto& obs : link_observers_) obs(from, to, up);
    }
  };
  apply(a, b);
  if (symmetric) apply(b, a);
}

bool SimMedium::has_link(Addr from, Addr to) const {
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) > 0;
}

void SimMedium::clear_links() {
  // Emit down-notifications so observers stay consistent.
  auto old = adjacency_;
  adjacency_.clear();
  for (const auto& [from, tos] : old) {
    for (Addr to : tos) {
      for (const auto& obs : link_observers_) obs(from, to, false);
    }
  }
}

const std::set<Addr>& SimMedium::neighbors_of(Addr a) const {
  static const std::set<Addr> kNoNeighbors;
  auto it = adjacency_.find(a);
  return it == adjacency_.end() ? kNoNeighbors : it->second;
}

bool SimMedium::transmit(const Frame& frame) {
  if (frame.kind == FrameKind::kControl) {
    ++stats_.control_frames;
    stats_.control_bytes += frame.wire_size();
  } else {
    ++stats_.data_frames;
    stats_.data_bytes += frame.wire_size();
  }

  if (frame.rx == kBroadcast) {
    for (Addr to : neighbors_of(frame.tx)) {
      deliver_later(frame, to);
    }
    return true;
  }
  if (!has_link(frame.tx, frame.rx)) {
    ++stats_.failed_unicasts;
    return false;
  }
  deliver_later(frame, frame.rx);
  return true;
}

void SimMedium::deliver_later(const Frame& frame, Addr to) {
  if (loss_prob_ > 0.0 && rng_.bernoulli(loss_prob_)) {
    ++stats_.dropped_loss;
    return;
  }
  Duration delay =
      base_delay_ + Duration{per_byte_delay_.count() *
                             static_cast<std::int64_t>(frame.wire_size())};
  sched_.schedule_after(delay, [this, frame, to] {
    // Re-check adjacency at delivery time: the topology may have changed
    // while the frame was "on the air".
    if (frame.rx == kBroadcast && !has_link(frame.tx, to)) return;
    auto it = devices_.find(to);
    if (it == devices_.end() || !it->second->is_up()) return;
    it->second->receive(frame);
  });
}

}  // namespace mk::net
