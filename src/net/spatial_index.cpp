#include "net/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mk::net {

SpatialGrid::SpatialGrid(double cell_size) : inv_cell_(1.0 / cell_size) {
  MK_ASSERT(cell_size > 0.0);
}

std::uint64_t SpatialGrid::key_of(Position p) const {
  auto cx = static_cast<std::int64_t>(std::floor(p.x * inv_cell_));
  auto cy = static_cast<std::int64_t>(std::floor(p.y * inv_cell_));
  return pack(cx, cy);
}

void SpatialGrid::clear() { cells_.clear(); }

void SpatialGrid::insert(std::uint32_t slot, Position p) {
  cells_[key_of(p)].push_back(slot);
}

void SpatialGrid::erase(std::uint32_t slot, Position from) {
  auto it = cells_.find(key_of(from));
  MK_ASSERT(it != cells_.end(), "slot not registered at its recorded cell");
  auto& v = it->second;
  auto pos = std::find(v.begin(), v.end(), slot);
  MK_ASSERT(pos != v.end(), "slot missing from its recorded cell");
  *pos = v.back();  // swap-remove: cell membership is a set, order is free
  v.pop_back();
  if (v.empty()) cells_.erase(it);
}

void SpatialGrid::move(std::uint32_t slot, Position from, Position to) {
  if (key_of(from) == key_of(to)) return;
  erase(slot, from);
  insert(slot, to);
}

void SpatialGrid::gather(Position p, std::vector<std::uint32_t>& out) const {
  auto cx = static_cast<std::int64_t>(std::floor(p.x * inv_cell_));
  auto cy = static_cast<std::int64_t>(std::floor(p.y * inv_cell_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      auto it = cells_.find(pack(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
}

}  // namespace mk::net
