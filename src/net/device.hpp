// A network interface bound to the simulated medium. One per node in the
// default testbed (the System CF's device-listing operations enumerate
// these).
#pragma once

#include <functional>
#include <string>

#include "net/address.hpp"
#include "net/frame.hpp"

namespace mk::net {

class SimMedium;

class NetworkDevice {
 public:
  NetworkDevice(std::string name, Addr addr);
  ~NetworkDevice();

  NetworkDevice(const NetworkDevice&) = delete;
  NetworkDevice& operator=(const NetworkDevice&) = delete;

  const std::string& name() const { return name_; }
  Addr addr() const { return addr_; }

  bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Sends a frame (stamping tx = this device's address).
  /// Returns false on unicast link-layer failure or if the device is down
  /// or unattached.
  bool send(Frame frame);

  using RxHandler = std::function<void(const Frame&)>;
  void set_rx_handler(RxHandler handler) { rx_ = std::move(handler); }

  /// Called by the medium on frame arrival.
  void receive(const Frame& frame);

 private:
  friend class SimMedium;

  std::string name_;
  Addr addr_;
  bool up_ = true;
  SimMedium* medium_ = nullptr;
  RxHandler rx_;
};

}  // namespace mk::net
