#include "net/device.hpp"

#include "net/medium.hpp"
#include "util/assert.hpp"

namespace mk::net {

NetworkDevice::NetworkDevice(std::string name, Addr addr)
    : name_(std::move(name)), addr_(addr) {
  MK_ASSERT(addr_ != kNoAddr && addr_ != kBroadcast);
}

NetworkDevice::~NetworkDevice() {
  if (medium_ != nullptr) medium_->detach(addr_);
}

bool NetworkDevice::send(Frame frame) {
  if (!up_ || medium_ == nullptr) return false;
  frame.tx = addr_;
  return medium_->transmit(frame);
}

void NetworkDevice::receive(const Frame& frame) {
  if (!up_) return;
  if (rx_) rx_(frame);
}

}  // namespace mk::net
