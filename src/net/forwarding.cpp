#include "net/forwarding.hpp"

#include "util/log.hpp"

namespace mk::net {

ForwardingEngine::ForwardingEngine(NetworkDevice& device,
                                   KernelRouteTable& table, Scheduler& sched)
    : device_(device), table_(table), sched_(sched) {}

bool ForwardingEngine::send(Addr dst, std::uint16_t payload_size,
                            std::uint8_t ttl) {
  DataHeader hdr;
  hdr.src = self();
  hdr.dst = dst;
  hdr.seq = next_seq_++;
  hdr.ttl = ttl;
  hdr.payload_size = payload_size;
  hdr.sent_at = sched_.now();
  ++stats_.originated;

  if (dst == self()) {
    ++stats_.delivered;
    if (deliver_) deliver_(hdr);
    return true;
  }
  return route_and_send(hdr, /*originating=*/true);
}

bool ForwardingEngine::reinject(DataHeader hdr) {
  return route_and_send(hdr, /*originating=*/false);
}

bool ForwardingEngine::route_and_send(DataHeader hdr, bool originating) {
  auto route = table_.lookup(hdr.dst);
  if (!route) {
    if (hooks_.on_no_route && hooks_.on_no_route(hdr)) {
      ++stats_.buffered;
      return true;
    }
    ++stats_.dropped_no_route;
    MK_TRACE("fwd", "no route to ", pbb::addr_to_string(hdr.dst), " at ",
             pbb::addr_to_string(self()));
    return false;
  }

  Frame frame;
  frame.rx = route->next_hop;
  frame.kind = FrameKind::kData;
  frame.data = hdr;
  if (!device_.send(std::move(frame))) {
    ++stats_.send_failures;
    if (hooks_.on_send_failure) hooks_.on_send_failure(hdr, route->next_hop);
    return false;
  }
  if (hooks_.on_route_used) hooks_.on_route_used(hdr.dst);
  if (!originating) ++stats_.forwarded;
  return true;
}

void ForwardingEngine::handle_frame(const Frame& frame) {
  DataHeader hdr = frame.data;
  if (hdr.dst == self()) {
    ++stats_.delivered;
    if (deliver_) deliver_(hdr);
    return;
  }
  if (hdr.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  hdr.ttl -= 1;
  route_and_send(hdr, /*originating=*/false);
}

}  // namespace mk::net
