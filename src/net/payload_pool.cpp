#include "net/payload_pool.hpp"

#include <mutex>

#include "util/assert.hpp"
#include "util/mem.hpp"

namespace mk::net {

namespace {

struct Slot {
  PayloadBuffer buf;
  std::uint64_t canary = 0;
  Slot* next = nullptr;
};

struct Pool {
  std::mutex mu;
  Slot* free_head = nullptr;
  mem::PoolStats stats;

  Pool() { mem::register_pool("net.payload", &stats); }
};

Pool& pool() {
  static Pool p;
  return p;
}

void release(Slot* s) noexcept {
  Pool& p = pool();
  // Poison the bytes in place (capacity survives; size is dropped on the
  // next acquire). A stale reader sees 0xA5 filler, not the last packet.
  for (auto& b : s->buf) b = mem::kPoisonByte;
  s->canary = mem::kPoisonCanary;
  {
    std::lock_guard lock(p.mu);
    s->next = p.free_head;
    p.free_head = s;
  }
  p.stats.outstanding.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotDeleter {
  Slot* slot;
  void operator()(PayloadBuffer*) const noexcept { release(slot); }
};

}  // namespace

std::shared_ptr<PayloadBuffer> acquire_payload() {
  if (mem::backend() == MemBackend::kHeap) {
    return std::make_shared<PayloadBuffer>();
  }
  Pool& p = pool();
  Slot* s;
  {
    std::lock_guard lock(p.mu);
    s = p.free_head;
    if (s != nullptr) p.free_head = s->next;
  }
  if (s != nullptr) {
    MK_ASSERT(s->canary == mem::kPoisonCanary, "payload pool slot corrupted");
    s->canary = 0;
    s->next = nullptr;
    s->buf.clear();
    p.stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = new Slot();
    p.stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  p.stats.outstanding.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<PayloadBuffer>(&s->buf, SlotDeleter{s},
                                        mem::BlockAllocator<PayloadBuffer>{});
}

std::int64_t payload_pool_outstanding() {
  return pool().stats.outstanding.load(std::memory_order_relaxed);
}

void payload_pool_trim() {
  Pool& p = pool();
  Slot* head;
  {
    std::lock_guard lock(p.mu);
    head = p.free_head;
    p.free_head = nullptr;
  }
  while (head != nullptr) {
    Slot* next = head->next;
    delete head;
    head = next;
  }
}

}  // namespace mk::net
