// A simulated host: one network device, a kernel routing table, the data-plane
// forwarding engine, a battery model and a position. Routing stacks — MANETKit
// deployments or monolithic baselines — attach to a SimNode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/device.hpp"
#include "net/forwarding.hpp"
#include "net/frame.hpp"
#include "net/kernel_table.hpp"
#include "net/medium.hpp"
#include "net/position.hpp"
#include "util/scheduler.hpp"

namespace mk::net {

class SimNode {
 public:
  SimNode(std::uint32_t index, SimMedium& medium, Scheduler& sched);

  std::uint32_t index() const { return index_; }
  Addr addr() const { return device_.addr(); }

  NetworkDevice& device() { return device_; }
  KernelRouteTable& kernel_table() { return table_; }
  const KernelRouteTable& kernel_table() const { return table_; }
  ForwardingEngine& forwarding() { return fwd_; }
  SimMedium& medium() { return medium_; }
  Scheduler& scheduler() { return sched_; }

  // -- control-plane attach ----------------------------------------------------
  /// Routing stacks receive every incoming *control* frame through this.
  using ControlHandler = std::function<void(const Frame&)>;
  void set_control_handler(ControlHandler handler) {
    control_ = std::move(handler);
  }

  /// Convenience for routing stacks: broadcast/unicast a control payload.
  /// The shared-buffer overload is the zero-copy path (the medium fans the
  /// same buffer out to every neighbour); the vector overload wraps once.
  bool send_control(PayloadPtr payload, Addr to = kBroadcast);
  bool send_control(std::vector<std::uint8_t> payload, Addr to = kBroadcast);

  // -- application data --------------------------------------------------------
  struct Delivery {
    DataHeader hdr;
    TimePoint at{};
  };
  const std::vector<Delivery>& deliveries() const { return deliveries_; }
  void clear_deliveries() { deliveries_.clear(); }
  using DeliveryCallback = std::function<void(const Delivery&)>;
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  // -- battery (context for power-aware routing) --------------------------------
  double battery() const { return battery_; }
  void set_battery(double level) { battery_ = level; }
  /// Per-transmission energy cost, as a fraction of full charge.
  void set_tx_cost(double cost) { tx_cost_ = cost; }

  Position position() const { return pos_; }
  void set_position(Position p) { pos_ = p; }

 private:
  void on_frame(const Frame& frame);

  std::uint32_t index_;
  SimMedium& medium_;
  Scheduler& sched_;
  NetworkDevice device_;
  KernelRouteTable table_;
  ForwardingEngine fwd_;
  ControlHandler control_;
  std::vector<Delivery> deliveries_;
  DeliveryCallback on_delivery_;
  double battery_ = 1.0;
  double tx_cost_ = 0.0;
  Position pos_;
};

}  // namespace mk::net
