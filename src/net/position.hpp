// Planar node positions for the simulated world.
//
// Split out of node.hpp so the spatial index (and anything else that only
// cares about geometry) does not drag in the full SimNode stack.
#pragma once

namespace mk::net {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Squared Euclidean distance. Range tests compare this against range² —
/// never take the sqrt on a pair-test hot path.
constexpr double dist_sq(Position a, Position b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace mk::net
