#include "net/node.hpp"

#include <algorithm>

namespace mk::net {

SimNode::SimNode(std::uint32_t index, SimMedium& medium, Scheduler& sched)
    : index_(index),
      medium_(medium),
      sched_(sched),
      device_("wlan0", addr_for_index(index)),
      fwd_(device_, table_, sched) {
  medium_.attach(device_);
  device_.set_rx_handler([this](const Frame& f) { on_frame(f); });
  fwd_.set_deliver([this](const DataHeader& hdr) {
    Delivery d{hdr, sched_.now()};
    deliveries_.push_back(d);
    if (on_delivery_) on_delivery_(d);
  });
}

bool SimNode::send_control(PayloadPtr payload, Addr to) {
  Frame frame;
  frame.rx = to;
  frame.kind = FrameKind::kControl;
  frame.payload = std::move(payload);
  if (tx_cost_ > 0.0) battery_ = std::max(0.0, battery_ - tx_cost_);
  return device_.send(std::move(frame));
}

bool SimNode::send_control(std::vector<std::uint8_t> payload, Addr to) {
  return send_control(make_payload(std::move(payload)), to);
}

void SimNode::on_frame(const Frame& frame) {
  if (frame.kind == FrameKind::kData) {
    fwd_.handle_frame(frame);
  } else if (control_) {
    control_(frame);
  }
}

}  // namespace mk::net
