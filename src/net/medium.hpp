// The simulated wireless medium.
//
// Reproduces the paper's testbed arrangement: all nodes share one broadcast
// channel, and multi-hop topology is *emulated* by MAC-level filtering
// (MobiEmu style) — i.e. an adjacency relation decides which transmissions a
// node can hear. Links carry configurable propagation delay, per-byte
// transmission delay and loss probability.
//
// Unicast transmissions to a node that is not currently adjacent fail; the
// medium reports this to the sender synchronously (the link-layer feedback a
// real driver gives after exhausting MAC retries).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "net/address.hpp"
#include "net/frame.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"

namespace mk::net {

class NetworkDevice;

/// Traffic-counter snapshot, split by frame kind (control overhead is a
/// headline metric for flooding ablations). The live counts are atomic
/// obs::Counters on the medium's metrics registry — executor worker threads
/// transmit concurrently, and plain ints under-counted there — so stats()
/// materializes this plain struct from a consistent set of relaxed loads.
struct MediumStats {
  std::uint64_t control_frames = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_fault = 0;      // injected fault (loss burst etc.)
  std::uint64_t dropped_link_lost = 0;  // link dropped while frame in flight
  std::uint64_t dropped_node_down = 0;  // receiver down at delivery time
  std::uint64_t failed_unicasts = 0;
  std::uint64_t link_flips = 0;  // link churn: every up/down transition
  std::uint64_t pair_evals = 0;  // range-link pair tests (topology builders)
};

/// Per-delivery verdict from an installed fault filter (see
/// SimMedium::set_fault_filter). The default verdict is "deliver normally".
struct FaultVerdict {
  bool drop = false;              // journaled as kFrameDrop / kFaultLoss
  std::uint32_t duplicates = 0;   // extra copies delivered after the original
  Duration dup_spacing{};         // gap between successive duplicates
  Duration extra_delay{};         // reorder jitter added to this delivery
};

class SimMedium {
 public:
  SimMedium(Scheduler& sched, std::uint64_t seed = 42);

  Scheduler& scheduler() { return sched_; }

  // -- attachment -------------------------------------------------------------
  void attach(NetworkDevice& device);
  void detach(Addr addr);

  // -- topology control (MAC-level filter emulation) ---------------------------
  /// Makes a<->b (symmetric) or a->b (directed) adjacent.
  void set_link(Addr a, Addr b, bool up, bool symmetric = true);
  bool has_link(Addr from, Addr to) const;
  void clear_links();

  /// Current neighbours of `a`, sorted ascending. Returns a view into the
  /// flat adjacency store (empty if unknown) — valid until the next topology
  /// mutation; copy it if you need it across set_link/clear_links calls.
  std::span<const Addr> neighbors_of(Addr a) const;

  /// Observer invoked on every link state change (used for link-layer
  /// feedback based neighbour detection).
  using LinkObserver = std::function<void(Addr a, Addr b, bool up)>;
  void add_link_observer(LinkObserver obs) {
    link_observers_.push_back(std::move(obs));
  }

  // -- channel parameters ------------------------------------------------------
  void set_base_delay(Duration d) { base_delay_ = d; }
  void set_per_byte_delay(Duration d) { per_byte_delay_ = d; }
  /// Uniform frame loss probability applied per receiver.
  void set_loss_probability(double p) { loss_prob_ = p; }

  // -- fault injection ----------------------------------------------------------
  /// Per-delivery fault filter, consulted for every (frame, receiver) pair
  /// before the channel loss draw (fault/injector.hpp installs one to realise
  /// loss bursts, duplication and reordering windows). Null detaches; cost
  /// when unset is one branch per delivery.
  using FaultFilter = std::function<FaultVerdict(const Frame&, Addr to)>;
  void set_fault_filter(FaultFilter filter) { fault_filter_ = std::move(filter); }

  /// Bounded clock drift: deliveries transmitted *by* `node` have their
  /// propagation delay scaled by `factor` (clamped to [0.5, 2.0]) — a skewed
  /// local oscillator makes everything that node sends arrive early or late
  /// relative to true sim time. 1.0 (or clear_clock_drift) removes the skew.
  void set_clock_drift(Addr node, double factor);
  void clear_clock_drift(Addr node) { drift_.erase(node); }
  double clock_drift(Addr node) const;

  // -- transmission -------------------------------------------------------------
  /// Transmits a frame. Broadcast frames reach every current neighbour of
  /// frame.tx (each with independent loss); unicast frames reach frame.rx if
  /// adjacent. Returns false for a unicast whose destination is unreachable
  /// (link-layer feedback); broadcast always "succeeds".
  bool transmit(const Frame& frame);

  MediumStats stats() const;
  void reset_stats() { metrics_.reset_counters(); }

  /// The medium's named counters ("medium.control_frames", ...), for harness
  /// reporting alongside per-node registries.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Range-link pair-test counter ("medium.pair_evals"), incremented by the
  /// topology builders. The scale smoke test bounds it to prove the spatial
  /// index never silently regresses to an all-pairs scan.
  obs::Counter& pair_evals_counter() { return pair_evals_; }

  // -- tracing -----------------------------------------------------------------
  /// Attaches a trace journal: every transmission, delivery, drop and link
  /// transition appends a canonical record (frame payloads are FNV-hashed so
  /// two runs compare byte-for-byte). Null detaches; no journal means no
  /// overhead beyond one branch per event.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

 private:
  void deliver_later(const Frame& frame, Addr to);
  void schedule_delivery(const Frame& frame, Addr to, Duration delay);
  void fire_delivery(std::uint32_t slot);
  void journal_frame(obs::RecordKind kind, Addr at, std::uint64_t peer,
                     const Frame& frame, obs::DropReason reason = {}) const;
  std::uint64_t payload_hash(const Frame& frame) const;

  Scheduler& sched_;
  Rng rng_;
  std::map<Addr, NetworkDevice*> devices_;
  // Flat adjacency: per-node sorted vector, so has_link is a binary search
  // and broadcast fan-out walks contiguous memory instead of a red-black
  // tree. The outer map stays ordered for deterministic clear_links().
  std::map<Addr, std::vector<Addr>> adjacency_;
  std::vector<LinkObserver> link_observers_;
  // Broadcast snapshot buffer, recycled across transmissions so an armed
  // fault filter does not cost an allocation per broadcast. Moved out while
  // in use, so a reentrant transmit from a filter falls back to a fresh
  // (empty, allocating) vector instead of clobbering the outer fan-out.
  std::vector<Addr> bcast_scratch_;
  // In-flight delivery slots. Capturing a Frame by value in the scheduled
  // closure overflows std::function's small-buffer slot (one heap block per
  // delivery); instead the frame parks in a recycled slot and the closure
  // captures only [this, index] — which fits. Slots live in a deque so
  // references stay stable across growth; the freelist is guarded because
  // executor worker threads transmit concurrently (same reason the traffic
  // counters are atomic).
  struct PendingDelivery {
    Frame frame{};
    Addr to = 0;
  };
  std::deque<PendingDelivery> delivery_slots_;
  std::vector<std::uint32_t> free_delivery_slots_;
  std::mutex delivery_mu_;
  Duration base_delay_ = usec(500);
  Duration per_byte_delay_ = usec(1);  // ~8 Mbit/s effective
  double loss_prob_ = 0.0;
  FaultFilter fault_filter_;
  std::map<Addr, double> drift_;
  obs::MetricsRegistry metrics_;
  obs::Counter& control_frames_ = metrics_.counter("medium.control_frames");
  obs::Counter& control_bytes_ = metrics_.counter("medium.control_bytes");
  obs::Counter& data_frames_ = metrics_.counter("medium.data_frames");
  obs::Counter& data_bytes_ = metrics_.counter("medium.data_bytes");
  obs::Counter& dropped_loss_ = metrics_.counter("medium.dropped_loss");
  obs::Counter& dropped_fault_ = metrics_.counter("medium.dropped_fault");
  obs::Counter& dropped_link_lost_ =
      metrics_.counter("medium.dropped_link_lost");
  obs::Counter& dropped_node_down_ =
      metrics_.counter("medium.dropped_node_down");
  obs::Counter& failed_unicasts_ = metrics_.counter("medium.failed_unicasts");
  obs::Counter& link_flips_ = metrics_.counter("medium.link_flips");
  obs::Counter& pair_evals_ = metrics_.counter("medium.pair_evals");
  obs::Journal* journal_ = nullptr;
  // One-entry payload-hash cache: a broadcast's tx record and its k rx
  // records all point at the same shared immutable buffer, so the FNV over
  // the bytes is computed once per distinct payload, not once per record.
  // Holding the PayloadPtr (not a raw pointer) rules out stale hits when an
  // allocator reuses a freed buffer's address.
  mutable PayloadPtr hashed_payload_;
  mutable std::uint64_t hashed_payload_fnv_ = 0;
};

}  // namespace mk::net
