// The simulated wireless medium.
//
// Reproduces the paper's testbed arrangement: all nodes share one broadcast
// channel, and multi-hop topology is *emulated* by MAC-level filtering
// (MobiEmu style) — i.e. an adjacency relation decides which transmissions a
// node can hear. Links carry configurable propagation delay, per-byte
// transmission delay and loss probability.
//
// Unicast transmissions to a node that is not currently adjacent fail; the
// medium reports this to the sender synchronously (the link-layer feedback a
// real driver gives after exhausting MAC retries).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/address.hpp"
#include "net/frame.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"

namespace mk::net {

class NetworkDevice;

/// Traffic counters, split by frame kind (control overhead is a headline
/// metric for flooding ablations).
struct MediumStats {
  std::uint64_t control_frames = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t failed_unicasts = 0;
};

class SimMedium {
 public:
  SimMedium(Scheduler& sched, std::uint64_t seed = 42);

  Scheduler& scheduler() { return sched_; }

  // -- attachment -------------------------------------------------------------
  void attach(NetworkDevice& device);
  void detach(Addr addr);

  // -- topology control (MAC-level filter emulation) ---------------------------
  /// Makes a<->b (symmetric) or a->b (directed) adjacent.
  void set_link(Addr a, Addr b, bool up, bool symmetric = true);
  bool has_link(Addr from, Addr to) const;
  void clear_links();

  /// Current neighbours of `a`. Returns a reference into the adjacency map
  /// (empty set if unknown) — valid until the next topology mutation; copy it
  /// if you need it across set_link/clear_links calls.
  const std::set<Addr>& neighbors_of(Addr a) const;

  /// Observer invoked on every link state change (used for link-layer
  /// feedback based neighbour detection).
  using LinkObserver = std::function<void(Addr a, Addr b, bool up)>;
  void add_link_observer(LinkObserver obs) {
    link_observers_.push_back(std::move(obs));
  }

  // -- channel parameters ------------------------------------------------------
  void set_base_delay(Duration d) { base_delay_ = d; }
  void set_per_byte_delay(Duration d) { per_byte_delay_ = d; }
  /// Uniform frame loss probability applied per receiver.
  void set_loss_probability(double p) { loss_prob_ = p; }

  // -- transmission -------------------------------------------------------------
  /// Transmits a frame. Broadcast frames reach every current neighbour of
  /// frame.tx (each with independent loss); unicast frames reach frame.rx if
  /// adjacent. Returns false for a unicast whose destination is unreachable
  /// (link-layer feedback); broadcast always "succeeds".
  bool transmit(const Frame& frame);

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

 private:
  void deliver_later(const Frame& frame, Addr to);

  Scheduler& sched_;
  Rng rng_;
  std::map<Addr, NetworkDevice*> devices_;
  std::map<Addr, std::set<Addr>> adjacency_;
  std::vector<LinkObserver> link_observers_;
  Duration base_delay_ = usec(500);
  Duration per_byte_delay_ = usec(1);  // ~8 Mbit/s effective
  double loss_prob_ = 0.0;
  MediumStats stats_;
};

}  // namespace mk::net
