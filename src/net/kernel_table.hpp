// Per-node "kernel" routing table — the OS forwarding state a routing daemon
// manipulates (the System CF's S element wraps this, mirroring the paper's
// kernel route-table manipulation API).
//
// Host routes only (a deliberate, uniform simplification — see DESIGN.md):
// each entry maps a destination address to a next hop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "obs/journal.hpp"
#include "util/scheduler.hpp"
#include "util/time.hpp"

namespace mk::net {

struct RouteEntry {
  Addr dest = kNoAddr;
  Addr next_hop = kNoAddr;
  std::string iface = "wlan0";
  std::uint32_t metric = 0;  // hop count
  TimePoint installed_at{};
};

class KernelRouteTable {
 public:
  /// Adds or replaces the route to `entry.dest`.
  void set_route(const RouteEntry& entry);

  /// Removes the route to `dest`; returns true if one existed.
  bool remove_route(Addr dest);

  /// All routes whose next hop is `next_hop` (used for invalidation after a
  /// link break).
  std::vector<Addr> dests_via(Addr next_hop) const;

  std::optional<RouteEntry> lookup(Addr dest) const;

  std::vector<RouteEntry> entries() const;

  std::size_t size() const { return routes_.size(); }
  void clear();

  /// Monotonic change counter (bumped on every mutation) — cheap way for
  /// harnesses to detect convergence.
  std::uint64_t generation() const { return generation_; }

  /// Attaches a trace journal: effective route changes (install with a new
  /// next hop or metric, removal, clear) append kRouteAdd/kRouteDel records
  /// stamped with `clock`'s current time and attributed to node `self`.
  /// Identical periodic reinstalls are not journalled — they carry no
  /// information and would drown the trace. Null detaches.
  void set_journal(obs::Journal* journal, Addr self, Scheduler* clock);

 private:
  std::map<Addr, RouteEntry> routes_;
  std::uint64_t generation_ = 0;
  obs::Journal* journal_ = nullptr;
  Addr self_ = kNoAddr;
  Scheduler* clock_ = nullptr;
};

}  // namespace mk::net
