// Per-node "kernel" routing table — the OS forwarding state a routing daemon
// manipulates (the System CF's S element wraps this, mirroring the paper's
// kernel route-table manipulation API).
//
// Host routes only (a deliberate, uniform simplification — see DESIGN.md):
// each entry maps a destination address to a next hop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/time.hpp"

namespace mk::net {

struct RouteEntry {
  Addr dest = kNoAddr;
  Addr next_hop = kNoAddr;
  std::string iface = "wlan0";
  std::uint32_t metric = 0;  // hop count
  TimePoint installed_at{};
};

class KernelRouteTable {
 public:
  /// Adds or replaces the route to `entry.dest`.
  void set_route(const RouteEntry& entry);

  /// Removes the route to `dest`; returns true if one existed.
  bool remove_route(Addr dest);

  /// All routes whose next hop is `next_hop` (used for invalidation after a
  /// link break).
  std::vector<Addr> dests_via(Addr next_hop) const;

  std::optional<RouteEntry> lookup(Addr dest) const;

  std::vector<RouteEntry> entries() const;

  std::size_t size() const { return routes_.size(); }
  void clear();

  /// Monotonic change counter (bumped on every mutation) — cheap way for
  /// harnesses to detect convergence.
  std::uint64_t generation() const { return generation_; }

 private:
  std::map<Addr, RouteEntry> routes_;
  std::uint64_t generation_ = 0;
};

}  // namespace mk::net
