// Spatial-hash grid over node positions (the medium's topology core at
// scale). Cell size equals the radio range, so any pair within range shares a
// 3x3 cell neighbourhood: a 9-cell probe around a node is a complete
// candidate set for its range query, turning the all-pairs O(n²) link scan
// into O(n·k) for k nodes per neighbourhood.
//
// Determinism: cells are stored in an unordered_map and gather() returns
// candidates in insertion order, which depends on movement history. Callers
// that journal link flips must therefore sort the flips they derive before
// applying them (topology.cpp sorts by (min addr, max addr)) — the *set* of
// candidates is deterministic, only its order is not.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/position.hpp"

namespace mk::net {

class SpatialGrid {
 public:
  /// `cell_size` must be >= the query range used against the grid.
  explicit SpatialGrid(double cell_size);

  void clear();

  /// Registers `slot` at `p`. A slot lives in exactly one cell; insert twice
  /// only after an intervening erase/move.
  void insert(std::uint32_t slot, Position p);

  /// Removes `slot`, which must currently be registered at `from`'s cell.
  void erase(std::uint32_t slot, Position from);

  /// Relocates `slot`; a no-op when both positions land in the same cell.
  void move(std::uint32_t slot, Position from, Position to);

  /// Appends every slot in the 9 cells around `p` to `out` (including the
  /// querying slot itself, if registered). Does not clear `out`.
  void gather(Position p, std::vector<std::uint32_t>& out) const;

  /// Visits every unordered slot pair that shares a cell or sits in adjacent
  /// cells — the complete candidate set for range queries — exactly once:
  /// cell-interior pairs plus each cell crossed with its four forward
  /// neighbours (+1,0), (+1,+1), (0,+1), (-1,+1). Visit *order* follows the
  /// hash layout and is not deterministic; the visited *set* is.
  template <typename Fn>
  void for_each_candidate_pair(Fn&& fn) const {
    static constexpr std::int64_t kForward[4][2] = {
        {1, 0}, {1, 1}, {0, 1}, {-1, 1}};
    for (const auto& [key, members] : cells_) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          fn(members[i], members[j]);
        }
      }
      const auto cx = static_cast<std::int64_t>(
          static_cast<std::int32_t>(key >> 32));
      const auto cy = static_cast<std::int64_t>(
          static_cast<std::int32_t>(key & 0xffffffffu));
      for (const auto& d : kForward) {
        auto it = cells_.find(pack(cx + d[0], cy + d[1]));
        if (it == cells_.end()) continue;
        for (std::uint32_t a : members) {
          for (std::uint32_t b : it->second) fn(a, b);
        }
      }
    }
  }

  std::size_t cell_count() const { return cells_.size(); }

 private:
  /// Packs a cell coordinate pair into one map key. Coordinates are biased
  /// through int64 floor so positions slightly outside [0, w)x[0, h)
  /// (mobility clamps, test fixtures) still land in well-defined cells.
  static std::uint64_t pack(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  std::uint64_t key_of(Position p) const;

  double inv_cell_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace mk::net
