// Data-plane forwarding engine — the "kernel IP forwarding path" of a node.
//
// Looks up the kernel routing table and relays data frames hop by hop.
// Exposes Netfilter-style hooks that MANETKit's NetLink component (and the
// monolithic DYMO baseline) attach to:
//   * on_no_route     — packet with no route (origination or relay); a hook
//                       may consume (buffer) it, otherwise it is dropped.
//   * on_route_used   — a route was used by the data plane (lifetimes).
//   * on_send_failure — next-hop transmission failed (link break detected by
//                       link-layer feedback).
#pragma once

#include <cstdint>
#include <functional>

#include "net/device.hpp"
#include "net/frame.hpp"
#include "net/kernel_table.hpp"
#include "util/scheduler.hpp"

namespace mk::net {

struct ForwardingStats {
  std::uint64_t originated = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t buffered = 0;
  std::uint64_t send_failures = 0;
};

class ForwardingEngine {
 public:
  ForwardingEngine(NetworkDevice& device, KernelRouteTable& table,
                   Scheduler& sched);

  struct Hooks {
    std::function<bool(const DataHeader&)> on_no_route;
    std::function<void(Addr dst)> on_route_used;
    std::function<void(const DataHeader&, Addr broken_next_hop)> on_send_failure;
  };
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }
  void clear_hooks() { hooks_ = Hooks{}; }

  /// Local delivery sink (packets addressed to this node).
  using DeliverFn = std::function<void(const DataHeader&)>;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Originates a data packet to `dst`. Returns true if transmitted or
  /// buffered by a hook; false if dropped.
  bool send(Addr dst, std::uint16_t payload_size, std::uint8_t ttl = 64);

  /// Re-injects a previously buffered packet (NetLink's ROUTE_FOUND path).
  bool reinject(DataHeader hdr);

  /// Handles an incoming data frame (deliver locally or relay).
  void handle_frame(const Frame& frame);

  const ForwardingStats& stats() const { return stats_; }
  Addr self() const { return device_.addr(); }

 private:
  /// Routes and transmits; shared by origination, relay and re-injection.
  bool route_and_send(DataHeader hdr, bool originating);

  NetworkDevice& device_;
  KernelRouteTable& table_;
  Scheduler& sched_;
  Hooks hooks_;
  DeliverFn deliver_;
  std::uint32_t next_seq_ = 1;
  ForwardingStats stats_;
};

}  // namespace mk::net
