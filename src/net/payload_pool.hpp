// Recycled frame payload buffers.
//
// A control transmission serializes into a PayloadBuffer that is then shared
// immutably by every in-flight copy of the frame (see frame.hpp). Acquiring
// the buffer here instead of make_shared recycles both the byte buffer
// (capacity preserved across tenants, serialize_into style) and the
// shared_ptr control block, so a warm transmission allocates nothing. Under
// mem::MemBackend::kHeap this degenerates to a fresh heap buffer (the
// conformance oracle).
#pragma once

#include <cstdint>
#include <memory>

#include "net/frame.hpp"

namespace mk::net {

/// An empty (size 0, warm capacity) payload buffer. Fill it, then hand it to
/// Frame::payload as a PayloadPtr — the non-const -> const conversion is
/// implicit. The deleter returns the slot to the pool when the last frame
/// copy drops it.
std::shared_ptr<PayloadBuffer> acquire_payload();

/// Live handles not yet returned to the pool (kPool acquires only).
std::int64_t payload_pool_outstanding();

/// Frees every slot currently in the free list (test hygiene).
void payload_pool_trim();

}  // namespace mk::net
