#include "net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mk::net::topo {

void linear(SimMedium& medium, std::span<const Addr> addrs) {
  for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
    medium.set_link(addrs[i], addrs[i + 1], true);
  }
}

void ring(SimMedium& medium, std::span<const Addr> addrs) {
  linear(medium, addrs);
  if (addrs.size() > 2) {
    medium.set_link(addrs.front(), addrs.back(), true);
  }
}

void grid(SimMedium& medium, std::span<const Addr> addrs, std::size_t cols) {
  MK_ASSERT(cols > 0);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if ((i + 1) % cols != 0 && i + 1 < addrs.size()) {
      medium.set_link(addrs[i], addrs[i + 1], true);
    }
    if (i + cols < addrs.size()) {
      medium.set_link(addrs[i], addrs[i + cols], true);
    }
  }
}

void full_mesh(SimMedium& medium, std::span<const Addr> addrs) {
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    for (std::size_t j = i + 1; j < addrs.size(); ++j) {
      medium.set_link(addrs[i], addrs[j], true);
    }
  }
}

namespace {

LinkFlip make_flip(Addr a, Addr b, bool up) {
  return a < b ? LinkFlip{a, b, up} : LinkFlip{b, a, up};
}

/// The conformance oracle: exhaustive all-pairs scan, squared distances,
/// flips collected and applied in (min addr, max addr) order — the exact
/// contract the grid backend must reproduce bit-for-bit.
void apply_range_links_reference(SimMedium& medium,
                                 std::span<SimNode* const> nodes,
                                 double range) {
  const double range2 = range * range;
  std::vector<LinkFlip> flips;
  std::uint64_t evals = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Position pi = nodes[i]->position();
    const Addr ai = nodes[i]->addr();
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      ++evals;
      bool in_range = dist_sq(pi, nodes[j]->position()) <= range2;
      Addr aj = nodes[j]->addr();
      if (medium.has_link(ai, aj) != in_range) {
        flips.push_back(make_flip(ai, aj, in_range));
      }
    }
  }
  medium.pair_evals_counter().inc(evals);
  std::sort(flips.begin(), flips.end());
  for (const LinkFlip& f : flips) medium.set_link(f.a, f.b, f.up);
}

}  // namespace

void apply_range_links(SimMedium& medium, std::span<SimNode* const> nodes,
                       double range, TopologyBackend backend) {
  if (backend == TopologyBackend::kReference) {
    apply_range_links_reference(medium, nodes, range);
  } else {
    // A transient tracker: construction runs rebuild(), which grid-indexes
    // the nodes and synchronises every link from scratch.
    RangeLinkTracker tracker(medium, nodes, range);
  }
}

void random_geometric(SimMedium& medium, std::span<SimNode* const> nodes,
                      double w, double h, double range, Rng& rng,
                      TopologyBackend backend) {
  for (SimNode* n : nodes) {
    n->set_position({rng.uniform(0.0, w), rng.uniform(0.0, h)});
  }
  apply_range_links(medium, nodes, range, backend);
}

// -------------------------------------------------------- RangeLinkTracker

RangeLinkTracker::RangeLinkTracker(SimMedium& medium,
                                   std::span<SimNode* const> nodes,
                                   double range, double slack)
    : medium_(medium),
      nodes_(nodes.begin(), nodes.end()),
      range_(range),
      range2_(range * range),
      slack2_(slack * slack),
      grid_(range) {
  MK_ASSERT(range > 0.0);
  const std::size_t n = nodes_.size();
  addr_.reserve(n);
  for (const SimNode* node : nodes_) addr_.push_back(node->addr());
  anchor_.resize(n);
  dirty_.assign(n, 0);
  mark_.assign(n, 0);
  moved_flag_.assign(n, 0);
  slot_of_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto [_, inserted] = slot_of_.emplace(addr_[i], i);
    MK_ASSERT(inserted, "duplicate node address in tracked set");
  }
  rebuild();
}

void RangeLinkTracker::rebuild() {
  grid_.clear();
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    anchor_[i] = nodes_[i]->position();
    grid_.insert(i, anchor_[i]);
  }
  for (std::uint32_t slot : moved_) moved_flag_[slot] = 0;
  moved_.clear();
  bulk_sync();
}

void RangeLinkTracker::note_moved(std::size_t slot) {
  MK_ASSERT(slot < nodes_.size());
  if (moved_flag_[slot] != 0) return;
  moved_flag_[slot] = 1;
  moved_.push_back(static_cast<std::uint32_t>(slot));
}

void RangeLinkTracker::update() {
  if (moved_.empty()) return;
  // Dirty = noted nodes that drifted past the slack. Ascending slot order
  // makes the pair-ownership rule in evaluate_pair deterministic.
  std::sort(moved_.begin(), moved_.end());
  std::size_t kept = 0;
  for (std::uint32_t slot : moved_) {
    moved_flag_[slot] = 0;
    Position cur = nodes_[slot]->position();
    if (dist_sq(cur, anchor_[slot]) <= slack2_) continue;
    // Phase 1: relocate every dirty node in the grid before any evaluation,
    // so each probe sees all post-move cells.
    grid_.move(slot, anchor_[slot], cur);
    anchor_[slot] = cur;
    moved_[kept++] = slot;
  }
  moved_.resize(kept);
  if (kept * 3 >= nodes_.size()) {
    // Most of the fleet drifted (continuous mobility): a full half-
    // neighbourhood sweep is cheaper than per-node incremental probes and
    // produces the identical flip set.
    moved_.clear();
    bulk_sync();
    return;
  }
  for (std::uint32_t slot : moved_) dirty_[slot] = 1;
  for (std::uint32_t slot : moved_) evaluate_node(slot);
  for (std::uint32_t slot : moved_) dirty_[slot] = 0;
  moved_.clear();
  apply_flips();
}

void RangeLinkTracker::evaluate_node(std::uint32_t i) {
  ++stamp_;
  const Addr ai = addr_[i];
  const Position pi = anchor_[i];
  // One adjacency fetch per node; per-candidate linkedness is then a binary
  // search over this contiguous span instead of a medium map walk per pair.
  const std::span<const Addr> links = medium_.neighbors_of(ai);
  cand_.clear();
  grid_.gather(pi, cand_);
  // Everything now within range sits in the 9-cell probe (cell size =
  // range). Links that must *drop* can reach beyond it, so the node's
  // current links are scanned as a second candidate source below.
  for (std::uint32_t j : cand_) {
    if (j == i) continue;
    mark_[j] = stamp_;
    bool linked = std::binary_search(links.begin(), links.end(), addr_[j]);
    evaluate_pair(i, j, ai, pi, linked);
  }
  for (Addr nb : links) {
    auto it = slot_of_.find(nb);
    if (it == slot_of_.end()) continue;  // link outside the tracked set
    std::uint32_t j = it->second;
    if (mark_[j] == stamp_) continue;  // already probed via the grid
    evaluate_pair(i, j, ai, pi, /*linked=*/true);
  }
}

void RangeLinkTracker::evaluate_pair(std::uint32_t i, std::uint32_t j, Addr ai,
                                     Position pi, bool linked) {
  // Exactly-once per pair and update: when both endpoints are dirty the
  // lower slot owns the pair (its probe ran first and saw j's new cell).
  if (dirty_[j] != 0 && j < i) return;
  ++pair_evals_;
  bool in_range = dist_sq(pi, anchor_[j]) <= range2_;
  if (linked == in_range) return;
  flips_.push_back(make_flip(ai, addr_[j], in_range));
}

void RangeLinkTracker::bulk_sync() {
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  if (fresh_.size() < n) fresh_.resize(n);
  for (auto& v : fresh_) v.clear();
  grid_.for_each_candidate_pair([this](std::uint32_t a, std::uint32_t b) {
    ++pair_evals_;
    if (dist_sq(anchor_[a], anchor_[b]) <= range2_) {
      fresh_[a].push_back(addr_[b]);
      fresh_[b].push_back(addr_[a]);
    }
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    const Addr ai = addr_[i];
    std::vector<Addr>& now = fresh_[i];
    std::sort(now.begin(), now.end());
    // Merge-diff against the medium's sorted span. Every changed pair is
    // seen from both endpoints; the min endpoint emits the flip. Links to
    // addresses outside the tracked set are left alone.
    const std::span<const Addr> old = medium_.neighbors_of(ai);
    std::size_t oi = 0, ni = 0;
    while (oi < old.size() || ni < now.size()) {
      if (ni == now.size() || (oi < old.size() && old[oi] < now[ni])) {
        Addr gone = old[oi++];
        // gone < ai: the other endpoint owns the flip and emits it from its
        // own diff (adjacency and fresh lists are both symmetric).
        if (ai < gone && slot_of_.count(gone) != 0) {
          flips_.push_back({ai, gone, false});
        }
      } else if (oi == old.size() || now[ni] < old[oi]) {
        Addr fresh_nb = now[ni++];
        if (ai < fresh_nb) flips_.push_back({ai, fresh_nb, true});
      } else {
        ++oi;
        ++ni;  // unchanged link
      }
    }
  }
  apply_flips();
}

void RangeLinkTracker::apply_flips() {
  medium_.pair_evals_counter().inc(pair_evals_);
  pair_evals_ = 0;
  std::sort(flips_.begin(), flips_.end());
  for (const LinkFlip& f : flips_) medium_.set_link(f.a, f.b, f.up);
  flips_.clear();
}

}  // namespace mk::net::topo

namespace mk::net {

RangeMobilityBase::RangeMobilityBase(SimMedium& medium,
                                     std::vector<SimNode*> nodes, double range,
                                     double slack,
                                     topo::TopologyBackend backend)
    : medium_(medium),
      nodes_(std::move(nodes)),
      range_(range),
      slack_(slack),
      backend_(backend) {}

void RangeMobilityBase::init_links() {
  if (backend_ == topo::TopologyBackend::kGrid) {
    tracker_ = std::make_unique<topo::RangeLinkTracker>(medium_, nodes_,
                                                        range_, slack_);
  } else {
    topo::apply_range_links(medium_, nodes_, range_,
                            topo::TopologyBackend::kReference);
  }
}

void RangeMobilityBase::note_moved(std::size_t i) {
  // The tracker filters no-op moves (drift <= slack) itself, so every moved
  // node is simply noted; the reference backend recomputes from scratch.
  if (tracker_ != nullptr) tracker_->note_moved(i);
}

void RangeMobilityBase::sync_links() {
  if (tracker_ != nullptr) {
    tracker_->update();
  } else {
    topo::apply_range_links(medium_, nodes_, range_,
                            topo::TopologyBackend::kReference);
  }
}

RandomWaypoint::RandomWaypoint(SimMedium& medium, std::vector<SimNode*> nodes,
                               Params params, std::uint64_t seed,
                               topo::TopologyBackend backend)
    : RangeMobilityBase(medium, std::move(nodes), params.range, params.slack,
                        backend),
      params_(params),
      rng_(seed) {
  states_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_position(
        {rng_.uniform(0.0, params_.width), rng_.uniform(0.0, params_.height)});
    pick_waypoint(i);
  }
  init_links();
}

void RandomWaypoint::pick_waypoint(std::size_t i) {
  states_[i].waypoint = {rng_.uniform(0.0, params_.width),
                         rng_.uniform(0.0, params_.height)};
  states_[i].speed = rng_.uniform(params_.min_speed, params_.max_speed);
  states_[i].pause_left = 0.0;
}

void RandomWaypoint::step(Duration dt) {
  double t = static_cast<double>(dt.count()) / 1e6;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    State& s = states_[i];
    if (s.pause_left > 0.0) {
      s.pause_left -= t;
      continue;
    }
    Position p = nodes_[i]->position();
    double dx = s.waypoint.x - p.x;
    double dy = s.waypoint.y - p.y;
    double dist = std::sqrt(dx * dx + dy * dy);
    double travel = s.speed * t;
    if (travel >= dist) {
      nodes_[i]->set_position(s.waypoint);
      s.pause_left = params_.pause;
      pick_waypoint(i);
    } else {
      nodes_[i]->set_position(
          {p.x + dx / dist * travel, p.y + dy / dist * travel});
    }
    note_moved(i);
  }
  sync_links();
}

GaussMarkov::GaussMarkov(SimMedium& medium, std::vector<SimNode*> nodes,
                         Params params, std::uint64_t seed,
                         topo::TopologyBackend backend)
    : RangeMobilityBase(medium, std::move(nodes), params.range, params.slack,
                        backend),
      params_(params),
      rng_(seed) {
  MK_ASSERT(params_.alpha >= 0.0 && params_.alpha < 1.0);
  states_.resize(nodes_.size());
  constexpr double kTau = 6.283185307179586;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_position(
        {rng_.uniform(0.0, params_.width), rng_.uniform(0.0, params_.height)});
    states_[i].speed = params_.mean_speed;
    states_[i].mean_dir = rng_.uniform(0.0, kTau);
    states_[i].dir = states_[i].mean_dir;
  }
  init_links();
}

void GaussMarkov::step(Duration dt) {
  const double t = static_cast<double>(dt.count()) / 1e6;
  const double a = params_.alpha;
  // The AR(1) recursion's stationary-variance weight: with this factor on
  // the Gaussian term, speed/heading variance is sigma² independent of
  // alpha (the standard Gauss–Markov mobility formulation).
  const double root = std::sqrt(1.0 - a * a);
  constexpr double kPi = 3.141592653589793;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    State& s = states_[i];
    s.speed = a * s.speed + (1.0 - a) * params_.mean_speed +
              root * rng_.normal(0.0, params_.speed_sigma);
    if (s.speed < 0.0) s.speed = 0.0;
    s.dir = a * s.dir + (1.0 - a) * s.mean_dir +
            root * rng_.normal(0.0, params_.direction_sigma);
    Position p = nodes_[i]->position();
    p.x += s.speed * std::cos(s.dir) * t;
    p.y += s.speed * std::sin(s.dir) * t;
    // Reflect off the field boundary, mirroring both the heading and its
    // attractor so the process does not keep pushing into the wall.
    if (p.x < 0.0 || p.x > params_.width) {
      p.x = p.x < 0.0 ? -p.x : 2.0 * params_.width - p.x;
      s.dir = kPi - s.dir;
      s.mean_dir = kPi - s.mean_dir;
    }
    if (p.y < 0.0 || p.y > params_.height) {
      p.y = p.y < 0.0 ? -p.y : 2.0 * params_.height - p.y;
      s.dir = -s.dir;
      s.mean_dir = -s.mean_dir;
    }
    // A step longer than the field could reflect past the far wall; clamp as
    // the final guarantee that positions stay inside the grid's world.
    p.x = std::clamp(p.x, 0.0, params_.width);
    p.y = std::clamp(p.y, 0.0, params_.height);
    nodes_[i]->set_position(p);
    note_moved(i);
  }
  sync_links();
}

}  // namespace mk::net
