#include "net/topology.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mk::net::topo {

void linear(SimMedium& medium, std::span<const Addr> addrs) {
  for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
    medium.set_link(addrs[i], addrs[i + 1], true);
  }
}

void ring(SimMedium& medium, std::span<const Addr> addrs) {
  linear(medium, addrs);
  if (addrs.size() > 2) {
    medium.set_link(addrs.front(), addrs.back(), true);
  }
}

void grid(SimMedium& medium, std::span<const Addr> addrs, std::size_t cols) {
  MK_ASSERT(cols > 0);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if ((i + 1) % cols != 0 && i + 1 < addrs.size()) {
      medium.set_link(addrs[i], addrs[i + 1], true);
    }
    if (i + cols < addrs.size()) {
      medium.set_link(addrs[i], addrs[i + cols], true);
    }
  }
}

void full_mesh(SimMedium& medium, std::span<const Addr> addrs) {
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    for (std::size_t j = i + 1; j < addrs.size(); ++j) {
      medium.set_link(addrs[i], addrs[j], true);
    }
  }
}

void apply_range_links(SimMedium& medium, std::span<SimNode* const> nodes,
                       double range) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      Position a = nodes[i]->position();
      Position b = nodes[j]->position();
      double dx = a.x - b.x;
      double dy = a.y - b.y;
      bool in_range = std::sqrt(dx * dx + dy * dy) <= range;
      if (medium.has_link(nodes[i]->addr(), nodes[j]->addr()) != in_range) {
        medium.set_link(nodes[i]->addr(), nodes[j]->addr(), in_range);
      }
    }
  }
}

void random_geometric(SimMedium& medium, std::span<SimNode* const> nodes,
                      double w, double h, double range, Rng& rng) {
  for (SimNode* n : nodes) {
    n->set_position({rng.uniform(0.0, w), rng.uniform(0.0, h)});
  }
  apply_range_links(medium, nodes, range);
}

}  // namespace mk::net::topo

namespace mk::net {

RandomWaypoint::RandomWaypoint(SimMedium& medium, std::vector<SimNode*> nodes,
                               Params params, std::uint64_t seed)
    : medium_(medium), nodes_(std::move(nodes)), params_(params), rng_(seed) {
  states_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_position(
        {rng_.uniform(0.0, params_.width), rng_.uniform(0.0, params_.height)});
    pick_waypoint(i);
  }
  topo::apply_range_links(medium_, nodes_, params_.range);
}

void RandomWaypoint::pick_waypoint(std::size_t i) {
  states_[i].waypoint = {rng_.uniform(0.0, params_.width),
                         rng_.uniform(0.0, params_.height)};
  states_[i].speed = rng_.uniform(params_.min_speed, params_.max_speed);
  states_[i].pause_left = 0.0;
}

void RandomWaypoint::step(Duration dt) {
  double t = static_cast<double>(dt.count()) / 1e6;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    State& s = states_[i];
    if (s.pause_left > 0.0) {
      s.pause_left -= t;
      continue;
    }
    Position p = nodes_[i]->position();
    double dx = s.waypoint.x - p.x;
    double dy = s.waypoint.y - p.y;
    double dist = std::sqrt(dx * dx + dy * dy);
    double travel = s.speed * t;
    if (travel >= dist) {
      nodes_[i]->set_position(s.waypoint);
      s.pause_left = params_.pause;
      pick_waypoint(i);
    } else {
      nodes_[i]->set_position({p.x + dx / dist * travel, p.y + dy / dist * travel});
    }
  }
  topo::apply_range_links(medium_, nodes_, params_.range);
}

}  // namespace mk::net
