// Node addressing for the simulated network. Addresses are IPv4-like 32-bit
// values; the testbed allocates them from 10.0.0.0/24 by node index.
#pragma once

#include <cstdint>

#include "packetbb/packetbb.hpp"

namespace mk::net {

using Addr = pbb::Addr;

inline constexpr Addr kBroadcast = 0xFFFFFFFFu;
inline constexpr Addr kNoAddr = 0;

/// 10.0.0.(index+1) — the testbed's address plan.
inline constexpr Addr addr_for_index(std::uint32_t index) {
  return (10u << 24) | (index + 1);
}

inline constexpr std::uint32_t index_for_addr(Addr a) {
  return (a & 0xFFu) - 1;
}

}  // namespace mk::net
