// Topology builders and mobility models for the simulated medium.
//
// linear() reproduces the paper's 5-node chain testbed; the other builders
// and the RandomWaypoint model support the wider parameter sweeps in the
// ablation benches.
//
// Range-derived links come in two backends (the scheduler's wheel/heap
// backend-oracle pattern, applied to the medium):
//
//  * TopologyBackend::kGrid       — spatial-hash index (cell size = radio
//                                   range): each node probes only its 9-cell
//                                   neighbourhood plus its current links,
//                                   O(n·k) pair tests per pass.
//  * TopologyBackend::kReference  — the original exhaustive O(n²) scan, kept
//                                   as the conformance oracle.
//
// Both backends collect the link flips they imply, sort them by
// (min addr, max addr) and only then apply them to the medium, so a traced
// run produces bit-identical ordered journal digests whichever backend
// computed the links — the digest machinery is the acceptance test for the
// spatial index (see tests/test_topology_scale.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/spatial_index.hpp"
#include "util/rng.hpp"

namespace mk::net::topo {

/// a—b—c—d—... chain (symmetric links).
void linear(SimMedium& medium, std::span<const Addr> addrs);

/// Chain closed into a cycle.
void ring(SimMedium& medium, std::span<const Addr> addrs);

/// Row-major grid with 4-neighbourhood links.
void grid(SimMedium& medium, std::span<const Addr> addrs, std::size_t cols);

/// Every pair adjacent (single dense cell).
void full_mesh(SimMedium& medium, std::span<const Addr> addrs);

/// Which structure computes range-derived links (see file comment).
enum class TopologyBackend : std::uint8_t {
  kGrid,       // spatial-hash index, O(n·k)
  kReference,  // exhaustive all-pairs oracle, O(n²)
};

/// One pending link transition, keyed canonically (a < b). Both backends
/// sort their flips by (a, b) before touching the medium, which pins the
/// journal's kLinkUp/kLinkDown order independently of how the flips were
/// discovered.
struct LinkFlip {
  Addr a = kNoAddr;  // min endpoint
  Addr b = kNoAddr;  // max endpoint
  bool up = false;

  friend bool operator<(const LinkFlip& l, const LinkFlip& r) {
    return l.a != r.a ? l.a < r.a : l.b < r.b;
  }
};

/// Links derived from node positions: adjacent iff dist² <= range². Brings
/// the medium's links over `nodes` in sync with the current positions from
/// scratch (existing links outside the rule are torn down per-pair), so it
/// is safe to call repeatedly as nodes move. Every pair test is counted on
/// the medium's "medium.pair_evals" counter.
void apply_range_links(SimMedium& medium, std::span<SimNode* const> nodes,
                       double range,
                       TopologyBackend backend = TopologyBackend::kGrid);

/// Places nodes uniformly at random in [0,w]x[0,h] and applies range links.
void random_geometric(SimMedium& medium, std::span<SimNode* const> nodes,
                      double w, double h, double range, Rng& rng,
                      TopologyBackend backend = TopologyBackend::kGrid);

/// Incremental range-link maintenance over a fixed node set: the persistent
/// form of apply_range_links(kGrid) for mobility stepping. Nodes are indexed
/// by their position ("slot") in the vector handed to the constructor.
///
/// Protocol per mobility step: mutate positions, note_moved() each node that
/// moved, then update(). Only noted nodes whose drift from their last-
/// evaluated anchor exceeds the hysteresis slack are re-evaluated — each
/// against its 9-cell grid neighbourhood plus its current links — so paused
/// or slow nodes cost nothing. With slack = 0 (the default) the maintained
/// links are exactly the reference backend's at every step; slack > 0 trades
/// bounded staleness (a link can lag reality by up to the combined slack of
/// its endpoints) for fewer re-evaluations under jittery mobility.
class RangeLinkTracker {
 public:
  RangeLinkTracker(SimMedium& medium, std::span<SimNode* const> nodes,
                   double range, double slack = 0.0);

  /// Re-anchors every node at its current position and synchronises all
  /// links from scratch (grid-indexed; called by the constructor).
  void rebuild();

  /// Marks node `slot` as having moved since the last update()/rebuild().
  void note_moved(std::size_t slot);

  /// Re-evaluates links around every noted node past the slack, applying
  /// the resulting flips in (min addr, max addr) order.
  void update();

  double range() const { return range_; }
  std::size_t size() const { return nodes_.size(); }

 private:
  /// Evaluates one candidate pair (i, j); appends a flip if the link state
  /// must change. `linked` is i's current adjacency verdict for j, resolved
  /// by the caller from the span it fetched once per node. Skips pairs
  /// already owned by an earlier dirty node.
  void evaluate_pair(std::uint32_t i, std::uint32_t j, Addr ai, Position pi,
                     bool linked);
  /// Probes slot i's 9-cell neighbourhood and its current links.
  void evaluate_node(std::uint32_t i);
  /// Full resync: one half-neighbourhood sweep over the grid cells tests
  /// every candidate pair exactly once, then each node's rebuilt neighbour
  /// list is merge-diffed against the medium. Cheaper than per-node probes
  /// when most of the fleet is dirty (no dedupe stamps, no teardown scans);
  /// the flip set — and hence the journal — is identical.
  void bulk_sync();
  void apply_flips();

  SimMedium& medium_;
  std::vector<SimNode*> nodes_;
  std::vector<Addr> addr_;  // addr_[slot] == nodes_[slot]->addr()
  double range_;
  double range2_;
  double slack2_;
  SpatialGrid grid_;
  std::vector<Position> anchor_;      // position at last link evaluation
  std::vector<std::uint8_t> dirty_;   // re-evaluating this update
  std::vector<std::uint64_t> mark_;   // per-slot probe stamp (pair dedupe)
  std::uint64_t stamp_ = 0;
  std::vector<std::uint32_t> moved_;  // noted slots, deduped via moved_flag_
  std::vector<std::uint8_t> moved_flag_;
  std::vector<std::uint32_t> cand_;   // gather scratch
  std::vector<std::vector<Addr>> fresh_;  // bulk_sync neighbour-list scratch
  std::vector<LinkFlip> flips_;
  std::unordered_map<Addr, std::uint32_t> slot_of_;
  std::uint64_t pair_evals_ = 0;
};

}  // namespace mk::net::topo

namespace mk::net {

/// Common interface over mobility models: the scenario matrix (and
/// testbed::SimWorld) steps any model through one pointer. step(dt) advances
/// positions by dt of simulated time and brings range-based adjacency on the
/// medium back in sync.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual void step(Duration dt) = 0;
  virtual topo::TopologyBackend backend() const = 0;
  virtual std::string_view name() const = 0;
};

/// Shared range-link maintenance for position-stepping models: under the
/// grid backend an incremental RangeLinkTracker carries links across steps;
/// under the reference backend every sync is a full O(n²) oracle recompute
/// (bit-identical journal either way — the PR-7 conformance contract).
class RangeMobilityBase : public MobilityModel {
 public:
  topo::TopologyBackend backend() const override { return backend_; }

 protected:
  RangeMobilityBase(SimMedium& medium, std::vector<SimNode*> nodes,
                    double range, double slack, topo::TopologyBackend backend);

  /// Builds the tracker (grid) or runs the first oracle pass (reference).
  /// Called by subclasses after initial placement.
  void init_links();
  /// Marks node i moved this step (no-op under the reference backend).
  void note_moved(std::size_t i);
  /// Applies the accumulated flips / reruns the oracle.
  void sync_links();

  SimMedium& medium_;
  std::vector<SimNode*> nodes_;

 private:
  double range_;
  double slack_;
  topo::TopologyBackend backend_;
  std::unique_ptr<topo::RangeLinkTracker> tracker_;  // kGrid only
};

/// Random-waypoint mobility: each node picks a waypoint, travels at a random
/// speed, pauses, repeats. step(dt) advances positions and updates
/// range-based adjacency on the medium — incrementally via a RangeLinkTracker
/// under the grid backend, or with a full reference recompute as the oracle.
class RandomWaypoint : public RangeMobilityBase {
 public:
  struct Params {
    double width = 1000.0;
    double height = 1000.0;
    double min_speed = 1.0;   // m/s
    double max_speed = 10.0;  // m/s
    double pause = 2.0;       // s
    double range = 250.0;     // radio range, m
    double slack = 0.0;       // link-evaluation hysteresis, m (0 = exact)
  };

  RandomWaypoint(SimMedium& medium, std::vector<SimNode*> nodes, Params params,
                 std::uint64_t seed = 7,
                 topo::TopologyBackend backend = topo::TopologyBackend::kGrid);

  /// Advances the model by dt and updates range links.
  void step(Duration dt) override;
  std::string_view name() const override { return "random_waypoint"; }

 private:
  struct State {
    Position waypoint;
    double speed = 0.0;
    double pause_left = 0.0;
  };

  void pick_waypoint(std::size_t i);

  Params params_;
  Rng rng_;
  std::vector<State> states_;
};

/// Gauss–Markov mobility: per-node speed and heading evolve as first-order
/// autoregressive processes around a mean, giving temporally correlated,
/// tunably smooth trajectories (alpha→1: near-linear; alpha→0: Brownian).
/// Nodes reflect off the field boundary (heading and its mean are mirrored),
/// so the fleet stays inside [0,width]×[0,height]. Link maintenance shares
/// RandomWaypoint's incremental RangeLinkTracker path.
class GaussMarkov : public RangeMobilityBase {
 public:
  struct Params {
    double width = 1000.0;
    double height = 1000.0;
    double mean_speed = 5.0;       // m/s, the AR process's attractor
    double speed_sigma = 1.0;      // stddev of the speed perturbation
    double direction_sigma = 0.5;  // stddev of the heading perturbation, rad
    double alpha = 0.85;           // memory in [0,1): weight of the past
    double range = 250.0;          // radio range, m
    double slack = 0.0;            // link-evaluation hysteresis, m
  };

  GaussMarkov(SimMedium& medium, std::vector<SimNode*> nodes, Params params,
              std::uint64_t seed = 7,
              topo::TopologyBackend backend = topo::TopologyBackend::kGrid);

  void step(Duration dt) override;
  std::string_view name() const override { return "gauss_markov"; }

 private:
  struct State {
    double speed = 0.0;
    double dir = 0.0;       // current heading, rad
    double mean_dir = 0.0;  // per-node heading attractor
  };

  Params params_;
  Rng rng_;
  std::vector<State> states_;
};

}  // namespace mk::net
