// Topology builders and mobility models for the simulated medium.
//
// linear() reproduces the paper's 5-node chain testbed; the other builders
// and the RandomWaypoint model support the wider parameter sweeps in the
// ablation benches.
#pragma once

#include <span>
#include <vector>

#include "net/medium.hpp"
#include "net/node.hpp"
#include "util/rng.hpp"

namespace mk::net::topo {

/// a—b—c—d—... chain (symmetric links).
void linear(SimMedium& medium, std::span<const Addr> addrs);

/// Chain closed into a cycle.
void ring(SimMedium& medium, std::span<const Addr> addrs);

/// Row-major grid with 4-neighbourhood links.
void grid(SimMedium& medium, std::span<const Addr> addrs, std::size_t cols);

/// Every pair adjacent (single dense cell).
void full_mesh(SimMedium& medium, std::span<const Addr> addrs);

/// Links derived from node positions: adjacent iff distance <= range.
/// Reapplies from scratch (existing links outside the rule are torn down
/// per-pair), so it is safe to call repeatedly as nodes move.
void apply_range_links(SimMedium& medium, std::span<SimNode* const> nodes,
                       double range);

/// Places nodes uniformly at random in [0,w]x[0,h] and applies range links.
void random_geometric(SimMedium& medium, std::span<SimNode* const> nodes,
                      double w, double h, double range, Rng& rng);

}  // namespace mk::net::topo

namespace mk::net {

/// Random-waypoint mobility: each node picks a waypoint, travels at a random
/// speed, pauses, repeats. step(dt) advances positions and recomputes
/// range-based adjacency on the medium.
class RandomWaypoint {
 public:
  struct Params {
    double width = 1000.0;
    double height = 1000.0;
    double min_speed = 1.0;   // m/s
    double max_speed = 10.0;  // m/s
    double pause = 2.0;       // s
    double range = 250.0;     // radio range, m
  };

  RandomWaypoint(SimMedium& medium, std::vector<SimNode*> nodes, Params params,
                 std::uint64_t seed = 7);

  /// Advances the model by dt and reapplies range links.
  void step(Duration dt);

 private:
  struct State {
    Position waypoint;
    double speed = 0.0;
    double pause_left = 0.0;
  };

  void pick_waypoint(std::size_t i);

  SimMedium& medium_;
  std::vector<SimNode*> nodes_;
  Params params_;
  Rng rng_;
  std::vector<State> states_;
};

}  // namespace mk::net
