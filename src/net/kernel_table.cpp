#include "net/kernel_table.hpp"

#include "util/assert.hpp"

namespace mk::net {

void KernelRouteTable::set_route(const RouteEntry& entry) {
  MK_ASSERT(entry.dest != kNoAddr && entry.next_hop != kNoAddr);
  auto it = routes_.find(entry.dest);
  bool changed = it == routes_.end() || it->second.next_hop != entry.next_hop ||
                 it->second.metric != entry.metric;
  routes_[entry.dest] = entry;
  ++generation_;
  if (changed && journal_ != nullptr) {
    journal_->append({obs::RecordKind::kRouteAdd, self_,
                      clock_ != nullptr ? clock_->now().us : 0, entry.dest,
                      entry.next_hop, entry.metric});
  }
}

bool KernelRouteTable::remove_route(Addr dest) {
  bool erased = routes_.erase(dest) > 0;
  if (erased) {
    ++generation_;
    if (journal_ != nullptr) {
      journal_->append({obs::RecordKind::kRouteDel, self_,
                        clock_ != nullptr ? clock_->now().us : 0, dest, 0, 0});
    }
  }
  return erased;
}

std::vector<Addr> KernelRouteTable::dests_via(Addr next_hop) const {
  std::vector<Addr> out;
  for (const auto& [dest, e] : routes_) {
    if (e.next_hop == next_hop) out.push_back(dest);
  }
  return out;
}

std::optional<RouteEntry> KernelRouteTable::lookup(Addr dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

std::vector<RouteEntry> KernelRouteTable::entries() const {
  std::vector<RouteEntry> out;
  out.reserve(routes_.size());
  for (const auto& [_, e] : routes_) out.push_back(e);
  return out;
}

void KernelRouteTable::clear() {
  if (!routes_.empty()) ++generation_;
  if (journal_ != nullptr) {
    for (const auto& [dest, _] : routes_) {
      journal_->append({obs::RecordKind::kRouteDel, self_,
                        clock_ != nullptr ? clock_->now().us : 0, dest, 0, 0});
    }
  }
  routes_.clear();
}

void KernelRouteTable::set_journal(obs::Journal* journal, Addr self,
                                   Scheduler* clock) {
  journal_ = journal;
  self_ = self;
  clock_ = clock;
}

}  // namespace mk::net
