#include "net/kernel_table.hpp"

#include "util/assert.hpp"

namespace mk::net {

void KernelRouteTable::set_route(const RouteEntry& entry) {
  MK_ASSERT(entry.dest != kNoAddr && entry.next_hop != kNoAddr);
  routes_[entry.dest] = entry;
  ++generation_;
}

bool KernelRouteTable::remove_route(Addr dest) {
  bool erased = routes_.erase(dest) > 0;
  if (erased) ++generation_;
  return erased;
}

std::vector<Addr> KernelRouteTable::dests_via(Addr next_hop) const {
  std::vector<Addr> out;
  for (const auto& [dest, e] : routes_) {
    if (e.next_hop == next_hop) out.push_back(dest);
  }
  return out;
}

std::optional<RouteEntry> KernelRouteTable::lookup(Addr dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

std::vector<RouteEntry> KernelRouteTable::entries() const {
  std::vector<RouteEntry> out;
  out.reserve(routes_.size());
  for (const auto& [_, e] : routes_) out.push_back(e);
  return out;
}

void KernelRouteTable::clear() {
  if (!routes_.empty()) ++generation_;
  routes_.clear();
}

}  // namespace mk::net
