// Link-layer frames exchanged over the simulated medium.
//
// Control frames carry a serialized PacketBB packet (or a baseline's own
// codec output) — this is the "UDP port 269/698" traffic of a real
// deployment. Data frames model application packets routed hop-by-hop via
// each node's kernel forwarding table; since both ends live in the same
// process the payload stays structured.
//
// The payload is a *shared immutable* buffer: a broadcast to k neighbours
// copies the Frame struct into k scheduler lambdas, but all k copies point at
// the single serialized buffer the sender produced (O(1) payload allocations
// per transmission instead of O(k)). Receivers only ever read it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/address.hpp"
#include "util/time.hpp"

namespace mk::net {

enum class FrameKind : std::uint8_t { kControl, kData };

/// Serialized control payload bytes.
using PayloadBuffer = std::vector<std::uint8_t>;
/// Shared immutable handle to a payload; one allocation per transmission,
/// shared by every in-flight copy of the frame.
using PayloadPtr = std::shared_ptr<const PayloadBuffer>;

inline PayloadPtr make_payload(PayloadBuffer bytes) {
  return std::make_shared<const PayloadBuffer>(std::move(bytes));
}

/// End-to-end header of a data packet (IP-header analogue).
struct DataHeader {
  Addr src = kNoAddr;
  Addr dst = kNoAddr;
  std::uint32_t seq = 0;
  std::uint8_t ttl = 64;
  std::uint16_t payload_size = 0;  // bytes of simulated payload
  TimePoint sent_at{};             // stamped at origination, for latency stats
};

struct Frame {
  Addr tx = kNoAddr;        // transmitting interface
  Addr rx = kBroadcast;     // link-level destination (kBroadcast for flooding)
  FrameKind kind = FrameKind::kControl;
  PayloadPtr payload;       // control: serialized packet (shared, immutable)
  DataHeader data;          // valid when kind == kData

  std::span<const std::uint8_t> payload_view() const {
    return payload != nullptr ? std::span<const std::uint8_t>(*payload)
                              : std::span<const std::uint8_t>{};
  }
  std::size_t payload_size() const {
    return payload != nullptr ? payload->size() : 0;
  }

  /// Approximate on-air size, used for overhead accounting and per-byte
  /// transmission delay (matches what a real trace would count).
  std::size_t wire_size() const {
    constexpr std::size_t kMacHeader = 34;  // 802.11-ish MAC+LLC overhead
    return kMacHeader +
           (kind == FrameKind::kControl
                ? payload_size() + 28           // IP+UDP headers
                : data.payload_size + 20u);     // IP header
  }
};

}  // namespace mk::net
