#include "testbed/world.hpp"

#include "opencom/guard.hpp"
#include "protocols/gpsr/gpsr_cf.hpp"
#include "protocols/install.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::testbed {

SimWorld::SimWorld(std::size_t num_nodes, std::uint64_t seed,
                   SimBackend backend)
    : sched_(backend), medium_(sched_, seed) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<net::SimNode>(
        static_cast<std::uint32_t>(i), medium_, sched_));
  }
  kits_.resize(num_nodes);
  supervisors_.resize(num_nodes);
  daemons_.resize(num_nodes * 2);  // slot per (node, daemon kind)
}

SimWorld::~SimWorld() {
  // Supervisors uninstall from their kits and cancel recovery timers; kits
  // and daemons hold timers into the scheduler; drop in that order.
  supervisors_.clear();
  daemons_.clear();
  kits_.clear();
}

std::vector<net::Addr> SimWorld::addrs() const {
  std::vector<net::Addr> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->addr());
  return out;
}

std::vector<net::SimNode*> SimWorld::node_ptrs() const {
  std::vector<net::SimNode*> ptrs;
  ptrs.reserve(nodes_.size());
  for (const auto& n : nodes_) ptrs.push_back(n.get());
  return ptrs;
}

net::MobilityModel& SimWorld::enable_mobility(
    net::RandomWaypoint::Params params, std::uint64_t seed,
    net::topo::TopologyBackend backend) {
  if (mobility_ == nullptr) {
    mobility_ = std::make_unique<net::RandomWaypoint>(
        medium_, node_ptrs(), params, seed, backend);
  }
  MK_ASSERT(mobility_->name() == "random_waypoint",
            "world already has a different mobility model");
  return *mobility_;
}

net::MobilityModel& SimWorld::enable_mobility(
    net::GaussMarkov::Params params, std::uint64_t seed,
    net::topo::TopologyBackend backend) {
  if (mobility_ == nullptr) {
    mobility_ = std::make_unique<net::GaussMarkov>(medium_, node_ptrs(),
                                                   params, seed, backend);
  }
  MK_ASSERT(mobility_->name() == "gauss_markov",
            "world already has a different mobility model");
  return *mobility_;
}

void SimWorld::step_mobility(Duration dt) {
  MK_ASSERT(mobility_ != nullptr, "enable_mobility() first");
  mobility_->step(dt);
  run_for(dt);
}

core::Manetkit& SimWorld::kit(std::size_t i) {
  auto& slot = kits_.at(i);
  if (slot == nullptr) {
    slot = std::make_unique<core::Manetkit>(*nodes_.at(i));
    proto::install_all(*slot);
    if (journal_ != nullptr) slot->set_journal(journal_.get());
    if (supervise_) {
      supervisors_.at(i) =
          std::make_unique<supervision::Supervisor>(*slot, sup_opts_);
    }
    if (replicate_) {
      repl::register_replication(*slot, repl_params_);
      slot->deploy("replication");
    }
  }
  return *slot;
}

void SimWorld::deploy_all(const std::string& proto) {
  for (std::size_t i = 0; i < size(); ++i) kit(i).deploy(proto);
}

void SimWorld::register_gpsr_oracle() {
  auto* nodes = &nodes_;
  proto::LocationService oracle =
      [nodes](net::Addr a) -> std::optional<net::Position> {
    std::uint32_t idx = net::index_for_addr(a);
    if (idx >= nodes->size()) return std::nullopt;
    return (*nodes)[idx]->position();
  };
  for (std::size_t i = 0; i < size(); ++i) {
    proto::register_gpsr(kit(i), oracle);
  }
}

baseline::MonolithicOlsr& SimWorld::olsrd(std::size_t i,
                                          baseline::OlsrdParams params) {
  auto& slot = daemons_.at(i * 2);
  if (slot == nullptr) {
    slot = std::make_unique<baseline::MonolithicOlsr>(*nodes_.at(i), params);
    slot->start();
  }
  auto* daemon = dynamic_cast<baseline::MonolithicOlsr*>(slot.get());
  MK_ASSERT(daemon != nullptr);
  return *daemon;
}

baseline::MonolithicDymo& SimWorld::dymoum(std::size_t i,
                                           baseline::DymoumParams params) {
  auto& slot = daemons_.at(i * 2 + 1);
  if (slot == nullptr) {
    slot = std::make_unique<baseline::MonolithicDymo>(*nodes_.at(i), params);
    slot->start();
  }
  auto* daemon = dynamic_cast<baseline::MonolithicDymo*>(slot.get());
  MK_ASSERT(daemon != nullptr);
  return *daemon;
}

bool SimWorld::fully_routed() const {
  for (const auto& a : nodes_) {
    for (const auto& b : nodes_) {
      if (a->addr() == b->addr()) continue;
      if (!a->kernel_table().lookup(b->addr()).has_value()) return false;
    }
  }
  return true;
}

std::optional<Duration> SimWorld::run_until_routed(Duration deadline,
                                                   Duration step) {
  TimePoint start = now();
  TimePoint limit = start + deadline;
  while (now() < limit) {
    if (fully_routed()) return now() - start;
    sched_.run_for(step);
  }
  return fully_routed() ? std::optional<Duration>(now() - start)
                        : std::nullopt;
}

bool SimWorld::has_route(std::size_t i, net::Addr dest) const {
  return nodes_.at(i)->kernel_table().lookup(dest).has_value();
}

fault::FaultInjector& SimWorld::apply_fault_plan(const fault::FaultPlan& plan,
                                                 std::uint64_t seed) {
  if (injector_ == nullptr) {
    fault::FaultInjector::NodeControl control;
    control.crash = [this](net::Addr a) {
      crash_node(net::index_for_addr(a));
    };
    control.restart = [this](net::Addr a) {
      restart_node(net::index_for_addr(a));
    };
    control.misbehave = [this](net::Addr a, const std::string& component,
                               fault::Misbehave mode) {
      supervision::Supervisor* sup =
          supervisors_.at(net::index_for_addr(a)).get();
      MK_ENSURE(sup != nullptr,
                "fault plan misbehaves a component on a node without a "
                "supervisor (call enable_supervision() before the action "
                "fires)");
      supervision::Misbehaviour mapped = supervision::Misbehaviour::kNone;
      switch (mode) {
        case fault::Misbehave::kNone:
          mapped = supervision::Misbehaviour::kNone;
          break;
        case fault::Misbehave::kThrow:
          mapped = supervision::Misbehaviour::kThrow;
          break;
        case fault::Misbehave::kStall:
          mapped = supervision::Misbehaviour::kStall;
          break;
        case fault::Misbehave::kCorrupt:
          mapped = supervision::Misbehaviour::kCorrupt;
          break;
      }
      sup->set_misbehaviour(component, mapped);
    };
    injector_ = std::make_unique<fault::FaultInjector>(
        medium_, sched_, std::move(control), seed);
    injector_->set_journal(journal_.get());
  }
  injector_->arm(plan);
  return *injector_;
}

void SimWorld::crash_node(std::size_t i) {
  core::Manetkit* k = kits_.at(i).get();
  if (replicate_ && k != nullptr) {
    // A real crash: the process dies with its S elements. Stop everything
    // (the replication CF too — a crashed node publishes nothing), wipe the
    // codec-capable state and the kernel routes, and forget the replicas
    // this node held for others.
    for (const std::string& name : k->deployed()) {
      core::ManetProtocolCf* p = k->protocol(name);
      if (p != nullptr && p->running()) p->stop();
    }
    for (const std::string& name : k->deployed()) {
      core::ManetProtocolCf* p = k->protocol(name);
      if (p == nullptr || p->state_component() == nullptr) continue;
      auto* codec = p->state_component()->interface_as<core::IStateCodec>(
          "IStateCodec");
      if (codec != nullptr) codec->reset_state();
    }
    nodes_.at(i)->kernel_table().clear();
    if (core::ManetProtocolCf* rp = k->protocol("replication")) {
      if (repl::ReplicationManager* mgr = repl::replication_state(*rp)) {
        mgr->on_crash_wipe();
      }
    }
  }
  nodes_.at(i)->device().set_up(false);
}

void SimWorld::restart_node(std::size_t i) {
  nodes_.at(i)->device().set_up(true);
  core::Manetkit* k = kits_.at(i).get();
  if (replicate_ && k != nullptr) {
    for (const std::string& name : k->deployed()) {
      core::ManetProtocolCf* p = k->protocol(name);
      if (p != nullptr && !p->running()) p->start();
    }
    // Under strategy none this returns false (the cold-start control arm);
    // otherwise the node broadcasts a solicit and peers unicast offers back.
    if (core::ReplicationControl* rc = k->replication()) {
      rc->request_rehydrate("");
    }
  }
}

void SimWorld::enable_replication(repl::ReplicationParams params) {
  if (replicate_) return;
  replicate_ = true;
  repl_params_ = params;
  for (auto& k : kits_) {
    if (k == nullptr) continue;
    repl::register_replication(*k, repl_params_);
    k->deploy("replication");
  }
}

void SimWorld::enable_supervision(supervision::SupervisorOptions opts) {
  if (supervise_) return;
  supervise_ = true;
  sup_opts_ = opts;
  // Timer-fire isolation: a plug-in exception escaping a timer callback is
  // journaled (pseudo-node 0xffffffff, unit unknown) and swallowed instead
  // of unwinding through the scheduler loop.
  sched_.set_fault_trap([this](std::exception_ptr ep) {
    MK_WARN("sup", "timer callback threw: ", oc::describe_exception(ep));
    if (journal_ != nullptr) {
      journal_->append(
          {obs::RecordKind::kComponentFault, 0xffffffffu, sched_.now().us, 0,
           static_cast<std::uint64_t>(obs::ComponentFaultReason::kTimer), 0});
    }
    return true;
  });
  for (std::size_t i = 0; i < kits_.size(); ++i) {
    if (kits_[i] != nullptr && supervisors_[i] == nullptr) {
      supervisors_[i] =
          std::make_unique<supervision::Supervisor>(*kits_[i], sup_opts_);
    }
  }
}

obs::Journal& SimWorld::enable_tracing(std::size_t capacity) {
  if (journal_ != nullptr) return *journal_;
  journal_ = std::make_unique<obs::Journal>(capacity);
  medium_.set_journal(journal_.get());
  if (injector_ != nullptr) injector_->set_journal(journal_.get());
  sched_.set_fire_hook([this](TimerId id, TimePoint at) {
    journal_->append({obs::RecordKind::kTimerFire, 0xffffffffu, at.us,
                      static_cast<std::uint64_t>(id), 0, 0});
  });
  for (auto& k : kits_) {
    if (k != nullptr) k->set_journal(journal_.get());
  }
  return *journal_;
}

obs::InvariantChecker& SimWorld::enable_invariants() {
  if (checker_ != nullptr) return *checker_;
  obs::Journal& journal = enable_tracing();

  auto table_of = [this](std::uint32_t node) -> const net::KernelRouteTable* {
    std::uint32_t idx = net::index_for_addr(node);
    return idx < nodes_.size() ? &nodes_[idx]->kernel_table() : nullptr;
  };
  obs::InvariantChecker::LookupFn lookup =
      [table_of](std::uint32_t node,
                 std::uint32_t dest) -> std::optional<obs::RouteView> {
    const auto* table = table_of(node);
    if (table == nullptr) return std::nullopt;
    auto e = table->lookup(dest);
    if (!e.has_value()) return std::nullopt;
    return obs::RouteView{e->dest, e->next_hop, e->metric};
  };
  obs::InvariantChecker::RoutesFn routes = [table_of](std::uint32_t node) {
    std::vector<obs::RouteView> out;
    const auto* table = table_of(node);
    if (table == nullptr) return out;
    for (const auto& e : table->entries()) {
      out.push_back(obs::RouteView{e.dest, e.next_hop, e.metric});
    }
    return out;
  };
  obs::InvariantChecker::LinkFn link = [this](std::uint32_t from,
                                              std::uint32_t to) {
    return medium_.has_link(from, to);
  };
  checker_ = std::make_unique<obs::InvariantChecker>(
      addrs(), std::move(lookup), std::move(routes), std::move(link));
  checker_->attach(journal);
  return *checker_;
}

}  // namespace mk::testbed
