#include "testbed/traffic.hpp"

#include "testbed/world.hpp"
#include "util/assert.hpp"

namespace mk::testbed {

CbrFlow::CbrFlow(net::SimNode& src, net::Addr dst, Duration interval,
                 std::uint16_t payload)
    : src_(src),
      dst_(dst),
      payload_(payload),
      timer_(src.scheduler(), interval,
             [this] {
               ++sent_;
               src_.forwarding().send(dst_, payload_);
             },
             /*jitter=*/0.0, /*seed=*/src.addr() + 31) {}

CbrFlow::~CbrFlow() { stop(); }

void CbrFlow::start() { timer_.start(); }
void CbrFlow::stop() { timer_.stop(); }

// ---------------------------------------------------------------- OnOffFlow

OnOffFlow::OnOffFlow(net::SimNode& src, net::Addr dst, Params params,
                     std::uint64_t seed)
    : sched_(src.scheduler()),
      flow_(src, dst, params.interval, params.payload),
      params_(params),
      rng_(seed),
      toggle_(src.scheduler()) {}

OnOffFlow::~OnOffFlow() { stop(); }

void OnOffFlow::start() {
  if (flow_.running() || toggle_.pending()) return;
  flow_.start();
  flips_.push_back({sched_.now(), true});
  arm_next();
}

void OnOffFlow::stop() {
  toggle_.cancel();
  flow_.stop();
}

Duration OnOffFlow::draw(Duration mean) {
  if (params_.deterministic) return mean;
  const double us = rng_.exponential(static_cast<double>(mean.count()));
  // Clamp to >= 1us so a tiny draw can't re-arm the toggle at "now" forever.
  return Duration{us < 1.0 ? 1 : static_cast<std::int64_t>(us)};
}

void OnOffFlow::arm_next() {
  const bool ending_on = flow_.running();
  toggle_.schedule(draw(ending_on ? params_.mean_on : params_.mean_off),
                   [this] {
                     if (flow_.running()) {
                       flow_.stop();
                     } else {
                       flow_.start();
                     }
                     flips_.push_back({sched_.now(), flow_.running()});
                     arm_next();
                   });
}

// ------------------------------------------------------------- DeliverySink

DeliverySink::DeliverySink(net::SimNode& node) : node_(node) {
  node_.set_delivery_callback([this](const net::SimNode::Delivery& d) {
    const double ms = to_ms(d.at - d.hdr.sent_at);
    ++received_;
    latencies_.add(ms);
    auto& per = per_source_[d.hdr.src];
    ++per.received;
    per.latencies_ms.add(ms);
  });
}

DeliverySink::~DeliverySink() { node_.set_delivery_callback(nullptr); }

const DeliverySink::PerSource& DeliverySink::from(net::Addr src) const {
  static const PerSource kEmpty{};
  auto it = per_source_.find(src);
  return it == per_source_.end() ? kEmpty : it->second;
}

// ------------------------------------------------------------ TrafficMatrix

TrafficMatrix::TrafficMatrix(SimWorld& world, std::vector<FlowSpec> flows,
                             std::uint64_t seed)
    : world_(world), specs_(std::move(flows)) {
  cbr_.resize(specs_.size());
  onoff_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FlowSpec& f = specs_[i];
    MK_ASSERT(f.src != f.dst);
    net::SimNode& src = world_.node(f.src);
    const net::Addr dst = world_.addr(f.dst);
    if (f.on_off) {
      OnOffFlow::Params p = f.on_off_params;
      p.interval = f.interval;
      p.payload = f.payload;
      onoff_[i] = std::make_unique<OnOffFlow>(src, dst, p,
                                              seed ^ static_cast<std::uint64_t>(i));
    } else {
      cbr_[i] = std::make_unique<CbrFlow>(src, dst, f.interval, f.payload);
    }
    if (sinks_.find(f.dst) == sinks_.end()) {
      sinks_.emplace(f.dst, std::make_unique<DeliverySink>(world_.node(f.dst)));
    }
  }
}

TrafficMatrix::~TrafficMatrix() { stop(); }

void TrafficMatrix::start() {
  for (auto& f : cbr_) {
    if (f) f->start();
  }
  for (auto& f : onoff_) {
    if (f) f->start();
  }
}

void TrafficMatrix::stop() {
  for (auto& f : cbr_) {
    if (f) f->stop();
  }
  for (auto& f : onoff_) {
    if (f) f->stop();
  }
}

std::uint64_t TrafficMatrix::flow_sent(std::size_t i) const {
  return cbr_[i] ? cbr_[i]->sent() : onoff_[i]->sent();
}

const DeliverySink::PerSource& TrafficMatrix::flow_deliveries(
    std::size_t i) const {
  const FlowSpec& f = specs_[i];
  return sinks_.at(f.dst)->from(net::addr_for_index(f.src));
}

FlowStats TrafficMatrix::flow_stats(std::size_t i) const {
  const FlowSpec& f = specs_.at(i);
  const auto& per = flow_deliveries(i);
  FlowStats out;
  out.src = f.src;
  out.dst = f.dst;
  out.sent = flow_sent(i);
  out.received = per.received;
  out.pdr = out.sent == 0
                ? 0.0
                : static_cast<double>(out.received) / static_cast<double>(out.sent);
  if (per.received > 0) {
    out.latency_mean_ms = per.latencies_ms.mean();
    out.latency_p50_ms = per.latencies_ms.quantile(0.50);
    out.latency_p99_ms = per.latencies_ms.quantile(0.99);
    out.latency_max_ms = per.latencies_ms.max();
  }
  return out;
}

std::vector<FlowStats> TrafficMatrix::all_flow_stats() const {
  std::vector<FlowStats> out;
  out.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) out.push_back(flow_stats(i));
  return out;
}

std::uint64_t TrafficMatrix::total_sent() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) n += flow_sent(i);
  return n;
}

std::uint64_t TrafficMatrix::total_received() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    n += flow_deliveries(i).received;
  }
  return n;
}

Samples TrafficMatrix::merged_latencies_ms() const {
  Samples out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (double ms : flow_deliveries(i).latencies_ms.values()) out.add(ms);
  }
  return out;
}

bool TrafficMatrix::all_flows_routed() const {
  for (const FlowSpec& f : specs_) {
    if (!world_.has_route(f.src, net::addr_for_index(f.dst))) return false;
  }
  return true;
}

}  // namespace mk::testbed
