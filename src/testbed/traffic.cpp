#include "testbed/traffic.hpp"

namespace mk::testbed {

CbrFlow::CbrFlow(net::SimNode& src, net::Addr dst, Duration interval,
                 std::uint16_t payload)
    : src_(src),
      dst_(dst),
      payload_(payload),
      timer_(src.scheduler(), interval,
             [this] {
               ++sent_;
               src_.forwarding().send(dst_, payload_);
             },
             /*jitter=*/0.0, /*seed=*/src.addr() + 31) {}

CbrFlow::~CbrFlow() { stop(); }

void CbrFlow::start() { timer_.start(); }
void CbrFlow::stop() { timer_.stop(); }

DeliverySink::DeliverySink(net::SimNode& node) : node_(node) {
  node_.set_delivery_callback([this](const net::SimNode::Delivery& d) {
    ++received_;
    latencies_.add(to_ms(d.at - d.hdr.sent_at));
  });
}

DeliverySink::~DeliverySink() { node_.set_delivery_callback(nullptr); }

}  // namespace mk::testbed
