// Application traffic generation + delivery statistics (PDR, latency),
// used by examples, the ablation benches and the scenario matrix.
//
// Three generator layers:
//  * CbrFlow     — constant-bit-rate unicast flow (one packet per interval).
//  * OnOffFlow   — a CbrFlow gated by an on-off process (exponential or
//                  deterministic period draws from an explicit seed), the
//                  classic bursty-source model of the ns-3 comparisons.
//  * TrafficMatrix — a set of flows over a SimWorld with per-flow
//                  sent/received/latency accounting through DeliverySink's
//                  per-source demux.
//
// All latency figures are *simulated* time (DataHeader::sent_at is stamped
// from the scheduler at origination and compared against the scheduler at
// delivery), so clock-drift fault plans shift latencies deterministically
// and two same-seed runs report bit-identical statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/node.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace mk::testbed {

class SimWorld;

/// Constant-bit-rate flow from one node to a destination address.
class CbrFlow {
 public:
  CbrFlow(net::SimNode& src, net::Addr dst, Duration interval,
          std::uint16_t payload = 512);
  ~CbrFlow();

  void start();
  void stop();
  bool running() const { return timer_.running(); }

  net::Addr src() const { return src_.addr(); }
  net::Addr dst() const { return dst_; }
  std::uint64_t sent() const { return sent_; }

 private:
  net::SimNode& src_;
  net::Addr dst_;
  std::uint16_t payload_;
  std::uint64_t sent_ = 0;
  PeriodicTimer timer_;
};

/// On-off gating over a CbrFlow: the source alternates between an ON period
/// (packets at the CBR interval) and a silent OFF period. Period lengths are
/// drawn per transition from the flow's own seeded Rng — exponential with
/// the configured means (default), or exactly the means in deterministic
/// mode — so one seed fully determines the burst schedule independently of
/// everything else in the world.
class OnOffFlow {
 public:
  struct Params {
    Duration interval = msec(100);  // packet spacing while ON
    std::uint16_t payload = 512;
    Duration mean_on = sec(1);
    Duration mean_off = sec(1);
    bool deterministic = false;  // true: periods are exactly the means
  };

  OnOffFlow(net::SimNode& src, net::Addr dst, Params params,
            std::uint64_t seed);
  ~OnOffFlow();

  /// Starts in the ON state; the first OFF transition is one draw away.
  void start();
  void stop();

  net::Addr src() const { return flow_.src(); }
  net::Addr dst() const { return flow_.dst(); }
  std::uint64_t sent() const { return flow_.sent(); }
  bool on() const { return flow_.running(); }

  /// Every ON/OFF transition so far: (sim time, entered-ON?). The schedule
  /// is the determinism witness for the mobility-model tests.
  struct Flip {
    TimePoint at{};
    bool on = false;
  };
  const std::vector<Flip>& flips() const { return flips_; }

 private:
  void arm_next();
  Duration draw(Duration mean);

  Scheduler& sched_;
  CbrFlow flow_;
  Params params_;
  Rng rng_;
  OneShotTimer toggle_;
  std::vector<Flip> flips_;
};

/// Aggregates deliveries at a destination node: packet delivery ratio and
/// end-to-end latency, in aggregate and demuxed per source address (so a
/// TrafficMatrix can attribute deliveries at a shared destination back to
/// individual flows).
class DeliverySink {
 public:
  explicit DeliverySink(net::SimNode& node);
  ~DeliverySink();

  std::uint64_t received() const { return received_; }
  const Samples& latencies_ms() const { return latencies_; }

  struct PerSource {
    std::uint64_t received = 0;
    Samples latencies_ms;
  };
  /// Stats for packets whose DataHeader::src is `src` (empty stats when the
  /// source never delivered here).
  const PerSource& from(net::Addr src) const;

 private:
  net::SimNode& node_;
  std::uint64_t received_ = 0;
  Samples latencies_;
  std::map<net::Addr, PerSource> per_source_;
};

/// One flow of a TrafficMatrix: src/dst are testbed node indices.
struct FlowSpec {
  std::size_t src = 0;
  std::size_t dst = 0;
  Duration interval = msec(100);
  std::uint16_t payload = 512;
  bool on_off = false;                  // false: plain CBR
  OnOffFlow::Params on_off_params{};    // interval/payload fields ignored
};

/// Snapshot of one flow's end-to-end outcome.
struct FlowStats {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double pdr = 0.0;             // received / sent (0 when nothing sent)
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Multi-flow traffic over a SimWorld: owns the generators and one
/// DeliverySink per distinct destination node, and reports per-flow and
/// aggregate statistics. Two flows sharing the same (src, dst) pair would
/// alias in the per-source demux; the scenario builders never emit that.
class TrafficMatrix {
 public:
  /// `seed` derives each on-off flow's schedule seed (seed ^ flow index),
  /// keeping burst schedules independent of deployment order.
  TrafficMatrix(SimWorld& world, std::vector<FlowSpec> flows,
                std::uint64_t seed);
  ~TrafficMatrix();

  void start();
  void stop();

  std::size_t size() const { return specs_.size(); }
  const FlowSpec& spec(std::size_t i) const { return specs_.at(i); }

  FlowStats flow_stats(std::size_t i) const;
  std::vector<FlowStats> all_flow_stats() const;

  std::uint64_t total_sent() const;
  std::uint64_t total_received() const;
  /// Merged latency samples across every flow (built per call).
  Samples merged_latencies_ms() const;

  /// True when every flow's source currently holds a kernel route to its
  /// destination (the scenario runner's convergence probe).
  bool all_flows_routed() const;

 private:
  std::uint64_t flow_sent(std::size_t i) const;
  const DeliverySink::PerSource& flow_deliveries(std::size_t i) const;

  SimWorld& world_;
  std::vector<FlowSpec> specs_;
  std::vector<std::unique_ptr<CbrFlow>> cbr_;      // slot per flow (or null)
  std::vector<std::unique_ptr<OnOffFlow>> onoff_;  // slot per flow (or null)
  std::map<std::size_t, std::unique_ptr<DeliverySink>> sinks_;  // by dst node
};

}  // namespace mk::testbed
