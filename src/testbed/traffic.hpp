// Application traffic generation + delivery statistics (PDR, latency),
// used by examples and the ablation benches.
#pragma once

#include <memory>
#include <vector>

#include "net/node.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace mk::testbed {

/// Constant-bit-rate flow from one node to a destination address.
class CbrFlow {
 public:
  CbrFlow(net::SimNode& src, net::Addr dst, Duration interval,
          std::uint16_t payload = 512);
  ~CbrFlow();

  void start();
  void stop();

  std::uint64_t sent() const { return sent_; }

 private:
  net::SimNode& src_;
  net::Addr dst_;
  std::uint16_t payload_;
  std::uint64_t sent_ = 0;
  PeriodicTimer timer_;
};

/// Aggregates deliveries at a destination node: packet delivery ratio and
/// end-to-end latency.
class DeliverySink {
 public:
  explicit DeliverySink(net::SimNode& node);
  ~DeliverySink();

  std::uint64_t received() const { return received_; }
  const Samples& latencies_ms() const { return latencies_; }

 private:
  net::SimNode& node_;
  std::uint64_t received_ = 0;
  Samples latencies_;
};

}  // namespace mk::testbed
