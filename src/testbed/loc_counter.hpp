// Lines-of-code accounting for the Table 3 / Fig. 7 reproduction: maps each
// MANETKit component to its source files, counts non-blank non-comment
// lines, and classifies components as reused-generic vs protocol-specific
// per protocol.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace mk::testbed {

struct ComponentLoc {
  std::string name;                  // e.g. "System CF Forward"
  std::vector<std::string> files;    // repo-relative paths
  bool generic = false;              // reused across protocols?
  std::set<std::string> used_by;     // {"OLSR", "DYMO", ...}
  std::size_t loc = 0;               // filled by count_manifest()
};

/// Counts non-blank, non-comment (// and /*...*/) lines of a C++ file.
/// Returns 0 for unreadable files.
std::size_t count_loc(const std::string& path);

/// The component manifest for this repository (paths relative to repo root).
std::vector<ComponentLoc> manifest();

/// Fills in `loc` for each entry, resolving paths against `repo_root`.
void count_manifest(std::vector<ComponentLoc>& entries,
                    const std::string& repo_root);

/// Locates the repository root by walking up from `start` until a directory
/// containing DESIGN.md is found; falls back to `start`.
std::string find_repo_root(std::string start = ".");

struct ReuseSummary {
  std::size_t reused_components = 0;
  std::size_t specific_components = 0;
  std::size_t reused_loc = 0;
  std::size_t specific_loc = 0;

  double reused_fraction() const {
    std::size_t total = reused_loc + specific_loc;
    return total == 0 ? 0.0
                      : static_cast<double>(reused_loc) /
                            static_cast<double>(total);
  }
};

/// Per-protocol totals (Fig. 7's two bars per protocol).
ReuseSummary summarize(const std::vector<ComponentLoc>& entries,
                       const std::string& protocol);

}  // namespace mk::testbed
