// Scenario harness: N simulated nodes on one medium, with per-node MANETKit
// stacks (lazily created) and/or monolithic baseline daemons. Reproduces the
// paper's testbed: 5 nodes, linear emulated topology, identical protocol
// parameters across framework and monolithic implementations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/dymoum.hpp"
#include "baselines/olsrd.hpp"
#include "core/manetkit.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "obs/invariants.hpp"
#include "obs/journal.hpp"
#include "replication/replication.hpp"
#include "supervision/supervisor.hpp"
#include "util/scheduler.hpp"

namespace mk::testbed {

class SimWorld {
 public:
  /// `backend` selects the scheduler's timer store (hierarchical wheel by
  /// default; binary heap kept for digest-parity conformance runs).
  explicit SimWorld(std::size_t num_nodes, std::uint64_t seed = 42,
                    SimBackend backend = SimBackend::kWheel);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  SimScheduler& scheduler() { return sched_; }
  net::SimMedium& medium() { return medium_; }

  std::size_t size() const { return nodes_.size(); }
  net::SimNode& node(std::size_t i) { return *nodes_.at(i); }
  net::Addr addr(std::size_t i) const { return net::addr_for_index(i); }
  std::vector<net::Addr> addrs() const;

  // -- topology ---------------------------------------------------------------
  void linear() { net::topo::linear(medium_, addrs()); }
  void ring() { net::topo::ring(medium_, addrs()); }
  void grid(std::size_t cols) { net::topo::grid(medium_, addrs(), cols); }
  void full_mesh() { net::topo::full_mesh(medium_, addrs()); }

  // -- mobility ----------------------------------------------------------------
  /// Places every node under RandomWaypoint (resp. Gauss–Markov) mobility and
  /// applies range links (spatial-hash grid by default;
  /// TopologyBackend::kReference selects the O(n²) conformance oracle — same
  /// seed digests bit-identically either way). One model per world;
  /// subsequent calls return the first (whatever its type — mixing overloads
  /// after the first call is a caller bug, asserted in the .cpp).
  net::MobilityModel& enable_mobility(
      net::RandomWaypoint::Params params, std::uint64_t seed = 7,
      net::topo::TopologyBackend backend = net::topo::TopologyBackend::kGrid);
  net::MobilityModel& enable_mobility(
      net::GaussMarkov::Params params, std::uint64_t seed = 7,
      net::topo::TopologyBackend backend = net::topo::TopologyBackend::kGrid);
  net::MobilityModel* mobility() { return mobility_.get(); }

  /// Advances mobility by dt (updating links), then runs dt of sim events.
  void step_mobility(Duration dt);

  // -- time --------------------------------------------------------------------
  void run_for(Duration d) { sched_.run_for(d); }
  void run_until(TimePoint t) { sched_.run_until(t); }
  TimePoint now() const { return sched_.now(); }

  // -- MANETKit stacks ------------------------------------------------------------
  /// Lazily creates the node's MANETKit instance (with every built-in
  /// protocol builder registered).
  core::Manetkit& kit(std::size_t i);
  bool has_kit(std::size_t i) const { return kits_.at(i) != nullptr; }

  /// Deploys a protocol on every node.
  void deploy_all(const std::string& proto);

  /// Registers the "gpsr" builder on every kit with an oracle location
  /// service backed by the true simulated positions (the standard GPSR
  /// evaluation assumption; see DESIGN.md substitutions).
  void register_gpsr_oracle();

  // -- baselines -----------------------------------------------------------------
  baseline::MonolithicOlsr& olsrd(std::size_t i,
                                  baseline::OlsrdParams params = {});
  baseline::MonolithicDymo& dymoum(std::size_t i,
                                   baseline::DymoumParams params = {});

  // -- convergence helpers -----------------------------------------------------------
  /// True when every node holds a kernel route to every other node.
  bool fully_routed() const;

  /// Runs in `step` increments until fully_routed() or `deadline` sim time;
  /// returns the sim time consumed, or nullopt on timeout.
  std::optional<Duration> run_until_routed(Duration deadline,
                                           Duration step = msec(10));

  /// True when node i holds a valid kernel route to `dest`.
  bool has_route(std::size_t i, net::Addr dest) const;

  // -- fault injection ----------------------------------------------------------
  /// Arms a deterministic fault plan against this world (times relative to
  /// now()): schedules every action, installs the medium's per-delivery
  /// fault filter, and binds crash/restart to the nodes' devices. The
  /// injector draws from its own Rng seeded with `seed`, so (world seed,
  /// plan, fault seed) fully determines the run. Callable repeatedly to
  /// layer plans; all share one injector (and the first call's seed).
  fault::FaultInjector& apply_fault_plan(const fault::FaultPlan& plan,
                                         std::uint64_t seed = 1);
  fault::FaultInjector* injector() { return injector_.get(); }

  /// Crash/restart, exposed for direct scripting in tests (fault-plan
  /// crash/restart actions land here too). Without enable_replication this
  /// is the historical radio-off/on model (protocol state survives in RAM).
  /// With replication enabled the crash is a *real* one: every deployed
  /// protocol on the node (including the replication CF) stops, codec-capable
  /// S elements are wiped, the kernel table is cleared and the device goes
  /// down; restart brings the device up, starts the protocols and solicits
  /// peer replicas (a no-op rehydrate under strategy none, so none/checkpoint
  /// comparisons share one crash model).
  void crash_node(std::size_t i);
  void restart_node(std::size_t i);

  // -- replication (ISSUE 10) -----------------------------------------------------
  /// Deploys the "replication" CF on every MANETKit stack (including kits
  /// created after this call) and switches fault-plan crash/restart to the
  /// cold-start crash model above. Idempotent; params fixed by the first call.
  void enable_replication(repl::ReplicationParams params = {});
  bool replication_enabled() const { return replicate_; }
  /// The node's replication control surface (null before enablement).
  core::ReplicationControl* replication(std::size_t i) {
    return kits_.at(i) == nullptr ? nullptr : kits_.at(i)->replication();
  }

  // -- supervision ---------------------------------------------------------------
  /// Installs a Supervisor on every MANETKit stack (including kits created
  /// after this call): dispatch-boundary fault isolation, the deterministic
  /// watchdog, circuit-breaker quarantine and the recovery ladder. Also wraps
  /// the scheduler's timer-fire path so plug-in timer exceptions are
  /// journaled (kComponentFault / kTimer) instead of tearing down the run,
  /// and lets fault plans carry `misbehave` actions. Idempotent; options are
  /// fixed by the first call.
  void enable_supervision(supervision::SupervisorOptions opts = {});
  bool supervision_enabled() const { return supervise_; }
  /// The node's supervisor (null before enable_supervision / kit creation).
  supervision::Supervisor* supervisor(std::size_t i) {
    return supervisors_.at(i).get();
  }

  // -- observability ------------------------------------------------------------
  /// Turns on whole-world tracing: one shared journal receives records from
  /// the medium (frame tx/rx/drop, link transitions), the scheduler (timer
  /// fires, attributed to the pseudo-node 0xffffffff) and every MANETKit
  /// stack — including kits created after this call. Idempotent.
  obs::Journal& enable_tracing(std::size_t capacity = obs::Journal::kDefaultCapacity);
  obs::Journal* journal() { return journal_.get(); }

  /// Turns on continuous routing-invariant checking over the trace stream
  /// (requires/implies enable_tracing). The checker walks next-hop chains on
  /// every route install and validates next hops against the medium's true
  /// adjacency. Idempotent.
  obs::InvariantChecker& enable_invariants();
  obs::InvariantChecker* checker() { return checker_.get(); }

 private:
  SimScheduler sched_;
  net::SimMedium medium_;
  std::vector<std::unique_ptr<net::SimNode>> nodes_;
  std::vector<std::unique_ptr<core::Manetkit>> kits_;
  // Declared after kits_ so each Supervisor outlives nothing it references
  // (destroyed first; ~SimWorld also clears explicitly for clarity).
  std::vector<std::unique_ptr<supervision::Supervisor>> supervisors_;
  bool supervise_ = false;
  supervision::SupervisorOptions sup_opts_{};
  bool replicate_ = false;
  repl::ReplicationParams repl_params_{};
  std::vector<std::unique_ptr<baseline::RoutingDaemon>> daemons_;
  /// Node pointers in index order (the mobility ctors' node set).
  std::vector<net::SimNode*> node_ptrs() const;

  std::unique_ptr<net::MobilityModel> mobility_;
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<obs::InvariantChecker> checker_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

}  // namespace mk::testbed
