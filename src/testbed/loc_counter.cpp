#include "testbed/loc_counter.hpp"

#include <filesystem>
#include <fstream>

namespace mk::testbed {

namespace fs = std::filesystem;

std::size_t count_loc(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t loc = 0;
  bool in_block_comment = false;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    std::string_view body{line.data() + i, line.size() - i};
    if (in_block_comment) {
      auto end = body.find("*/");
      if (end == std::string_view::npos) continue;
      in_block_comment = false;
      body.remove_prefix(end + 2);
      if (body.find_first_not_of(" \t") == std::string_view::npos) continue;
    }
    if (body.starts_with("//")) continue;
    if (body.starts_with("/*")) {
      if (body.find("*/", 2) == std::string_view::npos) in_block_comment = true;
      continue;
    }
    ++loc;
  }
  return loc;
}

std::string find_repo_root(std::string start) {
  fs::path p = fs::absolute(start);
  for (int depth = 0; depth < 10; ++depth) {
    if (fs::exists(p / "DESIGN.md") && fs::exists(p / "src")) {
      return p.string();
    }
    if (!p.has_parent_path() || p.parent_path() == p) break;
    p = p.parent_path();
  }
  return fs::absolute(start).string();
}

std::vector<ComponentLoc> manifest() {
  auto G = [](std::string name, std::vector<std::string> files,
              std::set<std::string> used_by) {
    return ComponentLoc{std::move(name), std::move(files), true,
                        std::move(used_by), 0};
  };
  auto S = [](std::string name, std::vector<std::string> files,
              std::set<std::string> used_by) {
    return ComponentLoc{std::move(name), std::move(files), false,
                        std::move(used_by), 0};
  };
  const std::set<std::string> all = {"OLSR", "DYMO", "AODV"};
  const std::set<std::string> od = {"OLSR", "DYMO"};

  return {
      // ---- reused generic components (Table 3's left column) ----
      G("System CF Forward",
        {"src/core/system_cf.hpp", "src/core/system_cf.cpp"}, all),
      G("System CF State", {"src/net/kernel_table.hpp",
                            "src/net/kernel_table.cpp"}, all),
      G("Netlink (+ kernel module)",
        {"src/net/forwarding.hpp", "src/net/forwarding.cpp"}, {"DYMO", "AODV"}),
      G("Queue", {"src/util/queue.hpp"}, all),
      G("Threadpool", {"src/util/threadpool.hpp", "src/util/threadpool.cpp",
                       "src/core/executor.hpp", "src/core/executor.cpp"},
        all),
      G("Timer", {"src/util/timer.hpp", "src/util/timer.cpp"}, all),
      G("PacketGenerator/PacketParser",
        {"src/packetbb/packetbb.hpp", "src/packetbb/packetbb.cpp"}, all),
      G("RouteTable",
        {"src/protocols/olsr/route_calculator.hpp",
         "src/protocols/olsr/route_calculator.cpp"},
        {"OLSR"}),
      G("ManetControl CF",
        {"src/core/manet_protocol.hpp", "src/core/manet_protocol.cpp",
         "src/core/cfs.hpp"},
        all),
      G("NeighbourDetection CF",
        {"src/protocols/neighbor/neighbor_state.hpp",
         "src/protocols/neighbor/neighbor_state.cpp",
         "src/protocols/neighbor/neighbor_cf.hpp",
         "src/protocols/neighbor/neighbor_cf.cpp",
         "src/protocols/hello_codec.hpp"},
        {"DYMO", "AODV"}),
      G("MPRCalculator",
        {"src/protocols/mpr/mpr_calculator.hpp",
         "src/protocols/mpr/mpr_calculator.cpp"},
        {"OLSR", "DYMO"}),
      G("MPRState", {"src/protocols/mpr/mpr_state.hpp",
                     "src/protocols/mpr/mpr_state.cpp"},
        {"OLSR", "DYMO"}),
      G("Configurator (Framework Manager)",
        {"src/core/framework_manager.hpp", "src/core/framework_manager.cpp",
         "src/core/manetkit.hpp", "src/core/manetkit.cpp"},
        all),
      G("Event ontology", {"src/events/event.hpp", "src/events/event.cpp"},
        all),

      // ---- protocol-specific components ----
      S("OLSR TC Handler/Generator + State",
        {"src/protocols/olsr/olsr_cf.hpp", "src/protocols/olsr/olsr_cf.cpp",
         "src/protocols/olsr/olsr_state.hpp",
         "src/protocols/olsr/olsr_state.cpp"},
        {"OLSR"}),
      S("OLSR MPR Hello handling",
        {"src/protocols/mpr/mpr_handlers.hpp",
         "src/protocols/mpr/mpr_handlers.cpp",
         "src/protocols/mpr/mpr_cf.hpp", "src/protocols/mpr/mpr_cf.cpp"},
        {"OLSR"}),
      S("OLSR variants (fish-eye, power-aware)",
        {"src/protocols/olsr/fisheye.hpp", "src/protocols/olsr/fisheye.cpp",
         "src/protocols/olsr/power_aware.hpp",
         "src/protocols/olsr/power_aware.cpp"},
        {"OLSR"}),
      S("DYMO RE/RERR handlers + State",
        {"src/protocols/dymo/dymo_cf.hpp", "src/protocols/dymo/dymo_cf.cpp",
         "src/protocols/dymo/dymo_state.hpp",
         "src/protocols/dymo/dymo_state.cpp"},
        {"DYMO"}),
      S("DYMO variants (multipath, optimised flooding)",
        {"src/protocols/dymo/multipath.hpp",
         "src/protocols/dymo/multipath.cpp",
         "src/protocols/dymo/opt_flood.hpp",
         "src/protocols/dymo/opt_flood.cpp"},
        {"DYMO"}),
      S("AODV handlers + State",
        {"src/protocols/aodv/aodv_cf.hpp", "src/protocols/aodv/aodv_cf.cpp",
         "src/protocols/aodv/aodv_state.hpp",
         "src/protocols/aodv/aodv_state.cpp"},
        {"AODV"}),
  };
}

void count_manifest(std::vector<ComponentLoc>& entries,
                    const std::string& repo_root) {
  for (auto& e : entries) {
    e.loc = 0;
    for (const auto& f : e.files) {
      e.loc += count_loc((fs::path(repo_root) / f).string());
    }
  }
}

ReuseSummary summarize(const std::vector<ComponentLoc>& entries,
                       const std::string& protocol) {
  ReuseSummary s;
  for (const auto& e : entries) {
    if (e.used_by.count(protocol) == 0) continue;
    if (e.generic) {
      ++s.reused_components;
      s.reused_loc += e.loc;
    } else {
      ++s.specific_components;
      s.specific_loc += e.loc;
    }
  }
  return s;
}

}  // namespace mk::testbed
