// Scenario-matrix harness: the reproducible protocol shoot-out.
//
// A CellSpec names one point in the evaluation matrix — {protocol, node
// count, mobility model, traffic load, fault plan, seed} — and run_cell()
// executes it as a fully deterministic simulation: every random draw
// (placement, mobility, on-off schedules, fault outcomes) descends from the
// cell seed, so two runs of the same spec produce bit-identical journals.
// The CellResult carries the metrics the paper's evaluation compares across
// protocols (delivery ratio, end-to-end latency percentiles, control
// overhead, route-convergence time) plus the evidence that makes the number
// trustworthy: the journal digest pair and the invariant-violation count.
//
// bench/scenario_matrix.cpp sweeps the full matrix into BENCH_scenarios.json;
// tests/test_scenario_matrix.cpp pins a small tier-1 slice.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "obs/journal.hpp"
#include "testbed/traffic.hpp"
#include "util/scheduler.hpp"

namespace mk::testbed::scenario {

/// One cell of the evaluation matrix. Everything influencing the run is in
/// here (plus nothing else), so the spec doubles as the cell's identity.
struct CellSpec {
  std::string protocol = "olsr";  // olsr | dymo | aodv | zrp | gpsr
  std::size_t nodes = 50;
  std::string mobility = "random_waypoint";  // random_waypoint | gauss_markov
  net::topo::TopologyBackend backend = net::topo::TopologyBackend::kGrid;

  // Field + motion (kept gentle by default: a 50-node fleet at 250m range
  // in 1000x1000m stays connected enough for meaningful PDR comparisons).
  double width = 1000.0;
  double height = 1000.0;
  double range = 250.0;
  double max_speed = 4.0;  // RWP max (min 1); GM mean_speed = max_speed / 2

  // Traffic: `flows` unicast flows, src i -> (i + nodes/2) % nodes.
  std::size_t flows = 10;
  Duration interval = msec(200);
  std::uint16_t payload = 256;
  bool on_off = false;          // gate each flow with an on-off process
  Duration mean_on = sec(2);
  Duration mean_off = sec(1);

  /// FaultPlan text (see fault/plan.hpp), armed right after warmup; empty =
  /// fault-free cell. Label is carried separately for reporting.
  std::string fault_label = "none";
  std::string fault_plan;

  Duration warmup = sec(5);    // protocol boot + first mobility settling
  Duration duration = sec(30); // measured traffic window
  Duration drain = sec(1);     // post-stop window for in-flight deliveries
  Duration step = msec(100);   // mobility step cadence

  std::uint64_t seed = 1234;
};

/// Stable one-line identity for reports and JSON keys:
///   <proto>/n<nodes>/<mobility>/<cbr|onoff>/<fault>/s<seed>
std::string cell_key(const CellSpec& spec);

/// Outcome of one cell run.
struct CellResult {
  std::string key;

  // Delivery.
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double pdr = 0.0;

  // End-to-end latency over delivered packets, ms (0 when nothing arrived).
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  // Control overhead across the whole run (boot included — the proactive
  // protocols' standing cost is part of the comparison).
  std::uint64_t control_frames = 0;
  std::uint64_t control_bytes = 0;
  double control_bytes_per_delivery = 0.0;  // control_bytes / max(1, received)

  /// Sim time from traffic start until every flow's source first held a
  /// kernel route to its destination (checked once per mobility step;
  /// negative = never converged inside the window). Per-flow on purpose:
  /// reactive protocols only acquire the routes traffic asks for.
  double convergence_ms = -1.0;

  std::uint64_t invariant_violations = 0;
  obs::Journal::DigestSnapshot digest;  // over the cell's entire record stream

  std::vector<FlowStats> flows;
};

/// Runs one cell start-to-finish in a fresh SimWorld. Deterministic in the
/// spec: same CellSpec -> identical CellResult including digest.ordered.
CellResult run_cell(const CellSpec& spec);

/// Cartesian sweep helper used by the bench driver and the conformance
/// tests: every combination of the given axes over `base` (axes with one
/// entry pin that dimension).
std::vector<CellSpec> expand_matrix(const CellSpec& base,
                                    const std::vector<std::string>& protocols,
                                    const std::vector<std::string>& mobilities,
                                    const std::vector<bool>& on_off_loads,
                                    const std::vector<std::pair<std::string, std::string>>& fault_plans,
                                    const std::vector<std::uint64_t>& seeds);

}  // namespace mk::testbed::scenario
