#include "testbed/scenario/scenario.hpp"

#include <sstream>

#include "fault/plan.hpp"
#include "testbed/world.hpp"
#include "util/assert.hpp"

namespace mk::testbed::scenario {

namespace {

// Seed-derivation salts: each stochastic subsystem of a cell draws from its
// own stream so adding one never perturbs the others.
constexpr std::uint64_t kMobilitySalt = 0x6d0b111711ull;
constexpr std::uint64_t kFaultSalt = 0xfa0175eedull;
constexpr std::uint64_t kTrafficSalt = 0x0f10f10f1ull;

std::vector<FlowSpec> build_flows(const CellSpec& spec) {
  MK_ENSURE(spec.nodes >= 2, "scenario cell needs at least two nodes");
  std::vector<FlowSpec> flows;
  flows.reserve(spec.flows);
  // Deterministic antipodal pattern: flow i runs i -> i + n/2 (mod n), so
  // flows cross the field and no (src, dst) pair repeats for flows < nodes.
  for (std::size_t i = 0; i < spec.flows; ++i) {
    FlowSpec f;
    f.src = i % spec.nodes;
    f.dst = (i + spec.nodes / 2) % spec.nodes;
    if (f.dst == f.src) f.dst = (f.dst + 1) % spec.nodes;
    f.interval = spec.interval;
    f.payload = spec.payload;
    f.on_off = spec.on_off;
    f.on_off_params.mean_on = spec.mean_on;
    f.on_off_params.mean_off = spec.mean_off;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace

std::string cell_key(const CellSpec& spec) {
  std::ostringstream out;
  out << spec.protocol << "/n" << spec.nodes << '/' << spec.mobility << '/'
      << (spec.on_off ? "onoff" : "cbr") << '/' << spec.fault_label << "/s"
      << spec.seed;
  return out.str();
}

CellResult run_cell(const CellSpec& spec) {
  SimWorld world(spec.nodes, spec.seed);
  obs::Journal& journal = world.enable_tracing();
  obs::InvariantChecker& checker = world.enable_invariants();

  if (spec.mobility == "gauss_markov") {
    net::GaussMarkov::Params p;
    p.width = spec.width;
    p.height = spec.height;
    p.range = spec.range;
    p.mean_speed = spec.max_speed / 2.0;
    p.speed_sigma = spec.max_speed / 8.0;
    world.enable_mobility(p, spec.seed ^ kMobilitySalt, spec.backend);
  } else {
    MK_ENSURE(spec.mobility == "random_waypoint",
              "unknown mobility model (want random_waypoint | gauss_markov)");
    net::RandomWaypoint::Params p;
    p.width = spec.width;
    p.height = spec.height;
    p.range = spec.range;
    p.max_speed = spec.max_speed;
    world.enable_mobility(p, spec.seed ^ kMobilitySalt, spec.backend);
  }

  if (spec.protocol == "gpsr") world.register_gpsr_oracle();
  world.deploy_all(spec.protocol);

  // Warmup: protocols boot and the fleet starts moving before measurement.
  for (Duration t{0}; t < spec.warmup; t += spec.step) {
    world.step_mobility(spec.step);
  }

  // Fault-plan times are relative to the end of warmup (= traffic start),
  // so one plan text means the same thing whatever the warmup length.
  if (!spec.fault_plan.empty()) {
    world.apply_fault_plan(fault::FaultPlan::parse(spec.fault_plan),
                           spec.seed ^ kFaultSalt);
  }

  TrafficMatrix traffic(world, build_flows(spec), spec.seed ^ kTrafficSalt);
  traffic.start();
  const TimePoint t0 = world.now();
  Duration convergence{-1};
  for (Duration t{0}; t < spec.duration; t += spec.step) {
    world.step_mobility(spec.step);
    if (convergence.count() < 0 && traffic.all_flows_routed()) {
      convergence = world.now() - t0;
    }
  }
  traffic.stop();
  world.run_for(spec.drain);  // let in-flight packets land (mobility frozen)

  CellResult out;
  out.key = cell_key(spec);
  out.sent = traffic.total_sent();
  out.received = traffic.total_received();
  out.pdr = out.sent == 0 ? 0.0
                          : static_cast<double>(out.received) /
                                static_cast<double>(out.sent);
  const Samples lat = traffic.merged_latencies_ms();
  if (lat.count() > 0) {
    out.latency_mean_ms = lat.mean();
    out.latency_p50_ms = lat.quantile(0.50);
    out.latency_p99_ms = lat.quantile(0.99);
    out.latency_max_ms = lat.max();
  }
  const net::MediumStats ms = world.medium().stats();
  out.control_frames = ms.control_frames;
  out.control_bytes = ms.control_bytes;
  out.control_bytes_per_delivery =
      static_cast<double>(ms.control_bytes) /
      static_cast<double>(out.received == 0 ? 1 : out.received);
  out.convergence_ms = convergence.count() < 0 ? -1.0 : to_ms(convergence);
  out.invariant_violations = checker.violations().size();
  out.digest = journal.digests();
  out.flows = traffic.all_flow_stats();
  return out;
}

std::vector<CellSpec> expand_matrix(
    const CellSpec& base, const std::vector<std::string>& protocols,
    const std::vector<std::string>& mobilities,
    const std::vector<bool>& on_off_loads,
    const std::vector<std::pair<std::string, std::string>>& fault_plans,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<CellSpec> cells;
  cells.reserve(protocols.size() * mobilities.size() * on_off_loads.size() *
                fault_plans.size() * seeds.size());
  for (const std::string& proto : protocols) {
    for (const std::string& mob : mobilities) {
      for (bool onoff : on_off_loads) {
        for (const auto& [label, plan] : fault_plans) {
          for (std::uint64_t seed : seeds) {
            CellSpec cell = base;
            cell.protocol = proto;
            cell.mobility = mob;
            cell.on_off = onoff;
            cell.fault_label = label;
            cell.fault_plan = plan;
            cell.seed = seed;
            cells.push_back(cell);
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace mk::testbed::scenario
