#include "packetbb/packetbb.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bytebuffer.hpp"

namespace mk::pbb {

namespace {

constexpr std::uint8_t kPktFlagSeqnum = 0x01;
constexpr std::uint8_t kMsgFlagOrig = 0x01;
constexpr std::uint8_t kMsgFlagHops = 0x02;
constexpr std::uint8_t kMsgFlagSeqnum = 0x04;

void write_tlv(ByteWriter& w, std::uint8_t type,
               const std::vector<std::uint8_t>& value) {
  MK_ASSERT(value.size() <= 0xFFFF, "tlv too large");
  w.put_u8(type);
  w.put_u16(static_cast<std::uint16_t>(value.size()));
  w.put_bytes(value);
}

/// Reads a TLV into an existing slot, reusing the value vector's capacity.
void read_tlv_into(ByteReader& r, Tlv& t) {
  t.type = r.get_u8();
  std::uint16_t len = r.get_u16();
  auto view = r.get_view(len);
  t.value.assign(view.begin(), view.end());
}

/// Slot-fill: returns v[i], default-constructing it only when the vector is
/// shorter. Combined with trim() this refills a scratch vector without
/// clear(), which would destroy elements and free their nested buffers.
template <class T>
T& slot(std::vector<T>& v, std::size_t i) {
  if (i == v.size()) v.emplace_back();
  return v[i];
}

template <class T>
void trim(std::vector<T>& v, std::size_t n) {
  if (v.size() > n) v.resize(n);
}

}  // namespace

Tlv Tlv::u8(std::uint8_t type, std::uint8_t v) { return Tlv{type, {v}}; }

Tlv Tlv::u16(std::uint8_t type, std::uint16_t v) {
  return Tlv{type,
             {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)}};
}

Tlv Tlv::u32(std::uint8_t type, std::uint32_t v) {
  return Tlv{type,
             {static_cast<std::uint8_t>(v >> 24),
              static_cast<std::uint8_t>(v >> 16),
              static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)}};
}

std::uint8_t Tlv::as_u8() const {
  MK_ENSURE(value.size() >= 1, "tlv not u8");
  return value[0];
}

std::uint16_t Tlv::as_u16() const {
  MK_ENSURE(value.size() >= 2, "tlv not u16");
  return static_cast<std::uint16_t>((value[0] << 8) | value[1]);
}

std::uint32_t Tlv::as_u32() const {
  MK_ENSURE(value.size() >= 4, "tlv not u32");
  return (static_cast<std::uint32_t>(value[0]) << 24) |
         (static_cast<std::uint32_t>(value[1]) << 16) |
         (static_cast<std::uint32_t>(value[2]) << 8) |
         static_cast<std::uint32_t>(value[3]);
}

std::uint8_t AddressTlv::as_u8() const {
  MK_ENSURE(value.size() >= 1, "addr tlv not u8");
  return value[0];
}

std::uint32_t AddressTlv::as_u32() const {
  MK_ENSURE(value.size() >= 4, "addr tlv not u32");
  return (static_cast<std::uint32_t>(value[0]) << 24) |
         (static_cast<std::uint32_t>(value[1]) << 16) |
         (static_cast<std::uint32_t>(value[2]) << 8) |
         static_cast<std::uint32_t>(value[3]);
}

void AddressBlock::add_with_u8(Addr a, std::uint8_t tlv_type, std::uint8_t v) {
  MK_ASSERT(addrs.size() < 255, "address block full");
  auto idx = static_cast<std::uint8_t>(addrs.size());
  addrs.push_back(a);
  tlvs.push_back(AddressTlv{tlv_type, idx, idx, {v}});
}

void AddressBlock::add_with_u32(Addr a, std::uint8_t tlv_type, std::uint32_t v) {
  MK_ASSERT(addrs.size() < 255, "address block full");
  auto idx = static_cast<std::uint8_t>(addrs.size());
  addrs.push_back(a);
  tlvs.push_back(AddressTlv{tlv_type, idx, idx,
                            {static_cast<std::uint8_t>(v >> 24),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)}});
}

const AddressTlv* AddressBlock::tlv_for(std::size_t i, std::uint8_t type) const {
  for (const auto& t : tlvs) {
    if (t.type == type && t.covers(i)) return &t;
  }
  return nullptr;
}

const Tlv* Message::find_tlv(std::uint8_t type) const {
  for (const auto& t : tlvs) {
    if (t.type == type) return &t;
  }
  return nullptr;
}

void Message::set_tlv(Tlv tlv) {
  for (auto& t : tlvs) {
    if (t.type == tlv.type) {
      t = std::move(tlv);
      return;
    }
  }
  tlvs.push_back(std::move(tlv));
}

namespace {

// -- one-pass wire sizing -----------------------------------------------------
// Mirrors the emit functions below exactly; serialize_into relies on the two
// staying in lockstep (debug-asserted at the end of serialize_into).

std::size_t tlv_wire_size(const Tlv& t) { return 3 + t.value.size(); }

std::size_t addr_tlv_wire_size(const AddressTlv& t) {
  return 5 + t.value.size();
}

std::size_t addr_block_wire_size(const AddressBlock& b) {
  std::size_t n = 1 + 4 * b.addrs.size() + 1;
  for (const auto& t : b.tlvs) n += addr_tlv_wire_size(t);
  return n;
}

/// Body size of a message — everything after the u16 size field.
std::size_t message_body_size(const Message& m) {
  std::size_t n = 0;
  if (m.originator) n += 4;
  if (m.has_hops) n += 2;
  if (m.seqnum) n += 2;
  n += 1;
  for (const auto& t : m.tlvs) n += tlv_wire_size(t);
  n += 1;
  for (const auto& b : m.addr_blocks) n += addr_block_wire_size(b);
  return n;
}

}  // namespace

std::size_t serialized_size(const Packet& packet) {
  std::size_t n = 2;  // version + flags
  if (packet.seqnum) n += 2;
  n += 1;
  for (const auto& t : packet.tlvs) n += tlv_wire_size(t);
  n += 1;
  for (const auto& m : packet.messages) {
    n += 4 + message_body_size(m);  // type + flags + u16 size + body
  }
  return n;
}

namespace {

/// Emits one message (type + flags + u16 size + body). Shared by
/// serialize_into and serialize_msgs_into so sizing and emit stay in
/// lockstep for both entry points.
void emit_message(ByteWriter& w, const Message& m) {
  w.put_u8(m.type);
  std::uint8_t flags = 0;
  if (m.originator) flags |= kMsgFlagOrig;
  if (m.has_hops) flags |= kMsgFlagHops;
  if (m.seqnum) flags |= kMsgFlagSeqnum;
  w.put_u8(flags);
  // The size field is known up front from the sizing pass, so the message
  // is emitted straight-line with no back-patching.
  std::size_t body = message_body_size(m);
  MK_ASSERT(body <= 0xFFFF, "message too large");
  w.put_u16(static_cast<std::uint16_t>(body));
  std::size_t msg_start = w.size();

  if (m.originator) w.put_u32(*m.originator);
  if (m.has_hops) {
    w.put_u8(m.hop_limit);
    w.put_u8(m.hop_count);
  }
  if (m.seqnum) w.put_u16(*m.seqnum);

  MK_ASSERT(m.tlvs.size() <= 255, "too many message tlvs");
  w.put_u8(static_cast<std::uint8_t>(m.tlvs.size()));
  for (const auto& t : m.tlvs) write_tlv(w, t.type, t.value);

  MK_ASSERT(m.addr_blocks.size() <= 255, "too many address blocks");
  w.put_u8(static_cast<std::uint8_t>(m.addr_blocks.size()));
  for (const auto& b : m.addr_blocks) {
    MK_ASSERT(b.addrs.size() <= 255, "address block too large");
    w.put_u8(static_cast<std::uint8_t>(b.addrs.size()));
    for (Addr a : b.addrs) w.put_u32(a);
    MK_ASSERT(b.tlvs.size() <= 255, "too many address tlvs");
    w.put_u8(static_cast<std::uint8_t>(b.tlvs.size()));
    for (const auto& t : b.tlvs) {
      MK_ASSERT(t.value.size() <= 0xFFFF, "addr tlv too large");
      w.put_u8(t.type);
      w.put_u8(t.index_start);
      w.put_u8(t.index_stop);
      w.put_u16(static_cast<std::uint16_t>(t.value.size()));
      w.put_bytes(t.value);
    }
  }
  MK_ASSERT(w.size() - msg_start == body, "sizing pass out of sync");
}

}  // namespace

void serialize_into(const Packet& packet, std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  w.reserve(serialized_size(packet));

  w.put_u8(packet.version);
  w.put_u8(packet.seqnum ? kPktFlagSeqnum : 0);
  if (packet.seqnum) w.put_u16(*packet.seqnum);

  MK_ASSERT(packet.tlvs.size() <= 255, "too many packet tlvs");
  w.put_u8(static_cast<std::uint8_t>(packet.tlvs.size()));
  for (const auto& t : packet.tlvs) write_tlv(w, t.type, t.value);

  MK_ASSERT(packet.messages.size() <= 255, "too many messages");
  w.put_u8(static_cast<std::uint8_t>(packet.messages.size()));

  for (const auto& m : packet.messages) emit_message(w, m);
  out = w.take();
  MK_ASSERT(out.size() == serialized_size(packet), "sizing pass out of sync");
}

void serialize_msgs_into(std::span<const Message* const> msgs,
                         std::vector<std::uint8_t>& out) {
  serialize_msgs_into(msgs, std::span<const Tlv>{}, out);
}

void serialize_msgs_into(std::span<const Message* const> msgs,
                         std::span<const Tlv> pkt_tlvs,
                         std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  std::size_t total = 4;  // version + flags + ntlvs + nmsgs
  for (const Tlv& t : pkt_tlvs) total += tlv_wire_size(t);
  for (const Message* m : msgs) total += 4 + message_body_size(*m);
  w.reserve(total);

  w.put_u8(0);  // version (Packet default)
  w.put_u8(0);  // no packet seqnum
  MK_ASSERT(pkt_tlvs.size() <= 255, "too many packet tlvs");
  w.put_u8(static_cast<std::uint8_t>(pkt_tlvs.size()));
  for (const Tlv& t : pkt_tlvs) write_tlv(w, t.type, t.value);
  MK_ASSERT(msgs.size() <= 255, "too many messages");
  w.put_u8(static_cast<std::uint8_t>(msgs.size()));
  for (const Message* m : msgs) emit_message(w, *m);
  out = w.take();
  MK_ASSERT(out.size() == total, "sizing pass out of sync");
}

std::vector<std::uint8_t> serialize(const Packet& packet) {
  std::vector<std::uint8_t> out;
  serialize_into(packet, out);
  return out;
}

Result<Packet> parse(std::span<const std::uint8_t> data) {
  Packet p;
  Result<bool> r = parse_into(data, p);
  if (!r) return Result<Packet>::fail(r.error());
  return Result<Packet>::ok(std::move(p));
}

Result<bool> parse_into(std::span<const std::uint8_t> data, Packet& out) {
  try {
    ByteReader r(data);
    out.version = r.get_u8();
    std::uint8_t pflags = r.get_u8();
    out.seqnum.reset();
    if (pflags & kPktFlagSeqnum) out.seqnum = r.get_u16();

    std::uint8_t ntlvs = r.get_u8();
    for (std::uint8_t i = 0; i < ntlvs; ++i) read_tlv_into(r, slot(out.tlvs, i));
    trim(out.tlvs, ntlvs);

    std::uint8_t nmsgs = r.get_u8();
    for (std::uint8_t i = 0; i < nmsgs; ++i) {
      Message& m = slot(out.messages, i);
      m.type = r.get_u8();
      std::uint8_t flags = r.get_u8();
      std::uint16_t size = r.get_u16();
      ByteReader mr = r.slice(size);

      m.originator.reset();
      if (flags & kMsgFlagOrig) m.originator = mr.get_u32();
      m.has_hops = (flags & kMsgFlagHops) != 0;
      m.hop_limit = 0;
      m.hop_count = 0;
      if (m.has_hops) {
        m.hop_limit = mr.get_u8();
        m.hop_count = mr.get_u8();
      }
      m.seqnum.reset();
      if (flags & kMsgFlagSeqnum) m.seqnum = mr.get_u16();

      std::uint8_t mtlvs = mr.get_u8();
      for (std::uint8_t j = 0; j < mtlvs; ++j) {
        read_tlv_into(mr, slot(m.tlvs, j));
      }
      trim(m.tlvs, mtlvs);

      std::uint8_t nblocks = mr.get_u8();
      for (std::uint8_t j = 0; j < nblocks; ++j) {
        AddressBlock& b = slot(m.addr_blocks, j);
        std::uint8_t naddrs = mr.get_u8();
        b.addrs.clear();  // trivial elements: capacity survives
        for (std::uint8_t k = 0; k < naddrs; ++k) b.addrs.push_back(mr.get_u32());
        std::uint8_t natlvs = mr.get_u8();
        for (std::uint8_t k = 0; k < natlvs; ++k) {
          AddressTlv& t = slot(b.tlvs, k);
          t.type = mr.get_u8();
          t.index_start = mr.get_u8();
          t.index_stop = mr.get_u8();
          std::uint16_t len = mr.get_u16();
          auto view = mr.get_view(len);
          t.value.assign(view.begin(), view.end());
          if (!b.addrs.empty() &&
              (t.index_start >= b.addrs.size() ||
               t.index_stop >= b.addrs.size() || t.index_start > t.index_stop)) {
            return Result<bool>::fail("address tlv index out of range");
          }
        }
        trim(b.tlvs, natlvs);
      }
      trim(m.addr_blocks, nblocks);
      if (!mr.at_end()) {
        return Result<bool>::fail("trailing bytes inside message");
      }
    }
    trim(out.messages, nmsgs);
    if (!r.at_end()) {
      return Result<bool>::fail("trailing bytes after packet");
    }
    return Result<bool>::ok(true);
  } catch (const BufferUnderflow&) {
    return Result<bool>::fail("truncated packet");
  }
}

std::string addr_to_string(Addr a) {
  return std::to_string((a >> 24) & 0xFF) + "." + std::to_string((a >> 16) & 0xFF) +
         "." + std::to_string((a >> 8) & 0xFF) + "." + std::to_string(a & 0xFF);
}

}  // namespace mk::pbb
