// Checkpoint/solicit TLV codec for S-element replication (ISSUE 10).
//
// A checkpoint is a snapshot of one unit's S element, stamped with an
// RFC-1982-style epoch, that a node hands to its 1-hop neighbours so a
// crash/restart can rehydrate from the freshest peer replica instead of
// cold-starting. The TLVs travel two ways:
//  * piggybacked as *packet-level* TLVs on outbound broadcast control
//    traffic (HELLO/TC/RREQ floods) — zero extra frames in steady state;
//  * inside dedicated REPL messages (message-level TLVs) when a beacon
//    deadline lapses with nothing to piggyback on, and for the restart-time
//    solicit/offer exchange (offers are unicast to the restarted node).
//
// The value layout reuses the PacketBB byte discipline (big-endian,
// ByteWriter/ByteReader, decode never throws out of the module).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packetbb/packetbb.hpp"

namespace mk::pbb {

// TLV types 11/12 — disjoint from the protocol TLVs in protocols/wire.hpp
// (1..10) so a checkpoint TLV is unambiguous at either level.
inline constexpr std::uint8_t kTlvCheckpoint = 11;
inline constexpr std::uint8_t kTlvSolicit = 12;

/// One S-element snapshot (or hot-standby delta against `base_epoch`).
struct Checkpoint {
  Addr origin = 0;               ///< node whose state this is
  std::uint64_t unit_hash = 0;   ///< fnv1a of the unit name ("olsr", ...)
  std::uint16_t epoch = 0;       ///< RFC 1982 serial; wraps
  std::int64_t at_us = 0;        ///< sim time the snapshot was taken
  bool delta = false;            ///< blob is a prefix/suffix delta
  std::uint16_t base_epoch = 0;  ///< full snapshot the delta applies to
  std::vector<std::uint8_t> blob;

  bool operator==(const Checkpoint&) const = default;
};

/// Restart-time request for replicas: "send me what you hold for `origin`"
/// (unit_hash 0 = every unit you hold for that origin).
struct Solicit {
  Addr origin = 0;
  std::uint64_t unit_hash = 0;

  bool operator==(const Solicit&) const = default;
};

/// Encodes into a kTlvCheckpoint TLV value.
Tlv encode_checkpoint(const Checkpoint& cp);

/// Decodes a kTlvCheckpoint TLV value. Fuzz-safe: nullopt on malformed
/// input (replicas arrive off the wire).
std::optional<Checkpoint> decode_checkpoint(const Tlv& tlv);

Tlv encode_solicit(const Solicit& s);
std::optional<Solicit> decode_solicit(const Tlv& tlv);

/// Applies a prefix/suffix byte delta produced by `make_delta` to `base`.
/// Returns nullopt if the delta is malformed against this base.
std::optional<std::vector<std::uint8_t>> apply_delta(
    std::span<const std::uint8_t> base, std::span<const std::uint8_t> delta);

/// Delta of `next` against `base`: shared prefix/suffix lengths plus the
/// differing middle. Always decodable by apply_delta against `base`.
std::vector<std::uint8_t> make_delta(std::span<const std::uint8_t> base,
                                     std::span<const std::uint8_t> next);

}  // namespace mk::pbb
