// Pooled PacketBB message bodies.
//
// Every shared message in the event hot path (Event::set_msg, the COW clone
// in Event::mutable_msg, the System CF's RX demux) funnels through
// acquire_message(), which recycles Message slots through a free list under
// mem::MemBackend::kPool and degenerates to plain make_shared under kHeap
// (the conformance oracle).
//
// Recycled slots follow the serialize_into buffer-recycling discipline: the
// scalar shell is reset (and poisoned 0xA5 while free), but the nested
// tlvs/addr_blocks vectors keep their element count AND capacity from the
// previous tenant — "stale warm". A caller must therefore fully overwrite
// the message (copy-assign from a parsed scratch, or a *_into builder that
// slot-fills and trims every vector) before the message escapes. Handles are
// plain shared_ptr: the custom deleter returns the slot to the pool and the
// control block itself comes from the mem::BlockAllocator free lists, so a
// warm acquire/release cycle performs zero heap allocations.
#pragma once

#include <cstddef>
#include <memory>

#include "packetbb/packetbb.hpp"

namespace mk::pbb {

/// A recycled (or, under MemBackend::kHeap, freshly heap-allocated) Message.
/// Contents are unspecified — see the stale-warm contract above.
std::shared_ptr<Message> acquire_message();

/// Live handles not yet returned to the pool (kPool acquires only).
std::int64_t message_pool_outstanding();

/// Frees every slot currently sitting in the free list (test hygiene; live
/// handles are unaffected and still return to the pool on release).
void message_pool_trim();

}  // namespace mk::pbb
