#include "packetbb/message_pool.hpp"

#include <mutex>

#include "util/assert.hpp"
#include "util/mem.hpp"

namespace mk::pbb {

namespace {

struct Slot {
  Message msg;
  std::uint64_t canary = 0;
  Slot* next = nullptr;
};

struct Pool {
  std::mutex mu;
  Slot* free_head = nullptr;
  mem::PoolStats stats;

  Pool() { mem::register_pool("pbb.message", &stats); }
};

Pool& pool() {
  static Pool p;
  return p;
}

/// Resets the scalar shell to default-constructed values. The tlvs and
/// addr_blocks vectors are left stale-warm on purpose.
void reset_shell(Message& m) {
  m.type = 0;
  m.originator.reset();
  m.has_hops = false;
  m.hop_limit = 0;
  m.hop_count = 0;
  m.seqnum.reset();
}

void release(Slot* s) noexcept {
  Pool& p = pool();
  // Poison the shell so a stale handle reads 0xA5 garbage, not recycled
  // protocol state; the canary trips the assert in acquire_message if the
  // free list itself is corrupted.
  s->msg.type = mem::kPoisonByte;
  s->msg.originator.reset();
  s->msg.has_hops = false;
  s->msg.hop_limit = mem::kPoisonByte;
  s->msg.hop_count = mem::kPoisonByte;
  s->msg.seqnum.reset();
  s->canary = mem::kPoisonCanary;
  {
    std::lock_guard lock(p.mu);
    s->next = p.free_head;
    p.free_head = s;
  }
  p.stats.outstanding.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotDeleter {
  Slot* slot;
  void operator()(Message*) const noexcept { release(slot); }
};

}  // namespace

std::shared_ptr<Message> acquire_message() {
  if (mem::backend() == MemBackend::kHeap) {
    return std::make_shared<Message>();
  }
  Pool& p = pool();
  Slot* s;
  {
    std::lock_guard lock(p.mu);
    s = p.free_head;
    if (s != nullptr) p.free_head = s->next;
  }
  if (s != nullptr) {
    MK_ASSERT(s->canary == mem::kPoisonCanary, "message pool slot corrupted");
    s->canary = 0;
    s->next = nullptr;
    reset_shell(s->msg);
    p.stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = new Slot();
    p.stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  p.stats.outstanding.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Message>(&s->msg, SlotDeleter{s},
                                  mem::BlockAllocator<Message>{});
}

std::int64_t message_pool_outstanding() {
  return pool().stats.outstanding.load(std::memory_order_relaxed);
}

void message_pool_trim() {
  Pool& p = pool();
  Slot* head;
  {
    std::lock_guard lock(p.mu);
    head = p.free_head;
    p.free_head = nullptr;
  }
  while (head != nullptr) {
    Slot* next = head->next;
    delete head;
    head = next;
  }
}

}  // namespace mk::pbb
