// Generalized MANET packet/message format in the style of RFC 5444
// (draft-ietf-manet-packetbb), which the paper adopts as the basis of
// MANETKit's event structure (§4.2).
//
// A Packet carries packet-level TLVs plus a sequence of Messages. A Message
// has an optional originator / hop fields / sequence number, message-level
// TLVs, and Address Blocks; TLVs can be attached to address ranges within a
// block. All protocol control traffic (OLSR HELLO/TC, DYMO RM/RERR, AODV
// RREQ/RREP/RERR) is framed in this format, so a single parser and a single
// generator component are shared by every protocol — a major source of the
// paper's code-reuse numbers (Table 3).
//
// Wire format (big-endian, simplified relative to RFC 5444 — no address
// prefix compression; uniform across all protocols in this repo):
//   packet  := u8 version | u8 flags(bit0:seqnum) | [u16 seqnum]
//              | u8 ntlvs | tlv* | u8 nmsgs | message*
//   tlv     := u8 type | u16 length | byte*
//   message := u8 type | u8 flags(bit0:orig,bit1:hops,bit2:seqnum)
//              | u16 size (whole message, incl. header)
//              | [u32 originator] | [u8 hop_limit | u8 hop_count]
//              | [u16 seqnum] | u8 ntlvs | tlv* | u8 nblocks | addrblock*
//   addrblock := u8 naddrs | u32*naddrs | u8 ntlvs | addrtlv*
//   addrtlv := u8 type | u8 index_start | u8 index_stop | u16 length | byte*
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mk::pbb {

/// Node address. IPv4-like 32-bit identifier (the simulator hands them out
/// as 10.0.0.x).
using Addr = std::uint32_t;

struct Tlv {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  static Tlv u8(std::uint8_t type, std::uint8_t v);
  static Tlv u16(std::uint8_t type, std::uint16_t v);
  static Tlv u32(std::uint8_t type, std::uint32_t v);
  static Tlv empty(std::uint8_t type) { return Tlv{type, {}}; }

  std::uint8_t as_u8() const;
  std::uint16_t as_u16() const;
  std::uint32_t as_u32() const;

  bool operator==(const Tlv&) const = default;
};

/// TLV attached to the address index range [index_start, index_stop].
struct AddressTlv {
  std::uint8_t type = 0;
  std::uint8_t index_start = 0;
  std::uint8_t index_stop = 0;
  std::vector<std::uint8_t> value;

  std::uint8_t as_u8() const;
  std::uint32_t as_u32() const;

  bool covers(std::size_t index) const {
    return index >= index_start && index <= index_stop;
  }

  bool operator==(const AddressTlv&) const = default;
};

struct AddressBlock {
  std::vector<Addr> addrs;
  std::vector<AddressTlv> tlvs;

  /// Appends an address with a single u8-valued TLV attached to it.
  void add_with_u8(Addr a, std::uint8_t tlv_type, std::uint8_t v);
  void add_with_u32(Addr a, std::uint8_t tlv_type, std::uint32_t v);

  /// First TLV of `type` covering address index `i` (nullptr if none).
  const AddressTlv* tlv_for(std::size_t i, std::uint8_t type) const;

  bool operator==(const AddressBlock&) const = default;
};

struct Message {
  std::uint8_t type = 0;
  std::optional<Addr> originator;
  bool has_hops = false;
  std::uint8_t hop_limit = 0;
  std::uint8_t hop_count = 0;
  std::optional<std::uint16_t> seqnum;
  std::vector<Tlv> tlvs;
  std::vector<AddressBlock> addr_blocks;

  const Tlv* find_tlv(std::uint8_t type) const;
  void set_tlv(Tlv tlv);  // replaces existing TLV of same type

  bool operator==(const Message&) const = default;
};

struct Packet {
  std::uint8_t version = 0;
  std::optional<std::uint16_t> seqnum;
  std::vector<Tlv> tlvs;
  std::vector<Message> messages;

  bool operator==(const Packet&) const = default;
};

/// Exact wire size of `packet` under the format above, computed in a single
/// sizing pass (no serialization).
std::size_t serialized_size(const Packet& packet);

/// Serializes to the wire format above. Never fails for well-formed inputs
/// (asserts on count overflows, which indicate a protocol bug). The output
/// buffer is sized with serialized_size() up front, so serialization performs
/// exactly one allocation (zero when `out` already has the capacity — the
/// out-param overload recycles the buffer across calls).
std::vector<std::uint8_t> serialize(const Packet& packet);
void serialize_into(const Packet& packet, std::vector<std::uint8_t>& out);

/// Serializes messages referenced by pointer under the default packet
/// wrapper (version 0, no packet seqnum, no packet TLVs) — wire-identical to
/// serialize_into on a Packet holding copies of the same messages, without
/// deep-copying them into a Packet first. Buffer-recycling like
/// serialize_into.
void serialize_msgs_into(std::span<const Message* const> msgs,
                         std::vector<std::uint8_t>& out);

/// Like the two-argument overload but emits `pkt_tlvs` as packet-level TLVs
/// (replication checkpoints piggyback on outbound control packets this way).
void serialize_msgs_into(std::span<const Message* const> msgs,
                         std::span<const Tlv> pkt_tlvs,
                         std::vector<std::uint8_t>& out);

/// Parses an untrusted byte string; returns an error (never throws, never
/// crashes) on malformed input.
Result<Packet> parse(std::span<const std::uint8_t> data);

/// Parse into a reusable scratch packet: nested vectors are slot-filled and
/// trimmed instead of rebuilt, so parsing a steady stream of same-shaped
/// packets into one scratch performs zero allocations. On failure `out` is
/// left in an unspecified (but destructible/reusable) state.
Result<bool> parse_into(std::span<const std::uint8_t> data, Packet& out);

/// Address pretty-printer ("10.0.0.7" style).
std::string addr_to_string(Addr a);

}  // namespace mk::pbb
