#include "packetbb/checkpoint.hpp"

#include "util/assert.hpp"
#include "util/bytebuffer.hpp"

namespace mk::pbb {

namespace {

constexpr std::uint8_t kCheckpointVersion = 1;
constexpr std::uint8_t kFlagDelta = 0x01;

}  // namespace

// value := u8 version | u32 origin | u64 unit_hash | u16 epoch | i64 at_us
//          | u8 flags | [u16 base_epoch if delta] | u16 blob_len | byte*
Tlv encode_checkpoint(const Checkpoint& cp) {
  ByteWriter w;
  w.reserve(26 + (cp.delta ? 2 : 0) + cp.blob.size());
  w.put_u8(kCheckpointVersion);
  w.put_u32(cp.origin);
  w.put_u64(cp.unit_hash);
  w.put_u16(cp.epoch);
  w.put_u64(static_cast<std::uint64_t>(cp.at_us));
  w.put_u8(cp.delta ? kFlagDelta : 0);
  if (cp.delta) w.put_u16(cp.base_epoch);
  MK_ASSERT(cp.blob.size() <= 0xFFFF,
            "checkpoint blob exceeds the u16 length field");
  w.put_u16(static_cast<std::uint16_t>(cp.blob.size()));
  w.put_bytes(cp.blob);
  return Tlv{kTlvCheckpoint, w.take()};
}

std::optional<Checkpoint> decode_checkpoint(const Tlv& tlv) {
  if (tlv.type != kTlvCheckpoint) return std::nullopt;
  try {
    ByteReader r(tlv.value);
    if (r.get_u8() != kCheckpointVersion) return std::nullopt;
    Checkpoint cp;
    cp.origin = r.get_u32();
    cp.unit_hash = r.get_u64();
    cp.epoch = r.get_u16();
    cp.at_us = static_cast<std::int64_t>(r.get_u64());
    std::uint8_t flags = r.get_u8();
    cp.delta = (flags & kFlagDelta) != 0;
    if (cp.delta) cp.base_epoch = r.get_u16();
    std::uint16_t len = r.get_u16();
    auto view = r.get_view(len);
    cp.blob.assign(view.begin(), view.end());
    if (!r.at_end()) return std::nullopt;
    return cp;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

// value := u8 version | u32 origin | u64 unit_hash
Tlv encode_solicit(const Solicit& s) {
  ByteWriter w;
  w.reserve(13);
  w.put_u8(kCheckpointVersion);
  w.put_u32(s.origin);
  w.put_u64(s.unit_hash);
  return Tlv{kTlvSolicit, w.take()};
}

std::optional<Solicit> decode_solicit(const Tlv& tlv) {
  if (tlv.type != kTlvSolicit) return std::nullopt;
  try {
    ByteReader r(tlv.value);
    if (r.get_u8() != kCheckpointVersion) return std::nullopt;
    Solicit s;
    s.origin = r.get_u32();
    s.unit_hash = r.get_u64();
    if (!r.at_end()) return std::nullopt;
    return s;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

// delta := u32 prefix_len | u32 suffix_len | u32 new_total | middle bytes
std::vector<std::uint8_t> make_delta(std::span<const std::uint8_t> base,
                                     std::span<const std::uint8_t> next) {
  std::size_t prefix = 0;
  const std::size_t max_common = base.size() < next.size() ? base.size()
                                                           : next.size();
  while (prefix < max_common && base[prefix] == next[prefix]) ++prefix;
  std::size_t suffix = 0;
  while (suffix < max_common - prefix &&
         base[base.size() - 1 - suffix] == next[next.size() - 1 - suffix]) {
    ++suffix;
  }
  ByteWriter w;
  const std::size_t middle = next.size() - prefix - suffix;
  w.reserve(12 + middle);
  w.put_u32(static_cast<std::uint32_t>(prefix));
  w.put_u32(static_cast<std::uint32_t>(suffix));
  w.put_u32(static_cast<std::uint32_t>(next.size()));
  w.put_bytes(next.subspan(prefix, middle));
  return w.take();
}

std::optional<std::vector<std::uint8_t>> apply_delta(
    std::span<const std::uint8_t> base, std::span<const std::uint8_t> delta) {
  try {
    ByteReader r(delta);
    const std::uint32_t prefix = r.get_u32();
    const std::uint32_t suffix = r.get_u32();
    const std::uint32_t total = r.get_u32();
    if (prefix + suffix > total) return std::nullopt;
    if (prefix > base.size() || suffix > base.size()) return std::nullopt;
    const std::size_t middle = total - prefix - suffix;
    if (r.remaining() != middle) return std::nullopt;
    std::vector<std::uint8_t> out;
    out.reserve(total);
    out.insert(out.end(), base.begin(), base.begin() + prefix);
    auto view = r.get_view(middle);
    out.insert(out.end(), view.begin(), view.end());
    out.insert(out.end(), base.end() - suffix, base.end());
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace mk::pbb
