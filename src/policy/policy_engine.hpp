// Policy-driven reconfiguration (the paper's §4.5 closed loop, with the
// decision-making element it delegated to higher-level software [13]).
//
// MANETKit supplies (i) context monitoring — the Framework Manager's
// concentrator plus polled IContext values — and (iii) reconfiguration
// enactment. This engine adds (ii): event-condition-action rules evaluated
// over a ContextView; matching rules fire enactment actions (deploy /
// switch / apply variant ...) with per-rule cooldowns so oscillating context
// does not thrash the configuration.
//
//   policy::Engine engine(kit);
//   engine.add_rule({
//     .name = "grow-to-reactive",
//     .condition = [](const policy::ContextView& c) {
//       return c.neighbor_count >= 6 && c.deployed("olsr"); },
//     .action = [](core::Manetkit& kit) {
//       kit.switch_protocol("olsr", "dymo", false); },
//     .cooldown = mk::sec(30)});
//   engine.start(mk::sec(2));   // evaluation period
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/manetkit.hpp"
#include "util/timer.hpp"

namespace mk::policy {

/// Snapshot of node context a rule condition can inspect.
struct ContextView {
  double battery = 1.0;
  std::size_t neighbor_count = 0;
  std::size_t kernel_routes = 0;
  /// Latest value per context-event attribute stream (e.g. POWER_STATUS).
  std::map<std::string, double> signals;
  std::set<std::string> deployed_protocols;
  /// Supervision health signal (ISSUE 5): units currently routed around by
  /// the circuit breaker, and units whose recovery ladder is exhausted.
  /// Empty when no supervisor is installed.
  std::set<std::string> quarantined_units;
  std::set<std::string> failed_units;
  /// True while the power-aware OLSR variant is applied.
  bool power_aware = false;
  /// Replication signal (ISSUE 10): the active strategy, how many peer
  /// replicas this node is holding, and the age of the freshest peer-held
  /// replica of our own state (-1 = none spread yet / no replication CF).
  core::ReplicationStrategy replication = core::ReplicationStrategy::kNone;
  std::size_t replicas_held = 0;
  std::int64_t own_replica_age_us = -1;
  TimePoint now{};

  bool deployed(const std::string& name) const {
    return deployed_protocols.count(name) > 0;
  }
  bool quarantined(const std::string& name) const {
    return quarantined_units.count(name) > 0;
  }
  bool failed(const std::string& name) const {
    return failed_units.count(name) > 0;
  }
  /// Quarantined or failed: the unit is not doing its job right now.
  bool degraded(const std::string& name) const {
    return quarantined(name) || failed(name);
  }
  double signal(const std::string& key, double fallback = 0.0) const {
    auto it = signals.find(key);
    return it == signals.end() ? fallback : it->second;
  }
  /// At least one peer holds a replica of this node's state.
  bool replicated() const { return own_replica_age_us >= 0; }
};

struct Rule {
  std::string name;
  std::function<bool(const ContextView&)> condition;
  std::function<void(core::Manetkit&)> action;
  /// Minimum spacing between firings of this rule.
  Duration cooldown = sec(30);
  /// Condition must hold for this many consecutive evaluations (debounce).
  int sustain = 1;
};

class Engine {
 public:
  explicit Engine(core::Manetkit& kit);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void add_rule(Rule rule);

  /// Starts periodic evaluation. Also subscribes to context events so
  /// `signals` carries the latest pushed values.
  void start(Duration period = sec(2));
  void stop();
  bool running() const { return timer_ != nullptr; }

  /// One synchronous evaluation pass (also used by the timer). Returns the
  /// names of the rules that fired.
  std::vector<std::string> evaluate();

  /// Builds the current context snapshot (exposed for tests).
  ContextView snapshot() const;

  std::uint64_t evaluations() const { return evaluations_; }
  const std::map<std::string, std::uint64_t>& firings() const {
    return firings_;
  }

 private:
  struct RuleState {
    Rule rule;
    TimePoint last_fired{-1'000'000'000};
    int held = 0;
  };

  core::Manetkit& kit_;
  std::vector<RuleState> rules_;
  std::map<std::string, double> signals_;
  std::unique_ptr<PeriodicTimer> timer_;
  std::uint64_t evaluations_ = 0;
  std::map<std::string, std::uint64_t> firings_;
};

/// The paper-motivated default policy set: proactive for small stable
/// networks, reactive when the neighbourhood grows; power-aware OLSR while
/// any node reports low energy. Returns the rules so callers can tweak.
std::vector<Rule> default_adaptive_rules(std::size_t reactive_threshold = 6,
                                         double low_battery = 0.3);

/// Supervision escalation (ISSUE 5): when the supervisor reports `unit`
/// failed — its recovery ladder exhausted with nothing to fall back to — and
/// `fallback` is not yet deployed, replace `unit` with `fallback` (state is
/// NOT carried: the failed unit's S element is suspect by definition).
Rule make_health_escalation_rule(std::string unit, std::string fallback);

/// Replication adaptation (ISSUE 10): runtime strategy switching from the
/// same context loop that switches protocols. While any unit is degraded the
/// breaker is telling us a crash is plausible, so checkpointing escalates to
/// hot-standby deltas; once the node has been clean for a few evaluations it
/// relaxes back to periodic checkpoints. No-ops when no replication CF is
/// deployed (kit.replication() == nullptr) or the operator pinned kNone.
std::vector<Rule> make_replication_adaptive_rules(Duration cooldown = sec(30));

}  // namespace mk::policy
