// Coordinated distributed reconfiguration (the paper's closing future-work
// item: "coordinated distributed dynamic reconfiguration as well as merely
// per-node reconfiguration").
//
// A small ManetProtocol CF ("reconfig") floods RECONFIG commands network-
// wide (duplicate-suppressed, hop-limited). Each node registers named
// actions ("switch-to-dymo", "apply-power-aware", ...); when a command
// arrives — locally initiated or relayed — the matching action runs against
// the local MANETKit instance. Commands carry an epoch so late/duplicate
// floods of older campaigns are ignored.
//
//   auto* coord = policy::deploy_coordinator(kit);
//   policy::register_action(*coord, "go-reactive", [](core::Manetkit& k) {
//     if (k.is_deployed("olsr")) k.switch_protocol("olsr", "dymo", false);
//   });
//   policy::initiate(*coord, "go-reactive");   // this node + whole network
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"

namespace mk::policy {

using CoordinatedAction = std::function<void(core::Manetkit&)>;

/// RFC 1982 serial-number comparison over the 16-bit campaign epoch: `a` is
/// newer than `b` iff they differ and the forward distance b→a is less than
/// half the number space. Survives the 65535→0 wraparound, where plain
/// `a > b` would declare every historic epoch "newer" again (ISSUE 5).
constexpr bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  return a != b && static_cast<std::uint16_t>(a - b) < 0x8000;
}

/// Deploys (idempotently) the "reconfig" coordination CF on a kit.
core::ManetProtocolCf* deploy_coordinator(core::Manetkit& kit);

/// Registers/overwrites a named action on a deployed coordinator.
void register_action(core::ManetProtocolCf& coordinator, std::string name,
                     CoordinatedAction action);

/// Runs the action locally and floods the command to the network. Returns
/// the campaign epoch used.
std::uint16_t initiate(core::ManetProtocolCf& coordinator,
                       const std::string& action_name);

/// Number of commands executed on this node (local + remote initiations).
std::uint64_t commands_executed(core::ManetProtocolCf& coordinator);

}  // namespace mk::policy
