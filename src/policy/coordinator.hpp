// Coordinated distributed reconfiguration (the paper's closing future-work
// item: "coordinated distributed dynamic reconfiguration as well as merely
// per-node reconfiguration").
//
// A small ManetProtocol CF ("reconfig") floods RECONFIG commands network-
// wide (duplicate-suppressed, hop-limited). Each node registers named
// actions ("switch-to-dymo", "apply-power-aware", ...); when a command
// arrives — locally initiated or relayed — the matching action runs against
// the local MANETKit instance. Commands carry an epoch so late/duplicate
// floods of older campaigns are ignored.
//
//   auto* coord = policy::deploy_coordinator(kit);
//   policy::register_action(*coord, "go-reactive", [](core::Manetkit& k) {
//     if (k.is_deployed("olsr")) k.switch_protocol("olsr", "dymo", false);
//   });
//   policy::initiate(*coord, "go-reactive");   // this node + whole network
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"

namespace mk::policy {

using CoordinatedAction = std::function<void(core::Manetkit&)>;

/// RFC 1982 serial-number comparison over the 16-bit campaign epoch: `a` is
/// newer than `b` iff they differ and the forward distance b→a is less than
/// half the number space. Survives the 65535→0 wraparound, where plain
/// `a > b` would declare every historic epoch "newer" again (ISSUE 5).
constexpr bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  return a != b && static_cast<std::uint16_t>(a - b) < 0x8000;
}

/// Duplicate/stale-campaign filter: tracks the newest epoch per origin
/// under RFC 1982 comparison, bounded in size. Without a bound, a network
/// that churns addresses (or an attacker forging originators) grows the map
/// forever on every node. When full, the origin *least recently heard from*
/// is evicted — long-silent origins are exactly the ones whose epoch memory
/// has the least value, and re-admitting one merely re-executes at most one
/// action, which registered actions must tolerate anyway (floods re-deliver).
class OriginEpochMap {
 public:
  static constexpr std::size_t kDefaultMaxOrigins = 1024;

  explicit OriginEpochMap(std::size_t max_origins = kDefaultMaxOrigins)
      : max_origins_(max_origins) {}

  /// True if (origin, ep) is a duplicate or stale campaign. Every sighting
  /// — fresh or duplicate — refreshes the origin's last-seen stamp.
  bool seen(net::Addr origin, std::uint16_t ep) {
    auto it = latest_.find(origin);
    if (it != latest_.end()) {
      it->second.last_seen = ++clock_;
      if (!epoch_newer(ep, it->second.epoch)) return true;
      it->second.epoch = ep;
      return false;
    }
    if (latest_.size() >= max_origins_) evict_least_recent();
    latest_.emplace(origin, Slot{ep, ++clock_});
    return false;
  }

  std::size_t size() const { return latest_.size(); }
  bool tracks(net::Addr origin) const {
    return latest_.find(origin) != latest_.end();
  }

 private:
  struct Slot {
    std::uint16_t epoch;
    std::uint64_t last_seen;
  };

  void evict_least_recent() {
    auto victim = latest_.begin();
    for (auto it = latest_.begin(); it != latest_.end(); ++it) {
      if (it->second.last_seen < victim->second.last_seen) victim = it;
    }
    if (victim != latest_.end()) latest_.erase(victim);
  }

  std::size_t max_origins_;
  std::uint64_t clock_ = 0;
  std::map<net::Addr, Slot> latest_;
};

/// Deploys (idempotently) the "reconfig" coordination CF on a kit.
core::ManetProtocolCf* deploy_coordinator(core::Manetkit& kit);

/// Registers/overwrites a named action on a deployed coordinator.
void register_action(core::ManetProtocolCf& coordinator, std::string name,
                     CoordinatedAction action);

/// Runs the action locally and floods the command to the network. Returns
/// the campaign epoch used.
std::uint16_t initiate(core::ManetProtocolCf& coordinator,
                       const std::string& action_name);

/// Number of commands executed on this node (local + remote initiations).
std::uint64_t commands_executed(core::ManetProtocolCf& coordinator);

}  // namespace mk::policy
