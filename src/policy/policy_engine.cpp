#include "policy/policy_engine.hpp"

#include "core/attrs.hpp"
#include "protocols/olsr/power_aware.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::policy {

Engine::Engine(core::Manetkit& kit) : kit_(kit) {
  // Pushed context events feed the signal map (the concentrator facade).
  kit_.manager().subscribe(ev::types::POWER_STATUS, [this](const ev::Event& e) {
    signals_["battery"] = e.get_double(core::attrs::kBattery, 1.0);
  });
  kit_.manager().subscribe(ev::types::NHOOD_CHANGE, [this](const ev::Event& e) {
    signals_["last_nhood_up"] =
        e.get_int(core::attrs::kUp, 1) != 0 ? 1.0 : 0.0;
  });
}

Engine::~Engine() { stop(); }

void Engine::add_rule(Rule rule) {
  MK_ASSERT(rule.condition != nullptr && rule.action != nullptr);
  MK_ASSERT(rule.sustain >= 1);
  rules_.push_back(RuleState{std::move(rule), TimePoint{-1'000'000'000}, 0});
}

void Engine::start(Duration period) {
  if (timer_ != nullptr) return;
  timer_ = std::make_unique<PeriodicTimer>(
      kit_.scheduler(), period, [this] { evaluate(); },
      /*jitter=*/0.1, /*seed=*/kit_.self() + 17);
  timer_->start();
}

void Engine::stop() { timer_.reset(); }

ContextView Engine::snapshot() const {
  ContextView view;
  view.now = kit_.scheduler().now();
  view.battery = kit_.node().battery();
  view.neighbor_count =
      kit_.node().medium().neighbors_of(kit_.self()).size();
  view.kernel_routes = kit_.node().kernel_table().size();
  view.signals = signals_;
  for (const auto& name : kit_.deployed()) {
    view.deployed_protocols.insert(name);
  }
  view.power_aware = proto::is_power_aware(kit_);
  if (const core::ReplicationControl* repl = kit_.replication()) {
    view.replication = repl->strategy();
    view.replicas_held = repl->replicas_held();
    view.own_replica_age_us = repl->own_replica_age_us();
  }
  if (const core::HealthProvider* health = kit_.health_provider()) {
    for (auto& name : health->quarantined_units()) {
      view.quarantined_units.insert(std::move(name));
    }
    for (auto& name : health->failed_units()) {
      view.failed_units.insert(std::move(name));
    }
  }
  return view;
}

std::vector<std::string> Engine::evaluate() {
  ++evaluations_;
  ContextView view = snapshot();
  std::vector<std::string> fired;

  for (RuleState& rs : rules_) {
    bool holds = false;
    try {
      holds = rs.rule.condition(view);
    } catch (const std::exception& e) {
      MK_WARN("policy", "rule '", rs.rule.name, "' condition threw: ",
              e.what());
      continue;
    }
    if (!holds) {
      rs.held = 0;
      continue;
    }
    ++rs.held;
    if (rs.held < rs.rule.sustain) continue;
    if (view.now - rs.last_fired < rs.rule.cooldown) continue;

    MK_INFO("policy", "rule '", rs.rule.name, "' firing at ",
            to_string(view.now));
    try {
      rs.rule.action(kit_);
      rs.last_fired = view.now;
      rs.held = 0;
      ++firings_[rs.rule.name];
      fired.push_back(rs.rule.name);
      // Re-snapshot: an action may change what later rules should see.
      view = snapshot();
      view.signals = signals_;
    } catch (const std::exception& e) {
      MK_WARN("policy", "rule '", rs.rule.name, "' action failed: ", e.what());
    }
  }
  return fired;
}

std::vector<Rule> default_adaptive_rules(std::size_t reactive_threshold,
                                         double low_battery) {
  std::vector<Rule> rules;

  rules.push_back(Rule{
      "dense-network-switch-to-reactive",
      [reactive_threshold](const ContextView& c) {
        return c.deployed("olsr") && c.neighbor_count >= reactive_threshold;
      },
      [](core::Manetkit& kit) {
        kit.switch_protocol("olsr", "dymo", /*carry_state=*/false);
        if (kit.is_deployed("mpr")) kit.undeploy("mpr");
      },
      /*cooldown=*/sec(60), /*sustain=*/2});

  rules.push_back(Rule{
      "sparse-network-switch-to-proactive",
      [reactive_threshold](const ContextView& c) {
        return c.deployed("dymo") && !c.deployed("olsr") &&
               c.neighbor_count > 0 &&
               c.neighbor_count < reactive_threshold / 2;
      },
      [](core::Manetkit& kit) {
        kit.switch_protocol("dymo", "olsr", /*carry_state=*/false);
        // The Neighbour Detection CF was DYMO's substrate; OLSR's MPR CF
        // subsumes it.
        if (kit.is_deployed("neighbor") && !kit.is_deployed("aodv")) {
          kit.undeploy("neighbor");
        }
      },
      /*cooldown=*/sec(60), /*sustain=*/2});

  rules.push_back(Rule{
      "low-energy-apply-power-aware",
      [low_battery](const ContextView& c) {
        return c.deployed("olsr") && !c.power_aware &&
               c.battery < low_battery;
      },
      [](core::Manetkit& kit) { proto::apply_power_aware(kit); },
      /*cooldown=*/sec(30), /*sustain=*/1});

  rules.push_back(Rule{
      "energy-recovered-remove-power-aware",
      [low_battery](const ContextView& c) {
        return c.deployed("olsr") && c.power_aware &&
               c.battery > low_battery + 0.2;
      },
      [](core::Manetkit& kit) { proto::remove_power_aware(kit); },
      /*cooldown=*/sec(30), /*sustain=*/1});

  return rules;
}

Rule make_health_escalation_rule(std::string unit, std::string fallback) {
  std::string rule_name = "health-escalate-" + unit + "-to-" + fallback;
  return Rule{
      std::move(rule_name),
      [unit, fallback](const ContextView& c) {
        // No deployed(unit) precondition: a failed restart whose rollback
        // also failed leaves the unit destroyed but still flagged failed.
        return c.failed(unit) && !c.deployed(fallback);
      },
      [unit, fallback](core::Manetkit& kit) {
        // The failed unit's S element is suspect by definition — start the
        // fallback from protocol defaults rather than carrying state over.
        if (kit.is_deployed(unit)) {
          kit.switch_protocol(unit, fallback, /*carry_state=*/false);
        } else {
          kit.deploy(fallback);
        }
      },
      /*cooldown=*/sec(60), /*sustain=*/1};
}

std::vector<Rule> make_replication_adaptive_rules(Duration cooldown) {
  std::vector<Rule> rules;

  rules.push_back(Rule{
      "degraded-escalate-hot-standby",
      [](const ContextView& c) {
        return c.replication == core::ReplicationStrategy::kCheckpoint &&
               (!c.quarantined_units.empty() || !c.failed_units.empty());
      },
      [](core::Manetkit& kit) {
        if (core::ReplicationControl* repl = kit.replication()) {
          repl->set_strategy(core::ReplicationStrategy::kHotStandby);
        }
      },
      cooldown, /*sustain=*/1});

  rules.push_back(Rule{
      "healthy-relax-to-checkpoint",
      [](const ContextView& c) {
        return c.replication == core::ReplicationStrategy::kHotStandby &&
               c.quarantined_units.empty() && c.failed_units.empty();
      },
      [](core::Manetkit& kit) {
        if (core::ReplicationControl* repl = kit.replication()) {
          repl->set_strategy(core::ReplicationStrategy::kCheckpoint);
        }
      },
      cooldown, /*sustain=*/3});

  return rules;
}

}  // namespace mk::policy
