#include "policy/coordinator.hpp"

#include <map>

#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::policy {

namespace {

constexpr std::uint8_t kMsgReconfig = 40;
constexpr std::uint8_t kTlvActionName = 11;
constexpr std::uint8_t kFloodHopLimit = 16;

/// S element: registered actions, per-origin campaign epochs, counters.
class ReconfigState final : public oc::Component, public core::IState {
 public:
  ReconfigState() : oc::Component("policy.ReconfigState") {
    set_instance_name("State");
    provide("IState", static_cast<core::IState*>(this));
  }

  std::map<std::string, CoordinatedAction> actions;
  core::Manetkit* kit = nullptr;
  std::uint16_t epoch = 0;
  std::uint64_t executed = 0;

  /// True if (origin, ep) is a duplicate or stale campaign. The previous
  /// implementation kept a bounded FIFO of (origin, epoch) pairs, which
  /// re-admitted any epoch once 256 newer floods pushed it out — and treated
  /// the 65535→0 wraparound as 65536 fresh campaigns. Tracking only the
  /// newest epoch per origin under RFC 1982 serial comparison is wrap-safe,
  /// and OriginEpochMap bounds it by evicting long-silent origins.
  bool seen(net::Addr origin, std::uint16_t ep) {
    return latest_.seen(origin, ep);
  }

  std::string describe() const override {
    return "reconfig actions: " + std::to_string(actions.size()) +
           " executed: " + std::to_string(executed);
  }

 private:
  OriginEpochMap latest_;
};

ReconfigState& state_of(core::ProtocolContext& ctx) {
  auto* s = dynamic_cast<ReconfigState*>(ctx.state());
  MK_ASSERT(s != nullptr, "coordinator has no ReconfigState");
  return *s;
}

pbb::Message build_command(net::Addr self, std::uint16_t epoch,
                           const std::string& action) {
  pbb::Message m;
  m.type = kMsgReconfig;
  m.originator = self;
  m.seqnum = epoch;
  m.has_hops = true;
  m.hop_limit = kFloodHopLimit;
  m.hop_count = 0;
  pbb::Tlv name_tlv;
  name_tlv.type = kTlvActionName;
  name_tlv.value.assign(action.begin(), action.end());
  m.tlvs.push_back(std::move(name_tlv));
  return m;
}

class ReconfigHandler final : public core::EventHandler {
 public:
  explicit ReconfigHandler(core::Manetkit& kit)
      : core::EventHandler("policy.ReconfigHandler", {"RECONFIG_IN"}),
        kit_(kit) {
    set_instance_name("ReconfigHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (!event.has_msg() || !event.msg()->originator || !event.msg()->seqnum) {
      return;
    }
    const pbb::Message& msg = *event.msg();
    if (*msg.originator == ctx.self()) return;

    ReconfigState& st = state_of(ctx);
    if (st.seen(*msg.originator, *msg.seqnum)) return;

    const auto* name_tlv = msg.find_tlv(kTlvActionName);
    if (name_tlv == nullptr) return;
    std::string name(name_tlv->value.begin(), name_tlv->value.end());

    // Relay first ("make before break": keep the campaign spreading even if
    // our own enactment rewires this node's stack).
    if (msg.has_hops && msg.hop_limit > 1) {
      ev::Event out(ev::etype("RECONFIG_OUT"));
      pbb::Message& fwd = out.set_msg(msg);
      fwd.hop_limit -= 1;
      fwd.hop_count += 1;
      ctx.emit(std::move(out));
    }

    auto it = st.actions.find(name);
    if (it == st.actions.end()) {
      MK_WARN("reconfig", "unknown coordinated action '", name, "' from ",
              pbb::addr_to_string(*msg.originator));
      return;
    }
    MK_INFO("reconfig", "executing coordinated action '", name, "' (epoch ",
            *msg.seqnum, ")");
    ++st.executed;
    it->second(kit_);
  }

 private:
  core::Manetkit& kit_;
};

}  // namespace

core::ManetProtocolCf* deploy_coordinator(core::Manetkit& kit) {
  if (auto* existing = kit.protocol("reconfig")) return existing;
  if (!kit.has_builder("reconfig")) {
    kit.register_protocol("reconfig", /*layer=*/30, [](core::Manetkit& k) {
      k.system().register_message(kMsgReconfig, "RECONFIG");
      auto cf = std::make_unique<core::ManetProtocolCf>(
          k.kernel(), "reconfig", k.scheduler(), k.self(),
          &k.system().sys_state());
      auto state = std::make_unique<ReconfigState>();
      state->kit = &k;
      cf->set_state(std::move(state));
      cf->add_handler(std::make_unique<ReconfigHandler>(k));
      cf->declare_events({"RECONFIG_IN"}, {"RECONFIG_OUT"});
      return cf;
    });
  }
  return kit.deploy("reconfig");
}

void register_action(core::ManetProtocolCf& coordinator, std::string name,
                     CoordinatedAction action) {
  MK_ASSERT(action != nullptr);
  auto lock = coordinator.quiesce();
  state_of(coordinator.context()).actions[std::move(name)] =
      std::move(action);
}

std::uint16_t initiate(core::ManetProtocolCf& coordinator,
                       const std::string& action_name) {
  CoordinatedAction local;
  std::uint16_t epoch = 0;
  core::Manetkit* kit = nullptr;
  {
    auto lock = coordinator.quiesce();
    auto& ctx = coordinator.context();
    ReconfigState& st = state_of(ctx);
    auto it = st.actions.find(action_name);
    MK_ENSURE(it != st.actions.end(),
              "unknown coordinated action: " + action_name);
    local = it->second;
    kit = st.kit;
    epoch = ++st.epoch;
    st.seen(ctx.self(), epoch);  // don't re-execute our own flood
    ++st.executed;

    ev::Event out(ev::etype("RECONFIG_OUT"));
    out.set_msg(build_command(ctx.self(), epoch, action_name));
    ctx.emit(std::move(out));
  }
  // Run the local enactment outside the coordinator's lock: the action may
  // itself quiesce other CFs and re-enter the manager.
  MK_ASSERT(kit != nullptr);
  local(*kit);
  return epoch;
}

std::uint64_t commands_executed(core::ManetProtocolCf& coordinator) {
  auto lock = coordinator.quiesce();
  return state_of(coordinator.context()).executed;
}

}  // namespace mk::policy
