#include "replication/replication.hpp"

#include <sstream>
#include <utility>

#include "core/attrs.hpp"
#include "protocols/aodv/aodv_cf.hpp"
#include "protocols/dymo/dymo_cf.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::repl {

namespace {

/// RFC 1982 serial comparison for checkpoint epochs (same arithmetic as the
/// protocols' seq_newer and the policy coordinator's epoch_newer).
bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

/// Reinstalls the kernel routes a restored S element implies. Dispatches on
/// the concrete S type, not the unit name, so renamed compositions (the
/// zone hybrid, the multipath variant) restore the same way as their base.
void reinstall_routes(core::ManetProtocolCf& proto) {
  oc::Component* sc = proto.state_component();
  if (sc == nullptr) return;
  if (dynamic_cast<proto::OlsrState*>(sc) != nullptr) {
    // Routes are derived from the restored topology set.
    proto::olsr_recompute_routes(proto);
    return;
  }
  if (auto* dy = dynamic_cast<proto::DymoState*>(sc)) {
    auto lock = proto.quiesce();
    for (const auto& [dest, r] : dy->all_routes()) {
      if (r.valid && r.active() != nullptr) {
        proto::dymo_install_kernel_route(proto.context(), dest,
                                         r.active()->next_hop,
                                         r.active()->hops);
      }
    }
    return;
  }
  if (auto* ao = dynamic_cast<proto::AodvState*>(sc)) {
    auto lock = proto.quiesce();
    core::ProtocolContext& ctx = proto.context();
    if (ctx.sys() == nullptr) return;
    for (const auto& [dest, r] : ao->all_routes()) {
      if (!r.valid) continue;
      net::RouteEntry entry;
      entry.dest = dest;
      entry.next_hop = r.next_hop;
      entry.metric = r.hops;
      entry.installed_at = ctx.now();
      ctx.sys()->kernel_table().set_route(entry);
    }
  }
}

/// Periodic checkpoint publisher. A self-rechaining one-shot (rather than a
/// PeriodicTimer) so a strategy switch changes the cadence at the very next
/// tick; the first shot is skewed per node so a fleet does not checkpoint in
/// lockstep.
class CheckpointPublisher final : public core::EventSource {
 public:
  explicit CheckpointPublisher(ReplicationManager* mgr)
      : core::EventSource("repl.CheckpointPublisher"), mgr_(mgr) {
    set_instance_name("CheckpointPublisher");
  }

  void start(core::ProtocolContext& ctx) override {
    ctx_ = &ctx;
    timer_ = std::make_unique<OneShotTimer>(ctx.scheduler());
    timer_->schedule(mgr_->publish_interval() + msec(ctx.self() % 97),
                     [this] { fire(); });
  }

  void stop() override { timer_.reset(); }

 private:
  void fire() {
    mgr_->publish_checkpoints(*ctx_);
    timer_->schedule(mgr_->publish_interval(), [this] { fire(); });
  }

  ReplicationManager* mgr_;
  core::ProtocolContext* ctx_ = nullptr;
  std::unique_ptr<OneShotTimer> timer_;
};

/// Feeds REPL messages (beacons, solicits, offers) into the manager.
class ReplHandler final : public core::EventHandler {
 public:
  explicit ReplHandler(ReplicationManager* mgr)
      : core::EventHandler("repl.ReplHandler", {"REPL_IN"}), mgr_(mgr) {
    set_instance_name("ReplHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    mgr_->handle_repl_message(event, ctx);
  }

 private:
  ReplicationManager* mgr_;
};

}  // namespace

ReplicationManager::ReplicationManager(core::Manetkit& kit,
                                       ReplicationParams params)
    : oc::Component("repl.ReplicationManager"),
      kit_(kit),
      params_(params),
      strategy_(params.initial) {
  set_instance_name("State");
  provide("IState", static_cast<core::IState*>(this));
  MK_ASSERT(params_.full_every >= 1);
}

ReplicationManager::~ReplicationManager() {
  kit_.system().set_packet_tlv_provider(nullptr);
  kit_.system().set_packet_tlv_observer(nullptr);
  if (kit_.replication() == this) kit_.set_replication(nullptr);
}

void ReplicationManager::attach(core::ManetProtocolCf* cf) {
  cf_ = cf;
  beacon_timer_ = std::make_unique<OneShotTimer>(kit_.scheduler());
  kit_.system().set_packet_tlv_provider(
      [this](std::vector<pbb::Tlv>& out) { provide_packet_tlvs(out); });
  kit_.system().set_packet_tlv_observer(
      [this](const pbb::Tlv& tlv, net::Addr from) {
        // Piggybacked TLVs carry only the *sender's own* checkpoints;
        // solicits and offers travel inside REPL messages.
        if (tlv.type != pbb::kTlvCheckpoint) return;
        auto cp = decode_checkpoint(tlv);
        if (!cp || cp->origin == kit_.self()) return;
        accept_checkpoint(*cp, from);
      });
  kit_.set_replication(this);
}

void ReplicationManager::set_strategy(core::ReplicationStrategy s) {
  if (strategy_ == s) return;
  strategy_ = s;
  kit_.metrics().counter("repl.strategy_switches").inc();
  MK_DEBUG("repl", "strategy -> ", core::to_string(s), " at ",
           pbb::addr_to_string(kit_.self()));
}

Duration ReplicationManager::publish_interval() const {
  return strategy_ == core::ReplicationStrategy::kHotStandby
             ? params_.standby_interval
             : params_.checkpoint_interval;
}

std::int64_t ReplicationManager::own_replica_age_us() const {
  if (last_spread_us_ < 0) return -1;
  return kit_.scheduler().now().us - last_spread_us_;
}

std::vector<std::pair<std::string, core::IStateCodec*>>
ReplicationManager::codec_units() const {
  std::vector<std::pair<std::string, core::IStateCodec*>> out;
  for (const std::string& name : kit_.deployed()) {  // sorted (std::map)
    if (name == "replication") continue;
    core::ManetProtocolCf* proto = kit_.protocol(name);
    if (proto == nullptr || proto->state_component() == nullptr) continue;
    auto* codec = proto->state_component()->interface_as<core::IStateCodec>(
        "IStateCodec");
    if (codec != nullptr) out.emplace_back(name, codec);
  }
  return out;
}

core::IStateCodec* ReplicationManager::codec_of(const std::string& unit) const {
  core::ManetProtocolCf* proto = kit_.protocol(unit);
  if (proto == nullptr || proto->state_component() == nullptr) return nullptr;
  return proto->state_component()->interface_as<core::IStateCodec>(
      "IStateCodec");
}

void ReplicationManager::journal(obs::RecordKind kind, std::uint64_t unit_hash,
                                 std::uint64_t phase, std::uint16_t epoch,
                                 std::uint64_t c) {
  obs::Journal* j = kit_.journal();
  if (j == nullptr) return;
  j->append({kind, kit_.self(), kit_.scheduler().now().us, unit_hash,
             (phase << 32) | epoch, c});
}

void ReplicationManager::publish_checkpoints(core::ProtocolContext& ctx) {
  if (strategy_ == core::ReplicationStrategy::kNone) return;
  const bool hot = strategy_ == core::ReplicationStrategy::kHotStandby;
  const std::int64_t now_us = ctx.now().us;

  for (const auto& [name, codec] : codec_units()) {
    std::vector<std::uint8_t> blob;
    codec->encode_state(blob);
    const std::uint64_t hash = obs::fnv1a_str(name);
    PublishState& ps = publish_[name];

    // Publishing our own state means this unit is live again: stop
    // accepting rehydration offers for it.
    rehydrating_.erase(name);
    rehydrate_virgin_.erase(name);

    const bool changed = blob != ps.last_pub;
    const bool anchor = ps.publishes % params_.full_every == 0;
    ++ps.publishes;

    pbb::Checkpoint cp;
    cp.origin = ctx.self();
    cp.unit_hash = hash;
    cp.at_us = now_us;

    if (hot && !anchor && !ps.last_pub.empty()) {
      if (!changed) continue;  // peers already hold this epoch
      const std::uint16_t base = ps.epoch;
      ++ps.epoch;
      cp.epoch = ps.epoch;
      cp.delta = true;
      cp.base_epoch = base;
      cp.blob = pbb::make_delta(ps.last_pub, blob);
      stage(pbb::encode_checkpoint(cp), hash);
      journal(obs::RecordKind::kCheckpoint, hash,
              static_cast<std::uint64_t>(obs::CheckpointPhase::kDelta),
              cp.epoch, cp.blob.size());
      kit_.metrics().counter("repl.deltas_published").inc();
    } else {
      if (changed) ++ps.epoch;
      cp.epoch = ps.epoch;
      cp.blob = blob;
      stage(pbb::encode_checkpoint(cp), hash);
      journal(obs::RecordKind::kCheckpoint, hash,
              static_cast<std::uint64_t>(obs::CheckpointPhase::kPublish),
              cp.epoch, cp.blob.size());
      kit_.metrics().counter("repl.checkpoints_published").inc();
    }
    ps.last_pub = std::move(blob);
  }
}

void ReplicationManager::stage(pbb::Tlv tlv, std::uint64_t unit_hash) {
  staged_[unit_hash] = std::move(tlv);
  if (beacon_timer_ != nullptr && !beacon_timer_->pending()) {
    beacon_timer_->schedule(params_.beacon_grace, [this] { beacon_fire(); });
  }
}

void ReplicationManager::provide_packet_tlvs(std::vector<pbb::Tlv>& out) {
  if (staged_.empty()) return;
  for (auto& [_, tlv] : staged_) out.push_back(std::move(tlv));
  kit_.metrics().counter("repl.piggybacked").inc(staged_.size());
  staged_.clear();
  last_spread_us_ = kit_.scheduler().now().us;
}

void ReplicationManager::beacon_fire() {
  if (staged_.empty() || cf_ == nullptr || !cf_->running()) return;
  auto lock = cf_->quiesce();
  pbb::Message m;
  m.type = proto::wire::kMsgRepl;
  m.originator = kit_.self();
  for (auto& [_, tlv] : staged_) m.tlvs.push_back(std::move(tlv));
  kit_.metrics().counter("repl.beacons").inc();
  staged_.clear();
  last_spread_us_ = kit_.scheduler().now().us;
  ev::Event e(std::string_view{"REPL_OUT"});
  e.set_msg(std::move(m));
  cf_->context().emit(std::move(e));
}

void ReplicationManager::accept_checkpoint(const pbb::Checkpoint& cp,
                                           net::Addr from) {
  const auto key = std::make_pair(cp.origin, cp.unit_hash);
  const std::int64_t now_us = kit_.scheduler().now().us;
  auto it = replicas_.find(key);

  if (cp.delta) {
    // A delta only patches the exact base it was computed against; a peer
    // that missed an update waits for the next full anchor.
    if (it == replicas_.end() || it->second.epoch != cp.base_epoch) {
      journal(obs::RecordKind::kCheckpoint, cp.unit_hash,
              static_cast<std::uint64_t>(obs::CheckpointPhase::kReject),
              cp.epoch, from);
      kit_.metrics().counter("repl.rejects").inc();
      return;
    }
    auto patched = pbb::apply_delta(it->second.blob, cp.blob);
    if (!patched) {
      journal(obs::RecordKind::kCheckpoint, cp.unit_hash,
              static_cast<std::uint64_t>(obs::CheckpointPhase::kReject),
              cp.epoch, from);
      kit_.metrics().counter("repl.rejects").inc();
      return;
    }
    it->second.epoch = cp.epoch;
    it->second.at_us = cp.at_us;
    it->second.blob = std::move(*patched);
    journal(obs::RecordKind::kCheckpoint, cp.unit_hash,
            static_cast<std::uint64_t>(obs::CheckpointPhase::kDeltaApply),
            cp.epoch, it->second.blob.size());
    kit_.metrics().counter("repl.deltas_applied").inc();
    return;
  }

  if (it != replicas_.end()) {
    if (cp.epoch == it->second.epoch) {
      it->second.at_us = cp.at_us;  // refresh only; not worth a record
      return;
    }
    const bool stale_holder = now_us - it->second.at_us >
                              params_.staleness_bound.count();
    if (!epoch_newer(cp.epoch, it->second.epoch) && !stale_holder) {
      // Older epoch from a live origin: reject. (After the origin
      // cold-starts, its epochs restart — then stale_holder admits them.)
      journal(obs::RecordKind::kCheckpoint, cp.unit_hash,
              static_cast<std::uint64_t>(obs::CheckpointPhase::kReject),
              cp.epoch, from);
      kit_.metrics().counter("repl.rejects").inc();
      return;
    }
  }
  Replica& r = replicas_[key];
  r.epoch = cp.epoch;
  r.at_us = cp.at_us;
  r.blob = cp.blob;
  journal(obs::RecordKind::kCheckpoint, cp.unit_hash,
          static_cast<std::uint64_t>(obs::CheckpointPhase::kStore), cp.epoch,
          from);
  kit_.metrics().counter("repl.checkpoints_stored").inc();
}

bool ReplicationManager::request_rehydrate(const std::string& unit) {
  if (cf_ == nullptr || strategy_ == core::ReplicationStrategy::kNone) {
    return false;
  }
  auto lock = cf_->quiesce();
  if (!cf_->running()) return false;

  std::uint64_t unit_hash = 0;
  if (unit.empty()) {
    for (const auto& [name, _] : codec_units()) {
      rehydrating_[name] = 0;
      rehydrate_virgin_.insert(name);
    }
    if (rehydrating_.empty()) return false;
  } else {
    if (codec_of(unit) == nullptr) return false;
    unit_hash = obs::fnv1a_str(unit);
    rehydrating_[unit] = 0;
    rehydrate_virgin_.insert(unit);
  }

  pbb::Message m;
  m.type = proto::wire::kMsgRepl;
  m.originator = kit_.self();
  m.tlvs.push_back(pbb::encode_solicit({kit_.self(), unit_hash}));
  ev::Event e(std::string_view{"REPL_OUT"});
  e.set_msg(std::move(m));
  cf_->context().emit(std::move(e));

  journal(obs::RecordKind::kRehydrate, unit_hash,
          static_cast<std::uint64_t>(obs::RehydratePhase::kSolicit), 0, 0);
  kit_.metrics().counter("repl.solicits").inc();
  return true;
}

void ReplicationManager::handle_repl_message(const ev::Event& event,
                                             core::ProtocolContext& ctx) {
  if (!event.has_msg()) return;
  for (const pbb::Tlv& tlv : event.msg()->tlvs) {
    if (tlv.type == pbb::kTlvCheckpoint) {
      auto cp = decode_checkpoint(tlv);
      if (!cp) continue;
      if (cp->origin == ctx.self()) {
        apply_offer(*cp, event.from);
      } else {
        accept_checkpoint(*cp, event.from);
      }
    } else if (tlv.type == pbb::kTlvSolicit) {
      auto s = decode_solicit(tlv);
      if (s && s->origin != ctx.self()) handle_solicit(*s, event.from, ctx);
    }
  }
}

void ReplicationManager::handle_solicit(const pbb::Solicit& s, net::Addr from,
                                        core::ProtocolContext& ctx) {
  const std::int64_t now_us = ctx.now().us;
  pbb::Message m;
  m.type = proto::wire::kMsgRepl;
  m.originator = ctx.self();
  for (const auto& [key, r] : replicas_) {
    if (key.first != s.origin) continue;
    if (s.unit_hash != 0 && key.second != s.unit_hash) continue;
    // Never offer past the staleness bound: a bound-breaking replica is
    // worse than a cold start (it resurrects expired soft state).
    if (now_us - r.at_us > params_.staleness_bound.count()) continue;
    pbb::Checkpoint cp;
    cp.origin = s.origin;
    cp.unit_hash = key.second;
    cp.epoch = r.epoch;
    cp.at_us = r.at_us;
    cp.blob = r.blob;
    m.tlvs.push_back(pbb::encode_checkpoint(cp));
    journal(obs::RecordKind::kRehydrate, key.second,
            static_cast<std::uint64_t>(obs::RehydratePhase::kOffer), r.epoch,
            from);
    kit_.metrics().counter("repl.offers").inc();
  }
  if (m.tlvs.empty()) return;
  ev::Event e(std::string_view{"REPL_OUT"});
  e.set_msg(std::move(m));
  e.set_int(core::attrs::kUnicastTo, from);
  ctx.emit(std::move(e));
}

void ReplicationManager::apply_offer(const pbb::Checkpoint& cp,
                                     net::Addr from) {
  if (cp.delta) return;  // offers are always full snapshots

  // Map the hash back to a deployed unit we actually solicited for.
  std::string unit;
  for (const auto& [name, epoch] : rehydrating_) {
    if (obs::fnv1a_str(name) == cp.unit_hash) {
      unit = name;
      break;
    }
  }
  if (unit.empty()) return;  // unsolicited or already republishing

  const bool virgin = rehydrate_virgin_.count(unit) > 0;
  if (!virgin && !epoch_newer(cp.epoch, rehydrating_[unit])) {
    journal(obs::RecordKind::kRehydrate, cp.unit_hash,
            static_cast<std::uint64_t>(obs::RehydratePhase::kStaleReject),
            cp.epoch, from);
    kit_.metrics().counter("repl.offer_rejects").inc();
    return;
  }

  core::ManetProtocolCf* proto = kit_.protocol(unit);
  core::IStateCodec* codec = codec_of(unit);
  if (proto == nullptr || codec == nullptr) return;

  // stop -> decode -> start: restarting the unit re-seeds the soft-state
  // expiry sets from the *restored* tables, so peer-held deadlines are
  // re-armed instead of resurrecting state that should lapse.
  proto->stop();
  const bool ok = codec->decode_state(cp.blob);
  proto->start();
  if (!ok) {
    journal(obs::RecordKind::kRehydrate, cp.unit_hash,
            static_cast<std::uint64_t>(obs::RehydratePhase::kStaleReject),
            cp.epoch, from);
    kit_.metrics().counter("repl.offer_rejects").inc();
    return;
  }
  reinstall_routes(*proto);

  rehydrating_[unit] = cp.epoch;
  rehydrate_virgin_.erase(unit);
  // Resume publishing from the restored epoch so peers' replicas stay in
  // serial order (the next changed snapshot becomes epoch + 1).
  PublishState& ps = publish_[unit];
  ps.epoch = cp.epoch;
  ps.last_pub = cp.blob;

  journal(obs::RecordKind::kRehydrate, cp.unit_hash,
          static_cast<std::uint64_t>(obs::RehydratePhase::kApply), cp.epoch,
          from);
  kit_.metrics().counter("repl.rehydrates").inc();
  kit_.metrics().counter("repl.rehydrate_bytes").inc(cp.blob.size());
}

void ReplicationManager::on_crash_wipe() {
  staged_.clear();
  if (beacon_timer_ != nullptr) beacon_timer_->cancel();
  publish_.clear();
  replicas_.clear();
  rehydrating_.clear();
  rehydrate_virgin_.clear();
  last_spread_us_ = -1;
  journal(obs::RecordKind::kRehydrate, /*unit_hash=*/0,
          static_cast<std::uint64_t>(obs::RehydratePhase::kColdStart), 0, 0);
  kit_.metrics().counter("repl.crash_wipes").inc();
}

std::string ReplicationManager::describe() const {
  std::ostringstream os;
  os << "strategy: " << core::to_string(strategy_)
     << " replicas: " << replicas_.size() << " staged: " << staged_.size();
  return os.str();
}

void register_replication(core::Manetkit& kit, ReplicationParams params) {
  kit.register_protocol(
      "replication", /*layer=*/5, [params](core::Manetkit& k) {
        k.system().register_message(proto::wire::kMsgRepl, "REPL");
        auto cf = std::make_unique<core::ManetProtocolCf>(
            k.kernel(), "replication", k.scheduler(), k.self(),
            &k.system().sys_state());
        auto mgr = std::make_unique<ReplicationManager>(k, params);
        ReplicationManager* raw = mgr.get();
        cf->set_state(std::move(mgr));
        raw->attach(cf.get());
        cf->add_handler(std::make_unique<ReplHandler>(raw));
        cf->add_source(std::make_unique<CheckpointPublisher>(raw));
        cf->declare_events({"REPL_IN"}, {"REPL_OUT"});
        return cf;
      });
}

ReplicationManager* replication_state(core::ManetProtocolCf& cf) {
  return dynamic_cast<ReplicationManager*>(cf.state_component());
}

}  // namespace mk::repl
