// Replicated S elements (ISSUE 10): peer checkpointing so nodes survive
// crashes, not just component faults.
//
// The supervision layer (ISSUE 5) recovers a *component* fault by restarting
// the unit in place, optionally carrying its S element — the state never
// left the node. A node *crash* loses the S elements themselves, so a
// restarted node used to cold-start: empty tables, reset sequence numbers,
// and a full reconvergence round-trip before it routes again.
//
// This CF closes that gap by replicating S elements to 1-hop neighbours:
//
//   * each unit whose S element implements core::IStateCodec is snapshotted
//     periodically into a checkpoint blob stamped with an RFC-1982-style
//     epoch (policy-layer serial arithmetic: wraps are handled, and a peer
//     past the staleness bound accepts an "older" epoch — the origin has
//     cold-started and restarted its counter);
//   * checkpoints piggyback as packet-level TLVs on outbound broadcast
//     control traffic (HELLO/TC/RREQ floods) — zero extra frames in steady
//     state; a short beacon grace period sends a dedicated REPL message only
//     when nothing broadcast in time;
//   * peers keep the freshest full blob per (origin, unit); under
//     hot-standby the origin publishes prefix/suffix deltas at a faster
//     cadence and peers patch their stored blob;
//   * after a crash/restart fault the node broadcasts a solicit; peers
//     unicast their replicas back as offers, and the freshest one is decoded
//     straight into the restarted S element (stop -> decode -> start, so the
//     soft-state seed functions re-arm expiry from the restored tables) and
//     its kernel routes are reinstalled.
//
// The strategy (none / checkpoint / hot-standby) is runtime-switchable via
// core::ReplicationControl, which the policy engine flips from context rules
// like any other adaptation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "core/state_codec.hpp"
#include "packetbb/checkpoint.hpp"
#include "util/time.hpp"
#include "util/timer.hpp"

namespace mk::repl {

struct ReplicationParams {
  /// Full-snapshot cadence under kCheckpoint.
  Duration checkpoint_interval = sec(2);
  /// Delta cadence under kHotStandby.
  Duration standby_interval = msec(500);
  /// Every Nth hot-standby publish is a full snapshot (delta resync anchor).
  int full_every = 8;
  /// If nothing broadcast within this grace after staging, send a dedicated
  /// REPL beacon so checkpoints still spread on a quiet node.
  Duration beacon_grace = msec(300);
  /// A stored replica older than this is superseded by *any* incoming
  /// checkpoint regardless of epoch order (origin cold-started and reset its
  /// epoch counter), and is never offered for rehydration. Matches the
  /// soft-state discipline: holding time bounds staleness.
  Duration staleness_bound = sec(15);
  core::ReplicationStrategy initial = core::ReplicationStrategy::kCheckpoint;
};

/// The replication CF's S element and the node's core::ReplicationControl.
/// Holds the peer-replica store, the per-unit checkpoint epochs, and the
/// staged TLVs awaiting piggyback.
class ReplicationManager final : public oc::Component,
                                 public core::IState,
                                 public core::ReplicationControl {
 public:
  ReplicationManager(core::Manetkit& kit, ReplicationParams params);
  ~ReplicationManager() override;

  // -- core::ReplicationControl -----------------------------------------------
  core::ReplicationStrategy strategy() const override { return strategy_; }
  void set_strategy(core::ReplicationStrategy s) override;
  std::size_t replicas_held() const override { return replicas_.size(); }
  std::int64_t own_replica_age_us() const override;
  bool request_rehydrate(const std::string& unit) override;

  // -- crash model (testbed fault plan) ----------------------------------------
  /// Wipes everything a real crash would lose: staged checkpoints, publish
  /// epochs, and the replicas this node held for others. Journals
  /// kRehydrate/kColdStart for the whole node.
  void on_crash_wipe();

  /// Current publish interval (strategy-dependent); the publisher source
  /// re-reads it every fire, so a strategy switch changes cadence at the
  /// next tick without re-arming anything.
  Duration publish_interval() const;

  // -- internal entry points (publisher source / REPL handler) -----------------
  void attach(core::ManetProtocolCf* cf);
  void publish_checkpoints(core::ProtocolContext& ctx);
  void handle_repl_message(const ev::Event& event, core::ProtocolContext& ctx);

  std::string describe() const override;

 private:
  struct Replica {
    std::uint16_t epoch = 0;
    std::int64_t at_us = 0;
    std::vector<std::uint8_t> blob;
  };
  struct PublishState {
    std::uint16_t epoch = 0;
    int publishes = 0;  // total publish ticks (every full_every-th anchors)
    /// Blob as of the last publish — the base the next hot-standby delta is
    /// computed against (peers patch their stored copy of exactly this).
    std::vector<std::uint8_t> last_pub;
  };

  /// Deployed units (sorted by name) whose S element speaks IStateCodec,
  /// excluding this CF itself.
  std::vector<std::pair<std::string, core::IStateCodec*>> codec_units() const;
  core::IStateCodec* codec_of(const std::string& unit) const;

  void stage(pbb::Tlv tlv, std::uint64_t unit_hash);
  void provide_packet_tlvs(std::vector<pbb::Tlv>& out);
  void beacon_fire();
  void accept_checkpoint(const pbb::Checkpoint& cp, net::Addr from);
  void handle_solicit(const pbb::Solicit& s, net::Addr from,
                      core::ProtocolContext& ctx);
  void apply_offer(const pbb::Checkpoint& cp, net::Addr from);
  void journal(obs::RecordKind kind, std::uint64_t unit_hash,
               std::uint64_t phase, std::uint16_t epoch, std::uint64_t c);

  core::Manetkit& kit_;
  ReplicationParams params_;
  core::ManetProtocolCf* cf_ = nullptr;
  core::ReplicationStrategy strategy_;

  std::map<std::pair<net::Addr, std::uint64_t>, Replica> replicas_;
  std::map<std::string, PublishState> publish_;   // by unit name
  std::map<std::uint64_t, pbb::Tlv> staged_;      // by unit hash; latest wins
  std::unique_ptr<OneShotTimer> beacon_timer_;
  std::int64_t last_spread_us_ = -1;  // last piggyback/beacon carrying our state

  /// Units soliciting offers, with the freshest epoch applied so far (only
  /// strictly fresher offers are applied); cleared at the next own publish.
  std::map<std::string, std::uint16_t> rehydrating_;
  std::set<std::string> rehydrate_virgin_;  // no offer applied yet
};

/// Registers the "replication" utility CF (layer 5, below the routing
/// protocols). Deploying it installs the REPL message binding, the SystemCf
/// packet-TLV piggyback hooks, and publishes core::ReplicationControl on the
/// facade.
void register_replication(core::Manetkit& kit, ReplicationParams params = {});

/// The deployed replication CF's manager (null if `cf` is not one).
ReplicationManager* replication_state(core::ManetProtocolCf& cf);

}  // namespace mk::repl
