// The CFS (Control–Forward–State) pattern building blocks (§3, Fig. 1):
//
//  * CfsUnit          — what the Framework Manager composes: anything with an
//                       event tuple and a deliver() entry point (ManetProtocol
//                       CF instances and the System CF).
//  * EventHandler     — plug-in processing logic of a protocol's C element;
//                       handlers run atomically (inside the owning CF's
//                       critical section) and may emit further events.
//  * EventSource      — timer-driven emitters (HELLO generation, TC
//                       diffusion, expiry sweeps).
//  * ProtocolContext  — the services handlers/sources reach: event emission,
//                       the scheduler, the System CF's S element, and the
//                       protocol's own S element.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ifaces.hpp"
#include "events/event.hpp"
#include "obs/metrics.hpp"
#include "opencom/component.hpp"
#include "util/scheduler.hpp"

namespace mk::core {

class CfsUnit {
 public:
  virtual ~CfsUnit() = default;

  virtual const std::string& unit_name() const = 0;

  /// Protocol category ("reactive", "proactive", ...) used by
  /// deployment-level integrity rules; empty for utility units.
  virtual std::string_view category() const { return {}; }

  /// The declarative <required-events, provided-events> contract.
  virtual const ev::EventTuple& tuple() const = 0;

  /// Delivers an event into the unit (runs its handlers / forwarding).
  virtual void deliver(const ev::Event& event) = 0;
};

class ManetProtocolCf;

/// Execution context handed to handlers and sources.
class ProtocolContext {
 public:
  ProtocolContext(ManetProtocolCf& proto, Scheduler& sched, net::Addr self,
                  ISysState* sys)
      : proto_(proto), sched_(sched), self_(self), sys_(sys) {}

  /// Emits an event from the owning protocol; it is routed by the Framework
  /// Manager per the current event-tuple bindings.
  void emit(ev::Event event);

  Scheduler& scheduler() { return sched_; }
  TimePoint now() const { return sched_.now(); }

  /// This node's address.
  net::Addr self() const { return self_; }

  /// The System CF's S element (kernel routes, devices). May be null in
  /// handler unit tests.
  ISysState* sys() { return sys_; }

  /// The owning protocol's S element (null if none installed).
  oc::Component* state();

  /// Typed access to the protocol's S element interface.
  template <typename T>
  T* state_as(std::string_view iface) {
    oc::Component* s = state();
    return s == nullptr ? nullptr : s->interface_as<T>(iface);
  }

  ManetProtocolCf& protocol() { return proto_; }

  /// The owning protocol's metrics registry (per-node when deployed through
  /// Manetkit, a private fallback otherwise). Handlers cache the Counter&
  /// they need — counter() interns once, then the increment is one relaxed
  /// atomic add.
  obs::MetricsRegistry& metrics();

 private:
  ManetProtocolCf& proto_;
  Scheduler& sched_;
  net::Addr self_;
  ISysState* sys_;
};

/// Plug-in event-processing component (the protocol logic lives here).
class EventHandler : public oc::Component {
 public:
  EventHandler(std::string type_name, const std::vector<std::string>& handled);

  const std::set<ev::EventTypeId>& handles() const { return handles_; }

  /// Processes one event. Guaranteed atomic w.r.t. other handlers of the
  /// same protocol and w.r.t. reconfiguration.
  virtual void handle(const ev::Event& event, ProtocolContext& ctx) = 0;

 protected:
  std::set<ev::EventTypeId> handles_;
};

/// Plug-in event source, typically driven by a PeriodicTimer.
class EventSource : public oc::Component {
 public:
  explicit EventSource(std::string type_name)
      : oc::Component(std::move(type_name)) {}

  virtual void start(ProtocolContext& ctx) = 0;
  virtual void stop() = 0;
};

}  // namespace mk::core
