#include "core/executor.hpp"

#include "core/cfs.hpp"
#include "util/assert.hpp"

namespace mk::core {

void Executor::deliver(CfsUnit& target, const ev::Event& event) {
  auto* g = guard_.load(std::memory_order_acquire);
  if (g != nullptr) {
    g->deliver(target, event);
  } else {
    target.deliver(event);
  }
}

void InlineExecutor::dispatch(CfsUnit& target, ev::Event event) {
  deliver(target, event);
}

PoolExecutor::PoolExecutor(std::size_t threads, std::size_t batch)
    : batch_(batch), pool_(threads) {
  MK_ASSERT(batch_ >= 1);
}

PoolExecutor::~PoolExecutor() { drain(); }

void PoolExecutor::dispatch(CfsUnit& target, ev::Event event) {
  std::scoped_lock lock(mutex_);
  buffer_.push_back(Pending{&target, std::move(event)});
  if (buffer_.size() >= batch_) flush_locked();
}

void PoolExecutor::flush_locked() {
  if (buffer_.empty()) return;
  // Swap the accumulated buffer into a recycled batch: the displaced (warm)
  // vector becomes the next accumulation buffer, so steady-state flushes
  // allocate nothing. The [this, raw pointer] capture fits std::function's
  // small-buffer slot, avoiding the old shared_ptr control block per flush.
  Batch* b;
  if (!free_batches_.empty()) {
    b = free_batches_.back();
    free_batches_.pop_back();
  } else {
    batches_.push_back(std::make_unique<Batch>());
    b = batches_.back().get();
  }
  b->items.swap(buffer_);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit([this, b] { run_batch(b); });
}

void PoolExecutor::run_batch(Batch* b) {
  for (auto& p : b->items) {
    deliver(*p.target, p.event);
  }
  b->items.clear();  // destroys events outside the lock; capacity survives
  {
    std::scoped_lock lock(mutex_);
    free_batches_.push_back(b);
  }
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::scoped_lock lk(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void PoolExecutor::drain() {
  {
    std::scoped_lock lock(mutex_);
    flush_locked();
  }
  std::unique_lock lk(idle_mutex_);
  idle_cv_.wait(lk, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

DedicatedQueue::DedicatedQueue(CfsUnit& unit)
    : unit_(unit), thread_([this] { run(); }) {}

DedicatedQueue::~DedicatedQueue() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void DedicatedQueue::enqueue(ev::Event event) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.push(std::move(event))) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void DedicatedQueue::drain() {
  std::unique_lock lk(idle_mutex_);
  idle_cv_.wait(lk, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void DedicatedQueue::run() {
  // Reused across rounds: a busy queue drains up to kMaxBatch events per
  // lock round-trip into warm capacity, delivered strictly front-to-back.
  std::vector<ev::Event> batch;
  for (;;) {
    batch.clear();
    std::size_t n = queue_.pop_batch(batch, kMaxBatch);
    if (n == 0) return;  // closed and drained
    for (ev::Event& event : batch) {
      if (auto* g = guard_.load(std::memory_order_acquire)) {
        g->deliver(unit_, event);
      } else {
        unit_.deliver(event);
      }
    }
    if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      std::scoped_lock lk(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
}

}  // namespace mk::core
