// Shared attribute keys used on Events by the built-in CFs and protocols.
#pragma once

#include <string>

namespace mk::core::attrs {

/// On *_OUT events: unicast link-level destination; absent = broadcast.
inline const std::string kUnicastTo = "unicast_to";

/// Destination address a route refers to (NO_ROUTE, ROUTE_FOUND, ...).
inline const std::string kDest = "dest";

/// Source address of the data packet that triggered the event.
inline const std::string kSrc = "src";

/// Next hop involved (SEND_ROUTE_ERR: the broken next hop).
inline const std::string kNextHop = "next_hop";

/// POWER_STATUS: battery level in [0,1].
inline const std::string kBattery = "battery";

/// NHOOD_CHANGE: the neighbour address affected and whether it is now up.
inline const std::string kNeighbor = "neighbor";
inline const std::string kUp = "up";

/// LINK_QUALITY: neighbour address + quality estimate in [0,1].
inline const std::string kQuality = "quality";

}  // namespace mk::core::attrs
