// State serialization for S-element replication (ISSUE 10).
//
// A protocol's S element implements IStateCodec so the replication CF can
// snapshot it into a checkpoint blob that a 1-hop peer stores and — after a
// crash/restart fault — hands back to rehydrate the restarted unit. The
// format is owned by each protocol (a versioned byte string produced with
// the helpers below); the replication layer treats blobs as opaque.
//
// Codec discipline:
//  * encode only *protocol* state (tables, sequence numbers) — never derived
//    artefacts that a restart recomputes (installed kernel routes, cached
//    scratch) and never transient negotiation state (pending discoveries,
//    whose retry timers died with the crashed node);
//  * absolute sim-time deadlines are encoded as-is — every node in a world
//    shares one scheduler clock, so a peer-held deadline is directly
//    meaningful to the restarted node;
//  * iteration must be over ordered containers, so the same state always
//    encodes to the same bytes (checkpoint blobs are journal-digested).
//
// decode_state() must be fuzz-safe: a malformed blob returns false and
// leaves the element in a consistent (possibly emptied) state, exactly like
// the PacketBB parser discipline — replicas arrive off the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "opencom/interface.hpp"

namespace mk::core {

/// Provided as "IStateCodec" by replication-capable S elements.
struct IStateCodec : oc::Interface {
  /// Appends a self-contained snapshot of this S element to `out`.
  virtual void encode_state(std::vector<std::uint8_t>& out) const = 0;

  /// Replaces this element's contents from an encode_state() blob. Returns
  /// false on malformed input (state is left consistent but unspecified).
  virtual bool decode_state(std::span<const std::uint8_t> blob) = 0;

  /// Reverts the element to freshly-constructed contents (the crash model's
  /// cold start: tables emptied, sequence counters reset).
  virtual void reset_state() = 0;
};

/// Big-endian byte helpers shared by the protocol codecs and the checkpoint
/// TLV framing (same byte order as the PacketBB wire format).
namespace codec {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline bool get_u8(std::span<const std::uint8_t> in, std::size_t& off,
                   std::uint8_t& v) {
  if (off + 1 > in.size()) return false;
  v = in[off++];
  return true;
}

inline bool get_u16(std::span<const std::uint8_t> in, std::size_t& off,
                    std::uint16_t& v) {
  if (off + 2 > in.size()) return false;
  v = static_cast<std::uint16_t>((in[off] << 8) | in[off + 1]);
  off += 2;
  return true;
}

inline bool get_u32(std::span<const std::uint8_t> in, std::size_t& off,
                    std::uint32_t& v) {
  std::uint16_t hi = 0, lo = 0;
  if (!get_u16(in, off, hi) || !get_u16(in, off, lo)) return false;
  v = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}

inline bool get_u64(std::span<const std::uint8_t> in, std::size_t& off,
                    std::uint64_t& v) {
  std::uint32_t hi = 0, lo = 0;
  if (!get_u32(in, off, hi) || !get_u32(in, off, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

inline bool get_i64(std::span<const std::uint8_t> in, std::size_t& off,
                    std::int64_t& v) {
  std::uint64_t u = 0;
  if (!get_u64(in, off, u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

}  // namespace codec

}  // namespace mk::core
