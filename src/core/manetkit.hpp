// The MANETKit facade: one instance per node, owning the OpenCom kernel, the
// Framework Manager, the System CF and every deployed ManetProtocol CF.
//
// Protocols are registered as named builders (with a layer and a category)
// and can then be dynamically deployed — serially and simultaneously — and
// undeployed or switched at runtime (§4.5). Deployment-level integrity rules
// (e.g. at most one reactive protocol) are enforced by the Framework
// Manager at registration time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/framework_manager.hpp"
#include "core/manet_protocol.hpp"
#include "core/system_cf.hpp"
#include "net/node.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "opencom/kernel.hpp"

namespace mk::core {

/// Node-health surface published by the supervision layer (ISSUE 5). The
/// facade only *holds* the pointer: the policy engine reads it when building
/// a ContextView, so escalated component failures become an adaptation
/// trigger like battery level or neighbour churn.
class HealthProvider {
 public:
  virtual ~HealthProvider() = default;
  /// Units currently routed around by the circuit breaker.
  virtual std::vector<std::string> quarantined_units() const = 0;
  /// Units whose recovery ladder is exhausted (fallen back or escalated).
  virtual std::vector<std::string> failed_units() const = 0;
};

/// Replication strategy for a node's S elements (ISSUE 10). Runtime-
/// switchable through ReplicationControl (the policy engine flips it from
/// context rules, like any other adaptation).
enum class ReplicationStrategy {
  kNone,        ///< no checkpoints; a crash cold-starts
  kCheckpoint,  ///< periodic full snapshots piggybacked to 1-hop peers
  kHotStandby,  ///< continuous deltas at a faster cadence
};

inline const char* to_string(ReplicationStrategy s) {
  switch (s) {
    case ReplicationStrategy::kNone: return "none";
    case ReplicationStrategy::kCheckpoint: return "checkpoint";
    case ReplicationStrategy::kHotStandby: return "hot-standby";
  }
  return "?";
}

/// Control surface of the replication CF (ISSUE 10), published on the facade
/// the same way HealthProvider is: the facade only holds the pointer, so the
/// supervision and policy layers can consult peer replicas without linking
/// the replication library.
class ReplicationControl {
 public:
  virtual ~ReplicationControl() = default;

  virtual ReplicationStrategy strategy() const = 0;
  virtual void set_strategy(ReplicationStrategy s) = 0;

  /// Replicas this node holds on behalf of its peers.
  virtual std::size_t replicas_held() const = 0;

  /// Age (µs) of the freshest peer-held replica of this node's own state
  /// that this node knows was acknowledged-by-piggyback; -1 when none. The
  /// policy engine reads this as a context signal.
  virtual std::int64_t own_replica_age_us() const = 0;

  /// Broadcasts a solicit for `unit`'s state ("" = every unit) and applies
  /// the freshest offer when it arrives. Returns true if the solicit was
  /// sent (peers may still hold nothing).
  virtual bool request_rehydrate(const std::string& unit) = 0;
};

class Manetkit {
 public:
  explicit Manetkit(net::SimNode& node);
  ~Manetkit();

  Manetkit(const Manetkit&) = delete;
  Manetkit& operator=(const Manetkit&) = delete;

  oc::Kernel& kernel() { return kernel_; }
  FrameworkManager& manager() { return *manager_; }
  SystemCf& system() { return *system_; }
  net::SimNode& node() { return node_; }
  Scheduler& scheduler() { return node_.scheduler(); }
  net::Addr self() const { return node_.addr(); }

  // -- protocol registry -----------------------------------------------------
  /// A builder creates a fully-composed ManetProtocol CF instance (handlers,
  /// sources, S/F elements, event tuple) and performs any System CF setup it
  /// needs (message registration, NetLink, sensors). It may deploy() other
  /// protocols it depends on (e.g. OLSR deploys MPR).
  using Builder = std::function<std::unique_ptr<ManetProtocolCf>(Manetkit&)>;

  void register_protocol(const std::string& name, int layer, Builder builder,
                         std::string category = "");
  bool has_builder(const std::string& name) const;
  std::vector<std::string> available_protocols() const;

  // -- dynamic deployment ------------------------------------------------------
  /// Deploys (builds, registers, starts) a protocol. Idempotent: returns the
  /// existing instance if already deployed — which is how co-deployed
  /// protocols share a common substrate CF such as MPR.
  ManetProtocolCf* deploy(const std::string& name);

  bool is_deployed(const std::string& name) const;
  ManetProtocolCf* protocol(const std::string& name) const;
  std::vector<std::string> deployed() const;

  /// Stops, deregisters and destroys a deployed protocol.
  void undeploy(const std::string& name);

  /// Serial redeployment with optional state carry-over (§4.5): stops and
  /// removes `from`, deploys `to`, and — if `carry_state` — moves `from`'s S
  /// element into the new instance before starting it. Implemented on top of
  /// replace_protocol with a single attempt; if deploying `to` fails the
  /// prior protocol is rolled back (state restored) and the failure is
  /// re-thrown as std::logic_error.
  ManetProtocolCf* switch_protocol(const std::string& from,
                                   const std::string& to, bool carry_state);

  // -- hardened replacement ----------------------------------------------------
  /// Tuning for replace_protocol. Backoff doubles per retry; in simulated
  /// runs it is *recorded* (metrics "fm.replace_backoff_us", kReconfig
  /// kRetry journal records) rather than slept, keeping the call synchronous
  /// while leaving the schedule fully observable.
  struct ReplaceOptions {
    int max_attempts = 3;
    Duration initial_backoff = msec(10);
    bool carry_state = true;
  };

  struct ReplaceReport {
    ManetProtocolCf* instance = nullptr;  // active protocol after the call
    bool committed = false;  // true: `to` is live; false: rolled back to `from`
    int attempts = 0;        // deploy attempts made for `to`
    std::string error;       // last failure when not committed
  };

  /// Hardened protocol replacement: quiesces the Framework Manager (drains
  /// in-flight dispatches), detaches `from` carrying its S element, then
  /// deploys `to` with retry-with-backoff on transient failure. If every
  /// attempt fails, rolls back — redeploys `from` and restores the carried
  /// state — so the prior binding graph is reinstated and the node is never
  /// left protocol-less. Every phase is journaled (kReconfig) and counted
  /// ("fm.replace_*" metrics). Throws std::logic_error only if `from` is not
  /// deployed or the rollback itself fails (no builder for `from`).
  ReplaceReport replace_protocol(const std::string& from, const std::string& to,
                                 ReplaceOptions opts);
  ReplaceReport replace_protocol(const std::string& from,
                                 const std::string& to) {
    return replace_protocol(from, to, ReplaceOptions{});
  }

  int layer_of(const std::string& name) const;
  /// Registered category for a protocol name ("" when unknown/uncategorised).
  std::string category_of(const std::string& name) const;

  // -- supervision (ISSUE 5) ---------------------------------------------------
  /// Publishes (or clears, with nullptr) the node's health surface. Owned by
  /// the caller (normally the node's Supervisor), read by the policy engine.
  void set_health_provider(HealthProvider* provider) { health_ = provider; }
  HealthProvider* health_provider() const { return health_; }

  // -- replication (ISSUE 10) ---------------------------------------------------
  /// Publishes (or clears) the node's replication control surface. Owned by
  /// the replication CF's S element; read by supervision (rehydrate before
  /// cold start) and the policy engine (strategy switching).
  void set_replication(ReplicationControl* control) { replication_ = control; }
  ReplicationControl* replication() const { return replication_; }

  // -- observability -----------------------------------------------------------
  /// This node's metrics registry: the Framework Manager, System CF and every
  /// protocol deployed through this facade record their counters here.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Attaches a trace journal to the whole node: event dispatches and CF
  /// (un)binds (Framework Manager), route changes (kernel table) and — when
  /// the journal is shared with the medium — frame traffic all land in one
  /// record stream. Null detaches.
  void set_journal(obs::Journal* journal);
  obs::Journal* journal() const { return journal_; }

 private:
  struct ProtoSpec {
    int layer = 0;
    Builder builder;
    std::string category;
  };
  struct DeployedProto {
    std::unique_ptr<ManetProtocolCf> instance;
    int layer = 0;
  };

  void journal_reconfig(obs::ReconfigPhase phase, const std::string& from,
                        const std::string& to, std::uint64_t extra = 0);

  net::SimNode& node_;
  oc::Kernel kernel_;
  obs::MetricsRegistry metrics_;
  obs::Journal* journal_ = nullptr;
  std::unique_ptr<FrameworkManager> manager_;
  std::unique_ptr<SystemCf> system_;
  std::map<std::string, ProtoSpec> specs_;
  std::map<std::string, DeployedProto> deployed_;
  HealthProvider* health_ = nullptr;
  ReplicationControl* replication_ = nullptr;
};

}  // namespace mk::core
