// The generic ManetProtocol CF (§4.2, Fig. 3): the component framework that
// is instantiated and tailored for each ad-hoc routing protocol.
//
// Structure (all policed by integrity rules):
//   ManetProtocolCf  (outer CF, a CfsUnit)
//     ├── ManetControlCf  (nested CF: Control element + Event Handlers +
//     │                    Event Sources + the Event Registry)
//     ├── "State"    — at most one S component (protocol state)
//     └── "Forward"  — at most one F component (forwarding strategy)
//
// deliver() runs the unit's handlers inside the CF lock, giving the paper's
// guarantee that user-provided parts of a ManetProtocol run as a single
// critical section: handlers execute atomically, and reconfiguration (which
// also takes the lock) only happens when the unit is quiescent.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cfs.hpp"
#include "core/executor.hpp"
#include "core/ifaces.hpp"
#include "events/event.hpp"
#include "obs/metrics.hpp"
#include "opencom/cf.hpp"

namespace mk::core {

class FrameworkManager;

/// Nested CF holding the C element machinery: plug-in Event Handlers and
/// Event Sources, plus the Event Registry mapping event types to the
/// handlers subscribed to them.
class ManetControlCf : public oc::ComponentFramework {
 public:
  explicit ManetControlCf(oc::Kernel& kernel);

  /// Rebuilds the Event Registry from current members. Called by the owning
  /// protocol after any handler mutation.
  void rebuild_registry();

  /// Handlers subscribed to `type` (registry lookup).
  const std::vector<EventHandler*>& handlers_for(ev::EventTypeId type) const;

  std::vector<EventSource*> sources() const;
  std::vector<EventHandler*> handlers() const;

 private:
  std::map<ev::EventTypeId, std::vector<EventHandler*>> registry_;
};

class ManetProtocolCf : public oc::ComponentFramework, public CfsUnit {
 public:
  /// `sys` may be null for handler-level unit tests.
  ManetProtocolCf(oc::Kernel& kernel, std::string proto_name, Scheduler& sched,
                  net::Addr self, ISysState* sys);
  ~ManetProtocolCf() override;

  // -- CfsUnit ----------------------------------------------------------------
  const std::string& unit_name() const override { return proto_name_; }
  /// Renames the unit (used when one protocol's composition is reused as the
  /// basis of another, e.g. the zone-hybrid built from DYMO).
  void set_unit_name(std::string name) {
    proto_name_ = std::move(name);
    set_instance_name(proto_name_);
  }
  std::string_view category() const override { return category_; }
  void set_category(std::string category) { category_ = std::move(category); }
  const ev::EventTuple& tuple() const override { return tuple_; }
  void deliver(const ev::Event& event) override;

  // -- event tuple (declarative composition) -----------------------------------
  /// Sets the <required, provided> tuple; if the unit is registered with a
  /// Framework Manager this triggers automatic re-binding (§4.5's first
  /// reconfiguration-enactment method).
  void set_tuple(ev::EventTuple tuple);

  /// Convenience builder from names; `exclusive` must be a subset of
  /// `required`.
  void declare_events(const std::vector<std::string>& required,
                      const std::vector<std::string>& provided,
                      const std::vector<std::string>& exclusive = {});

  // -- composition helpers ------------------------------------------------------
  /// Adds a handler plug-in to the nested ManetControl CF.
  oc::ComponentId add_handler(std::unique_ptr<EventHandler> handler);

  /// Replaces a handler (by instance name) with a new one; used by protocol
  /// variants (power-aware Hello Handler, multipath RE Handler, ...).
  oc::ComponentId replace_handler(std::string_view instance_name,
                                  std::unique_ptr<EventHandler> handler);

  /// Removes a handler by instance name; returns false if not found.
  bool remove_handler(std::string_view instance_name);

  oc::ComponentId add_source(std::unique_ptr<EventSource> source);

  /// Removes a source by instance name (stopping it first); returns false if
  /// not found.
  bool remove_source(std::string_view instance_name);

  /// Installs/replaces the S element.
  void set_state(std::unique_ptr<oc::Component> state);

  /// Extracts the S element for carry-over to another protocol instance
  /// (§4.5 state management). The protocol keeps running stateless until a
  /// new S element is installed.
  std::unique_ptr<oc::Component> take_state();

  /// Installs/replaces the F element.
  void set_forward(std::unique_ptr<oc::Component> forward);

  /// This protocol's S element (null if none).
  oc::Component* state_component() const;

  /// This protocol's F element's IForward (null if none).
  IForward* forward_iface() const;

  ManetControlCf& control() { return *control_; }
  ProtocolContext& context() { return ctx_; }

  // -- lifecycle ----------------------------------------------------------------
  void init();
  void start();
  void stop();
  bool running() const { return running_; }

  // -- concurrency ----------------------------------------------------------------
  /// Switches this instance to the thread-per-ManetProtocol model.
  void enable_dedicated_thread();
  void disable_dedicated_thread();
  DedicatedQueue* dedicated() { return dedicated_.get(); }

  // -- wiring (used by FrameworkManager / Manetkit) -----------------------------
  void set_manager(FrameworkManager* manager) { manager_ = manager; }
  FrameworkManager* manager() const { return manager_; }

  /// Emission entry point (ProtocolContext::emit lands here). Routed through
  /// the manager; if none is attached, the emit hook (tests) receives it.
  void emit(ev::Event event);

  using EmitHook = std::function<void(const ev::Event&)>;
  void set_emit_hook(EmitHook hook) { emit_hook_ = std::move(hook); }

  std::uint64_t events_delivered() const { return events_delivered_; }

  // -- observability ------------------------------------------------------------
  /// Re-homes this protocol's metrics (handler/source counters reached via
  /// ProtocolContext::metrics()) onto a shared per-node registry. Null
  /// reverts to the private fallback registry.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry& metrics_registry() {
    return metrics_ != nullptr ? *metrics_ : own_metrics_;
  }

 private:
  std::string proto_name_;
  std::string category_;
  ev::EventTuple tuple_;
  ManetControlCf* control_ = nullptr;  // owned as a CF member
  oc::ComponentId control_id_ = oc::kNoComponent;
  FrameworkManager* manager_ = nullptr;
  EmitHook emit_hook_;
  ProtocolContext ctx_;
  std::unique_ptr<DedicatedQueue> dedicated_;
  bool running_ = false;
  std::uint64_t events_delivered_ = 0;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* delivered_ctr_ = &own_metrics_.counter("proto.events_delivered");
};

}  // namespace mk::core
