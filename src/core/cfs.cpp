#include "core/cfs.hpp"

// ProtocolContext and EventHandler member definitions live in
// manet_protocol.cpp (they need the full ManetProtocolCf type). This TU
// exists so the header has a home in the build graph.
