#include "core/soft_state.hpp"

#include <utility>

#include "core/framework_manager.hpp"
#include "core/manet_protocol.hpp"
#include "obs/journal.hpp"
#include "util/assert.hpp"

namespace mk::core {

namespace {

// Fire callbacks capture (this, set|key) packed into 16 bytes so the
// std::function stays within the small-object buffer: per-entry arming must
// not allocate on the steady-state path.
constexpr int kKeyBits = 56;
constexpr std::uint64_t kKeyMask = (std::uint64_t{1} << kKeyBits) - 1;

}  // namespace

SoftExpiry::SoftExpiry() : EventSource("core.SoftExpiry") {
  set_instance_name("SoftExpiry");
  provide("ISoftExpiry", this);
}

void SoftExpiry::start(ProtocolContext& ctx) {
  ctx_ = &ctx;
  // Re-arm deadlines for state carried across a supervised restart: the
  // rebuilt source starts empty while the S element may not, and entries
  // nobody re-arms would regress to the never-expires bug.
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (!sets_[i].seed) continue;
    const auto id = static_cast<SetId>(i);
    for (std::uint64_t key : sets_[i].seed()) touch(id, key);
  }
}

void SoftExpiry::stop() {
  if (ctx_ != nullptr) {
    for (Set& set : sets_) {
      for (auto& [key, entry] : set.entries) {
        ctx_->scheduler().cancel(entry.timer);
      }
      set.entries.clear();
    }
  }
  ctx_ = nullptr;
}

SoftExpiry::SetId SoftExpiry::define_set(std::string name, Duration hold,
                                         LossFn on_expire, SeedFn seed) {
  MK_ASSERT(hold.count() > 0);
  MK_ASSERT(on_expire != nullptr);
  MK_ASSERT(sets_.size() < 255, "too many soft-state sets");
  Set set;
  set.name = std::move(name);
  set.name_hash = obs::fnv1a_str(set.name);
  set.hold = hold;
  set.on_expire = std::move(on_expire);
  set.seed = std::move(seed);
  sets_.push_back(std::move(set));
  return static_cast<SetId>(sets_.size() - 1);
}

void SoftExpiry::arm(SetId set, std::uint64_t key, Entry& entry,
                     TimePoint at) {
  MK_ASSERT((key & ~kKeyMask) == 0, "soft-state key exceeds 56 bits");
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(set) << kKeyBits) | key;
  entry.armed_at = at;
  entry.timer = ctx_->scheduler().schedule_at(at, [this, packed] {
    fire(static_cast<SetId>(packed >> kKeyBits), packed & kKeyMask);
  });
}

void SoftExpiry::touch(SetId set, std::uint64_t key) {
  touch_at(set, key, ctx_->now() + sets_[set].hold);
}

void SoftExpiry::touch_at(SetId set, std::uint64_t key, TimePoint deadline) {
  MK_ASSERT(ctx_ != nullptr, "touch before the SoftExpiry source started");
  Entry& entry = sets_[set].entries[key];
  entry.deadline = deadline;
  if (entry.timer == kInvalidTimer) {
    arm(set, key, entry, deadline);
  } else if (deadline < entry.armed_at) {
    // Deadline moved earlier (rare): the pending timer is too late.
    ctx_->scheduler().cancel(entry.timer);
    arm(set, key, entry, deadline);
  }
  // Deadline at or beyond the pending fire: keep the timer, the fire
  // re-arms itself against the recorded deadline (lazy refresh).
}

bool SoftExpiry::drop(SetId set, std::uint64_t key) {
  auto it = sets_[set].entries.find(key);
  if (it == sets_[set].entries.end()) return false;
  if (ctx_ != nullptr) ctx_->scheduler().cancel(it->second.timer);
  sets_[set].entries.erase(it);
  return true;
}

bool SoftExpiry::contains(SetId set, std::uint64_t key) const {
  return sets_[set].entries.contains(key);
}

std::size_t SoftExpiry::size(SetId set) const {
  return sets_[set].entries.size();
}

std::size_t SoftExpiry::armed() const {
  std::size_t n = 0;
  for (const Set& set : sets_) n += set.entries.size();
  return n;
}

void SoftExpiry::fire(SetId set_id, std::uint64_t key) {
  if (ctx_ == nullptr) return;  // stopped with a timer already in flight
  Set& set = sets_[set_id];
  auto it = set.entries.find(key);
  if (it == set.entries.end()) return;
  Entry& entry = it->second;
  const TimePoint now = ctx_->now();
  if (entry.deadline > now) {
    // Refreshed since this timer was armed: chase the recorded deadline.
    arm(set_id, key, entry, entry.deadline);
    return;
  }
  set.entries.erase(it);
  FrameworkManager* manager = ctx_->protocol().manager();
  if (manager != nullptr && manager->journal() != nullptr) {
    manager->journal()->append({obs::RecordKind::kSoftExpire,
                                manager->journal_node(), now.us, set.name_hash,
                                key, set.entries.size()});
  }
  set.on_expire(key, *ctx_);
}

SoftExpiry* soft_expiry_of(ProtocolContext& ctx) {
  for (EventSource* source : ctx.protocol().control().sources()) {
    if (auto* soft = dynamic_cast<SoftExpiry*>(source)) return soft;
  }
  return nullptr;
}

}  // namespace mk::core
