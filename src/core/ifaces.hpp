// The OpenCom interface vocabulary of MANETKit's CFs (the dots and cups of
// the paper's Figs. 3–4): IControl, IForward, IState/ISysState, IPush/IPop,
// IEventSink and IContext.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "events/event.hpp"
#include "net/address.hpp"
#include "net/kernel_table.hpp"
#include "opencom/interface.hpp"

namespace mk::core {

/// Lifecycle control of a CFS unit (ManetControl's generic operations).
struct IControl : oc::Interface {
  virtual void init() = 0;
  virtual void start() = 0;
  virtual void stop() = 0;
  virtual bool running() const = 0;
};

/// Push an event into a unit (the downward/inward direction).
struct IPush : oc::Interface {
  virtual void push(const ev::Event& event) = 0;
};

/// Pop an event out of a unit (the upward/outward direction). In this
/// implementation pops are mediated by the Framework Manager's routing, so
/// IPop is the emission point handlers use.
struct IPop : oc::Interface {
  virtual void pop(ev::Event event) = 0;
};

/// Forwarding strategy of a CFS unit (the F element).
struct IForward : oc::Interface {
  /// Forwards the message carried by `event` according to this unit's
  /// strategy (e.g. System CF: transmit on the network; MPR CF: flood via
  /// multipoint relays).
  virtual void forward(const ev::Event& event) = 0;
};

/// Generic state access (the S element). Protocol-specific state interfaces
/// (IOlsrState, IDymoState, ...) derive from this.
struct IState : oc::Interface {
  virtual std::string describe() const = 0;
};

/// The System CF's S element: kernel routing table manipulation and network
/// device listing (PICA/ASL-style services).
struct ISysState : IState {
  virtual net::KernelRouteTable& kernel_table() = 0;
  virtual std::vector<std::string> list_devices() const = 0;
  virtual net::Addr local_addr() const = 0;
};

/// Polled access to node context (battery etc.). Context is also *pushed* as
/// events (POWER_STATUS, LINK_QUALITY); this interface backs the Framework
/// Manager's concentrator for values obtained by polling.
struct IContext : oc::Interface {
  virtual double battery_level() const = 0;
  virtual std::size_t neighbor_count() const = 0;
};

/// Direct-call event sink, used for fine-grained bindings inside CFs.
struct IEventSink : oc::Interface {
  virtual void on_event(const ev::Event& event) = 0;
};

}  // namespace mk::core
