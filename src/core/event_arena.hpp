// Per-process arena of recycled ev::Event objects.
//
// Steady-state dispatch passes events by value on the stack, but every place
// that needs a *heap* event — deferred delivery, cross-thread hand-off,
// batched executors, test drivers — goes through acquire_event() instead of
// make_shared. Slots are recycled through a free list under
// mem::MemBackend::kPool (poisoned 0xA5 while free, canary-checked on
// reuse), and the attr flat vector keeps its capacity across tenants, so a
// warm acquire/release cycle is allocation-free. Under kHeap the arena
// degenerates to plain make_shared — the digest-parity oracle.
//
// Unlike pbb::acquire_message, events come back *reset*: type
// kInvalidEventType, no message, no attrs (Event::reset) — an event's
// logical state is small, so there is no stale-warm contract to honour.
#pragma once

#include <cstdint>
#include <memory>

#include "events/event.hpp"

namespace mk::core {

/// A reset, recycled event (fresh heap event under MemBackend::kHeap).
std::shared_ptr<ev::Event> acquire_event(
    ev::EventTypeId type = ev::kInvalidEventType);

/// Live handles not yet returned to the arena (kPool acquires only).
std::int64_t event_arena_outstanding();

/// Frees every slot currently in the free list (test hygiene).
void event_arena_trim();

}  // namespace mk::core
