// MANETKit's pluggable concurrency models (§4.4).
//
// The models apply to events originating from *below* (the System CF); calls
// from above may always be multi-threaded. Whatever the model, a protocol's
// handlers run as a single critical section (the CF lock), so they execute
// atomically.
//
//  * kSingleThreaded      — one shepherding thread (in simulation: the sim
//                           thread) calls each interested unit in turn.
//  * kThreadPerMessage    — a worker (from a bounded pool) shepherds each
//                           event up the graph; one worker per (event,
//                           target).
//  * kThreadPerNMessages  — like thread-per-message but batches N events per
//                           worker dispatch (the paper's midway point).
//  * kThreadPerProtocol   — selected per-ManetProtocol: the instance owns a
//                           dedicated FIFO and thread; dispatch enqueues and
//                           returns immediately.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "events/event.hpp"
#include "util/queue.hpp"
#include "util/threadpool.hpp"

namespace mk::core {

class CfsUnit;

enum class ConcurrencyModel {
  kSingleThreaded,
  kThreadPerMessage,
  kThreadPerNMessages,
};

/// Interposes on the actual `target.deliver(event)` call — the supervision
/// layer's isolation boundary (ISSUE 5). Implementations MUST NOT let an
/// exception escape deliver(): from the executor's point of view a guarded
/// delivery always completes, whatever the component did inside.
class DispatchGuard {
 public:
  virtual ~DispatchGuard() = default;
  virtual void deliver(CfsUnit& target, const ev::Event& event) = 0;
};

/// Dispatch strategy for delivering events from below.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void dispatch(CfsUnit& target, ev::Event event) = 0;
  /// Blocks until previously dispatched events have been processed.
  virtual void drain() {}

  /// Installs (or clears, with nullptr) the guard wrapped around every
  /// deliver call. Atomic so pool workers can race a reconfiguring thread.
  void set_guard(DispatchGuard* guard) {
    guard_.store(guard, std::memory_order_release);
  }

 protected:
  /// The one true deliver site: unguarded fast path is a single atomic load
  /// and branch, so the unsupervised hot path pays ~nothing.
  void deliver(CfsUnit& target, const ev::Event& event);

 private:
  std::atomic<DispatchGuard*> guard_{nullptr};
};

/// Single-threaded: deliver inline on the calling thread.
class InlineExecutor final : public Executor {
 public:
  void dispatch(CfsUnit& target, ev::Event event) override;
};

/// Thread-per-message (optionally batching N messages per task). A bounded
/// pool supplies the threads; FIFO submission order is preserved by the
/// pool's single queue.
class PoolExecutor final : public Executor {
 public:
  explicit PoolExecutor(std::size_t threads, std::size_t batch = 1);
  ~PoolExecutor() override;

  void dispatch(CfsUnit& target, ev::Event event) override;
  void drain() override;

 private:
  struct Pending {
    CfsUnit* target;
    ev::Event event;
  };
  /// A submitted unit of work. Batches are recycled through free_batches_
  /// so steady-state dispatch swaps warm vectors instead of allocating a
  /// fresh one (plus its shared_ptr control block) per flush.
  struct Batch {
    std::vector<Pending> items;
  };

  void flush_locked();
  void run_batch(Batch* b);

  std::size_t batch_;
  std::mutex mutex_;
  std::vector<Pending> buffer_;
  std::vector<std::unique_ptr<Batch>> batches_;       // all ever created
  std::vector<Batch*> free_batches_;                  // recycled, guarded by mutex_
  std::atomic<std::size_t> in_flight_{0};
  std::condition_variable idle_cv_;
  std::mutex idle_mutex_;
  ThreadPool pool_;
};

/// Dedicated FIFO + thread for one protocol (thread-per-ManetProtocol).
/// The worker drains runnable events in batches (up to kMaxBatch) into a
/// scratch vector reused across rounds, so a busy queue pays one lock
/// round-trip per batch and no per-event container churn. FIFO delivery
/// order is preserved: batches are popped and replayed front-to-back.
class DedicatedQueue {
 public:
  static constexpr std::size_t kMaxBatch = 32;

  explicit DedicatedQueue(CfsUnit& unit);
  ~DedicatedQueue();

  void enqueue(ev::Event event);
  /// Blocks until the queue has been drained and the worker is idle.
  void drain();

  /// Same contract as Executor::set_guard; the Framework Manager refreshes
  /// this on every enqueue so dedicated threads honour supervision too.
  void set_guard(DispatchGuard* guard) {
    guard_.store(guard, std::memory_order_release);
  }

 private:
  void run();

  std::atomic<DispatchGuard*> guard_{nullptr};
  CfsUnit& unit_;
  BlockingQueue<ev::Event> queue_;
  std::atomic<std::size_t> pending_{0};
  std::condition_variable idle_cv_;
  std::mutex idle_mutex_;
  std::thread thread_;
};

}  // namespace mk::core
