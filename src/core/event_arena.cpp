#include "core/event_arena.hpp"

#include <mutex>

#include "util/assert.hpp"
#include "util/mem.hpp"

namespace mk::core {

namespace {

// Address-shaped poison: both halves of the canary word, recognisable in a
// debugger and asserted against in the poison/fuzz test.
constexpr pbb::Addr kPoisonAddr = 0xA5A5A5A5u;

struct Slot {
  ev::Event event;
  std::uint64_t canary = 0;
  Slot* next = nullptr;
};

struct Arena {
  std::mutex mu;
  Slot* free_head = nullptr;
  mem::PoolStats stats;

  Arena() { mem::register_pool("core.event", &stats); }
};

Arena& arena() {
  static Arena a;
  return a;
}

void release(Slot* s) noexcept {
  Arena& a = arena();
  // Poison: a stale handle sees 0xA5 addresses and no message, never the
  // recycled tenant's payload. reset() drops the message ref (returning it
  // to its own pool) and keeps the attr vector's capacity.
  s->event.reset();
  s->event.from = kPoisonAddr;
  s->event.local = kPoisonAddr;
  s->canary = mem::kPoisonCanary;
  {
    std::lock_guard lock(a.mu);
    s->next = a.free_head;
    a.free_head = s;
  }
  a.stats.outstanding.fetch_sub(1, std::memory_order_relaxed);
}

struct SlotDeleter {
  Slot* slot;
  void operator()(ev::Event*) const noexcept { release(slot); }
};

}  // namespace

std::shared_ptr<ev::Event> acquire_event(ev::EventTypeId type) {
  if (mem::backend() == MemBackend::kHeap) {
    return std::make_shared<ev::Event>(type);
  }
  Arena& a = arena();
  Slot* s;
  {
    std::lock_guard lock(a.mu);
    s = a.free_head;
    if (s != nullptr) a.free_head = s->next;
  }
  if (s != nullptr) {
    MK_ASSERT(s->canary == mem::kPoisonCanary, "event arena slot corrupted");
    s->canary = 0;
    s->next = nullptr;
    s->event.reset(type);
    a.stats.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = new Slot();
    s->event.reset(type);
    a.stats.misses.fetch_add(1, std::memory_order_relaxed);
  }
  a.stats.outstanding.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<ev::Event>(&s->event, SlotDeleter{s},
                                    mem::BlockAllocator<ev::Event>{});
}

std::int64_t event_arena_outstanding() {
  return arena().stats.outstanding.load(std::memory_order_relaxed);
}

void event_arena_trim() {
  Arena& a = arena();
  Slot* head;
  {
    std::lock_guard lock(a.mu);
    head = a.free_head;
    a.free_head = nullptr;
  }
  while (head != nullptr) {
    Slot* next = head->next;
    delete head;
    head = next;
  }
}

}  // namespace mk::core
