#include "core/framework_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/manet_protocol.hpp"
#include "util/assert.hpp"
#include "util/inline_vector.hpp"
#include "util/log.hpp"

namespace mk::core {

FrameworkManager::FrameworkManager(oc::Kernel& kernel)
    : oc::ComponentFramework(kernel, "core.FrameworkManager"),
      executor_(std::make_unique<InlineExecutor>()) {}

FrameworkManager::~FrameworkManager() = default;

void FrameworkManager::check_unit_rules(
    const std::vector<CfsUnit*>& hypothetical) const {
  for (const auto& rule : unit_rules_) {
    std::string err;
    if (!rule(hypothetical, err)) {
      throw std::logic_error("deployment rule violated: " +
                             (err.empty() ? "(no detail)" : err));
    }
  }
}

void FrameworkManager::register_unit(CfsUnit* unit, int layer) {
  MK_ASSERT(unit != nullptr);
  auto lock = quiesce();
  MK_ENSURE(!is_registered(unit), "unit already registered: " + unit->unit_name());

  std::vector<CfsUnit*> hypothetical;
  for (const auto& r : registrations_) hypothetical.push_back(r.unit);
  hypothetical.push_back(unit);
  check_unit_rules(hypothetical);

  registrations_.push_back(Registration{unit, layer, next_seq_++});
  if (auto* proto = dynamic_cast<ManetProtocolCf*>(unit)) {
    proto->set_manager(this);
  }
  if (journal_ != nullptr) {
    journal_->append({obs::RecordKind::kCfBind, journal_node_,
                      journal_clock_ != nullptr ? journal_clock_->now().us : 0,
                      obs::fnv1a_str(unit->unit_name()),
                      static_cast<std::uint64_t>(layer), 0});
  }
  rebind();
}

void FrameworkManager::deregister_unit(CfsUnit* unit) {
  auto lock = quiesce();
  auto it = std::find_if(registrations_.begin(), registrations_.end(),
                         [&](const Registration& r) { return r.unit == unit; });
  if (it == registrations_.end()) return;
  int layer = it->layer;
  registrations_.erase(it);
  if (quarantined_.erase(unit) > 0) {
    quarantined_count_.store(quarantined_.size(), std::memory_order_release);
  }
  if (auto* proto = dynamic_cast<ManetProtocolCf*>(unit)) {
    proto->set_manager(nullptr);
  }
  if (journal_ != nullptr) {
    journal_->append({obs::RecordKind::kCfUnbind, journal_node_,
                      journal_clock_ != nullptr ? journal_clock_->now().us : 0,
                      obs::fnv1a_str(unit->unit_name()),
                      static_cast<std::uint64_t>(layer), 0});
  }
  rebind();
}

std::vector<CfsUnit*> FrameworkManager::units() const {
  auto lock = quiesce();
  std::vector<CfsUnit*> out;
  out.reserve(registrations_.size());
  for (const auto& r : registrations_) out.push_back(r.unit);
  return out;
}

bool FrameworkManager::is_registered(const CfsUnit* unit) const {
  auto lock = quiesce();
  return std::any_of(registrations_.begin(), registrations_.end(),
                     [&](const Registration& r) { return r.unit == unit; });
}

void FrameworkManager::add_unit_rule(UnitRule rule) {
  MK_ASSERT(rule != nullptr);
  auto lock = quiesce();
  unit_rules_.push_back(std::move(rule));
}

void FrameworkManager::rebind() {
  auto lock = quiesce();
  routes_.clear();

  // Collect every event type any unit requires or provides. Quarantined
  // units contribute nothing: their tuples are unbound, so the chains and
  // exclusive-delivery designations below are recomputed over the survivors
  // — the breaker's "route around it" step (ISSUE 5).
  std::vector<ev::EventTypeId> all_types;
  for (const auto& r : registrations_) {
    if (quarantined_.count(r.unit) > 0) continue;
    const auto& t = r.unit->tuple();
    for (auto id : t.required) all_types.push_back(id);
    for (auto id : t.provided) all_types.push_back(id);
  }
  std::sort(all_types.begin(), all_types.end());
  all_types.erase(std::unique(all_types.begin(), all_types.end()),
                  all_types.end());

  for (ev::EventTypeId type : all_types) {
    Route route;
    for (const auto& r : registrations_) {
      if (quarantined_.count(r.unit) > 0) continue;
      const auto& t = r.unit->tuple();
      bool req = t.requires_type(type);
      bool prov = t.provides(type);
      if (req && prov) {
        route.interposers.push_back(r);
      } else if (req) {
        route.consumers.push_back(r);
        if (t.exclusive.count(type) > 0 && route.exclusive == nullptr) {
          route.exclusive = r.unit;
        }
      }
    }
    // Interposer chain: descending layer; registration order as tiebreak so
    // later-inserted variants (e.g. fish-eye) slot deterministically.
    std::sort(route.interposers.begin(), route.interposers.end(),
              [](const Registration& a, const Registration& b) {
                if (a.layer != b.layer) return a.layer > b.layer;
                return a.seq < b.seq;
              });
    routes_.emplace(type, std::move(route));
  }
}

void FrameworkManager::route(CfsUnit* emitter, ev::Event event) {
  // Stack-local, not member scratch: route() reenters (a handler's emit()
  // routes before the outer fan-out finishes). The inline capacity covers
  // any realistic co-deployment, so the common case never touches the heap.
  InlinedVector<CfsUnit*, 8> targets;
  {
    auto lock = quiesce();
    // A quarantined unit's event sources may still be winding down; their
    // emissions must not leak into the live composition.
    if (emitter != nullptr && quarantined_count_.load(std::memory_order_relaxed) != 0 &&
        quarantined_.count(emitter) > 0) {
      ++quarantine_drops_;
      if (quarantine_drop_ctr_ != nullptr) quarantine_drop_ctr_->inc();
      return;
    }
    ++events_routed_;
    if (routed_ctr_ != nullptr) routed_ctr_->inc();
    auto it = routes_.find(event.type());
    if (it != routes_.end()) {
      const Route& r = it->second;

      // Position of the emitter in the interposer chain: events always flow
      // *down* the chain (to interposers at strictly lower layers than the
      // emitter), which both orders interpositions and prevents loops.
      int emitter_layer = std::numeric_limits<int>::max();
      for (const auto& reg : registrations_) {
        if (reg.unit == emitter) {
          emitter_layer = reg.layer;
          break;
        }
      }
      const Registration* next = nullptr;
      for (const auto& interposer : r.interposers) {
        if (interposer.unit == emitter) continue;
        if (interposer.layer < emitter_layer) {
          next = &interposer;
          break;
        }
      }
      if (next != nullptr) {
        targets.push_back(next->unit);
      } else if (r.exclusive != nullptr) {
        if (r.exclusive != emitter) targets.push_back(r.exclusive);
      } else {
        for (const auto& c : r.consumers) {
          if (c.unit != emitter) targets.push_back(c.unit);
        }
      }
    }
    // Context concentrator: subscribers see every routed event of the type.
    auto range = subscribers_.equal_range(event.type());
    for (auto sit = range.first; sit != range.second; ++sit) {
      sit->second(event);
    }

    if (journal_ != nullptr) {
      // Stable hashes (type name, emitter name) rather than dense ids, so
      // digests survive interning-order differences between runs.
      journal_->append(
          {obs::RecordKind::kEventDispatch, journal_node_,
           journal_clock_ != nullptr ? journal_clock_->now().us : 0,
           ev::EventTypeRegistry::instance().stable_hash(event.type()),
           targets.size(),
           emitter != nullptr ? obs::fnv1a_str(emitter->unit_name()) : 0});
    }
  }

  // Fan-out: Event copies are cheap (the carried PacketBB message is a
  // shared immutable pointer — see events/event.hpp), so delivering to N
  // co-deployed protocols costs N shallow copies of one allocation, not N
  // deep copies. The last target takes the event by move.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i + 1 == targets.size()) {
      dispatch(*targets[i], std::move(event));
    } else {
      dispatch(*targets[i], event);
    }
  }
}

void FrameworkManager::set_journal(obs::Journal* journal, std::uint32_t node,
                                   Scheduler* clock) {
  auto lock = quiesce();
  journal_ = journal;
  journal_node_ = node;
  journal_clock_ = clock;
}

void FrameworkManager::set_metrics(obs::MetricsRegistry* metrics) {
  auto lock = quiesce();
  routed_ctr_ = metrics != nullptr ? &metrics->counter("fm.events_routed")
                                   : nullptr;
  dispatch_ctr_ = metrics != nullptr ? &metrics->counter("fm.dispatches")
                                     : nullptr;
  quarantine_drop_ctr_ =
      metrics != nullptr ? &metrics->counter("fm.quarantine_drops") : nullptr;
}

void FrameworkManager::set_dispatch_guard(DispatchGuard* guard) {
  auto lock = quiesce();
  guard_.store(guard, std::memory_order_release);
  if (executor_ != nullptr) executor_->set_guard(guard);
}

void FrameworkManager::set_quarantined(CfsUnit* unit, bool on) {
  MK_ASSERT(unit != nullptr);
  auto lock = quiesce();
  if (!is_registered(unit)) return;
  bool changed = on ? quarantined_.insert(unit).second
                    : quarantined_.erase(unit) > 0;
  if (!changed) return;
  quarantined_count_.store(quarantined_.size(), std::memory_order_release);
  rebind();
}

bool FrameworkManager::is_quarantined(const CfsUnit* unit) const {
  if (quarantined_count_.load(std::memory_order_acquire) == 0) return false;
  auto lock = quiesce();
  return quarantined_.count(unit) > 0;
}

void FrameworkManager::dispatch(CfsUnit& target, ev::Event event) {
  // In-flight events towards a freshly quarantined unit are dropped here (the
  // routes computed before the breaker tripped may still reference it). The
  // atomic pre-check keeps the healthy path lock-free.
  if (quarantined_count_.load(std::memory_order_acquire) != 0) {
    auto lock = quiesce();
    if (quarantined_.count(&target) > 0) {
      ++quarantine_drops_;
      if (quarantine_drop_ctr_ != nullptr) quarantine_drop_ctr_->inc();
      return;
    }
  }
  if (dispatch_ctr_ != nullptr) dispatch_ctr_->inc();
  // Thread-per-ManetProtocol takes precedence over the global model: the
  // instance's dedicated FIFO decouples it from the shepherding thread.
  if (auto* proto = dynamic_cast<ManetProtocolCf*>(&target)) {
    if (auto* queue = proto->dedicated()) {
      queue->set_guard(guard_.load(std::memory_order_acquire));
      queue->enqueue(std::move(event));
      return;
    }
  }
  executor_->dispatch(target, std::move(event));
}

void FrameworkManager::set_concurrency(ConcurrencyModel model,
                                       std::size_t threads, std::size_t batch) {
  drain();
  auto lock = quiesce();
  model_ = model;
  switch (model) {
    case ConcurrencyModel::kSingleThreaded:
      executor_ = std::make_unique<InlineExecutor>();
      break;
    case ConcurrencyModel::kThreadPerMessage:
      executor_ = std::make_unique<PoolExecutor>(threads, 1);
      break;
    case ConcurrencyModel::kThreadPerNMessages:
      executor_ = std::make_unique<PoolExecutor>(threads, batch);
      break;
  }
  executor_->set_guard(guard_.load(std::memory_order_acquire));
}

void FrameworkManager::drain() {
  if (executor_ != nullptr) executor_->drain();
  for (const auto& r : registrations_) {
    if (auto* proto = dynamic_cast<ManetProtocolCf*>(r.unit)) {
      if (auto* queue = proto->dedicated()) queue->drain();
    }
  }
}

void FrameworkManager::subscribe(const std::string& event_name, Subscriber fn) {
  MK_ASSERT(fn != nullptr);
  auto lock = quiesce();
  subscribers_.emplace(ev::etype(event_name), std::move(fn));
}

}  // namespace mk::core
