// Shared soft-state expiry layer (ISSUE 6). MANET protocol state is almost
// entirely soft: link/neighbor sets, MPR selector sets, TC-derived topology
// tuples, reactive route-table entries and duplicate caches all carry
// RFC-style holding times and must vanish — with a loss event — when their
// deadline lapses. Before this component each protocol CF ran its own
// PeriodicTimer sweep, which coupled expiry latency to the sweep cadence and
// (the ISSUE-6 bug) let stale state survive partitions between sweeps.
//
// SoftExpiry is an Event Source that protocols register *sets* into: a set
// has a name (journaled as a stable hash), a default holding time, a loss
// callback, and an optional reseed enumerator (used after a supervised
// restart re-instantiates sources around a carried S element). Entries are
// per-key deadlines armed directly on the scheduler — one timer per entry,
// which the hierarchical timer wheel makes O(1) to arm and cancel.
//
// Refreshes are lazy: touch() on an already-armed entry just records the new
// deadline, and the timer re-arms itself when the stale deadline fires. A
// link refreshed every HELLO therefore costs a map-update per HELLO but only
// one scheduler arm per holding time, keeping steady-state timer traffic
// (and allocations) low.
//
// Every true expiry appends a kSoftExpire journal record (through the
// owning Framework Manager's journal, when tracing is attached), so
// partition chaos runs can assert on the expiry stream itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/cfs.hpp"
#include "opencom/interface.hpp"
#include "util/time.hpp"

namespace mk::core {

/// Introspection interface of the soft-state layer (provided as
/// "ISoftExpiry" on the SoftExpiry source component).
struct ISoftExpiry : oc::Interface {
  using SetId = std::uint8_t;

  /// Invoked when an entry's holding time lapses (after the entry is gone).
  using LossFn = std::function<void(std::uint64_t key, ProtocolContext& ctx)>;
  /// Enumerates keys to re-arm when the source (re)starts over carried
  /// state; each gets a fresh default hold.
  using SeedFn = std::function<std::vector<std::uint64_t>()>;

  /// Registers a soft-state set; returns its id (stable for this instance).
  virtual SetId define_set(std::string name, Duration hold, LossFn on_expire,
                           SeedFn seed = nullptr) = 0;

  /// Arms or refreshes `key` to expire at now() + the set's holding time.
  virtual void touch(SetId set, std::uint64_t key) = 0;

  /// Arms or refreshes `key` with an explicit deadline (reactive routes
  /// carry per-entry lifetimes).
  virtual void touch_at(SetId set, std::uint64_t key, TimePoint deadline) = 0;

  /// Forgets `key` without a loss event (explicit removal, e.g. LOST link
  /// codes). Returns false if the key was not tracked.
  virtual bool drop(SetId set, std::uint64_t key) = 0;

  virtual bool contains(SetId set, std::uint64_t key) const = 0;

  /// Tracked entries (== armed deadlines) in one set / across all sets.
  virtual std::size_t size(SetId set) const = 0;
  virtual std::size_t armed() const = 0;
};

/// The Event Source implementation. Build-time: protocols define their sets
/// when the CF is composed; run-time: handlers touch()/drop() keys as
/// protocol messages arrive, and loss callbacks fire from the scheduler.
class SoftExpiry final : public EventSource, public ISoftExpiry {
 public:
  SoftExpiry();

  // -- EventSource ------------------------------------------------------------
  void start(ProtocolContext& ctx) override;
  void stop() override;

  // -- ISoftExpiry ------------------------------------------------------------
  SetId define_set(std::string name, Duration hold, LossFn on_expire,
                   SeedFn seed = nullptr) override;
  void touch(SetId set, std::uint64_t key) override;
  void touch_at(SetId set, std::uint64_t key, TimePoint deadline) override;
  bool drop(SetId set, std::uint64_t key) override;
  bool contains(SetId set, std::uint64_t key) const override;
  std::size_t size(SetId set) const override;
  std::size_t armed() const override;

 private:
  struct Entry {
    TimePoint deadline{};  // authoritative expiry time
    TimePoint armed_at{};  // when the pending timer actually fires
    TimerId timer = kInvalidTimer;
  };
  struct Set {
    std::string name;
    std::uint64_t name_hash = 0;
    Duration hold{};
    LossFn on_expire;
    SeedFn seed;
    std::map<std::uint64_t, Entry> entries;
  };

  void arm(SetId set, std::uint64_t key, Entry& entry, TimePoint at);
  void fire(SetId set, std::uint64_t key);

  ProtocolContext* ctx_ = nullptr;
  std::vector<Set> sets_;
};

/// The protocol's SoftExpiry source, or null if the composition has none.
/// Handlers cache the pointer (sources outlive handlers only within one
/// composition epoch; a rebuilt CF re-resolves).
SoftExpiry* soft_expiry_of(ProtocolContext& ctx);

}  // namespace mk::core
