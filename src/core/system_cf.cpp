#include "core/system_cf.hpp"

#include <algorithm>
#include <chrono>

#include "core/attrs.hpp"
#include "core/framework_manager.hpp"
#include "net/payload_pool.hpp"
#include "packetbb/message_pool.hpp"
#include "packetbb/packetbb.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::core {

namespace {

/// The System CF's S element: kernel-route manipulation + device listing.
class SysStateComponent : public oc::Component, public ISysState {
 public:
  explicit SysStateComponent(net::SimNode& node)
      : oc::Component("core.SysState"), node_(node) {
    set_instance_name("State");
    provide("ISysState", this);
    provide("IState", static_cast<IState*>(this));
  }

  net::KernelRouteTable& kernel_table() override { return node_.kernel_table(); }

  std::vector<std::string> list_devices() const override {
    return {node_.device().name()};
  }

  net::Addr local_addr() const override { return node_.addr(); }

  std::string describe() const override {
    return "kernel routes: " + std::to_string(node_.kernel_table().size());
  }

 private:
  net::SimNode& node_;
};

/// The F element: send primitive, exposed as IForward for direct calls.
class SysForwardComponent : public oc::Component, public IForward {
 public:
  explicit SysForwardComponent(SystemCf& system)
      : oc::Component("core.SysForward"), system_(system) {
    set_instance_name("Forward");
    provide("IForward", this);
  }

  void forward(const ev::Event& event) override { system_.deliver(event); }

 private:
  SystemCf& system_;
};

/// The C element: lifecycle of the routing environment.
class SysControlComponent : public oc::Component, public IControl, public IContext {
 public:
  explicit SysControlComponent(SystemCf& system, net::SimNode& node)
      : oc::Component("core.SysControl"), system_(system), node_(node) {
    set_instance_name("SysControl");
    provide("IControl", static_cast<IControl*>(this));
    provide("IContext", static_cast<IContext*>(this));
  }

  void init() override { system_.init_routing_env(); }
  void start() override { running_ = true; }
  void stop() override { running_ = false; }
  bool running() const override { return running_; }

  double battery_level() const override { return node_.battery(); }
  std::size_t neighbor_count() const override {
    return node_.medium().neighbors_of(node_.addr()).size();
  }

 private:
  SystemCf& system_;
  net::SimNode& node_;
  bool running_ = false;
};

}  // namespace

// ------------------------------------------------------------- NetLink plug-in

NetLinkComponent::NetLinkComponent(SystemCf& system, net::SimNode& node)
    : oc::Component("core.NetLink"),
      system_(system),
      node_(node),
      sweep_timer_(node.scheduler(), sec(1), [this] { sweep_buffer(); }) {
  set_instance_name("Netlink");
  net::ForwardingEngine::Hooks hooks;
  hooks.on_no_route = [this](const net::DataHeader& hdr) {
    return on_no_route(hdr);
  };
  hooks.on_route_used = [this](net::Addr dest) { on_route_used(dest); };
  hooks.on_send_failure = [this](const net::DataHeader& hdr, net::Addr hop) {
    on_send_failure(hdr, hop);
  };
  node_.forwarding().set_hooks(std::move(hooks));
  sweep_timer_.start();
}

NetLinkComponent::~NetLinkComponent() {
  node_.forwarding().clear_hooks();
  sweep_timer_.stop();
}

bool NetLinkComponent::on_no_route(const net::DataHeader& hdr) {
  auto& q = buffer_[hdr.dst];
  if (q.size() >= kMaxBufferedPerDest) {
    ++buffer_drops_;
    q.erase(q.begin());  // drop oldest, keep freshest
  }
  q.push_back(Buffered{hdr, node_.scheduler().now()});

  ev::Event e(ev::types::NO_ROUTE);
  e.set_int(attrs::kDest, hdr.dst);
  e.set_int(attrs::kSrc, hdr.src);
  system_.emit(std::move(e));
  return true;  // consumed (buffered)
}

void NetLinkComponent::on_route_used(net::Addr dest) {
  ev::Event e(ev::types::ROUTE_UPDATE);
  e.set_int(attrs::kDest, dest);
  system_.emit(std::move(e));
}

void NetLinkComponent::on_send_failure(const net::DataHeader& hdr,
                                       net::Addr broken_hop) {
  ev::Event e(ev::types::SEND_ROUTE_ERR);
  e.set_int(attrs::kDest, hdr.dst);
  e.set_int(attrs::kSrc, hdr.src);
  e.set_int(attrs::kNextHop, broken_hop);
  system_.emit(std::move(e));
}

void NetLinkComponent::on_route_found(net::Addr dest) {
  auto it = buffer_.find(dest);
  if (it == buffer_.end()) return;
  auto packets = std::move(it->second);
  buffer_.erase(it);
  for (auto& b : packets) {
    node_.forwarding().reinject(b.hdr);
  }
}

std::size_t NetLinkComponent::buffered_count() const {
  std::size_t n = 0;
  for (const auto& [_, q] : buffer_) n += q.size();
  return n;
}

void NetLinkComponent::sweep_buffer() {
  TimePoint now = node_.scheduler().now();
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    auto& q = it->second;
    std::erase_if(q, [&](const Buffered& b) {
      bool expired = now - b.at > kBufferTimeout;
      if (expired) ++buffer_drops_;
      return expired;
    });
    it = q.empty() ? buffer_.erase(it) : std::next(it);
  }
}

// ------------------------------------------------------------------- SystemCf

SystemCf::SystemCf(oc::Kernel& kernel, net::SimNode& node)
    : oc::ComponentFramework(kernel, "core.System"), node_(node) {
  set_instance_name("System");

  // CFS structural invariants, as in ManetProtocolCf.
  add_integrity_rule([](const oc::CfView& view, std::string& err) {
    std::size_t n = 0;
    for (const auto* c : view.members()) {
      if (c->instance_name() == "State") ++n;
    }
    if (n > 1) {
      err = "System CF has exactly one S element";
      return false;
    }
    return true;
  });

  insert(std::make_unique<SysStateComponent>(node_));
  insert(std::make_unique<SysForwardComponent>(*this));
  insert(std::make_unique<SysControlComponent>(*this, node_));

  node_.set_control_handler(
      [this](const net::Frame& frame) { on_control_frame(frame); });
}

SystemCf::~SystemCf() { node_.set_control_handler(nullptr); }

void SystemCf::init_routing_env() {
  // Real implementation: enable IP forwarding, disable ICMP redirects, etc.
  // The simulated kernel forwards unconditionally, so nothing to do.
}

void SystemCf::register_message(std::uint8_t msg_type,
                                const std::string& base_name) {
  auto lock = quiesce();
  auto it = msg_registry_.find(msg_type);
  if (it != msg_registry_.end()) {
    MK_ENSURE(it->second.base == base_name,
              "message type " + std::to_string(msg_type) +
                  " already registered as " + it->second.base);
    return;
  }
  MsgBinding binding;
  binding.base = base_name;
  binding.in = ev::etype(base_name + "_IN");
  binding.out = ev::etype(base_name + "_OUT");
  out_to_type_[binding.out] = msg_type;
  msg_registry_.emplace(msg_type, std::move(binding));
  refresh_tuple();
}

void SystemCf::ensure_power_status(Duration interval) {
  auto lock = quiesce();
  if (power_timer_ != nullptr) return;
  power_timer_ = std::make_unique<PeriodicTimer>(
      scheduler(), interval,
      [this] {
        ev::Event e(ev::types::POWER_STATUS);
        e.set_double(attrs::kBattery, node_.battery());
        emit(std::move(e));
      },
      /*jitter=*/0.1, /*seed=*/node_.addr());
  power_timer_->start();
  refresh_tuple();
}

void SystemCf::ensure_link_quality(Duration period, double alpha) {
  auto lock = quiesce();
  if (linkq_timer_ != nullptr) return;
  MK_ASSERT(alpha > 0.0 && alpha <= 1.0);
  linkq_alpha_ = alpha;
  linkq_timer_ = std::make_unique<PeriodicTimer>(
      scheduler(), period,
      [this] {
        auto lk = quiesce();
        auto counts = std::move(frames_from_);
        frames_from_.clear();

        // Current neighbours that went silent this period count as misses.
        for (net::Addr n : node_.medium().neighbors_of(self())) {
          counts.try_emplace(n, 0);
        }
        for (const auto& [neighbor, frames] : counts) {
          double sample = frames > 0 ? 1.0 : 0.0;
          double& q = link_quality_.try_emplace(neighbor, sample).first->second;
          q = (1.0 - linkq_alpha_) * q + linkq_alpha_ * sample;

          ev::Event e(ev::types::LINK_QUALITY);
          e.set_int(attrs::kNeighbor, neighbor);
          e.set_double(attrs::kQuality, q);
          emit(std::move(e));
        }
        // Forget estimates for neighbours gone for good.
        for (auto it = link_quality_.begin(); it != link_quality_.end();) {
          it = (counts.count(it->first) == 0) ? link_quality_.erase(it)
                                              : std::next(it);
        }
      },
      /*jitter=*/0.1, /*seed=*/node_.addr() + 23);
  linkq_timer_->start();
  refresh_tuple();
}

double SystemCf::link_quality(net::Addr neighbor) const {
  auto lock = quiesce();
  auto it = link_quality_.find(neighbor);
  return it == link_quality_.end() ? 1.0 : it->second;
}

void SystemCf::ensure_netlink() {
  auto lock = quiesce();
  if (netlink_ != nullptr) return;
  auto netlink = std::make_unique<NetLinkComponent>(*this, node_);
  netlink_ = netlink.get();
  insert(std::move(netlink));
  refresh_tuple();
}

NetLinkComponent* SystemCf::netlink() { return netlink_; }

ISysState& SystemCf::sys_state() {
  auto* comp = find("State");
  MK_ASSERT(comp != nullptr);
  auto* state = comp->interface_as<ISysState>("ISysState");
  MK_ASSERT(state != nullptr);
  return *state;
}

void SystemCf::refresh_tuple() {
  ev::EventTuple t;
  for (const auto& [_, binding] : msg_registry_) {
    t.provided.insert(binding.in);
    t.required.insert(binding.out);
  }
  if (netlink_ != nullptr) {
    t.provided.insert(ev::etype(ev::types::NO_ROUTE));
    t.provided.insert(ev::etype(ev::types::ROUTE_UPDATE));
    t.provided.insert(ev::etype(ev::types::SEND_ROUTE_ERR));
    t.required.insert(ev::etype(ev::types::ROUTE_FOUND));
  }
  if (power_timer_ != nullptr) {
    t.provided.insert(ev::etype(ev::types::POWER_STATUS));
  }
  if (linkq_timer_ != nullptr) {
    t.provided.insert(ev::etype(ev::types::LINK_QUALITY));
  }
  tuple_ = std::move(t);
  if (manager_ != nullptr) manager_->rebind();
}

void SystemCf::deliver(const ev::Event& event) {
  auto lock = quiesce();
  if (netlink_ != nullptr && event.type() == ev::etype(ev::types::ROUTE_FOUND)) {
    netlink_->on_route_found(
        static_cast<net::Addr>(event.get_int(attrs::kDest)));
    return;
  }
  if (out_to_type_.find(event.type()) != out_to_type_.end()) {
    transmit(event);
    return;
  }
  MK_TRACE("system", "unhandled event ", event.type_name());
}

void SystemCf::transmit(const ev::Event& event) {
  MK_ASSERT(event.has_msg(), "outgoing event carries no message");
  auto dest = static_cast<net::Addr>(
      event.get_int(attrs::kUnicastTo, net::kBroadcast));

  if (aggregation_window_.count() <= 0) {
    // Reference the event's shared message directly — no deep copy of the
    // nested TLV/address-block structure on the per-transmission path.
    const pbb::Message* one[1] = {event.msg()};
    send_messages(one, dest);
    return;
  }
  pending_out_[dest].push_back(event.shared_msg());
  if (flush_timer_ == nullptr) {
    flush_timer_ = std::make_unique<OneShotTimer>(scheduler());
  }
  if (!flush_timer_->pending()) {
    flush_timer_->schedule(aggregation_window_,
                           [this] { flush_aggregation(); });
  }
}

void SystemCf::send_messages(std::span<const pbb::Message* const> msgs,
                             net::Addr dest) {
  messages_sent_->inc(msgs.size());
  packets_sent_->inc();
  // Serialize straight into a recycled shared buffer that the medium then
  // fans out to every neighbour without copying.
  auto buf = net::acquire_payload();
  if (tlv_provider_ != nullptr && dest == net::kBroadcast) {
    pkt_tlv_scratch_.clear();
    tlv_provider_(pkt_tlv_scratch_);
    pbb::serialize_msgs_into(msgs, pkt_tlv_scratch_, *buf);
  } else {
    pbb::serialize_msgs_into(msgs, *buf);
  }
  node_.send_control(net::PayloadPtr(std::move(buf)), dest);
}

void SystemCf::set_packet_tlv_provider(PacketTlvProvider provider) {
  auto lock = quiesce();
  tlv_provider_ = std::move(provider);
}

void SystemCf::set_packet_tlv_observer(PacketTlvObserver observer) {
  auto lock = quiesce();
  tlv_observer_ = std::move(observer);
}

void SystemCf::flush_aggregation() {
  auto lock = quiesce();
  auto pending = std::move(pending_out_);
  pending_out_.clear();
  for (auto& [dest, msgs] : pending) {
    // PacketBB caps messages per packet at 255; chunk defensively.
    for (std::size_t i = 0; i < msgs.size(); i += 255) {
      std::size_t end = std::min(msgs.size(), i + 255);
      msg_ptr_scratch_.clear();
      for (std::size_t j = i; j < end; ++j) {
        msg_ptr_scratch_.push_back(msgs[j].get());
      }
      send_messages(msg_ptr_scratch_, dest);
    }
  }
}

void SystemCf::set_aggregation_window(Duration window) {
  auto lock = quiesce();
  aggregation_window_ = window;
  if (window.count() <= 0) flush_aggregation();
}

void SystemCf::set_metrics(obs::MetricsRegistry* metrics) {
  auto lock = quiesce();
  obs::MetricsRegistry& reg = metrics != nullptr ? *metrics : own_metrics_;
  packets_sent_ = &reg.counter("sys.packets_sent");
  messages_sent_ = &reg.counter("sys.messages_sent");
  frames_received_ = &reg.counter("sys.frames_received");
  parse_errors_ = &reg.counter("sys.parse_errors");
}

void SystemCf::emit(ev::Event event) {
  event.raised_at = scheduler().now();
  event.local = self();
  if (manager_ != nullptr) {
    manager_->route(this, std::move(event));
  }
}

void SystemCf::on_control_frame(const net::Frame& frame) {
  frames_received_->inc();
  if (linkq_timer_ != nullptr) ++frames_from_[frame.tx];
  // Parse into the member scratch: nested vectors are slot-filled, so a
  // steady stream of same-shaped frames parses with zero allocations.
  auto parsed = pbb::parse_into(frame.payload_view(), parse_scratch_);
  if (!parsed) {
    parse_errors_->inc();
    MK_WARN("system", "dropping malformed packet from ",
            pbb::addr_to_string(frame.tx), ": ", parsed.error());
    return;
  }
  if (tlv_observer_ != nullptr) {
    for (const pbb::Tlv& t : parse_scratch_.tlvs) tlv_observer_(t, frame.tx);
  }
  for (auto& msg : parse_scratch_.messages) {
    auto it = msg_registry_.find(msg.type);
    if (it == msg_registry_.end()) continue;  // no protocol interested

    ev::Event e(it->second.in);
    e.from = frame.tx;
    // One shared (pool-recycled) message per RX: every protocol the
    // Framework Manager fans this event out to sees the same immutable
    // pbb::Message. Copy-assign keeps the parse scratch warm for the next
    // frame and fills the recycled slot's warm buffers in place.
    auto owned = pbb::acquire_message();
    *owned = msg;
    e.set_msg(ev::MsgPtr(std::move(owned)));

    if (profiling_) {
      auto t0 = std::chrono::steady_clock::now();
      emit(std::move(e));
      if (manager_ != nullptr) manager_->drain();
      auto t1 = std::chrono::steady_clock::now();
      processing_times_[it->second.base].add(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    } else {
      emit(std::move(e));
    }
  }
}

}  // namespace mk::core
