#include "core/manet_protocol.hpp"

#include <algorithm>

#include "core/framework_manager.hpp"
#include "util/assert.hpp"
#include "util/inline_vector.hpp"
#include "util/log.hpp"

namespace mk::core {

// ------------------------------------------------------------- ManetControlCf

ManetControlCf::ManetControlCf(oc::Kernel& kernel)
    : oc::ComponentFramework(kernel, "core.ManetControl") {
  // The paper: "ManetControl rejects attempts to add more than one C
  // element". Our C element functionality is folded into this CF itself, so
  // the analogous rule polices duplicate *source/handler instance names*,
  // which would make the Event Registry ambiguous on replace.
  add_integrity_rule([](const oc::CfView& view, std::string& err) {
    for (std::size_t i = 0; i < view.members().size(); ++i) {
      for (std::size_t j = i + 1; j < view.members().size(); ++j) {
        if (view.members()[i]->instance_name() ==
            view.members()[j]->instance_name()) {
          err = "duplicate plug-in instance name: " +
                view.members()[i]->instance_name();
          return false;
        }
      }
    }
    return true;
  });
}

void ManetControlCf::rebuild_registry() {
  auto lock = quiesce();
  registry_.clear();
  for (oc::ComponentId id : members()) {
    auto* handler = dynamic_cast<EventHandler*>(member(id));
    if (handler == nullptr) continue;
    for (ev::EventTypeId type : handler->handles()) {
      registry_[type].push_back(handler);
    }
  }
}

const std::vector<EventHandler*>& ManetControlCf::handlers_for(
    ev::EventTypeId type) const {
  static const std::vector<EventHandler*> kEmpty;
  auto it = registry_.find(type);
  return it == registry_.end() ? kEmpty : it->second;
}

std::vector<EventSource*> ManetControlCf::sources() const {
  std::vector<EventSource*> out;
  for (oc::ComponentId id : members()) {
    if (auto* src = dynamic_cast<EventSource*>(member(id))) out.push_back(src);
  }
  return out;
}

std::vector<EventHandler*> ManetControlCf::handlers() const {
  std::vector<EventHandler*> out;
  for (oc::ComponentId id : members()) {
    if (auto* h = dynamic_cast<EventHandler*>(member(id))) out.push_back(h);
  }
  return out;
}

// ------------------------------------------------------------ ManetProtocolCf

ManetProtocolCf::ManetProtocolCf(oc::Kernel& kernel, std::string proto_name,
                                 Scheduler& sched, net::Addr self,
                                 ISysState* sys)
    : oc::ComponentFramework(kernel, "core.ManetProtocol"),
      proto_name_(std::move(proto_name)),
      ctx_(*this, sched, self, sys) {
  set_instance_name(proto_name_);

  // Structural invariants of the CFS pattern: at most one S and one F
  // element, and exactly one nested ManetControl CF.
  add_integrity_rule([](const oc::CfView& view, std::string& err) {
    auto count_named = [&](std::string_view name) {
      std::size_t n = 0;
      for (const auto* c : view.members()) {
        if (c->instance_name() == name) ++n;
      }
      return n;
    };
    if (count_named("State") > 1) {
      err = "a ManetProtocol may have at most one S element";
      return false;
    }
    if (count_named("Forward") > 1) {
      err = "a ManetProtocol may have at most one F element";
      return false;
    }
    if (view.count_type("core.ManetControl") > 1) {
      err = "a ManetProtocol has exactly one ManetControl CF";
      return false;
    }
    return true;
  });

  auto control = std::make_unique<ManetControlCf>(kernel);
  control_ = control.get();
  control_id_ = insert(std::move(control));
}

ManetProtocolCf::~ManetProtocolCf() { stop(); }

void ManetProtocolCf::deliver(const ev::Event& event) {
  auto lock = quiesce();  // the critical section of §4.4
  ++events_delivered_;
  delivered_ctr_->inc();
  // Snapshot the handler list: a handler may reconfigure the protocol
  // (replace handlers) while we iterate. Stack-local inline storage — a
  // delivery can reenter through emit(), and the few handlers per type fit
  // without touching the heap.
  const std::vector<EventHandler*>& live = control_->handlers_for(event.type());
  InlinedVector<EventHandler*, 8> handlers;
  for (EventHandler* h : live) handlers.push_back(h);
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    handlers[i]->handle(event, ctx_);
  }
}

void ManetProtocolCf::set_tuple(ev::EventTuple tuple) {
  {
    auto lock = quiesce();
    tuple_ = std::move(tuple);
  }
  if (manager_ != nullptr) manager_->rebind();
}

void ManetProtocolCf::declare_events(const std::vector<std::string>& required,
                                     const std::vector<std::string>& provided,
                                     const std::vector<std::string>& exclusive) {
  ev::EventTuple t;
  t.required = ev::EventTuple::ids(required);
  t.provided = ev::EventTuple::ids(provided);
  t.exclusive = ev::EventTuple::ids(exclusive);
  for (ev::EventTypeId e : t.exclusive) {
    MK_ASSERT(t.required.count(e) > 0, "exclusive must be a subset of required");
  }
  set_tuple(std::move(t));
}

oc::ComponentId ManetProtocolCf::add_handler(
    std::unique_ptr<EventHandler> handler) {
  auto lock = quiesce();
  oc::ComponentId id = control_->insert(std::move(handler));
  control_->rebuild_registry();
  return id;
}

oc::ComponentId ManetProtocolCf::replace_handler(
    std::string_view instance_name, std::unique_ptr<EventHandler> handler) {
  auto lock = quiesce();
  oc::ComponentId old_id = control_->find_id(instance_name);
  MK_ENSURE(old_id != oc::kNoComponent,
            "no handler named " + std::string{instance_name});
  oc::ComponentId id = control_->replace(old_id, std::move(handler));
  control_->rebuild_registry();
  return id;
}

bool ManetProtocolCf::remove_handler(std::string_view instance_name) {
  auto lock = quiesce();
  oc::ComponentId id = control_->find_id(instance_name);
  if (id == oc::kNoComponent) return false;
  control_->remove(id);
  control_->rebuild_registry();
  return true;
}

oc::ComponentId ManetProtocolCf::add_source(std::unique_ptr<EventSource> source) {
  auto lock = quiesce();
  EventSource* raw = source.get();
  oc::ComponentId id = control_->insert(std::move(source));
  if (running_) raw->start(ctx_);
  return id;
}

bool ManetProtocolCf::remove_source(std::string_view instance_name) {
  auto lock = quiesce();
  oc::ComponentId id = control_->find_id(instance_name);
  if (id == oc::kNoComponent) return false;
  if (auto* src = dynamic_cast<EventSource*>(control_->member(id))) {
    src->stop();
  }
  control_->remove(id);
  return true;
}

void ManetProtocolCf::set_state(std::unique_ptr<oc::Component> state) {
  auto lock = quiesce();
  state->set_instance_name("State");
  oc::ComponentId old_id = find_id("State");
  if (old_id != oc::kNoComponent) {
    replace(old_id, std::move(state));
  } else {
    insert(std::move(state));
  }
}

std::unique_ptr<oc::Component> ManetProtocolCf::take_state() {
  auto lock = quiesce();
  oc::ComponentId id = find_id("State");
  MK_ENSURE(id != oc::kNoComponent, "protocol has no S element");
  return extract(id);
}

void ManetProtocolCf::set_forward(std::unique_ptr<oc::Component> forward) {
  auto lock = quiesce();
  MK_ASSERT(forward->interface_as<IForward>("IForward") != nullptr,
            "F element must provide IForward");
  forward->set_instance_name("Forward");
  oc::ComponentId old_id = find_id("Forward");
  if (old_id != oc::kNoComponent) {
    replace(old_id, std::move(forward));
  } else {
    insert(std::move(forward));
  }
}

oc::Component* ManetProtocolCf::state_component() const { return find("State"); }

IForward* ManetProtocolCf::forward_iface() const {
  oc::Component* f = find("Forward");
  return f == nullptr ? nullptr : f->interface_as<IForward>("IForward");
}

void ManetProtocolCf::init() {}

void ManetProtocolCf::start() {
  auto lock = quiesce();
  if (running_) return;
  running_ = true;
  for (EventSource* src : control_->sources()) src->start(ctx_);
}

void ManetProtocolCf::stop() {
  auto lock = quiesce();
  if (!running_) return;
  running_ = false;
  for (EventSource* src : control_->sources()) src->stop();
}

void ManetProtocolCf::set_metrics(obs::MetricsRegistry* metrics) {
  auto lock = quiesce();
  metrics_ = metrics;
  delivered_ctr_ = &metrics_registry().counter("proto.events_delivered");
}

void ManetProtocolCf::enable_dedicated_thread() {
  if (dedicated_ == nullptr) {
    dedicated_ = std::make_unique<DedicatedQueue>(*this);
  }
}

void ManetProtocolCf::disable_dedicated_thread() { dedicated_.reset(); }

void ManetProtocolCf::emit(ev::Event event) {
  event.raised_at = ctx_.scheduler().now();
  event.local = ctx_.self();
  if (manager_ != nullptr) {
    manager_->route(this, std::move(event));
  } else if (emit_hook_) {
    emit_hook_(event);
  } else {
    MK_TRACE("proto", proto_name_, " dropped event ", event.type_name(),
             " (no manager)");
  }
}

// ------------------------------------------------------------ ProtocolContext

void ProtocolContext::emit(ev::Event event) { proto_.emit(std::move(event)); }

oc::Component* ProtocolContext::state() { return proto_.state_component(); }

obs::MetricsRegistry& ProtocolContext::metrics() {
  return proto_.metrics_registry();
}

// --------------------------------------------------------------- EventHandler

EventHandler::EventHandler(std::string type_name,
                           const std::vector<std::string>& handled)
    : oc::Component(std::move(type_name)) {
  for (const auto& name : handled) handles_.insert(ev::etype(name));
}

}  // namespace mk::core
