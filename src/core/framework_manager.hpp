// The Framework Manager CF (§4.2, Fig. 2).
//
// CFS units register here with their <required-events, provided-events>
// tuples and a *layer* (System CF at layer 0, protocol CFs above). From the
// tuples the manager derives and maintains the event-flow bindings
// automatically:
//
//  * For event type t, units that both require and provide t are
//    *interposers*; they form a chain ordered by descending layer. An event
//    emitted by unit U flows to the next interposer strictly below U's layer;
//    past the last interposer it reaches the *consumers* (units that require
//    but do not provide t).
//  * A consumer holding t in its `exclusive` set receives the event alone —
//    other consumers are skipped (footnote 2 of the paper).
//  * Loops are impossible by construction: re-emission always advances down
//    the chain (the paper's loop-avoidance mechanism).
//
// Changing any unit's tuple at runtime triggers rebind() — the paper's
// declarative reconfiguration-enactment method. The manager also hosts the
// *context concentrator*: a façade through which higher-level (decision
// making) software observes context events without knowing which sensor or
// protocol produced them.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/cfs.hpp"
#include "core/executor.hpp"
#include "events/event.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "opencom/cf.hpp"
#include "util/scheduler.hpp"

namespace mk::core {

class ManetProtocolCf;

class FrameworkManager : public oc::ComponentFramework {
 public:
  explicit FrameworkManager(oc::Kernel& kernel);
  ~FrameworkManager() override;

  // -- unit registration --------------------------------------------------------
  /// Registers a CFS unit at `layer` (0 = System CF; protocols above).
  /// Throws std::logic_error if a deployment-level rule rejects it.
  void register_unit(CfsUnit* unit, int layer);
  void deregister_unit(CfsUnit* unit);
  std::vector<CfsUnit*> units() const;
  bool is_registered(const CfsUnit* unit) const;

  /// Deployment-level integrity rule, e.g. "at most one reactive protocol".
  using UnitRule =
      std::function<bool(const std::vector<CfsUnit*>&, std::string&)>;
  void add_unit_rule(UnitRule rule);

  // -- binding derivation ---------------------------------------------------------
  /// Recomputes the event-routing topology from the current tuples. Called
  /// automatically on register/deregister/set_tuple.
  void rebind();

  /// Routes an event emitted by `emitter` per the derived bindings.
  void route(CfsUnit* emitter, ev::Event event);

  // -- concurrency (§4.4) -----------------------------------------------------------
  /// Selects the model used for events from below. Applied MANETKit-wide.
  void set_concurrency(ConcurrencyModel model, std::size_t threads = 4,
                       std::size_t batch = 8);
  ConcurrencyModel concurrency() const { return model_; }
  /// Blocks until all in-flight dispatches complete (threaded models).
  void drain();

  // -- context concentrator -----------------------------------------------------------
  using Subscriber = std::function<void(const ev::Event&)>;
  /// Observes every routed event of the named type (context or otherwise).
  void subscribe(const std::string& event_name, Subscriber fn);

  std::uint64_t events_routed() const { return events_routed_; }

  // -- observability ------------------------------------------------------------
  /// Attaches a trace journal: every routed event appends a kEventDispatch
  /// record (a = stable event-type hash, b = target count, c = emitter unit
  /// hash), and unit (de)registration appends kCfBind/kCfUnbind. Records are
  /// attributed to `node` and stamped from `clock` (sim time, so digests
  /// compare across runs). Null detaches.
  void set_journal(obs::Journal* journal, std::uint32_t node,
                   Scheduler* clock);

  /// The attached journal (null when tracing is off) and the node records
  /// are attributed to. Lets co-located components — the soft-state expiry
  /// layer — append their own record kinds through the same sink.
  obs::Journal* journal() const { return journal_; }
  std::uint32_t journal_node() const { return journal_node_; }

  /// Mirrors the manager's counters ("fm.events_routed", "fm.dispatches",
  /// "fm.quarantine_drops") into a shared registry. Null reverts to
  /// internal-only counting.
  void set_metrics(obs::MetricsRegistry* metrics);

  // -- supervision (ISSUE 5) --------------------------------------------------
  /// Installs the guard wrapped around every deliver call (all executor
  /// models, including dedicated per-protocol queues). Null uninstalls.
  /// Survives set_concurrency(): the guard is re-applied to the new executor.
  void set_dispatch_guard(DispatchGuard* guard);
  DispatchGuard* dispatch_guard() const {
    return guard_.load(std::memory_order_acquire);
  }

  /// Quarantines (or releases) a unit: its tuples drop out of the derived
  /// bindings — rebind() recomputes interposer chains and exclusive delivery
  /// over the remaining units, so traffic is routed *around* it — and events
  /// already in flight towards it, or emitted by its still-running sources,
  /// are dropped and counted ("fm.quarantine_drops"). Deregistration clears
  /// quarantine implicitly. No-op when the unit is not registered.
  void set_quarantined(CfsUnit* unit, bool on);
  bool is_quarantined(const CfsUnit* unit) const;
  std::uint64_t quarantine_drops() const { return quarantine_drops_; }

 private:
  struct Registration {
    CfsUnit* unit;
    int layer;
    std::uint64_t seq;
  };

  struct Route {
    std::vector<Registration> interposers;  // descending layer
    std::vector<Registration> consumers;
    CfsUnit* exclusive = nullptr;
  };

  void dispatch(CfsUnit& target, ev::Event event);
  void check_unit_rules(const std::vector<CfsUnit*>& hypothetical) const;

  std::vector<Registration> registrations_;
  std::set<const CfsUnit*> quarantined_;
  // Mirrors quarantined_.size(); lets dispatch() skip the lock entirely in
  // the (overwhelmingly common) no-quarantine case.
  std::atomic<std::size_t> quarantined_count_{0};
  std::atomic<DispatchGuard*> guard_{nullptr};
  std::uint64_t quarantine_drops_ = 0;
  std::uint64_t next_seq_ = 1;
  std::map<ev::EventTypeId, Route> routes_;
  std::vector<UnitRule> unit_rules_;
  std::multimap<ev::EventTypeId, Subscriber> subscribers_;
  ConcurrencyModel model_ = ConcurrencyModel::kSingleThreaded;
  std::unique_ptr<Executor> executor_;
  std::uint64_t events_routed_ = 0;
  obs::Journal* journal_ = nullptr;
  std::uint32_t journal_node_ = 0;
  Scheduler* journal_clock_ = nullptr;
  obs::Counter* routed_ctr_ = nullptr;
  obs::Counter* dispatch_ctr_ = nullptr;
  obs::Counter* quarantine_drop_ctr_ = nullptr;
};

}  // namespace mk::core
