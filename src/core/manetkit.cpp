#include "core/manetkit.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::core {

Manetkit::Manetkit(net::SimNode& node) : node_(node) {
  manager_ = std::make_unique<FrameworkManager>(kernel_);
  system_ = std::make_unique<SystemCf>(kernel_, node_);
  system_->set_manager(manager_.get());
  system_->set_metrics(&metrics_);
  manager_->set_metrics(&metrics_);

  // The paper's example deployment-level integrity rule: only one instance
  // of a reactive routing protocol may exist in a given deployment.
  manager_->add_unit_rule(
      [](const std::vector<CfsUnit*>& units, std::string& err) {
        std::size_t reactive = 0;
        for (const CfsUnit* u : units) {
          if (u->category() == "reactive") ++reactive;
        }
        if (reactive > 1) {
          err = "at most one reactive routing protocol may be deployed";
          return false;
        }
        return true;
      });

  manager_->register_unit(system_.get(), /*layer=*/0);
}

Manetkit::~Manetkit() {
  // Stop protocols before tearing down the manager/system they reference.
  for (auto& [_, d] : deployed_) d.instance->stop();
  for (auto& [_, d] : deployed_) {
    manager_->deregister_unit(d.instance.get());
  }
  manager_->deregister_unit(system_.get());
  deployed_.clear();
}

void Manetkit::register_protocol(const std::string& name, int layer,
                                 Builder builder, std::string category) {
  MK_ASSERT(builder != nullptr);
  specs_[name] = ProtoSpec{layer, std::move(builder), std::move(category)};
}

bool Manetkit::has_builder(const std::string& name) const {
  return specs_.find(name) != specs_.end();
}

std::vector<std::string> Manetkit::available_protocols() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;
}

ManetProtocolCf* Manetkit::deploy(const std::string& name) {
  if (auto* existing = protocol(name)) return existing;

  auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::logic_error("no protocol builder registered for: " + name);
  }
  const ProtoSpec& spec = it->second;

  auto instance = spec.builder(*this);
  MK_ASSERT(instance != nullptr, "builder returned null for " + name);
  if (!spec.category.empty()) instance->set_category(spec.category);

  ManetProtocolCf* raw = instance.get();
  raw->set_metrics(&metrics_);
  manager_->register_unit(raw, spec.layer);  // may throw (deployment rules)
  deployed_.emplace(name, DeployedProto{std::move(instance), spec.layer});

  raw->init();
  raw->start();
  MK_DEBUG("manetkit", "deployed ", name, " at ", pbb::addr_to_string(self()));
  return raw;
}

bool Manetkit::is_deployed(const std::string& name) const {
  return deployed_.find(name) != deployed_.end();
}

ManetProtocolCf* Manetkit::protocol(const std::string& name) const {
  auto it = deployed_.find(name);
  return it == deployed_.end() ? nullptr : it->second.instance.get();
}

std::vector<std::string> Manetkit::deployed() const {
  std::vector<std::string> out;
  out.reserve(deployed_.size());
  for (const auto& [name, _] : deployed_) out.push_back(name);
  return out;
}

void Manetkit::undeploy(const std::string& name) {
  auto it = deployed_.find(name);
  MK_ENSURE(it != deployed_.end(), "protocol not deployed: " + name);
  it->second.instance->stop();
  manager_->deregister_unit(it->second.instance.get());
  deployed_.erase(it);
  MK_DEBUG("manetkit", "undeployed ", name);
}

ManetProtocolCf* Manetkit::switch_protocol(const std::string& from,
                                           const std::string& to,
                                           bool carry_state) {
  ReplaceOptions opts;
  opts.max_attempts = 1;
  opts.carry_state = carry_state;
  ReplaceReport report = replace_protocol(from, to, opts);
  if (!report.committed) {
    // The prior protocol has been rolled back; surface the failure loudly
    // (pre-hardening switch_protocol semantics: a failed switch throws).
    throw std::logic_error("switch_protocol " + from + " -> " + to +
                           " failed: " + report.error);
  }
  return report.instance;
}

void Manetkit::journal_reconfig(obs::ReconfigPhase phase,
                                const std::string& from, const std::string& to,
                                std::uint64_t extra) {
  if (journal_ == nullptr) return;
  journal_->append({obs::RecordKind::kReconfig, self(), scheduler().now().us,
                    static_cast<std::uint64_t>(phase) | (extra << 8),
                    obs::fnv1a_str(from), obs::fnv1a_str(to)});
}

Manetkit::ReplaceReport Manetkit::replace_protocol(const std::string& from,
                                                   const std::string& to,
                                                   ReplaceOptions opts) {
  auto it = deployed_.find(from);
  MK_ENSURE(it != deployed_.end(), "protocol not deployed: " + from);
  MK_ENSURE(opts.max_attempts >= 1, "replace_protocol: max_attempts < 1");

  // Quiescence first: no in-flight dispatch may straddle the swap. drain()
  // flushes the executor and every dedicated protocol queue, so by the time
  // the old unit is detached the event graph is at rest (the OpenCom
  // discipline: reconfigure only quiescent compositions).
  manager_->drain();
  journal_reconfig(obs::ReconfigPhase::kBegin, from, to);

  ManetProtocolCf* old_proto = it->second.instance.get();
  old_proto->stop();
  std::unique_ptr<oc::Component> carried;
  if (opts.carry_state && old_proto->state_component() != nullptr) {
    carried = old_proto->take_state();
  }
  manager_->deregister_unit(old_proto);
  deployed_.erase(it);

  ReplaceReport report;
  Duration backoff = opts.initial_backoff;
  for (int attempt = 1; attempt <= opts.max_attempts; ++attempt) {
    ++report.attempts;
    metrics_.counter("fm.replace_attempts").inc();
    try {
      ManetProtocolCf* fresh = deploy(to);
      if (carried != nullptr) {
        fresh->stop();
        fresh->set_state(std::move(carried));
        fresh->start();
      }
      journal_reconfig(obs::ReconfigPhase::kCommit, from, to,
                       static_cast<std::uint64_t>(report.attempts));
      metrics_.counter("fm.replace_commits").inc();
      // Split by outcome so recovery rungs are individually countable: an
      // in-place restart (same protocol back) vs a switch to another one.
      metrics_
          .counter(from == to ? "fm.replace_commits_inplace"
                              : "fm.replace_commits_switch")
          .inc();
      report.instance = fresh;
      report.committed = true;
      return report;
    } catch (const std::exception& e) {
      report.error = e.what();
      // deploy() can fail after partially landing (init/start throwing once
      // the unit is registered); scrub any half-deployed instance before
      // retrying or rolling back.
      if (is_deployed(to)) undeploy(to);
      if (attempt < opts.max_attempts) {
        metrics_.counter("fm.replace_retries").inc();
        metrics_.counter("fm.replace_backoff_us")
            .inc(static_cast<std::uint64_t>(backoff.count()));
        journal_reconfig(obs::ReconfigPhase::kRetry, from, to,
                         static_cast<std::uint64_t>(backoff.count()));
        backoff = backoff * 2;
      }
    }
  }

  // Permanent failure: restore the prior binding graph. Redeploying `from`
  // re-registers the same unit tuple at the same layer, so rebind() derives
  // the identical event-flow topology the node had before the attempt; the
  // carried S element goes back in, so no protocol state is lost either.
  MK_WARN("manetkit", "replace ", from, " -> ", to, " failed permanently (",
          report.error, "); rolling back");
  metrics_.counter("fm.replace_rollbacks").inc();
  ManetProtocolCf* prior = deploy(from);  // throws only if `from` is gone too
  if (carried != nullptr) {
    prior->stop();
    prior->set_state(std::move(carried));
    prior->start();
  }
  journal_reconfig(obs::ReconfigPhase::kRollback, from, to,
                   static_cast<std::uint64_t>(report.attempts));
  report.instance = prior;
  report.committed = false;
  return report;
}

void Manetkit::set_journal(obs::Journal* journal) {
  journal_ = journal;
  manager_->set_journal(journal, self(), &scheduler());
  node_.kernel_table().set_journal(journal, self(), &scheduler());
}

int Manetkit::layer_of(const std::string& name) const {
  auto it = deployed_.find(name);
  return it == deployed_.end() ? -1 : it->second.layer;
}

std::string Manetkit::category_of(const std::string& name) const {
  auto it = specs_.find(name);
  return it == specs_.end() ? std::string{} : it->second.category;
}

}  // namespace mk::core
