// The System CF (§4.3, Fig. 4): the base-layer CFS unit every ManetProtocol
// instance is stacked on. It abstracts the "OS":
//
//   * C element (SysControl)  — routing-environment initialisation, message
//     registry (which PacketBB message types map to which *_IN/*_OUT
//     events), context-sensor management.
//   * S element (SysState)    — kernel routing-table manipulation and
//     network-device listing (ISysState).
//   * F element (SysForward)  — send/receive primitives: outgoing *_OUT
//     events are framed (PacketBB) and transmitted; incoming frames are
//     parsed by the Demux and raised as *_IN events.
//   * NetLink plug-in          — Netfilter-style packet filtering: buffers
//     route-less data packets and raises NO_ROUTE / ROUTE_UPDATE /
//     SEND_ROUTE_ERR; re-injects on ROUTE_FOUND (§5.2).
//   * PowerStatus plug-in      — periodic POWER_STATUS context events.
//
// In a real deployment the raising/capturing of events is grounded in
// sockets, libpcap and Netfilter; here it is grounded in the simulated
// node's device and forwarding hooks (see DESIGN.md substitutions).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cfs.hpp"
#include "core/ifaces.hpp"
#include "events/event.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "opencom/cf.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace mk::core {

class FrameworkManager;
class SystemCf;

/// NetLink plug-in: the kernel packet-filter surrogate.
class NetLinkComponent : public oc::Component {
 public:
  NetLinkComponent(SystemCf& system, net::SimNode& node);
  ~NetLinkComponent() override;

  /// Max packets buffered per destination awaiting a route (DYMOUM uses a
  /// similar small per-destination queue).
  static constexpr std::size_t kMaxBufferedPerDest = 5;
  /// Buffered packets are dropped if no route appears within this window.
  static constexpr Duration kBufferTimeout = sec(10);

  void on_route_found(net::Addr dest);

  std::size_t buffered_count() const;
  std::uint64_t buffer_drops() const { return buffer_drops_; }

 private:
  bool on_no_route(const net::DataHeader& hdr);
  void on_route_used(net::Addr dest);
  void on_send_failure(const net::DataHeader& hdr, net::Addr broken_hop);
  void sweep_buffer();

  SystemCf& system_;
  net::SimNode& node_;
  struct Buffered {
    net::DataHeader hdr;
    TimePoint at{};
  };
  std::map<net::Addr, std::vector<Buffered>> buffer_;
  std::uint64_t buffer_drops_ = 0;
  PeriodicTimer sweep_timer_;
};

class SystemCf : public oc::ComponentFramework, public CfsUnit {
 public:
  SystemCf(oc::Kernel& kernel, net::SimNode& node);
  ~SystemCf() override;

  // -- CfsUnit -------------------------------------------------------------------
  const std::string& unit_name() const override { return name_; }
  const ev::EventTuple& tuple() const override { return tuple_; }
  void deliver(const ev::Event& event) override;

  // -- C element: routing environment & message registry ---------------------------
  /// Initialises the host routing environment (IP forwarding, ICMP redirects
  /// — no-ops against the simulated kernel, kept for API fidelity).
  void init_routing_env();

  /// Registers a PacketBB message type under an event base name: incoming
  /// messages of that type raise `<base>_IN`; `<base>_OUT` events are
  /// accepted for transmission. (This is the paper's "NetworkDriver"
  /// loading step.) Re-registering the same pair is a no-op.
  void register_message(std::uint8_t msg_type, const std::string& base_name);

  /// Loads the PowerStatus context sensor (idempotent).
  void ensure_power_status(Duration interval = sec(2));

  /// Loads the link-quality context sensor (idempotent): per neighbour, an
  /// EWMA of control-frame reception against the sensing period, emitted as
  /// LINK_QUALITY events (attrs::kNeighbor + attrs::kQuality in [0,1]).
  /// This grounds the §4.5 context list's "link quality" in the same
  /// mechanism a real driver would use (frame arrival statistics).
  void ensure_link_quality(Duration period = sec(2), double alpha = 0.4);

  /// Last emitted link-quality estimate for a neighbour (1.0 if unknown).
  double link_quality(net::Addr neighbor) const;

  /// Enables PacketBB message aggregation: outgoing messages to the same
  /// link-level destination are held for up to `window` and sent as one
  /// packet (olsrd-style piggybacking of co-scheduled messages). A zero
  /// window (default) transmits immediately.
  void set_aggregation_window(Duration window);
  Duration aggregation_window() const { return aggregation_window_; }

  std::uint64_t packets_sent() const { return packets_sent_->value(); }
  std::uint64_t messages_sent() const { return messages_sent_->value(); }

  // -- packet-level TLV piggybacking (replication checkpoints) -------------------
  /// Polled once per outbound *broadcast* control packet; whatever it appends
  /// rides as packet-level TLVs at zero extra frames. Unicast packets are
  /// never decorated (a checkpoint aimed at one peer would miss the rest).
  using PacketTlvProvider = std::function<void(std::vector<pbb::Tlv>& out)>;
  /// Sees every packet-level TLV parsed off an incoming control frame,
  /// together with the transmitting neighbour.
  using PacketTlvObserver =
      std::function<void(const pbb::Tlv& tlv, net::Addr from)>;
  void set_packet_tlv_provider(PacketTlvProvider provider);
  void set_packet_tlv_observer(PacketTlvObserver observer);

  /// Loads the NetLink packet-filter plug-in (idempotent).
  void ensure_netlink();
  NetLinkComponent* netlink();

  // -- S element --------------------------------------------------------------------
  ISysState& sys_state();

  net::SimNode& node() { return node_; }
  Scheduler& scheduler() { return node_.scheduler(); }
  net::Addr self() const { return node_.addr(); }

  // -- manager wiring ------------------------------------------------------------------
  void set_manager(FrameworkManager* manager) { manager_ = manager; }
  FrameworkManager* manager() const { return manager_; }

  /// Emits an event upward (from below) through the manager.
  void emit(ev::Event event);

  // -- measurement (Table 1: Time to Process Message) -----------------------------------
  /// When enabled, the wall-clock time from control-frame receipt to
  /// completion of all synchronous processing is recorded per *_IN event.
  void enable_profiling(bool on) { profiling_ = on; }
  const std::map<std::string, Samples>& processing_times() const {
    return processing_times_;
  }
  void reset_profiling() { processing_times_.clear(); }

  std::uint64_t frames_received() const { return frames_received_->value(); }
  std::uint64_t parse_errors() const { return parse_errors_->value(); }

  // -- observability ------------------------------------------------------------
  /// Re-homes the System CF's counters ("sys.packets_sent", ...) onto a
  /// shared per-node registry (Manetkit wires this at deployment). Null
  /// reverts to the private fallback registry. Call before traffic flows —
  /// counts do not migrate between registries.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void on_control_frame(const net::Frame& frame);
  void transmit(const ev::Event& event);
  /// Frames `msgs` (referenced, not copied) into one packet and transmits.
  void send_messages(std::span<const pbb::Message* const> msgs, net::Addr dest);
  void flush_aggregation();
  void refresh_tuple();

  std::string name_ = "System";
  net::SimNode& node_;
  FrameworkManager* manager_ = nullptr;
  ev::EventTuple tuple_;

  // message registry: msg type <-> event ids
  struct MsgBinding {
    std::string base;
    ev::EventTypeId in;
    ev::EventTypeId out;
  };
  std::map<std::uint8_t, MsgBinding> msg_registry_;
  std::map<ev::EventTypeId, std::uint8_t> out_to_type_;

  NetLinkComponent* netlink_ = nullptr;
  std::unique_ptr<PeriodicTimer> power_timer_;

  std::unique_ptr<PeriodicTimer> linkq_timer_;
  double linkq_alpha_ = 0.4;
  std::map<net::Addr, std::uint32_t> frames_from_;  // within current period
  std::map<net::Addr, double> link_quality_;

  Duration aggregation_window_{0};
  // Shared handles, not copies: an aggregated message stays owned by its
  // (pooled) allocation until the flush serializes it.
  std::map<net::Addr, std::vector<ev::MsgPtr>> pending_out_;
  std::unique_ptr<OneShotTimer> flush_timer_;

  PacketTlvProvider tlv_provider_;
  PacketTlvObserver tlv_observer_;

  // RX/TX scratch, reused across frames (allocation-free steady state).
  pbb::Packet parse_scratch_;
  std::vector<const pbb::Message*> msg_ptr_scratch_;
  std::vector<pbb::Tlv> pkt_tlv_scratch_;

  bool profiling_ = false;
  std::map<std::string, Samples> processing_times_;

  // Counters live in a registry so deployments aggregate them by name; the
  // owned registry is the fallback when no shared one is wired in.
  obs::MetricsRegistry own_metrics_;
  obs::Counter* packets_sent_ = &own_metrics_.counter("sys.packets_sent");
  obs::Counter* messages_sent_ = &own_metrics_.counter("sys.messages_sent");
  obs::Counter* frames_received_ = &own_metrics_.counter("sys.frames_received");
  obs::Counter* parse_errors_ = &own_metrics_.counter("sys.parse_errors");
};

}  // namespace mk::core
