#include "obs/metrics.hpp"

#include <mutex>

#include "util/mem.hpp"

namespace mk::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, _] =
      counters_.try_emplace(std::string{name}, std::make_unique<Counter>());
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, _] =
      gauges_.try_emplace(std::string{name}, std::make_unique<Gauge>());
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::gauges()
    const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::shared_lock lock(mutex_);
  return counters_.size() + gauges_.size();
}

void MetricsRegistry::publish_pool_gauges() {
  std::string name;
  for (const mem::PoolSnapshot& p : mem::pool_snapshots()) {
    name.assign("mem.pool.").append(p.name);
    std::size_t base = name.size();
    name.append(".hits");
    gauge(name).set(static_cast<std::int64_t>(p.hits));
    name.resize(base);
    name.append(".misses");
    gauge(name).set(static_cast<std::int64_t>(p.misses));
    name.resize(base);
    name.append(".outstanding");
    gauge(name).set(p.outstanding);
  }
}

void MetricsRegistry::reset_counters() {
  std::shared_lock lock(mutex_);
  for (const auto& [_, c] : counters_) c->reset();
}

}  // namespace mk::obs
