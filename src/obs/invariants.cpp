#include "obs/invariants.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::obs {

namespace {

std::string_view violation_kind_name(InvariantChecker::Violation::Kind kind) {
  using Kind = InvariantChecker::Violation::Kind;
  switch (kind) {
    case Kind::kLoop:
      return "next-hop loop";
    case Kind::kInvalidNextHop:
      return "invalid next hop";
    case Kind::kAsymmetricLink:
      return "asymmetric link";
  }
  return "?";
}

}  // namespace

std::string InvariantChecker::Violation::describe() const {
  std::ostringstream out;
  out << violation_kind_name(kind) << " at node " << node << ": dest " << dest;
  if (kind != Kind::kAsymmetricLink) out << " via " << next_hop;
  out << " (t=" << time_us << "us)";
  return out.str();
}

InvariantChecker::InvariantChecker(std::vector<std::uint32_t> nodes,
                                   LookupFn lookup, RoutesFn routes,
                                   LinkFn link)
    : nodes_(std::move(nodes)),
      lookup_(std::move(lookup)),
      routes_(std::move(routes)),
      link_(std::move(link)) {
  MK_ASSERT(lookup_ != nullptr && routes_ != nullptr && link_ != nullptr);
}

void InvariantChecker::attach(Journal& journal) {
  MK_ASSERT(journal_ == nullptr, "checker already attached");
  journal_ = &journal;
  journal.add_observer([this](const Record& r) { on_record(r); });
}

void InvariantChecker::on_record(const Record& record) {
  switch (record.kind) {
    case RecordKind::kLinkUp:
      ever_up_[{record.node, static_cast<std::uint32_t>(record.a)}] = true;
      down_since_.erase({record.node, static_cast<std::uint32_t>(record.a)});
      break;
    case RecordKind::kLinkDown:
      down_since_[{record.node, static_cast<std::uint32_t>(record.a)}] =
          record.time_us;
      break;
    case RecordKind::kRouteAdd:
      check_route(record.node, static_cast<std::uint32_t>(record.a),
                  static_cast<std::uint32_t>(record.b), record.time_us);
      walk_for_loop(record.node, static_cast<std::uint32_t>(record.a),
                    record.time_us);
      break;
    default:
      break;  // route deletions cannot introduce violations
  }
}

void InvariantChecker::check_route(std::uint32_t node, std::uint32_t dest,
                                   std::uint32_t next_hop,
                                   std::int64_t time_us) {
  ++checks_run_;
  if (next_hop == node) {
    record_violation(Violation{Violation::Kind::kInvalidNextHop, node, dest,
                               next_hop, time_us});
    return;
  }
  if (link_(node, next_hop)) return;

  // The link is down. Within the grace window after a drop the protocol has
  // legitimately not yet noticed; beyond it (or if the link was never up)
  // the route is stale or forged.
  auto it = down_since_.find({node, next_hop});
  if (it != down_since_.end() && time_us - it->second <= grace_us_) return;
  record_violation(Violation{Violation::Kind::kInvalidNextHop, node, dest,
                             next_hop, time_us});
}

void InvariantChecker::walk_for_loop(std::uint32_t start, std::uint32_t dest,
                                     std::int64_t time_us) {
  ++checks_run_;
  // Any loop created by installing a route at `start` must pass through
  // `start`, so one walk from there suffices. Bounded by the node count.
  std::vector<std::uint32_t> visited;
  visited.reserve(nodes_.size());
  visited.push_back(start);
  std::uint32_t current = start;
  for (std::size_t hops = 0; hops <= nodes_.size(); ++hops) {
    if (current == dest) return;
    auto route = lookup_(current, dest);
    if (!route) return;  // dead end, not a loop
    std::uint32_t next = route->next_hop;
    if (std::find(visited.begin(), visited.end(), next) != visited.end()) {
      record_violation(
          Violation{Violation::Kind::kLoop, current, dest, next, time_us});
      return;
    }
    visited.push_back(next);
    current = next;
  }
  // More hops than nodes without reaching dest: necessarily a loop.
  record_violation(
      Violation{Violation::Kind::kLoop, start, dest, current, time_us});
}

std::size_t InvariantChecker::check_all(std::int64_t time_us) {
  const std::size_t before = violations_.size();
  for (std::uint32_t node : nodes_) {
    for (const RouteView& r : routes_(node)) {
      check_route(node, r.dest, r.next_hop, time_us);
      walk_for_loop(node, r.dest, time_us);
    }
  }
  if (check_symmetry_) {
    for (std::uint32_t a : nodes_) {
      for (std::uint32_t b : nodes_) {
        if (a == b || !link_(a, b) || link_(b, a)) continue;
        ++checks_run_;
        auto it = down_since_.find({b, a});
        if (it != down_since_.end() && time_us - it->second <= grace_us_) {
          continue;  // the reverse direction just dropped; give detection time
        }
        record_violation(
            Violation{Violation::Kind::kAsymmetricLink, a, b, 0, time_us});
      }
    }
  }
  return violations_.size() - before;
}

void InvariantChecker::set_violation_hook(ViolationHook hook) {
  hook_ = std::move(hook);
}

void InvariantChecker::record_violation(Violation v) {
  // Dedup on (kind, node, dest, next_hop): a stale route re-installed every
  // update round is one finding, not a flood.
  for (const Violation& seen : violations_) {
    if (seen.kind == v.kind && seen.node == v.node && seen.dest == v.dest &&
        seen.next_hop == v.next_hop) {
      return;
    }
  }
  if (hook_) {
    hook_(v);
  } else {
    MK_WARN("invariants", "violation: ", v.describe());
  }
  violations_.push_back(std::move(v));
}

void InvariantChecker::diagnostic_dump(std::ostream& out,
                                       std::size_t tail) const {
  out << "== invariant violations (" << violations_.size() << ") ==\n";
  for (const Violation& v : violations_) out << v.describe() << '\n';
  if (journal_ != nullptr) {
    auto records = journal_->snapshot();
    const std::size_t start = records.size() > tail ? records.size() - tail : 0;
    out << "== journal tail (" << records.size() - start << " of "
        << records.size() << " retained) ==\n";
    for (std::size_t i = start; i < records.size(); ++i) {
      out << to_string(records[i]) << '\n';
    }
  }
}

}  // namespace mk::obs
