#include "obs/journal.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/assert.hpp"

namespace mk::obs {

namespace {

struct KindName {
  RecordKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 18> kKindNames{{
    {RecordKind::kEventDispatch, "event_dispatch"},
    {RecordKind::kFrameTx, "frame_tx"},
    {RecordKind::kFrameRx, "frame_rx"},
    {RecordKind::kFrameDrop, "frame_drop"},
    {RecordKind::kTimerFire, "timer_fire"},
    {RecordKind::kRouteAdd, "route_add"},
    {RecordKind::kRouteDel, "route_del"},
    {RecordKind::kCfBind, "cf_bind"},
    {RecordKind::kCfUnbind, "cf_unbind"},
    {RecordKind::kLinkUp, "link_up"},
    {RecordKind::kLinkDown, "link_down"},
    {RecordKind::kFault, "fault"},
    {RecordKind::kReconfig, "reconfig"},
    {RecordKind::kComponentFault, "component_fault"},
    {RecordKind::kQuarantine, "quarantine"},
    {RecordKind::kSoftExpire, "soft_expire"},
    {RecordKind::kCheckpoint, "checkpoint"},
    {RecordKind::kRehydrate, "rehydrate"},
}};

}  // namespace

std::string_view kind_name(RecordKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::optional<RecordKind> kind_from_name(std::string_view name) {
  for (const auto& [k, n] : kKindNames) {
    if (n == name) return k;
  }
  return std::nullopt;
}

Journal::Journal(std::size_t capacity) : capacity_(capacity) {
  MK_ASSERT(capacity_ > 0);
  ring_.resize(capacity_);  // the one allocation; appends never touch the heap
}

void Journal::append(const Record& record) {
  SpinGuard lock(*this);
  ring_[total_ % capacity_] = record;
  ++total_;

  const std::uint64_t h = record_hash(record);
  ordered_ = fnv1a_word(ordered_, h);
  sum_ += h;                  // wrap-around (mod 2^64) is intended
  sum_sq_ += h * h;
  for (const auto& obs : observers_) obs(record);
}

std::uint64_t Journal::total() const {
  SpinGuard lock(*this);
  return total_;
}

std::uint64_t Journal::overwritten() const {
  SpinGuard lock(*this);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::size_t Journal::retained() const {
  SpinGuard lock(*this);
  return static_cast<std::size_t>(total_ > capacity_ ? capacity_ : total_);
}

std::uint64_t Journal::ordered_digest() const {
  SpinGuard lock(*this);
  return ordered_;
}

std::uint64_t Journal::canonical_digest() const {
  SpinGuard lock(*this);
  // Mix the two multiset accumulators so that collisions would need to
  // preserve both the sum and the sum of squares of the per-record hashes.
  return fnv1a_u64(fnv1a_u64(fnv1a_u64(kFnvOffset, sum_), sum_sq_), total_);
}

Journal::DigestSnapshot Journal::digests() const {
  SpinGuard lock(*this);
  return {ordered_,
          fnv1a_u64(fnv1a_u64(fnv1a_u64(kFnvOffset, sum_), sum_sq_), total_),
          total_};
}

std::vector<Record> Journal::snapshot() const {
  SpinGuard lock(*this);
  std::vector<Record> out;
  const std::uint64_t kept = total_ > capacity_ ? capacity_ : total_;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = total_ - kept; i < total_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

void Journal::add_observer(Observer observer) {
  MK_ASSERT(observer != nullptr);
  SpinGuard lock(*this);
  observers_.push_back(std::move(observer));
}

void Journal::clear() {
  SpinGuard lock(*this);
  total_ = 0;
  ordered_ = kFnvOffset;
  sum_ = 0;
  sum_sq_ = 0;
}

void Journal::dump(std::ostream& out) const {
  for (const Record& r : snapshot()) {
    out << to_string(r) << '\n';
  }
}

std::vector<Record> Journal::load(std::istream& in) {
  std::vector<Record> out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind;
    Record r;
    if (!(fields >> kind >> r.node >> r.time_us >> r.a >> r.b >> r.c)) continue;
    auto parsed = kind_from_name(kind);
    if (!parsed) continue;
    r.kind = *parsed;
    out.push_back(r);
  }
  return out;
}

std::optional<std::size_t> first_divergence(std::span<const Record> a,
                                            std::span<const Record> b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return i;
  }
  if (a.size() != b.size()) return n;
  return std::nullopt;
}

std::string to_string(const Record& record) {
  std::ostringstream out;
  out << kind_name(record.kind) << ' ' << record.node << ' ' << record.time_us
      << ' ' << record.a << ' ' << record.b << ' ' << record.c;
  return out.str();
}

}  // namespace mk::obs
