// Continuous routing-invariant checker (ISSUE 3): subscribes to route and
// link journal records and asserts, while reconfiguration is in flight, the
// correctness properties the paper's runtime-adaptation story depends on:
//
//  * loop-freedom      — following next-hops from any node never revisits a
//                        node before reaching the destination (walk bounded
//                        by the node count);
//  * route validity    — a newly installed route's next hop is a current
//                        neighbour (with a configurable grace window after a
//                        link drop, since protocols legitimately take one
//                        detection round to notice a break);
//  * neighbour symmetry — the link relation the routes are built over is
//                        bidirectional (checked in full sweeps; scenarios
//                        that intentionally use directed links disable it).
//
// The checker is deliberately decoupled from net/: it reads world state
// through provider callbacks (route lookup, link truth), so obs/ stays a
// leaf library and the same checker drives simulated worlds, unit-test
// fixtures, and replayed traces alike. On violation it fires a diagnostic
// hook (default: a WARN log line) and retains the violation for inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "util/time.hpp"

namespace mk::obs {

struct RouteView {
  std::uint32_t dest = 0;
  std::uint32_t next_hop = 0;
  std::uint32_t metric = 0;
};

class InvariantChecker {
 public:
  /// Route to `dest` installed at `node`, if any.
  using LookupFn = std::function<std::optional<RouteView>(std::uint32_t node,
                                                          std::uint32_t dest)>;
  /// All routes installed at `node`.
  using RoutesFn =
      std::function<std::vector<RouteView>(std::uint32_t node)>;
  /// Ground-truth directed link state (medium adjacency).
  using LinkFn = std::function<bool(std::uint32_t from, std::uint32_t to)>;

  InvariantChecker(std::vector<std::uint32_t> nodes, LookupFn lookup,
                   RoutesFn routes, LinkFn link);

  struct Violation {
    enum class Kind {
      kLoop,             // next-hop walk revisited a node
      kInvalidNextHop,   // installed route via a non-neighbour
      kAsymmetricLink,   // a hears b but b does not hear a
    };
    Kind kind{};
    std::uint32_t node = 0;      // where the offending route lives
    std::uint32_t dest = 0;
    std::uint32_t next_hop = 0;  // 0 for kAsymmetricLink (dest = peer)
    std::int64_t time_us = 0;
    std::string describe() const;
  };

  /// Registers this checker as a journal observer: every kRouteAdd record
  /// triggers the continuous checks; kLinkUp/kLinkDown keep the grace-window
  /// bookkeeping current. Call once.
  void attach(Journal& journal);

  /// Observer entry point (also callable directly when replaying a loaded
  /// trace through the checker).
  void on_record(const Record& record);

  /// Full sweep over every node's table: loop-freedom + route validity +
  /// (when enabled) link symmetry. Returns the number of new violations.
  /// Intended for quiescent points (post-convergence, end of scenario).
  std::size_t check_all(std::int64_t time_us = 0);

  /// A protocol legitimately keeps routing via a broken link until its
  /// neighbour detection notices; installs within `grace` of the link drop
  /// are not flagged. Default 5s (above every built-in hello-timeout).
  void set_link_grace(Duration grace) { grace_us_ = grace.count(); }

  /// Scenarios with intentionally directed links disable symmetry checks.
  void set_check_symmetry(bool on) { check_symmetry_ = on; }

  using ViolationHook = std::function<void(const Violation&)>;
  /// Replaces the diagnostic hook (default: WARN log line per violation).
  void set_violation_hook(ViolationHook hook);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  void clear_violations() { violations_.clear(); }

  /// Post-mortem dump: violations plus the tail of the attached journal.
  void diagnostic_dump(std::ostream& out, std::size_t tail = 64) const;

 private:
  void record_violation(Violation v);
  void check_route(std::uint32_t node, std::uint32_t dest,
                   std::uint32_t next_hop, std::int64_t time_us);
  void walk_for_loop(std::uint32_t start, std::uint32_t dest,
                     std::int64_t time_us);

  std::vector<std::uint32_t> nodes_;
  LookupFn lookup_;
  RoutesFn routes_;
  LinkFn link_;
  Journal* journal_ = nullptr;
  std::int64_t grace_us_ = 5'000'000;
  bool check_symmetry_ = true;
  ViolationHook hook_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  /// Directed link -> sim time it last went down (erased when it comes up).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> down_since_;
  /// Directed links that have been up at least once since attach.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> ever_up_;
};

}  // namespace mk::obs
