// Trace journal: the per-node/per-world flight recorder behind MANETKit's
// "safe adaptation" evidence (ISSUE 3). Hooks in the Framework Manager, the
// simulated medium, the scheduler and the kernel route tables append
// fixed-size structured records into a preallocated ring buffer, so enabling
// tracing costs no allocations on the hot path — only a spinlocked store and
// a pair of digest accumulator updates.
//
// Two digests are maintained incrementally over the *entire* record stream
// (not just the retained ring window):
//
//  * ordered_digest()   — an FNV-1a chain over canonicalized records. Two
//                         single-threaded runs with the same seed must match
//                         byte-for-byte; any divergence (even a reordering)
//                         changes the value.
//  * canonical_digest() — an order-insensitive multiset digest (sum and
//                         sum-of-squares of per-record hashes). Identical
//                         whenever the *set* of records matches, which is the
//                         right equivalence when comparing a single-threaded
//                         run against a pool-executor run whose worker
//                         interleaving reorders otherwise-identical records.
//
// Records are canonical by construction: they carry sim time, stable content
// hashes (event-type name hashes, payload FNV) and protocol-level ids — never
// pointers, wall-clock times or interning-order-dependent dense ids.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <atomic>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace mk::obs {

// ------------------------------------------------------------------ hashing

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incremental FNV-1a over one 64-bit word (byte at a time, LE order).
constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (i * 8)) & 0xff)) * kFnvPrime;
  }
  return h;
}

/// FNV-1a over a byte span (payload hashing for byte-for-byte tx records).
constexpr std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes,
                                    std::uint64_t h = kFnvOffset) {
  for (std::uint8_t b : bytes) h = (h ^ b) * kFnvPrime;
  return h;
}

/// FNV-1a over a string (stable name hashes, interning-order independent).
constexpr std::uint64_t fnv1a_str(std::string_view s,
                                  std::uint64_t h = kFnvOffset) {
  for (char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * kFnvPrime;
  return h;
}

// ------------------------------------------------------------------ records

enum class RecordKind : std::uint8_t {
  kEventDispatch = 1,  // a=stable event-type hash, b=#targets, c=emitter hash
  kFrameTx = 2,        // a=link dest (bcast=0xffffffff), b=wire size, c=payload hash
  kFrameRx = 3,        // a=transmitter, b=wire size, c=payload hash
  kFrameDrop = 4,      // a=transmitter/dest, b=wire size, c=DropReason
  kTimerFire = 5,      // a=timer id (deterministic sim sequence number)
  kRouteAdd = 6,       // a=dest, b=next hop, c=metric
  kRouteDel = 7,       // a=dest
  kCfBind = 8,         // a=stable unit-name hash, b=layer
  kCfUnbind = 9,       // a=stable unit-name hash, b=layer
  kLinkUp = 10,        // a=peer
  kLinkDown = 11,      // a=peer
  kFault = 12,         // a=fault action kind, b/c=action parameters
  kReconfig = 13,      // a=ReconfigPhase | (extra<<8: backoff us on kRetry,
                       //    attempt count on kCommit/kRollback),
                       // b=from-name hash, c=to-name hash
  kComponentFault = 14,  // a=stable unit-name hash (0 = unattributed timer),
                         // b=ComponentFaultReason, c=unit's lifetime fault #
  kQuarantine = 15,      // a=stable unit-name hash, b=QuarantinePhase,
                         // c=phase detail (window fault count on kEnter,
                         //   attempt # on kRestart, backoff us on kRecover)
  kSoftExpire = 16,      // a=stable soft-state set-name hash, b=entry key
                         // (address, or packed address|seq for duplicate
                         // sets), c=entries left in the set after expiry
  kCheckpoint = 17,      // a=stable unit-name hash, b=CheckpointPhase<<32 |
                         //   checkpoint epoch, c=blob bytes (kPublish /
                         //   kStore / kDelta) or peer address (kReject)
  kRehydrate = 18,       // a=stable unit-name hash (0 = whole node),
                         // b=RehydratePhase<<32 | checkpoint epoch,
                         // c=peer/origin address involved
};

/// Reasons packed into kFrameDrop's c field. Every frame that leaves the air
/// without being delivered lands in the journal under exactly one of these —
/// nothing is silently elided, so first_divergence() on two runs' drop
/// streams pinpoints where behaviour parted ways.
enum class DropReason : std::uint64_t {
  kLoss = 1,       // channel loss probability draw
  kNoLink = 2,     // unicast to a non-adjacent destination (link-layer fail)
  kLinkLost = 3,   // link went down while the frame was in flight
  kNodeDown = 4,   // receiver device down/detached at delivery time
  kFaultLoss = 5,  // dropped by an injected fault (loss burst / partition)
};

/// Phases packed into kReconfig's a field (protocol replace lifecycle).
enum class ReconfigPhase : std::uint64_t {
  kBegin = 1,     // quiesced, about to swap
  kRetry = 2,     // a deploy attempt failed; backing off (c=backoff us)
  kCommit = 3,    // replacement active (state carried if requested)
  kRollback = 4,  // permanent failure; prior protocol redeployed
};

/// Reasons packed into kComponentFault's b field (supervision, ISSUE 5).
enum class ComponentFaultReason : std::uint64_t {
  kException = 1,    // handler threw out of deliver()
  kDeadline = 2,     // charged dispatch cost exceeded the watchdog deadline
  kTimer = 3,        // a scheduled timer callback threw (trapped world-side)
  kCorrupt = 4,      // injected output-integrity fault (misbehave corrupt)
  kAllocBudget = 5,  // dispatch exceeded the per-dispatch allocation budget
                     // (mk::memtrack window around the guarded deliver)
};

/// Phases packed into kQuarantine's b field (circuit breaker + recovery
/// ladder lifecycle; one record per transition).
enum class QuarantinePhase : std::uint64_t {
  kEnter = 1,     // breaker tripped; unit unbound and routed around
  kRestart = 2,   // recovery attempt: re-instantiate with S element carried
  kRecover = 3,   // restart committed; unit live again (c=backoff us used)
  kFallback = 4,  // restarts exhausted; failed unit undeployed, a co-deployed
                  // protocol keeps the node routing
  kEscalate = 5,  // no fallback available; surfaced to the policy engine via
                  // the ContextView health signal
  kProbation = 6, // unit stayed clean for a full fault window post-recovery;
                  // ladder (restart count/backoff) reset
};

/// Detail flags OR-ed into the high bits of a kQuarantine kRestart record's c
/// field (low 32 bits stay the attempt number), distinguishing restart-rung
/// sub-phases (ISSUE 10 satellite: variant-aware recovery).
inline constexpr std::uint64_t kRestartVariantFlag = 1ull << 32;
/// The carried S element was judged suspect (breaker re-tripped within
/// probation); the unit restarted stateless and peer replicas were consulted.
inline constexpr std::uint64_t kRestartStatelessFlag = 1ull << 33;

/// Phases packed into the high 32 bits of a kCheckpoint record's b field
/// (S-element replication, ISSUE 10; low 32 bits carry the RFC-1982 epoch).
enum class CheckpointPhase : std::uint64_t {
  kPublish = 1,  // full snapshot staged for piggyback / sent in a beacon
  kStore = 2,    // peer replica accepted into the local store
  kDelta = 3,    // hot-standby delta published (c = patch bytes)
  kDeltaApply = 4,  // hot-standby delta applied onto a stored replica
  kReject = 5,   // replica refused: RFC-1982-older epoch or delta base miss
};

/// Phases packed into the high 32 bits of a kRehydrate record's b field.
enum class RehydratePhase : std::uint64_t {
  kSolicit = 1,      // restarted node broadcast a replica solicitation
  kOffer = 2,        // peer answered a solicit with a stored replica
  kApply = 3,        // offered replica decoded into the live S element
  kStaleReject = 4,  // offer ignored: older epoch than what is already live,
                     // or past the staleness bound
  kColdStart = 5,    // no usable replica arrived; protocol reconverges cold
};

std::string_view kind_name(RecordKind kind);
std::optional<RecordKind> kind_from_name(std::string_view name);

/// One canonical trace record. Plain data, fixed size: the ring never touches
/// the heap after construction.
struct Record {
  RecordKind kind{};
  std::uint32_t node = 0;    // address the record was observed at (0 = world)
  std::int64_t time_us = 0;  // sim time
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const Record&) const = default;
};

/// One wordwise FNV-1a step: a single multiply per 64-bit field, cheap
/// enough for the per-append hot path (the byte-stepped variants above are
/// reserved for strings and payloads, which are hashed once and cached).
constexpr std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Canonical per-record hash (the unit both digests build on). Six wordwise
/// steps plus a final fold so the canonical (sum / sum-of-squares) digest
/// sees well-mixed low bits.
constexpr std::uint64_t record_hash(const Record& r) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_word(h, static_cast<std::uint64_t>(r.kind));
  h = fnv1a_word(h, r.node);
  h = fnv1a_word(h, static_cast<std::uint64_t>(r.time_us));
  h = fnv1a_word(h, r.a);
  h = fnv1a_word(h, r.b);
  h = fnv1a_word(h, r.c);
  h ^= h >> 32;
  return h * kFnvPrime;
}

// ------------------------------------------------------------------ journal

class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit Journal(std::size_t capacity = kDefaultCapacity);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends a record: O(1), allocation-free (the ring is preallocated).
  /// Thread-safe via a spinlock — the critical section is a store plus a
  /// handful of multiplies, far below the cost of parking a thread, and the
  /// uncontended path is a single atomic exchange. In threaded deployments
  /// records from different workers interleave in lock-acquisition order.
  void append(const Record& record);

  std::size_t capacity() const { return capacity_; }
  /// Total records ever appended (appends keep counting after wrap-around).
  std::uint64_t total() const;
  /// Records lost to ring wrap-around (total() - retained).
  std::uint64_t overwritten() const;
  std::size_t retained() const;

  /// Running digests over all appended records (see file comment).
  std::uint64_t ordered_digest() const;
  std::uint64_t canonical_digest() const;

  /// Consistent one-lock capture of both digests plus the record count, for
  /// per-cell evidence in the scenario matrix (reading the three accessors
  /// separately could interleave with appends from a pool executor).
  struct DigestSnapshot {
    std::uint64_t ordered = 0;
    std::uint64_t canonical = 0;
    std::uint64_t records = 0;
  };
  DigestSnapshot digests() const;

  /// Copy of the retained window, oldest first.
  std::vector<Record> snapshot() const;

  /// Observer invoked synchronously on every append (under the journal lock:
  /// observers must not append or block). Used by the invariant checker.
  using Observer = std::function<void(const Record&)>;
  void add_observer(Observer observer);

  /// Drops all records and resets digests (observers are kept).
  void clear();

  // -- dump / load (post-mortem diffing) -------------------------------------
  /// Writes the retained window as one text line per record:
  ///   <kind> <node> <time_us> <a> <b> <c>
  void dump(std::ostream& out) const;

  /// Parses a dump() stream back into records (for diffing a saved trace
  /// against a fresh run). Unparseable lines are skipped.
  static std::vector<Record> load(std::istream& in);

 private:
  /// RAII spinlock guard over busy_.
  class SpinGuard {
   public:
    explicit SpinGuard(const Journal& journal) : journal_(journal) {
      while (journal_.busy_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { journal_.busy_.clear(std::memory_order_release); }
    SpinGuard(const SpinGuard&) = delete;
    SpinGuard& operator=(const SpinGuard&) = delete;

   private:
    const Journal& journal_;
  };

  const std::size_t capacity_;
  mutable std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::vector<Record> ring_;  // preallocated to capacity_
  std::uint64_t total_ = 0;
  std::uint64_t ordered_ = kFnvOffset;
  std::uint64_t sum_ = 0;
  std::uint64_t sum_sq_ = 0;
  std::vector<Observer> observers_;
};

/// Index of the first record where the two streams diverge (nullopt when one
/// is a prefix of the other and lengths match — i.e. identical).
std::optional<std::size_t> first_divergence(std::span<const Record> a,
                                            std::span<const Record> b);

/// Human-readable one-line rendering (matches dump()'s format).
std::string to_string(const Record& record);

}  // namespace mk::obs
