// Metrics registry: one named counter/gauge API unifying the ad-hoc counters
// previously scattered across SimMedium::Stats, the executors, the System CF
// and the protocol CFs.
//
// Counters are owned by the registry and handed out as stable references, so
// hot paths intern once ("olsr.tc_in") and thereafter pay a single relaxed
// atomic increment — exact under every concurrency model, including the pool
// executor mutating from worker threads (previously plain ints under-counted
// there).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mk::obs {

/// Monotonic event count. Relaxed ordering: counters are statistics, not
/// synchronization.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, live bytes, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// The reference stays valid for the registry's lifetime — cache it and
  /// increment without further lookups.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Value of a named counter, 0 when absent (test/report convenience).
  std::uint64_t counter_value(std::string_view name) const;

  /// Sorted (name, value) snapshot of every counter / gauge.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, std::int64_t>> gauges() const;

  std::size_t size() const;

  /// Zeroes every counter (names and handles stay registered).
  void reset_counters();

  /// Refreshes the mem.pool.* gauges from the memory-discipline pools
  /// (mem::pool_snapshots): for each registered pool `<p>`, sets
  /// mem.pool.<p>.hits, .misses and .outstanding. Pull-based — call before
  /// reading (the pools themselves never touch the registry on hot paths).
  void publish_pool_gauges();

 private:
  mutable std::shared_mutex mutex_;
  // node-based maps: handles must stay stable across later registrations.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace mk::obs
