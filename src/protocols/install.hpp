// One-stop registration of every built-in protocol builder on a MANETKit
// instance.
#pragma once

#include "core/manetkit.hpp"

namespace mk::proto {

struct InstallParams;  // forward (defaults below)

/// Registers neighbor, mpr, olsr, dymo and aodv builders with their default
/// parameters. Nothing is deployed.
void install_all(core::Manetkit& kit);

}  // namespace mk::proto
