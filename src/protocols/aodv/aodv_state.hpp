// S element of the AODV CF (RFC 3561 core): routing table with destination
// sequence numbers and precursor lists, RREQ-ID duplicate cache, and the
// pending-discovery table.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ifaces.hpp"
#include "core/state_codec.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "util/time.hpp"

namespace mk::proto {

struct AodvRoute {
  net::Addr dest = net::kNoAddr;
  net::Addr next_hop = net::kNoAddr;
  std::uint16_t dest_seq = 0;
  bool seq_valid = false;
  std::uint8_t hops = 0;
  bool valid = true;
  TimePoint expires{};
  std::set<net::Addr> precursors;
};

/// How long an expired/invalidated entry is retained (sequence-number
/// memory) before deletion — RFC 3561's DELETE_PERIOD. Forgetting too early
/// lets stale same-sequence adverts re-form loops.
inline constexpr Duration kAodvDeletePeriod = sec(15);

struct IAodvState : oc::Interface {
  virtual std::optional<AodvRoute> route_to(net::Addr dest) const = 0;
  virtual std::size_t route_count() const = 0;
};

class AodvState : public oc::Component,
                  public core::IState,
                  public core::IStateCodec,
                  public IAodvState {
 public:
  AodvState();

  /// Standard AODV acceptance rule (newer seq, or equal seq with fewer
  /// hops, or unknown seq on the existing entry).
  bool update_route(net::Addr dest, std::uint16_t seq, bool seq_valid,
                    net::Addr next_hop, std::uint8_t hops, TimePoint now,
                    Duration lifetime);

  void add_precursor(net::Addr dest, net::Addr precursor);

  std::vector<std::pair<net::Addr, std::uint16_t>> invalidate_via(
      net::Addr next_hop);
  std::optional<std::uint16_t> invalidate(net::Addr dest);
  void extend_lifetime(net::Addr dest, TimePoint now, Duration lifetime);

  /// Two-phase expiry (RFC 3561): lapsed *valid* routes become invalid (and
  /// are returned for kernel-route removal, with their seqnum memory kept);
  /// entries invalid for longer than kAodvDeletePeriod are finally deleted.
  std::vector<net::Addr> expire(TimePoint now);

  /// Single-entry two-phase expiry (soft-state layer). Phase 1 — a *valid*
  /// entry lapsed: mark invalid, bump dest_seq, keep the seqnum memory for
  /// kAodvDeletePeriod and return the retention deadline with `invalidated`
  /// set (caller removes the kernel route). Phase 2 — an *invalid* entry
  /// lapsed: delete it outright, returns nullopt. If the deadline moved into
  /// the future meanwhile, returns it untouched so the caller can re-arm.
  std::optional<TimePoint> expire_one(net::Addr dest, TimePoint now,
                                      bool& invalidated);

  std::optional<AodvRoute> route_to(net::Addr dest) const override;
  std::size_t route_count() const override { return routes_.size(); }
  const std::map<net::Addr, AodvRoute>& all_routes() const { return routes_; }

  std::uint16_t own_seq() const { return own_seq_; }
  std::uint16_t bump_seq() { return ++own_seq_; }
  std::uint32_t next_rreq_id() { return ++rreq_id_; }

  /// RREQ duplicate cache keyed by (originator, rreq id).
  bool check_rreq_seen(net::Addr origin, std::uint32_t rreq_id, TimePoint now);
  void expire_rreq_cache(TimePoint now, Duration hold);
  /// Removes one cache tuple by originator and the rreq id's *low 24 bits*
  /// (the soft-state key only carries those; ids are monotonic per node, so
  /// the truncation cannot collide within rreq_id_hold). Returns true if a
  /// matching tuple existed.
  bool drop_rreq_seen(net::Addr origin, std::uint32_t rreq_id_low24);
  /// All live cache tuples (expiry re-seeding).
  std::vector<std::pair<net::Addr, std::uint32_t>> rreq_seen_entries() const;

  // -- pending discoveries (same discipline as DYMO) ---------------------------
  static constexpr std::uint8_t kMaxTries = 2;  // RREQ_RETRIES in RFC 3561
  bool has_pending(net::Addr dest) const;
  void start_pending(net::Addr dest, TimePoint now, Duration wait);
  std::vector<net::Addr> due_retries(TimePoint now,
                                     std::vector<net::Addr>& gave_up);
  /// Advances one pending discovery whose retry deadline lapsed: bumps the
  /// try-counter, doubles the backoff and returns the new retry deadline.
  /// Returns nullopt if the discovery is absent or just gave up (dropped).
  std::optional<TimePoint> retry_pending(net::Addr dest, TimePoint now);
  void finish_pending(net::Addr dest);
  /// Destinations with discoveries in flight (expiry re-seeding).
  std::vector<net::Addr> pending_dests() const;

  std::string describe() const override;

  // -- IStateCodec (S-element replication, ISSUE 10) ----------------------------
  /// Route table (with precursors and seqnum memory), own sequence number,
  /// RREQ-ID counter and the RREQ duplicate cache. Pending discoveries are
  /// transient negotiation state and are not carried.
  void encode_state(std::vector<std::uint8_t>& out) const override;
  bool decode_state(std::span<const std::uint8_t> blob) override;
  void reset_state() override;

 private:
  struct Pending {
    std::uint8_t tries = 1;
    TimePoint next_retry{};
    Duration backoff{};
  };
  std::map<net::Addr, AodvRoute> routes_;
  std::uint16_t own_seq_ = 1;
  std::uint32_t rreq_id_ = 0;
  std::map<std::pair<net::Addr, std::uint32_t>, TimePoint> rreq_seen_;
  std::map<net::Addr, Pending> pending_;
};

}  // namespace mk::proto
