#include "protocols/aodv/aodv_state.hpp"

#include <sstream>

namespace mk::proto {

namespace {

bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

}  // namespace

AodvState::AodvState() : oc::Component("aodv.AodvState") {
  set_instance_name("State");
  provide("IAodvState", static_cast<IAodvState*>(this));
  provide("IState", static_cast<core::IState*>(this));
  provide("IStateCodec", static_cast<core::IStateCodec*>(this));
}

bool AodvState::update_route(net::Addr dest, std::uint16_t seq, bool seq_valid,
                             net::Addr next_hop, std::uint8_t hops,
                             TimePoint now, Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end()) {
    const AodvRoute& r = it->second;
    bool accept = !r.seq_valid || (seq_valid && seq_newer(seq, r.dest_seq)) ||
                  (seq_valid && seq == r.dest_seq &&
                   (!r.valid || hops < r.hops));
    if (!accept) {
      if (r.valid && r.next_hop == next_hop) {
        it->second.expires = now + lifetime;
      }
      return false;
    }
  }
  AodvRoute r;
  if (it != routes_.end()) r.precursors = it->second.precursors;
  r.dest = dest;
  r.next_hop = next_hop;
  r.dest_seq = seq;
  r.seq_valid = seq_valid;
  r.hops = hops;
  r.valid = true;
  r.expires = now + lifetime;
  routes_[dest] = std::move(r);
  return true;
}

void AodvState::add_precursor(net::Addr dest, net::Addr precursor) {
  auto it = routes_.find(dest);
  if (it != routes_.end()) it->second.precursors.insert(precursor);
}

std::vector<std::pair<net::Addr, std::uint16_t>> AodvState::invalidate_via(
    net::Addr next_hop) {
  std::vector<std::pair<net::Addr, std::uint16_t>> out;
  for (auto& [dest, r] : routes_) {
    if (r.valid && r.next_hop == next_hop) {
      r.valid = false;
      ++r.dest_seq;  // RFC 3561 §6.11: increment on invalidation
      out.emplace_back(dest, r.dest_seq);
    }
  }
  return out;
}

std::optional<std::uint16_t> AodvState::invalidate(net::Addr dest) {
  auto it = routes_.find(dest);
  if (it == routes_.end() || !it->second.valid) return std::nullopt;
  it->second.valid = false;
  ++it->second.dest_seq;
  return it->second.dest_seq;
}

void AodvState::extend_lifetime(net::Addr dest, TimePoint now,
                                Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end() && it->second.valid) {
    it->second.expires = now + lifetime;
  }
}

std::vector<net::Addr> AodvState::expire(TimePoint now) {
  std::vector<net::Addr> out;
  for (auto it = routes_.begin(); it != routes_.end();) {
    AodvRoute& r = it->second;
    if (r.expires >= now) {
      ++it;
      continue;
    }
    if (r.valid) {
      // Phase 1: stop using it, keep the seqnum memory for DELETE_PERIOD.
      r.valid = false;
      ++r.dest_seq;
      r.expires = now + kAodvDeletePeriod;
      out.push_back(it->first);
      ++it;
    } else {
      it = routes_.erase(it);
    }
  }
  return out;
}

std::optional<TimePoint> AodvState::expire_one(net::Addr dest, TimePoint now,
                                               bool& invalidated) {
  invalidated = false;
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  AodvRoute& r = it->second;
  if (r.expires > now) return r.expires;  // deadline moved; chase it
  if (r.valid) {
    // Phase 1: stop using it, keep the seqnum memory for DELETE_PERIOD.
    r.valid = false;
    ++r.dest_seq;
    r.expires = now + kAodvDeletePeriod;
    invalidated = true;
    return r.expires;
  }
  routes_.erase(it);
  return std::nullopt;
}

std::optional<AodvRoute> AodvState::route_to(net::Addr dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

bool AodvState::check_rreq_seen(net::Addr origin, std::uint32_t rreq_id,
                                TimePoint now) {
  auto [it, inserted] = rreq_seen_.emplace(std::make_pair(origin, rreq_id), now);
  if (!inserted) {
    it->second = now;
    return true;
  }
  return false;
}

void AodvState::expire_rreq_cache(TimePoint now, Duration hold) {
  for (auto it = rreq_seen_.begin(); it != rreq_seen_.end();) {
    it = (now - it->second > hold) ? rreq_seen_.erase(it) : std::next(it);
  }
}

bool AodvState::has_pending(net::Addr dest) const {
  return pending_.find(dest) != pending_.end();
}

void AodvState::start_pending(net::Addr dest, TimePoint now, Duration wait) {
  pending_[dest] = Pending{1, now + wait, wait};
}

std::vector<net::Addr> AodvState::due_retries(TimePoint now,
                                              std::vector<net::Addr>& gave_up) {
  std::vector<net::Addr> retry;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (p.next_retry > now) {
      ++it;
      continue;
    }
    if (p.tries >= kMaxTries) {
      gave_up.push_back(it->first);
      it = pending_.erase(it);
      continue;
    }
    ++p.tries;
    p.backoff = p.backoff * 2;
    p.next_retry = now + p.backoff;
    retry.push_back(it->first);
    ++it;
  }
  return retry;
}

std::optional<TimePoint> AodvState::retry_pending(net::Addr dest,
                                                  TimePoint now) {
  auto it = pending_.find(dest);
  if (it == pending_.end()) return std::nullopt;
  Pending& p = it->second;
  if (p.tries >= kMaxTries) {
    pending_.erase(it);
    return std::nullopt;
  }
  ++p.tries;
  p.backoff = p.backoff * 2;
  p.next_retry = now + p.backoff;
  return p.next_retry;
}

void AodvState::finish_pending(net::Addr dest) { pending_.erase(dest); }

std::vector<net::Addr> AodvState::pending_dests() const {
  std::vector<net::Addr> out;
  out.reserve(pending_.size());
  for (const auto& [dest, _] : pending_) out.push_back(dest);
  return out;
}

bool AodvState::drop_rreq_seen(net::Addr origin, std::uint32_t rreq_id_low24) {
  auto it = rreq_seen_.lower_bound(std::make_pair(origin, std::uint32_t{0}));
  for (; it != rreq_seen_.end() && it->first.first == origin; ++it) {
    if ((it->first.second & 0xFFFFFF) == rreq_id_low24) {
      rreq_seen_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::pair<net::Addr, std::uint32_t>> AodvState::rreq_seen_entries()
    const {
  std::vector<std::pair<net::Addr, std::uint32_t>> out;
  out.reserve(rreq_seen_.size());
  for (const auto& [key, _] : rreq_seen_) out.push_back(key);
  return out;
}

// Codec layout (version 1, big-endian):
//   u8 version | u16 own_seq | u32 rreq_id
//   u16 n_routes | per route: u32 dest | u32 next_hop | u16 dest_seq
//                            | u8 seq_valid | u8 hops | u8 valid
//                            | i64 expires_us | u16 n_precursors | u32*n
//   u16 n_rreq_seen | per tuple: u32 origin | u32 rreq_id | i64 seen_us
namespace {
constexpr std::uint8_t kAodvCodecVersion = 1;
}

void AodvState::encode_state(std::vector<std::uint8_t>& out) const {
  namespace cc = core::codec;
  cc::put_u8(out, kAodvCodecVersion);
  cc::put_u16(out, own_seq_);
  cc::put_u32(out, rreq_id_);
  cc::put_u16(out, static_cast<std::uint16_t>(routes_.size()));
  for (const auto& [dest, r] : routes_) {
    cc::put_u32(out, dest);
    cc::put_u32(out, r.next_hop);
    cc::put_u16(out, r.dest_seq);
    cc::put_u8(out, r.seq_valid ? 1 : 0);
    cc::put_u8(out, r.hops);
    cc::put_u8(out, r.valid ? 1 : 0);
    cc::put_i64(out, r.expires.us);
    cc::put_u16(out, static_cast<std::uint16_t>(r.precursors.size()));
    for (net::Addr p : r.precursors) cc::put_u32(out, p);
  }
  cc::put_u16(out, static_cast<std::uint16_t>(rreq_seen_.size()));
  for (const auto& [key, seen] : rreq_seen_) {
    cc::put_u32(out, key.first);
    cc::put_u32(out, key.second);
    cc::put_i64(out, seen.us);
  }
}

bool AodvState::decode_state(std::span<const std::uint8_t> blob) {
  namespace cc = core::codec;
  std::size_t off = 0;
  std::uint8_t version = 0;
  if (!cc::get_u8(blob, off, version) || version != kAodvCodecVersion) {
    return false;
  }
  reset_state();
  if (!cc::get_u16(blob, off, own_seq_) || !cc::get_u32(blob, off, rreq_id_)) {
    return false;
  }
  std::uint16_t n_routes = 0;
  if (!cc::get_u16(blob, off, n_routes)) return false;
  for (std::uint16_t i = 0; i < n_routes; ++i) {
    AodvRoute r;
    std::uint32_t dest = 0, next_hop = 0;
    std::uint8_t seq_valid = 0, valid = 0;
    std::int64_t expires_us = 0;
    std::uint16_t n_prec = 0;
    if (!cc::get_u32(blob, off, dest) || !cc::get_u32(blob, off, next_hop) ||
        !cc::get_u16(blob, off, r.dest_seq) ||
        !cc::get_u8(blob, off, seq_valid) || !cc::get_u8(blob, off, r.hops) ||
        !cc::get_u8(blob, off, valid) || !cc::get_i64(blob, off, expires_us) ||
        !cc::get_u16(blob, off, n_prec)) {
      return false;
    }
    r.dest = dest;
    r.next_hop = next_hop;
    r.seq_valid = seq_valid != 0;
    r.valid = valid != 0;
    r.expires = TimePoint{expires_us};
    for (std::uint16_t j = 0; j < n_prec; ++j) {
      std::uint32_t p = 0;
      if (!cc::get_u32(blob, off, p)) return false;
      r.precursors.insert(p);
    }
    routes_[dest] = std::move(r);
  }
  std::uint16_t n_seen = 0;
  if (!cc::get_u16(blob, off, n_seen)) return false;
  for (std::uint16_t i = 0; i < n_seen; ++i) {
    std::uint32_t origin = 0, rreq_id = 0;
    std::int64_t seen_us = 0;
    if (!cc::get_u32(blob, off, origin) || !cc::get_u32(blob, off, rreq_id) ||
        !cc::get_i64(blob, off, seen_us)) {
      return false;
    }
    rreq_seen_[std::make_pair(net::Addr{origin}, rreq_id)] = TimePoint{seen_us};
  }
  return off == blob.size();
}

void AodvState::reset_state() {
  routes_.clear();
  own_seq_ = 1;
  rreq_id_ = 0;
  rreq_seen_.clear();
  pending_.clear();
}

std::string AodvState::describe() const {
  std::ostringstream os;
  os << "aodv routes: " << routes_.size() << " seq: " << own_seq_
     << " rreq-id: " << rreq_id_;
  return os.str();
}

}  // namespace mk::proto
