// The AODV CF — the protocol the paper's original (Java) MANETKit
// proof-of-concept implemented [WWASN 2008]. RFC 3561 core: expanding
// route discovery with RREQ-IDs and destination sequence numbers, unicast
// RREP along the reverse route, precursor-aware RERR, plus the paper's
// §4.3 example of piggybacking routing-table entries on the Neighbour
// Detection CF's HELLOs so neighbours learn routes for free.
//
// Event tuple:
//   required = {AODV_IN, NO_ROUTE, ROUTE_UPDATE, SEND_ROUTE_ERR,
//               NHOOD_CHANGE}   (NO_ROUTE exclusively)
//   provided = {AODV_OUT, ROUTE_FOUND}
//
// All three AODV message kinds (RREQ / RREP / RERR) flow through the single
// AODV_IN/AODV_OUT pair, demultiplexed by PacketBB message type inside the
// handlers — demonstrating that the framework does not force one event type
// per message kind.
#pragma once

#include <memory>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "core/soft_state.hpp"
#include "protocols/aodv/aodv_state.hpp"

namespace mk::proto {

struct AodvParams {
  Duration active_route_timeout = sec(3);
  Duration rreq_wait = sec(1);
  Duration rreq_id_hold = sec(6);
  std::uint8_t net_diameter = 35;  // RREQ hop limit
  bool piggyback_routes = true;    // advertise routes in HELLOs
};

/// Soft-state set ids of the AODV CF, fixed by definition order in
/// build_aodv_cf.
namespace aodv_sets {
inline constexpr core::ISoftExpiry::SetId kRoute = 0;
inline constexpr core::ISoftExpiry::SetId kPending = 1;
inline constexpr core::ISoftExpiry::SetId kRreqId = 2;
}  // namespace aodv_sets

/// Packs an RREQ duplicate-cache tuple into SoftExpiry's 56-bit key space.
/// The rreq id is a monotonic per-node counter, so its low 24 bits cannot
/// collide within rreq_id_hold.
inline std::uint64_t aodv_rreq_key(net::Addr origin, std::uint32_t rreq_id) {
  return (static_cast<std::uint64_t>(origin) << 24) | (rreq_id & 0xFFFFFF);
}

std::unique_ptr<core::ManetProtocolCf> build_aodv_cf(core::Manetkit& kit,
                                                     AodvParams params = {});

/// Registers "aodv" (layer 20, category "reactive").
void register_aodv(core::Manetkit& kit, AodvParams params = {});

AodvState* aodv_state(core::ManetProtocolCf& cf);

void aodv_discover(core::ManetProtocolCf& cf, net::Addr target,
                   AodvParams params = {});

}  // namespace mk::proto
