// The AODV CF — the protocol the paper's original (Java) MANETKit
// proof-of-concept implemented [WWASN 2008]. RFC 3561 core: expanding
// route discovery with RREQ-IDs and destination sequence numbers, unicast
// RREP along the reverse route, precursor-aware RERR, plus the paper's
// §4.3 example of piggybacking routing-table entries on the Neighbour
// Detection CF's HELLOs so neighbours learn routes for free.
//
// Event tuple:
//   required = {AODV_IN, NO_ROUTE, ROUTE_UPDATE, SEND_ROUTE_ERR,
//               NHOOD_CHANGE}   (NO_ROUTE exclusively)
//   provided = {AODV_OUT, ROUTE_FOUND}
//
// All three AODV message kinds (RREQ / RREP / RERR) flow through the single
// AODV_IN/AODV_OUT pair, demultiplexed by PacketBB message type inside the
// handlers — demonstrating that the framework does not force one event type
// per message kind.
#pragma once

#include <memory>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "protocols/aodv/aodv_state.hpp"

namespace mk::proto {

struct AodvParams {
  Duration active_route_timeout = sec(3);
  Duration rreq_wait = sec(1);
  Duration rreq_id_hold = sec(6);
  Duration sweep_interval = msec(500);
  std::uint8_t net_diameter = 35;  // RREQ hop limit
  bool piggyback_routes = true;    // advertise routes in HELLOs
};

std::unique_ptr<core::ManetProtocolCf> build_aodv_cf(core::Manetkit& kit,
                                                     AodvParams params = {});

/// Registers "aodv" (layer 20, category "reactive").
void register_aodv(core::Manetkit& kit, AodvParams params = {});

AodvState* aodv_state(core::ManetProtocolCf& cf);

void aodv_discover(core::ManetProtocolCf& cf, net::Addr target,
                   AodvParams params = {});

}  // namespace mk::proto
