#include "protocols/aodv/aodv_cf.hpp"

#include "core/attrs.hpp"
#include "core/soft_state.hpp"
#include "protocols/neighbor/neighbor_cf.hpp"
#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/bytebuffer.hpp"
#include "util/log.hpp"

namespace mk::proto {

namespace {

using core::attrs::kDest;
using core::attrs::kNeighbor;
using core::attrs::kNextHop;
using core::attrs::kUnicastTo;
using core::attrs::kUp;

AodvState& aodv_state_of(core::ProtocolContext& ctx) {
  auto* s = dynamic_cast<AodvState*>(ctx.state());
  MK_ASSERT(s != nullptr, "AODV CF has no AodvState S element");
  return *s;
}

void install_route(core::ProtocolContext& ctx, net::Addr dest,
                   net::Addr next_hop, std::uint8_t hops) {
  if (ctx.sys() == nullptr) return;
  net::RouteEntry entry;
  entry.dest = dest;
  entry.next_hop = next_hop;
  entry.metric = hops;
  entry.installed_at = ctx.now();
  ctx.sys()->kernel_table().set_route(entry);
}

void remove_route(core::ProtocolContext& ctx, net::Addr dest) {
  if (ctx.sys() != nullptr) ctx.sys()->kernel_table().remove_route(dest);
}

void emit_route_found(core::ProtocolContext& ctx, net::Addr dest) {
  ev::Event e(ev::types::ROUTE_FOUND);
  e.set_int(kDest, dest);
  ctx.emit(std::move(e));
}

pbb::Message build_rreq(AodvState& st, net::Addr self, net::Addr target,
                        const AodvParams& params) {
  pbb::Message m;
  m.type = wire::kMsgAodvRreq;
  m.originator = self;
  m.seqnum = st.bump_seq();
  m.has_hops = true;
  m.hop_limit = params.net_diameter;
  m.hop_count = 0;
  m.tlvs.push_back(pbb::Tlv::u32(wire::kTlvRreqId, st.next_rreq_id()));
  pbb::AddressBlock block;
  auto known = st.route_to(target);
  if (known && known->seq_valid) {
    block.add_with_u32(target, wire::kAtlvSeqnum, known->dest_seq);
  } else {
    block.addrs.push_back(target);
  }
  m.addr_blocks.push_back(std::move(block));
  return m;
}

pbb::Message build_rrep(net::Addr dest, std::uint16_t dest_seq,
                        net::Addr rreq_origin, std::uint8_t initial_hops,
                        const AodvParams& params) {
  pbb::Message m;
  m.type = wire::kMsgAodvRrep;
  m.originator = dest;
  m.seqnum = dest_seq;
  m.has_hops = true;
  m.hop_limit = params.net_diameter;
  m.hop_count = initial_hops;
  pbb::AddressBlock block;
  block.addrs.push_back(rreq_origin);
  m.addr_blocks.push_back(std::move(block));
  return m;
}

pbb::Message build_rerr(
    const std::vector<std::pair<net::Addr, std::uint16_t>>& unreachable) {
  pbb::Message m;
  m.type = wire::kMsgAodvRerr;
  m.has_hops = true;
  m.hop_limit = 1;  // RFC 3561: RERRs travel hop-by-hop via precursors
  m.hop_count = 0;
  pbb::AddressBlock block;
  for (const auto& [dest, seq] : unreachable) {
    block.add_with_u32(dest, wire::kAtlvSeqnum, seq);
  }
  m.addr_blocks.push_back(std::move(block));
  return m;
}

void send_rreq_for(core::ProtocolContext& ctx, net::Addr target,
                   const AodvParams& params) {
  AodvState& st = aodv_state_of(ctx);
  ev::Event e(ev::etype(ev::types::AODV_OUT));
  e.set_msg(build_rreq(st, ctx.self(), target, params));
  ctx.emit(std::move(e));
}

/// RREQ / RREP / RERR processing, demultiplexed on the PacketBB type.
class AodvHandler final : public core::EventHandler {
 public:
  explicit AodvHandler(AodvParams params)
      : core::EventHandler("aodv.AodvHandler", {ev::types::AODV_IN}),
        params_(params) {
    set_instance_name("AodvHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (msgs_in_ == nullptr) {
      msgs_in_ = &ctx.metrics().counter("aodv.msgs_in");
    }
    msgs_in_->inc();
    if (!event.has_msg()) return;
    switch (event.msg()->type) {
      case wire::kMsgAodvRreq:
        on_rreq(event, ctx);
        break;
      case wire::kMsgAodvRrep:
        on_rrep(event, ctx);
        break;
      case wire::kMsgAodvRerr:
        on_rerr(event, ctx);
        break;
      default:
        break;
    }
  }

 private:
  obs::Counter* msgs_in_ = nullptr;  // cached: interned once, then atomic inc
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch

  core::SoftExpiry* soft(core::ProtocolContext& ctx) {
    if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
    return soft_;
  }

  void learn(core::ProtocolContext& ctx, net::Addr dest, std::uint16_t seq,
             bool seq_valid, net::Addr next_hop, std::uint8_t hops) {
    if (dest == ctx.self()) return;
    AodvState& st = aodv_state_of(ctx);
    if (st.update_route(dest, seq, seq_valid, next_hop, hops, ctx.now(),
                        params_.active_route_timeout)) {
      install_route(ctx, dest, next_hop, hops);
      st.finish_pending(dest);
      if (auto* s = soft(ctx)) s->drop(aodv_sets::kPending, dest);
      emit_route_found(ctx, dest);
    }
    // Track the deadline even when the update was a same-info refresh
    // (update_route extends the lifetime without reporting change).
    if (auto r = st.route_to(dest)) {
      if (auto* s = soft(ctx)) s->touch_at(aodv_sets::kRoute, dest, r->expires);
    }
  }

  void on_rreq(const ev::Event& event, core::ProtocolContext& ctx) {
    const pbb::Message& msg = *event.msg();
    if (!msg.originator || !msg.seqnum || !msg.has_hops) return;
    if (*msg.originator == ctx.self()) return;
    const auto* id_tlv = msg.find_tlv(wire::kTlvRreqId);
    if (id_tlv == nullptr || msg.addr_blocks.empty() ||
        msg.addr_blocks[0].addrs.empty()) {
      return;
    }
    AodvState& st = aodv_state_of(ctx);

    // Reverse route to the originator.
    learn(ctx, *msg.originator, *msg.seqnum, true, event.from,
          static_cast<std::uint8_t>(msg.hop_count + 1));

    // Every sighting refreshes the tuple's holding time.
    bool dup = st.check_rreq_seen(*msg.originator, id_tlv->as_u32(), ctx.now());
    if (auto* s = soft(ctx)) {
      s->touch(aodv_sets::kRreqId,
               aodv_rreq_key(*msg.originator, id_tlv->as_u32()));
    }
    if (dup) return;

    net::Addr target = msg.addr_blocks[0].addrs[0];
    const auto* want_seq = msg.addr_blocks[0].tlv_for(0, wire::kAtlvSeqnum);

    if (target == ctx.self()) {
      // RFC 3561 §6.6.1: our seq must be at least the requested one.
      if (want_seq != nullptr) {
        auto wanted = static_cast<std::uint16_t>(want_seq->as_u32());
        while (static_cast<std::int16_t>(st.own_seq() - wanted) < 0) {
          st.bump_seq();
        }
      }
      st.bump_seq();
      ev::Event out(ev::etype(ev::types::AODV_OUT));
      out.set_msg(build_rrep(ctx.self(), st.own_seq(), *msg.originator, 0,
                             params_));
      out.set_int(kUnicastTo, event.from);
      ctx.emit(std::move(out));
      return;
    }

    // Intermediate reply: answer from our own table when fresh enough.
    auto route = st.route_to(target);
    if (route && route->valid && route->seq_valid && want_seq != nullptr &&
        static_cast<std::int16_t>(
            route->dest_seq -
            static_cast<std::uint16_t>(want_seq->as_u32())) >= 0) {
      st.add_precursor(target, event.from);
      ev::Event out(ev::etype(ev::types::AODV_OUT));
      out.set_msg(build_rrep(target, route->dest_seq, *msg.originator,
                             route->hops, params_));
      out.set_int(kUnicastTo, event.from);
      ctx.emit(std::move(out));
      return;
    }

    if (msg.hop_limit <= 1) return;
    ev::Event out(ev::etype(ev::types::AODV_OUT));
    pbb::Message& fwd = out.set_msg(msg);
    fwd.hop_limit -= 1;
    fwd.hop_count += 1;
    ctx.emit(std::move(out));
  }

  void on_rrep(const ev::Event& event, core::ProtocolContext& ctx) {
    const pbb::Message& msg = *event.msg();
    if (!msg.originator || !msg.seqnum || !msg.has_hops) return;
    if (msg.addr_blocks.empty() || msg.addr_blocks[0].addrs.empty()) return;

    // Forward route to the destination that answered.
    learn(ctx, *msg.originator, *msg.seqnum, true, event.from,
          static_cast<std::uint8_t>(msg.hop_count + 1));

    net::Addr rreq_origin = msg.addr_blocks[0].addrs[0];
    if (rreq_origin == ctx.self()) return;  // discovery complete

    AodvState& st = aodv_state_of(ctx);
    auto reverse = st.route_to(rreq_origin);
    if (!reverse || !reverse->valid) return;
    st.add_precursor(*msg.originator, reverse->next_hop);
    st.add_precursor(rreq_origin, event.from);

    if (msg.hop_limit <= 1) return;
    ev::Event out(ev::etype(ev::types::AODV_OUT));
    pbb::Message& fwd = out.set_msg(msg);
    fwd.hop_limit -= 1;
    fwd.hop_count += 1;
    out.set_int(kUnicastTo, reverse->next_hop);
    ctx.emit(std::move(out));
  }

  void on_rerr(const ev::Event& event, core::ProtocolContext& ctx) {
    const pbb::Message& msg = *event.msg();
    AodvState& st = aodv_state_of(ctx);
    std::vector<std::pair<net::Addr, std::uint16_t>> propagate;
    for (const auto& block : msg.addr_blocks) {
      for (std::size_t i = 0; i < block.addrs.size(); ++i) {
        net::Addr dest = block.addrs[i];
        auto route = st.route_to(dest);
        if (!route || !route->valid || route->next_hop != event.from) continue;
        if (auto seq = st.invalidate(dest)) {
          remove_route(ctx, dest);
          propagate.emplace_back(dest, *seq);
        }
      }
    }
    if (!propagate.empty()) {
      ev::Event out(ev::etype(ev::types::AODV_OUT));
      out.set_msg(build_rerr(propagate));
      ctx.emit(std::move(out));
    }
  }

  AodvParams params_;
};

class AodvNoRouteHandler final : public core::EventHandler {
 public:
  explicit AodvNoRouteHandler(AodvParams params)
      : core::EventHandler("aodv.NoRouteHandler", {ev::types::NO_ROUTE}),
        params_(params) {
    set_instance_name("NoRouteHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    auto dest = static_cast<net::Addr>(event.get_int(kDest));
    if (dest == net::kNoAddr) return;
    AodvState& st = aodv_state_of(ctx);
    auto route = st.route_to(dest);
    if (route && route->valid) {
      emit_route_found(ctx, dest);
      return;
    }
    if (st.has_pending(dest)) return;
    st.start_pending(dest, ctx.now(), params_.rreq_wait);
    if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
    if (soft_ != nullptr) {
      soft_->touch_at(aodv_sets::kPending, dest, ctx.now() + params_.rreq_wait);
    }
    ctx.metrics().counter("aodv.discoveries").inc();
    send_rreq_for(ctx, dest, params_);
  }

 private:
  AodvParams params_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

class AodvRouteUpdateHandler final : public core::EventHandler {
 public:
  explicit AodvRouteUpdateHandler(AodvParams params)
      : core::EventHandler("aodv.RouteUpdateHandler",
                           {ev::types::ROUTE_UPDATE}),
        params_(params) {
    set_instance_name("RouteUpdateHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    auto dest = static_cast<net::Addr>(event.get_int(kDest));
    AodvState& st = aodv_state_of(ctx);
    st.extend_lifetime(dest, ctx.now(), params_.active_route_timeout);
    if (auto r = st.route_to(dest)) {
      if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
      if (soft_ != nullptr) {
        soft_->touch_at(aodv_sets::kRoute, dest, r->expires);
      }
    }
  }

 private:
  AodvParams params_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

class AodvInvalidationHandler final : public core::EventHandler {
 public:
  explicit AodvInvalidationHandler(AodvParams params)
      : core::EventHandler("aodv.InvalidationHandler",
                           {ev::types::SEND_ROUTE_ERR, ev::types::NHOOD_CHANGE}),
        params_(params) {
    set_instance_name("InvalidationHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    net::Addr hop = net::kNoAddr;
    if (event.type() == ev::etype(ev::types::SEND_ROUTE_ERR)) {
      hop = static_cast<net::Addr>(event.get_int(kNextHop));
    } else {
      if (event.get_int(kUp, 1) != 0) return;
      hop = static_cast<net::Addr>(event.get_int(kNeighbor));
    }
    if (hop == net::kNoAddr) return;
    AodvState& st = aodv_state_of(ctx);
    auto unreachable = st.invalidate_via(hop);
    for (const auto& [dest, _] : unreachable) remove_route(ctx, dest);
    if (!unreachable.empty()) {
      ev::Event out(ev::etype(ev::types::AODV_OUT));
      out.set_msg(build_rerr(unreachable));
      ctx.metrics().counter("aodv.rerr_out").inc();
      ctx.emit(std::move(out));
    }
  }

 private:
  AodvParams params_;
};

/// The §4.3 piggybacking example: advertise a few routing-table entries in
/// each HELLO so neighbours learn routes without discovery. A bridge
/// component ties the provider/observer lifetime to the AODV CF.
class PiggybackBridge final : public oc::Component {
 public:
  static constexpr std::size_t kMaxAdvertised = 5;

  PiggybackBridge(core::ManetProtocolCf& aodv, NeighborTable& table,
                  AodvParams params)
      : oc::Component("aodv.PiggybackBridge"),
        alive_(std::make_shared<bool>(true)) {
    set_instance_name("PiggybackBridge");
    auto alive = alive_;
    core::ManetProtocolCf* proto = &aodv;

    table.add_piggyback_provider([alive, proto]() -> std::optional<pbb::Tlv> {
      if (!*alive) return std::nullopt;
      auto* st = dynamic_cast<AodvState*>(proto->state_component());
      if (st == nullptr || st->route_count() == 0) return std::nullopt;
      ByteWriter w;
      std::size_t n = 0;
      for (const auto& [dest, r] : st->all_routes()) {
        if (n >= kMaxAdvertised) break;
        if (!r.valid) continue;
        w.put_u32(dest);
        w.put_u32(r.next_hop);  // split horizon: receivers skip routes via themselves
        w.put_u16(r.dest_seq);
        w.put_u8(r.hops);
        ++n;
      }
      if (n == 0) return std::nullopt;
      if (n == 0) return std::nullopt;
      return pbb::Tlv{wire::kTlvPiggyback, w.take()};
    });

    AodvParams params_copy = params;
    table.add_piggyback_observer(
        [alive, proto, params_copy](net::Addr from, const pbb::Tlv& tlv) {
          if (!*alive || tlv.type != wire::kTlvPiggyback) return;
          auto* st = dynamic_cast<AodvState*>(proto->state_component());
          if (st == nullptr) return;
          auto& ctx = proto->context();
          auto* soft = core::soft_expiry_of(ctx);
          ByteReader r(tlv.value);
          try {
            while (r.remaining() >= 11) {
              net::Addr dest = r.get_u32();
              net::Addr via = r.get_u32();
              std::uint16_t seq = r.get_u16();
              std::uint8_t hops = r.get_u8();
              if (dest == ctx.self()) continue;
              // Split horizon: the advertised route runs through us — using
              // it back through the advertiser would form a 2-node loop.
              if (via == ctx.self()) continue;
              if (st->update_route(dest, seq, true, from,
                                   static_cast<std::uint8_t>(hops + 1),
                                   ctx.now(), params_copy.active_route_timeout)) {
                install_route(ctx, dest, from,
                              static_cast<std::uint8_t>(hops + 1));
              }
              if (soft != nullptr) {
                if (auto learned = st->route_to(dest)) {
                  soft->touch_at(aodv_sets::kRoute, dest, learned->expires);
                }
              }
            }
          } catch (const BufferUnderflow&) {
            // malformed advert from a buggy neighbour: ignore
          }
        });
  }

  ~PiggybackBridge() override { *alive_ = false; }

 private:
  std::shared_ptr<bool> alive_;
};

}  // namespace

std::unique_ptr<core::ManetProtocolCf> build_aodv_cf(core::Manetkit& kit,
                                                     AodvParams params) {
  core::ManetProtocolCf* neighbor = kit.deploy("neighbor");
  kit.system().ensure_netlink();
  kit.system().register_message(wire::kMsgAodvRreq, "AODV");
  kit.system().register_message(wire::kMsgAodvRrep, "AODV");
  kit.system().register_message(wire::kMsgAodvRerr, "AODV");

  auto cf = std::make_unique<core::ManetProtocolCf>(
      kit.kernel(), "aodv", kit.scheduler(), kit.self(),
      &kit.system().sys_state());

  cf->set_state(std::make_unique<AodvState>());

  // Per-entry soft-state expiry (set ids fixed by definition order — see
  // aodv_sets). Routes get RFC 3561's two-phase treatment: the route loss
  // fn invalidates a lapsed valid entry and re-arms it for DELETE_PERIOD
  // (seqnum memory), then lets the second lapse delete it.
  auto soft = std::make_unique<core::SoftExpiry>();
  core::ManetProtocolCf* raw = cf.get();
  soft->define_set(
      "aodv.route", params.active_route_timeout,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        AodvState& st = aodv_state_of(ctx);
        auto dest = static_cast<net::Addr>(key);
        bool invalidated = false;
        auto next = st.expire_one(dest, ctx.now(), invalidated);
        if (invalidated) remove_route(ctx, dest);
        if (next) {
          if (auto* s = core::soft_expiry_of(ctx)) {
            s->touch_at(aodv_sets::kRoute, dest, *next);
          }
        }
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (AodvState* st = aodv_state(*raw)) {
          for (const auto& [dest, _] : st->all_routes()) keys.push_back(dest);
        }
        return keys;
      });
  soft->define_set(
      "aodv.pending", params.rreq_wait,
      [params](std::uint64_t key, core::ProtocolContext& ctx) {
        AodvState& st = aodv_state_of(ctx);
        auto dest = static_cast<net::Addr>(key);
        bool had = st.has_pending(dest);
        if (auto next = st.retry_pending(dest, ctx.now())) {
          send_rreq_for(ctx, dest, params);
          if (auto* s = core::soft_expiry_of(ctx)) {
            s->touch_at(aodv_sets::kPending, dest, *next);
          }
        } else if (had) {
          MK_DEBUG("aodv", "discovery for ", pbb::addr_to_string(dest),
                   " gave up after ", int{AodvState::kMaxTries}, " tries");
        }
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (AodvState* st = aodv_state(*raw)) {
          for (net::Addr dest : st->pending_dests()) keys.push_back(dest);
        }
        return keys;
      });
  soft->define_set(
      "aodv.rreq_id", params.rreq_id_hold,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        aodv_state_of(ctx).drop_rreq_seen(
            static_cast<net::Addr>(key >> 24),
            static_cast<std::uint32_t>(key & 0xFFFFFF));
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (AodvState* st = aodv_state(*raw)) {
          for (const auto& [origin, id] : st->rreq_seen_entries()) {
            keys.push_back(aodv_rreq_key(origin, id));
          }
        }
        return keys;
      });
  cf->add_source(std::move(soft));

  cf->add_handler(std::make_unique<AodvHandler>(params));
  cf->add_handler(std::make_unique<AodvNoRouteHandler>(params));
  cf->add_handler(std::make_unique<AodvRouteUpdateHandler>(params));
  cf->add_handler(std::make_unique<AodvInvalidationHandler>(params));

  if (params.piggyback_routes) {
    if (auto* table =
            dynamic_cast<NeighborTable*>(neighbor->state_component())) {
      cf->insert(std::make_unique<PiggybackBridge>(*cf, *table, params));
    }
  }

  cf->declare_events(
      /*required=*/{ev::types::AODV_IN, ev::types::NO_ROUTE,
                    ev::types::ROUTE_UPDATE, ev::types::SEND_ROUTE_ERR,
                    ev::types::NHOOD_CHANGE},
      /*provided=*/{ev::types::AODV_OUT, ev::types::ROUTE_FOUND},
      /*exclusive=*/{ev::types::NO_ROUTE});
  return cf;
}

void register_aodv(core::Manetkit& kit, AodvParams params) {
  if (!kit.has_builder("neighbor")) register_neighbor(kit);
  kit.register_protocol(
      "aodv", /*layer=*/20,
      [params](core::Manetkit& k) { return build_aodv_cf(k, params); },
      /*category=*/"reactive");
}

AodvState* aodv_state(core::ManetProtocolCf& cf) {
  return dynamic_cast<AodvState*>(cf.state_component());
}

void aodv_discover(core::ManetProtocolCf& cf, net::Addr target,
                   AodvParams params) {
  auto lock = cf.quiesce();
  auto& ctx = cf.context();
  AodvState& st = aodv_state_of(ctx);
  if (st.has_pending(target)) return;
  st.start_pending(target, ctx.now(), params.rreq_wait);
  if (auto* soft = core::soft_expiry_of(ctx)) {
    soft->touch_at(aodv_sets::kPending, target, ctx.now() + params.rreq_wait);
  }
  send_rreq_for(ctx, target, params);
}

}  // namespace mk::proto
