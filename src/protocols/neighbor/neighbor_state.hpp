// S element of the Neighbour Detection CF: 1-hop and 2-hop neighbour
// information gathered from HELLO exchange, plus the piggyback registry
// (§4.3 — "a useful means of disseminating information periodically to
// neighbours via piggybacking").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/ifaces.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "packetbb/packetbb.hpp"
#include "util/time.hpp"

namespace mk::proto {

struct INeighborState : core::IState {
  virtual bool is_sym_neighbor(net::Addr a) const = 0;
  /// Symmetric neighbours, sorted ascending. The reference stays valid until
  /// the next table mutation — route/MPR recomputes read it in place instead
  /// of copying (allocation-free steady state).
  virtual const std::vector<net::Addr>& sym_neighbors() const = 0;
  virtual std::vector<net::Addr> heard_neighbors() const = 0;
  /// Symmetric neighbours of neighbour `n` (as reported in its HELLOs).
  /// Same lifetime contract as sym_neighbors().
  virtual const std::set<net::Addr>& two_hop_via(net::Addr n) const = 0;
  /// Nodes exactly two hops away (reachable via some sym neighbour, not
  /// neighbours themselves, not us).
  virtual std::set<net::Addr> strict_two_hop(net::Addr self) const = 0;
};

class NeighborTable : public oc::Component, public INeighborState {
 public:
  NeighborTable();

  // -- updates (from the HELLO handler) -----------------------------------------
  void note_heard(net::Addr a, TimePoint now);
  /// Returns true if the symmetric status changed.
  bool set_symmetric(net::Addr a, bool sym);
  void set_two_hop(net::Addr a, std::set<net::Addr> nbrs);
  /// In-place variant: `sorted` must be ascending and duplicate-free. The
  /// stored set is diffed against it, so an unchanged advertisement (the
  /// steady state between topology changes) allocates nothing.
  void set_two_hop(net::Addr a, std::span<const net::Addr> sorted);

  /// Removes entries not heard within `hold`; returns the lost symmetric
  /// neighbours (for NHOOD_CHANGE down-notifications).
  std::vector<net::Addr> expire(TimePoint now, Duration hold);

  /// Forced removal (LOST link code); returns true if it was symmetric.
  bool remove(net::Addr a);

  // -- INeighborState ---------------------------------------------------------------
  bool is_sym_neighbor(net::Addr a) const override;
  const std::vector<net::Addr>& sym_neighbors() const override;
  std::vector<net::Addr> heard_neighbors() const override;
  const std::set<net::Addr>& two_hop_via(net::Addr n) const override;
  std::set<net::Addr> strict_two_hop(net::Addr self) const override;
  std::string describe() const override;

  /// Visits (addr, is_symmetric) for every tracked neighbour in address
  /// order — the HELLO emitter's allocation-free alternative to copying
  /// heard_neighbors() out.
  template <class Fn>
  void for_each_neighbor(Fn&& fn) const {
    for (const auto& [a, e] : entries_) fn(a, e.symmetric);
  }

  // -- piggybacking ---------------------------------------------------------------
  /// Provider called at each HELLO emission; a returned TLV rides along.
  using PiggybackProvider = std::function<std::optional<pbb::Tlv>()>;
  void add_piggyback_provider(PiggybackProvider p);
  void clear_piggyback_providers() { providers_.clear(); }
  std::vector<pbb::Tlv> collect_piggyback() const;
  /// Appends the providers' TLVs to `out` (no intermediate vector).
  void append_piggyback(std::vector<pbb::Tlv>& out) const;

  /// Observer of piggyback TLVs found in received HELLOs.
  using PiggybackObserver = std::function<void(net::Addr from, const pbb::Tlv&)>;
  void add_piggyback_observer(PiggybackObserver o);
  void dispatch_piggyback(net::Addr from, const pbb::Tlv& tlv) const;

 private:
  struct Entry {
    TimePoint last_heard{};
    bool symmetric = false;
    std::set<net::Addr> two_hop;
  };
  std::map<net::Addr, Entry> entries_;
  // Sorted mirror of the symmetric subset of entries_, maintained on every
  // symmetric-status transition so sym_neighbors() is a reference return.
  std::vector<net::Addr> sym_cache_;
  std::vector<PiggybackProvider> providers_;
  std::vector<PiggybackObserver> observers_;
};

}  // namespace mk::proto
