#include "protocols/neighbor/neighbor_cf.hpp"

#include <memory>

#include "core/attrs.hpp"
#include "core/soft_state.hpp"
#include "protocols/hello_codec.hpp"
#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mk::proto {

namespace {

using core::attrs::kNeighbor;
using core::attrs::kUp;

NeighborTable* table_of(core::ProtocolContext& ctx) {
  auto* t = dynamic_cast<NeighborTable*>(ctx.state());
  MK_ASSERT(t != nullptr, "neighbor CF has no NeighborTable S element");
  return t;
}

void emit_nhood_change(core::ProtocolContext& ctx, net::Addr neighbor, bool up) {
  ev::Event e(ev::types::NHOOD_CHANGE);
  e.set_int(kNeighbor, neighbor);
  e.set_int(kUp, up ? 1 : 0);
  ctx.emit(std::move(e));
}

/// Periodic HELLO emission. Link expiry is per-entry via the shared
/// soft-state layer (see build_neighbor_cf), not swept here.
class HelloSource final : public core::EventSource {
 public:
  explicit HelloSource(NeighborParams params)
      : core::EventSource("neighbor.HelloSource"), params_(params) {
    set_instance_name("HelloSource");
  }

  void start(core::ProtocolContext& ctx) override {
    ctx_ = &ctx;
    timer_ = std::make_unique<PeriodicTimer>(
        ctx.scheduler(), params_.hello_interval, [this] { fire(); },
        /*jitter=*/0.1, /*seed=*/ctx.self());
    timer_->start();
  }

  void stop() override { timer_.reset(); }

 private:
  void fire() {
    NeighborTable* nt = table_of(*ctx_);

    std::vector<hello::Link> links;
    for (net::Addr a : nt->heard_neighbors()) {
      links.push_back(hello::Link{
          a, nt->is_sym_neighbor(a) ? wire::LinkCode::kSym
                                    : wire::LinkCode::kAsym});
    }

    ev::Event e(ev::types::HELLO_OUT);
    e.set_msg(hello::build(ctx_->self(), seq_++, links, wire::kWillDefault,
                           nt->collect_piggyback()));
    ctx_->emit(std::move(e));
  }

  NeighborParams params_;
  core::ProtocolContext* ctx_ = nullptr;
  std::unique_ptr<PeriodicTimer> timer_;
  std::uint16_t seq_ = 1;
};

/// Link sensing from received HELLOs.
class HelloHandler final : public core::EventHandler {
 public:
  explicit HelloHandler(core::ISoftExpiry::SetId link_set)
      : core::EventHandler("neighbor.HelloHandler", {ev::types::HELLO_IN}),
        link_set_(link_set) {
    set_instance_name("HelloHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (!event.has_msg()) return;
    const pbb::Message& msg = *event.msg();
    net::Addr from = event.from;
    if (from == ctx.self()) return;

    if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
    NeighborTable* nt = table_of(ctx);
    nt->note_heard(from, ctx.now());
    if (soft_ != nullptr) soft_->touch(link_set_, from);

    // Symmetry: the sender lists every neighbour it hears; if we are listed
    // (and not LOST) the link is bidirectional.
    auto our_code = hello::code_for(msg, ctx.self());
    bool sym = our_code.has_value() && *our_code != wire::LinkCode::kLost;
    if (our_code.has_value() && *our_code == wire::LinkCode::kLost) {
      if (soft_ != nullptr) soft_->drop(link_set_, from);
      if (nt->remove(from)) emit_nhood_change(ctx, from, false);
    } else if (nt->set_symmetric(from, sym)) {
      emit_nhood_change(ctx, from, sym);
    }

    // 2-hop information: the sender's symmetric neighbours.
    std::set<net::Addr> two_hop;
    for (const hello::Link& l : hello::links(msg)) {
      if (l.code == wire::LinkCode::kSym && l.addr != ctx.self()) {
        two_hop.insert(l.addr);
      }
    }
    nt->set_two_hop(from, std::move(two_hop));

    for (const pbb::Tlv& t : hello::piggyback(msg)) {
      nt->dispatch_piggyback(from, t);
    }
  }

 private:
  core::ISoftExpiry::SetId link_set_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

/// Alternative sensing mechanism: link-layer feedback straight from the
/// driver (the simulated medium's link notifications).
class LinkLayerFeedback final : public oc::Component {
 public:
  LinkLayerFeedback(core::Manetkit& kit, core::ManetProtocolCf& cf)
      : oc::Component("neighbor.LinkLayerFeedback"),
        alive_(std::make_shared<bool>(true)) {
    set_instance_name("LinkLayerFeedback");
    net::Addr self = kit.self();
    auto alive = alive_;
    core::ManetProtocolCf* proto = &cf;
    kit.node().medium().add_link_observer(
        [alive, self, proto](net::Addr a, net::Addr b, bool up) {
          if (!*alive) return;
          if (a != self && b != self) return;
          net::Addr other = (a == self) ? b : a;
          auto& ctx = proto->context();
          auto* nt = dynamic_cast<NeighborTable*>(proto->state_component());
          if (nt == nullptr) return;
          // Set 0 is "neighbor.link" — the CF's only soft-state set.
          auto* soft = core::soft_expiry_of(ctx);
          bool changed;
          if (up) {
            nt->note_heard(other, ctx.now());
            if (soft != nullptr) soft->touch(0, other);
            changed = nt->set_symmetric(other, true);
          } else {
            if (soft != nullptr) soft->drop(0, other);
            changed = nt->remove(other);
          }
          if (changed) emit_nhood_change(ctx, other, up);
        });
  }

  ~LinkLayerFeedback() override { *alive_ = false; }

 private:
  std::shared_ptr<bool> alive_;
};

}  // namespace

std::unique_ptr<core::ManetProtocolCf> build_neighbor_cf(core::Manetkit& kit,
                                                         NeighborParams params) {
  kit.system().register_message(wire::kMsgHello, "HELLO");

  auto cf = std::make_unique<core::ManetProtocolCf>(
      kit.kernel(), "neighbor", kit.scheduler(), kit.self(),
      &kit.system().sys_state());
  cf->set_state(std::make_unique<NeighborTable>());

  // Link tuples live in the shared soft-state layer: every HELLO (or
  // link-layer up notification) re-arms the sender's holding time; lapse
  // removes the entry and, if it was symmetric, emits NHOOD_CHANGE down.
  auto soft = std::make_unique<core::SoftExpiry>();
  core::ManetProtocolCf* raw = cf.get();
  auto link_set = soft->define_set(
      "neighbor.link", params.hold_time,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        auto addr = static_cast<net::Addr>(key);
        if (table_of(ctx)->remove(addr)) emit_nhood_change(ctx, addr, false);
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        auto* nt = dynamic_cast<NeighborTable*>(raw->state_component());
        if (nt != nullptr) {
          for (net::Addr a : nt->heard_neighbors()) keys.push_back(a);
        }
        return keys;
      });
  cf->add_source(std::move(soft));

  cf->add_handler(std::make_unique<HelloHandler>(link_set));
  cf->add_source(std::make_unique<HelloSource>(params));
  cf->declare_events({ev::types::HELLO_IN},
                     {ev::types::HELLO_OUT, ev::types::NHOOD_CHANGE});
  return cf;
}

void register_neighbor(core::Manetkit& kit, NeighborParams params) {
  kit.register_protocol(
      "neighbor", /*layer=*/10,
      [params](core::Manetkit& k) { return build_neighbor_cf(k, params); });
}

void enable_link_layer_feedback(core::Manetkit& kit,
                                core::ManetProtocolCf& neighbor_cf) {
  auto lock = neighbor_cf.quiesce();
  neighbor_cf.remove_handler("HelloHandler");
  neighbor_cf.insert(std::make_unique<LinkLayerFeedback>(kit, neighbor_cf));
}

INeighborState* neighbor_state(core::ManetProtocolCf& cf) {
  oc::Component* s = cf.state_component();
  return s == nullptr ? nullptr : s->interface_as<INeighborState>("INeighborState");
}

}  // namespace mk::proto
