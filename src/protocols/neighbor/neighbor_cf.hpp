// The Neighbour Detection CF (§4.3): a generally-useful ManetProtocol
// instance maintaining 1-hop/2-hop neighbourhood information via periodic
// HELLO exchange, notifying upper protocols of link breaks (NHOOD_CHANGE)
// and offering piggybacked dissemination.
//
// Event tuple: <required = {HELLO_IN}, provided = {HELLO_OUT, NHOOD_CHANGE}>.
//
// The sensing mechanism is pluggable: the default is HELLO-based
// (HelloSource + HelloHandler); enable_link_layer_feedback() swaps in a
// component fed by the medium's link notifications instead.
#pragma once

#include <memory>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "protocols/neighbor/neighbor_state.hpp"

namespace mk::proto {

struct NeighborParams {
  /// Matches the MPR CF's HELLO cadence so the two sensing mechanisms are
  /// interchangeable without changing control-traffic volume.
  Duration hello_interval = sec(2);
  /// Neighbour hold time (RFC-style: 3 × interval).
  Duration hold_time = sec(6);
};

/// Builds the Neighbour Detection CF instance (registered as "neighbor").
std::unique_ptr<core::ManetProtocolCf> build_neighbor_cf(
    core::Manetkit& kit, NeighborParams params = {});

/// Registers the "neighbor" builder with a kit (layer 10).
void register_neighbor(core::Manetkit& kit, NeighborParams params = {});

/// Replaces the HELLO-based sensing of a deployed Neighbour Detection CF
/// with link-layer feedback from the medium (the paper's alternative
/// pluggable mechanism). HELLOs keep flowing (piggybacking still works) but
/// symmetry/loss is driven by the driver callbacks.
void enable_link_layer_feedback(core::Manetkit& kit,
                                core::ManetProtocolCf& neighbor_cf);

/// Fetches the S element interface of a Neighbour Detection (or MPR) CF.
INeighborState* neighbor_state(core::ManetProtocolCf& cf);

}  // namespace mk::proto
