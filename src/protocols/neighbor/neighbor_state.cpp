#include "protocols/neighbor/neighbor_state.hpp"

#include <algorithm>
#include <sstream>

namespace mk::proto {

namespace {

void sorted_insert(std::vector<net::Addr>& v, net::Addr a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it == v.end() || *it != a) v.insert(it, a);
}

void sorted_erase(std::vector<net::Addr>& v, net::Addr a) {
  auto it = std::lower_bound(v.begin(), v.end(), a);
  if (it != v.end() && *it == a) v.erase(it);
}

}  // namespace

NeighborTable::NeighborTable() : oc::Component("neighbor.NeighborTable") {
  provide("INeighborState", static_cast<INeighborState*>(this));
  provide("IState", static_cast<core::IState*>(this));
}

void NeighborTable::note_heard(net::Addr a, TimePoint now) {
  entries_[a].last_heard = now;
}

bool NeighborTable::set_symmetric(net::Addr a, bool sym) {
  auto& e = entries_[a];
  if (e.symmetric == sym) return false;
  e.symmetric = sym;
  if (sym) {
    sorted_insert(sym_cache_, a);
  } else {
    sorted_erase(sym_cache_, a);
  }
  return true;
}

void NeighborTable::set_two_hop(net::Addr a, std::set<net::Addr> nbrs) {
  entries_[a].two_hop = std::move(nbrs);
}

void NeighborTable::set_two_hop(net::Addr a,
                                std::span<const net::Addr> sorted) {
  std::set<net::Addr>& cur = entries_[a].two_hop;
  auto it = cur.begin();
  auto sit = sorted.begin();
  while (it != cur.end() && sit != sorted.end()) {
    if (*it < *sit) {
      it = cur.erase(it);
    } else if (*sit < *it) {
      cur.insert(it, *sit);  // hinted: lands just before `it`
      ++sit;
    } else {
      ++it;
      ++sit;
    }
  }
  while (it != cur.end()) it = cur.erase(it);
  for (; sit != sorted.end(); ++sit) cur.insert(cur.end(), *sit);
}

std::vector<net::Addr> NeighborTable::expire(TimePoint now, Duration hold) {
  std::vector<net::Addr> lost;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_heard > hold) {
      if (it->second.symmetric) {
        lost.push_back(it->first);
        sorted_erase(sym_cache_, it->first);
      }
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return lost;
}

bool NeighborTable::remove(net::Addr a) {
  auto it = entries_.find(a);
  if (it == entries_.end()) return false;
  bool was_sym = it->second.symmetric;
  if (was_sym) sorted_erase(sym_cache_, a);
  entries_.erase(it);
  return was_sym;
}

bool NeighborTable::is_sym_neighbor(net::Addr a) const {
  auto it = entries_.find(a);
  return it != entries_.end() && it->second.symmetric;
}

const std::vector<net::Addr>& NeighborTable::sym_neighbors() const {
  return sym_cache_;
}

std::vector<net::Addr> NeighborTable::heard_neighbors() const {
  std::vector<net::Addr> out;
  out.reserve(entries_.size());
  for (const auto& [a, _] : entries_) out.push_back(a);
  return out;
}

const std::set<net::Addr>& NeighborTable::two_hop_via(net::Addr n) const {
  static const std::set<net::Addr> kEmpty;
  auto it = entries_.find(n);
  return it == entries_.end() ? kEmpty : it->second.two_hop;
}

std::set<net::Addr> NeighborTable::strict_two_hop(net::Addr self) const {
  std::set<net::Addr> out;
  for (const auto& [a, e] : entries_) {
    if (!e.symmetric) continue;
    for (net::Addr t : e.two_hop) {
      if (t == self) continue;
      if (is_sym_neighbor(t)) continue;
      out.insert(t);
    }
  }
  return out;
}

std::string NeighborTable::describe() const {
  std::ostringstream os;
  os << "neighbors: " << entries_.size()
     << " (sym: " << sym_neighbors().size() << ")";
  return os.str();
}

void NeighborTable::add_piggyback_provider(PiggybackProvider p) {
  providers_.push_back(std::move(p));
}

std::vector<pbb::Tlv> NeighborTable::collect_piggyback() const {
  std::vector<pbb::Tlv> out;
  append_piggyback(out);
  return out;
}

void NeighborTable::append_piggyback(std::vector<pbb::Tlv>& out) const {
  for (const auto& p : providers_) {
    if (auto tlv = p()) out.push_back(std::move(*tlv));
  }
}

void NeighborTable::add_piggyback_observer(PiggybackObserver o) {
  observers_.push_back(std::move(o));
}

void NeighborTable::dispatch_piggyback(net::Addr from,
                                       const pbb::Tlv& tlv) const {
  for (const auto& o : observers_) o(from, tlv);
}

}  // namespace mk::proto
