#include "protocols/olsr/olsr_state.hpp"

#include <sstream>

namespace mk::proto {

namespace {

/// RFC 3626 §19: sequence-number comparison with wraparound.
bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

}  // namespace

OlsrState::OlsrState() : oc::Component("olsr.OlsrState") {
  set_instance_name("State");
  provide("IOlsrState", static_cast<IOlsrState*>(this));
  provide("IState", static_cast<core::IState*>(this));
  provide("IStateCodec", static_cast<core::IStateCodec*>(this));
}

bool OlsrState::update_topology(net::Addr origin, std::uint16_t ansn,
                                const std::set<net::Addr>& advertised,
                                TimePoint now, Duration hold) {
  auto it = topology_.find(origin);
  if (it != topology_.end() && seq_newer(it->second.ansn, ansn)) {
    return false;  // stale information
  }
  TopologyEntry entry;
  entry.ansn = ansn;
  entry.advertised = advertised;
  entry.expires = now + hold;
  topology_[origin] = std::move(entry);
  return true;
}

bool OlsrState::expire_topology(TimePoint now) {
  bool changed = false;
  for (auto it = topology_.begin(); it != topology_.end();) {
    if (it->second.expires < now) {
      it = topology_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

std::vector<net::Addr> OlsrState::topology_origins() const {
  std::vector<net::Addr> out;
  out.reserve(topology_.size());
  for (const auto& [origin, e] : topology_) out.push_back(origin);
  return out;
}

std::vector<std::pair<net::Addr, net::Addr>> OlsrState::topology_edges() const {
  std::vector<std::pair<net::Addr, net::Addr>> out;
  append_topology_edges(out);
  return out;
}

void OlsrState::append_topology_edges(
    std::vector<std::pair<net::Addr, net::Addr>>& out) const {
  for (const auto& [origin, e] : topology_) {
    for (net::Addr d : e.advertised) out.emplace_back(origin, d);
  }
}

double OlsrState::energy_of(net::Addr node) const {
  auto it = energy_.find(node);
  return it == energy_.end() ? 1.0 : it->second;
}

// Codec layout (version 1, big-endian):
//   u8 version | u16 msg_seq | u16 ansn
//   u16 n_last_advertised | u32*n
//   u16 n_topology | per origin: u32 origin | u16 ansn | i64 expires_us
//                               | u16 n_advertised | u32*n
namespace {
constexpr std::uint8_t kOlsrCodecVersion = 1;
}

void OlsrState::encode_state(std::vector<std::uint8_t>& out) const {
  namespace cc = core::codec;
  cc::put_u8(out, kOlsrCodecVersion);
  cc::put_u16(out, msg_seq_);
  cc::put_u16(out, ansn_);
  cc::put_u16(out, static_cast<std::uint16_t>(last_advertised_.size()));
  for (net::Addr a : last_advertised_) cc::put_u32(out, a);
  cc::put_u16(out, static_cast<std::uint16_t>(topology_.size()));
  for (const auto& [origin, e] : topology_) {
    cc::put_u32(out, origin);
    cc::put_u16(out, e.ansn);
    cc::put_i64(out, e.expires.us);
    cc::put_u16(out, static_cast<std::uint16_t>(e.advertised.size()));
    for (net::Addr a : e.advertised) cc::put_u32(out, a);
  }
}

bool OlsrState::decode_state(std::span<const std::uint8_t> blob) {
  namespace cc = core::codec;
  std::size_t off = 0;
  std::uint8_t version = 0;
  if (!cc::get_u8(blob, off, version) || version != kOlsrCodecVersion) {
    return false;
  }
  reset_state();
  if (!cc::get_u16(blob, off, msg_seq_) || !cc::get_u16(blob, off, ansn_)) {
    return false;
  }
  std::uint16_t n_adv = 0;
  if (!cc::get_u16(blob, off, n_adv)) return false;
  for (std::uint16_t i = 0; i < n_adv; ++i) {
    std::uint32_t a = 0;
    if (!cc::get_u32(blob, off, a)) return false;
    last_advertised_.insert(a);
  }
  std::uint16_t n_topo = 0;
  if (!cc::get_u16(blob, off, n_topo)) return false;
  for (std::uint16_t i = 0; i < n_topo; ++i) {
    std::uint32_t origin = 0;
    TopologyEntry e;
    std::int64_t expires_us = 0;
    std::uint16_t n = 0;
    if (!cc::get_u32(blob, off, origin) || !cc::get_u16(blob, off, e.ansn) ||
        !cc::get_i64(blob, off, expires_us) || !cc::get_u16(blob, off, n)) {
      return false;
    }
    e.expires = TimePoint{expires_us};
    for (std::uint16_t j = 0; j < n; ++j) {
      std::uint32_t a = 0;
      if (!cc::get_u32(blob, off, a)) return false;
      e.advertised.insert(a);
    }
    topology_[origin] = std::move(e);
  }
  return off == blob.size();
}

void OlsrState::reset_state() {
  topology_.clear();
  msg_seq_ = 1;
  ansn_ = 1;
  last_advertised_.clear();
  installed_.clear();
  energy_.clear();
  own_battery_ = 1.0;
}

std::string OlsrState::describe() const {
  std::ostringstream os;
  os << "topology entries: " << topology_.size() << " ansn: " << ansn_
     << " installed routes: " << installed_.size();
  return os.str();
}

}  // namespace mk::proto
