#include "protocols/olsr/olsr_state.hpp"

#include <sstream>

namespace mk::proto {

namespace {

/// RFC 3626 §19: sequence-number comparison with wraparound.
bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

}  // namespace

OlsrState::OlsrState() : oc::Component("olsr.OlsrState") {
  set_instance_name("State");
  provide("IOlsrState", static_cast<IOlsrState*>(this));
  provide("IState", static_cast<core::IState*>(this));
}

bool OlsrState::update_topology(net::Addr origin, std::uint16_t ansn,
                                const std::set<net::Addr>& advertised,
                                TimePoint now, Duration hold) {
  auto it = topology_.find(origin);
  if (it != topology_.end() && seq_newer(it->second.ansn, ansn)) {
    return false;  // stale information
  }
  TopologyEntry entry;
  entry.ansn = ansn;
  entry.advertised = advertised;
  entry.expires = now + hold;
  topology_[origin] = std::move(entry);
  return true;
}

bool OlsrState::expire_topology(TimePoint now) {
  bool changed = false;
  for (auto it = topology_.begin(); it != topology_.end();) {
    if (it->second.expires < now) {
      it = topology_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

std::vector<net::Addr> OlsrState::topology_origins() const {
  std::vector<net::Addr> out;
  out.reserve(topology_.size());
  for (const auto& [origin, e] : topology_) out.push_back(origin);
  return out;
}

std::vector<std::pair<net::Addr, net::Addr>> OlsrState::topology_edges() const {
  std::vector<std::pair<net::Addr, net::Addr>> out;
  append_topology_edges(out);
  return out;
}

void OlsrState::append_topology_edges(
    std::vector<std::pair<net::Addr, net::Addr>>& out) const {
  for (const auto& [origin, e] : topology_) {
    for (net::Addr d : e.advertised) out.emplace_back(origin, d);
  }
}

double OlsrState::energy_of(net::Addr node) const {
  auto it = energy_.find(node);
  return it == energy_.end() ? 1.0 : it->second;
}

std::string OlsrState::describe() const {
  std::ostringstream os;
  os << "topology entries: " << topology_.size() << " ansn: " << ansn_
     << " installed routes: " << installed_.size();
  return os.str();
}

}  // namespace mk::proto
