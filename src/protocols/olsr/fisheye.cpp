#include "protocols/olsr/fisheye.hpp"

#include "util/assert.hpp"

namespace mk::proto {

namespace {

class FisheyeHandler final : public core::EventHandler {
 public:
  explicit FisheyeHandler(FisheyeParams params)
      : core::EventHandler("olsr.FisheyeHandler", {ev::types::TC_OUT}),
        params_(std::move(params)) {
    set_instance_name("FisheyeHandler");
    MK_ASSERT(!params_.ttl_pattern.empty());
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (!event.has_msg()) return;
    ev::Event out = event;
    pbb::Message& msg = out.mutable_msg();
    if (!msg.has_hops) {
      msg.has_hops = true;
      msg.hop_count = 0;
    }
    msg.hop_limit = params_.ttl_pattern[counter_++ % params_.ttl_pattern.size()];
    ctx.emit(std::move(out));
  }

 private:
  FisheyeParams params_;
  std::size_t counter_ = 0;
};

}  // namespace

std::unique_ptr<core::ManetProtocolCf> build_fisheye_cf(core::Manetkit& kit,
                                                        FisheyeParams params) {
  auto cf = std::make_unique<core::ManetProtocolCf>(
      kit.kernel(), "olsr-fisheye", kit.scheduler(), kit.self(),
      &kit.system().sys_state());
  cf->add_handler(std::make_unique<FisheyeHandler>(std::move(params)));
  // Requiring and providing TC_OUT makes this unit an interposer on the
  // TC_OUT path — no other wiring is needed.
  cf->declare_events({ev::types::TC_OUT}, {ev::types::TC_OUT});
  return cf;
}

core::ManetProtocolCf* apply_fisheye(core::Manetkit& kit,
                                     FisheyeParams params) {
  if (!kit.has_builder("olsr-fisheye")) {
    kit.register_protocol(
        "olsr-fisheye", /*layer=*/15,
        [params](core::Manetkit& k) { return build_fisheye_cf(k, params); });
  }
  return kit.deploy("olsr-fisheye");
}

void remove_fisheye(core::Manetkit& kit) {
  if (kit.is_deployed("olsr-fisheye")) kit.undeploy("olsr-fisheye");
}

}  // namespace mk::proto
