// S element of the OLSR CF: the topology set learned from TC flooding, the
// ANSN counter, route bookkeeping, and (for the power-aware variant) the
// per-node residual-energy map.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ifaces.hpp"
#include "core/state_codec.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "util/time.hpp"

namespace mk::proto {

struct IOlsrState : oc::Interface {
  /// Directed topology edges (origin -> advertised neighbour).
  virtual std::vector<std::pair<net::Addr, net::Addr>> topology_edges() const = 0;
  virtual std::size_t topology_size() const = 0;
};

class OlsrState : public oc::Component,
                  public core::IState,
                  public core::IStateCodec,
                  public IOlsrState {
 public:
  OlsrState();

  // -- topology set -----------------------------------------------------------
  /// Applies a TC: rejected (returns false) if `ansn` is older than the
  /// newest seen from `origin`. On acceptance replaces origin's advertised
  /// set and refreshes its validity.
  bool update_topology(net::Addr origin, std::uint16_t ansn,
                       const std::set<net::Addr>& advertised, TimePoint now,
                       Duration hold);

  /// Removes expired entries; returns true if anything was removed.
  bool expire_topology(TimePoint now);

  /// Removes one origin's advertisements (soft-state expiry); returns true
  /// if the origin was present.
  bool drop_topology(net::Addr origin) { return topology_.erase(origin) > 0; }

  /// Origins with live advertisements (expiry re-seeding after restart).
  std::vector<net::Addr> topology_origins() const;

  std::vector<std::pair<net::Addr, net::Addr>> topology_edges() const override;
  /// Appends the directed edges to `out` without clearing it — the route
  /// recompute collects its whole edge view in one reused scratch vector.
  void append_topology_edges(
      std::vector<std::pair<net::Addr, net::Addr>>& out) const;
  std::size_t topology_size() const override { return topology_.size(); }

  // -- sequence numbers ---------------------------------------------------------
  std::uint16_t next_msg_seq() { return msg_seq_++; }
  std::uint16_t ansn() const { return ansn_; }
  void bump_ansn() { ++ansn_; }

  /// Last advertised selector set (to detect when ANSN must change).
  const std::set<net::Addr>& last_advertised() const { return last_advertised_; }
  void set_last_advertised(std::set<net::Addr> s) {
    last_advertised_ = std::move(s);
  }

  // -- installed kernel routes owned by OLSR ---------------------------------------
  /// Sorted ascending; the route calculator swaps a freshly computed set in
  /// each recompute (vector, not set: the hot path only needs ordered
  /// iteration and binary search, without per-node allocation).
  std::vector<net::Addr>& installed_dests() { return installed_; }

  // -- residual energy (power-aware variant) -----------------------------------------
  void set_energy(net::Addr node, double level) { energy_[node] = level; }
  double energy_of(net::Addr node) const;
  void set_own_battery(double level) { own_battery_ = level; }
  double own_battery() const { return own_battery_; }

  std::string describe() const override;

  // -- IStateCodec (S-element replication, ISSUE 10) ----------------------------
  /// Topology set, sequence counters and the last advertised selector set.
  /// Installed kernel routes and the energy map are derived/contextual and
  /// recomputed after a restore (olsr_recompute_routes / fresh HELLOs).
  void encode_state(std::vector<std::uint8_t>& out) const override;
  bool decode_state(std::span<const std::uint8_t> blob) override;
  void reset_state() override;

 private:
  struct TopologyEntry {
    std::uint16_t ansn = 0;
    std::set<net::Addr> advertised;
    TimePoint expires{};
  };
  std::map<net::Addr, TopologyEntry> topology_;
  std::uint16_t msg_seq_ = 1;
  std::uint16_t ansn_ = 1;
  std::set<net::Addr> last_advertised_;
  std::vector<net::Addr> installed_;
  std::map<net::Addr, double> energy_;
  double own_battery_ = 1.0;
};

}  // namespace mk::proto
