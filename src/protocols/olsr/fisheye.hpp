// Fish-eye OLSR variant (§5.1): refreshes topology information more
// frequently for nearby nodes than distant ones by modulating the TTL of
// outgoing Topology Change messages [Gerla et al., FSR].
//
// Implemented exactly as the paper describes: a component that both requires
// and provides TC_OUT; inserting it re-evaluates the automatic event-tuple
// bindings, interposing it on the TC_OUT path between the OLSR and MPR CFs.
#pragma once

#include <memory>
#include <vector>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"

namespace mk::proto {

struct FisheyeParams {
  /// TTL sequence cycled across successive TCs: most TCs stay local, every
  /// third travels the whole network.
  std::vector<std::uint8_t> ttl_pattern = {2, 5, 255};
};

std::unique_ptr<core::ManetProtocolCf> build_fisheye_cf(
    core::Manetkit& kit, FisheyeParams params = {});

/// Deploys the fish-eye interposer (layer 15: between OLSR@20 and MPR@10).
core::ManetProtocolCf* apply_fisheye(core::Manetkit& kit,
                                     FisheyeParams params = {});

/// Removes the variant; TC_OUT flows directly from OLSR to MPR again.
void remove_fisheye(core::Manetkit& kit);

}  // namespace mk::proto
