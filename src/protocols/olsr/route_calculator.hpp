// OLSR routing-table calculation, as a replaceable component: the default
// computes min-hop shortest paths (Dijkstra) over 1-hop/2-hop neighbourhood
// plus the TC-learned topology set, and installs host routes in the kernel
// table. The power-aware variant substitutes an energy-cost metric
// (maximise route lifetime by avoiding low-battery relays).
#pragma once

#include <string>

#include "core/cfs.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "protocols/olsr/olsr_state.hpp"

namespace mk::proto {

struct IRouteCalculator : oc::Interface {
  /// Recomputes all routes and syncs the kernel table (adding new routes,
  /// removing stale OLSR-owned ones).
  virtual void recompute(core::ProtocolContext& ctx) = 0;
};

class RouteCalculator : public oc::Component, public IRouteCalculator {
 public:
  /// `mpr_cf` is the MPR CF instance whose S element supplies neighbourhood
  /// information (a cross-CF direct-call binding in the paper's terms).
  explicit RouteCalculator(core::ManetProtocolCf* mpr_cf);

  void recompute(core::ProtocolContext& ctx) override;

 protected:
  RouteCalculator(std::string type_name, core::ManetProtocolCf* mpr_cf);

  /// Cost of traversing intermediate node `via` (hop metric = 1.0).
  virtual double node_cost(const OlsrState& st, net::Addr via) const;

  core::ManetProtocolCf* mpr_cf_;
};

/// Energy-aware path selection: traversal cost grows steeply as the relay's
/// advertised residual battery drops, so min-cost paths are the
/// longest-lifetime paths.
class EnergyRouteCalculator final : public RouteCalculator {
 public:
  explicit EnergyRouteCalculator(core::ManetProtocolCf* mpr_cf);

 protected:
  double node_cost(const OlsrState& st, net::Addr via) const override;
};

}  // namespace mk::proto
