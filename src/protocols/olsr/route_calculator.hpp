// OLSR routing-table calculation, as a replaceable component: the default
// computes min-hop shortest paths (Dijkstra) over 1-hop/2-hop neighbourhood
// plus the TC-learned topology set, and installs host routes in the kernel
// table. The power-aware variant substitutes an energy-cost metric
// (maximise route lifetime by avoiding low-battery relays).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cfs.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "protocols/olsr/olsr_state.hpp"

namespace mk::proto {

struct IRouteCalculator : oc::Interface {
  /// Recomputes all routes and syncs the kernel table (adding new routes,
  /// removing stale OLSR-owned ones).
  virtual void recompute(core::ProtocolContext& ctx) = 0;
};

class RouteCalculator : public oc::Component, public IRouteCalculator {
 public:
  /// `mpr_cf` is the MPR CF instance whose S element supplies neighbourhood
  /// information (a cross-CF direct-call binding in the paper's terms).
  explicit RouteCalculator(core::ManetProtocolCf* mpr_cf);

  void recompute(core::ProtocolContext& ctx) override;

 protected:
  RouteCalculator(std::string type_name, core::ManetProtocolCf* mpr_cf);

  /// Cost of traversing intermediate node `via` (hop metric = 1.0).
  virtual double node_cost(const OlsrState& st, net::Addr via) const;

  core::ManetProtocolCf* mpr_cf_;

 private:
  // Dijkstra scratch, reused across recomputes: addresses are mapped onto a
  // dense index space so distance/parent lookups are array reads and the
  // whole computation performs no steady-state allocation (the capacity of
  // every vector survives between calls).
  std::vector<std::pair<net::Addr, net::Addr>> scratch_edges_;
  std::vector<net::Addr> scratch_nodes_;  // sorted; position = dense index
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_idx_;
  std::vector<std::uint32_t> adj_start_;  // CSR offsets into edge_idx_
  std::vector<std::pair<double, std::uint32_t>> heap_;
  std::vector<double> dist_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> hops_;
  std::vector<net::Addr> fresh_;
};

/// Energy-aware path selection: traversal cost grows steeply as the relay's
/// advertised residual battery drops, so min-cost paths are the
/// longest-lifetime paths.
class EnergyRouteCalculator final : public RouteCalculator {
 public:
  explicit EnergyRouteCalculator(core::ManetProtocolCf* mpr_cf);

 protected:
  double node_cost(const OlsrState& st, net::Addr via) const override;
};

}  // namespace mk::proto
