// Power-aware OLSR variant (§5.1) [Mahfoudh & Minet 2008 flavour]: maximises
// route lifetime by steering both relay selection and path selection away
// from low-battery nodes.
//
// Enactment (exactly the paper's recipe):
//  * the MPR CF's Hello Handler and MPR Calculator are *replaced* by
//    power-aware versions (link cost from advertised residual power);
//  * a ResidualPower component is *plugged into* the OLSR CF, disseminating
//    this node's battery level network-wide via MPR's flooding service;
//  * OLSR's RouteCalculator is replaced by an energy-cost version.
//
// Both applying and removing the variant are a handful of operations on the
// CFs' architecture meta-models.
#pragma once

#include "core/manetkit.hpp"

namespace mk::proto {

/// Applies the variant to the deployed "olsr" + "mpr" CFs.
/// Throws std::logic_error if OLSR is not deployed.
void apply_power_aware(core::Manetkit& kit);

/// Reverts to standard OLSR routing (the variant "becomes a hindrance" when
/// no application needs the long-lifetime QoS emphasis).
void remove_power_aware(core::Manetkit& kit);

bool is_power_aware(core::Manetkit& kit);

}  // namespace mk::proto
