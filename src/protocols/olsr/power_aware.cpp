#include "protocols/olsr/power_aware.hpp"

#include "core/attrs.hpp"
#include "protocols/mpr/mpr_calculator.hpp"
#include "protocols/mpr/mpr_cf.hpp"
#include "protocols/mpr/mpr_handlers.hpp"
#include "protocols/olsr/olsr_cf.hpp"
#include "protocols/olsr/route_calculator.hpp"
#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace mk::proto {

namespace {

/// Replacement Hello Handler: derives the neighbour's effective willingness
/// (link cost) from the residual battery it piggybacks, rather than from the
/// neighbour's self-declared willingness alone.
class PowerAwareHelloHandler final : public MprHelloHandler {
 public:
  PowerAwareHelloHandler() : MprHelloHandler("mpr.PowerAwareHelloHandler") {}

 protected:
  std::uint8_t effective_willingness(const pbb::Message& msg,
                                     core::ProtocolContext& ctx) override {
    const auto* batt = msg.find_tlv(wire::kTlvBattery);
    if (batt != nullptr) {
      return willingness_from_battery(batt->as_u8() / 100.0);
    }
    return MprHelloHandler::effective_willingness(msg, ctx);
  }
};

/// Plugged into the OLSR CF: floods this node's residual battery level.
class ResidualPowerSource final : public core::EventSource {
 public:
  ResidualPowerSource()
      : core::EventSource("olsr.ResidualPowerSource") {
    set_instance_name("ResidualPower");
  }

  void start(core::ProtocolContext& ctx) override {
    ctx_ = &ctx;
    timer_ = std::make_unique<PeriodicTimer>(
        ctx.scheduler(), sec(5), [this] { fire(); },
        /*jitter=*/0.1, /*seed=*/ctx.self() + 3);
    timer_->start();
  }

  void stop() override { timer_.reset(); }

 private:
  void fire() {
    auto* st = dynamic_cast<OlsrState*>(ctx_->state());
    if (st == nullptr) return;
    pbb::Message m;
    m.type = wire::kMsgResidualPower;
    m.originator = ctx_->self();
    m.seqnum = st->next_msg_seq();
    m.tlvs.push_back(pbb::Tlv::u8(
        wire::kTlvBattery,
        static_cast<std::uint8_t>(st->own_battery() * 100.0)));
    ev::Event e(ev::etype("RP_OUT"));
    e.set_msg(std::move(m));
    ctx_->emit(std::move(e));
  }

  core::ProtocolContext* ctx_ = nullptr;
  std::unique_ptr<PeriodicTimer> timer_;
};

/// Tracks this node's own battery from POWER_STATUS context events.
class PowerTrackHandler final : public core::EventHandler {
 public:
  PowerTrackHandler()
      : core::EventHandler("olsr.PowerTrackHandler",
                           {ev::types::POWER_STATUS}) {
    set_instance_name("PowerTrackHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (auto* st = dynamic_cast<OlsrState*>(ctx.state())) {
      st->set_own_battery(event.get_double(core::attrs::kBattery, 1.0));
    }
  }
};

/// Records other nodes' flooded residual power and recomputes energy routes.
class ResidualPowerHandler final : public core::EventHandler {
 public:
  ResidualPowerHandler()
      : core::EventHandler("olsr.ResidualPowerHandler", {"RP_IN"}) {
    set_instance_name("ResidualPowerHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (!event.has_msg() || !event.msg()->originator) return;
    if (*event.msg()->originator == ctx.self()) return;
    const auto* batt = event.msg()->find_tlv(wire::kTlvBattery);
    if (batt == nullptr) return;
    if (auto* st = dynamic_cast<OlsrState*>(ctx.state())) {
      st->set_energy(*event.msg()->originator, batt->as_u8() / 100.0);
    }
    olsr_recompute_routes(ctx.protocol());
  }
};

}  // namespace

void apply_power_aware(core::Manetkit& kit) {
  core::ManetProtocolCf* olsr = kit.protocol("olsr");
  core::ManetProtocolCf* mpr = kit.protocol("mpr");
  MK_ENSURE(olsr != nullptr && mpr != nullptr,
            "power-aware variant requires deployed olsr + mpr");
  if (is_power_aware(kit)) return;

  // --- MPR CF: power-aware relay selection -------------------------------
  {
    auto lock = mpr->quiesce();
    oc::ComponentId calc_id = mpr->find_id("MprCalculator");
    MK_ASSERT(calc_id != oc::kNoComponent);
    mpr->replace(calc_id, std::make_unique<EnergyMprCalculator>());
    mpr->replace_handler("HelloHandler",
                         std::make_unique<PowerAwareHelloHandler>());
    // Advertise our own battery in HELLOs via the piggyback service.
    net::SimNode* node = &kit.node();
    mpr_state(*mpr)->add_piggyback_provider([node]() {
      return pbb::Tlv::u8(wire::kTlvBattery,
                          static_cast<std::uint8_t>(node->battery() * 100.0));
    });
  }

  // --- flooding service learns the RP message family -----------------------
  mpr_add_flood_type(kit, *mpr, "RP", wire::kMsgResidualPower);

  // --- OLSR CF: energy route calculation + RP dissemination -----------------
  {
    auto lock = olsr->quiesce();
    oc::ComponentId rc_id = olsr->find_id("RouteCalculator");
    MK_ASSERT(rc_id != oc::kNoComponent);
    olsr->replace(rc_id, std::make_unique<EnergyRouteCalculator>(mpr));
    olsr->add_handler(std::make_unique<PowerTrackHandler>());
    olsr->add_handler(std::make_unique<ResidualPowerHandler>());
    olsr->add_source(std::make_unique<ResidualPowerSource>());
  }
  olsr->declare_events({ev::types::TC_IN, ev::types::NHOOD_CHANGE,
                        ev::types::MPR_CHANGE, "RP_IN",
                        ev::types::POWER_STATUS},
                       {ev::types::TC_OUT, "RP_OUT"});
  olsr_recompute_routes(*olsr);
}

void remove_power_aware(core::Manetkit& kit) {
  core::ManetProtocolCf* olsr = kit.protocol("olsr");
  core::ManetProtocolCf* mpr = kit.protocol("mpr");
  MK_ENSURE(olsr != nullptr && mpr != nullptr,
            "power-aware variant requires deployed olsr + mpr");
  if (!is_power_aware(kit)) return;

  {
    auto lock = mpr->quiesce();
    oc::ComponentId calc_id = mpr->find_id("MprCalculator");
    mpr->replace(calc_id, std::make_unique<MprCalculator>());
    mpr->replace_handler("HelloHandler", std::make_unique<MprHelloHandler>());
    mpr_state(*mpr)->clear_piggyback_providers();
  }
  {
    auto lock = olsr->quiesce();
    oc::ComponentId rc_id = olsr->find_id("RouteCalculator");
    olsr->replace(rc_id, std::make_unique<RouteCalculator>(mpr));
    olsr->remove_handler("PowerTrackHandler");
    olsr->remove_handler("ResidualPowerHandler");
    olsr->remove_source("ResidualPower");
  }
  olsr->declare_events(
      {ev::types::TC_IN, ev::types::NHOOD_CHANGE, ev::types::MPR_CHANGE},
      {ev::types::TC_OUT});
  olsr_recompute_routes(*olsr);
}

bool is_power_aware(core::Manetkit& kit) {
  core::ManetProtocolCf* olsr = kit.protocol("olsr");
  if (olsr == nullptr) return false;
  auto* rc = olsr->find("RouteCalculator");
  return rc != nullptr && rc->type_name() == "olsr.EnergyRouteCalculator";
}

}  // namespace mk::proto
