#include "protocols/olsr/olsr_cf.hpp"

#include "core/soft_state.hpp"
#include "protocols/mpr/mpr_cf.hpp"
#include "protocols/olsr/route_calculator.hpp"
#include "protocols/wire.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mk::proto {

namespace tc {

pbb::Message build(net::Addr self, std::uint16_t seq, std::uint16_t ansn,
                   const std::set<net::Addr>& advertised) {
  pbb::Message m;
  m.type = wire::kMsgTc;
  m.originator = self;
  m.seqnum = seq;
  m.has_hops = true;
  m.hop_limit = 255;
  m.hop_count = 0;
  m.tlvs.push_back(pbb::Tlv::u16(wire::kTlvAnsn, ansn));
  pbb::AddressBlock block;
  block.addrs.assign(advertised.begin(), advertised.end());
  m.addr_blocks.push_back(std::move(block));
  return m;
}

}  // namespace tc

namespace {

OlsrState& olsr_state_of(core::ProtocolContext& ctx) {
  auto* s = dynamic_cast<OlsrState*>(ctx.state());
  MK_ASSERT(s != nullptr, "OLSR CF has no OlsrState S element");
  return *s;
}

/// Builds and emits this node's TC (advertising its MPR-selector set),
/// bumping the ANSN when the advertised set changed. Shared by the periodic
/// generator and the triggered path. Returns false when there is nothing to
/// advertise (and nothing was previously advertised).
bool emit_tc(core::ProtocolContext& ctx, core::ManetProtocolCf* mpr_cf) {
  OlsrState& st = olsr_state_of(ctx);
  auto* mpr = mpr_state(*mpr_cf);
  if (mpr == nullptr) return false;
  std::set<net::Addr> selectors = mpr->mpr_selectors();
  if (selectors.empty() && st.last_advertised().empty()) return false;

  if (selectors != st.last_advertised()) {
    st.bump_ansn();
    st.set_last_advertised(selectors);
  }
  ev::Event e(ev::types::TC_OUT);
  e.set_msg(tc::build(ctx.self(), st.next_msg_seq(), st.ansn(), selectors));
  ctx.metrics().counter("olsr.tc_out").inc();
  ctx.emit(std::move(e));
  return true;
}

void recompute_routes(core::ProtocolContext& ctx) {
  auto* comp = ctx.protocol().find("RouteCalculator");
  if (comp == nullptr) return;
  if (auto* calc = comp->interface_as<IRouteCalculator>("IRouteCalculator")) {
    calc->recompute(ctx);
  }
}

/// Periodically diffuses this node's Topology Change message (advertising
/// its MPR-selector set). Topology expiry is per-entry via the shared
/// soft-state layer, not swept here.
class TcGenerator final : public core::EventSource {
 public:
  TcGenerator(OlsrParams params, core::ManetProtocolCf* mpr_cf)
      : core::EventSource("olsr.TcGenerator"),
        params_(params),
        mpr_cf_(mpr_cf) {
    set_instance_name("TcGenerator");
  }

  void start(core::ProtocolContext& ctx) override {
    ctx_ = &ctx;
    timer_ = std::make_unique<PeriodicTimer>(
        ctx.scheduler(), params_.tc_interval, [this] { fire(); },
        /*jitter=*/0.1, /*seed=*/ctx.self() + 2);
    timer_->start();
  }

  void stop() override { timer_.reset(); }

 private:
  void fire() { emit_tc(*ctx_, mpr_cf_); }

  OlsrParams params_;
  core::ManetProtocolCf* mpr_cf_;
  core::ProtocolContext* ctx_ = nullptr;
  std::unique_ptr<PeriodicTimer> timer_;
};

/// Applies received Topology Change messages to the topology set.
class TcHandler final : public core::EventHandler {
 public:
  TcHandler(OlsrParams params, core::ManetProtocolCf* mpr_cf,
            core::ISoftExpiry::SetId topo_set)
      : core::EventHandler("olsr.TcHandler", {ev::types::TC_IN}),
        params_(params),
        mpr_cf_(mpr_cf),
        topo_set_(topo_set) {
    set_instance_name("TcHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    if (tc_in_ == nullptr) tc_in_ = &ctx.metrics().counter("olsr.tc_in");
    tc_in_->inc();
    if (!event.has_msg()) return;
    const pbb::Message& msg = *event.msg();
    if (!msg.originator || !msg.seqnum) return;
    if (*msg.originator == ctx.self()) return;

    // RFC 3626: process TCs only from symmetric neighbours.
    auto* mpr = mpr_state(*mpr_cf_);
    if (mpr != nullptr && !mpr->is_sym_neighbor(event.from)) return;

    const auto* ansn_tlv = msg.find_tlv(wire::kTlvAnsn);
    if (ansn_tlv == nullptr) return;

    std::set<net::Addr> advertised;
    for (const auto& block : msg.addr_blocks) {
      advertised.insert(block.addrs.begin(), block.addrs.end());
    }
    OlsrState& st = olsr_state_of(ctx);
    if (st.update_topology(*msg.originator, ansn_tlv->as_u16(), advertised,
                           ctx.now(), params_.topology_hold)) {
      if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
      if (soft_ != nullptr) soft_->touch(topo_set_, *msg.originator);
      recompute_routes(ctx);
    }
  }

 private:
  OlsrParams params_;
  core::ManetProtocolCf* mpr_cf_;
  core::ISoftExpiry::SetId topo_set_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
  obs::Counter* tc_in_ = nullptr;  // cached: interned once, then atomic inc
};

/// Neighbourhood / relay-selection changes invalidate routes immediately;
/// an MPR_CHANGE additionally triggers an early TC (RFC 3626 §9.3's
/// triggered message), rate-limited so churn cannot flood the network.
/// Each trigger is followed by one delayed re-emission after the next HELLO
/// round: the first copy updates 1-hop neighbours at once, the second is
/// relayed properly once the HELLO advertising the new relay selection has
/// propagated (a triggered TC otherwise races its own relays).
class TopologyChangeHandler final : public core::EventHandler {
 public:
  static constexpr Duration kMinTriggeredGap = sec(1);
  static constexpr Duration kReemitDelay = sec(3);  // > one HELLO interval

  TopologyChangeHandler(core::ManetProtocolCf* mpr_cf, Scheduler& sched)
      : core::EventHandler("olsr.TopologyChangeHandler",
                           {ev::types::NHOOD_CHANGE, ev::types::MPR_CHANGE}),
        mpr_cf_(mpr_cf),
        reemit_(sched) {
    set_instance_name("TopologyChangeHandler");
  }

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override {
    recompute_routes(ctx);
    if (event.type() != ev::etype(ev::types::MPR_CHANGE)) return;
    if (ctx.now() - last_triggered_ >= kMinTriggeredGap) {
      if (emit_tc(ctx, mpr_cf_)) {
        last_triggered_ = ctx.now();
        ctx.metrics().counter("olsr.triggered_tc").inc();
      }
    }
    // Coalesced follow-up re-emission (safe: the protocol CF outlives its
    // handlers only across replace, which cancels via OneShotTimer's dtor).
    core::ManetProtocolCf* proto = &ctx.protocol();
    core::ManetProtocolCf* mpr = mpr_cf_;
    reemit_.schedule(kReemitDelay, [proto, mpr] {
      auto lock = proto->quiesce();
      emit_tc(proto->context(), mpr);
    });
  }

 private:
  core::ManetProtocolCf* mpr_cf_;
  TimePoint last_triggered_{-10'000'000};
  OneShotTimer reemit_;
};

}  // namespace

std::unique_ptr<core::ManetProtocolCf> build_olsr_cf(core::Manetkit& kit,
                                                     OlsrParams params) {
  core::ManetProtocolCf* mpr_cf = kit.deploy("mpr");

  auto cf = std::make_unique<core::ManetProtocolCf>(
      kit.kernel(), "olsr", kit.scheduler(), kit.self(),
      &kit.system().sys_state());

  cf->add_integrity_rule([](const oc::CfView& view, std::string& err) {
    if (view.count_providing("IRouteCalculator") > 1) {
      err = "OLSR CF admits a single IRouteCalculator plug-in";
      return false;
    }
    return true;
  });

  cf->set_state(std::make_unique<OlsrState>());
  cf->insert(std::make_unique<RouteCalculator>(mpr_cf));

  // Topology tuples live in the shared soft-state layer: each accepted TC
  // (re)arms its origin's holding time, and lapse drops the origin's
  // advertisements and recomputes routes — no sweep, so a partition is
  // noticed one holding time after the last TC, not at sweep granularity.
  auto soft = std::make_unique<core::SoftExpiry>();
  core::ManetProtocolCf* raw = cf.get();
  auto topo_set = soft->define_set(
      "olsr.topology", params.topology_hold,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        if (olsr_state_of(ctx).drop_topology(static_cast<net::Addr>(key))) {
          recompute_routes(ctx);
        }
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (OlsrState* st = olsr_state(*raw)) {
          for (net::Addr origin : st->topology_origins()) keys.push_back(origin);
        }
        return keys;
      });
  cf->add_source(std::move(soft));

  cf->add_handler(std::make_unique<TcHandler>(params, mpr_cf, topo_set));
  cf->add_handler(
      std::make_unique<TopologyChangeHandler>(mpr_cf, kit.scheduler()));
  cf->add_source(std::make_unique<TcGenerator>(params, mpr_cf));

  cf->declare_events(
      {ev::types::TC_IN, ev::types::NHOOD_CHANGE, ev::types::MPR_CHANGE},
      {ev::types::TC_OUT});
  return cf;
}

void register_olsr(core::Manetkit& kit, OlsrParams params) {
  if (!kit.has_builder("mpr")) register_mpr(kit);
  kit.register_protocol(
      "olsr", /*layer=*/20,
      [params](core::Manetkit& k) { return build_olsr_cf(k, params); },
      /*category=*/"proactive");
}

OlsrState* olsr_state(core::ManetProtocolCf& cf) {
  return dynamic_cast<OlsrState*>(cf.state_component());
}

void olsr_recompute_routes(core::ManetProtocolCf& cf) {
  auto lock = cf.quiesce();
  recompute_routes(cf.context());
}

}  // namespace mk::proto
