#include "protocols/olsr/route_calculator.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "core/manet_protocol.hpp"
#include "protocols/mpr/mpr_state.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::proto {

RouteCalculator::RouteCalculator(core::ManetProtocolCf* mpr_cf)
    : RouteCalculator("olsr.RouteCalculator", mpr_cf) {}

RouteCalculator::RouteCalculator(std::string type_name,
                                 core::ManetProtocolCf* mpr_cf)
    : oc::Component(std::move(type_name)), mpr_cf_(mpr_cf) {
  set_instance_name("RouteCalculator");
  provide("IRouteCalculator", static_cast<IRouteCalculator*>(this));
}

double RouteCalculator::node_cost(const OlsrState&, net::Addr) const {
  return 1.0;
}

void RouteCalculator::recompute(core::ProtocolContext& ctx) {
  auto* st = dynamic_cast<OlsrState*>(ctx.state());
  if (st == nullptr || ctx.sys() == nullptr || mpr_cf_ == nullptr) return;

  auto* nbr =
      mpr_cf_->state_component() == nullptr
          ? nullptr
          : mpr_cf_->state_component()->interface_as<INeighborState>(
                "INeighborState");
  if (nbr == nullptr) return;

  net::Addr self = ctx.self();

  // Build the adjacency view: symmetric 1-hop links, 2-hop links learned
  // from HELLOs, and TC-advertised links. Edges are *directed* away from the
  // node that vouches for them (RFC 3626 §10): a destination is reachable
  // only through a chain of still-fresh advertisements starting at our own
  // link set. Treating TC edges as bidirectional — the pre-ISSUE-6 bug —
  // let a partitioned-away origin's stale TC (topology hold 15 s) resurrect
  // the severed link from the *far* side, so mid-partition recomputes never
  // dropped routes and kRouteDel was only ever journaled after the heal.
  std::map<net::Addr, std::set<net::Addr>> adj;
  auto add_edge = [&adj](net::Addr a, net::Addr b) { adj[a].insert(b); };
  for (net::Addr n : nbr->sym_neighbors()) {
    add_edge(self, n);
    for (net::Addr t : nbr->two_hop_via(n)) {
      if (t != self) add_edge(n, t);
    }
  }
  for (const auto& [origin, dest] : st->topology_edges()) {
    add_edge(origin, dest);
  }

  // Dijkstra from self; edge weight = node_cost(entered node).
  std::map<net::Addr, double> dist;
  std::map<net::Addr, net::Addr> parent;
  std::map<net::Addr, std::uint32_t> hops;
  using QItem = std::pair<double, net::Addr>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[self] = 0.0;
  hops[self] = 0;
  pq.emplace(0.0, self);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (net::Addr v : it->second) {
      double w = node_cost(*st, v);
      double nd = d + w;
      auto dit = dist.find(v);
      if (dit == dist.end() || nd < dit->second - 1e-12) {
        dist[v] = nd;
        parent[v] = u;
        hops[v] = hops[u] + 1;
        pq.emplace(nd, v);
      }
    }
  }

  // Resolve next hops and sync the kernel table.
  net::KernelRouteTable& kernel = ctx.sys()->kernel_table();
  std::set<net::Addr> fresh;
  for (const auto& [dest, _] : dist) {
    if (dest == self) continue;
    net::Addr hop = dest;
    while (parent.count(hop) > 0 && parent[hop] != self) hop = parent[hop];
    if (parent.count(hop) == 0) continue;  // unreachable glitch
    net::RouteEntry entry;
    entry.dest = dest;
    entry.next_hop = hop;
    entry.metric = hops[dest];
    entry.installed_at = ctx.now();
    kernel.set_route(entry);
    fresh.insert(dest);
  }
  for (net::Addr old_dest : st->installed_dests()) {
    if (fresh.count(old_dest) == 0) kernel.remove_route(old_dest);
  }
  st->installed_dests() = std::move(fresh);
}

EnergyRouteCalculator::EnergyRouteCalculator(core::ManetProtocolCf* mpr_cf)
    : RouteCalculator("olsr.EnergyRouteCalculator", mpr_cf) {}

double EnergyRouteCalculator::node_cost(const OlsrState& st,
                                        net::Addr via) const {
  // Residual-energy cost: a relay at full charge costs ~1 hop; a nearly
  // drained relay costs ~20, steering routes around it.
  return 1.0 / std::max(0.05, st.energy_of(via));
}

}  // namespace mk::proto
