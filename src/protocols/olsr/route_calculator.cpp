#include "protocols/olsr/route_calculator.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "core/manet_protocol.hpp"
#include "protocols/mpr/mpr_state.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::proto {

RouteCalculator::RouteCalculator(core::ManetProtocolCf* mpr_cf)
    : RouteCalculator("olsr.RouteCalculator", mpr_cf) {}

RouteCalculator::RouteCalculator(std::string type_name,
                                 core::ManetProtocolCf* mpr_cf)
    : oc::Component(std::move(type_name)), mpr_cf_(mpr_cf) {
  set_instance_name("RouteCalculator");
  provide("IRouteCalculator", static_cast<IRouteCalculator*>(this));
}

double RouteCalculator::node_cost(const OlsrState&, net::Addr) const {
  return 1.0;
}

void RouteCalculator::recompute(core::ProtocolContext& ctx) {
  auto* st = dynamic_cast<OlsrState*>(ctx.state());
  if (st == nullptr || ctx.sys() == nullptr || mpr_cf_ == nullptr) return;

  auto* nbr =
      mpr_cf_->state_component() == nullptr
          ? nullptr
          : mpr_cf_->state_component()->interface_as<INeighborState>(
                "INeighborState");
  if (nbr == nullptr) return;

  net::Addr self = ctx.self();

  // Build the adjacency view: symmetric 1-hop links, 2-hop links learned
  // from HELLOs, and TC-advertised links. Edges are *directed* away from the
  // node that vouches for them (RFC 3626 §10): a destination is reachable
  // only through a chain of still-fresh advertisements starting at our own
  // link set. Treating TC edges as bidirectional — the pre-ISSUE-6 bug —
  // let a partitioned-away origin's stale TC (topology hold 15 s) resurrect
  // the severed link from the *far* side, so mid-partition recomputes never
  // dropped routes and kRouteDel was only ever journaled after the heal.
  //
  // The whole computation runs on reused member scratch over a dense index
  // space: addresses sort into scratch_nodes_ (position = index), edges
  // dedupe into a CSR adjacency, and Dijkstra's maps become flat arrays.
  // Index order equals address order, so every tie-break (heap pops, edge
  // iteration, install order) matches the former std::map-based version.
  scratch_edges_.clear();
  for (net::Addr n : nbr->sym_neighbors()) {
    scratch_edges_.emplace_back(self, n);
    for (net::Addr t : nbr->two_hop_via(n)) {
      if (t != self) scratch_edges_.emplace_back(n, t);
    }
  }
  st->append_topology_edges(scratch_edges_);

  scratch_nodes_.clear();
  scratch_nodes_.push_back(self);
  for (const auto& [a, b] : scratch_edges_) {
    scratch_nodes_.push_back(a);
    scratch_nodes_.push_back(b);
  }
  std::sort(scratch_nodes_.begin(), scratch_nodes_.end());
  scratch_nodes_.erase(
      std::unique(scratch_nodes_.begin(), scratch_nodes_.end()),
      scratch_nodes_.end());
  const auto n = static_cast<std::uint32_t>(scratch_nodes_.size());
  auto idx_of = [this](net::Addr a) {
    return static_cast<std::uint32_t>(
        std::lower_bound(scratch_nodes_.begin(), scratch_nodes_.end(), a) -
        scratch_nodes_.begin());
  };

  edge_idx_.clear();
  for (const auto& [a, b] : scratch_edges_) {
    edge_idx_.emplace_back(idx_of(a), idx_of(b));
  }
  std::sort(edge_idx_.begin(), edge_idx_.end());
  edge_idx_.erase(std::unique(edge_idx_.begin(), edge_idx_.end()),
                  edge_idx_.end());
  adj_start_.assign(n + 1, 0);
  for (const auto& [u, v] : edge_idx_) adj_start_[u + 1]++;
  for (std::uint32_t i = 1; i <= n; ++i) adj_start_[i] += adj_start_[i - 1];

  // Dijkstra from self; edge weight = node_cost(entered node).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::uint32_t kNoParent = 0xFFFF'FFFFu;
  dist_.assign(n, kInf);
  parent_.assign(n, kNoParent);
  hops_.assign(n, 0);
  heap_.clear();
  const std::uint32_t self_idx = idx_of(self);
  dist_[self_idx] = 0.0;
  heap_.emplace_back(0.0, self_idx);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d > dist_[u]) continue;
    for (std::uint32_t e = adj_start_[u]; e < adj_start_[u + 1]; ++e) {
      std::uint32_t v = edge_idx_[e].second;
      double w = node_cost(*st, scratch_nodes_[v]);
      double nd = d + w;
      if (nd < dist_[v] - 1e-12) {
        dist_[v] = nd;
        parent_[v] = u;
        hops_[v] = hops_[u] + 1;
        heap_.emplace_back(nd, v);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }

  // Resolve next hops and sync the kernel table.
  net::KernelRouteTable& kernel = ctx.sys()->kernel_table();
  fresh_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i == self_idx || parent_[i] == kNoParent) continue;
    std::uint32_t hop = i;
    while (parent_[hop] != kNoParent && parent_[hop] != self_idx) {
      hop = parent_[hop];
    }
    if (parent_[hop] == kNoParent) continue;  // unreachable glitch
    net::RouteEntry entry;
    entry.dest = scratch_nodes_[i];
    entry.next_hop = scratch_nodes_[hop];
    entry.metric = hops_[i];
    entry.installed_at = ctx.now();
    kernel.set_route(entry);
    fresh_.push_back(scratch_nodes_[i]);  // ascending: index order
  }
  for (net::Addr old_dest : st->installed_dests()) {
    if (!std::binary_search(fresh_.begin(), fresh_.end(), old_dest)) {
      kernel.remove_route(old_dest);
    }
  }
  // Swap, don't move: fresh_ keeps the displaced capacity for next time.
  st->installed_dests().swap(fresh_);
}

EnergyRouteCalculator::EnergyRouteCalculator(core::ManetProtocolCf* mpr_cf)
    : RouteCalculator("olsr.EnergyRouteCalculator", mpr_cf) {}

double EnergyRouteCalculator::node_cost(const OlsrState& st,
                                        net::Addr via) const {
  // Residual-energy cost: a relay at full charge costs ~1 hop; a nearly
  // drained relay costs ~20, steering routes around it.
  return 1.0 / std::max(0.05, st.energy_of(via));
}

}  // namespace mk::proto
