// The OLSR CF (§5.1, Fig. 5): built as a ManetProtocol stacked on the MPR CF.
// MPR does link sensing and relay selection; OLSR garners topology via TC
// flooding (using MPR's forwarding service) and computes routes.
//
// Event tuple: <required = {TC_IN, NHOOD_CHANGE, MPR_CHANGE},
//               provided = {TC_OUT}>.
#pragma once

#include <memory>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "protocols/olsr/olsr_state.hpp"

namespace mk::proto {

struct OlsrParams {
  Duration tc_interval = sec(5);
  Duration topology_hold = sec(15);  // 3 x tc
};

/// Builds the OLSR CF. Deploys the "mpr" CF first if necessary (the two are
/// separate ManetProtocol instances, shareable with other protocols).
std::unique_ptr<core::ManetProtocolCf> build_olsr_cf(core::Manetkit& kit,
                                                     OlsrParams params = {});

/// Registers "olsr" (layer 20, category "proactive"); also registers "mpr"
/// if absent.
void register_olsr(core::Manetkit& kit, OlsrParams params = {});

OlsrState* olsr_state(core::ManetProtocolCf& cf);

/// Triggers an immediate route recomputation via the CF's IRouteCalculator.
void olsr_recompute_routes(core::ManetProtocolCf& cf);

/// TC message codec (exposed for tests and the monolithic baseline parity
/// checks).
namespace tc {
pbb::Message build(net::Addr self, std::uint16_t seq, std::uint16_t ansn,
                   const std::set<net::Addr>& advertised);
}

}  // namespace mk::proto
