// Gossip-flooding DYMO variant — §2's "various epidemic/gossip algorithms
// can also be applied in this context" [Haas, Halpern & Li, GOSSIP1(p,k)]:
// route-request floods are relayed with probability p, except within the
// first k hops (where the flood is still thin and a loss would kill it).
//
// Like fish-eye and optimised flooding, this is a single-handler
// reconfiguration of a running DYMO deployment. It trades a little
// discovery reliability for substantially fewer rebroadcasts in dense
// networks; in sparse networks it should not be applied (every relay is
// essential) — exactly the kind of conditions-dependent trade-off MANETKit
// exists to switch on and off.
#pragma once

#include "core/manetkit.hpp"
#include "protocols/dymo/dymo_cf.hpp"

namespace mk::proto {

struct GossipParams {
  double relay_probability = 0.65;  // p
  std::uint8_t sure_hops = 1;       // k: always relay within k hops of origin
  std::uint64_t seed = 99;
};

void apply_dymo_gossip_flooding(core::Manetkit& kit, GossipParams gossip = {},
                                DymoParams params = {});
void remove_dymo_gossip_flooding(core::Manetkit& kit, DymoParams params = {});
bool is_dymo_gossip_flooding(core::Manetkit& kit);

}  // namespace mk::proto
