#include "protocols/dymo/dymo_cf.hpp"

#include "core/attrs.hpp"
#include "protocols/neighbor/neighbor_cf.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::proto {

namespace {

using core::attrs::kDest;
using core::attrs::kNeighbor;
using core::attrs::kNextHop;
using core::attrs::kUnicastTo;
using core::attrs::kUp;

DymoState& dymo_state_of(core::ProtocolContext& ctx) {
  auto* s = dynamic_cast<DymoState*>(ctx.state());
  MK_ASSERT(s != nullptr, "DYMO CF has no DymoState S element");
  return *s;
}

}  // namespace

void dymo_emit_route_found(core::ProtocolContext& ctx, net::Addr dest) {
  ev::Event e(ev::types::ROUTE_FOUND);
  e.set_int(core::attrs::kDest, dest);
  ctx.emit(std::move(e));
}

void dymo_send_rreq(core::ProtocolContext& ctx, net::Addr target,
                    const DymoParams& params) {
  DymoState& st = dymo_state_of(ctx);
  ev::Event e(ev::etype("RM_OUT"));
  e.set_msg(rm::build_rreq(ctx.self(), st.bump_seq(), target,
                           params.rreq_hop_limit));
  ctx.emit(std::move(e));
}

void dymo_install_kernel_route(core::ProtocolContext& ctx, net::Addr dest,
                               net::Addr next_hop, std::uint8_t hops) {
  if (ctx.sys() == nullptr) return;
  net::RouteEntry entry;
  entry.dest = dest;
  entry.next_hop = next_hop;
  entry.metric = hops;
  entry.installed_at = ctx.now();
  ctx.sys()->kernel_table().set_route(entry);
}

void dymo_remove_kernel_route(core::ProtocolContext& ctx, net::Addr dest) {
  if (ctx.sys() == nullptr) return;
  ctx.sys()->kernel_table().remove_route(dest);
}

// ------------------------------------------------------------------ RM codec

namespace rm {

pbb::Message build_rreq(net::Addr self, std::uint16_t own_seq, net::Addr target,
                        std::uint8_t hop_limit) {
  pbb::Message m;
  m.type = wire::kMsgDymoRm;
  m.originator = self;
  m.seqnum = own_seq;
  m.has_hops = true;
  m.hop_limit = hop_limit;
  m.hop_count = 0;
  m.tlvs.push_back(
      pbb::Tlv::u8(wire::kTlvRmKind, static_cast<std::uint8_t>(Kind::kRreq)));
  pbb::AddressBlock target_block;
  target_block.addrs.push_back(target);
  m.addr_blocks.push_back(std::move(target_block));
  m.addr_blocks.emplace_back();  // path-accumulation block
  return m;
}

pbb::Message build_rrep(net::Addr self, std::uint16_t own_seq,
                        net::Addr rreq_origin, std::uint8_t hop_limit) {
  pbb::Message m;
  m.type = wire::kMsgDymoRm;
  m.originator = self;
  m.seqnum = own_seq;
  m.has_hops = true;
  m.hop_limit = hop_limit;
  m.hop_count = 0;
  m.tlvs.push_back(
      pbb::Tlv::u8(wire::kTlvRmKind, static_cast<std::uint8_t>(Kind::kRrep)));
  pbb::AddressBlock target_block;
  target_block.addrs.push_back(rreq_origin);
  m.addr_blocks.push_back(std::move(target_block));
  m.addr_blocks.emplace_back();
  return m;
}

void append_self(pbb::Message& msg, net::Addr self, std::uint16_t seq) {
  MK_ASSERT(msg.addr_blocks.size() >= 2, "RM lacks accumulation block");
  pbb::AddressBlock& path = msg.addr_blocks[1];
  auto idx = static_cast<std::uint8_t>(path.addrs.size());
  path.addrs.push_back(self);
  path.tlvs.push_back(pbb::AddressTlv{
      wire::kAtlvSeqnum, idx, idx,
      {0, 0,  // u32 encoding of a 16-bit sequence number
       static_cast<std::uint8_t>(seq >> 8), static_cast<std::uint8_t>(seq)}});
  path.tlvs.push_back(
      pbb::AddressTlv{wire::kAtlvHops, idx, idx, {msg.hop_count}});
}

Kind kind(const pbb::Message& msg) {
  const auto* t = msg.find_tlv(wire::kTlvRmKind);
  return (t != nullptr && t->as_u8() == 1) ? Kind::kRrep : Kind::kRreq;
}

net::Addr target(const pbb::Message& msg) {
  if (msg.addr_blocks.empty() || msg.addr_blocks[0].addrs.empty()) {
    return net::kNoAddr;
  }
  return msg.addr_blocks[0].addrs[0];
}

pbb::Message build_rerr(
    net::Addr self, std::uint16_t seq,
    const std::vector<std::pair<net::Addr, std::uint16_t>>& unreachable,
    std::uint8_t hop_limit) {
  pbb::Message m;
  m.type = wire::kMsgDymoRerr;
  m.originator = self;
  m.seqnum = seq;
  m.has_hops = true;
  m.hop_limit = hop_limit;
  m.hop_count = 0;
  pbb::AddressBlock block;
  for (const auto& [dest, dseq] : unreachable) {
    block.add_with_u32(dest, wire::kAtlvSeqnum, dseq);
  }
  m.addr_blocks.push_back(std::move(block));
  return m;
}

}  // namespace rm

// ------------------------------------------------------------------ ReHandler

ReHandler::ReHandler(DymoParams params)
    : ReHandler("dymo.ReHandler", params) {}

ReHandler::ReHandler(std::string type_name, DymoParams params)
    : core::EventHandler(std::move(type_name), {"RM_IN"}), params_(params) {
  set_instance_name("ReHandler");
}

core::SoftExpiry* ReHandler::soft(core::ProtocolContext& ctx) {
  if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
  return soft_;
}

void ReHandler::learn(const ev::Event& event, core::ProtocolContext& ctx) {
  const pbb::Message& msg = *event.msg();
  DymoState& st = dymo_state_of(ctx);
  TimePoint now = ctx.now();

  auto accept = [&](net::Addr dest, std::uint16_t seq, std::uint8_t hops) {
    if (dest == ctx.self()) return;
    if (st.update_route(dest, seq, event.from, hops, now,
                        params_.route_lifetime)) {
      dymo_install_kernel_route(ctx, dest, event.from, hops);
      st.finish_pending(dest);
      if (auto* s = soft(ctx)) s->drop(dymo_sets::kPending, dest);
      dymo_emit_route_found(ctx, dest);
    }
    // Track the route's deadline even when the update was a same-info
    // refresh (update_route extends the lifetime without reporting change).
    if (auto r = st.route_to(dest)) {
      if (auto* s = soft(ctx)) {
        s->touch_at(dymo_sets::kRoute, dest, r->expires);
      }
    }
  };

  // Route to the message originator via the previous hop.
  accept(*msg.originator, *msg.seqnum,
         static_cast<std::uint8_t>(msg.hop_count + 1));

  // Routes to every node on the accumulated path.
  if (msg.addr_blocks.size() >= 2) {
    const pbb::AddressBlock& path = msg.addr_blocks[1];
    for (std::size_t i = 0; i < path.addrs.size(); ++i) {
      const auto* seq_tlv = path.tlv_for(i, wire::kAtlvSeqnum);
      const auto* hops_tlv = path.tlv_for(i, wire::kAtlvHops);
      if (seq_tlv == nullptr || hops_tlv == nullptr) continue;
      auto node_hops = hops_tlv->as_u8();
      if (node_hops > msg.hop_count) continue;  // malformed
      auto dist =
          static_cast<std::uint8_t>(msg.hop_count + 1 - node_hops);
      auto seq = static_cast<std::uint16_t>(seq_tlv->as_u32());
      accept(path.addrs[i], seq, dist);
    }
  }
}

void ReHandler::send_rrep(const ev::Event& rreq_event,
                          core::ProtocolContext& ctx, bool bump_seq) {
  const pbb::Message& rreq = *rreq_event.msg();
  DymoState& st = dymo_state_of(ctx);
  ev::Event out(ev::etype("RM_OUT"));
  out.set_msg(rm::build_rrep(ctx.self(),
                             bump_seq ? st.bump_seq() : st.own_seq(),
                             *rreq.originator, params_.rreq_hop_limit));
  // Unicast back along the (just learned) reverse route.
  out.set_int(kUnicastTo, rreq_event.from);
  if (rrep_sent_ == nullptr) {
    rrep_sent_ = &ctx.metrics().counter("dymo.rrep_sent");
  }
  rrep_sent_->inc();
  ctx.emit(std::move(out));
}

void ReHandler::on_duplicate_rreq_at_target(const ev::Event&,
                                            core::ProtocolContext&) {}
void ReHandler::on_duplicate_rreq(const ev::Event&, core::ProtocolContext&) {}

bool ReHandler::should_relay_rreq(const ev::Event&, core::ProtocolContext&) {
  return true;
}

void ReHandler::on_rrep_at_origin(const ev::Event& event,
                                  core::ProtocolContext& ctx) {
  net::Addr dest = *event.msg()->originator;
  dymo_state_of(ctx).finish_pending(dest);
  if (auto* s = soft(ctx)) s->drop(dymo_sets::kPending, dest);
}

void ReHandler::handle(const ev::Event& event, core::ProtocolContext& ctx) {
  if (rm_in_ == nullptr) rm_in_ = &ctx.metrics().counter("dymo.rm_in");
  rm_in_->inc();
  if (!event.has_msg()) return;
  const pbb::Message& msg = *event.msg();
  if (!msg.originator || !msg.seqnum || !msg.has_hops) return;
  if (*msg.originator == ctx.self()) return;

  learn(event, ctx);

  DymoState& st = dymo_state_of(ctx);
  net::Addr target = rm::target(msg);
  if (target == net::kNoAddr) return;

  if (rm::kind(msg) == rm::Kind::kRreq) {
    bool dup = st.check_duplicate(*msg.originator, *msg.seqnum, ctx.now());
    if (auto* s = soft(ctx)) {
      s->touch(dymo_sets::kDuplicate, dymo_dup_key(*msg.originator, *msg.seqnum));
    }
    if (target == ctx.self()) {
      if (dup) {
        on_duplicate_rreq_at_target(event, ctx);
      } else {
        send_rrep(event, ctx);
      }
      return;
    }
    if (dup) {
      on_duplicate_rreq(event, ctx);
      return;
    }
    if (msg.hop_limit <= 1) return;
    if (!should_relay_rreq(event, ctx)) return;
    // Path accumulation + rebroadcast.
    ev::Event out(ev::etype("RM_OUT"));
    pbb::Message& fwd = out.set_msg(msg);
    fwd.hop_limit -= 1;
    fwd.hop_count += 1;
    rm::append_self(fwd, ctx.self(), st.own_seq());
    ctx.emit(std::move(out));
    return;
  }

  // RREP
  if (target == ctx.self()) {
    on_rrep_at_origin(event, ctx);
    return;
  }
  auto route = st.route_to(target);
  if (!route || !route->valid || route->active() == nullptr) {
    MK_TRACE("dymo", "cannot forward RREP toward ",
             pbb::addr_to_string(target));
    return;
  }
  if (msg.hop_limit <= 1) return;
  ev::Event out(ev::etype("RM_OUT"));
  pbb::Message& fwd = out.set_msg(msg);
  fwd.hop_limit -= 1;
  fwd.hop_count += 1;
  rm::append_self(fwd, ctx.self(), st.own_seq());
  out.set_int(kUnicastTo, route->active()->next_hop);
  ctx.emit(std::move(out));
}

// --------------------------------------------------- RouteInvalidationHandler

RouteInvalidationHandler::RouteInvalidationHandler(DymoParams params)
    : RouteInvalidationHandler("dymo.RouteInvalidationHandler", params) {}

RouteInvalidationHandler::RouteInvalidationHandler(std::string type_name,
                                                   DymoParams params)
    : core::EventHandler(std::move(type_name),
                         {ev::types::SEND_ROUTE_ERR, ev::types::NHOOD_CHANGE}),
      params_(params) {
  set_instance_name("RouteErrHandler");
}

std::vector<std::pair<net::Addr, std::uint16_t>>
RouteInvalidationHandler::fail_via(net::Addr hop, core::ProtocolContext& ctx) {
  DymoState& st = dymo_state_of(ctx);
  auto unreachable = st.invalidate_via(hop);
  for (const auto& [dest, _] : unreachable) {
    dymo_remove_kernel_route(ctx, dest);
  }
  return unreachable;
}

void RouteInvalidationHandler::broadcast_rerr(
    const std::vector<std::pair<net::Addr, std::uint16_t>>& unreachable,
    core::ProtocolContext& ctx) {
  if (unreachable.empty()) return;
  ev::Event e(ev::etype("RERR_OUT"));
  e.set_msg(rm::build_rerr(ctx.self(), rerr_seq_++, unreachable,
                           params_.rerr_hop_limit));
  ctx.metrics().counter("dymo.rerr_out").inc();
  ctx.emit(std::move(e));
}

void RouteInvalidationHandler::handle(const ev::Event& event,
                                      core::ProtocolContext& ctx) {
  net::Addr hop = net::kNoAddr;
  if (event.type() == ev::etype(ev::types::SEND_ROUTE_ERR)) {
    hop = static_cast<net::Addr>(event.get_int(kNextHop));
  } else {  // NHOOD_CHANGE
    if (event.get_int(kUp, 1) != 0) return;  // only link breaks matter
    hop = static_cast<net::Addr>(event.get_int(kNeighbor));
  }
  if (hop == net::kNoAddr) return;
  broadcast_rerr(fail_via(hop, ctx), ctx);
}

// ----------------------------------------------------------- other handlers

NoRouteHandler::NoRouteHandler(DymoParams params)
    : NoRouteHandler("dymo.NoRouteHandler", params) {}

NoRouteHandler::NoRouteHandler(std::string type_name, DymoParams params)
    : core::EventHandler(std::move(type_name), {ev::types::NO_ROUTE}),
      params_(params) {
  set_instance_name("NoRouteHandler");
}

bool NoRouteHandler::try_local_knowledge(net::Addr, core::ProtocolContext&) {
  return false;  // plain DYMO has no proactive knowledge
}

void NoRouteHandler::handle(const ev::Event& event,
                            core::ProtocolContext& ctx) {
  auto dest = static_cast<net::Addr>(event.get_int(kDest));
  if (dest == net::kNoAddr) return;
  DymoState& st = dymo_state_of(ctx);
  auto route = st.route_to(dest);
  if (route && route->valid) {
    // Route already known (e.g. learned since the packet was buffered).
    dymo_emit_route_found(ctx, dest);
    return;
  }
  if (try_local_knowledge(dest, ctx)) return;
  if (st.has_pending(dest)) return;  // discovery already in flight
  st.start_pending(dest, ctx.now(), params_.rreq_wait);
  if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
  if (soft_ != nullptr) {
    soft_->touch_at(dymo_sets::kPending, dest, ctx.now() + params_.rreq_wait);
  }
  ctx.metrics().counter("dymo.discoveries").inc();
  dymo_send_rreq(ctx, dest, params_);
}

RouteUpdateHandler::RouteUpdateHandler(DymoParams params)
    : core::EventHandler("dymo.RouteUpdateHandler", {ev::types::ROUTE_UPDATE}),
      params_(params) {
  set_instance_name("RouteUpdateHandler");
}

void RouteUpdateHandler::handle(const ev::Event& event,
                                core::ProtocolContext& ctx) {
  auto dest = static_cast<net::Addr>(event.get_int(kDest));
  DymoState& st = dymo_state_of(ctx);
  st.extend_lifetime(dest, ctx.now(), params_.route_lifetime);
  if (auto r = st.route_to(dest)) {
    if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
    if (soft_ != nullptr) soft_->touch_at(dymo_sets::kRoute, dest, r->expires);
  }
}

RerrHandler::RerrHandler(DymoParams params)
    : core::EventHandler("dymo.RerrHandler", {"RERR_IN"}), params_(params) {
  set_instance_name("RerrHandler");
}

void RerrHandler::handle(const ev::Event& event, core::ProtocolContext& ctx) {
  ctx.metrics().counter("dymo.rerr_in").inc();
  if (!event.has_msg() || !event.msg()->originator || !event.msg()->seqnum) {
    return;
  }
  const pbb::Message& msg = *event.msg();
  DymoState& st = dymo_state_of(ctx);
  bool dup = st.check_duplicate(*msg.originator, *msg.seqnum, ctx.now());
  if (soft_ == nullptr) soft_ = core::soft_expiry_of(ctx);
  if (soft_ != nullptr) {
    soft_->touch(dymo_sets::kDuplicate,
                 dymo_dup_key(*msg.originator, *msg.seqnum));
  }
  if (dup) return;

  std::vector<std::pair<net::Addr, std::uint16_t>> still_unreachable;
  for (const auto& block : msg.addr_blocks) {
    for (std::size_t i = 0; i < block.addrs.size(); ++i) {
      net::Addr dest = block.addrs[i];
      auto route = st.route_to(dest);
      if (!route || !route->valid || route->active() == nullptr) continue;
      if (route->active()->next_hop != event.from) continue;
      if (auto seq = st.invalidate(dest)) {
        dymo_remove_kernel_route(ctx, dest);
        still_unreachable.emplace_back(dest, *seq);
      }
    }
  }
  if (!still_unreachable.empty() && msg.has_hops && msg.hop_limit > 1) {
    ev::Event out(ev::etype("RERR_OUT"));
    out.set_msg(rm::build_rerr(ctx.self(), *msg.seqnum, still_unreachable,
                               static_cast<std::uint8_t>(msg.hop_limit - 1)));
    ctx.emit(std::move(out));
  }
}

// -------------------------------------------------------------------- builder

std::unique_ptr<core::ManetProtocolCf> build_dymo_cf(core::Manetkit& kit,
                                                     DymoParams params) {
  kit.deploy("neighbor");
  kit.system().ensure_netlink();
  kit.system().register_message(wire::kMsgDymoRm, "RM");
  kit.system().register_message(wire::kMsgDymoRerr, "RERR");

  auto cf = std::make_unique<core::ManetProtocolCf>(
      kit.kernel(), "dymo", kit.scheduler(), kit.self(),
      &kit.system().sys_state());

  cf->set_state(std::make_unique<DymoState>());

  // Routes, pending discoveries (RREQ retry backoff) and the RM duplicate
  // set all live in the shared soft-state layer (set ids fixed by
  // definition order — see dymo_sets): each entry's deadline is armed
  // per-entry, so a route lapses — and its kernel entry goes — at its exact
  // lifetime, and RREQ retries fire at their exact backoff deadline.
  auto soft = std::make_unique<core::SoftExpiry>();
  core::ManetProtocolCf* raw = cf.get();
  soft->define_set(
      "dymo.route", params.route_lifetime,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        auto dest = static_cast<net::Addr>(key);
        if (dymo_state_of(ctx).drop_route(dest)) {
          dymo_remove_kernel_route(ctx, dest);
        }
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (DymoState* st = dymo_state(*raw)) {
          for (const auto& [dest, _] : st->all_routes()) keys.push_back(dest);
        }
        return keys;
      });
  soft->define_set(
      "dymo.pending", params.rreq_wait,
      [params](std::uint64_t key, core::ProtocolContext& ctx) {
        DymoState& st = dymo_state_of(ctx);
        auto dest = static_cast<net::Addr>(key);
        bool had = st.has_pending(dest);
        if (auto next = st.retry_pending(dest, ctx.now())) {
          dymo_send_rreq(ctx, dest, params);
          if (auto* s = core::soft_expiry_of(ctx)) {
            s->touch_at(dymo_sets::kPending, dest, *next);
          }
        } else if (had) {
          MK_DEBUG("dymo", "discovery for ", pbb::addr_to_string(dest),
                   " gave up after ", int{DymoState::kMaxTries}, " tries");
        }
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (DymoState* st = dymo_state(*raw)) {
          for (net::Addr dest : st->pending_dests()) keys.push_back(dest);
        }
        return keys;
      });
  soft->define_set(
      "dymo.duplicate", params.duplicate_hold,
      [](std::uint64_t key, core::ProtocolContext& ctx) {
        dymo_state_of(ctx).drop_duplicate(
            static_cast<net::Addr>(key >> 16),
            static_cast<std::uint16_t>(key & 0xFFFF));
      },
      [raw]() {
        std::vector<std::uint64_t> keys;
        if (DymoState* st = dymo_state(*raw)) {
          for (const auto& [origin, seq] : st->duplicate_entries()) {
            keys.push_back(dymo_dup_key(origin, seq));
          }
        }
        return keys;
      });
  cf->add_source(std::move(soft));

  cf->add_handler(std::make_unique<ReHandler>(params));
  cf->add_handler(std::make_unique<NoRouteHandler>(params));
  cf->add_handler(std::make_unique<RouteUpdateHandler>(params));
  cf->add_handler(std::make_unique<RouteInvalidationHandler>(params));
  cf->add_handler(std::make_unique<RerrHandler>(params));

  cf->declare_events(
      /*required=*/{"RM_IN", "RERR_IN", ev::types::NO_ROUTE,
                    ev::types::ROUTE_UPDATE, ev::types::SEND_ROUTE_ERR,
                    ev::types::NHOOD_CHANGE},
      /*provided=*/{"RM_OUT", "RERR_OUT", ev::types::ROUTE_FOUND},
      /*exclusive=*/{ev::types::NO_ROUTE});
  return cf;
}

void register_dymo(core::Manetkit& kit, DymoParams params) {
  if (!kit.has_builder("neighbor")) register_neighbor(kit);
  kit.register_protocol(
      "dymo", /*layer=*/20,
      [params](core::Manetkit& k) { return build_dymo_cf(k, params); },
      /*category=*/"reactive");
}

DymoState* dymo_state(core::ManetProtocolCf& cf) {
  return dynamic_cast<DymoState*>(cf.state_component());
}

void dymo_discover(core::ManetProtocolCf& cf, net::Addr target,
                   DymoParams params) {
  auto lock = cf.quiesce();
  auto& ctx = cf.context();
  DymoState& st = dymo_state_of(ctx);
  if (st.has_pending(target)) return;
  st.start_pending(target, ctx.now(), params.rreq_wait);
  if (auto* soft = core::soft_expiry_of(ctx)) {
    soft->touch_at(dymo_sets::kPending, target, ctx.now() + params.rreq_wait);
  }
  dymo_send_rreq(ctx, target, params);
}

}  // namespace mk::proto
