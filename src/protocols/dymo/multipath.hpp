// Multipath DYMO variant (§5.2) [Galvez & Ruiz 2007 flavour]: computes
// multiple link-disjoint paths within a single route-discovery attempt,
// trading a little discovery latency for far fewer repeat floods.
//
// Enactment (the paper's recipe — three component replacements):
//  * the S component is replaced with one holding a path *list* per route
//    (state carried over);
//  * the RE handler is replaced: duplicate RREQs/RREPs are no longer
//    systematically discarded but mined for alternative disjoint paths
//    (atomic handler execution makes this safe);
//  * the route-error handler is replaced: on failure it fails over to an
//    alternate path when one exists, and only otherwise sends a RERR.
#pragma once

#include "core/manetkit.hpp"
#include "protocols/dymo/dymo_cf.hpp"

namespace mk::proto {

void apply_multipath_dymo(core::Manetkit& kit, DymoParams params = {});
void remove_multipath_dymo(core::Manetkit& kit, DymoParams params = {});
bool is_multipath_dymo(core::Manetkit& kit);

}  // namespace mk::proto
