// The DYMO CF (§5.2, Fig. 6): a reactive (on-demand) routing protocol built
// on the Neighbour Detection CF and the System CF's NetLink component.
//
// Event tuple:
//   required = {RM_IN, RERR_IN, NO_ROUTE, ROUTE_UPDATE, SEND_ROUTE_ERR,
//               NHOOD_CHANGE}   (NO_ROUTE exclusively)
//   provided = {RM_OUT, RERR_OUT, ROUTE_FOUND}
//
// Route discovery is driven by NO_ROUTE events from NetLink (a packet had no
// route and was buffered); ROUTE_UPDATE extends lifetimes on data-plane use;
// SEND_ROUTE_ERR / NHOOD_CHANGE trigger invalidation + RERR. On successful
// discovery DYMO emits ROUTE_FOUND, making NetLink re-inject the buffered
// packets.
//
// The RE (routing element) handler and the invalidation handler are exported
// so the multipath variant can subclass/replace them (§5.2).
#pragma once

#include <memory>

#include "core/manet_protocol.hpp"
#include "core/manetkit.hpp"
#include "core/soft_state.hpp"
#include "protocols/dymo/dymo_state.hpp"
#include "protocols/wire.hpp"

namespace mk::proto {

struct DymoParams {
  Duration route_lifetime = sec(5);
  Duration rreq_wait = sec(1);        // initial retry backoff
  Duration duplicate_hold = sec(5);
  std::uint8_t rreq_hop_limit = 10;
  std::uint8_t rerr_hop_limit = 3;
};

/// Soft-state set ids of the DYMO CF (and its ZRP/multipath/gossip
/// derivatives), fixed by definition order in build_dymo_cf.
namespace dymo_sets {
inline constexpr core::ISoftExpiry::SetId kRoute = 0;
inline constexpr core::ISoftExpiry::SetId kPending = 1;
inline constexpr core::ISoftExpiry::SetId kDuplicate = 2;
}  // namespace dymo_sets

/// Packs an RM duplicate-set tuple into a soft-state key.
inline std::uint64_t dymo_dup_key(net::Addr origin, std::uint16_t seq) {
  return (static_cast<std::uint64_t>(origin) << 16) | seq;
}

// -- RM / RERR codecs (shared with tests and the DYMOUM baseline parity) -------
namespace rm {

enum class Kind : std::uint8_t { kRreq = 0, kRrep = 1 };

pbb::Message build_rreq(net::Addr self, std::uint16_t own_seq, net::Addr target,
                        std::uint8_t hop_limit);
pbb::Message build_rrep(net::Addr self, std::uint16_t own_seq,
                        net::Addr rreq_origin, std::uint8_t hop_limit);

/// Appends `self` to the path-accumulation block; call *after* bumping
/// hop_count for this relay.
void append_self(pbb::Message& msg, net::Addr self, std::uint16_t seq);

Kind kind(const pbb::Message& msg);
net::Addr target(const pbb::Message& msg);

pbb::Message build_rerr(net::Addr self, std::uint16_t seq,
                        const std::vector<std::pair<net::Addr, std::uint16_t>>&
                            unreachable,
                        std::uint8_t hop_limit);

}  // namespace rm

/// Core DYMO routing-element logic (RREQ/RREP processing with path
/// accumulation). The multipath variant overrides the duplicate hooks.
class ReHandler : public core::EventHandler {
 public:
  explicit ReHandler(DymoParams params);

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override;

 protected:
  ReHandler(std::string type_name, DymoParams params);

  /// A duplicate RREQ arrived at the *target*; default: discard.
  virtual void on_duplicate_rreq_at_target(const ev::Event& event,
                                           core::ProtocolContext& ctx);
  /// A duplicate RREQ arrived at an *intermediate* node; default: discard.
  virtual void on_duplicate_rreq(const ev::Event& event,
                                 core::ProtocolContext& ctx);
  /// An RREP arrived at the RREQ originator (route established). Default:
  /// finish the pending discovery; the learning step already emitted
  /// ROUTE_FOUND.
  virtual void on_rrep_at_origin(const ev::Event& event,
                                 core::ProtocolContext& ctx);

  /// Gate on rebroadcasting a fresh RREQ. Default: always relay (blind
  /// flooding). The optimised-flooding variant relays only when the
  /// previous hop selected this node as a multipoint relay.
  virtual bool should_relay_rreq(const ev::Event& event,
                                 core::ProtocolContext& ctx);

  /// Learns routes from the message (originator + accumulated path) through
  /// the previous hop. Installs kernel routes, finishes pending discoveries
  /// and emits ROUTE_FOUND for each accepted destination.
  void learn(const ev::Event& event, core::ProtocolContext& ctx);

  /// Replies to an RREQ. `bump_seq` = false replays the current sequence
  /// number — used when answering *duplicate* RREQs so the originator sees
  /// the copies as equal-freshness alternatives rather than replacements.
  void send_rrep(const ev::Event& rreq_event, core::ProtocolContext& ctx,
                 bool bump_seq = true);

  /// The CF's shared soft-state layer (lazily resolved, may be null in
  /// stripped-down test compositions).
  core::SoftExpiry* soft(core::ProtocolContext& ctx);

  DymoParams params_;
  obs::Counter* rm_in_ = nullptr;      // cached "dymo.rm_in"
  obs::Counter* rrep_sent_ = nullptr;  // cached "dymo.rrep_sent"

 private:
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

/// Shared invalidation logic for SEND_ROUTE_ERR and NHOOD_CHANGE(down):
/// invalidates routes through the broken hop and broadcasts a RERR. The
/// multipath variant overrides fail_via() to switch to alternate paths
/// first.
class RouteInvalidationHandler : public core::EventHandler {
 public:
  explicit RouteInvalidationHandler(DymoParams params);

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override;

 protected:
  RouteInvalidationHandler(std::string type_name, DymoParams params);

  /// Invalidates paths through `hop`; returns the (dest, seq) pairs that
  /// became unreachable (to report in the RERR).
  virtual std::vector<std::pair<net::Addr, std::uint16_t>> fail_via(
      net::Addr hop, core::ProtocolContext& ctx);

  void broadcast_rerr(
      const std::vector<std::pair<net::Addr, std::uint16_t>>& unreachable,
      core::ProtocolContext& ctx);

  DymoParams params_;
  std::uint16_t rerr_seq_ = 1;
};

/// NO_ROUTE from NetLink: start (or join) a route discovery. The zone-hybrid
/// protocol overrides try_local_knowledge() to satisfy in-zone destinations
/// proactively, without flooding.
class NoRouteHandler : public core::EventHandler {
 public:
  explicit NoRouteHandler(DymoParams params);

  void handle(const ev::Event& event, core::ProtocolContext& ctx) override;

 protected:
  NoRouteHandler(std::string type_name, DymoParams params);

  /// Returns true if a route to `dest` was produced from local knowledge
  /// (and ROUTE_FOUND emitted); false to fall through to discovery.
  virtual bool try_local_knowledge(net::Addr dest, core::ProtocolContext& ctx);

  DymoParams params_;

 private:
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

/// ROUTE_UPDATE from NetLink: data-plane usage extends route lifetimes.
class RouteUpdateHandler final : public core::EventHandler {
 public:
  explicit RouteUpdateHandler(DymoParams params);
  void handle(const ev::Event& event, core::ProtocolContext& ctx) override;

 private:
  DymoParams params_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

/// RERR processing: invalidate matching routes and propagate.
class RerrHandler final : public core::EventHandler {
 public:
  explicit RerrHandler(DymoParams params);
  void handle(const ev::Event& event, core::ProtocolContext& ctx) override;

 private:
  DymoParams params_;
  core::SoftExpiry* soft_ = nullptr;  // cached per composition epoch
};

/// Kernel-table sync helpers used by all DYMO handlers.
void dymo_install_kernel_route(core::ProtocolContext& ctx, net::Addr dest,
                               net::Addr next_hop, std::uint8_t hops);
void dymo_remove_kernel_route(core::ProtocolContext& ctx, net::Addr dest);

/// Emission helpers shared with the zone-hybrid protocol.
void dymo_emit_route_found(core::ProtocolContext& ctx, net::Addr dest);
void dymo_send_rreq(core::ProtocolContext& ctx, net::Addr target,
                    const DymoParams& params);

std::unique_ptr<core::ManetProtocolCf> build_dymo_cf(core::Manetkit& kit,
                                                     DymoParams params = {});

/// Registers "dymo" (layer 20, category "reactive"); also registers
/// "neighbor" if absent.
void register_dymo(core::Manetkit& kit, DymoParams params = {});

DymoState* dymo_state(core::ManetProtocolCf& cf);

/// Initiates a route discovery directly (in addition to the NO_ROUTE-driven
/// path); used by tests and examples.
void dymo_discover(core::ManetProtocolCf& cf, net::Addr target,
                   DymoParams params = {});

}  // namespace mk::proto
