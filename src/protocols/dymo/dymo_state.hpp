// S element of the DYMO CF: the reactive routing table (with sequence
// numbers and lifetimes), the pending route-discovery (RREQ) table with
// binary exponential backoff, and the RREQ duplicate set.
//
// The route representation carries a *path list* so the multipath variant
// can replace the S component with one that accommodates multiple
// link-disjoint paths per destination (§5.2) while sharing this base.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ifaces.hpp"
#include "core/state_codec.hpp"
#include "net/address.hpp"
#include "opencom/component.hpp"
#include "util/time.hpp"

namespace mk::proto {

struct DymoPath {
  net::Addr next_hop = net::kNoAddr;
  std::uint8_t hops = 0;
};

struct DymoRoute {
  net::Addr dest = net::kNoAddr;
  std::uint16_t seqnum = 0;
  bool valid = true;
  TimePoint expires{};
  std::vector<DymoPath> paths;  // [0] is the active path

  const DymoPath* active() const { return paths.empty() ? nullptr : &paths[0]; }
};

struct IDymoState : oc::Interface {
  virtual std::optional<DymoRoute> route_to(net::Addr dest) const = 0;
  virtual std::size_t route_count() const = 0;
};

class DymoState : public oc::Component,
                  public core::IState,
                  public core::IStateCodec,
                  public IDymoState {
 public:
  DymoState();

  // -- routing table ------------------------------------------------------------
  /// Applies learned routing information. Accepted (returns true) if the
  /// destination is unknown, the seqnum is newer, or seqnum ties and the hop
  /// count improves (loop-freedom rule). Resets the path list to the single
  /// new path and refreshes the lifetime.
  bool update_route(net::Addr dest, std::uint16_t seq, net::Addr next_hop,
                    std::uint8_t hops, TimePoint now, Duration lifetime);

  /// Invalidates all valid routes whose *active* path uses `next_hop`;
  /// returns (dest, seq) pairs for the RERR.
  std::vector<std::pair<net::Addr, std::uint16_t>> invalidate_via(
      net::Addr next_hop);

  /// Invalidates one destination; returns its seq if a valid route existed.
  std::optional<std::uint16_t> invalidate(net::Addr dest);

  void extend_lifetime(net::Addr dest, TimePoint now, Duration lifetime);

  /// Drops expired routes; returns their destinations (for kernel cleanup).
  std::vector<net::Addr> expire(TimePoint now);

  /// Removes one route outright (soft-state expiry); returns true if it was
  /// present.
  bool drop_route(net::Addr dest) { return routes_.erase(dest) > 0; }

  std::optional<DymoRoute> route_to(net::Addr dest) const override;
  DymoRoute* mutable_route(net::Addr dest);
  std::size_t route_count() const override { return routes_.size(); }
  const std::map<net::Addr, DymoRoute>& all_routes() const { return routes_; }

  // -- sequence number --------------------------------------------------------------
  std::uint16_t own_seq() const { return own_seq_; }
  std::uint16_t bump_seq() { return ++own_seq_; }

  // -- pending discoveries --------------------------------------------------------------
  static constexpr std::uint8_t kMaxTries = 3;

  bool has_pending(net::Addr dest) const;
  void start_pending(net::Addr dest, TimePoint now, Duration wait);
  /// Destinations whose retry timer elapsed; bumps their try-counter and
  /// doubles the backoff. Entries past kMaxTries are dropped and reported in
  /// `gave_up`.
  std::vector<net::Addr> due_retries(TimePoint now,
                                     std::vector<net::Addr>& gave_up);
  /// Advances one pending discovery whose retry deadline lapsed: bumps the
  /// try-counter, doubles the backoff and returns the new retry deadline.
  /// Returns nullopt if the discovery is absent or just gave up (dropped).
  std::optional<TimePoint> retry_pending(net::Addr dest, TimePoint now);
  void finish_pending(net::Addr dest);
  /// Destinations with discoveries in flight (expiry re-seeding).
  std::vector<net::Addr> pending_dests() const;
  std::size_t pending_count() const { return pending_.size(); }

  // -- RREQ duplicate set ------------------------------------------------------------------
  bool check_duplicate(net::Addr origin, std::uint16_t seq, TimePoint now);
  void expire_duplicates(TimePoint now, Duration hold);
  /// Removes one tuple (soft-state expiry); returns true if it was present.
  bool drop_duplicate(net::Addr origin, std::uint16_t seq);
  /// All live tuples (expiry re-seeding).
  std::vector<std::pair<net::Addr, std::uint16_t>> duplicate_entries() const;

  std::string describe() const override;

  // -- IStateCodec (S-element replication, ISSUE 10) ----------------------------
  /// Route table (with path lists), own sequence number and the RREQ
  /// duplicate set. Pending discoveries are transient negotiation state —
  /// their retry timers died with the crashed node — and are not carried.
  void encode_state(std::vector<std::uint8_t>& out) const override;
  bool decode_state(std::span<const std::uint8_t> blob) override;
  void reset_state() override;

 protected:
  std::map<net::Addr, DymoRoute> routes_;

 private:
  struct Pending {
    std::uint8_t tries = 1;
    TimePoint next_retry{};
    Duration backoff{};
  };
  std::uint16_t own_seq_ = 1;
  std::map<net::Addr, Pending> pending_;
  std::map<std::pair<net::Addr, std::uint16_t>, TimePoint> duplicates_;
};

/// Multipath S component: same tables, plus alternate link-disjoint paths.
class MultipathDymoState final : public DymoState {
 public:
  MultipathDymoState() = default;

  /// State transfer from the standard S component (route table carried over).
  explicit MultipathDymoState(const DymoState& base);

  static constexpr std::size_t kMaxPaths = 3;

  /// Records an alternate path if its next hop is disjoint from every
  /// existing path's next hop. Returns true if added.
  bool add_alternate_path(net::Addr dest, net::Addr next_hop,
                          std::uint8_t hops);

  /// Drops the active path and promotes the next alternate; returns the new
  /// active path, or nullopt if none remain (route becomes invalid).
  std::optional<DymoPath> fail_over(net::Addr dest);

  std::size_t path_count(net::Addr dest) const;
};

}  // namespace mk::proto
