// Optimised-flooding DYMO variant (§5.2): route-discovery floods are relayed
// only by multipoint relays, curbing broadcast overhead in dense networks at
// the cost of the MPR CF's extra state.
//
// Per the paper, the Neighbour Detection CF is simply *replaced* by the MPR
// ManetProtocol instance (which also provides NHOOD_CHANGE); if an OLSR
// deployment already hosts an MPR CF, that instance is shared directly,
// giving a leaner co-deployment.
#pragma once

#include "core/manetkit.hpp"
#include "protocols/dymo/dymo_cf.hpp"

namespace mk::proto {

void apply_dymo_optimized_flooding(core::Manetkit& kit,
                                   DymoParams params = {});
void remove_dymo_optimized_flooding(core::Manetkit& kit,
                                    DymoParams params = {});
bool is_dymo_optimized_flooding(core::Manetkit& kit);

}  // namespace mk::proto
