#include "protocols/dymo/opt_flood.hpp"

#include "protocols/mpr/mpr_cf.hpp"
#include "util/assert.hpp"

namespace mk::proto {

namespace {

/// RE handler whose RREQ relaying decision is delegated to Multipoint
/// Relaying: only relay floods from neighbours that selected us as MPR.
class OptFloodReHandler final : public ReHandler {
 public:
  OptFloodReHandler(DymoParams params, core::ManetProtocolCf* mpr_cf)
      : ReHandler("dymo.OptFloodReHandler", params), mpr_cf_(mpr_cf) {}

 protected:
  bool should_relay_rreq(const ev::Event& event,
                         core::ProtocolContext&) override {
    MprState* st = mpr_state(*mpr_cf_);
    return st == nullptr || st->is_mpr_selector(event.from);
  }

 private:
  core::ManetProtocolCf* mpr_cf_;
};

}  // namespace

void apply_dymo_optimized_flooding(core::Manetkit& kit, DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "optimised flooding requires deployed dymo");
  if (is_dymo_optimized_flooding(kit)) return;

  if (!kit.has_builder("mpr")) register_mpr(kit);
  core::ManetProtocolCf* mpr = kit.deploy("mpr");  // shared if OLSR has one

  // MPR subsumes the Neighbour Detection CF's role (it also provides
  // NHOOD_CHANGE), so the latter is replaced by it.
  if (kit.is_deployed("neighbor") && !kit.is_deployed("aodv")) {
    kit.undeploy("neighbor");
  }

  dymo->replace_handler("ReHandler",
                        std::make_unique<OptFloodReHandler>(params, mpr));
}

void remove_dymo_optimized_flooding(core::Manetkit& kit, DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "dymo not deployed");
  if (!is_dymo_optimized_flooding(kit)) return;

  kit.deploy("neighbor");
  dymo->replace_handler("ReHandler", std::make_unique<ReHandler>(params));
  // The MPR CF stays if OLSR shares it; undeploy only when it would idle.
  if (!kit.is_deployed("olsr") && kit.is_deployed("mpr")) {
    kit.undeploy("mpr");
  }
}

bool is_dymo_optimized_flooding(core::Manetkit& kit) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  if (dymo == nullptr) return false;
  auto* h = dymo->control().find("ReHandler");
  return h != nullptr && h->type_name() == "dymo.OptFloodReHandler";
}

}  // namespace mk::proto
