#include "protocols/dymo/dymo_state.hpp"

#include <algorithm>
#include <sstream>

namespace mk::proto {

namespace {

bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

}  // namespace

DymoState::DymoState() : oc::Component("dymo.DymoState") {
  set_instance_name("State");
  provide("IDymoState", static_cast<IDymoState*>(this));
  provide("IState", static_cast<core::IState*>(this));
}

bool DymoState::update_route(net::Addr dest, std::uint16_t seq,
                             net::Addr next_hop, std::uint8_t hops,
                             TimePoint now, Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end()) {
    const DymoRoute& r = it->second;
    bool improves = seq_newer(seq, r.seqnum) ||
                    (seq == r.seqnum && !r.valid) ||
                    (seq == r.seqnum && r.active() != nullptr &&
                     hops < r.active()->hops);
    if (!improves) {
      // Same info; still refresh the lifetime if it matches the active path.
      if (seq == r.seqnum && r.valid && r.active() != nullptr &&
          r.active()->next_hop == next_hop) {
        it->second.expires = now + lifetime;
      }
      return false;
    }
  }
  DymoRoute r;
  r.dest = dest;
  r.seqnum = seq;
  r.valid = true;
  r.expires = now + lifetime;
  r.paths = {DymoPath{next_hop, hops}};
  routes_[dest] = std::move(r);
  return true;
}

std::vector<std::pair<net::Addr, std::uint16_t>> DymoState::invalidate_via(
    net::Addr next_hop) {
  std::vector<std::pair<net::Addr, std::uint16_t>> out;
  for (auto& [dest, r] : routes_) {
    if (r.valid && r.active() != nullptr && r.active()->next_hop == next_hop) {
      r.valid = false;
      out.emplace_back(dest, r.seqnum);
    }
  }
  return out;
}

std::optional<std::uint16_t> DymoState::invalidate(net::Addr dest) {
  auto it = routes_.find(dest);
  if (it == routes_.end() || !it->second.valid) return std::nullopt;
  it->second.valid = false;
  return it->second.seqnum;
}

void DymoState::extend_lifetime(net::Addr dest, TimePoint now,
                                Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end() && it->second.valid) {
    it->second.expires = now + lifetime;
  }
}

std::vector<net::Addr> DymoState::expire(TimePoint now) {
  std::vector<net::Addr> out;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.expires < now) {
      out.push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<DymoRoute> DymoState::route_to(net::Addr dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

DymoRoute* DymoState::mutable_route(net::Addr dest) {
  auto it = routes_.find(dest);
  return it == routes_.end() ? nullptr : &it->second;
}

bool DymoState::has_pending(net::Addr dest) const {
  return pending_.find(dest) != pending_.end();
}

void DymoState::start_pending(net::Addr dest, TimePoint now, Duration wait) {
  pending_[dest] = Pending{1, now + wait, wait};
}

std::vector<net::Addr> DymoState::due_retries(TimePoint now,
                                              std::vector<net::Addr>& gave_up) {
  std::vector<net::Addr> retry;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (p.next_retry > now) {
      ++it;
      continue;
    }
    if (p.tries >= kMaxTries) {
      gave_up.push_back(it->first);
      it = pending_.erase(it);
      continue;
    }
    ++p.tries;
    p.backoff = p.backoff * 2;  // binary exponential backoff
    p.next_retry = now + p.backoff;
    retry.push_back(it->first);
    ++it;
  }
  return retry;
}

std::optional<TimePoint> DymoState::retry_pending(net::Addr dest,
                                                  TimePoint now) {
  auto it = pending_.find(dest);
  if (it == pending_.end()) return std::nullopt;
  Pending& p = it->second;
  if (p.tries >= kMaxTries) {
    pending_.erase(it);
    return std::nullopt;
  }
  ++p.tries;
  p.backoff = p.backoff * 2;  // binary exponential backoff
  p.next_retry = now + p.backoff;
  return p.next_retry;
}

void DymoState::finish_pending(net::Addr dest) { pending_.erase(dest); }

std::vector<net::Addr> DymoState::pending_dests() const {
  std::vector<net::Addr> out;
  out.reserve(pending_.size());
  for (const auto& [dest, _] : pending_) out.push_back(dest);
  return out;
}

bool DymoState::check_duplicate(net::Addr origin, std::uint16_t seq,
                                TimePoint now) {
  auto key = std::make_pair(origin, seq);
  auto [it, inserted] = duplicates_.emplace(key, now);
  if (!inserted) {
    it->second = now;
    return true;
  }
  return false;
}

void DymoState::expire_duplicates(TimePoint now, Duration hold) {
  for (auto it = duplicates_.begin(); it != duplicates_.end();) {
    it = (now - it->second > hold) ? duplicates_.erase(it) : std::next(it);
  }
}

bool DymoState::drop_duplicate(net::Addr origin, std::uint16_t seq) {
  return duplicates_.erase(std::make_pair(origin, seq)) > 0;
}

std::vector<std::pair<net::Addr, std::uint16_t>> DymoState::duplicate_entries()
    const {
  std::vector<std::pair<net::Addr, std::uint16_t>> out;
  out.reserve(duplicates_.size());
  for (const auto& [key, _] : duplicates_) out.push_back(key);
  return out;
}

std::string DymoState::describe() const {
  std::ostringstream os;
  os << "dymo routes: " << routes_.size() << " pending: " << pending_.size()
     << " seq: " << own_seq_;
  return os.str();
}

MultipathDymoState::MultipathDymoState(const DymoState& base) {
  // State transfer: carry the route table (the other tables are transient).
  routes_ = base.all_routes();
}

bool MultipathDymoState::add_alternate_path(net::Addr dest, net::Addr next_hop,
                                            std::uint8_t hops) {
  DymoRoute* r = mutable_route(dest);
  if (r == nullptr || !r->valid) return false;
  if (r->paths.size() >= kMaxPaths) return false;
  for (const DymoPath& p : r->paths) {
    if (p.next_hop == next_hop) return false;  // not link-disjoint
  }
  r->paths.push_back(DymoPath{next_hop, hops});
  return true;
}

std::optional<DymoPath> MultipathDymoState::fail_over(net::Addr dest) {
  DymoRoute* r = mutable_route(dest);
  if (r == nullptr || r->paths.empty()) return std::nullopt;
  r->paths.erase(r->paths.begin());
  if (r->paths.empty()) {
    r->valid = false;
    return std::nullopt;
  }
  return r->paths.front();
}

std::size_t MultipathDymoState::path_count(net::Addr dest) const {
  auto r = route_to(dest);
  return r.has_value() ? r->paths.size() : 0;
}

}  // namespace mk::proto
