#include "protocols/dymo/dymo_state.hpp"

#include <algorithm>
#include <sstream>

namespace mk::proto {

namespace {

bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(a - b) > 0;
}

}  // namespace

DymoState::DymoState() : oc::Component("dymo.DymoState") {
  set_instance_name("State");
  provide("IDymoState", static_cast<IDymoState*>(this));
  provide("IState", static_cast<core::IState*>(this));
  provide("IStateCodec", static_cast<core::IStateCodec*>(this));
}

bool DymoState::update_route(net::Addr dest, std::uint16_t seq,
                             net::Addr next_hop, std::uint8_t hops,
                             TimePoint now, Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end()) {
    const DymoRoute& r = it->second;
    bool improves = seq_newer(seq, r.seqnum) ||
                    (seq == r.seqnum && !r.valid) ||
                    (seq == r.seqnum && r.active() != nullptr &&
                     hops < r.active()->hops);
    if (!improves) {
      // Same info; still refresh the lifetime if it matches the active path.
      if (seq == r.seqnum && r.valid && r.active() != nullptr &&
          r.active()->next_hop == next_hop) {
        it->second.expires = now + lifetime;
      }
      return false;
    }
  }
  DymoRoute r;
  r.dest = dest;
  r.seqnum = seq;
  r.valid = true;
  r.expires = now + lifetime;
  r.paths = {DymoPath{next_hop, hops}};
  routes_[dest] = std::move(r);
  return true;
}

std::vector<std::pair<net::Addr, std::uint16_t>> DymoState::invalidate_via(
    net::Addr next_hop) {
  std::vector<std::pair<net::Addr, std::uint16_t>> out;
  for (auto& [dest, r] : routes_) {
    if (r.valid && r.active() != nullptr && r.active()->next_hop == next_hop) {
      r.valid = false;
      out.emplace_back(dest, r.seqnum);
    }
  }
  return out;
}

std::optional<std::uint16_t> DymoState::invalidate(net::Addr dest) {
  auto it = routes_.find(dest);
  if (it == routes_.end() || !it->second.valid) return std::nullopt;
  it->second.valid = false;
  return it->second.seqnum;
}

void DymoState::extend_lifetime(net::Addr dest, TimePoint now,
                                Duration lifetime) {
  auto it = routes_.find(dest);
  if (it != routes_.end() && it->second.valid) {
    it->second.expires = now + lifetime;
  }
}

std::vector<net::Addr> DymoState::expire(TimePoint now) {
  std::vector<net::Addr> out;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.expires < now) {
      out.push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<DymoRoute> DymoState::route_to(net::Addr dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

DymoRoute* DymoState::mutable_route(net::Addr dest) {
  auto it = routes_.find(dest);
  return it == routes_.end() ? nullptr : &it->second;
}

bool DymoState::has_pending(net::Addr dest) const {
  return pending_.find(dest) != pending_.end();
}

void DymoState::start_pending(net::Addr dest, TimePoint now, Duration wait) {
  pending_[dest] = Pending{1, now + wait, wait};
}

std::vector<net::Addr> DymoState::due_retries(TimePoint now,
                                              std::vector<net::Addr>& gave_up) {
  std::vector<net::Addr> retry;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (p.next_retry > now) {
      ++it;
      continue;
    }
    if (p.tries >= kMaxTries) {
      gave_up.push_back(it->first);
      it = pending_.erase(it);
      continue;
    }
    ++p.tries;
    p.backoff = p.backoff * 2;  // binary exponential backoff
    p.next_retry = now + p.backoff;
    retry.push_back(it->first);
    ++it;
  }
  return retry;
}

std::optional<TimePoint> DymoState::retry_pending(net::Addr dest,
                                                  TimePoint now) {
  auto it = pending_.find(dest);
  if (it == pending_.end()) return std::nullopt;
  Pending& p = it->second;
  if (p.tries >= kMaxTries) {
    pending_.erase(it);
    return std::nullopt;
  }
  ++p.tries;
  p.backoff = p.backoff * 2;  // binary exponential backoff
  p.next_retry = now + p.backoff;
  return p.next_retry;
}

void DymoState::finish_pending(net::Addr dest) { pending_.erase(dest); }

std::vector<net::Addr> DymoState::pending_dests() const {
  std::vector<net::Addr> out;
  out.reserve(pending_.size());
  for (const auto& [dest, _] : pending_) out.push_back(dest);
  return out;
}

bool DymoState::check_duplicate(net::Addr origin, std::uint16_t seq,
                                TimePoint now) {
  auto key = std::make_pair(origin, seq);
  auto [it, inserted] = duplicates_.emplace(key, now);
  if (!inserted) {
    it->second = now;
    return true;
  }
  return false;
}

void DymoState::expire_duplicates(TimePoint now, Duration hold) {
  for (auto it = duplicates_.begin(); it != duplicates_.end();) {
    it = (now - it->second > hold) ? duplicates_.erase(it) : std::next(it);
  }
}

bool DymoState::drop_duplicate(net::Addr origin, std::uint16_t seq) {
  return duplicates_.erase(std::make_pair(origin, seq)) > 0;
}

std::vector<std::pair<net::Addr, std::uint16_t>> DymoState::duplicate_entries()
    const {
  std::vector<std::pair<net::Addr, std::uint16_t>> out;
  out.reserve(duplicates_.size());
  for (const auto& [key, _] : duplicates_) out.push_back(key);
  return out;
}

// Codec layout (version 1, big-endian):
//   u8 version | u16 own_seq
//   u16 n_routes | per route: u32 dest | u16 seqnum | u8 valid | i64 expires_us
//                            | u8 n_paths | per path: u32 next_hop | u8 hops
//   u16 n_duplicates | per tuple: u32 origin | u16 seq | i64 seen_us
namespace {
constexpr std::uint8_t kDymoCodecVersion = 1;
}

void DymoState::encode_state(std::vector<std::uint8_t>& out) const {
  namespace cc = core::codec;
  cc::put_u8(out, kDymoCodecVersion);
  cc::put_u16(out, own_seq_);
  cc::put_u16(out, static_cast<std::uint16_t>(routes_.size()));
  for (const auto& [dest, r] : routes_) {
    cc::put_u32(out, dest);
    cc::put_u16(out, r.seqnum);
    cc::put_u8(out, r.valid ? 1 : 0);
    cc::put_i64(out, r.expires.us);
    cc::put_u8(out, static_cast<std::uint8_t>(r.paths.size()));
    for (const DymoPath& p : r.paths) {
      cc::put_u32(out, p.next_hop);
      cc::put_u8(out, p.hops);
    }
  }
  cc::put_u16(out, static_cast<std::uint16_t>(duplicates_.size()));
  for (const auto& [key, seen] : duplicates_) {
    cc::put_u32(out, key.first);
    cc::put_u16(out, key.second);
    cc::put_i64(out, seen.us);
  }
}

bool DymoState::decode_state(std::span<const std::uint8_t> blob) {
  namespace cc = core::codec;
  std::size_t off = 0;
  std::uint8_t version = 0;
  if (!cc::get_u8(blob, off, version) || version != kDymoCodecVersion) {
    return false;
  }
  reset_state();
  if (!cc::get_u16(blob, off, own_seq_)) return false;
  std::uint16_t n_routes = 0;
  if (!cc::get_u16(blob, off, n_routes)) return false;
  for (std::uint16_t i = 0; i < n_routes; ++i) {
    DymoRoute r;
    std::uint32_t dest = 0;
    std::uint8_t valid = 0, n_paths = 0;
    std::int64_t expires_us = 0;
    if (!cc::get_u32(blob, off, dest) || !cc::get_u16(blob, off, r.seqnum) ||
        !cc::get_u8(blob, off, valid) || !cc::get_i64(blob, off, expires_us) ||
        !cc::get_u8(blob, off, n_paths)) {
      return false;
    }
    r.dest = dest;
    r.valid = valid != 0;
    r.expires = TimePoint{expires_us};
    for (std::uint8_t j = 0; j < n_paths; ++j) {
      DymoPath p;
      std::uint32_t nh = 0;
      if (!cc::get_u32(blob, off, nh) || !cc::get_u8(blob, off, p.hops)) {
        return false;
      }
      p.next_hop = nh;
      r.paths.push_back(p);
    }
    routes_[dest] = std::move(r);
  }
  std::uint16_t n_dups = 0;
  if (!cc::get_u16(blob, off, n_dups)) return false;
  for (std::uint16_t i = 0; i < n_dups; ++i) {
    std::uint32_t origin = 0;
    std::uint16_t seq = 0;
    std::int64_t seen_us = 0;
    if (!cc::get_u32(blob, off, origin) || !cc::get_u16(blob, off, seq) ||
        !cc::get_i64(blob, off, seen_us)) {
      return false;
    }
    duplicates_[std::make_pair(net::Addr{origin}, seq)] = TimePoint{seen_us};
  }
  return off == blob.size();
}

void DymoState::reset_state() {
  routes_.clear();
  own_seq_ = 1;
  pending_.clear();
  duplicates_.clear();
}

std::string DymoState::describe() const {
  std::ostringstream os;
  os << "dymo routes: " << routes_.size() << " pending: " << pending_.size()
     << " seq: " << own_seq_;
  return os.str();
}

MultipathDymoState::MultipathDymoState(const DymoState& base) {
  // State transfer: carry the route table (the other tables are transient).
  routes_ = base.all_routes();
}

bool MultipathDymoState::add_alternate_path(net::Addr dest, net::Addr next_hop,
                                            std::uint8_t hops) {
  DymoRoute* r = mutable_route(dest);
  if (r == nullptr || !r->valid) return false;
  if (r->paths.size() >= kMaxPaths) return false;
  for (const DymoPath& p : r->paths) {
    if (p.next_hop == next_hop) return false;  // not link-disjoint
  }
  r->paths.push_back(DymoPath{next_hop, hops});
  return true;
}

std::optional<DymoPath> MultipathDymoState::fail_over(net::Addr dest) {
  DymoRoute* r = mutable_route(dest);
  if (r == nullptr || r->paths.empty()) return std::nullopt;
  r->paths.erase(r->paths.begin());
  if (r->paths.empty()) {
    r->valid = false;
    return std::nullopt;
  }
  return r->paths.front();
}

std::size_t MultipathDymoState::path_count(net::Addr dest) const {
  auto r = route_to(dest);
  return r.has_value() ? r->paths.size() : 0;
}

}  // namespace mk::proto
