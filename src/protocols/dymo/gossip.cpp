#include "protocols/dymo/gossip.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mk::proto {

namespace {

class GossipReHandler final : public ReHandler {
 public:
  GossipReHandler(DymoParams params, GossipParams gossip)
      : ReHandler("dymo.GossipReHandler", params),
        gossip_(gossip),
        rng_(gossip.seed) {}

 protected:
  bool should_relay_rreq(const ev::Event& event,
                         core::ProtocolContext&) override {
    // GOSSIP1(p,k): deterministic relaying close to the origin keeps the
    // flood alive through its thin initial phase.
    if (event.msg()->hop_count < gossip_.sure_hops) return true;
    return rng_.bernoulli(gossip_.relay_probability);
  }

 private:
  GossipParams gossip_;
  Rng rng_;
};

}  // namespace

void apply_dymo_gossip_flooding(core::Manetkit& kit, GossipParams gossip,
                                DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "gossip flooding requires deployed dymo");
  MK_ENSURE(gossip.relay_probability > 0.0 && gossip.relay_probability <= 1.0,
            "relay probability must be in (0, 1]");
  if (is_dymo_gossip_flooding(kit)) return;
  // Per-node seed decorrelates relay decisions across the network.
  gossip.seed += kit.self();
  dymo->replace_handler("ReHandler",
                        std::make_unique<GossipReHandler>(params, gossip));
}

void remove_dymo_gossip_flooding(core::Manetkit& kit, DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "dymo not deployed");
  if (!is_dymo_gossip_flooding(kit)) return;
  dymo->replace_handler("ReHandler", std::make_unique<ReHandler>(params));
}

bool is_dymo_gossip_flooding(core::Manetkit& kit) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  if (dymo == nullptr) return false;
  auto* h = dymo->control().find("ReHandler");
  return h != nullptr && h->type_name() == "dymo.GossipReHandler";
}

}  // namespace mk::proto
