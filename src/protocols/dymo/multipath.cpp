#include "protocols/dymo/multipath.hpp"

#include "core/attrs.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mk::proto {

namespace {

using core::attrs::kDest;

MultipathDymoState& mp_state_of(core::ProtocolContext& ctx) {
  auto* s = dynamic_cast<MultipathDymoState*>(ctx.state());
  MK_ASSERT(s != nullptr, "multipath DYMO has no MultipathDymoState");
  return *s;
}

/// RE handler mining duplicates for link-disjoint paths.
class MultipathReHandler final : public ReHandler {
 public:
  explicit MultipathReHandler(DymoParams params)
      : ReHandler("dymo.MultipathReHandler", params) {}

 protected:
  /// Duplicate RREQ at the target: answer it too (bounded by kMaxPaths), so
  /// the originator learns one RREP per disjoint approach direction.
  void on_duplicate_rreq_at_target(const ev::Event& event,
                                   core::ProtocolContext& ctx) override {
    MultipathDymoState& st = mp_state_of(ctx);
    net::Addr orig = *event.msg()->originator;
    // Record the alternate reverse path first, then reply along it.
    bool added = st.add_alternate_path(
        orig, event.from,
        static_cast<std::uint8_t>(event.msg()->hop_count + 1));
    // Reply with the *same* sequence number as the first RREP so the
    // originator treats this as an equal-freshness alternative path.
    if (added) send_rrep(event, ctx, /*bump_seq=*/false);
  }

  /// Duplicate RREQ at an intermediate node: keep the alternate reverse
  /// path, do not rebroadcast (the first copy already did).
  void on_duplicate_rreq(const ev::Event& event,
                         core::ProtocolContext& ctx) override {
    mp_state_of(ctx).add_alternate_path(
        *event.msg()->originator, event.from,
        static_cast<std::uint8_t>(event.msg()->hop_count + 1));
  }

  /// RREP at the discovery originator: later copies arriving via a different
  /// first hop contribute alternate forward paths.
  void on_rrep_at_origin(const ev::Event& event,
                         core::ProtocolContext& ctx) override {
    MultipathDymoState& st = mp_state_of(ctx);
    net::Addr dest = *event.msg()->originator;  // the RREP sender == target
    st.add_alternate_path(
        dest, event.from,
        static_cast<std::uint8_t>(event.msg()->hop_count + 1));
    st.finish_pending(dest);
    if (auto* s = core::soft_expiry_of(ctx)) {
      s->drop(dymo_sets::kPending, dest);
    }
  }

 private:
};

/// Route-error handler that fails over before reporting.
class MultipathInvalidationHandler final : public RouteInvalidationHandler {
 public:
  explicit MultipathInvalidationHandler(DymoParams params)
      : RouteInvalidationHandler("dymo.MultipathInvalidationHandler", params) {}

 protected:
  std::vector<std::pair<net::Addr, std::uint16_t>> fail_via(
      net::Addr hop, core::ProtocolContext& ctx) override {
    MultipathDymoState& st = mp_state_of(ctx);
    std::vector<std::pair<net::Addr, std::uint16_t>> unreachable;

    // Collect destinations whose *active* path uses the broken hop, then try
    // alternates before declaring them unreachable.
    std::vector<net::Addr> affected;
    for (const auto& [dest, route] : st.all_routes()) {
      if (route.valid && route.active() != nullptr &&
          route.active()->next_hop == hop) {
        affected.push_back(dest);
      }
    }
    for (net::Addr dest : affected) {
      if (auto alt = st.fail_over(dest)) {
        dymo_install_kernel_route(ctx, dest, alt->next_hop, alt->hops);
        // Flush anything NetLink buffered meanwhile.
        ev::Event e(ev::types::ROUTE_FOUND);
        e.set_int(kDest, dest);
        ctx.emit(std::move(e));
        MK_DEBUG("dymo", "failed over ", pbb::addr_to_string(dest), " to ",
                 pbb::addr_to_string(alt->next_hop));
      } else {
        auto route = st.route_to(dest);
        dymo_remove_kernel_route(ctx, dest);
        unreachable.emplace_back(dest, route ? route->seqnum : 0);
      }
    }
    return unreachable;
  }
};

}  // namespace

void apply_multipath_dymo(core::Manetkit& kit, DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "multipath variant requires deployed dymo");
  if (is_multipath_dymo(kit)) return;

  auto lock = dymo->quiesce();

  // 1. S component: new format, state carried over.
  auto* old_state = dymo_state(*dymo);
  MK_ASSERT(old_state != nullptr);
  auto new_state = std::make_unique<MultipathDymoState>(*old_state);
  dymo->set_state(std::move(new_state));

  // 2 & 3. Handler replacements.
  dymo->replace_handler("ReHandler",
                        std::make_unique<MultipathReHandler>(params));
  dymo->replace_handler("RouteErrHandler",
                        std::make_unique<MultipathInvalidationHandler>(params));
}

void remove_multipath_dymo(core::Manetkit& kit, DymoParams params) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  MK_ENSURE(dymo != nullptr, "dymo not deployed");
  if (!is_multipath_dymo(kit)) return;

  auto lock = dymo->quiesce();
  auto* old_state = dymo_state(*dymo);
  auto new_state = std::make_unique<DymoState>();
  // Carry routes back, truncating each to its active path.
  if (old_state != nullptr) {
    for (const auto& [dest, route] : old_state->all_routes()) {
      if (route.valid && route.active() != nullptr) {
        new_state->update_route(dest, route.seqnum, route.active()->next_hop,
                                route.active()->hops,
                                dymo->context().now(), params.route_lifetime);
      }
    }
  }
  dymo->set_state(std::move(new_state));
  dymo->replace_handler("ReHandler", std::make_unique<ReHandler>(params));
  dymo->replace_handler("RouteErrHandler",
                        std::make_unique<RouteInvalidationHandler>(params));
}

bool is_multipath_dymo(core::Manetkit& kit) {
  core::ManetProtocolCf* dymo = kit.protocol("dymo");
  if (dymo == nullptr) return false;
  return dynamic_cast<MultipathDymoState*>(dymo->state_component()) != nullptr;
}

}  // namespace mk::proto
